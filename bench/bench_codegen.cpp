// Successor-engine throughput: the compiled engines (bytecode, aot) vs the
// interpreter on the fig13 bridge -- the same instance as bench_parallel's
// bridge_exact rows, so speedups are directly comparable to the committed
// baseline. Doubles as an end-to-end equivalence check: every engine must
// store exactly the same number of states at every thread count, and every
// run must reach the same verdict.
//
//   bench_codegen [--quick] [--json]
//
// --quick shrinks the instance for CI smoke runs; --json emits rows
// ({bench, threads, states, states_per_sec, wall_seconds, bytes_per_state,
// and for the compiled engines speedup_vs_interp}) consumed by
// scripts/bench.sh, which gates the aot speedup ratio, bytes/state, and the
// compile-time budget against the committed baseline. Speedups are measured
// within one process on one machine (machine-normalized): the ratio, not
// the absolute states/sec, is what the gate holds steady across runner
// generations.
//
// Beyond the plain reachability sweep, the codegen_por_* rows time the
// POR-reduced search (engine-backed ample probe + chosen-pid expansion) and
// the codegen_ltl_* rows time the LTL product search (engine-backed system
// side, interpreted Buchi stepping) -- the two hot loops the engines
// compile end to end. Each lane's speedup is against its own interp row.
//
// The codegen_compile row times the cold emit + host-compile + dlopen path
// and the warm content-addressed cache hit; the artifact cache directory is
// wiped first, so "cold" is honest.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bridge/bridge.h"
#include "codegen/engine.h"
#include "common.h"
#include "explore/explorer.h"
#include "ltl/product.h"
#include "obs/obs.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::bridge;

namespace {

struct Row {
  std::string bench;
  int threads{1};
  std::uint64_t states{0};
  double wall{0.0};
  double speedup{0.0};  // vs the interp row of the same lane; 0 = n/a
  double bytes_per_state{0.0};  // visited-store footprint; 0 = not tracked

  double states_per_sec() const {
    return static_cast<double>(states) / std::max(wall, 1e-9);
  }
};

explore::Result run(const kernel::Machine& m, expr::Ref inv, int threads,
                    const codegen::Engine* engine, bool por = false) {
  explore::Options opt;
  opt.want_trace = false;
  opt.invariant = inv;
  opt.invariant_name = "safety";
  opt.threads = threads;
  opt.engine = engine;
  opt.por = por;
  return explore::explore(m, opt);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_codegen [--quick] [--json]\n");
      return 2;
    }
  }

  BridgeConfig cfg;
  cfg.cars_per_side = quick ? 1 : 2;
  cfg.batch_n = 1;
  ModelGenerator gen;
  Architecture arch = make_v1(cfg);
  const kernel::Machine m = gen.generate(arch, {.optimize_connectors = true});
  const expr::Ref inv = safety_invariant(gen).ref;

  namespace fs = std::filesystem;
  const fs::path cache_dir = fs::temp_directory_path() / "pnp_bench_codegen";
  std::error_code ec;
  fs::remove_all(cache_dir, ec);

  // Cold + warm engine construction. The bench requires a host toolchain
  // (strict: no silent bytecode fallback -- a fallback would make the "aot"
  // rows a lie); the dedicated no-toolchain CI job covers graceful
  // degradation instead.
  obs::Observer ob;
  codegen::EngineOptions ecfg;
  ecfg.kind = codegen::EngineKind::Aot;
  ecfg.cache_dir = cache_dir.string();
  ecfg.strict = true;
  ecfg.obs = &ob;
  using Clock = std::chrono::steady_clock;
  double compile_cold_ms = 0.0, compile_warm_ms = 0.0;
  std::unique_ptr<codegen::Engine> aot;
  try {
    const auto t0 = Clock::now();
    aot = codegen::make_engine(m, ecfg);
    const auto t1 = Clock::now();
    std::unique_ptr<codegen::Engine> warm = codegen::make_engine(m, ecfg);
    const auto t2 = Clock::now();
    compile_cold_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    compile_warm_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
  } catch (const ModelError& e) {
    std::fprintf(stderr, "bench_codegen: %s\n", e.what());
    return 2;
  }
  const bool cache_hit =
      ob.recorder().total(obs::Counter::CodegenCompiles) == 1 &&
      ob.recorder().total(obs::Counter::CodegenCacheHits) == 1;
  codegen::EngineOptions bcfg;
  bcfg.kind = codegen::EngineKind::Bytecode;
  const std::unique_ptr<codegen::Engine> bytecode =
      codegen::make_engine(m, bcfg);

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep{1};
  if (hw >= 2) sweep.push_back(2);
  if (hw > 2) sweep.push_back(hw);

  struct EngineRow {
    const char* name;
    const codegen::Engine* engine;
  };
  const EngineRow engines[] = {{"codegen_interp", nullptr},
                               {"codegen_bytecode", bytecode.get()},
                               {"codegen_aot", aot.get()}};

  std::vector<Row> rows;
  bool ok = true;
  std::uint64_t ref_states = 0;  // interp at threads=1: everyone must match
  const int timing_reps = quick ? 3 : 1;
  std::vector<double> interp_wall(sweep.size(), 0.0);
  for (const EngineRow& e : engines) {
    for (std::size_t si = 0; si < sweep.size(); ++si) {
      const int t = sweep[si];
      explore::Result r;
      for (int rep = 0; rep < timing_reps; ++rep) {
        explore::Result attempt = run(m, inv, t, e.engine);
        ok = ok && attempt.ok() && attempt.stats.complete;
        if (rep == 0 || attempt.stats.seconds < r.stats.seconds)
          r = std::move(attempt);
      }
      if (ref_states == 0) ref_states = r.stats.states_stored;
      else ok = ok && r.stats.states_stored == ref_states;
      Row row{e.name, t, r.stats.states_stored, r.stats.seconds, 0.0,
              r.stats.store_bytes_per_state()};
      if (e.engine == nullptr) interp_wall[si] = r.stats.seconds;
      else if (interp_wall[si] > 0.0)
        row.speedup = interp_wall[si] / std::max(r.stats.seconds, 1e-9);
      rows.push_back(row);
    }
  }

  // POR lane: the engine-backed ample probe + chosen-pid expansion. The
  // reduced graph is engine-independent (identical successor streams give
  // identical ample sets), so the lane doubles as an equivalence check of
  // its own reference state count.
  {
    double por_interp_wall = 0.0;
    std::uint64_t por_ref_states = 0;
    const char* names[] = {"codegen_por_interp", "codegen_por_bytecode",
                           "codegen_por_aot"};
    const codegen::Engine* por_engines[] = {nullptr, bytecode.get(),
                                            aot.get()};
    for (int i = 0; i < 3; ++i) {
      explore::Result r;
      for (int rep = 0; rep < timing_reps; ++rep) {
        explore::Result attempt = run(m, inv, 1, por_engines[i], /*por=*/true);
        ok = ok && attempt.ok() && attempt.stats.complete;
        if (rep == 0 || attempt.stats.seconds < r.stats.seconds)
          r = std::move(attempt);
      }
      if (por_ref_states == 0) por_ref_states = r.stats.states_stored;
      else ok = ok && r.stats.states_stored == por_ref_states;
      Row row{names[i], 1, r.stats.states_stored, r.stats.seconds, 0.0,
              r.stats.store_bytes_per_state()};
      if (i == 0) por_interp_wall = r.stats.seconds;
      else row.speedup = por_interp_wall / std::max(r.stats.seconds, 1e-9);
      rows.push_back(row);
    }
  }

  // LTL lane: nested-DFS product search with engine-backed system-side
  // successor generation (Buchi stepping stays interpreted). The lane
  // deliberately runs the 1-car instance in BOTH modes: the product
  // search keeps its own (unpipelined) visited probe, and on the
  // DRAM-bound 6M-state product that probe dominates wall time and
  // degenerates the ratio to ~1.0x for every engine -- a property of the
  // product search's store, not of the engines this lane gates (measured:
  // a bounded 690k-state product already drops AOT to 1.3x where the
  // cache-resident space holds 1.5-1.7x). "G safe" holds, so every run
  // covers the full product. (Pipelining the product probe like the
  // section-15.4 DFS sink is the follow-up that would let this lane run
  // the full-space product.)
  {
    BridgeConfig lcfg = cfg;
    lcfg.cars_per_side = 1;
    ModelGenerator lgen;
    Architecture larch = make_v1(lcfg);
    const kernel::Machine lm =
        lgen.generate(larch, {.optimize_connectors = true});
    lgen.add_prop("safe", safety_invariant(lgen));
    double ltl_interp_wall = 0.0;
    std::uint64_t ltl_ref_states = 0;
    const char* names[] = {"codegen_ltl_interp", "codegen_ltl_bytecode",
                           "codegen_ltl_aot"};
    const codegen::EngineKind kinds[] = {codegen::EngineKind::Interp,
                                         codegen::EngineKind::Bytecode,
                                         codegen::EngineKind::Aot};
    for (int i = 0; i < 3; ++i) {
      ltl::CheckOptions copt;
      copt.want_trace = false;
      copt.engine = kinds[i];
      copt.engine_cache_dir = cache_dir.string();
      // The product fits in cache, so each run is short; best-of-9 pins the
      // clean minimum even right after the DRAM-heavy sweep lanes above.
      ltl::LtlResult r;
      for (int rep = 0; rep < 9; ++rep) {
        ltl::LtlResult attempt =
            ltl::check_ltl(lm, lgen.props(), "G safe", copt);
        ok = ok && attempt.holds && attempt.stats.complete &&
             attempt.engine_actual == kinds[i];
        if (rep == 0 || attempt.stats.seconds < r.stats.seconds)
          r = std::move(attempt);
      }
      if (ltl_ref_states == 0) ltl_ref_states = r.stats.states_stored;
      else ok = ok && r.stats.states_stored == ltl_ref_states;
      Row row{names[i], 1, r.stats.states_stored, r.stats.seconds, 0.0,
              r.stats.store_bytes_per_state()};
      if (i == 0) ltl_interp_wall = r.stats.seconds;
      else row.speedup = ltl_interp_wall / std::max(r.stats.seconds, 1e-9);
      rows.push_back(row);
    }
  }
  fs::remove_all(cache_dir, ec);

  if (json) {
    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("  {\"bench\": \"%s\", \"threads\": %d, \"states\": %llu, "
                  "\"states_per_sec\": %.1f, \"wall_seconds\": %.6f",
                  r.bench.c_str(), r.threads,
                  static_cast<unsigned long long>(r.states),
                  r.states_per_sec(), r.wall);
      if (r.bytes_per_state > 0.0)
        std::printf(", \"bytes_per_state\": %.1f", r.bytes_per_state);
      if (r.speedup > 0.0)
        std::printf(", \"speedup_vs_interp\": %.3f", r.speedup);
      std::printf("}%s\n", i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ,{\"bench\": \"codegen_compile\", \"cold_ms\": %.1f, "
                "\"warm_ms\": %.1f, \"cache_hit\": %s}\n",
                compile_cold_ms, compile_warm_ms,
                cache_hit ? "true" : "false");
    std::printf("]\n");
    return ok ? 0 : 1;
  }

  std::printf("successor-engine throughput (v1 bridge, %d car(s)/side, "
              "optimized blocks)\n\n",
              cfg.cars_per_side);
  print_header({"bench", "threads", "states", "states/sec", "speedup",
                "bytes/st", "time"},
               {21, 9, 12, 14, 10, 10, 12});
  for (const Row& r : rows) {
    print_cell(r.bench, 21);
    print_cell(std::to_string(r.threads), 9);
    print_cell(std::to_string(r.states), 12);
    print_cell(std::to_string(static_cast<long long>(r.states_per_sec())),
               14);
    char buf[32];
    std::snprintf(buf, sizeof buf, r.speedup > 0.0 ? "%.2fx" : "-",
                  r.speedup);
    print_cell(buf, 10);
    std::snprintf(buf, sizeof buf, r.bytes_per_state > 0.0 ? "%.1f" : "-",
                  r.bytes_per_state);
    print_cell(buf, 10);
    print_cell(fmt_ms(r.wall) + " ms", 12);
    std::printf("\n");
  }
  std::printf("\naot artifact: cold compile %.1f ms, warm cache hit %.1f ms "
              "(%s)\n",
              compile_cold_ms, compile_warm_ms,
              cache_hit ? "content-addressed hit" : "CACHE MISS");
  std::printf("engines stored identical state counts at every thread count: "
              "%s\n",
              verdict(ok && cache_hit).c_str());
  return ok && cache_hit ? 0 : 1;
}
