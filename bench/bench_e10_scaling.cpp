// E10 (paper section 6): state-explosion scaling and what the optional
// optimizations buy.
//
// Sweeps the verified state-space size along the two axes the paper's
// discussion worries about -- number of concurrent components (bridge cars
// per side) and channel capacity -- with and without partial-order
// reduction, plus the bitstate (supertrace) mode for the largest instance.
#include "bridge/bridge.h"
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::bridge;

namespace {

explore::Result verify_bridge(int cars, bool optimized_blocks, bool por,
                              bool bitstate, std::uint64_t max_states,
                              ModelGenerator& gen) {
  BridgeConfig cfg;
  cfg.cars_per_side = cars;
  cfg.batch_n = 1;
  Architecture arch = make_v1(cfg);
  const kernel::Machine m =
      gen.generate(arch, {.optimize_connectors = optimized_blocks});
  explore::Options opt;
  opt.want_trace = false;
  opt.por = por;
  opt.bitstate = bitstate;
  opt.invariant = safety_invariant(gen).ref;
  opt.invariant_name = "safety";
  opt.max_states = max_states;
  return explore::explore(m, opt);
}

}  // namespace

int main() {
  std::printf("E10 -- state-explosion scaling (fixed v1 bridge, N=1)\n\n");
  std::printf("'faithful' = the paper's busy-polling block models "
              "(truncated at 400k states to bound the run);\n"
              "'optblocks' = the section 6 optimized substitution "
              "(exhaustive).\n\n");
  print_header({"cars/side", "mode", "states", "trans", "time", "ok",
                "complete"},
               {11, 16, 12, 14, 12, 6, 10});

  bool shape = true;
  auto row = [&](int cars, const char* mode, const explore::Result& r) {
    print_cell(std::to_string(cars), 11);
    print_cell(mode, 16);
    print_cell(std::to_string(r.stats.states_stored), 12);
    print_cell(std::to_string(r.stats.transitions), 14);
    print_cell(fmt_ms(r.stats.seconds) + " ms", 12);
    print_cell(r.ok() ? "yes" : "NO", 6);
    print_cell(r.stats.complete ? "yes" : "truncated", 10);
    std::printf("\n");
  };

  // faithful models: show the explosion (bounded search)
  {
    ModelGenerator g;
    const explore::Result faithful =
        verify_bridge(1, false, false, false, 400'000, g);
    row(1, "faithful", faithful);
    shape &= faithful.ok();
  }
  // optimized blocks: exhaustive at 1 car/side, bounded (3M) beyond
  std::uint64_t prev_full = 0;
  for (int cars = 1; cars <= 3; ++cars) {
    const std::uint64_t bound = cars == 1 ? 50'000'000 : 3'000'000;
    ModelGenerator g1, g2;
    const explore::Result full =
        verify_bridge(cars, true, false, false, bound, g1);
    const explore::Result por =
        verify_bridge(cars, true, true, false, bound, g2);
    row(cars, "optblocks", full);
    row(cars, "optblocks+por", por);
    shape &= full.ok() && por.ok();
    if (cars == 1) shape &= full.stats.complete;
    shape &= por.stats.states_stored <= full.stats.states_stored;
    if (prev_full) shape &= full.stats.states_stored > prev_full;
    prev_full = full.stats.states_stored;
  }
  {
    ModelGenerator g;
    const explore::Result bs =
        verify_bridge(3, true, false, true, 3'000'000, g);
    row(3, "optblocks+bit", bs);
    shape &= bs.ok();
  }

  // channel-capacity axis on the producer/consumer system
  std::printf("\nchannel-capacity axis (p2p, AsynBlSend+Fifo(cap)+BlRecv, "
              "3 messages):\n\n");
  print_header({"capacity", "states", "trans", "time"}, {10, 14, 14, 12});
  std::uint64_t prev = 0;
  for (int cap = 1; cap <= 4; ++cap) {
    Architecture arch = p2p(3, SendPortKind::AsynBlocking,
                            RecvPortKind::Blocking, {ChannelKind::Fifo, cap});
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    explore::Options opt;
    opt.want_trace = false;
    const explore::Result r = explore::explore(m, opt);
    print_cell(std::to_string(cap), 10);
    print_cell(std::to_string(r.stats.states_stored), 14);
    print_cell(std::to_string(r.stats.transitions), 14);
    print_cell(fmt_ms(r.stats.seconds) + " ms", 12);
    std::printf("\n");
    shape &= r.ok();
    shape &= r.stats.states_stored >= prev;
    prev = r.stats.states_stored;
  }

  std::printf("\nshape %s: states grow with components and capacity; POR "
              "never grows the space; bitstate verifies the same instance "
              "approximately.\n",
              shape ? "HOLDS" : "BROKEN");
  return shape ? 0 : 1;
}
