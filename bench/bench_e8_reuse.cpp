// E8 (paper sections 1 and 3): model-construction savings from reuse.
//
// A designer explores a design space of connector configurations for the
// same pair of components (send-port kind x channel kind x capacity --
// 30 design iterations). Two workflows:
//   * "rebuild": a fresh generator every iteration -- every block model and
//     both component models are reconstructed and recompiled each time
//     (the no-reuse baseline the paper argues against);
//   * "pnp":     one persistent generator -- pre-defined block models and
//     the untouched component models are cache hits.
// Reports the aggregate build/reuse counters and wall-clock totals, plus
// google-benchmark timings for the two workflows.
#include <benchmark/benchmark.h>

#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

namespace {

struct Design {
  SendPortKind send;
  ChannelSpec chan;
};

std::vector<Design> design_space() {
  std::vector<Design> out;
  const SendPortKind sends[] = {
      SendPortKind::AsynNonblocking, SendPortKind::AsynBlocking,
      SendPortKind::AsynChecking, SendPortKind::SynBlocking,
      SendPortKind::SynChecking};
  const ChannelSpec chans[] = {{ChannelKind::SingleSlot, 1},
                               {ChannelKind::Fifo, 2},
                               {ChannelKind::Fifo, 4},
                               {ChannelKind::Priority, 2},
                               {ChannelKind::LossyFifo, 2},
                               {ChannelKind::Fifo, 3}};
  for (SendPortKind s : sends)
    for (const ChannelSpec& c : chans) out.push_back({s, c});
  return out;
}

/// One design-space sweep. Returns total generation seconds.
double sweep(bool persistent_generator, GenStats* totals) {
  const std::vector<Design> space = design_space();
  Architecture arch = p2p(2, space[0].send, RecvPortKind::Blocking,
                          space[0].chan);
  const int sender_id = arch.find_component("Sender");
  const int link = arch.find_connector("Link");

  double seconds = 0;
  ModelGenerator persistent;
  for (const Design& d : space) {
    arch.set_send_port(sender_id, "out", d.send);
    arch.set_channel(link, d.chan);
    if (persistent_generator) {
      (void)persistent.generate(arch);
      seconds += persistent.last_stats().seconds;
    } else {
      ModelGenerator fresh;
      (void)fresh.generate(arch);
      seconds += fresh.last_stats().seconds;
      if (totals) {
        totals->component_models_built +=
            fresh.last_stats().component_models_built;
        totals->component_models_reused +=
            fresh.last_stats().component_models_reused;
        totals->block_models_built += fresh.last_stats().block_models_built;
        totals->block_models_reused += fresh.last_stats().block_models_reused;
        totals->proctypes_compiled += fresh.last_stats().proctypes_compiled;
      }
    }
  }
  if (persistent_generator && totals) *totals = persistent.total_stats();
  return seconds;
}

void BM_SweepRebuild(benchmark::State& state) {
  for (auto _ : state) {
    const double s = sweep(false, nullptr);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SweepRebuild)->Unit(benchmark::kMillisecond);

void BM_SweepPnpReuse(benchmark::State& state) {
  for (auto _ : state) {
    const double s = sweep(true, nullptr);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SweepPnpReuse)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E8 -- model-construction reuse across %zu design "
              "iterations\n\n",
              design_space().size());

  GenStats rebuild{}, pnp_reuse{};
  const double t_rebuild = sweep(false, &rebuild);
  const double t_pnp = sweep(true, &pnp_reuse);

  print_header({"workflow", "comp built", "comp reused", "blocks built",
                "blocks reused", "compiled", "gen time"},
               {12, 12, 13, 14, 15, 10, 12});
  print_cell("rebuild", 12);
  print_cell(std::to_string(rebuild.component_models_built), 12);
  print_cell(std::to_string(rebuild.component_models_reused), 13);
  print_cell(std::to_string(rebuild.block_models_built), 14);
  print_cell(std::to_string(rebuild.block_models_reused), 15);
  print_cell(std::to_string(rebuild.proctypes_compiled), 10);
  print_cell(fmt_ms(t_rebuild) + " ms", 12);
  std::printf("\n");
  print_cell("pnp", 12);
  print_cell(std::to_string(pnp_reuse.component_models_built), 12);
  print_cell(std::to_string(pnp_reuse.component_models_reused), 13);
  print_cell(std::to_string(pnp_reuse.block_models_built), 14);
  print_cell(std::to_string(pnp_reuse.block_models_reused), 15);
  print_cell(std::to_string(pnp_reuse.proctypes_compiled), 10);
  print_cell(fmt_ms(t_pnp) + " ms", 12);
  std::printf("\n\n");

  const bool shape =
      pnp_reuse.component_models_built < rebuild.component_models_built &&
      pnp_reuse.block_models_built < rebuild.block_models_built &&
      pnp_reuse.proctypes_compiled < rebuild.proctypes_compiled;
  std::printf("shape %s: the plug-and-play workflow rebuilds %dx fewer "
              "component models and compiles %dx fewer proctypes.\n\n",
              shape ? "HOLDS" : "BROKEN",
              pnp_reuse.component_models_built
                  ? rebuild.component_models_built /
                        pnp_reuse.component_models_built
                  : rebuild.component_models_built,
              pnp_reuse.proctypes_compiled
                  ? rebuild.proctypes_compiled / pnp_reuse.proctypes_compiled
                  : rebuild.proctypes_compiled);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return shape ? 0 : 1;
}
