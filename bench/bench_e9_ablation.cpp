// E9 (paper section 6): cost of compositionality.
//
// The paper notes that decomposing connectors into port and channel
// processes "introduces additional concurrency into the model,
// exacerbating the state explosion", and suggests recognizing common
// connectors and substituting optimized monolithic models.
//
// This ablation quantifies that: the same producer/consumer behaviour is
// verified twice --
//   * composed: AsynBlSend port process + FIFO channel process + BlRecv
//     port process (the PnP building blocks);
//   * optimized: one native buffered channel, components do ch!v / ch?v
//     directly (what SPIN's built-in FIFO gives you, cf. the paper's FIFO
//     remark in section 6).
// Same observable behaviour, vastly different state-space size.
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::model;

namespace {

/// Optimized monolithic model: direct native-channel communication.
explore::Result run_monolithic(int msgs, int capacity) {
  SystemSpec sys;
  const int ch = sys.add_channel("link", capacity, 1);
  ProcBuilder p(sys, "Sender");
  const LVar i = p.local("i", 1);
  p.finish(seq(do_(alt(seq(guard(p.l(i) <= p.k(msgs)),
                           send(p.c(Chan{ch}), {p.l(i)}),
                           assign(i, p.l(i) + p.k(1)))),
                   alt(seq(guard(p.l(i) > p.k(msgs)), break_())))));
  ProcBuilder q(sys, "Receiver");
  const LVar j = q.local("j", 1);
  const LVar v = q.local("v");
  q.finish(seq(do_(alt(seq(guard(q.l(j) <= q.k(msgs)),
                           recv(q.c(Chan{ch}), {bind(v)}),
                           assert_(q.l(v) == q.l(j)),
                           assign(j, q.l(j) + q.k(1)))),
                   alt(seq(guard(q.l(j) > q.k(msgs)), break_())))));
  sys.spawn("sender", 0, {});
  sys.spawn("receiver", 1, {});
  kernel::Machine m(sys);
  explore::Options opt;
  opt.want_trace = false;
  return explore::explore(m, opt);
}

explore::Result run_composed(int msgs, int capacity, bool por,
                             bool optimize_blocks = false) {
  Architecture arch = p2p(msgs, SendPortKind::AsynBlocking,
                          RecvPortKind::Blocking,
                          {ChannelKind::Fifo, capacity});
  ModelGenerator gen;
  const kernel::Machine m =
      gen.generate(arch, {.optimize_connectors = optimize_blocks});
  explore::Options opt;
  opt.want_trace = false;
  opt.por = por;
  return explore::explore(m, opt);
}

}  // namespace

int main() {
  std::printf("E9 -- ablation: composed building-block connector vs "
              "optimized monolithic model\n\n");
  print_header({"msgs", "cap", "model", "states", "trans", "time",
                "blowup"},
               {6, 5, 16, 12, 12, 12, 10});

  bool shape = true;
  for (int msgs = 2; msgs <= 4; msgs += 2) {
    for (int cap = 1; cap <= 3; cap += 2) {
      const explore::Result mono = run_monolithic(msgs, cap);
      const explore::Result comp = run_composed(msgs, cap, false);
      const explore::Result comp_por = run_composed(msgs, cap, true);
      const explore::Result comp_opt =
          run_composed(msgs, cap, false, /*optimize_blocks=*/true);

      auto row = [&](const char* name, const explore::Result& r,
                     double blowup) {
        print_cell(std::to_string(msgs), 6);
        print_cell(std::to_string(cap), 5);
        print_cell(name, 16);
        print_cell(std::to_string(r.stats.states_stored), 12);
        print_cell(std::to_string(r.stats.transitions), 12);
        print_cell(fmt_ms(r.stats.seconds) + " ms", 12);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1fx", blowup);
        print_cell(blowup > 0 ? buf : "-", 10);
        std::printf("\n");
      };
      const double base = static_cast<double>(mono.stats.states_stored);
      row("monolithic", mono, 0);
      row("composed", comp,
          static_cast<double>(comp.stats.states_stored) / base);
      row("composed+POR", comp_por,
          static_cast<double>(comp_por.stats.states_stored) / base);
      row("composed+opt", comp_opt,
          static_cast<double>(comp_opt.stats.states_stored) / base);

      shape &= comp.stats.states_stored > mono.stats.states_stored;
      shape &= comp_por.stats.states_stored <= comp.stats.states_stored;
      shape &= comp_opt.stats.states_stored < comp.stats.states_stored;
    }
  }

  std::printf("\nshape %s: the composed connector pays a state-space "
              "premium for its pluggability (the paper's section 6 "
              "observation); partial-order reduction recovers part of it, "
              "the optimized block substitution (GenOptions) most of it, "
              "and a hand-written monolithic model all of it.\n",
              shape ? "HOLDS" : "BROKEN");
  return shape ? 0 : 1;
}
