// E6 (paper Figs. 12-13, section 4): the "exactly-N-cars-per-turn"
// single-lane bridge.
//
// Reproduces the paper's design-verify-fix loop:
//   1. the initial design (asynchronous blocking send for enter requests)
//      VIOLATES the bridge safety property -- a car treats "request
//      buffered" as "entry granted";
//   2. swapping that single building block for a synchronous blocking send
//      port (components untouched, models reused) makes the design safe.
// The table sweeps problem sizes and reports state counts, times, and the
// counterexample length of the buggy design (BFS = shortest crash).
#include "bridge/bridge.h"
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::bridge;

int main() {
  std::printf("E6 / Fig.13 -- exactly-N-cars-per-turn bridge: "
              "buggy vs plug-and-play-fixed design\n\n");
  print_header({"cars/side", "N", "design", "verdict", "states", "time",
                "cex len", "comp built/reused"},
               {11, 4, 10, 18, 12, 12, 9, 20});

  bool shape_ok = true;
  for (int cars = 1; cars <= 2; ++cars) {
    for (int n = 1; n <= 2; ++n) {
      BridgeConfig cfg;
      cfg.cars_per_side = cars;
      cfg.batch_n = n;
      cfg.buggy_async_enter = true;

      Architecture arch = make_v1(cfg);
      ModelGenerator gen;
      // the section 6 optimized-connector substitution keeps the sweep
      // tractable; bench_e10_scaling measures the faithful-model cost
      const GenOptions kOpt{.optimize_connectors = true};

      // -- buggy design: expect a safety violation ------------------------
      {
        const kernel::Machine m = gen.generate(arch, kOpt);
        // DFS: BFS would enumerate the full breadth of the 16+-process
        // interleaving before reaching the violation depth.
        const SafetyOutcome out = check_invariant(
            m, safety_invariant(gen), "one direction at a time",
            bounded(3'000'000));
        print_cell(std::to_string(cars), 11);
        print_cell(std::to_string(n), 4);
        print_cell("buggy", 10);
        print_cell(out.passed() ? "PASS (UNEXPECTED)" : "FAIL (expected)", 18);
        print_cell(std::to_string(out.result.stats.states_stored), 12);
        print_cell(fmt_ms(out.result.stats.seconds) + " ms", 12);
        print_cell(out.result.violation
                       ? std::to_string(out.result.violation->trace.size())
                       : "-",
                   9);
        print_cell(std::to_string(gen.last_stats().component_models_built) +
                       "/" +
                       std::to_string(gen.last_stats().component_models_reused),
                   20);
        std::printf("\n");
        shape_ok &= !out.passed();
      }

      // -- plug-and-play fix: swap the enter send ports -------------------
      apply_v1_fix(arch, cfg);
      {
        const kernel::Machine m = gen.generate(arch, kOpt);
        const SafetyOutcome out = check_invariant(
            m, safety_invariant(gen) && batch_bound_invariant(gen, n),
            "safety + batch bound", bounded(3'000'000));
        print_cell(std::to_string(cars), 11);
        print_cell(std::to_string(n), 4);
        print_cell("fixed", 10);
        print_cell(out.passed() ? "PASS (expected)" : "FAIL (UNEXPECTED)", 18);
        print_cell(std::to_string(out.result.stats.states_stored), 12);
        print_cell(fmt_ms(out.result.stats.seconds) + " ms", 12);
        print_cell("-", 9);
        print_cell(std::to_string(gen.last_stats().component_models_built) +
                       "/" +
                       std::to_string(gen.last_stats().component_models_reused),
                   20);
        std::printf("\n");
        shape_ok &= out.passed();
        shape_ok &= gen.last_stats().component_models_built == 0;
      }
    }
  }

  std::printf("\nshape %s: every buggy configuration crashes, every fixed "
              "one verifies, and the fix rebuilds 0 component models.\n",
              shape_ok ? "HOLDS" : "BROKEN");
  return shape_ok ? 0 : 1;
}
