// E7 (paper Fig. 14, section 4): the "at-most-N-cars-per-turn" bridge.
//
// The richer design adds two controller-to-controller connectors
// (SynBlSend + SingleSlot + NbRecv) so a controller can yield its turn
// early, and switches the controllers to nonblocking (polling) receive
// ports. Because every controller input is polled, the faithful models
// generate a very large interleaving space -- exactly the section 6
// state-explosion discussion -- so the checks below are BOUNDED searches:
// "no violation within N states". We verify:
//   * safety: never both directions on the bridge (invariant),
//   * the same as an LTL property G !both_on through the Buchi product,
//   * no invalid end states within the bound.
#include "bridge/bridge.h"
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::bridge;

int main() {
  constexpr std::uint64_t kBound = 4'000'000;
  std::printf("E7 / Fig.14 -- at-most-N-cars-per-turn bridge with yield "
              "connectors (bounded search, %llu states)\n\n",
              static_cast<unsigned long long>(kBound));
  print_header({"cars/side", "N", "check", "verdict", "states", "time"},
               {11, 4, 26, 9, 12, 12});

  bool ok = true;
  {
    BridgeConfig cfg;
    cfg.cars_per_side = 1;
    cfg.batch_n = 1;
    cfg.enter_queue_capacity = 1;

    Architecture arch = make_v2(cfg);
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);

    auto row = [&](const char* what, bool passed, std::uint64_t states,
                   double seconds) {
      print_cell("1", 11);
      print_cell("1", 4);
      print_cell(what, 26);
      print_cell(verdict(passed), 9);
      print_cell(std::to_string(states), 12);
      print_cell(fmt_ms(seconds) + " ms", 12);
      std::printf("\n");
      ok &= passed;
    };

    {
      const SafetyOutcome out = check_invariant(
          m, safety_invariant(gen), "one direction at a time",
          bounded(kBound));
      row("invariant: safety", out.passed(), out.result.stats.states_stored,
          out.result.stats.seconds);
    }
    {
      register_props(gen);
      const LtlOutcome out = check_ltl_formula(m, gen.props(), "G !both_on",
                                               ltl::bounded(kBound));
      row("LTL: G !both_on", out.passed(), out.result.stats.states_stored,
          out.result.stats.seconds);
    }
    {
      const SafetyOutcome out = check_safety(m, bounded(kBound));
      row("no invalid end states", out.passed(),
          out.result.stats.states_stored, out.result.stats.seconds);
    }
  }

  std::printf("\nshape %s: no safety violation, no acceptance cycle, and no "
              "wedge anywhere in the explored prefix of the at-most-N "
              "design.\n",
              ok ? "HOLDS" : "BROKEN");
  return ok ? 0 : 1;
}
