// E1 (paper Fig. 1): the building-block library.
//
// Enumerates every block in the library and sanity-checks each one inside a
// minimal closed harness (one sender, one receiver, one connector built
// around the block under test): assertion-free, wedge-free, exhaustive.
// Prints the catalog with the per-block verification cost.
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

namespace {

void row(const std::string& block, const std::string& role,
         const Architecture& arch) {
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m, bounded(5'000'000));
  print_cell(block, 34);
  print_cell(role, 14);
  print_cell(verdict(out.passed()), 8);
  print_cell(std::to_string(out.result.stats.states_stored), 12);
  print_cell(std::to_string(out.result.stats.transitions), 12);
  print_cell(fmt_ms(out.result.stats.seconds) + " ms", 12);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E1 / Fig.1 -- building-block library catalog\n");
  std::printf("each block verified inside a minimal closed harness "
              "(2 messages, 1 sender, 1 receiver)\n\n");
  print_header({"block", "role", "verdict", "states", "trans", "time"},
               {34, 14, 8, 12, 12, 12});

  const SendPortKind sends[] = {
      SendPortKind::AsynNonblocking, SendPortKind::AsynBlocking,
      SendPortKind::AsynChecking, SendPortKind::SynBlocking,
      SendPortKind::SynChecking};
  for (SendPortKind k : sends)
    row(to_string(k), "send port",
        p2p(2, k, RecvPortKind::Blocking, {ChannelKind::SingleSlot, 1}));

  row(to_string(RecvPortKind::Blocking, {}), "receive port",
      p2p(2, SendPortKind::AsynBlocking, RecvPortKind::Blocking,
          {ChannelKind::SingleSlot, 1}));
  row(to_string(RecvPortKind::Nonblocking, {}), "receive port",
      p2p(2, SendPortKind::AsynBlocking, RecvPortKind::Nonblocking,
          {ChannelKind::SingleSlot, 1}));
  row("BlRecv/copy", "receive port",
      p2p(1, SendPortKind::AsynBlocking, RecvPortKind::Blocking,
          {ChannelKind::SingleSlot, 1}, {.remove = false}));
  row("BlRecv/selective", "receive port",
      p2p(2, SendPortKind::AsynBlocking, RecvPortKind::Blocking,
          {ChannelKind::Fifo, 2}, {.remove = true, .selective = true}));

  const ChannelSpec chans[] = {{ChannelKind::SingleSlot, 1},
                               {ChannelKind::Fifo, 5},
                               {ChannelKind::Priority, 5},
                               {ChannelKind::LossyFifo, 2}};
  for (const ChannelSpec& c : chans)
    row(to_string(c), "channel",
        p2p(2, SendPortKind::AsynBlocking, RecvPortKind::Blocking, c));

  // event pool needs its own topology (pub/sub)
  {
    Architecture arch("pool");
    const int p = arch.add_component("Pub", sender(2));
    const int s1 = arch.add_component("SubA", receiver(2));
    const int s2 = arch.add_component("SubB", receiver(2));
    patterns::publish_subscribe(arch, "Bus", 4,
                                {{p, "out", SendPortKind::AsynBlocking}},
                                {{s1, "in", RecvPortKind::Blocking, {}},
                                 {s2, "in", RecvPortKind::Blocking, {}}});
    row("EventPool(4) 1pub/2sub", "channel", arch);
  }

  std::printf("\nevery block model is pre-defined and reusable: the library "
              "is built once per process and cached by the generator.\n");
  return 0;
}
