// E2 (paper Fig. 2): three connector variants built by block substitution.
//
//   (a) AsynBlSend + SingleSlot + BlRecv
//   (b) SynBlSend  + SingleSlot + BlRecv      (swap the send port)
//   (c) AsynBlSend + Fifo(5)    + BlRecv      (swap the channel)
//
// All three reuse the SAME component models (the generator reports zero
// component rebuilds after the first variant) -- the paper's plug-and-play
// claim -- and the table shows how the connector choice alone changes the
// verified state space.
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

int main() {
  std::printf("E2 / Fig.2 -- connector variants by plug-and-play "
              "substitution (3 messages)\n\n");
  print_header({"variant", "verdict", "states", "trans", "time",
                "comp models built/reused"},
               {34, 8, 12, 12, 12, 26});

  Architecture arch =
      p2p(3, SendPortKind::AsynBlocking, RecvPortKind::Blocking,
          {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;

  auto run = [&](const char* name) {
    const kernel::Machine m = gen.generate(arch);
    const SafetyOutcome out = check_safety(m);
    print_cell(name, 34);
    print_cell(verdict(out.passed()), 8);
    print_cell(std::to_string(out.result.stats.states_stored), 12);
    print_cell(std::to_string(out.result.stats.transitions), 12);
    print_cell(fmt_ms(out.result.stats.seconds) + " ms", 12);
    print_cell(std::to_string(gen.last_stats().component_models_built) + "/" +
                   std::to_string(gen.last_stats().component_models_reused),
               26);
    std::printf("\n");
  };

  run("(a) AsynBlSend+SingleSlot+BlRecv");

  // Fig. 2(b): swap one block -- the send port
  arch.set_send_port(arch.find_component("Sender"), "out",
                     SendPortKind::SynBlocking);
  run("(b) SynBlSend+SingleSlot+BlRecv");

  // Fig. 2(c): swap back and replace the channel by a 5-slot FIFO
  arch.set_send_port(arch.find_component("Sender"), "out",
                     SendPortKind::AsynBlocking);
  arch.set_channel(arch.find_connector("Link"), {ChannelKind::Fifo, 5});
  run("(c) AsynBlSend+Fifo(5)+BlRecv");

  std::printf("\nshape check: (b) synchronous send strictly tightens the "
              "coupling (different state space than (a)); (c) the larger "
              "buffer admits more in-flight messages than (a).\n");
  return 0;
}
