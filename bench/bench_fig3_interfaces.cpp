// E3 (paper Fig. 3): standard-interface conformance matrix.
//
// One fixed sender model and one fixed receiver model -- written once
// against the standard interfaces -- are composed with every send-port
// kind x receive-port kind x channel kind. Every cell must verify clean:
// that is what lets connectors change without touching components.
#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

int main() {
  std::printf("E3 / Fig.3 -- standard component interfaces: full "
              "composition matrix (2 messages)\n\n");
  print_header({"send port", "recv port", "channel", "verdict", "states",
                "time"},
               {16, 12, 16, 9, 12, 12});

  const SendPortKind sends[] = {
      SendPortKind::AsynNonblocking, SendPortKind::AsynBlocking,
      SendPortKind::AsynChecking, SendPortKind::SynBlocking,
      SendPortKind::SynChecking};
  const RecvPortKind recvs[] = {RecvPortKind::Blocking,
                                RecvPortKind::Nonblocking};
  const ChannelSpec chans[] = {{ChannelKind::SingleSlot, 1},
                               {ChannelKind::Fifo, 2},
                               {ChannelKind::Priority, 2},
                               {ChannelKind::LossyFifo, 1}};

  ModelGenerator gen;  // shared: block models built once, then cache hits
  int pass = 0, total = 0;
  for (SendPortKind s : sends) {
    for (RecvPortKind r : recvs) {
      for (const ChannelSpec& c : chans) {
        Architecture arch = p2p(2, s, r, c);
        const kernel::Machine m = gen.generate(arch);
        const SafetyOutcome out = check_safety(m, bounded(5'000'000));
        print_cell(to_string(s), 16);
        print_cell(to_string(r), 12);
        print_cell(to_string(c), 16);
        print_cell(verdict(out.passed()), 9);
        print_cell(std::to_string(out.result.stats.states_stored), 12);
        print_cell(fmt_ms(out.result.stats.seconds) + " ms", 12);
        std::printf("\n");
        ++total;
        if (out.passed()) ++pass;
      }
    }
  }
  std::printf("\n%d/%d combinations verified clean with UNCHANGED component "
              "models.\n", pass, total);
  std::printf("generator totals: %s\n", gen.total_stats().summary().c_str());
  return pass == total ? 0 : 1;
}
