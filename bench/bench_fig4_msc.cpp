// E4 (paper Fig. 4): message-sequence-chart scenarios contrasting
// asynchronous blocking send with synchronous blocking send.
//
// For each variant we run a guided simulation (steered to unblock the
// sender as early as possible) and check WHEN the component receives its
// SEND_SUCC status relative to the channel's RECV_OK delivery
// notification:
//   asynchronous blocking: SEND_SUCC can precede delivery (Fig. 4a)
//   synchronous blocking:  SEND_SUCC always follows RECV_OK (Fig. 4b)
#include <optional>

#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

namespace {

std::string signal_label(const kernel::Machine& m, int chan,
                         const std::vector<kernel::Value>& msg) {
  const std::string& name =
      m.spec().channels[static_cast<std::size_t>(chan)].name;
  const bool is_signal = name.find("ig") != std::string::npos &&
                         (name.ends_with("Sig") || name.ends_with(".sig") ||
                          name.ends_with("sSig") || name.ends_with("rSig"));
  if (is_signal && msg.size() == 2) {
    return name + "(" + signal_name(msg[0]) + ")";
  }
  std::string out = name + "(";
  for (std::size_t i = 0; i < msg.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(msg[i]);
  }
  return out + ")";
}

struct Scenario {
  std::optional<std::size_t> send_succ;  // step index
  std::optional<std::size_t> recv_ok;
  std::string msc;
};

Scenario run_variant(SendPortKind kind, const char* /*name*/) {
  Architecture arch = p2p(1, kind, RecvPortKind::Blocking,
                          {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);

  sim::Simulator s(m, 7);
  // steer: always prefer delivering SEND_SUCC to the component when enabled
  for (int i = 0; i < 200; ++i)
    if (!s.step_preferring("SendStatus SEND_SUCC")) break;

  Scenario out;
  const auto& chans = m.spec().channels;
  for (std::size_t i = 0; i < s.history().size(); ++i) {
    const kernel::Step& st = s.history()[i];
    if (st.event.chan < 0 || st.event.msg.empty()) continue;
    const std::string& cname =
        chans[static_cast<std::size_t>(st.event.chan)].name;
    if (!out.send_succ && cname == "Sender.out.sig" &&
        st.event.msg[0] == SEND_SUCC)
      out.send_succ = i;
    if (!out.recv_ok && cname == "Link.sSig" && st.event.msg[0] == RECV_OK)
      out.recv_ok = i;
  }
  trace::MscOptions opt;
  opt.col_width = 24;
  opt.label = [&m](int chan, const std::vector<kernel::Value>& msg) {
    return signal_label(m, chan, msg);
  };
  out.msc = trace::render_msc(m, s.history(), opt);
  return out;
}

}  // namespace

int main() {
  std::printf("E4 / Fig.4 -- asynchronous vs synchronous blocking send "
              "scenarios (1 message)\n\n");

  const Scenario asyn = run_variant(SendPortKind::AsynBlocking,
                                    "asynchronous blocking send");
  const Scenario syn = run_variant(SendPortKind::SynBlocking,
                                   "synchronous blocking send");

  std::printf("--- Fig.4(a) asynchronous blocking send ---\n%s\n",
              asyn.msc.c_str());
  std::printf("--- Fig.4(b) synchronous blocking send ---\n%s\n",
              syn.msc.c_str());

  bool ok = true;
  if (asyn.send_succ && asyn.recv_ok) {
    const bool before = *asyn.send_succ < *asyn.recv_ok;
    std::printf("async: SEND_SUCC at step %zu, RECV_OK at step %zu -> "
                "component resumed %s delivery  [%s]\n",
                *asyn.send_succ, *asyn.recv_ok,
                before ? "BEFORE" : "after", before ? "expected" : "UNEXPECTED");
    ok &= before;
  } else {
    std::printf("async: missing events in scenario [UNEXPECTED]\n");
    ok = false;
  }
  if (syn.send_succ && syn.recv_ok) {
    const bool after = *syn.send_succ > *syn.recv_ok;
    std::printf("sync:  SEND_SUCC at step %zu, RECV_OK at step %zu -> "
                "component resumed %s delivery  [%s]\n",
                *syn.send_succ, *syn.recv_ok, after ? "AFTER" : "before",
                after ? "expected" : "UNEXPECTED");
    ok &= after;
  } else {
    std::printf("sync: missing events in scenario [UNEXPECTED]\n");
    ok = false;
  }
  std::printf("\nshape %s: the send-port swap alone flips the ordering of "
              "SendStatus vs delivery, exactly the paper's Fig.4 contrast.\n",
              ok ? "HOLDS" : "BROKEN");
  return ok ? 0 : 1;
}
