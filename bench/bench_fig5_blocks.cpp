// E5 (paper Figs. 5-11): the pre-defined block models as executable
// transition systems -- microbenchmarks of the verification kernel on each
// block configuration (successor generation and full exploration
// throughput), using google-benchmark.
#include <benchmark/benchmark.h>

#include "common.h"

using namespace pnp;
using namespace pnp::benchutil;

namespace {

Architecture arch_for(int variant) {
  switch (variant) {
    case 0:
      return p2p(2, SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                 {ChannelKind::SingleSlot, 1});
    case 1:
      return p2p(2, SendPortKind::SynBlocking, RecvPortKind::Blocking,
                 {ChannelKind::SingleSlot, 1});
    case 2:
      return p2p(2, SendPortKind::AsynNonblocking, RecvPortKind::Nonblocking,
                 {ChannelKind::Fifo, 2});
    case 3:
      return p2p(2, SendPortKind::SynChecking, RecvPortKind::Blocking,
                 {ChannelKind::Priority, 2});
    default:
      return p2p(2, SendPortKind::AsynChecking, RecvPortKind::Blocking,
                 {ChannelKind::LossyFifo, 2});
  }
}

const char* variant_name(int v) {
  switch (v) {
    case 0: return "AsynBl+SingleSlot+Bl";
    case 1: return "SynBl+SingleSlot+Bl";
    case 2: return "AsynNb+Fifo2+Nb";
    case 3: return "SynChk+Prio2+Bl";
    default: return "AsynChk+Lossy2+Bl";
  }
}

void BM_SuccessorGeneration(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  Architecture arch = arch_for(variant);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);

  // Collect a pool of distinct reachable states via random walks.
  std::vector<kernel::State> pool;
  sim::Simulator s(m, 3);
  pool.push_back(s.state());
  for (int i = 0; i < 200; ++i) {
    if (!s.step_random()) s.reset();
    pool.push_back(s.state());
  }

  std::vector<kernel::Succ> out;
  std::size_t i = 0;
  std::uint64_t generated = 0;
  for (auto _ : state) {
    out.clear();
    m.successors(pool[i % pool.size()], out);
    generated += out.size();
    ++i;
  }
  state.SetLabel(variant_name(variant));
  state.counters["succs/call"] =
      benchmark::Counter(static_cast<double>(generated) /
                         static_cast<double>(state.iterations()));
}
BENCHMARK(BM_SuccessorGeneration)->DenseRange(0, 4);

void BM_FullExploration(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  Architecture arch = arch_for(variant);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  std::uint64_t states = 0;
  for (auto _ : state) {
    explore::Options opt;
    opt.want_trace = false;
    const auto r = explore::explore(m, opt);
    states = r.stats.states_stored;
    benchmark::DoNotOptimize(r.stats.transitions);
  }
  state.SetLabel(variant_name(variant));
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_FullExploration)->DenseRange(0, 4);

void BM_ModelGeneration(benchmark::State& state) {
  // cost of architecture -> model, cold cache each time
  for (auto _ : state) {
    Architecture arch = arch_for(0);
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    benchmark::DoNotOptimize(m.n_processes());
  }
}
BENCHMARK(BM_ModelGeneration);

void BM_StateEncode(benchmark::State& state) {
  Architecture arch = arch_for(0);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const kernel::State s0 = m.initial();
  std::string key;
  for (auto _ : state) {
    key = kernel::encode_key(s0);
    benchmark::DoNotOptimize(key.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(key.size()));
}
BENCHMARK(BM_StateEncode);

}  // namespace

BENCHMARK_MAIN();
