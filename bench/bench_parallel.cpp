// Parallel-exploration throughput: states/second and visited-store
// bytes/state of the exact engines across a thread sweep, plus the seeded
// bitstate swarm, on the optimized v1 bridge, and a bounded sweep on the
// polling-heavy v2 bridge (paper Fig. 14). Doubles as an end-to-end
// determinism check: every complete exact run must store exactly the same
// number of states.
//
//   bench_parallel [--quick] [--json]
//
// --quick shrinks the instance for CI smoke runs; --json emits the rows as
// a JSON array ({bench, threads, states, states_per_sec, bytes_per_state,
// wall_seconds}) consumed by scripts/bench.sh (which gates bytes_per_state
// against the committed baseline) and uploaded as the CI bench artifact.
// The serve_rtt row measures the warm-cache round-trip latency of an
// in-process pnpd (scripts/bench.sh gates its warm_hit_rate).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bridge/bridge.h"
#include "common.h"
#include "explore/explorer.h"
#include "obs/obs.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace pnp;
using namespace pnp::benchutil;
using namespace pnp::bridge;

namespace {

struct Row {
  std::string bench;
  int threads{1};
  std::uint64_t states{0};
  std::uint64_t store_bytes{0};
  double wall{0.0};

  double states_per_sec() const {
    return static_cast<double>(states) / std::max(wall, 1e-9);
  }
  double bytes_per_state() const {
    return states > 0 ? static_cast<double>(store_bytes) /
                            static_cast<double>(states)
                      : 0.0;
  }
};

// The shipped demo design, inlined so the bench binary runs from any cwd:
// two components, one fifo connector, three checks with the end-invariant
// (connector protocol + global safety + end-invariant).
constexpr const char* kServeArch = R"(
architecture demo {
  global delivered = 0;
  component Producer {
    behavior {
      byte i = 1;
      do
      :: i <= 3 -> out_data!i,0,0,0,0,0; out_sig?SEND_SUCC,_; i++
      :: i > 3 -> break
      od
    }
  }
  component Consumer {
    behavior {
      byte j = 1;
      byte v;
      do
      :: j <= 3 ->
         in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_; in_data?v,_,_,_,_,_;
         assert(v == j); delivered++; j++
      :: j > 3 -> break
      od
    }
  }
  connector Link : fifo(2) {
    sender Producer.out via asyn_blocking;
    receiver Consumer.in via blocking;
  }
}
)";

explore::Result run(const kernel::Machine& m, expr::Ref inv, int threads,
                    bool bitstate, std::uint64_t max_states = 0) {
  explore::Options opt;
  opt.want_trace = false;
  opt.invariant = inv;
  opt.invariant_name = "safety";
  opt.threads = threads;
  opt.bitstate = bitstate;
  if (max_states > 0) opt.max_states = max_states;
  if (bitstate) opt.bitstate_bytes = std::uint64_t{1} << 24;
  return explore::explore(m, opt);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_parallel [--quick] [--json]\n");
      return 2;
    }
  }

  BridgeConfig cfg;
  cfg.cars_per_side = quick ? 1 : 2;
  cfg.batch_n = 1;
  ModelGenerator gen;
  Architecture arch = make_v1(cfg);
  const kernel::Machine m =
      gen.generate(arch, {.optimize_connectors = true});
  const expr::Ref inv = safety_invariant(gen).ref;

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep{1};
  if (hw >= 2) sweep.push_back(2);
  if (hw > 2) sweep.push_back(hw);

  std::vector<Row> rows;
  bool ok = true;
  std::uint64_t seq_states = 0;
  // Quick (CI) runs take the best of 3 for the exact rows: scripts/bench.sh
  // gates their states_per_sec against the committed baseline, and best-of
  // is robust against load spikes on shared runners the way a single sample
  // is not. Full runs are minutes long and not wall-clock gated, so one
  // sample suffices there.
  const int timing_reps = quick ? 3 : 1;
  for (const int t : sweep) {
    explore::Result r;
    for (int rep = 0; rep < timing_reps; ++rep) {
      explore::Result attempt = run(m, inv, t, false);
      ok = ok && attempt.ok() && attempt.stats.complete;
      if (rep == 0 || attempt.stats.seconds < r.stats.seconds)
        r = std::move(attempt);
    }
    if (t == 1) seq_states = r.stats.states_stored;
    else ok = ok && r.stats.states_stored == seq_states;
    rows.push_back({"bridge_exact", t, r.stats.states_stored,
                    r.stats.store_bytes, r.stats.seconds});
  }
  {
    const int t = quick ? 2 : std::min(hw, 4);
    const explore::Result r = run(m, inv, t, true);
    ok = ok && r.ok();
    rows.push_back({"bridge_swarm", t, r.stats.states_stored,
                    r.stats.store_bytes, r.stats.seconds});
  }

  // The polling-heavy v2 bridge (paper Fig. 14): its interleaving space is
  // too large to exhaust, so these are BOUNDED rows -- "no violation within
  // N states" -- and truncated runs explore thread-dependent subsets, so no
  // cross-thread state-count assertion here (the full-space guarantee is
  // covered by the v1 rows and the store-equivalence tests).
  {
    BridgeConfig v2cfg;
    v2cfg.cars_per_side = 1;
    v2cfg.batch_n = 1;
    v2cfg.enter_queue_capacity = 1;
    Architecture v2arch = make_v2(v2cfg);
    ModelGenerator v2gen;
    const kernel::Machine m2 = v2gen.generate(v2arch);
    const expr::Ref inv2 = safety_invariant(v2gen).ref;
    const std::uint64_t bound = quick ? 150'000 : 2'000'000;
    for (const int t : sweep) {
      explore::Result r;
      for (int rep = 0; rep < timing_reps; ++rep) {
        explore::Result attempt = run(m2, inv2, t, false, bound);
        ok = ok && attempt.ok();
        if (rep == 0 || attempt.stats.seconds < r.stats.seconds)
          r = std::move(attempt);
      }
      rows.push_back({"bridge_v2_exact", t, r.stats.states_stored,
                      r.stats.store_bytes, r.stats.seconds});
    }
  }

  // Observability overhead on the fig13 full space: best-of-N wall time
  // with no observer vs with a Recorder attached (no sinks -- the hot-path
  // cost is the counter publishing, events are cold-path). The base and
  // instrumented reps are INTERLEAVED: shared runners drift by several
  // percent over the ~minute this pair takes, and grouping all base reps
  // ahead of all instrumented ones was measured to charge that drift to
  // whichever side ran in the slow window (a ~10% phantom overhead on a
  // quiet-morning baseline). Alternating cancels the drift; best-of-N then
  // suppresses the symmetric noise. The acceptance bar is <= 3% (see
  // obs.h); scripts/bench.sh gates this row.
  double obs_base_s = 0.0, obs_instr_s = 0.0, obs_overhead_pct = 0.0;
  std::uint64_t obs_states = 0;
  {
    const int reps = quick ? 5 : 3;
    obs::Observer ob;
    auto once = [&](obs::Observer* o, double& best_s, std::uint64_t& states) {
      explore::Options opt;
      opt.want_trace = false;
      opt.invariant = inv;
      opt.invariant_name = "safety";
      opt.obs = o;
      const explore::Result r = explore::explore(m, opt);
      ok = ok && r.ok() && r.stats.complete;
      best_s = std::min(best_s, r.stats.seconds);
      states = r.stats.states_stored;
    };
    double base_s = 1e99, instr_s = 1e99;
    std::uint64_t base_states = 0, instr_states = 0;
    for (int i = 0; i < reps; ++i) {
      once(nullptr, base_s, base_states);
      once(&ob, instr_s, instr_states);
    }
    ok = ok && base_states == instr_states;
    // each run publishes absolute tallies into a fresh block, so the merged
    // total must be exactly reps x the per-run count
    ok = ok && ob.recorder().total(obs::Counter::StatesStored) ==
                   static_cast<std::uint64_t>(reps) * instr_states;
    obs_base_s = base_s;
    obs_instr_s = instr_s;
    obs_states = instr_states;
    obs_overhead_pct = std::max(0.0, (instr_s / std::max(base_s, 1e-9) - 1.0) *
                                         100.0);
  }

  // Spill overhead on the fig13 full space: best-of-N wall time of the
  // in-RAM exact run vs the same search forced through the mmap spill path
  // (memory budget far below the footprint, so the visited-key arena and
  // intern pools go disk-backed early). State counts must be identical --
  // spill is an exact mode, not an approximation. The acceptance bar is
  // <= 15% (scripts/bench.sh gates this row).
  double spill_base_s = 0.0, spill_s = 0.0, spill_overhead_pct = 0.0;
  std::uint64_t spill_states = 0;
  {
    const int reps = 3;
    const std::string spill_dir =
        (std::filesystem::temp_directory_path() / "pnp_bench_spill").string();
    auto best = [&](bool spill) {
      double best_s = 1e99;
      std::uint64_t states = 0;
      for (int i = 0; i < reps; ++i) {
        explore::Options opt;
        opt.want_trace = false;
        opt.invariant = inv;
        opt.invariant_name = "safety";
        if (spill) {
          opt.spill_dir = spill_dir;
          opt.memory_budget_bytes = std::uint64_t{1} << 18;
        }
        const explore::Result r = explore::explore(m, opt);
        ok = ok && r.ok() && r.stats.complete;
        if (spill) ok = ok && r.stats.spilled;
        best_s = std::min(best_s, r.stats.seconds);
        states = r.stats.states_stored;
      }
      return std::make_pair(best_s, states);
    };
    const auto [base_s, base_states] = best(false);
    const auto [disk_s, disk_states] = best(true);
    ok = ok && base_states == disk_states;
    spill_base_s = base_s;
    spill_s = disk_s;
    spill_states = disk_states;
    spill_overhead_pct =
        std::max(0.0, (disk_s / std::max(base_s, 1e-9) - 1.0) * 100.0);
    std::error_code ec;
    std::filesystem::remove_all(spill_dir, ec);
  }

  // Service round-trip latency: an in-process pnpd on a temp Unix socket,
  // one cold submit of the demo architecture to fill the shared verdict
  // cache, then N warm submits (fresh connection each, like distinct
  // clients) timing the full protocol round-trip: submit -> accepted ->
  // events -> report. Every warm check must come out of the cache --
  // warm_hit_rate is deterministic and scripts/bench.sh gates it > 0;
  // rtt_ms is wall-clock and therefore informational only.
  double serve_cold_ms = 0.0, serve_rtt_ms = 0.0, serve_warm_hit_rate = 0.0;
  const int serve_jobs = quick ? 8 : 32;
  {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "pnp_bench_serve";
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);

    serve::ServerOptions sopts;
    sopts.socket_path = (dir / "pnpd.sock").string();
    sopts.workers = 2;
    sopts.state_dir = (dir / "state").string();
    serve::Server server(sopts);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "serve_rtt: server start failed: %s\n",
                   err.c_str());
      ok = false;
    } else {
      std::thread srv([&server] { server.run(); });
      auto submit = [&](const std::string& id, double* rtt_ms,
                        serve::Client::Outcome* out) {
        serve::JobRequest req;
        req.id = id;
        req.model_text = kServeArch;
        req.kind = Session::SourceKind::Arch;
        req.config.end_invariant_text = "delivered == 3";
        serve::Client c;
        std::string cerr;
        const auto t0 = std::chrono::steady_clock::now();
        const bool good = c.connect_unix(sopts.socket_path, &cerr) &&
                          c.submit_and_wait(req, out, &cerr);
        const auto t1 = std::chrono::steady_clock::now();
        *rtt_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (!good || !out->accepted || !out->passed) {
          std::fprintf(stderr, "serve_rtt: job %s failed: %s%s\n", id.c_str(),
                       cerr.c_str(), out->reject_reason.c_str());
          return false;
        }
        return true;
      };

      serve::Client::Outcome cold;
      ok = ok && submit("cold", &serve_cold_ms, &cold);
      ok = ok && cold.recomputed > 0;

      std::vector<double> rtts;
      std::uint64_t hits = 0, recomputed = 0;
      for (int i = 0; i < serve_jobs; ++i) {
        serve::Client::Outcome warm;
        double ms = 0.0;
        ok = ok && submit("warm-" + std::to_string(i), &ms, &warm);
        rtts.push_back(ms);
        hits += static_cast<std::uint64_t>(warm.cache_hits);
        recomputed += static_cast<std::uint64_t>(warm.recomputed);
      }
      std::sort(rtts.begin(), rtts.end());
      serve_rtt_ms = rtts[rtts.size() / 2];
      serve_warm_hit_rate =
          hits + recomputed > 0
              ? static_cast<double>(hits) /
                    static_cast<double>(hits + recomputed)
              : 0.0;
      // warm jobs resubmit the identical model and config, so anything
      // short of a full cache hit is a determinism bug, not noise
      ok = ok && hits > 0 && recomputed == 0;

      server.request_stop();
      srv.join();
    }
    fs::remove_all(dir, ec);
  }

  if (json) {
    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::printf("  {\"bench\": \"%s\", \"threads\": %d, \"states\": %llu, "
                  "\"states_per_sec\": %.1f, \"bytes_per_state\": %.1f, "
                  "\"wall_seconds\": %.6f}%s\n",
                  r.bench.c_str(), r.threads,
                  static_cast<unsigned long long>(r.states),
                  r.states_per_sec(), r.bytes_per_state(), r.wall,
                  i + 1 < rows.size() ? "," : "");
    }
    std::printf("  ,{\"bench\": \"obs_overhead\", \"threads\": 1, "
                "\"states\": %llu, \"base_seconds\": %.6f, "
                "\"obs_seconds\": %.6f, \"overhead_pct\": %.2f}\n",
                static_cast<unsigned long long>(obs_states), obs_base_s,
                obs_instr_s, obs_overhead_pct);
    std::printf("  ,{\"bench\": \"spill_overhead\", \"threads\": 1, "
                "\"states\": %llu, \"base_seconds\": %.6f, "
                "\"spill_seconds\": %.6f, \"overhead_pct\": %.2f}\n",
                static_cast<unsigned long long>(spill_states), spill_base_s,
                spill_s, spill_overhead_pct);
    std::printf("  ,{\"bench\": \"serve_rtt\", \"threads\": 2, "
                "\"jobs\": %d, \"cold_ms\": %.3f, \"rtt_ms\": %.3f, "
                "\"warm_hit_rate\": %.4f}\n",
                serve_jobs, serve_cold_ms, serve_rtt_ms, serve_warm_hit_rate);
    std::printf("]\n");
  } else {
    std::printf("parallel exploration throughput (v1 bridge, %d car(s)/side, "
                "optimized blocks)\n\n",
                cfg.cars_per_side);
    print_header({"bench", "threads", "states", "states/sec", "B/state",
                  "time"},
                 {16, 9, 12, 14, 10, 12});
    for (const Row& r : rows) {
      print_cell(r.bench, 16);
      print_cell(std::to_string(r.threads), 9);
      print_cell(std::to_string(r.states), 12);
      print_cell(std::to_string(static_cast<long long>(r.states_per_sec())),
                 14);
      print_cell(std::to_string(static_cast<long long>(r.bytes_per_state())),
                 10);
      print_cell(fmt_ms(r.wall) + " ms", 12);
      std::printf("\n");
    }
    std::printf("\nobservability overhead (recorder attached, best of N): "
                "%.3fs -> %.3fs = %.2f%%\n",
                obs_base_s, obs_instr_s, obs_overhead_pct);
    std::printf("spill overhead (mmap disk-backed stores, best of N): "
                "%.3fs -> %.3fs = %.2f%%\n",
                spill_base_s, spill_s, spill_overhead_pct);
    std::printf("pnpd round-trip (%d warm jobs): cold %.1f ms, warm median "
                "%.1f ms, warm hit rate %.0f%%\n",
                serve_jobs, serve_cold_ms, serve_rtt_ms,
                serve_warm_hit_rate * 100.0);
    std::printf("exact runs stored identical state counts at every thread "
                "count: %s\n",
                verdict(ok).c_str());
  }
  return ok ? 0 : 1;
}
