// Reduction + verification-cache benchmark: measures the state-count
// reduction of the minimized-exact search (per-process bisimulation
// quotients, weak and strong) and the obligation cache hit rate across the
// plug-and-play iterate loop (cold run, warm re-run, connector swap).
// Doubles as a soundness gate: every minimized verdict must equal the
// unminimized one, and the warm re-run must hit on every obligation.
//
//   bench_reduce [--quick] [--json]
//
// JSON rows (consumed by scripts/bench.sh, merged into the bench artifact):
//   {"bench": "reduce_*", "mode": "full|weak|strong", "states": N,
//    "ratio": R, "wall_seconds": S}
//   {"bench": "cache_*", "mode": "cold|warm|swap", "obligations": N,
//    "cache_hits": H, "hit_rate": R, "wall_seconds": S}
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common.h"
#include "reduce/reduce.h"

using namespace pnp;
using namespace pnp::benchutil;

namespace {

struct Row {
  std::string bench;
  std::string mode;
  std::uint64_t states{0};  // reduce rows: stored states; cache rows: #obligations
  double ratio{0.0};        // reduce rows: full/this; cache rows: hit rate
  std::uint64_t hits{0};    // cache rows only
  bool is_cache{false};
  double wall{0.0};
};

Architecture pubsub_arch(int n) {
  Architecture arch("pubsub");
  const int s1 = arch.add_component("PubA", sender(n));
  const int s2 = arch.add_component("PubB", sender(n));
  const int r1 = arch.add_component("SubPoll", receiver(2 * n));
  const int r2 = arch.add_component("SubBlock", receiver(2 * n));
  patterns::publish_subscribe(
      arch, "Bus", /*queue_capacity=*/4,
      {{s1, "out", SendPortKind::AsynBlocking},
       {s2, "out", SendPortKind::AsynBlocking}},
      {{r1, "in", RecvPortKind::Nonblocking, {}},
       {r2, "in", RecvPortKind::Blocking, {.remove = true}}});
  return arch;
}

bool bench_reduction(const std::string& name, const Architecture& arch,
                     std::vector<Row>& rows) {
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  bool ok = true;
  std::uint64_t full_states = 0;
  bool full_verdict = false;
  for (const MinimizeMode mode :
       {MinimizeMode::Off, MinimizeMode::Weak, MinimizeMode::Strong}) {
    VerifyOptions opt;
    opt.max_states = 5'000'000;
    opt.minimize = mode;
    const SafetyOutcome out = check_safety(m, opt);
    ok = ok && out.result.stats.complete;
    if (mode == MinimizeMode::Off) {
      full_states = out.result.stats.states_stored;
      full_verdict = out.passed();
    } else {
      ok = ok && out.passed() == full_verdict;  // soundness gate
    }
    rows.push_back({name, to_string(mode), out.result.stats.states_stored,
                    static_cast<double>(full_states) /
                        static_cast<double>(out.result.stats.states_stored),
                    0, false, out.result.stats.seconds});
  }
  return ok;
}

/// Two independent sender->receiver lanes: swapping one lane's channel
/// leaves the other lane's protocol obligation cached.
Architecture two_lane_arch(int n) {
  Architecture arch("two_lane");
  const int s1 = arch.add_component("SenderA", sender(n));
  const int r1 = arch.add_component("ReceiverA", receiver(n));
  const int s2 = arch.add_component("SenderB", sender(n));
  const int r2 = arch.add_component("ReceiverB", receiver(n));
  patterns::point_to_point(arch, s1, "out", r1, "in", "LaneA",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 2});
  patterns::point_to_point(arch, s2, "out", r2, "in", "LaneB",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 2});
  return arch;
}

bool bench_cache(const std::string& name, Architecture arch,
                 const std::string& swap_connector, std::vector<Row>& rows) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("pnp_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  SuiteOptions opts;
  opts.verify.max_states = 5'000'000;
  opts.verify.minimize = MinimizeMode::Weak;
  opts.cache_dir = dir;
  bool ok = true;
  const auto run = [&](const char* mode) {
    const auto t0 = std::chrono::steady_clock::now();
    const SuiteReport rep = verify_obligations(arch, opts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ok = ok && rep.all_passed();
    rows.push_back({name, mode,
                    static_cast<std::uint64_t>(rep.obligations.size()),
                    static_cast<double>(rep.cache_hits()) /
                        static_cast<double>(rep.obligations.size()),
                    static_cast<std::uint64_t>(rep.cache_hits()), true, wall});
    return rep;
  };
  run("cold");
  const SuiteReport warm = run("warm");
  ok = ok && warm.recomputed() == 0;  // unchanged design: 100% hit rate
  // the iterate step: swap one connector's channel kind -- the other
  // connector's protocol obligation must still come from the cache
  arch.set_channel(arch.find_connector(swap_connector),
                   {ChannelKind::SingleSlot, 1});
  const SuiteReport swapped = run("swap");
  ok = ok && swapped.cache_hits() > 0;
  std::filesystem::remove_all(dir);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else {
      std::fprintf(stderr, "usage: bench_reduce [--quick] [--json]\n");
      return 2;
    }
  }

  const int n = quick ? 1 : 2;
  std::vector<Row> rows;
  bool ok = true;
  ok = bench_reduction("reduce_p2p",
                       p2p(n, SendPortKind::AsynBlocking,
                           RecvPortKind::Blocking, {ChannelKind::Fifo, 2}),
                       rows) &&
       ok;
  // The event pool duplicates every message to every subscriber, so the
  // pub/sub product grows steeply in n; one event per publisher already
  // yields a six-figure state space and a measurable reduction ratio.
  ok = bench_reduction("reduce_pubsub", pubsub_arch(1), rows) && ok;
  ok = bench_cache("cache_two_lane", two_lane_arch(n), "LaneB", rows) && ok;

  if (json) {
    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      if (r.is_cache) {
        std::printf("  {\"bench\": \"%s\", \"mode\": \"%s\", "
                    "\"obligations\": %llu, \"cache_hits\": %llu, "
                    "\"hit_rate\": %.3f, \"wall_seconds\": %.6f}%s\n",
                    r.bench.c_str(), r.mode.c_str(),
                    static_cast<unsigned long long>(r.states),
                    static_cast<unsigned long long>(r.hits), r.ratio, r.wall,
                    i + 1 < rows.size() ? "," : "");
      } else {
        std::printf("  {\"bench\": \"%s\", \"mode\": \"%s\", "
                    "\"states\": %llu, \"ratio\": %.3f, "
                    "\"wall_seconds\": %.6f}%s\n",
                    r.bench.c_str(), r.mode.c_str(),
                    static_cast<unsigned long long>(r.states), r.ratio,
                    r.wall, i + 1 < rows.size() ? "," : "");
      }
    }
    std::printf("]\n");
  } else {
    std::printf("compositional reduction + verification cache (n=%d msgs)\n\n",
                n);
    print_header({"bench", "mode", "states/oblig", "ratio/hits", "time"},
                 {16, 9, 14, 12, 12});
    for (const Row& r : rows) {
      print_cell(r.bench, 16);
      print_cell(r.mode, 9);
      print_cell(std::to_string(r.states), 14);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2f", r.ratio);
      print_cell(buf, 12);
      print_cell(fmt_ms(r.wall) + " ms", 12);
      std::printf("\n");
    }
    std::printf("\nminimized verdicts match and the warm cache run hit on "
                "every obligation: %s\n",
                verdict(ok).c_str());
  }
  return ok ? 0 : 1;
}
