// Shared helpers for the experiment harnesses: canonical sender/receiver
// component models (used across E1-E5, E8, E9) and table printing.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "pnp/pnp.h"

namespace pnp::benchutil {

using namespace pnp::model;

/// Sender transmitting `n` numbered messages through port "out", tolerant
/// of SEND_FAIL (checking/nonblocking ports).
inline ComponentModelFn sender(int n) {
  return [n](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    const LVar i = b.local("i", 1);
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(n)),
                           iface::send_msg(b, out, b.l(i)),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(n)), break_()))),
               end_label());
  };
}

/// Receiver draining `n` messages through port "in" (retrying on RECV_FAIL
/// so it composes with nonblocking receive ports too).
inline ComponentModelFn receiver(int n) {
  return [n](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar got = b.local("got", 0);
    const LVar v = b.local("v");
    const LVar st = b.local("st");
    iface::RecvMeta meta;
    meta.status_out = &st;
    return seq(
        do_(alt(seq(end_label(), guard(b.l(got) < b.k(n)),
                    iface::recv_msg(b, in, v, meta),
                    if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                assign(got, b.l(got) + b.k(1)))),
                        alt_else(seq(skip()))))),
            alt(seq(guard(b.l(got) == b.k(n)), break_()))),
        end_label());
  };
}

/// Builds the canonical one-sender/one-receiver architecture.
inline Architecture p2p(int n_msgs, SendPortKind sk, RecvPortKind rk,
                        ChannelSpec cs, RecvPortOpts ro = {}) {
  Architecture arch("p2p");
  const int s = arch.add_component("Sender", sender(n_msgs));
  const int r = arch.add_component("Receiver", receiver(n_msgs));
  patterns::point_to_point(arch, s, "out", r, "in", "Link", sk, rk, cs, ro);
  return arch;
}

// -- table printing --------------------------------------------------------------

inline void print_header(const std::vector<std::string>& cols,
                         const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cols.size(); ++i)
    std::printf("%-*s", widths[i], cols[i].c_str());
  std::printf("\n");
  int total = 0;
  for (int w : widths) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

inline void print_cell(const std::string& s, int width) {
  std::printf("%-*s", width, s.c_str());
}

inline std::string fmt_ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", seconds * 1e3);
  return buf;
}

inline std::string verdict(bool passed) { return passed ? "PASS" : "FAIL"; }

}  // namespace pnp::benchutil
