# Empty compiler generated dependencies file for bench_e10_scaling.
# This may be replaced when dependencies are built.
