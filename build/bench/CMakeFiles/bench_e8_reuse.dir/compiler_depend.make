# Empty compiler generated dependencies file for bench_e8_reuse.
# This may be replaced when dependencies are built.
