# Empty compiler generated dependencies file for bench_fig13_bridge_v1.
# This may be replaced when dependencies are built.
