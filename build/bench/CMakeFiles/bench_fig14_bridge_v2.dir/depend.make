# Empty dependencies file for bench_fig14_bridge_v2.
# This may be replaced when dependencies are built.
