file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_library.dir/bench_fig1_library.cpp.o"
  "CMakeFiles/bench_fig1_library.dir/bench_fig1_library.cpp.o.d"
  "bench_fig1_library"
  "bench_fig1_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
