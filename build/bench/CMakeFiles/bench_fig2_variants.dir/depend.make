# Empty dependencies file for bench_fig2_variants.
# This may be replaced when dependencies are built.
