file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_interfaces.dir/bench_fig3_interfaces.cpp.o"
  "CMakeFiles/bench_fig3_interfaces.dir/bench_fig3_interfaces.cpp.o.d"
  "bench_fig3_interfaces"
  "bench_fig3_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
