# Empty dependencies file for bench_fig3_interfaces.
# This may be replaced when dependencies are built.
