# Empty dependencies file for bench_fig4_msc.
# This may be replaced when dependencies are built.
