# Empty dependencies file for bench_fig5_blocks.
# This may be replaced when dependencies are built.
