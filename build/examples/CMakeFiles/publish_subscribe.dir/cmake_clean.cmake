file(REMOVE_RECURSE
  "CMakeFiles/publish_subscribe.dir/publish_subscribe.cpp.o"
  "CMakeFiles/publish_subscribe.dir/publish_subscribe.cpp.o.d"
  "publish_subscribe"
  "publish_subscribe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publish_subscribe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
