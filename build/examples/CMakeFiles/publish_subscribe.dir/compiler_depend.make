# Empty compiler generated dependencies file for publish_subscribe.
# This may be replaced when dependencies are built.
