file(REMOVE_RECURSE
  "CMakeFiles/rpc_pipeline.dir/rpc_pipeline.cpp.o"
  "CMakeFiles/rpc_pipeline.dir/rpc_pipeline.cpp.o.d"
  "rpc_pipeline"
  "rpc_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
