file(REMOVE_RECURSE
  "CMakeFiles/single_lane_bridge.dir/single_lane_bridge.cpp.o"
  "CMakeFiles/single_lane_bridge.dir/single_lane_bridge.cpp.o.d"
  "single_lane_bridge"
  "single_lane_bridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_lane_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
