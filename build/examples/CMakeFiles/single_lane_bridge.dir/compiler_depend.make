# Empty compiler generated dependencies file for single_lane_bridge.
# This may be replaced when dependencies are built.
