
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adl/adl.cpp" "src/CMakeFiles/pnp.dir/adl/adl.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/adl/adl.cpp.o.d"
  "/root/repo/src/bridge/bridge.cpp" "src/CMakeFiles/pnp.dir/bridge/bridge.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/bridge/bridge.cpp.o.d"
  "/root/repo/src/compile/compiler.cpp" "src/CMakeFiles/pnp.dir/compile/compiler.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/compile/compiler.cpp.o.d"
  "/root/repo/src/explore/explorer.cpp" "src/CMakeFiles/pnp.dir/explore/explorer.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/explore/explorer.cpp.o.d"
  "/root/repo/src/explore/por.cpp" "src/CMakeFiles/pnp.dir/explore/por.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/explore/por.cpp.o.d"
  "/root/repo/src/expr/expr.cpp" "src/CMakeFiles/pnp.dir/expr/expr.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/expr/expr.cpp.o.d"
  "/root/repo/src/kernel/state.cpp" "src/CMakeFiles/pnp.dir/kernel/state.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/kernel/state.cpp.o.d"
  "/root/repo/src/kernel/successor.cpp" "src/CMakeFiles/pnp.dir/kernel/successor.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/kernel/successor.cpp.o.d"
  "/root/repo/src/ltl/buchi.cpp" "src/CMakeFiles/pnp.dir/ltl/buchi.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/ltl/buchi.cpp.o.d"
  "/root/repo/src/ltl/formula.cpp" "src/CMakeFiles/pnp.dir/ltl/formula.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/ltl/formula.cpp.o.d"
  "/root/repo/src/ltl/lexer.cpp" "src/CMakeFiles/pnp.dir/ltl/lexer.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/ltl/lexer.cpp.o.d"
  "/root/repo/src/ltl/parser.cpp" "src/CMakeFiles/pnp.dir/ltl/parser.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/ltl/parser.cpp.o.d"
  "/root/repo/src/ltl/product.cpp" "src/CMakeFiles/pnp.dir/ltl/product.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/ltl/product.cpp.o.d"
  "/root/repo/src/model/builder.cpp" "src/CMakeFiles/pnp.dir/model/builder.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/model/builder.cpp.o.d"
  "/root/repo/src/model/system.cpp" "src/CMakeFiles/pnp.dir/model/system.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/model/system.cpp.o.d"
  "/root/repo/src/pml/lexer.cpp" "src/CMakeFiles/pnp.dir/pml/lexer.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pml/lexer.cpp.o.d"
  "/root/repo/src/pml/parser.cpp" "src/CMakeFiles/pnp.dir/pml/parser.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pml/parser.cpp.o.d"
  "/root/repo/src/pnp/architecture.cpp" "src/CMakeFiles/pnp.dir/pnp/architecture.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/architecture.cpp.o.d"
  "/root/repo/src/pnp/blocks.cpp" "src/CMakeFiles/pnp.dir/pnp/blocks.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/blocks.cpp.o.d"
  "/root/repo/src/pnp/generator.cpp" "src/CMakeFiles/pnp.dir/pnp/generator.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/generator.cpp.o.d"
  "/root/repo/src/pnp/interfaces.cpp" "src/CMakeFiles/pnp.dir/pnp/interfaces.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/interfaces.cpp.o.d"
  "/root/repo/src/pnp/patterns.cpp" "src/CMakeFiles/pnp.dir/pnp/patterns.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/patterns.cpp.o.d"
  "/root/repo/src/pnp/textual.cpp" "src/CMakeFiles/pnp.dir/pnp/textual.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/textual.cpp.o.d"
  "/root/repo/src/pnp/verifier.cpp" "src/CMakeFiles/pnp.dir/pnp/verifier.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/pnp/verifier.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/pnp.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/support/panic.cpp" "src/CMakeFiles/pnp.dir/support/panic.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/support/panic.cpp.o.d"
  "/root/repo/src/support/string_util.cpp" "src/CMakeFiles/pnp.dir/support/string_util.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/support/string_util.cpp.o.d"
  "/root/repo/src/trace/msc.cpp" "src/CMakeFiles/pnp.dir/trace/msc.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/trace/msc.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/pnp.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/pnp.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
