file(REMOVE_RECURSE
  "libpnp.a"
)
