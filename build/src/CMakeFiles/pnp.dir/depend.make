# Empty dependencies file for pnp.
# This may be replaced when dependencies are built.
