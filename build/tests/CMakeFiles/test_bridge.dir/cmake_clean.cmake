file(REMOVE_RECURSE
  "CMakeFiles/test_bridge.dir/test_bridge.cpp.o"
  "CMakeFiles/test_bridge.dir/test_bridge.cpp.o.d"
  "test_bridge"
  "test_bridge.pdb"
  "test_bridge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
