file(REMOVE_RECURSE
  "CMakeFiles/test_bridge_trace.dir/test_bridge_trace.cpp.o"
  "CMakeFiles/test_bridge_trace.dir/test_bridge_trace.cpp.o.d"
  "test_bridge_trace"
  "test_bridge_trace.pdb"
  "test_bridge_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bridge_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
