# Empty dependencies file for test_bridge_trace.
# This may be replaced when dependencies are built.
