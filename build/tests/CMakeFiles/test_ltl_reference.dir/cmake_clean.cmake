file(REMOVE_RECURSE
  "CMakeFiles/test_ltl_reference.dir/test_ltl_reference.cpp.o"
  "CMakeFiles/test_ltl_reference.dir/test_ltl_reference.cpp.o.d"
  "test_ltl_reference"
  "test_ltl_reference.pdb"
  "test_ltl_reference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ltl_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
