# Empty dependencies file for test_ltl_reference.
# This may be replaced when dependencies are built.
