file(REMOVE_RECURSE
  "CMakeFiles/test_pml.dir/test_pml.cpp.o"
  "CMakeFiles/test_pml.dir/test_pml.cpp.o.d"
  "test_pml"
  "test_pml.pdb"
  "test_pml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
