# Empty dependencies file for test_pml.
# This may be replaced when dependencies are built.
