file(REMOVE_RECURSE
  "CMakeFiles/test_pnp_basic.dir/test_pnp_basic.cpp.o"
  "CMakeFiles/test_pnp_basic.dir/test_pnp_basic.cpp.o.d"
  "test_pnp_basic"
  "test_pnp_basic.pdb"
  "test_pnp_basic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnp_basic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
