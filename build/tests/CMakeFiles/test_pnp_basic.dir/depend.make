# Empty dependencies file for test_pnp_basic.
# This may be replaced when dependencies are built.
