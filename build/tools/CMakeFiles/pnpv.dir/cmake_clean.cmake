file(REMOVE_RECURSE
  "CMakeFiles/pnpv.dir/pnpv.cpp.o"
  "CMakeFiles/pnpv.dir/pnpv.cpp.o.d"
  "pnpv"
  "pnpv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnpv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
