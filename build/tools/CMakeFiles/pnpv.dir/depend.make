# Empty dependencies file for pnpv.
# This may be replaced when dependencies are built.
