/* Rendezvous client/server with mtype tags and an end-labeled server loop.
 *
 *   pnpv client_server.pml
 *   pnpv client_server.pml --prop served="served == 2" --ltl "F served" --fair
 */
mtype = { REQ, REP };
chan c = [0] of { mtype, byte };
byte served;

proctype Server(chan link) {
  byte v;
  end: do
  :: link?REQ,v -> served++
  od
}

proctype Client(chan link; byte id) {
  link!REQ,id
}

init {
  run Server(c);
  run Client(c, 1);
  run Client(c, 2)
}
