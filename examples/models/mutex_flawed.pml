/* A (deliberately broken) mutual-exclusion attempt: both processes can
 * pass the naive flag check simultaneously.
 *
 *   pnpv mutex_flawed.pml --invariant "critical <= 1"   # FAILs with a trace
 */
byte flag0, flag1, critical;

active proctype A() {
  flag1 == 0;        /* wait until the other is out -- NOT atomic with entry */
  flag0 = 1;
  critical++;
  assert(critical == 1);
  critical--;
  flag0 = 0
}

active proctype B() {
  flag0 == 0;
  flag1 = 1;
  critical++;
  assert(critical == 1);
  critical--;
  flag1 = 0
}
