/* The paper's building-block listings (Figs. 6, 8, 9, 10, 11) as a
 * runnable PML model: a sender component -> synchronous blocking send
 * port -> single-slot buffer channel -> blocking receive port -> receiver
 * component. The SynChan typedef of the paper (a struct of two rendezvous
 * channels) is flattened into explicit signal/data channel pairs, and
 * send-side signals are pid-tagged consistently (see DESIGN.md 5.1).
 *
 *   pnpv paper_blocks.pml --end-invariant "delivered == 2"
 *   pnpv paper_blocks.pml --simulate 60 --msc
 */
mtype = { SEND_SUCC, SEND_FAIL, IN_OK, IN_FAIL,
          OUT_OK, OUT_FAIL, RECV_OK, RECV_SUCC, RECV_FAIL };

/* SynChan pairs: component<->send port, send port<->channel,
 * channel<->receive port, receive port<->component */
chan sCompSig = [0] of { mtype, byte };
chan sCompData = [0] of { byte, byte };
chan sChanSig = [0] of { mtype, byte };
chan sChanData = [0] of { byte, byte };
chan rCompSig = [0] of { mtype, byte };
chan rCompData = [0] of { byte, byte };
chan rChanSig = [0] of { mtype, byte };
chan rChanData = [0] of { byte, byte };

byte delivered;

/* Fig. 6: synchronous blocking send port */
proctype SynBlSendPort(chan compSig; chan compData;
                       chan chanSig; chan chanData) {
  byte d; byte snd;
  end: do
  :: compData?d,snd ->            /* receives m from the sending component */
     do
     :: chanData!d,_pid ->        /* forwards m to the channel */
        if
        :: chanSig?IN_OK,eval(_pid) -> break
        :: chanSig?IN_FAIL,eval(_pid)   /* buffer full: retry */
        fi
     od;
     chanSig?RECV_OK,eval(_pid);  /* delivered to a receiver */
     compSig!SEND_SUCC,0
  od
}

/* Fig. 11: single-slot buffer channel */
proctype SingleSlotBuffer(chan sendSig; chan sendData;
                          chan recvSig; chan recvData) {
  byte d; byte snd; byte bufD; byte bufSnd;
  bool bufEmpty = true;
  end: do
  :: recvData?d,snd ->            /* a receive request */
     if
     :: !bufEmpty ->
        recvSig!OUT_OK,0;
        recvData!bufD,bufSnd;
        sendSig!RECV_OK,bufSnd;   /* notify the originating send port */
        bufEmpty = true
     :: else -> recvSig!OUT_FAIL,0
     fi
  :: sendData?d,snd ->
     if
     :: bufEmpty -> sendSig!IN_OK,snd; bufD = d; bufSnd = snd; bufEmpty = false
     :: else -> sendSig!IN_FAIL,snd
     fi
  od
}

/* Fig. 8: blocking receive port */
proctype BlRecvPort(chan compSig; chan compData;
                    chan chanSig; chan chanData) {
  byte d; byte snd;
  end: do
  :: compData?d,snd ->            /* receive request from the component */
     do
     :: chanData!0,_pid ->        /* forward the request to the channel */
        if
        :: chanSig?OUT_OK,_ -> chanData?d,snd; break
        :: chanSig?OUT_FAIL,_    /* nothing buffered: retry */
        fi
     od;
     compSig!RECV_SUCC,0;
     compData!d,snd
  od
}

/* Fig. 9: sending component (standard interface) */
proctype Sender(chan portSig; chan portData) {
  byte i = 1;
  do
  :: i <= 2 -> portData!i,0; portSig?SEND_SUCC,_; i++
  :: i > 2 -> break
  od
}

/* Fig. 10: receiving component (standard interface) */
proctype Receiver(chan portSig; chan portData) {
  byte j = 1; byte v; byte snd;
  do
  :: j <= 2 ->
     portData!0,0;                /* receive request */
     portSig?RECV_SUCC,_;
     portData?v,snd;
     assert(v == j);
     delivered++;
     j++
  :: j > 2 -> break
  od
}

init {
  run Sender(sCompSig, sCompData);
  run SynBlSendPort(sCompSig, sCompData, sChanSig, sChanData);
  run SingleSlotBuffer(sChanSig, sChanData, rChanSig, rChanData);
  run BlRecvPort(rCompSig, rCompData, rChanSig, rChanData);
  run Receiver(rCompSig, rCompData)
}
