/* Producer/consumer over a bounded FIFO -- a PML (Promela-subset) model
 * for the pnpv command-line verifier.
 *
 *   pnpv producer_consumer.pml --invariant "received <= 3"
 *   pnpv producer_consumer.pml --prop done="received == 3" --ltl "F done" --fair
 *   pnpv producer_consumer.pml --simulate 40 --msc
 */
chan box = [2] of { byte };
byte received;

active proctype Producer() {
  byte i = 1;
  do
  :: i <= 3 -> box!i; i++
  :: i > 3 -> break
  od
}

active proctype Consumer() {
  byte j = 1;
  byte v;
  do
  :: j <= 3 -> box?v; assert(v == j); received++; j++
  :: j > 3 -> break
  od
}
