/* Two independent relay pipelines racing into a shared tally -- a model
 * sized for durability soaks (a few hundred thousand states), not for
 * quick smoke runs. The interleaving space is the product of the two
 * pipelines' schedules, so it is large while every run stays exact.
 *
 *   pnpv relay_mesh.pml --invariant "tally <= 10"
 *   scripts/soak_resume.sh          # SIGKILL/resume equivalence soak
 */
chan a1 = [3] of { byte };
chan a2 = [3] of { byte };
chan b1 = [3] of { byte };
chan b2 = [3] of { byte };
byte tally;

active proctype SourceA() {
  byte i = 0;
  do
  :: i < 5 -> a1!i; i++
  :: i >= 5 -> break
  od
}

active proctype RelayA() {
  byte v;
  end: do
  :: a1?v -> a2!v
  od
}

active proctype SinkA() {
  byte v;
  byte expect = 0;
  do
  :: expect < 5 -> a2?v; assert(v == expect); expect++; tally++
  :: expect >= 5 -> break
  od
}

active proctype SourceB() {
  byte i = 0;
  do
  :: i < 5 -> b1!i; i++
  :: i >= 5 -> break
  od
}

active proctype RelayB() {
  byte v;
  end: do
  :: b1?v -> b2!v
  od
}

active proctype SinkB() {
  byte v;
  byte expect = 0;
  do
  :: expect < 5 -> b2?v; assert(v == expect); expect++; tally++
  :: expect >= 5 -> break
  od
}
