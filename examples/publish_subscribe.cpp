// Publish/subscribe built from the same building blocks (paper section 2.2:
// the standard interfaces generalize beyond message passing; section 6 names
// pub/sub as the next target). Two sensors publish readings tagged with a
// topic; a logger subscribes to everything while an alarm component uses a
// selective receive port to see only the "pressure" topic.
//
// Run: build/examples/publish_subscribe
#include <cstdio>

#include "pnp/pnp.h"

using namespace pnp;
using namespace pnp::model;

namespace {

constexpr Value kTopicTemp = 1;
constexpr Value kTopicPressure = 2;
constexpr int kEvents = 2;

ComponentModelFn sensor(Value topic) {
  return [topic](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("pub");
    const LVar i = b.local("i", 1);
    iface::SendMeta meta;
    meta.tag = topic;  // the message's selectiveData field carries the topic
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(kEvents)),
                           iface::send_msg(b, out, b.l(i), meta),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(kEvents)), break_()))),
               end_label());
  };
}

// Consumes `expected` events (any topic) using a nonblocking receive in a
// polling loop, counting what it saw into a global.
ComponentModelFn logger(int expected) {
  return [expected](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("sub");
    const GVar seen = ctx.global("logged");
    const LVar v = b.local("v");
    const LVar st = b.local("st");
    iface::RecvMeta meta;
    meta.status_out = &st;
    return seq(
        do_(alt(seq(end_label(), guard(ctx.g("logged") < b.k(expected)),
                    iface::recv_msg(b, in, v, meta),
                    if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                assign(seen, ctx.g("logged") + b.k(1)))),
                        alt_else(seq(skip()))))),
            alt(seq(guard(ctx.g("logged") >= b.k(expected)), break_()))),
        end_label());
  };
}

// Waits (blocking + selective) for pressure events only.
ComponentModelFn alarm() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("sub");
    const GVar fired = ctx.global("alarms");
    const LVar v = b.local("v");
    const LVar j = b.local("j", 1);
    iface::RecvMeta meta;
    meta.tag = kTopicPressure;  // topic filter via selective receive
    return seq(do_(alt(seq(guard(b.l(j) <= b.k(kEvents)),
                           iface::recv_msg(b, in, v, meta),
                           assign(fired, ctx.g("alarms") + b.k(1)),
                           assign(j, b.l(j) + b.k(1)))),
                   alt(seq(guard(b.l(j) > b.k(kEvents)), break_()))),
               end_label());
  };
}

}  // namespace

int main() {
  Architecture arch("pubsub");
  arch.add_global("logged", 0);
  arch.add_global("alarms", 0);
  const int temp = arch.add_component("TempSensor", sensor(kTopicTemp));
  const int pres = arch.add_component("PressureSensor", sensor(kTopicPressure));
  const int log = arch.add_component("Logger", logger(2 * kEvents));
  const int alrm = arch.add_component("Alarm", alarm());

  patterns::publish_subscribe(
      arch, "Bus", /*queue_capacity=*/4,
      {{temp, "pub", SendPortKind::AsynBlocking},
       {pres, "pub", SendPortKind::AsynBlocking}},
      {{log, "sub", RecvPortKind::Nonblocking, {}},
       {alrm, "sub", RecvPortKind::Blocking, {.remove = true, .selective = true}}});

  std::printf("%s\n", arch.describe().c_str());

  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);

  // Every execution delivers all four events to the logger and both
  // pressure events to the alarm (queues are large enough not to drop).
  // the polling logger (nonblocking receive) makes the faithful space large;
  // these are bounded searches
  const SafetyOutcome out = check_invariant(
      m,
      gen.gx("logged") <= gen.kx(2 * kEvents) &&
          gen.gx("alarms") <= gen.kx(kEvents),
      "delivery counters bounded", bounded(2'000'000));
  std::printf("%s\n", out.report().c_str());

  // And the system terminates with everything delivered: no deadlock means
  // the alarm's two selective receives were satisfiable in every run.
  const SafetyOutcome dl = check_safety(m, bounded(2'000'000));
  std::printf("%s\n", dl.report().c_str());

  // Strongest form: every terminal state has full delivery.
  const SafetyOutcome endinv = check_end_invariant(
      m,
      gen.gx("logged") == gen.kx(2 * kEvents) &&
          gen.gx("alarms") == gen.kx(kEvents),
      "all events delivered at quiescence", bounded(2'000'000));
  std::printf("%s\n", endinv.report().c_str());
  return 0;
}
