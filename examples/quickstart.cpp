// Quickstart: design a two-component system, verify it, then swap the
// connector's building blocks plug-and-play style and re-verify -- the
// component models are untouched and reused.
//
// Run: build/examples/quickstart
#include <cstdio>

#include "pnp/pnp.h"

using namespace pnp;
using namespace pnp::model;

namespace {

constexpr int kMsgs = 3;

// A producer that pushes kMsgs numbered messages through its "out" port.
// Note there is nothing connector-specific here: the component only speaks
// the standard interface (send message, await SendStatus).
ComponentModelFn producer() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    const LVar i = b.local("i", 1);
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(kMsgs)),
                           iface::send_msg(b, out, b.l(i)),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(kMsgs)), break_()))),
               end_label());
  };
}

// A consumer that pulls kMsgs messages and checks they arrive in order.
ComponentModelFn consumer() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar j = b.local("j", 1);
    const LVar v = b.local("v");
    return seq(do_(alt(seq(guard(b.l(j) <= b.k(kMsgs)),
                           iface::recv_msg(b, in, v),
                           assert_(b.l(v) == b.l(j), "in-order delivery"),
                           assign(j, b.l(j) + b.k(1)))),
                   alt(seq(guard(b.l(j) > b.k(kMsgs)), break_()))),
               end_label());
  };
}

void verify(const char* what, Session& session, const Architecture& arch) {
  // One Session call per design iteration: the suite (connector protocol +
  // safety obligations), the session-owned generator reusing component
  // models across the plug-and-play edits, and the per-run generation cost
  // all come out in one RunReport.
  const RunReport rep = session.verify(arch);
  std::printf("---- %s ----\n%s\n", what, rep.report().c_str());
}

}  // namespace

int main() {
  Architecture arch("quickstart");
  const int p = arch.add_component("Producer", producer());
  const int c = arch.add_component("Consumer", consumer());
  patterns::point_to_point(arch, p, "out", c, "in", "Link",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  std::printf("%s\n", arch.describe().c_str());

  Session session;
  verify("initial design: AsynBlSend + SingleSlot + BlRecv", session, arch);

  // Plug-and-play edit #1: make the send synchronous. Only the connector
  // changes; the generator reuses both component models.
  arch.set_send_port(p, "out", SendPortKind::SynBlocking);
  verify("after swapping send port to SynBlSend", session, arch);

  // Plug-and-play edit #2: give the connector a FIFO queue of 4.
  arch.set_channel(arch.find_connector("Link"), {ChannelKind::Fifo, 4});
  verify("after swapping channel to Fifo(4)", session, arch);

  // Bonus: watch one run of the final design as a message sequence chart.
  const kernel::Machine m = session.generator().generate(arch);
  sim::Simulator simu(m, /*seed=*/42);
  simu.run_random(400);
  trace::MscOptions msc;
  msc.pids = {0, 1};  // the two components
  msc.show_local = false;
  std::printf("sample run (components only):\n%s\n",
              trace::render_msc(m, simu.history(), msc).c_str());
  return 0;
}
