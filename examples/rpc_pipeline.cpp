// RPC composed from message-passing building blocks (paper section 2.2:
// the same standard interfaces support RPC). A client calls a compute
// server which doubles the argument; a second client shares the server,
// exercising request interleaving through the same connector pair.
//
// Run: build/examples/rpc_pipeline
#include <cstdio>

#include "pnp/pnp.h"

using namespace pnp;
using namespace pnp::model;

namespace {

constexpr int kCalls = 2;

ComponentModelFn client(int first_arg, const char* done_global) {
  return [first_arg, done_global](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint call = ctx.port("call");
    const PortEndpoint reply = ctx.port("reply");
    const GVar done = ctx.global(done_global);
    const LVar i = b.local("i", 0);
    const LVar r = b.local("r");
    return seq(
        do_(alt(seq(guard(b.l(i) < b.k(kCalls)),
                    // call(arg); the SynBlocking send blocks until the
                    // server has accepted the request...
                    iface::send_msg(b, call, b.l(i) + b.k(first_arg)),
                    // ...and the blocking receive awaits the reply.
                    iface::recv_msg(b, reply, r),
                    assert_(b.l(r) == (b.l(i) + b.k(first_arg)) * b.k(2),
                            "server doubles its argument"),
                    assign(i, b.l(i) + b.k(1)))),
            alt(seq(guard(b.l(i) == b.k(kCalls)), break_()))),
        assign(done, b.k(1)), end_label());
  };
}

// Serves forever: receive a request, send back twice its value. Replies go
// through per-client reply connectors selected by the request tag.
ComponentModelFn server() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint rx = ctx.port("rx");
    const PortEndpoint tx0 = ctx.port("tx0");
    const PortEndpoint tx1 = ctx.port("tx1");
    const LVar v = b.local("v");
    return seq(do_(alt(seq(
        end_label(), iface::recv_msg(b, rx, v),
        // requests below 100 come from client 0 (its args are 1..),
        // 100+ from client 1 -- a simple routing convention
        if_(alt(seq(guard(b.l(v) < b.k(100)),
                    iface::send_msg(b, tx0, b.l(v) * b.k(2)))),
            alt_else(seq(iface::send_msg(b, tx1, b.l(v) * b.k(2)))))))));
  };
}

}  // namespace

int main() {
  Architecture arch("rpc");
  arch.add_global("c0_done", 0);
  arch.add_global("c1_done", 0);
  const int c0 = arch.add_component("Client0", client(1, "c0_done"));
  const int c1 = arch.add_component("Client1", client(100, "c1_done"));
  const int srv = arch.add_component("Server", server());

  // Shared request connector: both clients' SynBlocking call ports feed the
  // same FIFO; per-client reply connectors route results back.
  const int req = arch.add_connector("Calls", {ChannelKind::Fifo, 2});
  arch.attach_sender(c0, "call", req, SendPortKind::SynBlocking);
  arch.attach_sender(c1, "call", req, SendPortKind::SynBlocking);
  arch.attach_receiver(srv, "rx", req, RecvPortKind::Blocking);
  patterns::point_to_point(arch, srv, "tx0", c0, "reply", "Reply0",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  patterns::point_to_point(arch, srv, "tx1", c1, "reply", "Reply1",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});

  std::printf("%s\n", arch.describe().c_str());

  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  std::printf("%s\n", out.report().c_str());

  // Progress, fairness-free: whenever the system quiesces, both clients
  // have completed every call.
  const SafetyOutcome endinv = check_end_invariant(
      m, gen.gx("c0_done") == gen.kx(1) && gen.gx("c1_done") == gen.kx(1),
      "all calls completed at quiescence");
  std::printf("%s\n", endinv.report().c_str());

  // Liveness via LTL. Under an unfair scheduler "F c0_done" is refutable
  // (the server's receive port may poll forever). Weak fairness is not
  // enough on the faithful block models either: a port's rendezvous with
  // the channel process blinks on and off, so the port escapes the
  // weak-fairness obligation. With the optimized connector substitution
  // (no channel process; ports block on the native queue) weak fairness
  // suffices and the property verifies.
  gen.add_prop("c0_done", gen.gx("c0_done") == gen.kx(1));
  const LtlOutcome unfair = check_ltl_formula(m, gen.props(), "F c0_done");
  std::printf("faithful models, no fairness (expected FAIL):\n%s\n",
              unfair.report().c_str());
  const kernel::Machine mo = gen.generate(arch, {.optimize_connectors = true});
  const LtlOutcome fair = check_ltl_formula(mo, gen.props(), "F c0_done",
                                            ltl::fair());
  std::printf("optimized connectors + weak fairness (expected PASS):\n%s\n",
              fair.report().c_str());
  return 0;
}
