// The paper's section 4 case study, end to end:
//   1. verify the initial "exactly-N-cars-per-turn" design (Fig. 13) and
//      watch verification expose the wrong choice of send port,
//   2. apply the plug-and-play fix (swap one building block) and re-verify,
//   3. verify the richer "at-most-N-cars-per-turn" design (Fig. 14).
//
// Run: build/examples/single_lane_bridge [cars_per_side] [batch_n]
#include <cstdio>
#include <cstdlib>

#include "bridge/bridge.h"

using namespace pnp;
using namespace pnp::bridge;

int main(int argc, char** argv) {
  BridgeConfig cfg;
  if (argc > 1) cfg.cars_per_side = std::atoi(argv[1]);
  if (argc > 2) cfg.batch_n = std::atoi(argv[2]);
  cfg.buggy_async_enter = true;

  std::printf("=== single-lane bridge: %d car(s) per side, N=%d ===\n\n",
              cfg.cars_per_side, cfg.batch_n);

  // Verification uses the optimized-connector substitution (paper section 6)
  // so the walkthrough stays interactive; bench_e10_scaling quantifies the
  // faithful busy-polling models' cost.
  const GenOptions kOpt{.optimize_connectors = true};

  // -- step 1: the initial design ------------------------------------------
  Architecture v1 = make_v1(cfg);
  std::printf("%s\n", v1.describe().c_str());

  ModelGenerator gen;
  {
    const kernel::Machine m = gen.generate(v1, kOpt);
    const SafetyOutcome out = check_invariant(
        m, safety_invariant(gen), "no opposite traffic on the bridge");
    std::printf("%s\n", out.report().c_str());
    std::printf("generation: %s\n\n", gen.last_stats().summary().c_str());
  }

  // -- step 2: the plug-and-play fix ----------------------------------------
  std::printf(">> swapping the enter-request send ports: AsynBlSend -> "
              "SynBlSend (components untouched)\n\n");
  apply_v1_fix(v1, cfg);
  {
    const kernel::Machine m = gen.generate(v1, kOpt);
    const SafetyOutcome out = check_invariant(
        m, safety_invariant(gen) && batch_bound_invariant(gen, cfg.batch_n),
        "no opposite traffic + at most N per direction");
    std::printf("%s\n", out.report().c_str());
    std::printf("generation: %s\n   (note: 0 component models rebuilt)\n\n",
                gen.last_stats().summary().c_str());
  }

  // -- step 3: the at-most-N design -----------------------------------------
  std::printf(">> switching to the at-most-N-cars-per-turn design (Fig. 14)\n\n");
  BridgeConfig v2cfg = cfg;
  v2cfg.enter_queue_capacity = 1;
  Architecture v2 = make_v2(v2cfg);
  std::printf("%s\n", v2.describe().c_str());
  {
    // v2's polling controllers explode the interleaving space (paper
    // section 6); this is a bounded search: no violation within 2M states.
    ModelGenerator gen2;
    const kernel::Machine m = gen2.generate(v2, kOpt);
    const SafetyOutcome out = check_invariant(
        m, safety_invariant(gen2), "no opposite traffic on the bridge",
        bounded(2'000'000));
    std::printf("%s\n", out.report().c_str());
  }
  return 0;
}
