// The paper's section 4 design-iterate-verify loop with the verification
// cache in it: verify a design, swap one connector's channel kind
// plug-and-play style, and re-verify -- the cache answers every obligation
// whose architecture slice did not change, so only the swapped connector's
// protocol obligation and the global properties are recomputed. A third,
// no-edit run answers everything from the cache.
//
// Run: build/examples/swap_iteration
#include <cstdio>
#include <filesystem>

#include "pnp/pnp.h"

using namespace pnp;
using namespace pnp::model;

namespace {

constexpr int kMsgs = 2;

ComponentModelFn producer(const char* port) {
  return [port](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port(port);
    const LVar i = b.local("i", 1);
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(kMsgs)),
                           iface::send_msg(b, out, b.l(i)),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(kMsgs)), break_()))),
               end_label());
  };
}

ComponentModelFn consumer(const char* port, const char* counter) {
  return [port, counter](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port(port);
    const GVar got = ctx.global(counter);
    const LVar v = b.local("v");
    return seq(do_(alt(seq(guard(ctx.g(counter) < b.k(kMsgs)),
                           iface::recv_msg(b, in, v),
                           assign(got, ctx.g(counter) + b.k(1)))),
                   alt(seq(guard(ctx.g(counter) == b.k(kMsgs)), break_()))),
               end_label());
  };
}

/// Two independent producer->consumer lanes: editing one connector leaves
/// the other's slice (and its cached verdict) untouched.
Architecture two_lanes() {
  Architecture arch("two_lanes");
  arch.add_global("got_a", 0);
  arch.add_global("got_b", 0);
  const int pa = arch.add_component("ProducerA", producer("out"));
  const int ca = arch.add_component("ConsumerA", consumer("in", "got_a"));
  const int pb = arch.add_component("ProducerB", producer("out"));
  const int cb = arch.add_component("ConsumerB", consumer("in", "got_b"));
  patterns::point_to_point(arch, pa, "out", ca, "in", "LaneA",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 2});
  patterns::point_to_point(arch, pb, "out", cb, "in", "LaneB",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 2});
  return arch;
}

RunReport run(Session& session, const Architecture& arch,
              const char* banner) {
  const RunReport rep = session.verify(arch);
  std::printf("== %s ==\n%s", banner, rep.report().c_str());
  std::printf("   -> %d reused from cache, %d recomputed\n\n",
              rep.cache_hits(), rep.recomputed());
  return rep;
}

}  // namespace

int main() {
  const std::string cache_dir =
      (std::filesystem::temp_directory_path() / "pnp_swap_iteration_cache")
          .string();
  std::filesystem::remove_all(cache_dir);  // deterministic demo runs

  Architecture arch = two_lanes();
  std::printf("%s\n", arch.describe().c_str());

  // One Session for the whole loop: the config is stated once, the verdict
  // cache persists across its runs, and the session-owned generator reuses
  // component models between iterations.
  RunConfig cfg;
  cfg.minimize = MinimizeMode::Weak;
  cfg.invariant_text = "got_a <= 2 && got_b <= 2";
  cfg.end_invariant_text = "got_a == 2 && got_b == 2";
  cfg.cache_dir = cache_dir;
  Session session(cfg);

  // Iteration 1: a cold cache -- every obligation is verified and stored.
  run(session, arch, "iteration 1: initial design, cold cache");

  // Iteration 2: the plug-and-play edit. Swap LaneB's channel for a
  // single-slot buffer; component models and LaneA are untouched.
  arch.set_channel(arch.find_connector("LaneB"), {ChannelKind::SingleSlot, 1});
  std::printf("edit: LaneB fifo(2) -> single-slot\n\n");
  run(session, arch,
      "iteration 2: LaneB swapped (LaneA protocol reused from cache)");

  // Iteration 3: no edit -- the whole suite is answered from the cache.
  run(session, arch, "iteration 3: unchanged design, 100% cache hits");
  return 0;
}
