#!/usr/bin/env bash
# Benchmark runner: builds the Release tree and runs the parallel-exploration
# throughput bench plus the reduction/cache bench, merging both row sets into
# one machine-readable JSON artifact.
#
#   scripts/bench.sh                 # full run, results in BENCH.json
#   scripts/bench.sh --smoke         # quick CI-sized run -> BENCH_ci.json
#   scripts/bench.sh --out FILE.json # choose the output path
#
# Smoke runs also gate against the committed baseline (when the output path
# already holds one): any row whose bytes_per_state grew by more than 10%
# against the matching (bench, threads) baseline row fails the run, and so
# does any row whose states_per_sec fell more than 10% after normalizing by
# the run-wide geometric-mean speed ratio -- the normalization cancels the
# absolute speed difference between the baseline machine and this one, so
# the gate catches one bench regressing relative to the others rather than
# punishing slower hardware.
#
# The wall-clock gates (observability overhead, spill overhead, normalized
# throughput) get ONE retry: a failure reruns both benches and only a second
# consecutive failure fails the script. Shared CI runners see transient
# load spikes that a single sample cannot distinguish from a regression;
# two independent runs agreeing is a real signal. The deterministic gates
# (bytes/state, pnpd warm-cache hit rate) fail immediately -- they cannot
# be noise.
#
# Rows: {"bench", "threads", "states", "states_per_sec", "wall_seconds"} from
# bench_parallel, plus {"bench", "mode", "states", "ratio", ...} reduction-
# ratio rows and {"bench", "mode", "obligations", "cache_hits", "hit_rate",
# ...} cache rows from bench_reduce, plus the compiled-engine rows from
# bench_codegen: codegen_{interp,bytecode,aot} throughput rows (and the
# codegen_por_* / codegen_ltl_* lanes for the engine-backed POR and LTL
# product searches) carrying "speedup_vs_interp" and "bytes_per_state",
# and one codegen_compile row with the cold/warm artifact-cache compile
# times. Both benches exit non-zero when a run
# fails verification, minimized verdicts diverge, or state counts disagree
# across thread counts, so this doubles as a determinism/soundness gate.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --out) out="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE.json]" >&2; exit 2 ;;
  esac
  shift
done
if [[ -z "$out" ]]; then
  out=$([[ $smoke -eq 1 ]] && echo BENCH_ci.json || echo BENCH.json)
fi

# Preserve the committed baseline (if any) before it is overwritten, for the
# regression gates below.
baseline=""
if [[ $smoke -eq 1 && -f "$out" ]]; then
  baseline=$(mktemp)
  cp "$out" "$baseline"
fi

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target bench_parallel --target bench_reduce \
  --target bench_codegen

args=(--json)
[[ $smoke -eq 1 ]] && args+=(--quick)
tmp_parallel=$(mktemp) tmp_reduce=$(mktemp) tmp_codegen=$(mktemp)
trap 'rm -f "$tmp_parallel" "$tmp_reduce" "$tmp_codegen" ${baseline:+"$baseline"}' EXIT

run_benches() {
  ./build-bench/bench/bench_parallel "${args[@]}" > "$tmp_parallel"
  ./build-bench/bench/bench_reduce "${args[@]}" > "$tmp_reduce"
  ./build-bench/bench/bench_codegen "${args[@]}" > "$tmp_codegen"
  # Merge the three JSON arrays: keep bench_parallel's opening bracket and
  # bench_codegen's closing one, joined by bare comma row separators.
  { sed '$d' "$tmp_parallel"; echo '  ,'; sed '1d;$d' "$tmp_reduce";
    echo '  ,'; sed '1d' "$tmp_codegen"; } | tee "$out"
  echo "wrote $out" >&2
}

# Observability gate: the recorder's measured overhead on the fig13
# full-space row must stay within the <=3% acceptance bar (see obs.h).
# Needs no baseline -- the bound is absolute -- so it runs in full and
# smoke modes alike.
gate_obs() {
  awk '
    /"bench": "obs_overhead"/ {
      seen = 1
      if (match($0, /"overhead_pct": [0-9.]+/)) {
        pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
        if (pct > 3.0) {
          printf "FAIL observability overhead %.2f%% exceeds 3%% bar\n",
                 pct > "/dev/stderr"
          exit 1
        }
        printf "observability overhead gate passed (%.2f%% <= 3%%)\n",
               pct > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no obs_overhead row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Durability gate: spilling the visited stores to mmap'd disk files must
# cost <= 15% wall time against the in-RAM run on the fig13 full space
# (same states either way -- spill is exact). Absolute bound.
gate_spill() {
  awk '
    /"bench": "spill_overhead"/ {
      seen = 1
      if (match($0, /"overhead_pct": [0-9.]+/)) {
        pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
        if (pct > 15.0) {
          printf "FAIL spill overhead %.2f%% exceeds 15%% bar\n",
                 pct > "/dev/stderr"
          exit 1
        }
        printf "spill overhead gate passed (%.2f%% <= 15%%)\n",
               pct > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no spill_overhead row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Service gate: the serve_rtt row's warm submissions resubmit an identical
# model to a live pnpd, so every check must come out of the shared verdict
# cache -- warm_hit_rate is deterministic and must be > 0 (in practice 1.0).
# rtt_ms is wall-clock and deliberately NOT gated.
gate_serve() {
  awk '
    /"bench": "serve_rtt"/ {
      seen = 1
      if (match($0, /"warm_hit_rate": [0-9.]+/)) {
        rate = substr($0, RSTART + 17, RLENGTH - 17) + 0
        if (rate <= 0) {
          printf "FAIL pnpd warm-cache hit rate %.4f is not > 0\n",
                 rate > "/dev/stderr"
          exit 1
        }
        printf "pnpd warm-cache gate passed (hit rate %.2f)\n",
               rate > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no serve_rtt row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Memory gate against the committed baseline: bytes/state is deterministic
# for the exact engines, so any >10% growth is a real regression.
gate_bytes() {
  awk '
    /"bytes_per_state"/ {
      bench = ""; threads = ""; bps = ""
      if (match($0, /"bench": "[^"]+"/))
        bench = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"threads": [0-9]+/))
        threads = substr($0, RSTART + 11, RLENGTH - 11)
      if (match($0, /"bytes_per_state": [0-9.]+/))
        bps = substr($0, RSTART + 19, RLENGTH - 19)
      key = bench "/" threads
      if (FILENAME == ARGV[1]) old[key] = bps + 0
      else cur[key] = bps + 0
    }
    END {
      bad = 0
      for (k in cur) {
        if (k in old && old[k] > 0 && cur[k] > old[k] * 1.10) {
          printf "FAIL bytes/state regression in %s: %.1f -> %.1f (>10%%)\n",
                 k, old[k], cur[k] > "/dev/stderr"
          bad = 1
        }
      }
      if (!bad)
        print "bytes/state gate passed (baseline: committed)" > "/dev/stderr"
      exit bad
    }' "$baseline" "$out"
}

# Throughput gate, machine-normalized: scale every current states_per_sec
# by the geometric-mean speed ratio across all (bench, threads) rows both
# files share, then fail any row more than 10% below its baseline. A
# uniformly slower machine scales out; one bench falling behind the rest
# does not. The seeded bitstate swarm is excluded -- its workers sample
# randomized search orders, so its throughput is not a stable quantity.
# The codegen_* rows are excluded too: their regression signal is the
# engine-vs-interp ratio (machine-normalized by construction, gated by
# gate_codegen_speed), their interp row duplicates bridge_exact, and in
# smoke mode they time a ~40ms cache-resident run whose absolute
# throughput swings well past this gate's 10% band.
gate_throughput() {
  awk '
    /"states_per_sec"/ && !/"bench": "bridge_swarm"/ &&
    !/"bench": "codegen_/ {
      bench = ""; threads = ""; sps = ""
      if (match($0, /"bench": "[^"]+"/))
        bench = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"threads": [0-9]+/))
        threads = substr($0, RSTART + 11, RLENGTH - 11)
      if (match($0, /"states_per_sec": [0-9.]+/))
        sps = substr($0, RSTART + 18, RLENGTH - 18)
      key = bench "/" threads
      if (FILENAME == ARGV[1]) old[key] = sps + 0
      else cur[key] = sps + 0
    }
    END {
      n = 0; logsum = 0
      for (k in cur) if (k in old && old[k] > 0 && cur[k] > 0) {
        logsum += log(cur[k] / old[k]); n++
      }
      if (n == 0) exit 0
      scale = exp(logsum / n)
      bad = 0
      for (k in cur) if (k in old && old[k] > 0 && cur[k] > 0) {
        norm = cur[k] / scale
        if (norm < old[k] * 0.90) {
          printf "FAIL throughput regression in %s: %.0f -> %.0f " \
                 "normalized states/s (>10%% below baseline, machine " \
                 "scale %.2fx)\n", k, old[k], norm, scale > "/dev/stderr"
          bad = 1
        }
      }
      if (!bad)
        printf "throughput gate passed (%d rows, machine scale %.2fx)\n",
               n, scale > "/dev/stderr"
      exit bad
    }' "$baseline" "$out"
}

# Codegen cache gate: the second AOT build in bench_codegen reuses the
# content-addressed artifact, so cache_hit is deterministic -- a miss means
# the digest or cache layout broke, never noise. Fails immediately.
gate_codegen_cache() {
  awk '
    /"bench": "codegen_compile"/ {
      seen = 1
      if (!/"cache_hit": true/) {
        print "FAIL codegen artifact cache missed on a warm rebuild" \
              > "/dev/stderr"
        exit 1
      }
      print "codegen artifact-cache gate passed (warm hit)" > "/dev/stderr"
    }
    END { if (!seen) { print "FAIL no codegen_compile row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Codegen speed gates (wall-clock, in the retried group): the AOT engine
# must hold >= 1.8x over the interpreter on the plain sweep (acceptance bar
# is 2x on a quiet machine; 1.8 leaves headroom for shared-runner noise the
# retry cannot fully cancel), >= 1.6x on the POR-reduced search, the
# bytecode fallback >= 1.2x on those lanes, and a cold AOT compile must
# fit the 15s budget -- compiling one specialized TU, not a project. The
# LTL lane holds softer floors (1.35x aot / 1.10x bytecode): the product
# search keeps interpreted per-transition work in the loop by design --
# Buchi label evaluation, product-key encode, visited probe -- so the
# engine's share is structurally smaller there; a quiet machine measures
# ~1.5-1.7x aot / ~1.2-1.3x bytecode (BENCH.json records the measured
# number; the floor is a regression tripwire, not the headline). The
# smoke instance completes in ~30-60ms with every store cache-resident,
# which both compresses the real ratio (the engines' win grows with DRAM-
# bound probes) and amplifies timer noise, so smoke mode holds softer bars
# across the board -- the full bars are enforced where they mean
# something, on the full-space run that writes BENCH.json.
gate_codegen_speed() {
  awk -v abar="$([[ $smoke -eq 1 ]] && echo 1.4 || echo 1.8)" \
      -v pbar="$([[ $smoke -eq 1 ]] && echo 1.3 || echo 1.6)" \
      -v lbar="$([[ $smoke -eq 1 ]] && echo 1.25 || echo 1.35)" \
      -v lbbar="$([[ $smoke -eq 1 ]] && echo 1.05 || echo 1.10)" \
      -v bbar="$([[ $smoke -eq 1 ]] && echo 1.1 || echo 1.2)" '
    function speedup() {
      return substr($0, RSTART + 21, RLENGTH - 21) + 0
    }
    /"bench": "codegen_aot"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      aot = speedup()
    }
    /"bench": "codegen_bytecode"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      bc = speedup()
    }
    /"bench": "codegen_por_aot"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      por_aot = speedup()
    }
    /"bench": "codegen_por_bytecode"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      por_bc = speedup()
    }
    /"bench": "codegen_ltl_aot"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      ltl_aot = speedup()
    }
    /"bench": "codegen_ltl_bytecode"/ && match($0, /"speedup_vs_interp": [0-9.]+/) {
      ltl_bc = speedup()
    }
    /"bench": "codegen_compile"/ && match($0, /"cold_ms": [0-9.]+/) {
      cold = substr($0, RSTART + 11, RLENGTH - 11) + 0; saw_cold = 1
    }
    function need(v, bar, name) {
      if (v == 0) {
        printf "FAIL no %s speedup row\n", name > "/dev/stderr"
        return 1
      }
      if (v < bar) {
        printf "FAIL %s speedup %.2fx below %.1fx bar\n", name, v, bar \
               > "/dev/stderr"
        return 1
      }
      return 0
    }
    END {
      bad = 0
      bad += need(aot, abar, "codegen_aot")
      bad += need(bc, bbar, "codegen_bytecode")
      bad += need(por_aot, pbar, "codegen_por_aot")
      bad += need(por_bc, bbar, "codegen_por_bytecode")
      bad += need(ltl_aot, lbar, "codegen_ltl_aot")
      bad += need(ltl_bc, lbbar, "codegen_ltl_bytecode")
      if (!saw_cold) { print "FAIL no codegen cold-compile row" > "/dev/stderr"; bad = 1 }
      else if (cold > 15000) {
        printf "FAIL cold aot compile %.0fms exceeds 15s budget\n", cold > "/dev/stderr"
        bad = 1
      }
      if (!bad)
        printf "codegen gates passed (aot %.2fx, por %.2fx, ltl %.2fx, " \
               "bytecode %.2fx, cold compile %.0fms)\n",
               aot, por_aot, ltl_aot, bc, cold > "/dev/stderr"
      exit bad > 0 ? 1 : 0
    }' "$out"
}

wall_ok=0
for attempt in 1 2; do
  run_benches
  gate_serve || { echo "pnpd warm-cache gate FAILED" >&2; exit 1; }
  gate_codegen_cache || { echo "codegen cache gate FAILED" >&2; exit 1; }
  if [[ -n "$baseline" ]]; then
    gate_bytes || { echo "bytes/state gate FAILED" >&2; exit 1; }
  fi
  if gate_obs && gate_spill && gate_codegen_speed &&
     { [[ -z "$baseline" ]] || gate_throughput; }; then
    wall_ok=1
    break
  fi
  if [[ $attempt -eq 1 ]]; then
    echo "bench: wall-clock gate failed; rerunning once to rule out runner noise" >&2
  fi
done
[[ $wall_ok -eq 1 ]] || { echo "wall-clock gates FAILED twice" >&2; exit 1; }

# Smoke runs also emit a sample run ledger (BENCH_ledger/ledger.jsonl) so CI
# archives a machine-readable record of a real verification run alongside
# the throughput rows.
if [[ $smoke -eq 1 ]]; then
  cmake --build build-bench -j --target pnpv
  rm -rf BENCH_ledger
  ./build-bench/tools/pnpv examples/models/demo.arch \
    --end-invariant "delivered == 3" --ledger BENCH_ledger
  echo "wrote BENCH_ledger/ledger.jsonl" >&2
fi
