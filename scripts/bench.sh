#!/usr/bin/env bash
# Benchmark runner: builds the Release tree and runs the parallel-exploration
# throughput bench plus the reduction/cache bench, merging both row sets into
# one machine-readable JSON artifact.
#
#   scripts/bench.sh                 # full run, results in BENCH.json
#   scripts/bench.sh --smoke         # quick CI-sized run -> BENCH_ci.json
#   scripts/bench.sh --out FILE.json # choose the output path
#
# Smoke runs also gate against the committed baseline (when the output path
# already holds one): any row whose bytes_per_state grew by more than 10%
# against the matching (bench, threads) baseline row fails the run, and so
# does any row whose states_per_sec fell more than 10% after normalizing by
# the run-wide geometric-mean speed ratio -- the normalization cancels the
# absolute speed difference between the baseline machine and this one, so
# the gate catches one bench regressing relative to the others rather than
# punishing slower hardware.
#
# The wall-clock gates (observability overhead, spill overhead, normalized
# throughput) get ONE retry: a failure reruns both benches and only a second
# consecutive failure fails the script. Shared CI runners see transient
# load spikes that a single sample cannot distinguish from a regression;
# two independent runs agreeing is a real signal. The deterministic gates
# (bytes/state, pnpd warm-cache hit rate) fail immediately -- they cannot
# be noise.
#
# Rows: {"bench", "threads", "states", "states_per_sec", "wall_seconds"} from
# bench_parallel, plus {"bench", "mode", "states", "ratio", ...} reduction-
# ratio rows and {"bench", "mode", "obligations", "cache_hits", "hit_rate",
# ...} cache rows from bench_reduce. Both benches exit non-zero when a run
# fails verification, minimized verdicts diverge, or state counts disagree
# across thread counts, so this doubles as a determinism/soundness gate.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --out) out="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE.json]" >&2; exit 2 ;;
  esac
  shift
done
if [[ -z "$out" ]]; then
  out=$([[ $smoke -eq 1 ]] && echo BENCH_ci.json || echo BENCH.json)
fi

# Preserve the committed baseline (if any) before it is overwritten, for the
# regression gates below.
baseline=""
if [[ $smoke -eq 1 && -f "$out" ]]; then
  baseline=$(mktemp)
  cp "$out" "$baseline"
fi

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target bench_parallel --target bench_reduce

args=(--json)
[[ $smoke -eq 1 ]] && args+=(--quick)
tmp_parallel=$(mktemp) tmp_reduce=$(mktemp)
trap 'rm -f "$tmp_parallel" "$tmp_reduce" ${baseline:+"$baseline"}' EXIT

run_benches() {
  ./build-bench/bench/bench_parallel "${args[@]}" > "$tmp_parallel"
  ./build-bench/bench/bench_reduce "${args[@]}" > "$tmp_reduce"
  # Merge the two JSON arrays: drop bench_parallel's closing bracket and
  # bench_reduce's opening one, joined by a bare comma row separator.
  { sed '$d' "$tmp_parallel"; echo '  ,'; sed '1d' "$tmp_reduce"; } | tee "$out"
  echo "wrote $out" >&2
}

# Observability gate: the recorder's measured overhead on the fig13
# full-space row must stay within the <=3% acceptance bar (see obs.h).
# Needs no baseline -- the bound is absolute -- so it runs in full and
# smoke modes alike.
gate_obs() {
  awk '
    /"bench": "obs_overhead"/ {
      seen = 1
      if (match($0, /"overhead_pct": [0-9.]+/)) {
        pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
        if (pct > 3.0) {
          printf "FAIL observability overhead %.2f%% exceeds 3%% bar\n",
                 pct > "/dev/stderr"
          exit 1
        }
        printf "observability overhead gate passed (%.2f%% <= 3%%)\n",
               pct > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no obs_overhead row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Durability gate: spilling the visited stores to mmap'd disk files must
# cost <= 15% wall time against the in-RAM run on the fig13 full space
# (same states either way -- spill is exact). Absolute bound.
gate_spill() {
  awk '
    /"bench": "spill_overhead"/ {
      seen = 1
      if (match($0, /"overhead_pct": [0-9.]+/)) {
        pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
        if (pct > 15.0) {
          printf "FAIL spill overhead %.2f%% exceeds 15%% bar\n",
                 pct > "/dev/stderr"
          exit 1
        }
        printf "spill overhead gate passed (%.2f%% <= 15%%)\n",
               pct > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no spill_overhead row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Service gate: the serve_rtt row's warm submissions resubmit an identical
# model to a live pnpd, so every check must come out of the shared verdict
# cache -- warm_hit_rate is deterministic and must be > 0 (in practice 1.0).
# rtt_ms is wall-clock and deliberately NOT gated.
gate_serve() {
  awk '
    /"bench": "serve_rtt"/ {
      seen = 1
      if (match($0, /"warm_hit_rate": [0-9.]+/)) {
        rate = substr($0, RSTART + 17, RLENGTH - 17) + 0
        if (rate <= 0) {
          printf "FAIL pnpd warm-cache hit rate %.4f is not > 0\n",
                 rate > "/dev/stderr"
          exit 1
        }
        printf "pnpd warm-cache gate passed (hit rate %.2f)\n",
               rate > "/dev/stderr"
      }
    }
    END { if (!seen) { print "FAIL no serve_rtt row" > "/dev/stderr"; exit 1 } }
  ' "$out"
}

# Memory gate against the committed baseline: bytes/state is deterministic
# for the exact engines, so any >10% growth is a real regression.
gate_bytes() {
  awk '
    /"bytes_per_state"/ {
      bench = ""; threads = ""; bps = ""
      if (match($0, /"bench": "[^"]+"/))
        bench = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"threads": [0-9]+/))
        threads = substr($0, RSTART + 11, RLENGTH - 11)
      if (match($0, /"bytes_per_state": [0-9.]+/))
        bps = substr($0, RSTART + 19, RLENGTH - 19)
      key = bench "/" threads
      if (FILENAME == ARGV[1]) old[key] = bps + 0
      else cur[key] = bps + 0
    }
    END {
      bad = 0
      for (k in cur) {
        if (k in old && old[k] > 0 && cur[k] > old[k] * 1.10) {
          printf "FAIL bytes/state regression in %s: %.1f -> %.1f (>10%%)\n",
                 k, old[k], cur[k] > "/dev/stderr"
          bad = 1
        }
      }
      if (!bad)
        print "bytes/state gate passed (baseline: committed)" > "/dev/stderr"
      exit bad
    }' "$baseline" "$out"
}

# Throughput gate, machine-normalized: scale every current states_per_sec
# by the geometric-mean speed ratio across all (bench, threads) rows both
# files share, then fail any row more than 10% below its baseline. A
# uniformly slower machine scales out; one bench falling behind the rest
# does not. The seeded bitstate swarm is excluded -- its workers sample
# randomized search orders, so its throughput is not a stable quantity.
gate_throughput() {
  awk '
    /"states_per_sec"/ && !/"bench": "bridge_swarm"/ {
      bench = ""; threads = ""; sps = ""
      if (match($0, /"bench": "[^"]+"/))
        bench = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"threads": [0-9]+/))
        threads = substr($0, RSTART + 11, RLENGTH - 11)
      if (match($0, /"states_per_sec": [0-9.]+/))
        sps = substr($0, RSTART + 18, RLENGTH - 18)
      key = bench "/" threads
      if (FILENAME == ARGV[1]) old[key] = sps + 0
      else cur[key] = sps + 0
    }
    END {
      n = 0; logsum = 0
      for (k in cur) if (k in old && old[k] > 0 && cur[k] > 0) {
        logsum += log(cur[k] / old[k]); n++
      }
      if (n == 0) exit 0
      scale = exp(logsum / n)
      bad = 0
      for (k in cur) if (k in old && old[k] > 0 && cur[k] > 0) {
        norm = cur[k] / scale
        if (norm < old[k] * 0.90) {
          printf "FAIL throughput regression in %s: %.0f -> %.0f " \
                 "normalized states/s (>10%% below baseline, machine " \
                 "scale %.2fx)\n", k, old[k], norm, scale > "/dev/stderr"
          bad = 1
        }
      }
      if (!bad)
        printf "throughput gate passed (%d rows, machine scale %.2fx)\n",
               n, scale > "/dev/stderr"
      exit bad
    }' "$baseline" "$out"
}

wall_ok=0
for attempt in 1 2; do
  run_benches
  gate_serve || { echo "pnpd warm-cache gate FAILED" >&2; exit 1; }
  if [[ -n "$baseline" ]]; then
    gate_bytes || { echo "bytes/state gate FAILED" >&2; exit 1; }
  fi
  if gate_obs && gate_spill && { [[ -z "$baseline" ]] || gate_throughput; }; then
    wall_ok=1
    break
  fi
  if [[ $attempt -eq 1 ]]; then
    echo "bench: wall-clock gate failed; rerunning once to rule out runner noise" >&2
  fi
done
[[ $wall_ok -eq 1 ]] || { echo "wall-clock gates FAILED twice" >&2; exit 1; }

# Smoke runs also emit a sample run ledger (BENCH_ledger/ledger.jsonl) so CI
# archives a machine-readable record of a real verification run alongside
# the throughput rows.
if [[ $smoke -eq 1 ]]; then
  cmake --build build-bench -j --target pnpv
  rm -rf BENCH_ledger
  ./build-bench/tools/pnpv examples/models/demo.arch \
    --end-invariant "delivered == 3" --ledger BENCH_ledger
  echo "wrote BENCH_ledger/ledger.jsonl" >&2
fi
