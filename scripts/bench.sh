#!/usr/bin/env bash
# Benchmark runner: builds the Release tree and runs the parallel-exploration
# throughput bench plus the reduction/cache bench, merging both row sets into
# one machine-readable JSON artifact.
#
#   scripts/bench.sh                 # full run, results in BENCH.json
#   scripts/bench.sh --smoke         # quick CI-sized run -> BENCH_ci.json
#   scripts/bench.sh --out FILE.json # choose the output path
#
# Smoke runs also gate memory efficiency: when the output path already holds
# a committed baseline, any row whose bytes_per_state grew by more than 10%
# against the matching (bench, threads) baseline row fails the run.
# states_per_sec is deliberately NOT gated -- CI machines are too noisy for
# wall-clock assertions, but bytes/state is deterministic.
#
# Rows: {"bench", "threads", "states", "states_per_sec", "wall_seconds"} from
# bench_parallel, plus {"bench", "mode", "states", "ratio", ...} reduction-
# ratio rows and {"bench", "mode", "obligations", "cache_hits", "hit_rate",
# ...} cache rows from bench_reduce. Both benches exit non-zero when a run
# fails verification, minimized verdicts diverge, or state counts disagree
# across thread counts, so this doubles as a determinism/soundness gate.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --out) out="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE.json]" >&2; exit 2 ;;
  esac
  shift
done
if [[ -z "$out" ]]; then
  out=$([[ $smoke -eq 1 ]] && echo BENCH_ci.json || echo BENCH.json)
fi

# Preserve the committed baseline (if any) before it is overwritten, for the
# bytes/state regression gate below.
baseline=""
if [[ $smoke -eq 1 && -f "$out" ]]; then
  baseline=$(mktemp)
  cp "$out" "$baseline"
fi

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target bench_parallel --target bench_reduce

args=(--json)
[[ $smoke -eq 1 ]] && args+=(--quick)
tmp_parallel=$(mktemp) tmp_reduce=$(mktemp)
trap 'rm -f "$tmp_parallel" "$tmp_reduce" ${baseline:+"$baseline"}' EXIT
./build-bench/bench/bench_parallel "${args[@]}" > "$tmp_parallel"
./build-bench/bench/bench_reduce "${args[@]}" > "$tmp_reduce"
# Merge the two JSON arrays: drop bench_parallel's closing bracket and
# bench_reduce's opening one, joined by a bare comma row separator.
{ sed '$d' "$tmp_parallel"; echo '  ,'; sed '1d' "$tmp_reduce"; } | tee "$out"
echo "wrote $out" >&2

# Observability gate: the recorder's measured overhead on the fig13
# full-space row must stay within the <=3% acceptance bar (see obs.h).
# Unlike the bytes/state gate this needs no baseline -- the bound is
# absolute -- so it runs in full and smoke modes alike.
awk '
  /"bench": "obs_overhead"/ {
    seen = 1
    if (match($0, /"overhead_pct": [0-9.]+/)) {
      pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
      if (pct > 3.0) {
        printf "FAIL observability overhead %.2f%% exceeds 3%% bar\n",
               pct > "/dev/stderr"
        exit 1
      }
      printf "observability overhead gate passed (%.2f%% <= 3%%)\n",
             pct > "/dev/stderr"
    }
  }
  END { if (!seen) { print "FAIL no obs_overhead row" > "/dev/stderr"; exit 1 } }
' "$out" || { echo "observability overhead gate FAILED" >&2; exit 1; }

# Durability gate: spilling the visited stores to mmap'd disk files must
# cost <= 15% wall time against the in-RAM run on the fig13 full space
# (same states either way -- spill is exact). Absolute bound, so it runs
# in full and smoke modes alike.
awk '
  /"bench": "spill_overhead"/ {
    seen = 1
    if (match($0, /"overhead_pct": [0-9.]+/)) {
      pct = substr($0, RSTART + 16, RLENGTH - 16) + 0
      if (pct > 15.0) {
        printf "FAIL spill overhead %.2f%% exceeds 15%% bar\n",
               pct > "/dev/stderr"
        exit 1
      }
      printf "spill overhead gate passed (%.2f%% <= 15%%)\n",
             pct > "/dev/stderr"
    }
  }
  END { if (!seen) { print "FAIL no spill_overhead row" > "/dev/stderr"; exit 1 } }
' "$out" || { echo "spill overhead gate FAILED" >&2; exit 1; }

# Smoke runs also emit a sample run ledger (BENCH_ledger/ledger.jsonl) so CI
# archives a machine-readable record of a real verification run alongside
# the throughput rows.
if [[ $smoke -eq 1 ]]; then
  cmake --build build-bench -j --target pnpv
  rm -rf BENCH_ledger
  ./build-bench/tools/pnpv examples/models/demo.arch \
    --end-invariant "delivered == 3" --ledger BENCH_ledger
  echo "wrote BENCH_ledger/ledger.jsonl" >&2
fi

if [[ -n "$baseline" ]]; then
  awk '
    /"bytes_per_state"/ {
      bench = ""; threads = ""; bps = ""
      if (match($0, /"bench": "[^"]+"/))
        bench = substr($0, RSTART + 10, RLENGTH - 11)
      if (match($0, /"threads": [0-9]+/))
        threads = substr($0, RSTART + 11, RLENGTH - 11)
      if (match($0, /"bytes_per_state": [0-9.]+/))
        bps = substr($0, RSTART + 19, RLENGTH - 19)
      key = bench "/" threads
      if (FILENAME == ARGV[1]) old[key] = bps + 0
      else cur[key] = bps + 0
    }
    END {
      bad = 0
      for (k in cur) {
        if (k in old && old[k] > 0 && cur[k] > old[k] * 1.10) {
          printf "FAIL bytes/state regression in %s: %.1f -> %.1f (>10%%)\n",
                 k, old[k], cur[k] > "/dev/stderr"
          bad = 1
        }
      }
      exit bad
    }' "$baseline" "$out" || { echo "bytes/state gate FAILED" >&2; exit 1; }
  echo "bytes/state gate passed (baseline: committed $out)" >&2
fi
