#!/usr/bin/env bash
# Benchmark runner: builds the Release tree and runs the parallel-exploration
# throughput bench, writing machine-readable results as JSON.
#
#   scripts/bench.sh                 # full run, results in BENCH.json
#   scripts/bench.sh --smoke         # quick CI-sized run -> BENCH_ci.json
#   scripts/bench.sh --out FILE.json # choose the output path
#
# Rows: {"bench", "threads", "states", "states_per_sec", "wall_seconds"}.
# The bench exits non-zero if any run fails verification or the exact runs
# disagree on state counts across thread counts, so this doubles as a
# determinism gate.
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1 ;;
    --out) out="$2"; shift ;;
    *) echo "usage: scripts/bench.sh [--smoke] [--out FILE.json]" >&2; exit 2 ;;
  esac
  shift
done
if [[ -z "$out" ]]; then
  out=$([[ $smoke -eq 1 ]] && echo BENCH_ci.json || echo BENCH.json)
fi

cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j --target bench_parallel

args=(--json)
[[ $smoke -eq 1 ]] && args+=(--quick)
./build-bench/bench/bench_parallel "${args[@]}" | tee "$out"
echo "wrote $out" >&2
