#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check.sh               # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additional ASan+UBSan build + ctest
#   scripts/check.sh --tsan        # additional TSan build running the
#                                  # multi-threaded exploration tests
#
# Each sanitized pass uses its own build tree (build-asan / build-tsan) so
# it never perturbs the primary build/ directory.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . -DPNP_SANITIZE=ON
  cmake --build build-asan -j
  UBSAN_OPTIONS=print_stacktrace=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # Race detection focused on the code that actually runs threads: the
  # parallel explorer suite, the explorer regression suite, the threaded
  # pnpv smoke runs, the pnpd server (reader threads + worker pool +
  # shared cache/ledger -- see src/serve/), and the engine-backed searches
  # that share one immutable Engine across workers (EnginePor runs the
  # parallel POR sweep at threads 2/8 through bytecode and AOT backends;
  # EngineExplore covers the plain parallel sweep; EngineLtl the racing
  # nested-DFS workers).
  cmake -B build-tsan -S . -DPNP_SANITIZE=thread
  cmake --build build-tsan -j --target test_parallel test_explore test_serve \
    test_codegen pnpv
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
      -R 'Parallel|Swarm|Explore|Serve|pnpv\.threads|EnginePor|EngineExplore|EngineLtl'
fi
