#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
#
#   scripts/check.sh               # plain RelWithDebInfo build + ctest
#   scripts/check.sh --sanitize    # additional ASan+UBSan build + ctest
#
# The sanitized pass uses a separate build tree (build-asan) so it never
# perturbs the primary build/ directory.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "${1:-}" == "--sanitize" ]]; then
  cmake -B build-asan -S . -DPNP_SANITIZE=ON
  cmake --build build-asan -j
  UBSAN_OPTIONS=print_stacktrace=1 ASAN_OPTIONS=detect_leaks=1 \
    ctest --test-dir build-asan --output-on-failure -j "$(nproc)"
fi
