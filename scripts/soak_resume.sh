#!/usr/bin/env bash
# Crash/resume soak: SIGKILLs a checkpointing pnpv run mid-search several
# times, resuming from the committed pnp.ckpt.v1 snapshot after each kill,
# and asserts the final verdict AND stored-state count are identical to an
# uninterrupted reference run. This is the end-to-end durability guarantee:
# a run chain cut by crashes converges on exactly the uninterrupted result.
#
#   scripts/soak_resume.sh [KILLS] [BUILD_DIR]
#
#   KILLS      number of SIGKILL/resume cycles (default 6)
#   BUILD_DIR  CMake build tree holding tools/pnpv (default build)
#
# Kill delays sweep a deterministic grid across the run's wall time, so the
# cuts land at different exploration depths; a cycle whose process finishes
# before the kill fires simply completes (and later cycles resume from its
# final, empty-frontier checkpoint -- also a valid resume path).
set -euo pipefail
cd "$(dirname "$0")/.."

kills=${1:-6}
build=${2:-build}
pnpv=$build/tools/pnpv
model=examples/models/relay_mesh.pml
inv="tally <= 10"
stride=150000

[[ -x "$pnpv" ]] || { echo "soak: $pnpv not built" >&2; exit 2; }

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

parse_states() { grep -oE '[0-9]+ states' "$1" | head -1 | cut -d' ' -f1; }
parse_verdict() { grep -oE '^verdict: (PASS|FAIL)' "$1" | cut -d' ' -f2; }

echo "soak: reference run (uninterrupted)..." >&2
"$pnpv" "$model" --invariant "$inv" > "$work/ref.out"
ref_verdict=$(parse_verdict "$work/ref.out")
ref_states=$(parse_states "$work/ref.out")
echo "soak: reference verdict=$ref_verdict states=$ref_states" >&2
[[ -n "$ref_states" && "$ref_states" -gt 0 ]] || {
  echo "soak: could not parse reference state count" >&2; exit 2; }

args=("$model" --invariant "$inv"
      --checkpoint-dir "$work/ckpt" --checkpoint-every "$stride" --resume)

for i in $(seq 1 "$kills"); do
  # deterministic delay grid over ~[0.2, 1.2]s: cuts at assorted depths
  delay=$(awk -v i="$i" -v n="$kills" 'BEGIN { printf "%.2f", 0.2 + i / n }')
  "$pnpv" "${args[@]}" > "$work/cycle$i.out" 2>&1 &
  pid=$!
  sleep "$delay"
  if kill -9 "$pid" 2>/dev/null; then
    echo "soak: cycle $i: SIGKILL after ${delay}s" >&2
  else
    echo "soak: cycle $i: run finished before the ${delay}s kill" >&2
  fi
  wait "$pid" 2>/dev/null || true
done

echo "soak: final resume to completion..." >&2
"$pnpv" "${args[@]}" > "$work/final.out"
fin_verdict=$(parse_verdict "$work/final.out")
fin_states=$(parse_states "$work/final.out")
echo "soak: final verdict=$fin_verdict states=$fin_states" >&2

fail=0
[[ "$fin_verdict" == "$ref_verdict" ]] || {
  echo "FAIL verdict diverged after $kills kill/resume cycles:" \
       "$ref_verdict -> $fin_verdict" >&2; fail=1; }
[[ "$fin_states" == "$ref_states" ]] || {
  echo "FAIL state count diverged after $kills kill/resume cycles:" \
       "$ref_states -> $fin_states" >&2; fail=1; }
if [[ $fail -ne 0 ]]; then
  cat "$work/final.out" >&2
  exit 1
fi
echo "soak: PASS -- $kills SIGKILL/resume cycles converged on the" \
     "uninterrupted verdict ($ref_verdict, $ref_states states)" >&2
