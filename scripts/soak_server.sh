#!/usr/bin/env bash
# pnpd soak: one daemon, a burst of concurrent --submit clients, and the
# three service-level guarantees the server makes:
#
#   1. verdict parity -- every job's exit code matches a single-shot pnpv
#      run of the same model and properties (pass, fail, nothing flaky);
#   2. shared cache -- repeated submissions of identical models hit the
#      daemon-wide verdict cache (aggregate cache_hits > 0);
#   3. graceful drain -- SIGTERM after the burst exits 0, every job is
#      accounted for, and the shared ledger holds one pnp.run.v1 record
#      per completed job.
#
#   scripts/soak_server.sh [JOBS] [BUILD_DIR]     # default: 200 build
#
# The ledger is copied to SOAK_ledger/ledger.jsonl for CI artifact upload.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-200}"
build="${2:-build}"
pnpv="$build/tools/pnpv"
models=examples/models
[[ -x "$pnpv" ]] || { echo "soak: $pnpv not built" >&2; exit 2; }

work=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

# -- single-shot reference verdicts (no daemon involved) ----------------------
# Model 0 and 1 must pass, model 2 is the flawed mutex and must fail: the
# soak asserts every daemon job reproduces exactly these exit codes.
ref_rc() { "$@" > /dev/null 2>&1 && echo 0 || echo $?; }
expect0=$(ref_rc "$pnpv" "$models/demo.arch" --end-invariant "delivered == 3")
expect1=$(ref_rc "$pnpv" "$models/producer_consumer.pml" --invariant "received <= 3")
expect2=$(ref_rc "$pnpv" "$models/mutex_flawed.pml" --invariant "critical <= 1")
[[ "$expect0" == 0 && "$expect1" == 0 && "$expect2" == 1 ]] || {
  echo "soak: unexpected reference verdicts: $expect0/$expect1/$expect2" >&2
  exit 2
}

# -- daemon -------------------------------------------------------------------
# Small per-job charge so 200 queued jobs fit the default admission budget:
# the soak exercises fairness and the shared cache, not rejections (the
# budget-rejection path is covered by tests/test_serve.cpp).
sock="$work/pnpd.sock"
"$pnpv" --serve --socket "$sock" --workers "$(nproc)" --job-memory 16M \
  --ledger "$work/state" 2> "$work/server.log" &
server_pid=$!
for _ in $(seq 100); do [[ -S "$sock" ]] && break; sleep 0.1; done
[[ -S "$sock" ]] || { echo "soak: daemon never bound $sock" >&2; exit 2; }

# -- concurrent burst ---------------------------------------------------------
echo "soak: firing $jobs concurrent jobs at $sock" >&2
declare -a pids=()
for ((i = 0; i < jobs; ++i)); do
  (
    set +e  # a failed verdict exits 1; record it instead of dying on -e
    case $((i % 3)) in
      0) "$pnpv" "$models/demo.arch" --end-invariant "delivered == 3" \
           --submit --socket "$sock" > "$work/out.$i" 2>&1 ;;
      1) "$pnpv" "$models/producer_consumer.pml" --invariant "received <= 3" \
           --submit --socket "$sock" > "$work/out.$i" 2>&1 ;;
      2) "$pnpv" "$models/mutex_flawed.pml" --invariant "critical <= 1" \
           --submit --socket "$sock" > "$work/out.$i" 2>&1 ;;
    esac
    echo $? > "$work/rc.$i"
  ) &
  pids+=($!)
done
for p in "${pids[@]}"; do wait "$p" || true; done

# -- warm aot job -------------------------------------------------------------
# Two identical --engine aot submissions: the first compiles the model's
# specialized module into the daemon's shared artifact cache (or falls back
# to bytecode on a toolchain-less host -- the verdict contract is the same
# either way), the second reuses whatever the first built. Both must agree
# with the single-shot reference verdict.
set +e
"$pnpv" "$models/demo.arch" --end-invariant "delivered == 3" \
  --engine aot --submit --socket "$sock" > "$work/aot.cold" 2>&1
rc_cold=$?
"$pnpv" "$models/demo.arch" --end-invariant "delivered == 3" \
  --engine aot --submit --socket "$sock" > "$work/aot.warm" 2>&1
rc_warm=$?
set -e
[[ "$rc_cold" == 0 && "$rc_warm" == 0 ]] || {
  echo "soak: warm aot jobs returned $rc_cold/$rc_warm (want 0/0)" >&2
  exit 1
}
echo "soak: warm aot job ok" >&2

# -- 1. verdict parity --------------------------------------------------------
bad=0
for ((i = 0; i < jobs; ++i)); do
  want=$([[ $((i % 3)) == 2 ]] && echo "$expect2" || echo 0)
  got=$(cat "$work/rc.$i" 2>/dev/null || echo missing)
  if [[ "$got" != "$want" ]]; then
    echo "FAIL job $i: exit $got, single-shot reference $want" >&2
    sed 's/^/  | /' "$work/out.$i" >&2 || true
    bad=1
  fi
done
[[ $bad == 0 ]] || { echo "soak: verdict parity FAILED" >&2; exit 1; }
echo "soak: verdict parity passed ($jobs jobs match single-shot pnpv)" >&2

# -- 2. shared warm cache -----------------------------------------------------
# Each report line ends "... cache_hits=N recomputed=M seconds=S"; with
# $jobs submissions of 3 distinct models, everything after the first wave
# must be served from the daemon-wide cache.
hits=$(sed -n 's/.*cache_hits=\([0-9]*\).*/\1/p' "$work"/out.* |
       awk '{ s += $1 } END { print s + 0 }')
[[ "$hits" -gt 0 ]] || { echo "FAIL no warm-cache hits across $jobs jobs" >&2; exit 1; }
echo "soak: warm-cache gate passed ($hits aggregate cache hits)" >&2

# -- 3. graceful SIGTERM drain ------------------------------------------------
kill -TERM "$server_pid"
rc=0; wait "$server_pid" || rc=$?
server_pid=""
[[ $rc == 0 ]] || {
  echo "FAIL daemon exited $rc on SIGTERM" >&2
  sed 's/^/  | /' "$work/server.log" >&2
  exit 1
}
grep -q "pnpd: drained" "$work/server.log" || {
  echo "FAIL no drain summary in server log" >&2
  sed 's/^/  | /' "$work/server.log" >&2
  exit 1
}

ledger="$work/state/ledger.jsonl"
records=$(wc -l < "$ledger" 2>/dev/null || echo 0)
[[ "$records" -eq "$jobs" ]] || {
  echo "FAIL ledger holds $records records, expected $jobs" >&2
  exit 1
}
echo "soak: clean drain, ledger holds $records pnp.run.v1 records" >&2

rm -rf SOAK_ledger && mkdir -p SOAK_ledger
cp "$ledger" SOAK_ledger/ledger.jsonl
echo "soak: OK ($jobs jobs; ledger copied to SOAK_ledger/ledger.jsonl)" >&2
