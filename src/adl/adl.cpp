#include "adl/adl.h"

#include <cctype>
#include <cstdio>
#include <unordered_map>

#include "pnp/textual.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp::adl {

namespace {

/// Character-level scanner (the behaviour blocks are extracted raw, so a
/// token stream would not fit; everything else is words and punctuation).
class Scanner {
 public:
  explicit Scanner(const std::string& src) : src_(src) {}

  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
      } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
        bump();
        bump();
        while (pos_ + 1 < src_.size() &&
               !(src_[pos_] == '*' && src_[pos_ + 1] == '/'))
          bump();
        PNP_CHECK(pos_ + 1 < src_.size(), err("unterminated comment"));
        bump();
        bump();
      } else {
        break;
      }
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= src_.size();
  }

  char peek_char() {
    skip_ws();
    return pos_ < src_.size() ? src_[pos_] : '\0';
  }

  bool accept_char(char c) {
    skip_ws();
    if (pos_ < src_.size() && src_[pos_] == c) {
      bump();
      return true;
    }
    return false;
  }

  void expect_char(char c) {
    PNP_CHECK(accept_char(c), err(std::string("expected '") + c + "'"));
  }

  bool peek_word(const std::string& w) {
    skip_ws();
    const std::size_t save = pos_;
    const int sl = line_, sc = col_;
    const std::string got = word_raw();
    pos_ = save;
    line_ = sl;
    col_ = sc;
    return got == w;
  }

  bool accept_word(const std::string& w) {
    skip_ws();
    const std::size_t save = pos_;
    const int sl = line_, sc = col_;
    if (word_raw() == w) return true;
    pos_ = save;
    line_ = sl;
    col_ = sc;
    return false;
  }

  void expect_word(const std::string& w) {
    PNP_CHECK(accept_word(w), err("expected '" + w + "'"));
  }

  std::string ident() {
    skip_ws();
    const std::string w = word_raw();
    PNP_CHECK(!w.empty(), err("expected an identifier"));
    return w;
  }

  long number() {
    skip_ws();
    PNP_CHECK(pos_ < src_.size(), err("expected a number"));
    bool neg = false;
    if (src_[pos_] == '-') {
      neg = true;
      bump();
    }
    PNP_CHECK(pos_ < src_.size() &&
                  std::isdigit(static_cast<unsigned char>(src_[pos_])),
              err("expected a number"));
    long v = 0;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      v = v * 10 + (src_[pos_] - '0');
      bump();
    }
    return neg ? -v : v;
  }

  /// Raw text from after the next '{' to its matching '}' (exclusive).
  /// Comments inside are preserved (PML handles them); braces inside
  /// comments still count, so behaviours should not put braces in comments.
  std::string braced_block() {
    expect_char('{');
    const std::size_t start = pos_;
    int depth = 1;
    while (pos_ < src_.size() && depth > 0) {
      const char c = src_[pos_];
      if (c == '{') ++depth;
      if (c == '}') --depth;
      if (depth > 0) bump();
    }
    PNP_CHECK(depth == 0, err("unterminated '{' block"));
    const std::string body = src_.substr(start, pos_ - start);
    bump();  // consume '}'
    return body;
  }

  std::string err(const std::string& msg) const {
    return "ADL parse error at " + std::to_string(line_) + ":" +
           std::to_string(col_) + ": " + msg;
  }

 private:
  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  std::string word_raw() {
    std::string w;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        w.push_back(c);
        bump();
      } else {
        break;
      }
    }
    return w;
  }

  const std::string& src_;
  std::size_t pos_{0};
  int line_{1};
  int col_{1};
};

ChannelKind channel_kind(Scanner& s, const std::string& w) {
  if (w == "single_slot" || w == "SingleSlot") return ChannelKind::SingleSlot;
  if (w == "fifo" || w == "Fifo") return ChannelKind::Fifo;
  if (w == "priority" || w == "Priority") return ChannelKind::Priority;
  if (w == "lossy_fifo" || w == "LossyFifo") return ChannelKind::LossyFifo;
  if (w == "event_pool" || w == "EventPool") return ChannelKind::EventPool;
  if (w == "duplicating_fifo" || w == "DuplicatingFifo")
    return ChannelKind::DuplicatingFifo;
  if (w == "reordering_fifo" || w == "ReorderingFifo")
    return ChannelKind::ReorderingFifo;
  if (w == "dropping_fifo" || w == "DroppingFifo")
    return ChannelKind::DroppingFifo;
  raise_model_error(s.err("unknown channel kind '" + w + "'"));
}

SendPortKind send_kind(Scanner& s, const std::string& w) {
  if (w == "asyn_nonblocking") return SendPortKind::AsynNonblocking;
  if (w == "asyn_blocking") return SendPortKind::AsynBlocking;
  if (w == "asyn_checking") return SendPortKind::AsynChecking;
  if (w == "syn_blocking") return SendPortKind::SynBlocking;
  if (w == "syn_checking") return SendPortKind::SynChecking;
  if (w == "timeout_retry") return SendPortKind::TimeoutRetry;
  raise_model_error(s.err("unknown send-port kind '" + w + "'"));
}

RecvPortKind recv_kind(Scanner& s, const std::string& w) {
  if (w == "blocking") return RecvPortKind::Blocking;
  if (w == "nonblocking") return RecvPortKind::Nonblocking;
  raise_model_error(s.err("unknown receive-port kind '" + w + "'"));
}

}  // namespace

Architecture parse_architecture(const std::string& source) {
  Scanner s(source);
  s.expect_word("architecture");
  Architecture arch(s.ident());
  std::unordered_map<std::string, int> components;
  std::unordered_map<std::string, int> connectors;

  s.expect_char('{');
  while (!s.accept_char('}')) {
    PNP_CHECK(!s.at_end(), s.err("unterminated architecture block"));
    if (s.accept_word("global")) {
      const std::string name = s.ident();
      model::Value init = 0;
      if (s.accept_char('=')) init = static_cast<model::Value>(s.number());
      arch.add_global(name, init);
      s.expect_char(';');
      continue;
    }
    if (s.accept_word("component")) {
      const std::string name = s.ident();
      PNP_CHECK(!components.contains(name),
                s.err("duplicate component '" + name + "'"));
      int max_crashes = 0;
      if (s.accept_word("crashes")) {
        s.expect_char('(');
        max_crashes = static_cast<int>(s.number());
        s.expect_char(')');
      }
      s.expect_char('{');
      s.expect_word("behavior");
      const std::string body = s.braced_block();
      s.expect_char('}');
      components[name] = arch.add_component(name, pml_component(body));
      // Fingerprint the behaviour source so the verification cache can tell
      // a behaviour edit from a pure connector edit.
      {
        char fp[17];
        std::snprintf(fp, sizeof fp, "%016llx",
                      static_cast<unsigned long long>(stable_hash64(body)));
        arch.set_behavior_fingerprint(components[name], fp);
      }
      if (max_crashes > 0) arch.set_crash_restart(components[name], max_crashes);
      continue;
    }
    if (s.accept_word("connector")) {
      const std::string name = s.ident();
      PNP_CHECK(!connectors.contains(name),
                s.err("duplicate connector '" + name + "'"));
      s.expect_char(':');
      ChannelSpec spec;
      spec.kind = channel_kind(s, s.ident());
      spec.capacity = 1;
      if (s.accept_char('(')) {
        spec.capacity = static_cast<int>(s.number());
        s.expect_char(')');
      }
      const int conn = arch.add_connector(name, spec);
      connectors[name] = conn;
      s.expect_char('{');
      while (!s.accept_char('}')) {
        const bool is_sender = s.accept_word("sender");
        if (!is_sender) s.expect_word("receiver");
        const std::string comp = s.ident();
        s.expect_char('.');
        const std::string port = s.ident();
        auto cit = components.find(comp);
        PNP_CHECK(cit != components.end(),
                  s.err("unknown component '" + comp + "'"));
        s.expect_word("via");
        const std::string kind = s.ident();
        if (is_sender) {
          const SendPortKind sk = send_kind(s, kind);
          arch.attach_sender(cit->second, port, conn, sk);
          if (sk == SendPortKind::TimeoutRetry && s.accept_char('(')) {
            const int retries = static_cast<int>(s.number());
            s.expect_char(')');
            arch.set_send_port(cit->second, port, sk, retries);
          }
        } else {
          RecvPortOpts opts;
          while (true) {
            if (s.accept_word("copy")) {
              opts.remove = false;
            } else if (s.accept_word("selective")) {
              opts.selective = true;
            } else {
              break;
            }
          }
          arch.attach_receiver(cit->second, port, conn, recv_kind(s, kind),
                               opts);
        }
        s.expect_char(';');
      }
      continue;
    }
    raise_model_error(
        s.err("expected 'global', 'component', or 'connector'"));
  }
  arch.validate();
  return arch;
}

}  // namespace pnp::adl
