// ADL: a textual architecture description language for the PnP workflow --
// the notation the paper's ArchStudio-based prototype provides through a
// GUI, here as a parsable file format. Components carry their behaviour as
// embedded PML (see pnp/textual.h); connectors are assembled from the
// building-block library by name; the plug-and-play experiment loop is
// then "edit the connector line, re-run pnpv".
//
// Grammar:
//   architecture NAME {
//     global NAME [= INT] ;
//     component NAME [crashes( N )] { behavior { ...PML statements... } }
//     connector NAME : CHANNEL_KIND [( CAPACITY )] {
//       sender   COMPONENT.PORT via SEND_KIND [( RETRIES )] ;
//       receiver COMPONENT.PORT via RECV_KIND [copy] [selective] ;
//     }
//   }
// Channel kinds: single_slot, fifo, priority, lossy_fifo, event_pool, and
//                the fault-injection variants duplicating_fifo,
//                reordering_fifo, dropping_fifo.
// Send kinds:    asyn_nonblocking, asyn_blocking, asyn_checking,
//                syn_blocking, syn_checking, timeout_retry (optionally with
//                a retry bound: `via timeout_retry(3)`).
// Recv kinds:    blocking, nonblocking.
// `component N crashes(K)` lets the component's process crash-restart up to
// K times (fault injection for resilience checking).
// Comments: // and /* */.
#pragma once

#include <string>

#include "pnp/architecture.h"

namespace pnp::adl {

/// Parses an ADL source into an Architecture (validated). Raises
/// ModelError with line:column positions on errors.
Architecture parse_architecture(const std::string& source);

}  // namespace pnp::adl
