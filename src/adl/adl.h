// ADL: a textual architecture description language for the PnP workflow --
// the notation the paper's ArchStudio-based prototype provides through a
// GUI, here as a parsable file format. Components carry their behaviour as
// embedded PML (see pnp/textual.h); connectors are assembled from the
// building-block library by name; the plug-and-play experiment loop is
// then "edit the connector line, re-run pnpv".
//
// Grammar:
//   architecture NAME {
//     global NAME [= INT] ;
//     component NAME { behavior { ...PML statements... } }
//     connector NAME : CHANNEL_KIND [( CAPACITY )] {
//       sender   COMPONENT.PORT via SEND_KIND ;
//       receiver COMPONENT.PORT via RECV_KIND [copy] [selective] ;
//     }
//   }
// Channel kinds: single_slot, fifo, priority, lossy_fifo, event_pool.
// Send kinds:    asyn_nonblocking, asyn_blocking, asyn_checking,
//                syn_blocking, syn_checking.
// Recv kinds:    blocking, nonblocking.
// Comments: // and /* */.
#pragma once

#include <string>

#include "pnp/architecture.h"

namespace pnp::adl {

/// Parses an ADL source into an Architecture (validated). Raises
/// ModelError with line:column positions on errors.
Architecture parse_architecture(const std::string& source);

}  // namespace pnp::adl
