#include "bridge/bridge.h"

namespace pnp::bridge {

using namespace model;

namespace {

/// A car: request entry, drive on, drive off, notify the far controller.
/// The same model works with every connector variant -- the standard
/// interfaces hide whether SEND_SUCC means "granted" or merely "buffered",
/// which is exactly the bug the case study revolves around.
ComponentModelFn car_model(std::string mine, std::string other,
                           bool with_assert) {
  return [mine = std::move(mine), other = std::move(other),
          with_assert](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint enter = ctx.port("enter");
    const PortEndpoint exit = ctx.port("exit");
    const GVar g_mine = ctx.global(mine);

    Seq trip = seq(end_label(),
                   iface::send_msg(b, enter, b.k(1)),        // request entry
                   assign(g_mine, ctx.g(mine) + b.k(1)));    // drive on
    if (with_assert)
      trip.push_back(assert_(ctx.g(other) == b.k(0),
                             "no opposite traffic while on the bridge"));
    trip = seq(std::move(trip),
               assign(g_mine, ctx.g(mine) - b.k(1)),         // drive off
               iface::send_msg(b, exit, b.k(1)));            // notify far end
    return seq(do_(alt(std::move(trip))));
  };
}

/// v1 controller: strict alternation -- grant exactly N entry requests,
/// then wait for N exit notifications from the opposite direction. The
/// controller that does not start with the turn runs the phases in the
/// opposite order: it first waits for the other side's batch to clear.
ComponentModelFn controller_v1(int n, bool starts_with_turn) {
  return [n, starts_with_turn](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint enter = ctx.port("enter");
    const PortEndpoint exits = ctx.port("exitnotes");
    const LVar cnt = b.local("cnt");
    const LVar v = b.local("v");

    auto consume_n = [&](const PortEndpoint& ep) {
      return seq(
          assign(cnt, b.k(0)),
          do_(alt(seq(guard(b.l(cnt) < b.k(n)),
                      iface::recv_msg(b, ep, v),
                      assign(cnt, b.l(cnt) + b.k(1)))),
              alt(seq(guard(b.l(cnt) == b.k(n)), break_()))));
    };

    Seq round = starts_with_turn
                    ? seq(consume_n(enter),   // grant N of my cars
                          consume_n(exits))   // wait for the other batch
                    : seq(consume_n(exits),   // other side's batch clears
                          consume_n(enter));  // then grant mine
    return seq(do_(alt(seq(end_label(), std::move(round)))));
  };
}

/// v2 controller: grant up to N cars but yield the turn as soon as nobody
/// is waiting; the yield token carries the number of cars granted so the
/// other side knows how many exit notifications to collect first.
ComponentModelFn controller_v2(int n, bool starts_with_turn) {
  return [n, starts_with_turn](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint enter = ctx.port("enter");
    const PortEndpoint exits = ctx.port("exitnotes");
    const PortEndpoint yield = ctx.port("yield");
    const PortEndpoint token = ctx.port("token");
    const LVar granted = b.local("granted");
    const LVar need = b.local("need");
    const LVar v = b.local("v");
    const LVar st = b.local("st");

    iface::RecvMeta with_status;
    with_status.status_out = &st;

    auto grant_phase = [&] {
      return seq(
          assign(granted, b.k(0)),
          do_(alt(seq(guard(b.l(granted) < b.k(n)),
                      iface::recv_msg(b, enter, v, with_status),
                      if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                  assign(granted, b.l(granted) + b.k(1)))),
                          // nobody waiting: yield the turn early
                          alt_else(seq(break_()))))),
              alt(seq(guard(b.l(granted) == b.k(n)), break_()))));
    };
    auto yield_phase = [&] {
      return iface::send_msg(b, yield, b.l(granted));
    };
    auto wait_token = [&] {
      return seq(do_(alt(seq(
          end_label(),
          iface::recv_msg(b, token, need, with_status),
          if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)), break_())),
              alt_else(seq(skip())))))));
    };
    auto wait_exits = [&] {
      return seq(
          do_(alt(seq(guard(b.l(need) > b.k(0)),
                      iface::recv_msg(b, exits, v, with_status),
                      if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                  assign(need, b.l(need) - b.k(1)))),
                          alt_else(seq(skip()))))),
              alt(seq(guard(b.l(need) == b.k(0)), break_()))));
    };

    Seq round = starts_with_turn
                    ? seq(grant_phase(), yield_phase(), wait_token(),
                          wait_exits())
                    : seq(wait_token(), wait_exits(), grant_phase(),
                          yield_phase());
    return seq(do_(alt(std::move(round))));
  };
}

struct CommonParts {
  std::vector<int> blue_cars, red_cars;
  int blue_ctrl{-1}, red_ctrl{-1};
};

CommonParts add_cars(Architecture& arch, const BridgeConfig& cfg) {
  CommonParts p;
  arch.add_global("blue_on_bridge", 0);
  arch.add_global("red_on_bridge", 0);
  for (int i = 0; i < cfg.cars_per_side; ++i) {
    p.blue_cars.push_back(arch.add_component(
        "BlueCar" + std::to_string(i),
        car_model("blue_on_bridge", "red_on_bridge", cfg.car_asserts)));
    p.red_cars.push_back(arch.add_component(
        "RedCar" + std::to_string(i),
        car_model("red_on_bridge", "blue_on_bridge", cfg.car_asserts)));
  }
  return p;
}

void wire_enter_exit(Architecture& arch, const CommonParts& p,
                     const BridgeConfig& cfg, SendPortKind enter_send,
                     RecvPortKind ctrl_recv) {
  const int blue_enter = arch.add_connector(
      "BlueEnter", {ChannelKind::Fifo, cfg.enter_queue_capacity});
  const int red_enter = arch.add_connector(
      "RedEnter", {ChannelKind::Fifo, cfg.enter_queue_capacity});
  const int blue_exit =
      arch.add_connector("BlueExit", {ChannelKind::SingleSlot, 1});
  const int red_exit =
      arch.add_connector("RedExit", {ChannelKind::SingleSlot, 1});

  for (int car : p.blue_cars) {
    arch.attach_sender(car, "enter", blue_enter, enter_send);
    arch.attach_sender(car, "exit", blue_exit, SendPortKind::AsynBlocking);
  }
  for (int car : p.red_cars) {
    arch.attach_sender(car, "enter", red_enter, enter_send);
    arch.attach_sender(car, "exit", red_exit, SendPortKind::AsynBlocking);
  }
  // enter requests go to the near controller; exit notes to the far one
  arch.attach_receiver(p.blue_ctrl, "enter", blue_enter, ctrl_recv);
  arch.attach_receiver(p.red_ctrl, "enter", red_enter, ctrl_recv);
  arch.attach_receiver(p.red_ctrl, "exitnotes", blue_exit, ctrl_recv);
  arch.attach_receiver(p.blue_ctrl, "exitnotes", red_exit, ctrl_recv);
}

}  // namespace

Architecture make_v1(const BridgeConfig& cfg) {
  Architecture arch("single-lane-bridge-v1");
  CommonParts p = add_cars(arch, cfg);
  p.blue_ctrl = arch.add_component(
      "BlueController", controller_v1(cfg.batch_n, /*starts_with_turn=*/true));
  p.red_ctrl = arch.add_component(
      "RedController", controller_v1(cfg.batch_n, /*starts_with_turn=*/false));
  // The initial (Fig. 13) design: asynchronous blocking send for enter
  // requests -- the bug under study. The fixed design uses synchronous.
  const SendPortKind enter_kind = cfg.buggy_async_enter
                                      ? SendPortKind::AsynBlocking
                                      : SendPortKind::SynBlocking;
  wire_enter_exit(arch, p, cfg, enter_kind, RecvPortKind::Blocking);
  return arch;
}

void apply_v1_fix(Architecture& arch, const BridgeConfig& cfg) {
  for (int i = 0; i < cfg.cars_per_side; ++i) {
    arch.set_send_port(arch.find_component("BlueCar" + std::to_string(i)),
                       "enter", SendPortKind::SynBlocking);
    arch.set_send_port(arch.find_component("RedCar" + std::to_string(i)),
                       "enter", SendPortKind::SynBlocking);
  }
}

Architecture make_v2(const BridgeConfig& cfg) {
  Architecture arch("single-lane-bridge-v2");
  CommonParts p = add_cars(arch, cfg);
  p.blue_ctrl = arch.add_component(
      "BlueController", controller_v2(cfg.batch_n, /*starts_with_turn=*/true));
  p.red_ctrl = arch.add_component(
      "RedController", controller_v2(cfg.batch_n, /*starts_with_turn=*/false));
  // Fig. 14: synchronous enter requests, nonblocking (polling) controllers.
  wire_enter_exit(arch, p, cfg, SendPortKind::SynBlocking,
                  RecvPortKind::Nonblocking);

  const int blue_to_red =
      arch.add_connector("BlueToRed", {ChannelKind::SingleSlot, 1});
  const int red_to_blue =
      arch.add_connector("RedToBlue", {ChannelKind::SingleSlot, 1});
  arch.attach_sender(p.blue_ctrl, "yield", blue_to_red,
                     SendPortKind::SynBlocking);
  arch.attach_receiver(p.red_ctrl, "token", blue_to_red,
                       RecvPortKind::Nonblocking);
  arch.attach_sender(p.red_ctrl, "yield", red_to_blue,
                     SendPortKind::SynBlocking);
  arch.attach_receiver(p.blue_ctrl, "token", red_to_blue,
                       RecvPortKind::Nonblocking);
  return arch;
}

expr::Ex safety_invariant(ModelGenerator& gen) {
  return !(gen.gx("blue_on_bridge") > gen.kx(0) &&
           gen.gx("red_on_bridge") > gen.kx(0));
}

expr::Ex batch_bound_invariant(ModelGenerator& gen, int n) {
  return gen.gx("blue_on_bridge") <= gen.kx(n) &&
         gen.gx("red_on_bridge") <= gen.kx(n);
}

void register_props(ModelGenerator& gen) {
  gen.add_prop("blue_on", gen.gx("blue_on_bridge") > gen.kx(0));
  gen.add_prop("red_on", gen.gx("red_on_bridge") > gen.kx(0));
  gen.add_prop("both_on", gen.gx("blue_on_bridge") > gen.kx(0) &&
                              gen.gx("red_on_bridge") > gen.kx(0));
}

}  // namespace pnp::bridge
