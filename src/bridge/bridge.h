// The single-lane bridge case study (paper section 4, Figs. 12-14).
//
// A bridge wide enough for one direction of traffic at a time. Blue cars
// enter from one end, red cars from the other; a controller at each end
// grants entry. Blue cars send enter requests to the blue controller and
// notify the red controller when they exit (they leave at the red end);
// red cars mirror this.
//
// Two traffic-control designs:
//  * v1 "exactly-N-cars-per-turn" (Fig. 13): controllers take strict turns
//    of N cars with no controller-to-controller communication. The paper's
//    initial design wires the enter connectors with ASYNCHRONOUS blocking
//    send ports -- a car treats SEND_SUCC (request buffered) as permission
//    and drives on, which lets opposite batches overlap: verification finds
//    the crash. The plug-and-play fix swaps in synchronous blocking send
//    ports (SEND_SUCC now means the controller received the request);
//    components are untouched.
//  * v2 "at-most-N-cars-per-turn" (Fig. 14): controllers may yield early
//    when no cars are waiting, exchanging a token (carrying the number of
//    cars granted) over two new connectors; controllers poll all inputs
//    with nonblocking receive ports.
#pragma once

#include "pnp/pnp.h"

namespace pnp::bridge {

struct BridgeConfig {
  int cars_per_side{1};
  int batch_n{1};  // N cars per turn
  int enter_queue_capacity{2};
  /// v1 only: build the paper's initial (buggy) design with asynchronous
  /// blocking send ports on the enter connectors.
  bool buggy_async_enter{false};
  /// Also assert bridge safety inside each car model (gives car-local
  /// counterexample traces in addition to the global invariant).
  bool car_asserts{false};
};

/// Fig. 13 architecture ("exactly-N-cars-per-turn").
Architecture make_v1(const BridgeConfig& cfg);

/// The paper's plug-and-play fix for v1: swap every car's enter send port
/// from asynchronous blocking to synchronous blocking. Touches only the
/// connector; all component models are reused on the next generate().
void apply_v1_fix(Architecture& arch, const BridgeConfig& cfg);

/// Fig. 14 architecture ("at-most-N-cars-per-turn") with the two
/// controller-to-controller yield connectors.
Architecture make_v2(const BridgeConfig& cfg);

/// The bridge safety property: cars never travel in both directions at
/// once:  !(blue_on_bridge > 0 && red_on_bridge > 0).
expr::Ex safety_invariant(ModelGenerator& gen);

/// Per-direction capacity bound: at most N cars of one color on the bridge.
expr::Ex batch_bound_invariant(ModelGenerator& gen, int n);

/// Registers the propositions used by the LTL properties below on `gen`:
///   blue_on  := blue_on_bridge > 0
///   red_on   := red_on_bridge > 0
///   both_on  := blue_on && red_on
void register_props(ModelGenerator& gen);

}  // namespace pnp::bridge
