// AOT driver: content-addressed artifact cache + host-toolchain compile +
// dlopen + the Engine adapter bridging the C ABI back to SuccScratch/SuccSink.
#include "codegen/aot.h"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "codegen/aot_abi.h"
#include "obs/obs.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp::codegen {

namespace {

namespace fs = std::filesystem;

// Bump whenever the generated code's SHAPE changes (new helpers, different
// specialization decisions) even if the ABI is unchanged: the emitter
// version is part of the cache key, so old artifacts simply stop matching.
constexpr int kEmitterVersion = 4;

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string pick_cxx(const EngineOptions& opt) {
  if (!opt.cxx.empty()) return opt.cxx;
  if (const char* env = std::getenv("PNP_AOT_CXX"); env && *env) return env;
#ifdef PNP_AOT_HOST_CXX
  return PNP_AOT_HOST_CXX;  // the compiler this library was built with
#else
  return "c++";
#endif
}

fs::path pick_cache_dir(const EngineOptions& opt, std::string* why) {
  std::error_code ec;
  fs::path dir = opt.cache_dir.empty()
                     ? fs::temp_directory_path(ec) / "pnp-aot-cache"
                     : fs::path(opt.cache_dir);
  if (ec) {
    *why = "no usable temp directory for the aot artifact cache";
    return {};
  }
  fs::create_directories(dir, ec);
  if (ec) {
    *why = "cannot create aot cache directory " + dir.string();
    return {};
  }
  return dir;
}

struct HostCtx {
  kernel::SuccScratch* scratch;
  kernel::SuccSink* sink;
};

struct UndoBufs {
  std::vector<std::int32_t> slot;
  std::vector<std::int32_t> val;
};

UndoBufs& undo_bufs() {
  thread_local UndoBufs bufs;
  return bufs;
}

}  // namespace

extern "C" {

static std::int32_t pnp_aot_emit_cb(pnp_aot_ctx* c, const pnp_aot_step* st) {
  auto* host = static_cast<HostCtx*>(c->host);
  kernel::SuccScratch& scr = *host->scratch;
  scr.undo.clear();
  for (std::int32_t i = 0; i < c->undo_len; ++i)
    scr.undo.emplace_back(c->undo_slot[i], c->undo_val[i]);
  scr.state.atomic_pid = c->atomic_pid;
  kernel::Step& s = scr.step;
  s.pid = st->pid;
  s.trans = st->trans;
  s.partner_pid = st->partner_pid;
  s.partner_trans = st->partner_trans;
  s.assert_failed = st->assert_failed != 0;
  s.event.kind = static_cast<kernel::StepEvent::Kind>(st->kind);
  s.event.chan = st->chan;
  if (st->msg)
    s.event.msg.assign(st->msg, st->msg + st->msg_len);
  else
    s.event.msg.clear();
  return host->sink->on_successor(scr.state, s) ? 1 : 0;
}

static void pnp_aot_trap_cb(pnp_aot_ctx*, const char* msg) {
  // Unwinds through the generated frames (plain data, nothing to destroy) --
  // the same ModelError the interpreter's PNP_CHECK would raise here.
  raise_model_error(msg);
}

}  // extern "C"

namespace {

class AotEngine final : public Engine {
 public:
  AotEngine(const kernel::Machine& m, void* handle,
            const pnp_aot_module_v1* mod)
      : Engine(m), handle_(handle), mod_(mod) {}

  ~AotEngine() override {
    if (handle_) dlclose(handle_);
  }

  EngineKind kind() const override { return EngineKind::Aot; }

  void visit_successors(const kernel::State& s, kernel::SuccScratch& scratch,
                        kernel::SuccSink& sink, std::uint32_t skip,
                        std::uint64_t* resume) const override {
    HostCtx host{&scratch, &sink};
    pnp_aot_ctx ctx;
    prepare(s, scratch, host, ctx, skip);
    if (resume != nullptr) {
      // Fast-forward to the previous visit's stop process: everything
      // before it contributed exactly `base` candidates, all covered by
      // `skip`. Atomic states keep the plain path (single-process sweep).
      const int tp = resume_pid(*resume);
      const std::uint32_t base = resume_base(*resume);
      if (tp >= 0 && tp < m_->n_processes() && base <= skip &&
          s.atomic_pid < 0) {
        ctx.start_pid = tp;
        ctx.cand = static_cast<std::int32_t>(base);
        ctx.skip = static_cast<std::int32_t>(skip - base);
      }
      *resume = 0;
    }
    mod_->visit_all(&ctx);
    if (resume != nullptr && ctx.stop_pid >= 0)
      *resume = encode_resume(ctx.stop_pid,
                              static_cast<std::uint32_t>(ctx.pid_base));
    finish(s, scratch);
  }

  bool visit_successors_of(const kernel::State& s, int pid,
                           kernel::SuccScratch& scratch, kernel::SuccSink& sink,
                           std::uint32_t skip) const override {
    HostCtx host{&scratch, &sink};
    pnp_aot_ctx ctx;
    prepare(s, scratch, host, ctx, skip);
    const std::uint32_t r = mod_->visit_of(&ctx, pid);
    finish(s, scratch);
    return (r & 1u) != 0;
  }

  bool encode_support() const override { return mod_->dirty_mask != nullptr; }

  std::uint64_t dirty_regions(const std::pair<int, kernel::Value>* undo,
                              std::size_t n) const override {
    // The undo log's (slot, previous value) pairs cross the C ABI as a flat
    // i32 array with stride 2, slot first.
    static_assert(sizeof(std::pair<int, kernel::Value>) ==
                      2 * sizeof(std::int32_t),
                  "undo entries must be two packed i32s for the C ABI");
    static_assert(std::is_standard_layout_v<std::pair<int, kernel::Value>>,
                  "undo entries must be standard-layout for the C ABI");
    return mod_->dirty_mask(reinterpret_cast<const std::int32_t*>(undo),
                            static_cast<std::int32_t>(n), 2);
  }

  std::uint64_t region_hash(const kernel::Value* mem, int r) const override {
    return mod_->region_hash(mem, static_cast<std::int32_t>(r));
  }

 private:
  void prepare(const kernel::State& s, kernel::SuccScratch& scratch,
               HostCtx& host, pnp_aot_ctx& ctx, std::uint32_t skip) const {
    scratch.state.mem.assign(s.mem.begin(), s.mem.end());
    scratch.state.atomic_pid = s.atomic_pid;
    scratch.undo.clear();
    UndoBufs& bufs = undo_bufs();
    // one step's undo log: at most one channel region + a frame's resets +
    // binds + two pcs, comfortably under size + 32
    const std::size_t need = s.mem.size() + 32;
    if (bufs.slot.size() < need) {
      bufs.slot.resize(need);
      bufs.val.resize(need);
    }
    ctx.mem = scratch.state.mem.data();
    ctx.undo_slot = bufs.slot.data();
    ctx.undo_val = bufs.val.data();
    ctx.undo_len = 0;
    ctx.atomic_pid = s.atomic_pid;
    ctx.src_atomic = s.atomic_pid;
    ctx.skip = static_cast<std::int32_t>(skip);
    ctx.start_pid = -1;
    ctx.stop_pid = -1;
    ctx.cand = 0;
    ctx.pid_base = 0;
    ctx.host = &host;
    ctx.emit = &pnp_aot_emit_cb;
    ctx.trap = &pnp_aot_trap_cb;
  }

  /// Leave the scratch in the interpreter's post-generation shape: state
  /// reverted to the source, undo log empty.
  void finish(const kernel::State& s, kernel::SuccScratch& scratch) const {
    scratch.state.atomic_pid = s.atomic_pid;
    scratch.undo.clear();
  }

  void* handle_;
  const pnp_aot_module_v1* mod_;
};

bool write_file_atomic(const fs::path& final_path, const std::string& body,
                       std::string* why) {
  const fs::path tmp =
      final_path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      *why = "cannot write " + tmp.string();
      return false;
    }
    out << body;
    if (!out.flush()) {
      *why = "short write to " + tmp.string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    *why = "cannot move artifact into cache at " + final_path.string();
    return false;
  }
  return true;
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (char ch : s) {
    if (ch == '\'')
      out += "'\\''";
    else
      out += ch;
  }
  out += "'";
  return out;
}

}  // namespace

std::unique_ptr<Engine> make_aot_engine(const kernel::Machine& m,
                                        const EngineOptions& opt,
                                        std::string* why) {
  const std::string key_src = machine_digest(m) + "|abi" +
                              std::to_string(kAotAbiVersion) + "|emit" +
                              std::to_string(kEmitterVersion);
  const std::string key =
      hex64(stable_hash64(key_src)) + hex64(stable_hash64(key_src + "#2"));

  const fs::path dir = pick_cache_dir(opt, why);
  if (dir.empty()) return nullptr;
  const fs::path so = dir / ("pnp-aot-" + key + ".so");
  const fs::path cpp = dir / ("pnp-aot-" + key + ".cpp");

  std::error_code ec;
  const bool cached = fs::exists(so, ec);
  if (!cached) {
    std::string src = emit_aot_source(m, key, why);
    if (src.empty()) return nullptr;  // unsupported construct; *why set
    if (!write_file_atomic(cpp, src, why)) return nullptr;

    const std::string cxx = pick_cxx(opt);
    const fs::path so_tmp =
        so.string() + ".tmp." + std::to_string(::getpid());
    const fs::path log = dir / ("pnp-aot-" + key + ".log");
    const std::string cmd = shell_quote(cxx) +
                            " -std=c++20 -O2 -fPIC -shared -o " +
                            shell_quote(so_tmp.string()) + " " +
                            shell_quote(cpp.string()) + " > " +
                            shell_quote(log.string()) + " 2>&1";

    std::size_t phase = 0;
    const auto t0 = std::chrono::steady_clock::now();
    if (opt.obs) phase = opt.obs->begin_phase("codegen.compile", 0);
    const int rc = std::system(cmd.c_str());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (opt.obs) opt.obs->end_phase(phase, 0, secs, rc == 0 ? "" : "failed");
    if (rc != 0) {
      fs::remove(so_tmp, ec);
      *why = "aot compile failed with " + cxx + " (log: " + log.string() + ")";
      return nullptr;
    }
    fs::rename(so_tmp, so, ec);
    if (ec && !fs::exists(so)) {  // a concurrent build may have won the race
      *why = "cannot move compiled module into cache at " + so.string();
      return nullptr;
    }
    if (opt.obs) opt.obs->recorder().add(obs::Counter::CodegenCompiles, 1);
  } else if (opt.obs) {
    opt.obs->recorder().add(obs::Counter::CodegenCacheHits, 1);
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* err = dlerror();
    *why = "dlopen failed: " + std::string(err ? err : "unknown error");
    return nullptr;
  }
  using EntryFn = pnp_aot_module_v1* (*)();
  auto entry =
      reinterpret_cast<EntryFn>(dlsym(handle, kAotEntrySymbol));
  if (!entry) {
    dlclose(handle);
    *why = "cached module exports no " + std::string(kAotEntrySymbol);
    return nullptr;
  }
  const pnp_aot_module_v1* mod = entry();
  if (mod == nullptr || mod->abi_version != kAotAbiVersion ||
      mod->state_size != m.layout().size() ||
      key != (mod->source_digest ? mod->source_digest : "")) {
    dlclose(handle);
    *why = "cached module at " + so.string() +
           " does not match this machine (stale or foreign artifact)";
    return nullptr;
  }
  return std::make_unique<AotEngine>(m, handle, mod);
}

std::string describe_engines(const std::string& cache_dir) {
  EngineOptions opt;
  opt.cache_dir = cache_dir;
  const std::string cxx = pick_cxx(opt);
  // The same invocation shape make_aot_engine uses, minus the compile: a
  // toolchain that answers --version is one the build step can exec.
  const bool have_cxx =
      std::system((shell_quote(cxx) + " --version > /dev/null 2>&1").c_str()) ==
      0;
  std::string out = "successor engines:\n";
  out += "  interp    always available (the historical interpreter)\n";
  out += "  bytecode  always available (threaded-bytecode interpreter)\n";
  out += std::string("  aot       ") +
         (have_cxx ? "available (host toolchain found)"
                   : "unavailable on this host (falls back to bytecode)") +
         "\n";
  out += "aot toolchain: " + cxx +
         (have_cxx ? "  [probe ok]" : "  [probe failed: not runnable]") + "\n";
  std::string why;
  const fs::path dir = pick_cache_dir(opt, &why);
  out += "aot artifact cache: " +
         (dir.empty() ? "unavailable (" + why + ")" : dir.string()) + "\n";
  out += "aot abi: v" + std::to_string(kAotAbiVersion) + ", emitter v" +
         std::to_string(kEmitterVersion) + "\n";
  return out;
}

}  // namespace pnp::codegen
