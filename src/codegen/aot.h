// The AOT backend: emits a C++ translation unit specializing successor
// generation for ONE machine, compiles it with the host toolchain, dlopens
// the result, and adapts it to the Engine interface.
#pragma once

#include <memory>
#include <string>

#include "codegen/engine.h"

namespace pnp::codegen {

/// Generates the specialized C++ source for `m`, embedding `digest` as the
/// module's source_digest. Returns an empty string when the machine uses a
/// construct the emitter does not specialize (currently: channel-id
/// expressions that do not fold to constants), with the reason in `*why`.
/// Exposed for tests; production callers go through make_aot_engine.
std::string emit_aot_source(const kernel::Machine& m, const std::string& digest,
                            std::string* why);

/// Builds the AOT engine: emit + compile (content-addressed cache under
/// opt.cache_dir) + dlopen + validate. Returns nullptr with a one-line
/// reason in `*why` when anything along that path is unavailable or fails;
/// the caller (make_engine) decides whether that means fallback or error.
/// Bumps CodegenCompiles / CodegenCacheHits on opt.obs.
std::unique_ptr<Engine> make_aot_engine(const kernel::Machine& m,
                                        const EngineOptions& opt,
                                        std::string* why);

/// Human-readable backend diagnostic (`pnpv --engine list`): the available
/// backends, the AOT toolchain probe (the compiler make_aot_engine would
/// invoke, and whether it runs), the resolved artifact-cache directory for
/// `cache_dir` (empty = the shared temp-dir default), and the ABI/emitter
/// versions that key the artifact cache.
std::string describe_engines(const std::string& cache_dir);

}  // namespace pnp::codegen
