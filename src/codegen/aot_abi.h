// C ABI between the host and a generated AOT successor module.
//
// The generated translation unit is standalone -- it includes nothing from
// this repository -- so these structs are duplicated as text inside the
// emitter (aot_emit.cpp, kAbiText). Any layout change here MUST be mirrored
// there and MUST bump kAotAbiVersion: the loader rejects modules whose
// abi_version does not match, so a stale cached .so degrades to a cache
// miss, never to a silent layout mismatch.
//
// Protocol (mirrors the interpreter's mutate-and-revert scratch discipline):
//   * `mem` points at the host scratch state vector, pre-loaded with the
//     source state; `src_atomic` holds the source state's atomic pid.
//   * Generated code mutates `mem` in place, logging (slot, previous value)
//     into `undo_slot`/`undo_val` (host-allocated, state_size + 8 entries
//     is always enough for one step), and sets `atomic_pid` to the
//     successor's holder.
//   * For each successor it calls `emit` ONCE with the step metadata; the
//     host snapshots the undo log, runs the search sink, and returns 0 to
//     abort generation. Generated code then reverts `mem` from the log and
//     restores `atomic_pid` before trying the next candidate.
//   * `trap` reports a model error (division by zero, invalid channel id);
//     it never returns (the host implementation throws, unwinding through
//     the generated frames, which hold no destructors).
#pragma once

#include <cstdint>

extern "C" {

struct pnp_aot_step {
  std::int32_t pid;
  std::int32_t trans;
  std::int32_t partner_pid;
  std::int32_t partner_trans;
  std::int32_t kind;  // StepEvent::Kind: 0 Local, 1 Send, 2 Recv, 3 Handshake
  std::int32_t chan;
  std::int32_t assert_failed;
  std::int32_t msg_len;
  const std::int32_t* msg;
};

struct pnp_aot_ctx {
  std::int32_t* mem;
  std::int32_t* undo_slot;
  std::int32_t* undo_val;
  std::int32_t undo_len;
  std::int32_t atomic_pid;
  std::int32_t src_atomic;
  // Candidates left to suppress: the generated code enumerates them (flags
  // and candidate indices stay exact) but skips their mutation + emit.
  std::int32_t skip;
  // Resume fast-forward (visit_all only). In: start_pid >= 0 starts the
  // process sweep there with `cand` pre-set to the candidates enumerated
  // before that process on the previous visit of the same state; -1 sweeps
  // everything. Out: stop_pid/pid_base record where the sink stopped the
  // visit (-1 when it ran to completion), forming the next visit's token.
  std::int32_t start_pid;
  std::int32_t stop_pid;
  std::int32_t cand;      // candidates enumerated so far (absolute)
  std::int32_t pid_base;  // cand at the current process's sweep start
  void* host;
  std::int32_t (*emit)(pnp_aot_ctx*, const pnp_aot_step*);
  void (*trap)(pnp_aot_ctx*, const char*);
};

struct pnp_aot_module_v1 {
  std::int32_t abi_version;
  std::int32_t state_size;
  const char* source_digest;
  // Return bitmask: bit 0 = at least one successor emitted, bit 1 = the
  // sink aborted generation.
  std::uint32_t (*visit_all)(pnp_aot_ctx*);
  std::uint32_t (*visit_of)(pnp_aot_ctx*, std::int32_t pid);
  // Layout-specialized store-path helpers; both null when the layout has
  // more than 64 COLLAPSE regions (the host's mask-based delta path is
  // capped there and falls back to the generic compressor).
  //   * dirty_mask folds undo-log slot indices (`n` entries read at the
  //     given stride, in i32 units, slot index first) into a bitmask of the
  //     regions owning them, via a generated constant slot->mask table.
  //   * region_hash replicates the host's fast_hash64 over region r's value
  //     span in `mem` -- bit-exact, because the host compressor derives
  //     component ids and stripe placement from this hash.
  std::uint64_t (*dirty_mask)(const std::int32_t* slots, std::int32_t n,
                              std::int32_t stride);
  std::uint64_t (*region_hash)(const std::int32_t* mem, std::int32_t r);
};

}  // extern "C"

namespace pnp::codegen {

inline constexpr std::int32_t kAotAbiVersion = 3;

/// Name of the module's single exported symbol.
inline constexpr const char* kAotEntrySymbol = "pnp_aot_module";

}  // namespace pnp::codegen
