// Emitter: one machine -> one standalone C++ translation unit implementing
// the pnp_aot_module_v1 ABI (aot_abi.h).
//
// The generated module is the interpreter partially evaluated for this
// machine (SPIN's pan.c idea):
//   * one `expand_pN` function per process instance, a switch over that
//     process's pc with straight-line code per candidate transition, in
//     the interpreter's candidate order;
//   * spawn parameters and SelfPid folded into the code, which folds
//     channel-id expressions -- and so channel base/capacity/arity/lossy
//     and rendezvous partner sets -- to compile-time constants;
//   * expressions emitted as native C++ (short-circuit && / || match the
//     tree-walker; Div/Mod pin divisor-first evaluation and keep the
//     runtime trap);
//   * undo logging identical to SuccGen's, entry for entry (whole-channel
//     region snapshots, unconditional frame resets on crash), so COLLAPSE
//     delta compression and the differential tests see the same log.
//
// Single-buffer soundness: within one candidate every read (guards, send
// fields, recv matches, partner pcs) happens before the first write, and
// the buffer is reverted after each emit -- so mutating the scratch the
// reads come from cannot change any evaluated value.
#include "codegen/aot.h"

#include <string>
#include <vector>

#include "codegen/aot_abi.h"
#include "codegen/fold.h"
#include "compile/compiler.h"

namespace pnp::codegen {

namespace {

using compile::CompiledProc;
using compile::OpKind;
using compile::Transition;
using expr::Value;
using model::RecvArgKind;

// Keep textually in sync with aot_abi.h (see the rules there).
constexpr const char* kAbiText = R"(#include <cstdint>

extern "C" {

struct pnp_aot_step {
  std::int32_t pid;
  std::int32_t trans;
  std::int32_t partner_pid;
  std::int32_t partner_trans;
  std::int32_t kind;
  std::int32_t chan;
  std::int32_t assert_failed;
  std::int32_t msg_len;
  const std::int32_t* msg;
};

struct pnp_aot_ctx {
  std::int32_t* mem;
  std::int32_t* undo_slot;
  std::int32_t* undo_val;
  std::int32_t undo_len;
  std::int32_t atomic_pid;
  std::int32_t src_atomic;
  std::int32_t skip;
  std::int32_t start_pid;
  std::int32_t stop_pid;
  std::int32_t cand;
  std::int32_t pid_base;
  void* host;
  std::int32_t (*emit)(pnp_aot_ctx*, const pnp_aot_step*);
  void (*trap)(pnp_aot_ctx*, const char*);
};

struct pnp_aot_module_v1 {
  std::int32_t abi_version;
  std::int32_t state_size;
  const char* source_digest;
  std::uint32_t (*visit_all)(pnp_aot_ctx*);
  std::uint32_t (*visit_of)(pnp_aot_ctx*, std::int32_t pid);
  std::uint64_t (*dirty_mask)(const std::int32_t* slots, std::int32_t n,
                              std::int32_t stride);
  std::uint64_t (*region_hash)(const std::int32_t* mem, std::int32_t r);
};

}  // extern "C"
)";

constexpr const char* kRuntimeText = R"(
namespace {

using i32 = std::int32_t;
using u32 = std::uint32_t;

inline void u_set(pnp_aot_ctx* c, i32 slot, i32 v) {
  c->undo_slot[c->undo_len] = slot;
  c->undo_val[c->undo_len] = c->mem[slot];
  ++c->undo_len;
  c->mem[slot] = v;
}

inline void u_save(pnp_aot_ctx* c, i32 slot) {
  c->undo_slot[c->undo_len] = slot;
  c->undo_val[c->undo_len] = c->mem[slot];
  ++c->undo_len;
}

inline void revert(pnp_aot_ctx* c) {
  for (i32 i = c->undo_len; i-- > 0;) c->mem[c->undo_slot[i]] = c->undo_val[i];
  c->undo_len = 0;
  c->atomic_pid = c->src_atomic;
}

inline i32 do_emit(pnp_aot_ctx* c, i32 pid, i32 trans, i32 kind, i32 chan,
                   const i32* msg, i32 msg_len, i32 assert_failed,
                   i32 partner_pid, i32 partner_trans) {
  ++c->cand;          // every candidate counts, surfaced or suppressed
  if (c->skip > 0) {  // suppressed candidate: keep indices, drop the surface
    --c->skip;
    revert(c);
    return 1;
  }
  pnp_aot_step st;
  st.pid = pid;
  st.trans = trans;
  st.partner_pid = partner_pid;
  st.partner_trans = partner_trans;
  st.kind = kind;
  st.chan = chan;
  st.assert_failed = assert_failed;
  st.msg_len = msg_len;
  st.msg = msg;
  const i32 keep = c->emit(c, &st);
  revert(c);
  return keep;
}

[[noreturn]] inline void trap(pnp_aot_ctx* c, const char* msg) {
  c->trap(c, msg);
  __builtin_unreachable();
}

inline void chan_save(pnp_aot_ctx* c, i32 base, i32 count) {
  for (i32 i = 0; i < count; ++i) u_save(c, base + i);
}

inline void chan_push(pnp_aot_ctx* c, i32 base, i32 arity, const i32* f) {
  i32* m = c->mem;
  const i32 len = m[base];
  i32* dst = m + base + 1 + len * arity;
  for (i32 j = 0; j < arity; ++j) dst[j] = f[j];
  m[base] = len + 1;
}

inline void chan_push_sorted(pnp_aot_ctx* c, i32 base, i32 arity,
                             const i32* f) {
  i32* m = c->mem;
  const i32 len = m[base];
  i32* buf = m + base + 1;
  i32 pos = 0;
  while (pos < len) {
    const i32* q = buf + pos * arity;
    bool greater = false;
    for (i32 j = 0; j < arity; ++j) {
      if (q[j] != f[j]) {
        greater = q[j] > f[j];
        break;
      }
    }
    if (greater) break;
    ++pos;
  }
  for (i32 j = len * arity - 1; j >= pos * arity; --j) buf[j + arity] = buf[j];
  for (i32 j = 0; j < arity; ++j) buf[pos * arity + j] = f[j];
  m[base] = len + 1;
}

inline void chan_erase(pnp_aot_ctx* c, i32 base, i32 arity, i32 idx) {
  i32* m = c->mem;
  const i32 len = m[base];
  i32* buf = m + base + 1;
  for (i32 j = idx * arity; j < (len - 1) * arity; ++j) buf[j] = buf[j + arity];
  for (i32 j = (len - 1) * arity; j < len * arity; ++j) buf[j] = 0;
  m[base] = len - 1;
}

inline bool msg_eq(const i32* a, const i32* b, i32 arity) {
  for (i32 j = 0; j < arity; ++j)
    if (a[j] != b[j]) return false;
  return true;
}

using u64 = std::uint64_t;

inline u64 hash_avalanche(u64 x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

// Bit-exact replica of the host's fast_hash64 (support/hash.h): the host
// compressor derives component ids, fingerprints, and stripe placement from
// this hash, so any drift would split identical components across stripes.
inline u64 hash_span(const unsigned char* p, u64 n) {
  const u64 kMul = 0x9ddfea08eb382d69ull;
  u64 h = 0x9e3779b97f4a7c15ull ^ (n * 0x100000001b3ull);
  while (n >= 8) {
    u64 w;
    __builtin_memcpy(&w, p, 8);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    u64 w = 0;
    __builtin_memcpy(&w, p, n);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
  }
  return hash_avalanche(h);
}
)";

struct ChanStatic {
  int base{-1};
  int capacity{0};
  int arity{1};
  bool lossy{false};
  std::string name;
};

/// Signals "this machine can't be specialized"; caught at the emit_source
/// top level and turned into the empty-string + why return.
struct Unsupported {
  std::string why;
};

std::string num(long long v) { return std::to_string(v); }

/// Per-pid expression -> C++ text, with params/SelfPid folded.
class CxxExpr {
 public:
  CxxExpr(const expr::Pool& pool, std::span<const Value> params, Value self,
          int frame_base, int n_params, const std::vector<ChanStatic>& chans)
      : pool_(pool),
        params_(params),
        self_(self),
        frame_base_(frame_base),
        n_params_(n_params),
        chans_(chans) {}

  std::string operator()(expr::Ref r) const { return emit(r); }

  std::optional<Value> fold(expr::Ref r) const {
    return fold_const(pool_, r, params_, self_);
  }

  /// Absolute slot of frame slot `slot` (params + locals).
  int frame_abs(int slot) const { return frame_base_ + slot - n_params_; }

 private:
  std::string emit(expr::Ref r) const {
    if (auto c = fold(r)) return num(*c);
    const expr::Node& n = pool_.at(r);
    using expr::Op;
    switch (n.op) {
      case Op::Const:
      case Op::SelfPid:
        return num(0);  // unreachable: always folds
      case Op::Global:
        return "m[" + num(n.imm) + "]";
      case Op::Local:
        return "m[" + num(frame_abs(n.imm)) + "]";
      case Op::Neg:
        return "(-" + emit(n.a) + ")";
      case Op::Not:
        return "(" + emit(n.a) + " == 0 ? 1 : 0)";
      case Op::Add:
        return "(" + emit(n.a) + " + " + emit(n.b) + ")";
      case Op::Sub:
        return "(" + emit(n.a) + " - " + emit(n.b) + ")";
      case Op::Mul:
        return "(" + emit(n.a) + " * " + emit(n.b) + ")";
      case Op::Div:
      case Op::Mod: {
        // divisor evaluated and checked first, like the tree interpreter
        const char* sym = n.op == Op::Div ? "/" : "%";
        const char* msg = n.op == Op::Div
                              ? "division by zero in model expression"
                              : "modulo by zero in model expression";
        return std::string("([&]() -> i32 { const i32 d_ = ") + emit(n.b) +
               "; if (d_ == 0) trap(c, \"" + msg + "\"); return " + emit(n.a) +
               " " + sym + " d_; }())";
      }
      case Op::And:
        return "(((" + emit(n.a) + ") != 0 && (" + emit(n.b) +
               ") != 0) ? 1 : 0)";
      case Op::Or:
        return "(((" + emit(n.a) + ") != 0 || (" + emit(n.b) +
               ") != 0) ? 1 : 0)";
      case Op::Eq:
        return "(" + emit(n.a) + " == " + emit(n.b) + " ? 1 : 0)";
      case Op::Ne:
        return "(" + emit(n.a) + " != " + emit(n.b) + " ? 1 : 0)";
      case Op::Lt:
        return "(" + emit(n.a) + " < " + emit(n.b) + " ? 1 : 0)";
      case Op::Le:
        return "(" + emit(n.a) + " <= " + emit(n.b) + " ? 1 : 0)";
      case Op::Gt:
        return "(" + emit(n.a) + " > " + emit(n.b) + " ? 1 : 0)";
      case Op::Ge:
        return "(" + emit(n.a) + " >= " + emit(n.b) + " ? 1 : 0)";
      case Op::Cond:
        return "((" + emit(n.a) + ") != 0 ? " + emit(n.b) + " : " +
               emit(n.c) + ")";
      case Op::ChanLen:
      case Op::ChanFull:
      case Op::ChanEmpty: {
        const auto id = fold(n.a);
        if (!id)
          throw Unsupported{"channel query with state-dependent channel id"};
        if (*id < 0 || static_cast<std::size_t>(*id) >= chans_.size())
          throw Unsupported{"channel query on out-of-range channel id " +
                            num(*id)};
        const ChanStatic& ch = chans_[static_cast<std::size_t>(*id)];
        if (ch.base < 0) {
          // rendezvous: len 0, full (0 >= 0), empty -- all constants
          return num(n.op == Op::ChanLen ? 0 : 1);
        }
        if (n.op == Op::ChanLen) return "m[" + num(ch.base) + "]";
        if (n.op == Op::ChanFull)
          return "(m[" + num(ch.base) + "] >= " + num(ch.capacity) +
                 " ? 1 : 0)";
        return "(m[" + num(ch.base) + "] == 0 ? 1 : 0)";
      }
    }
    return num(0);
  }

  const expr::Pool& pool_;
  std::span<const Value> params_;
  Value self_;
  int frame_base_;
  int n_params_;
  const std::vector<ChanStatic>& chans_;
};

class Emitter {
 public:
  Emitter(const kernel::Machine& m, const std::string& digest)
      : m_(m), sys_(m.spec()), lay_(m.layout()), digest_(digest) {
    const std::size_t n_chans = sys_.channels.size();
    chans_.reserve(n_chans);
    for (std::size_t c = 0; c < n_chans; ++c) {
      const int ci = static_cast<int>(c);
      ChanStatic ch;
      ch.base = lay_.chan_region(ci).first;
      ch.capacity = lay_.chan_capacity(ci);
      ch.arity = lay_.chan_arity(ci);
      ch.lossy = lay_.chan_lossy(ci);
      ch.name = sys_.channels[c].name;
      chans_.push_back(std::move(ch));
    }
    for (int pid = 0; pid < m_.n_processes(); ++pid) {
      const std::vector<Value>& args =
          sys_.processes[static_cast<std::size_t>(pid)].args;
      ex_.emplace_back(sys_.exprs, std::span<const Value>{args.data(),
                                                          args.size()},
                       static_cast<Value>(pid), lay_.pc_slot(pid) + 1,
                       m_.proc_of(pid).n_params, chans_);
    }
  }

  std::string run() {
    out_ += "// Generated successor module; do not edit. digest ";
    out_ += digest_;
    out_ += "\n";
    out_ += kAbiText;
    out_ += kRuntimeText;
    for (int pid = 0; pid < m_.n_processes(); ++pid) emit_expand(pid);
    emit_encode();
    emit_entry();
    out_ += "}  // namespace\n\n";
    out_ += "extern \"C\" pnp_aot_module_v1* pnp_aot_module() {\n";
    out_ += "  static pnp_aot_module_v1 mod = {" + num(kAotAbiVersion) + ", " +
            num(lay_.size()) + ", kDigest, &visit_all, &visit_of, " +
            (encode_supported_ ? "&dirty_mask, &region_hash" :
                                 "nullptr, nullptr") +
            "};\n";
    out_ += "  return &mod;\n}\n";
    return std::move(out_);
  }

 private:
  void line(const std::string& s) {
    out_.append(static_cast<std::size_t>(indent_) * 2, ' ');
    out_ += s;
    out_ += '\n';
  }
  void open(const std::string& s) {
    line(s);
    ++indent_;
  }
  void close(const std::string& s = "}") {
    --indent_;
    line(s);
  }

  /// `c->trap(...)` arm for conditions the interpreter checks at runtime:
  /// the generated code must fail when (and only when) the transition is
  /// actually reached, with the interpreter's exact message.
  void emit_trap(const std::string& msg) {
    line("trap(c, \"" + msg + "\");");
  }

  /// pc-slot update + atomic handover + emit + stop handling, shared by
  /// every single-emit transition arm. `extra` is "" or the message args.
  void emit_step_tail(int pid, int ti, const Transition& t, int kind,
                      int chan, const std::string& msg_ptr, int msg_len,
                      const std::string& assert_failed, bool is_program) {
    const CompiledProc& cp = m_.proc_of(pid);
    line("u_set(c, " + num(lay_.pc_slot(pid)) + ", " + num(t.dst) + ");");
    const bool at = cp.atomic_at[static_cast<std::size_t>(t.dst)];
    line("c->atomic_pid = " + num(at ? pid : -1) + ";");
    line("if (!do_emit(c, " + num(pid) + ", " + num(ti) + ", " + num(kind) +
         ", " + num(chan) + ", " + msg_ptr + ", " + num(msg_len) + ", " +
         assert_failed + ", -1, -1)) return any | 3u;");
    line("any = 1u;");
    if (is_program) line("any_program = 1u;");
  }

  void emit_expand(int pid) {
    const CompiledProc& cp = m_.proc_of(pid);
    const CxxExpr& ex = ex_[static_cast<std::size_t>(pid)];
    open("static u32 expand_p" + num(pid) + "(pnp_aot_ctx* c) {");
    line("i32* const m = c->mem;");
    line("(void)m;");
    line("u32 any = 0;");
    line("u32 any_program = 0;");
    line("(void)any_program;");
    open("switch (m[" + num(lay_.pc_slot(pid)) + "]) {");
    for (int pc = 0; pc < cp.n_pcs; ++pc) {
      const std::vector<int>& cands = cp.out[static_cast<std::size_t>(pc)];
      if (cands.empty()) continue;
      open("case " + num(pc) + ": {");
      int else_ti = -1;
      for (int ti : cands) {
        const Transition& t = cp.trans[static_cast<std::size_t>(ti)];
        if (t.op == OpKind::Else) {
          else_ti = ti;  // last Else wins, like the interpreter's loop
          continue;
        }
        emit_trans(pid, ti, t, ex);
      }
      if (else_ti >= 0) {
        const Transition& t = cp.trans[static_cast<std::size_t>(else_ti)];
        line("// else");
        open("if (!any_program) {");
        emit_step_tail(pid, else_ti, t, 0, -1, "nullptr", 0, "0", false);
        close();
      }
      line("break;");
      close();
    }
    line("default: break;");
    close();  // switch
    line("return any;");
    close();  // function
    out_ += "\n";
  }

  void emit_trans(int pid, int ti, const Transition& t, const CxxExpr& ex) {
    line("// t" + num(ti) + " " + op_name(t.op));
    switch (t.op) {
      case OpKind::Noop:
        open("{");
        emit_step_tail(pid, ti, t, 0, -1, "nullptr", 0, "0", true);
        close();
        break;
      case OpKind::Guard:
        open("if ((" + ex(t.expr) + ") != 0) {");
        emit_step_tail(pid, ti, t, 0, -1, "nullptr", 0, "0", true);
        close();
        break;
      case OpKind::Assign: {
        open("{");
        line("const i32 v_ = " + ex(t.expr) + ";");
        const int abs = t.lhs.kind == model::LhsKind::Global
                            ? t.lhs.slot
                            : lay_.frame_slot(pid, t.lhs.slot);
        line("u_set(c, " + num(abs) + ", v_);");
        emit_step_tail(pid, ti, t, 0, -1, "nullptr", 0, "0", true);
        close();
        break;
      }
      case OpKind::Assert:
        open("{");
        line("const i32 ok_ = " + ex(t.expr) + ";");
        emit_step_tail(pid, ti, t, 0, -1, "nullptr", 0, "ok_ == 0 ? 1 : 0",
                       true);
        close();
        break;
      case OpKind::Crash:
        emit_crash(pid, ti, t, ex);
        break;
      case OpKind::Send:
        emit_send(pid, ti, t, ex);
        break;
      case OpKind::Recv:
        emit_recv(pid, ti, t, ex);
        break;
      case OpKind::Else:
        break;  // handled by caller
    }
  }

  void emit_crash(int pid, int ti, const Transition& t, const CxxExpr& ex) {
    const CompiledProc& cp = m_.proc_of(pid);
    const int budget_abs = ex.frame_abs(t.lhs.slot);
    open("{");
    line("const i32 budget_ = m[" + num(budget_abs) + "];");
    open("if (budget_ > 0) {");
    // unconditional resets, one undo entry per mutable local (interpreter
    // parity: mut_frame always logs, even when the value is unchanged)
    for (std::size_t i = static_cast<std::size_t>(cp.n_params);
         i < cp.frame_init.size(); ++i)
      line("u_set(c, " + num(ex.frame_abs(static_cast<int>(i))) + ", " +
           num(cp.frame_init[i]) + ");");
    line("u_set(c, " + num(budget_abs) + ", budget_ - 1);");
    emit_step_tail(pid, ti, t, 0, -1, "nullptr", 0, "0",
                   /*is_program=*/false);
    close();
    close();
  }

  int chan_of(const Transition& t, const CxxExpr& ex, const char* what) {
    const auto id = ex.fold(t.chan);
    if (!id)
      throw Unsupported{std::string(what) +
                        " with state-dependent channel id"};
    return static_cast<int>(*id);
  }

  void emit_send(int pid, int ti, const Transition& t, const CxxExpr& ex) {
    const int chan = chan_of(t, ex, "send");
    if (chan < 0 || static_cast<std::size_t>(chan) >= chans_.size()) {
      emit_trap("send/recv on invalid channel id " + num(chan));
      return;
    }
    const ChanStatic& ch = chans_[static_cast<std::size_t>(chan)];
    if (static_cast<int>(t.fields.size()) != ch.arity) {
      emit_trap("send arity mismatch on channel " + ch.name);
      return;
    }
    if (ch.arity > 16) {
      emit_trap("channel arity > 16 unsupported");
      return;
    }
    open("{");
    line("i32 f_[" + num(ch.arity) + "];");
    for (int i = 0; i < ch.arity; ++i)
      line("f_[" + num(i) + "] = " +
           ex(t.fields[static_cast<std::size_t>(i)]) + ";");
    if (ch.capacity == 0) {
      emit_rendezvous(pid, ti, t, chan, ch);
      close();
      return;
    }
    const int region = 1 + ch.capacity * ch.arity;
    line("const i32 len_ = m[" + num(ch.base) + "];");
    open("if (len_ < " + num(ch.capacity) + ") {");
    line("chan_save(c, " + num(ch.base) + ", " + num(region) + ");");
    line(std::string(t.sorted ? "chan_push_sorted" : "chan_push") + "(c, " +
         num(ch.base) + ", " + num(ch.arity) + ", f_);");
    emit_step_tail(pid, ti, t, 1, chan, "f_", ch.arity, "0", true);
    if (ch.lossy) {
      close("} else {");
      ++indent_;
      line("// lossy channel drops the message silently");
      emit_step_tail(pid, ti, t, 1, chan, "f_", ch.arity, "0", true);
      close();
    } else {
      close();
    }
    close();
  }

  void emit_rendezvous(int pid, int ti, const Transition& t, int chan,
                       const ChanStatic& ch) {
    const CompiledProc& cp = m_.proc_of(pid);
    const bool at = cp.atomic_at[static_cast<std::size_t>(t.dst)];
    for (int pid2 = 0; pid2 < m_.n_processes(); ++pid2) {
      if (pid2 == pid) continue;
      const CompiledProc& cp2 = m_.proc_of(pid2);
      const CxxExpr& ex2 = ex_[static_cast<std::size_t>(pid2)];
      // collect (pc2 -> matching recv transitions on this channel)
      bool opened = false;
      for (int pc2 = 0; pc2 < cp2.n_pcs; ++pc2) {
        std::vector<int> hits;
        for (int ti2 : cp2.out[static_cast<std::size_t>(pc2)]) {
          const Transition& t2 = cp2.trans[static_cast<std::size_t>(ti2)];
          if (t2.op != OpKind::Recv) continue;
          const auto id2 = ex2.fold(t2.chan);
          if (!id2)
            throw Unsupported{"recv with state-dependent channel id"};
          if (static_cast<int>(*id2) == chan) hits.push_back(ti2);
        }
        if (hits.empty()) continue;
        if (!opened) {
          line("// partner pid " + num(pid2));
          open("switch (m[" + num(lay_.pc_slot(pid2)) + "]) {");
          opened = true;
        }
        open("case " + num(pc2) + ": {");
        for (int ti2 : hits) {
          const Transition& t2 = cp2.trans[static_cast<std::size_t>(ti2)];
          if (static_cast<int>(t2.args.size()) != ch.arity) {
            emit_trap("rendezvous pattern arity mismatch");
            continue;
          }
          std::string cond;
          for (std::size_t i = 0; i < t2.args.size(); ++i) {
            if (t2.args[i].kind != RecvArgKind::Match) continue;
            if (!cond.empty()) cond += " && ";
            cond += "(" + ex2(t2.args[i].match) + ") == f_[" + num(i) + "]";
          }
          open(cond.empty() ? "{" : "if (" + cond + ") {");
          for (std::size_t i = 0; i < t2.args.size(); ++i) {
            if (t2.args[i].kind != RecvArgKind::Bind) continue;
            const model::Lhs& lhs = t2.args[i].lhs;
            const int abs = lhs.kind == model::LhsKind::Global
                                ? lhs.slot
                                : lay_.frame_slot(pid2, lhs.slot);
            line("u_set(c, " + num(abs) + ", f_[" + num(i) + "]);");
          }
          line("u_set(c, " + num(lay_.pc_slot(pid)) + ", " + num(t.dst) +
               ");");
          line("u_set(c, " + num(lay_.pc_slot(pid2)) + ", " + num(t2.dst) +
               ");");
          const bool at2 = cp2.atomic_at[static_cast<std::size_t>(t2.dst)];
          const int na = at ? pid : (at2 ? pid2 : -1);
          line("c->atomic_pid = " + num(na) + ";");
          line("any = 1u;");
          line("any_program = 1u;");
          line("if (!do_emit(c, " + num(pid) + ", " + num(ti) + ", 3, " +
               num(chan) + ", f_, " + num(ch.arity) + ", 0, " + num(pid2) +
               ", " + num(ti2) + ")) return any | 2u;");
          close();
        }
        line("break;");
        close();
      }
      if (opened) {
        line("default: break;");
        close();  // switch
      }
    }
  }

  void emit_recv(int pid, int ti, const Transition& t, const CxxExpr& ex) {
    const int chan = chan_of(t, ex, "recv");
    if (chan < 0 || static_cast<std::size_t>(chan) >= chans_.size()) {
      emit_trap("send/recv on invalid channel id " + num(chan));
      return;
    }
    const ChanStatic& ch = chans_[static_cast<std::size_t>(chan)];
    if (ch.capacity == 0) return;  // rendezvous: passive side, no code
    if (static_cast<int>(t.args.size()) != ch.arity) {
      emit_trap("recv arity mismatch on channel " + ch.name);
      return;
    }
    const int region = 1 + ch.capacity * ch.arity;

    // match condition over a message pointer expression `q_`
    auto match_cond = [&]() {
      std::string cond;
      for (std::size_t i = 0; i < t.args.size(); ++i) {
        if (t.args[i].kind != RecvArgKind::Match) continue;
        if (!cond.empty()) cond += " && ";
        cond += "(" + ex(t.args[i].match) + ") == q_[" + num(i) + "]";
      }
      return cond;
    };
    auto emit_binds = [&]() {
      for (std::size_t i = 0; i < t.args.size(); ++i) {
        if (t.args[i].kind != RecvArgKind::Bind) continue;
        const model::Lhs& lhs = t.args[i].lhs;
        const int abs = lhs.kind == model::LhsKind::Global
                            ? lhs.slot
                            : lay_.frame_slot(pid, lhs.slot);
        line("u_set(c, " + num(abs) + ", f_[" + num(i) + "]);");
      }
    };
    auto emit_copy_fields = [&]() {
      line("i32 f_[" + num(ch.arity) + "];");
      line("for (i32 j_ = 0; j_ < " + num(ch.arity) +
           "; ++j_) f_[j_] = q_[j_];");
    };

    open("{");
    line("const i32 len_ = m[" + num(ch.base) + "];");
    open("if (len_ > 0) {");
    line("const i32* const buf_ = m + " + num(ch.base + 1) + ";");

    if (t.unordered) {
      open("for (i32 i_ = 0; i_ < len_; ++i_) {");
      line("const i32* const q_ = buf_ + i_ * " + num(ch.arity) + ";");
      const std::string cond = match_cond();
      if (!cond.empty()) line("if (!(" + cond + ")) continue;");
      line("if (i_ > 0 && msg_eq(q_, q_ - " + num(ch.arity) + ", " +
           num(ch.arity) + ")) continue;");
      emit_copy_fields();
      emit_binds();
      if (!t.copy) {
        line("chan_save(c, " + num(ch.base) + ", " + num(region) + ");");
        line("chan_erase(c, " + num(ch.base) + ", " + num(ch.arity) +
             ", i_);");
      }
      line("u_set(c, " + num(lay_.pc_slot(pid)) + ", " + num(t.dst) + ");");
      const bool at =
          m_.proc_of(pid).atomic_at[static_cast<std::size_t>(t.dst)];
      line("c->atomic_pid = " + num(at ? pid : -1) + ";");
      line("any = 1u;");
      line("any_program = 1u;");
      line("if (!do_emit(c, " + num(pid) + ", " + num(ti) + ", 2, " +
           num(chan) + ", f_, " + num(ch.arity) +
           ", 0, -1, -1)) return any | 2u;");
      close();  // for
    } else if (t.random) {
      line("i32 idx_ = -1;");
      open("for (i32 i_ = 0; i_ < len_; ++i_) {");
      line("const i32* const q_ = buf_ + i_ * " + num(ch.arity) + ";");
      const std::string cond = match_cond();
      line(cond.empty() ? "{ idx_ = i_; break; }"
                        : "if (" + cond + ") { idx_ = i_; break; }");
      close();
      open("if (idx_ >= 0) {");
      line("const i32* const q_ = buf_ + idx_ * " + num(ch.arity) + ";");
      emit_copy_fields();
      emit_binds();
      if (!t.copy) {
        line("chan_save(c, " + num(ch.base) + ", " + num(region) + ");");
        line("chan_erase(c, " + num(ch.base) + ", " + num(ch.arity) +
             ", idx_);");
      }
      emit_step_tail(pid, ti, t, 2, chan, "f_", ch.arity, "0", true);
      close();
    } else {
      line("const i32* const q_ = buf_;");
      const std::string cond = match_cond();
      open(cond.empty() ? "{" : "if (" + cond + ") {");
      emit_copy_fields();
      emit_binds();
      if (!t.copy) {
        line("chan_save(c, " + num(ch.base) + ", " + num(region) + ");");
        line("chan_erase(c, " + num(ch.base) + ", " + num(ch.arity) +
             ", 0);");
      }
      emit_step_tail(pid, ti, t, 2, chan, "f_", ch.arity, "0", true);
      close();
    }

    close();  // if len
    close();  // block
  }

  /// Layout-specialized store-path helpers: the compressor's generic
  /// slot -> region indirection becomes a constant mask table, and each
  /// region's hash loop becomes a constant-length hash_span call the
  /// compiler unrolls. Skipped (null module entries, host falls back to the
  /// generic path) for layouts past the 64-region mask cap.
  void emit_encode() {
    const auto regions = lay_.regions();
    if (regions.empty() || regions.size() > 64 || lay_.size() <= 0) return;
    encode_supported_ = true;
    std::string tbl = "static const u64 kSlotMask[" + num(lay_.size()) +
                      "] = {";
    std::vector<std::uint64_t> mask(static_cast<std::size_t>(lay_.size()), 0);
    for (std::size_t k = 0; k < regions.size(); ++k)
      for (int i = 0; i < regions[k].second; ++i)
        mask[static_cast<std::size_t>(regions[k].first + i)] =
            std::uint64_t{1} << k;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (i) tbl += ", ";
      tbl += std::to_string(mask[i]) + "ull";
    }
    tbl += "};";
    line(tbl);
    open("static u64 dirty_mask(const i32* slots, i32 n, i32 stride) {");
    line("u64 acc = 0;");
    line("for (i32 i = 0; i < n; ++i) acc |= kSlotMask[slots[i * stride]];");
    line("return acc;");
    close();
    out_ += "\n";
    open("static u64 region_hash(const i32* mem, i32 r) {");
    open("switch (r) {");
    for (std::size_t k = 0; k < regions.size(); ++k)
      line("case " + num(static_cast<long long>(k)) +
           ": return hash_span(reinterpret_cast<const unsigned char*>(mem + " +
           num(regions[k].first) + "), " + num(regions[k].second * 4) + ");");
    line("default: return 0;");
    close();
    close();
    out_ += "\n";
  }

  void emit_entry() {
    const int n = m_.n_processes();
    open("static u32 expand_pid(pnp_aot_ctx* c, i32 pid) {");
    open("switch (pid) {");
    for (int pid = 0; pid < n; ++pid)
      line("case " + num(pid) + ": return expand_p" + num(pid) + "(c);");
    line("default: return 0;");
    close();
    close();
    out_ += "\n";
    // The host only passes start_pid >= 0 for non-atomic source states, so
    // the resumed sweep never needs the atomic pre-pass. On a sink stop,
    // stop_pid/pid_base already name the interrupted process.
    open("static u32 visit_all(pnp_aot_ctx* c) {");
    open("if (c->src_atomic >= 0) {");
    line("const u32 r = expand_pid(c, c->src_atomic);");
    line("if (r & 1u) return r;");
    close();
    line("u32 acc = 0;");
    open("switch (c->start_pid < 0 ? 0 : c->start_pid) {");
    for (int pid = 0; pid < n; ++pid) {
      open("case " + num(pid) + ": {");
      line("c->stop_pid = " + num(pid) + ";");
      line("c->pid_base = c->cand;");
      line("const u32 r = expand_p" + num(pid) + "(c);");
      line("acc |= r;");
      line("if (r & 2u) return acc;");
      close();
      if (pid + 1 < n) line("[[fallthrough]];");
    }
    close();
    line("c->stop_pid = -1;  // ran to completion: nothing to resume");
    line("return acc;");
    close();
    out_ += "\n";
    line("static u32 visit_of(pnp_aot_ctx* c, i32 pid) { return "
         "expand_pid(c, pid); }");
    out_ += "\n";
    line("static const char kDigest[] = \"" + digest_ + "\";");
    out_ += "\n";
  }

  static const char* op_name(OpKind op) {
    switch (op) {
      case OpKind::Noop: return "noop";
      case OpKind::Guard: return "guard";
      case OpKind::Else: return "else";
      case OpKind::Assign: return "assign";
      case OpKind::Send: return "send";
      case OpKind::Recv: return "recv";
      case OpKind::Assert: return "assert";
      case OpKind::Crash: return "crash";
    }
    return "?";
  }

  const kernel::Machine& m_;
  const model::SystemSpec& sys_;
  const kernel::Layout& lay_;
  std::string digest_;
  std::vector<ChanStatic> chans_;
  std::vector<CxxExpr> ex_;
  std::string out_;
  int indent_{0};
  bool encode_supported_{false};
};

}  // namespace

std::string emit_aot_source(const kernel::Machine& m, const std::string& digest,
                            std::string* why) {
  try {
    return Emitter(m, digest).run();
  } catch (const Unsupported& u) {
    if (why) *why = u.why;
    return {};
  }
}

}  // namespace pnp::codegen
