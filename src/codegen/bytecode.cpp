// Bytecode successor engine.
//
// Per machine, every (process instance, transition) pair is lowered once:
//   * spawn parameters and SelfPid are constant-folded away (fold.h), which
//     resolves channel-id expressions -- and therefore channel base slot,
//     capacity, arity and lossiness -- to constants for the typical model;
//   * guard / rhs / field / match expressions become flat stack programs
//     over ABSOLUTE state-vector slots (no spans, no per-eval bounds
//     checks, no recursion), dispatched with computed goto where available;
//   * Lhs targets, pc slots and crash-budget slots become absolute slots.
//
// The transition-level driver (BcGen) mirrors kernel/successor.cpp's
// SuccGen line for line -- same candidate order, same undo-log entries in
// the same order, same Step fields -- so the emitted successor stream is
// byte-identical to the interpreter's (tests/test_codegen.cpp holds the
// two against each other frame by frame).
#include "codegen/bytecode.h"

#include <algorithm>
#include <string>
#include <vector>

#include "codegen/fold.h"
#include "compile/compiler.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp::codegen {

namespace {

using compile::CompiledProc;
using compile::OpKind;
using compile::Transition;
using expr::Value;
using kernel::Layout;
using kernel::State;
using kernel::StepEvent;
using kernel::SuccScratch;
using kernel::SuccSink;
using model::LhsKind;
using model::RecvArgKind;

// ---------------------------------------------------------------------------
// Expression programs
// ---------------------------------------------------------------------------

enum class BOp : std::uint8_t {
  PushC,   // push a
  Load,    // push mem[a]
  Neg,     // top = -top
  Not,     // top = (top == 0)
  BoolOp,  // top = (top != 0)
  Add, Sub, Mul,
  Div, Mod,  // stack [.., divisor, dividend]; divisor checked nonzero
  Eq, Ne, Lt, Le, Gt, Ge,
  AndJz,   // pop v; if v == 0 { push 0; jump a }  (short-circuit &&)
  OrJnz,   // pop v; if v != 0 { push 1; jump a }  (short-circuit ||)
  JzPop,   // pop v; if v == 0 jump a              (Cond)
  Jmp,     // jump a
  LenC,    // push mem[a]                          (buffered chan len slot)
  FullC,   // push mem[a] >= b                     (b = capacity)
  EmptyC,  // push mem[a] == 0
  LenD, FullD, EmptyD,  // dynamic channel id on the stack
  Ret,     // return top
};

struct Instr {
  BOp op{BOp::Ret};
  std::int32_t a{0};
  std::int32_t b{0};
};

struct ExprProg {
  std::vector<Instr> code;
  bool is_const{false};
  Value const_val{0};

  bool empty() const { return !is_const && code.empty(); }
};

struct ChanInfo {
  int base{-1};  // -1 for rendezvous
  int capacity{0};
  int arity{1};
  bool lossy{false};
};

constexpr int kStackMax = 128;

Value vm_run(const Instr* ip, const Value* mem, const ChanInfo* chans) {
  Value stack[kStackMax];
  Value* sp = stack;
  const Instr* base = ip;

#if defined(__GNUC__) || defined(__clang__)
  static const void* kTable[] = {
      &&L_PushC, &&L_Load, &&L_Neg, &&L_Not, &&L_BoolOp,
      &&L_Add,   &&L_Sub,  &&L_Mul, &&L_Div, &&L_Mod,
      &&L_Eq,    &&L_Ne,   &&L_Lt,  &&L_Le,  &&L_Gt,  &&L_Ge,
      &&L_AndJz, &&L_OrJnz, &&L_JzPop, &&L_Jmp,
      &&L_LenC,  &&L_FullC, &&L_EmptyC,
      &&L_LenD,  &&L_FullD, &&L_EmptyD,
      &&L_Ret,
  };
#define PNP_DISPATCH goto* kTable[static_cast<unsigned>(ip->op)]
#define PNP_CASE(name) L_##name:
#define PNP_NEXT   \
  do {             \
    ++ip;          \
    PNP_DISPATCH;  \
  } while (0)
  PNP_DISPATCH;
#else
  for (;;) switch (ip->op) {
#define PNP_DISPATCH continue
#define PNP_CASE(name) case BOp::name:
#define PNP_NEXT   \
  do {             \
    ++ip;          \
    continue;      \
  } while (0)
#endif

  PNP_CASE(PushC) { *sp++ = ip->a; } PNP_NEXT;
  PNP_CASE(Load) { *sp++ = mem[ip->a]; } PNP_NEXT;
  PNP_CASE(Neg) { sp[-1] = -sp[-1]; } PNP_NEXT;
  PNP_CASE(Not) { sp[-1] = sp[-1] == 0 ? 1 : 0; } PNP_NEXT;
  PNP_CASE(BoolOp) { sp[-1] = sp[-1] != 0 ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Add) { --sp; sp[-1] = sp[-1] + sp[0]; } PNP_NEXT;
  PNP_CASE(Sub) { --sp; sp[-1] = sp[-1] - sp[0]; } PNP_NEXT;
  PNP_CASE(Mul) { --sp; sp[-1] = sp[-1] * sp[0]; } PNP_NEXT;
  PNP_CASE(Div) {
    // stack holds [divisor, dividend] (divisor evaluated first, like the
    // tree interpreter)
    const Value a = *--sp;
    const Value d = sp[-1];
    PNP_CHECK(d != 0, "division by zero in model expression");
    sp[-1] = a / d;
  } PNP_NEXT;
  PNP_CASE(Mod) {
    const Value a = *--sp;
    const Value d = sp[-1];
    PNP_CHECK(d != 0, "modulo by zero in model expression");
    sp[-1] = a % d;
  } PNP_NEXT;
  PNP_CASE(Eq) { --sp; sp[-1] = sp[-1] == sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Ne) { --sp; sp[-1] = sp[-1] != sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Lt) { --sp; sp[-1] = sp[-1] < sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Le) { --sp; sp[-1] = sp[-1] <= sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Gt) { --sp; sp[-1] = sp[-1] > sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(Ge) { --sp; sp[-1] = sp[-1] >= sp[0] ? 1 : 0; } PNP_NEXT;
  PNP_CASE(AndJz) {
    const Value v = *--sp;
    if (v == 0) {
      *sp++ = 0;
      ip = base + ip->a;
      PNP_DISPATCH;
    }
  } PNP_NEXT;
  PNP_CASE(OrJnz) {
    const Value v = *--sp;
    if (v != 0) {
      *sp++ = 1;
      ip = base + ip->a;
      PNP_DISPATCH;
    }
  } PNP_NEXT;
  PNP_CASE(JzPop) {
    if (*--sp == 0) {
      ip = base + ip->a;
      PNP_DISPATCH;
    }
  } PNP_NEXT;
  PNP_CASE(Jmp) {
    ip = base + ip->a;
    PNP_DISPATCH;
  }
  PNP_CASE(LenC) { *sp++ = mem[ip->a]; } PNP_NEXT;
  PNP_CASE(FullC) { *sp++ = mem[ip->a] >= ip->b ? 1 : 0; } PNP_NEXT;
  PNP_CASE(EmptyC) { *sp++ = mem[ip->a] == 0 ? 1 : 0; } PNP_NEXT;
  PNP_CASE(LenD) {
    const ChanInfo& ch = chans[sp[-1]];
    sp[-1] = ch.base < 0 ? 0 : mem[ch.base];
  } PNP_NEXT;
  PNP_CASE(FullD) {
    const ChanInfo& ch = chans[sp[-1]];
    sp[-1] = (ch.base < 0 ? 0 : mem[ch.base]) >= ch.capacity ? 1 : 0;
  } PNP_NEXT;
  PNP_CASE(EmptyD) {
    const ChanInfo& ch = chans[sp[-1]];
    sp[-1] = (ch.base < 0 ? 0 : mem[ch.base]) == 0 ? 1 : 0;
  } PNP_NEXT;
  PNP_CASE(Ret) { return sp[-1]; }

#if !defined(__GNUC__) && !defined(__clang__)
  }
#endif
#undef PNP_CASE
#undef PNP_NEXT
#ifdef PNP_DISPATCH
#undef PNP_DISPATCH
#endif
}

/// Lowers one pid's expressions: absolute slots, folded params/SelfPid.
class ExprCompiler {
 public:
  ExprCompiler(const expr::Pool& pool, std::span<const Value> params,
               Value self_pid, int locals_base,
               const std::vector<ChanInfo>& chans)
      : pool_(pool),
        params_(params),
        self_(self_pid),
        locals_base_(locals_base),
        chans_(chans) {}

  ExprProg compile(expr::Ref r) {
    ExprProg p;
    if (r == expr::kNoExpr) return p;
    if (auto c = fold_const(pool_, r, params_, self_)) {
      p.is_const = true;
      p.const_val = *c;
      return p;
    }
    depth_ = 0;
    max_depth_ = 0;
    emit(r, p.code);
    p.code.push_back({BOp::Ret, 0, 0});
    PNP_CHECK(max_depth_ <= kStackMax,
              "model expression nests deeper than the bytecode value stack");
    return p;
  }

  /// Folded channel id, or nullopt when it depends on mutable state.
  std::optional<Value> fold(expr::Ref r) const {
    return fold_const(pool_, r, params_, self_);
  }

 private:
  void push_depth(int n = 1) {
    depth_ += n;
    max_depth_ = std::max(max_depth_, depth_);
  }

  void emit(expr::Ref r, std::vector<Instr>& out) {
    if (auto c = fold_const(pool_, r, params_, self_)) {
      out.push_back({BOp::PushC, *c, 0});
      push_depth();
      return;
    }
    const expr::Node& n = pool_.at(r);
    using expr::Op;
    switch (n.op) {
      case Op::Const:
      case Op::SelfPid:
        return;  // unreachable: always folds
      case Op::Global:
        out.push_back({BOp::Load, n.imm, 0});
        push_depth();
        return;
      case Op::Local: {
        // slot < params.size() always folded above; what's left is mutable
        out.push_back(
            {BOp::Load,
             locals_base_ + n.imm - static_cast<std::int32_t>(params_.size()),
             0});
        push_depth();
        return;
      }
      case Op::Neg:
        emit(n.a, out);
        out.push_back({BOp::Neg, 0, 0});
        return;
      case Op::Not:
        emit(n.a, out);
        out.push_back({BOp::Not, 0, 0});
        return;
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::Eq: case Op::Ne: case Op::Lt:
      case Op::Le: case Op::Gt: case Op::Ge: {
        emit(n.a, out);
        emit(n.b, out);
        BOp op = BOp::Add;
        switch (n.op) {
          case Op::Add: op = BOp::Add; break;
          case Op::Sub: op = BOp::Sub; break;
          case Op::Mul: op = BOp::Mul; break;
          case Op::Eq: op = BOp::Eq; break;
          case Op::Ne: op = BOp::Ne; break;
          case Op::Lt: op = BOp::Lt; break;
          case Op::Le: op = BOp::Le; break;
          case Op::Gt: op = BOp::Gt; break;
          default: op = BOp::Ge; break;
        }
        out.push_back({op, 0, 0});
        --depth_;
        return;
      }
      case Op::Div:
      case Op::Mod:
        // divisor first, then dividend: the tree interpreter evaluates and
        // checks the divisor before touching the dividend
        emit(n.b, out);
        emit(n.a, out);
        out.push_back({n.op == Op::Div ? BOp::Div : BOp::Mod, 0, 0});
        --depth_;
        return;
      case Op::And: {
        emit(n.a, out);
        const std::size_t jz = out.size();
        out.push_back({BOp::AndJz, 0, 0});
        --depth_;
        emit(n.b, out);
        out.push_back({BOp::BoolOp, 0, 0});
        out[jz].a = static_cast<std::int32_t>(out.size());
        return;
      }
      case Op::Or: {
        emit(n.a, out);
        const std::size_t jnz = out.size();
        out.push_back({BOp::OrJnz, 0, 0});
        --depth_;
        emit(n.b, out);
        out.push_back({BOp::BoolOp, 0, 0});
        out[jnz].a = static_cast<std::int32_t>(out.size());
        return;
      }
      case Op::Cond: {
        emit(n.a, out);
        const std::size_t jz = out.size();
        out.push_back({BOp::JzPop, 0, 0});
        --depth_;
        emit(n.b, out);
        const std::size_t jmp = out.size();
        out.push_back({BOp::Jmp, 0, 0});
        out[jz].a = static_cast<std::int32_t>(out.size());
        --depth_;  // only one branch's value is live at runtime
        emit(n.c, out);
        out[jmp].a = static_cast<std::int32_t>(out.size());
        return;
      }
      case Op::ChanLen:
      case Op::ChanFull:
      case Op::ChanEmpty: {
        if (auto c = fold(n.a)) {
          PNP_CHECK(*c >= 0 && static_cast<std::size_t>(*c) < chans_.size(),
                    "channel query on invalid channel id " +
                        std::to_string(*c));
          const ChanInfo& ch = chans_[static_cast<std::size_t>(*c)];
          if (ch.base < 0) {
            // rendezvous: len 0, full (0 >= 0), empty -- all constants
            out.push_back({BOp::PushC, n.op == Op::ChanLen ? 0 : 1, 0});
          } else if (n.op == Op::ChanLen) {
            out.push_back({BOp::LenC, ch.base, 0});
          } else if (n.op == Op::ChanFull) {
            out.push_back({BOp::FullC, ch.base, ch.capacity});
          } else {
            out.push_back({BOp::EmptyC, ch.base, 0});
          }
          push_depth();
          return;
        }
        emit(n.a, out);
        out.push_back({n.op == Op::ChanLen
                           ? BOp::LenD
                           : (n.op == Op::ChanFull ? BOp::FullD : BOp::EmptyD),
                       0, 0});
        return;
      }
    }
  }

  const expr::Pool& pool_;
  std::span<const Value> params_;
  Value self_;
  int locals_base_;
  const std::vector<ChanInfo>& chans_;
  int depth_{0};
  int max_depth_{0};
};

// ---------------------------------------------------------------------------
// Lowered transition tables
// ---------------------------------------------------------------------------

struct BcRecvArg {
  RecvArgKind kind{RecvArgKind::Wildcard};
  int abs_slot{-1};  // Bind target
  ExprProg match;
};

struct BcTrans {
  OpKind op{OpKind::Noop};
  int dst{0};
  bool dst_atomic{false};
  ExprProg expr;       // Guard / Assert / Assign rhs
  int lhs_abs{-1};     // Assign target
  int chan_const{-1};  // resolved channel id, or -1 when dynamic
  ExprProg chan_prog;
  std::vector<ExprProg> fields;
  std::vector<BcRecvArg> args;
  bool sorted{false};
  bool random{false};
  bool copy{false};
  bool unordered{false};
  int crash_budget_abs{-1};
  int crash_budget_slot{-1};  // frame slot index (params included)
};

struct BcPid {
  const CompiledProc* cp{nullptr};
  int pc_slot{0};
  int frame_base{0};  // absolute slot of mutable local 0
  int n_params{0};
  std::vector<BcTrans> trans;  // index-aligned with cp->trans
};

struct BcTables {
  const model::SystemSpec* spec{nullptr};
  const Layout* lay{nullptr};
  std::vector<BcPid> pids;
  std::vector<ChanInfo> chans;
};

int resolve_lhs(const model::Lhs& lhs, const Layout& lay, int pid) {
  if (lhs.kind == LhsKind::Global) return lhs.slot;
  return lay.frame_slot(pid, lhs.slot);  // checks the immutable-param rule
}

BcTables build_tables(const kernel::Machine& m) {
  const model::SystemSpec& sys = m.spec();
  const Layout& lay = m.layout();
  BcTables tb;
  tb.spec = &sys;
  tb.lay = &lay;

  tb.chans.reserve(sys.channels.size());
  for (std::size_t c = 0; c < sys.channels.size(); ++c) {
    const int ci = static_cast<int>(c);
    ChanInfo info;
    info.capacity = lay.chan_capacity(ci);
    info.arity = lay.chan_arity(ci);
    info.lossy = lay.chan_lossy(ci);
    info.base = lay.chan_region(ci).first;
    tb.chans.push_back(info);
  }

  tb.pids.reserve(sys.processes.size());
  for (int pid = 0; pid < m.n_processes(); ++pid) {
    const CompiledProc& cp = m.proc_of(pid);
    const std::vector<Value>& args = sys.processes[static_cast<std::size_t>(pid)].args;
    BcPid P;
    P.cp = &cp;
    P.pc_slot = lay.pc_slot(pid);
    P.frame_base = P.pc_slot + 1;
    P.n_params = cp.n_params;
    ExprCompiler ec(sys.exprs, {args.data(), args.size()},
                    static_cast<Value>(pid), P.frame_base, tb.chans);

    P.trans.reserve(cp.trans.size());
    for (const Transition& t : cp.trans) {
      BcTrans bt;
      bt.op = t.op;
      bt.dst = t.dst;
      bt.dst_atomic = cp.atomic_at[static_cast<std::size_t>(t.dst)];
      switch (t.op) {
        case OpKind::Noop:
        case OpKind::Else:
          break;
        case OpKind::Guard:
          bt.expr = ec.compile(t.expr);
          break;
        case OpKind::Assign:
          bt.expr = ec.compile(t.expr);
          bt.lhs_abs = resolve_lhs(t.lhs, lay, pid);
          break;
        case OpKind::Assert:
          bt.expr = ec.compile(t.expr);
          break;
        case OpKind::Crash:
          bt.crash_budget_slot = t.lhs.slot;
          bt.crash_budget_abs = lay.frame_slot(pid, t.lhs.slot);
          break;
        case OpKind::Send:
        case OpKind::Recv: {
          if (auto c = ec.fold(t.chan)) {
            PNP_CHECK(*c >= 0 &&
                          *c < static_cast<Value>(sys.channels.size()),
                      "send/recv on invalid channel id " + std::to_string(*c));
            bt.chan_const = static_cast<int>(*c);
          } else {
            bt.chan_prog = ec.compile(t.chan);
          }
          if (t.op == OpKind::Send) {
            bt.sorted = t.sorted;
            bt.fields.reserve(t.fields.size());
            for (expr::Ref f : t.fields) bt.fields.push_back(ec.compile(f));
          } else {
            bt.random = t.random;
            bt.copy = t.copy;
            bt.unordered = t.unordered;
            bt.args.reserve(t.args.size());
            for (const model::RecvArg& a : t.args) {
              BcRecvArg ba;
              ba.kind = a.kind;
              if (a.kind == RecvArgKind::Bind)
                ba.abs_slot = resolve_lhs(a.lhs, lay, pid);
              else if (a.kind == RecvArgKind::Match)
                ba.match = ec.compile(a.match);
              bt.args.push_back(std::move(ba));
            }
          }
          break;
        }
      }
      P.trans.push_back(std::move(bt));
    }
    tb.pids.push_back(std::move(P));
  }
  return tb;
}

// ---------------------------------------------------------------------------
// The driver: SuccGen over lowered tables
// ---------------------------------------------------------------------------

class BcGen {
 public:
  BcGen(const BcTables& tb, const State& s, SuccScratch& scratch,
        SuccSink& sink, std::uint32_t skip = 0, std::uint32_t cand0 = 0)
      : tb_(tb), s_(s), scratch_(scratch), sink_(sink), skip_(skip),
        cand_(cand0) {
    scratch_.state.mem.assign(s.mem.begin(), s.mem.end());
    scratch_.state.atomic_pid = s.atomic_pid;
    scratch_.undo.clear();
  }

  bool expand(int pid) {
    const BcPid& P = tb_.pids[static_cast<std::size_t>(pid)];
    const int pc = s_.mem[static_cast<std::size_t>(P.pc_slot)];
    const std::vector<int>& cands = P.cp->out[static_cast<std::size_t>(pc)];
    bool any = false;
    bool any_program = false;
    int else_ti = -1;
    for (int ti : cands) {
      if (stopped_) return any;
      const BcTrans& t = P.trans[static_cast<std::size_t>(ti)];
      if (t.op == OpKind::Else) {
        else_ti = ti;
        continue;
      }
      if (try_exec(pid, P, ti, t)) {
        any = true;
        if (t.op != OpKind::Crash) any_program = true;
      }
    }
    if (!stopped_ && !any_program && else_ti >= 0) {
      finish_mut(pid, P, P.trans[static_cast<std::size_t>(else_ti)]);
      emit(pid, else_ti);
      any = true;
    }
    return any;
  }

  bool stopped() const { return stopped_; }
  std::uint32_t remaining_skip() const { return skip_; }

  /// Marks the start of a process's sweep; pid_base() is then the absolute
  /// candidate index at which that sweep began (the resume token payload).
  void begin_pid() { pid_base_ = cand_; }
  std::uint32_t pid_base() const { return pid_base_; }

 private:
  Value eval(const ExprProg& p) const {
    if (p.is_const) return p.const_val;
    return vm_run(p.code.data(), s_.mem.data(), tb_.chans.data());
  }

  State& ns() { return scratch_.state; }

  void save(int idx) {
    scratch_.undo.emplace_back(idx, ns().mem[static_cast<std::size_t>(idx)]);
  }
  void mut_slot(int idx, Value v) {
    save(idx);
    ns().mem[static_cast<std::size_t>(idx)] = v;
  }
  void save_chan(int c) {
    const auto [begin, count] = tb_.lay->chan_region(c);
    for (int i = 0; i < count; ++i) save(begin + i);
  }

  void finish_mut(int pid, const BcPid& P, const BcTrans& t) {
    mut_slot(P.pc_slot, t.dst);
    ns().atomic_pid = t.dst_atomic ? pid : -1;
  }

  void revert() {
    for (std::size_t i = scratch_.undo.size(); i-- > 0;)
      ns().mem[static_cast<std::size_t>(scratch_.undo[i].first)] =
          scratch_.undo[i].second;
    scratch_.undo.clear();
    ns().atomic_pid = s_.atomic_pid;
#ifndef NDEBUG
    PNP_CHECK(ns().mem == s_.mem, "bytecode successor scratch revert mismatch");
#endif
  }

  bool emit(int pid, int ti, bool assert_failed = false,
            StepEvent::Kind kind = StepEvent::Kind::Local, int chan = -1,
            const Value* fields = nullptr, int arity = 0, int partner_pid = -1,
            int partner_trans = -1) {
    ++cand_;  // every candidate counts, surfaced or suppressed
    if (skip_ > 0) {  // suppressed candidate: keep indices, drop the surface
      --skip_;
      revert();
      return true;
    }
    kernel::Step& st = scratch_.step;
    st.pid = pid;
    st.trans = ti;
    st.partner_pid = partner_pid;
    st.partner_trans = partner_trans;
    st.assert_failed = assert_failed;
    st.event.kind = kind;
    st.event.chan = chan;
    if (fields)
      st.event.msg.assign(fields, fields + arity);
    else
      st.event.msg.clear();
    const bool keep_going = sink_.on_successor(ns(), st);
    revert();
    if (!keep_going) stopped_ = true;
    return keep_going;
  }

  bool match_pattern(const std::vector<BcRecvArg>& args,
                     const Value* fields) const {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].kind == RecvArgKind::Match &&
          eval(args[i].match) != fields[i])
        return false;
    }
    return true;
  }

  void bind_pattern(const std::vector<BcRecvArg>& args, const Value* fields) {
    for (std::size_t i = 0; i < args.size(); ++i)
      if (args[i].kind == RecvArgKind::Bind)
        mut_slot(args[i].abs_slot, fields[i]);
  }

  int resolve_chan(const BcTrans& t) const {
    if (t.chan_const >= 0) return t.chan_const;
    const Value id = eval(t.chan_prog);
    PNP_CHECK(id >= 0 && id < static_cast<Value>(tb_.chans.size()),
              "send/recv on invalid channel id " + std::to_string(id));
    return static_cast<int>(id);
  }

  bool try_exec(int pid, const BcPid& P, int ti, const BcTrans& t) {
    switch (t.op) {
      case OpKind::Noop:
        finish_mut(pid, P, t);
        emit(pid, ti);
        return true;
      case OpKind::Guard:
        if (eval(t.expr) == 0) return false;
        finish_mut(pid, P, t);
        emit(pid, ti);
        return true;
      case OpKind::Assign: {
        const Value v = eval(t.expr);
        mut_slot(t.lhs_abs, v);
        finish_mut(pid, P, t);
        emit(pid, ti);
        return true;
      }
      case OpKind::Assert: {
        const bool ok = eval(t.expr) != 0;
        finish_mut(pid, P, t);
        emit(pid, ti, /*assert_failed=*/!ok);
        return true;
      }
      case OpKind::Send:
        return exec_send(pid, P, ti, t);
      case OpKind::Recv:
        return exec_recv(pid, P, ti, t);
      case OpKind::Crash:
        return exec_crash(pid, P, ti, t);
      case OpKind::Else:
        return false;
    }
    return false;
  }

  bool exec_crash(int pid, const BcPid& P, int ti, const BcTrans& t) {
    const Value budget = s_.mem[static_cast<std::size_t>(t.crash_budget_abs)];
    if (budget <= 0) return false;
    const std::vector<Value>& init = P.cp->frame_init;
    for (std::size_t i = static_cast<std::size_t>(P.n_params); i < init.size();
         ++i)
      mut_slot(P.frame_base + static_cast<int>(i) - P.n_params, init[i]);
    mut_slot(t.crash_budget_abs, budget - 1);
    finish_mut(pid, P, t);
    emit(pid, ti);
    return true;
  }

  bool exec_send(int pid, const BcPid& P, int ti, const BcTrans& t) {
    const int chan = resolve_chan(t);
    const ChanInfo& ch = tb_.chans[static_cast<std::size_t>(chan)];
    const int arity = ch.arity;
    PNP_CHECK(static_cast<int>(t.fields.size()) == arity,
              "send arity mismatch on channel " +
                  tb_.spec->channels[static_cast<std::size_t>(chan)].name);
    Value fields[16];
    PNP_CHECK(arity <= 16, "channel arity > 16 unsupported");
    for (int i = 0; i < arity; ++i)
      fields[i] = eval(t.fields[static_cast<std::size_t>(i)]);

    if (ch.capacity == 0) return exec_rendezvous(pid, P, ti, t, chan, fields, arity);

    const int len = s_.mem[static_cast<std::size_t>(ch.base)];
    const bool full = len >= ch.capacity;
    if (full && !ch.lossy) return false;

    if (!full) {
      save_chan(chan);
      if (t.sorted)
        tb_.lay->chan_push_sorted(ns(), chan, fields);
      else
        tb_.lay->chan_push(ns(), chan, fields);
    }
    // else: lossy channel drops the message silently.
    finish_mut(pid, P, t);
    emit(pid, ti, false, StepEvent::Kind::Send, chan, fields, arity);
    return true;
  }

  bool exec_rendezvous(int pid, const BcPid& P, int ti, const BcTrans& t,
                       int chan, const Value* fields, int arity) {
    bool any = false;
    const int n = static_cast<int>(tb_.pids.size());
    for (int pid2 = 0; pid2 < n; ++pid2) {
      if (pid2 == pid) continue;
      const BcPid& P2 = tb_.pids[static_cast<std::size_t>(pid2)];
      const int pc2 = s_.mem[static_cast<std::size_t>(P2.pc_slot)];
      for (int ti2 : P2.cp->out[static_cast<std::size_t>(pc2)]) {
        const BcTrans& t2 = P2.trans[static_cast<std::size_t>(ti2)];
        if (t2.op != OpKind::Recv) continue;
        if (resolve_chan(t2) != chan) continue;
        PNP_CHECK(static_cast<int>(t2.args.size()) == arity,
                  "rendezvous pattern arity mismatch");
        if (!match_pattern(t2.args, fields)) continue;

        bind_pattern(t2.args, fields);
        mut_slot(P.pc_slot, t.dst);
        mut_slot(P2.pc_slot, t2.dst);
        ns().atomic_pid =
            t.dst_atomic ? pid : (t2.dst_atomic ? pid2 : -1);
        any = true;
        if (!emit(pid, ti, false, StepEvent::Kind::Handshake, chan, fields,
                  arity, pid2, ti2))
          return any;
      }
    }
    return any;
  }

  bool exec_recv(int pid, const BcPid& P, int ti, const BcTrans& t) {
    const int chan = resolve_chan(t);
    const ChanInfo& ch = tb_.chans[static_cast<std::size_t>(chan)];
    if (ch.capacity == 0) return false;  // rendezvous: passive side
    const int arity = ch.arity;
    PNP_CHECK(static_cast<int>(t.args.size()) == arity,
              "recv arity mismatch on channel " +
                  tb_.spec->channels[static_cast<std::size_t>(chan)].name);

    const int len = s_.mem[static_cast<std::size_t>(ch.base)];
    if (len == 0) return false;

    if (t.unordered)
      return exec_recv_unordered(pid, P, ti, t, ch, chan, arity, len);

    const Value* buf = s_.mem.data() + ch.base + 1;
    int idx = -1;
    if (t.random) {
      for (int i = 0; i < len; ++i) {
        if (match_pattern(t.args, buf + static_cast<std::size_t>(i) * arity)) {
          idx = i;
          break;
        }
      }
    } else if (match_pattern(t.args, buf)) {
      idx = 0;
    }
    if (idx < 0) return false;

    Value fields[16];
    std::copy_n(buf + static_cast<std::size_t>(idx) * arity, arity, fields);
    bind_pattern(t.args, fields);
    if (!t.copy) {
      save_chan(chan);
      tb_.lay->chan_erase(ns(), chan, idx);
    }
    finish_mut(pid, P, t);
    emit(pid, ti, false, StepEvent::Kind::Recv, chan, fields, arity);
    return true;
  }

  bool exec_recv_unordered(int pid, const BcPid& P, int ti, const BcTrans& t,
                           const ChanInfo& ch, int chan, int arity, int len) {
    bool any = false;
    const Value* buf = s_.mem.data() + ch.base + 1;
    for (int i = 0; i < len; ++i) {
      const Value* msg = buf + static_cast<std::size_t>(i) * arity;
      if (!match_pattern(t.args, msg)) continue;
      if (i > 0 && std::equal(msg, msg + arity, msg - arity)) continue;
      Value fields[16];
      std::copy_n(msg, arity, fields);
      bind_pattern(t.args, fields);
      if (!t.copy) {
        save_chan(chan);
        tb_.lay->chan_erase(ns(), chan, i);
      }
      finish_mut(pid, P, t);
      any = true;
      if (!emit(pid, ti, false, StepEvent::Kind::Recv, chan, fields, arity))
        return any;
    }
    return any;
  }

  const BcTables& tb_;
  const State& s_;
  SuccScratch& scratch_;
  SuccSink& sink_;
  std::uint32_t skip_ = 0;
  std::uint32_t cand_ = 0;      // candidates enumerated so far (absolute)
  std::uint32_t pid_base_ = 0;  // cand_ when the current pid's sweep began
  bool stopped_ = false;
};

class BytecodeEngine final : public Engine {
 public:
  explicit BytecodeEngine(const kernel::Machine& m)
      : Engine(m), tb_(build_tables(m)) {}

  EngineKind kind() const override { return EngineKind::Bytecode; }

  void visit_successors(const State& s, SuccScratch& scratch, SuccSink& sink,
                        std::uint32_t skip,
                        std::uint64_t* resume) const override {
    const int n = static_cast<int>(tb_.pids.size());
    int start = 0;
    std::uint32_t base = 0;
    if (resume != nullptr) {
      // Honor the previous visit's stop position: processes before it
      // contributed exactly `base` candidates, all covered by `skip`, so
      // their guard sweeps can be skipped outright. Atomic states keep the
      // plain path (their sweep is a single process anyway).
      const int tp = resume_pid(*resume);
      const std::uint32_t tb = resume_base(*resume);
      if (tp >= 0 && tp < n && tb <= skip && s.atomic_pid < 0) {
        start = tp;
        base = tb;
      }
      *resume = 0;
    }
    if (s.atomic_pid >= 0) {
      BcGen gen(tb_, s, scratch, sink, skip);
      if (gen.expand(s.atomic_pid)) return;
      skip = gen.remaining_skip();
    }
    BcGen gen(tb_, s, scratch, sink, skip - base, base);
    for (int pid = start; pid < n; ++pid) {
      gen.begin_pid();
      gen.expand(pid);
      if (gen.stopped()) {
        if (resume != nullptr) *resume = encode_resume(pid, gen.pid_base());
        return;
      }
    }
  }

  bool visit_successors_of(const State& s, int pid, SuccScratch& scratch,
                           SuccSink& sink, std::uint32_t skip) const override {
    BcGen gen(tb_, s, scratch, sink, skip);
    return gen.expand(pid);
  }

  bool encode_support() const override { return encode_.supported; }

  std::uint64_t dirty_regions(const std::pair<int, Value>* undo,
                              std::size_t n) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < n; ++i)
      mask |= encode_.slot_mask[static_cast<std::size_t>(undo[i].first)];
    return mask;
  }

  std::uint64_t region_hash(const Value* mem, int r) const override {
    const auto& [begin, width] = encode_.regions[static_cast<std::size_t>(r)];
    return pnp::fast_hash64(
        {reinterpret_cast<const std::uint8_t*>(mem + begin),
         static_cast<std::size_t>(width) * sizeof(Value)});
  }

 private:
  // Store-path tables: a flat slot -> region bitmask (replacing the generic
  // compressor's slot -> region-index indirection plus dirty-byte array)
  // and the region spans for hashing. Built once per engine.
  struct EncodeTables {
    bool supported = false;
    std::vector<std::uint64_t> slot_mask;       // per state slot
    std::vector<std::pair<int, int>> regions;   // (begin, width)
  };

  static EncodeTables build_encode_tables(const kernel::Machine& m) {
    EncodeTables et;
    et.regions = m.layout().regions();
    if (et.regions.size() > 64) return et;  // mask path capped at 64 regions
    et.slot_mask.assign(static_cast<std::size_t>(m.layout().size()), 0);
    for (std::size_t k = 0; k < et.regions.size(); ++k)
      for (int i = 0; i < et.regions[k].second; ++i)
        et.slot_mask[static_cast<std::size_t>(et.regions[k].first + i)] =
            std::uint64_t{1} << k;
    et.supported = true;
    return et;
  }

  BcTables tb_;
  EncodeTables encode_ = build_encode_tables(*m_);
};

}  // namespace

std::unique_ptr<Engine> make_bytecode_engine(const kernel::Machine& m) {
  return std::make_unique<BytecodeEngine>(m);
}

}  // namespace pnp::codegen
