// The always-available codegen backend: per-pid transition tables with
// expressions compiled to flat stack-bytecode programs run by a threaded
// (computed-goto) interpreter. No toolchain, no I/O -- construction cannot
// fail, which is what makes it the floor of the aot -> bytecode -> interp
// fallback ladder.
#pragma once

#include <memory>

#include "codegen/engine.h"

namespace pnp::codegen {

/// Compiles `m` (which must outlive the engine) to bytecode tables.
std::unique_ptr<Engine> make_bytecode_engine(const kernel::Machine& m);

}  // namespace pnp::codegen
