#include "codegen/engine.h"

#include <cstdio>
#include <string>

#include "codegen/aot.h"
#include "codegen/bytecode.h"
#include "obs/obs.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp::codegen {

const char* engine_kind_name(EngineKind k) {
  switch (k) {
    case EngineKind::Interp: return "interp";
    case EngineKind::Bytecode: return "bytecode";
    case EngineKind::Aot: return "aot";
  }
  return "?";
}

bool parse_engine_kind(std::string_view text, EngineKind* out) {
  if (text == "interp") {
    *out = EngineKind::Interp;
  } else if (text == "bytecode") {
    *out = EngineKind::Bytecode;
  } else if (text == "aot") {
    *out = EngineKind::Aot;
  } else {
    return false;
  }
  return true;
}

void Engine::successors(const kernel::State& s,
                        std::vector<kernel::Succ>& out) const {
  struct Collect final : kernel::SuccSink {
    explicit Collect(std::vector<kernel::Succ>& o) : out(o) {}
    bool on_successor(const kernel::State& ns,
                      const kernel::Step& step) override {
      out.emplace_back(ns, step);
      return true;
    }
    std::vector<kernel::Succ>& out;
  } sink(out);
  kernel::SuccScratch scratch;
  visit_successors(s, scratch, sink);
}

namespace {

void dump_expr(const expr::Pool& pool, expr::Ref r, std::string& out) {
  if (r == expr::kNoExpr) {
    out += "~";
    return;
  }
  const expr::Node& n = pool.at(r);
  out += "(";
  out += std::to_string(static_cast<int>(n.op));
  out += " ";
  out += std::to_string(n.imm);
  out += " ";
  dump_expr(pool, n.a, out);
  dump_expr(pool, n.b, out);
  dump_expr(pool, n.c, out);
  out += ")";
}

void dump_lhs(const model::Lhs& lhs, std::string& out) {
  out += lhs.kind == model::LhsKind::Global ? "g" : "l";
  out += std::to_string(lhs.slot);
}

}  // namespace

std::string machine_digest(const kernel::Machine& m) {
  // Canonical structural dump of everything that determines successor
  // semantics. Names are deliberately excluded (renaming a channel must not
  // invalidate cached artifacts); expression trees are serialized inline so
  // intern-pool numbering cannot leak into the digest.
  const model::SystemSpec& sys = m.spec();
  const expr::Pool& pool = sys.exprs;
  std::string d = "pnp-machine-v1\n";
  d += "layout " + std::to_string(m.layout().size()) + "\n";
  d += "globals";
  for (const auto& g : sys.globals) d += " " + std::to_string(g.init);
  d += "\n";
  for (std::size_t c = 0; c < sys.channels.size(); ++c) {
    const model::ChannelDecl& ch = sys.channels[c];
    d += "chan " + std::to_string(ch.capacity) + " " +
         std::to_string(ch.arity) + (ch.lossy ? " lossy" : "") + "\n";
  }
  for (int pid = 0; pid < m.n_processes(); ++pid) {
    const compile::CompiledProc& cp = m.proc_of(pid);
    const model::ProcessInst& inst =
        sys.processes[static_cast<std::size_t>(pid)];
    d += "proc entry=" + std::to_string(cp.entry) +
         " pcs=" + std::to_string(cp.n_pcs) + " args";
    for (expr::Value a : inst.args) d += " " + std::to_string(a);
    d += " init";
    for (expr::Value v : cp.frame_init) d += " " + std::to_string(v);
    d += " flags ";
    for (int pc = 0; pc < cp.n_pcs; ++pc) {
      d += cp.atomic_at[static_cast<std::size_t>(pc)] ? 'a' : '.';
      d += cp.valid_end[static_cast<std::size_t>(pc)] ? 'e' : '.';
    }
    d += "\n";
    for (int pc = 0; pc < cp.n_pcs; ++pc) {
      d += " out";
      for (int ti : cp.out[static_cast<std::size_t>(pc)])
        d += " " + std::to_string(ti);
      d += "\n";
    }
    for (const compile::Transition& t : cp.trans) {
      d += " t " + std::to_string(t.src) + ">" + std::to_string(t.dst) + " " +
           std::to_string(static_cast<int>(t.op)) + " ";
      dump_expr(pool, t.expr, d);
      dump_lhs(t.lhs, d);
      dump_expr(pool, t.chan, d);
      for (expr::Ref f : t.fields) dump_expr(pool, f, d);
      if (t.sorted) d += " sorted";
      if (t.random) d += " random";
      if (t.copy) d += " copy";
      if (t.unordered) d += " unordered";
      for (const model::RecvArg& a : t.args) {
        switch (a.kind) {
          case model::RecvArgKind::Bind:
            d += " b";
            dump_lhs(a.lhs, d);
            break;
          case model::RecvArgKind::Match:
            d += " m";
            dump_expr(pool, a.match, d);
            break;
          case model::RecvArgKind::Wildcard:
            d += " w";
            break;
        }
      }
      d += "\n";
    }
  }
  return std::string("m") +
         [&] {
           char buf[17];
           std::snprintf(buf, sizeof buf, "%016llx",
                         static_cast<unsigned long long>(stable_hash64(d)));
           return std::string(buf);
         }();
}

std::unique_ptr<Engine> make_engine(const kernel::Machine& m,
                                    const EngineOptions& opt,
                                    std::string* note) {
  switch (opt.kind) {
    case EngineKind::Interp:
      return nullptr;  // callers treat null as "call the machine directly"
    case EngineKind::Bytecode:
      return make_bytecode_engine(m);
    case EngineKind::Aot: {
      std::string why;
      if (auto e = make_aot_engine(m, opt, &why)) return e;
      if (opt.strict)
        raise_model_error("aot engine unavailable: " + why);
      if (opt.obs)
        opt.obs->recorder().add(obs::Counter::CodegenFallbacks, 1);
      if (note) *note = "aot unavailable (" + why + "); using bytecode";
      return make_bytecode_engine(m);
    }
  }
  return nullptr;
}

}  // namespace pnp::codegen
