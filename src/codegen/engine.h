// Successor-generation engines: pluggable replacements for the kernel's
// interpreted Machine::visit_successors.
//
// The kernel interprets the compiled CFG on every transition. An Engine is
// an ahead-of-time specialization of that interpreter for ONE machine
// (SPIN's pan.c idea): guard and effect evaluation, channel operations, and
// the undo-logged scratch mutation are compiled down before the search
// starts, and the explorers call the engine instead of the machine.
//
// Equivalence contract (what every engine must guarantee, and what
// tests/test_codegen.cpp checks differentially against the interpreter):
//   * successors are byte-identical States emitted in the identical order;
//   * Step fields (pid/trans/partner/event/assert_failed) match;
//   * scratch.undo holds (slot, previous value) pairs covering every slot
//     the step wrote, valid DURING the sink callback (the explorer's
//     COLLAPSE delta compression reads it there), and the scratch state is
//     reverted after the sink returns;
//   * scratch.state.atomic_pid is the successor's atomic holder per emit;
//   * division/modulo by zero raises the interpreter's exact ModelError.
//
// Engines never change verdicts, state counts, or trails -- which is why
// RunConfig::digest() excludes the engine choice and checkpoints written
// under one engine resume cleanly under another (states are raw value
// arrays; see the portability tests in test_codegen.cpp).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "kernel/machine.h"

namespace pnp::obs {
class Observer;
}

namespace pnp::codegen {

enum class EngineKind : std::uint8_t {
  Interp,    // the kernel interpreter (no Engine object; the historical path)
  Bytecode,  // threaded-bytecode expression programs + table-driven driver
  Aot,       // generated C++ translation unit, compiled and dlopen'd
};

const char* engine_kind_name(EngineKind k);

/// Parses "interp" / "bytecode" / "aot"; returns false on anything else.
bool parse_engine_kind(std::string_view text, EngineKind* out);

/// A compiled successor generator over one machine. Thread-safe: the
/// compiled tables are immutable, and all per-call state lives in the
/// caller's scratch (parallel workers share one engine).
class Engine {
 public:
  virtual ~Engine() = default;

  virtual EngineKind kind() const = 0;
  const kernel::Machine& machine() const { return *m_; }

  /// Drop-in for Machine::visit_successors (same streaming contract).
  ///
  /// `skip` suppresses the first `skip` candidates without surfacing them:
  /// they are enumerated (so candidate indices and any/else bookkeeping are
  /// unchanged) but not mutated into successors or passed to the sink. The
  /// pass-based DFS revisits a frame once per child and re-streams the
  /// frame's candidates each time; candidates below the frame's resume
  /// point were paying full mutate/emit/revert just to be dropped by the
  /// sink -- on the bridge benchmark that is ~73% extra generated
  /// successors. The interpreter keeps the historical sink-side skip.
  ///
  /// `resume` is an optional in/out fast-forward token. On entry, a token
  /// written by the previous visit of the SAME state lets the engine start
  /// its sweep at the process where the previous visit stopped, instead of
  /// re-evaluating (and suppressing) every earlier process's guards; 0
  /// means sweep from the start. On return, the engine stores its new stop
  /// position (or 0 when it has nothing to offer). Tokens are a pure
  /// optimization: a process's candidates and any/else flags depend only on
  /// the state, never on other processes' sweeps, so jumping is observably
  /// identical to suppressing -- and an engine may ignore the token
  /// entirely. Callers must pass a token only with the state that produced
  /// it and a `skip` >= the token's candidate base.
  virtual void visit_successors(const kernel::State& s,
                                kernel::SuccScratch& scratch,
                                kernel::SuccSink& sink,
                                std::uint32_t skip = 0,
                                std::uint64_t* resume = nullptr) const = 0;

  /// Drop-in for Machine::visit_successors_of, with the same native `skip`
  /// semantics as visit_successors: the pass-based DFS re-streams a POR
  /// frame's chosen-pid candidates once per child, and candidates below the
  /// frame's resume point are suppressed without mutate/emit/revert. No
  /// resume token: a single process's sweep has no earlier processes to
  /// fast-forward past (the full-expansion overload above carries the
  /// token for choice-less frames).
  virtual bool visit_successors_of(const kernel::State& s, int pid,
                                   kernel::SuccScratch& scratch,
                                   kernel::SuccSink& sink,
                                   std::uint32_t skip = 0) const = 0;

  /// Resume-token encoding shared by the engines: the stopped-at process
  /// and the number of candidates enumerated before that process began.
  static std::uint64_t encode_resume(int pid, std::uint32_t base) {
    return ((static_cast<std::uint64_t>(pid) + 1) << 32) | base;
  }
  /// Returns the token's process, or -1 for the empty token.
  static int resume_pid(std::uint64_t tok) {
    return static_cast<int>(tok >> 32) - 1;
  }
  static std::uint32_t resume_base(std::uint64_t tok) {
    return static_cast<std::uint32_t>(tok);
  }

  /// Vector-building convenience (swarm workers permute materialized
  /// successor lists; mirrors Machine::successors).
  void successors(const kernel::State& s, std::vector<kernel::Succ>& out) const;

  /// Layout-specialized store path. When supported (layouts with at most 64
  /// COLLAPSE regions), the engine serves the two per-stored-state walks the
  /// generic compressor pays on every delta re-intern: mapping the undo log
  /// to the set of dirtied regions, and hashing a dirty region's value span.
  /// Both must be bit-exact with the kernel (dirty set == regions owning the
  /// undone slots; hash == support::fast_hash64 over the region bytes): the
  /// compressor derives stripe choice, fingerprint, and probe sequence --
  /// and therefore every component id and encoded key byte -- from that
  /// hash, so a divergent hash would split identical components across
  /// stripes and break visited-set identity.
  virtual bool encode_support() const { return false; }
  /// Bitmask of the regions owning the slots in `undo` (bit k = region k).
  virtual std::uint64_t dirty_regions(
      const std::pair<int, kernel::Value>* undo, std::size_t n) const {
    (void)undo;
    (void)n;
    return 0;
  }
  /// fast_hash64 of region `r`'s value span in `mem`.
  virtual std::uint64_t region_hash(const kernel::Value* mem, int r) const {
    (void)mem;
    (void)r;
    return 0;
  }

 protected:
  explicit Engine(const kernel::Machine& m) : m_(&m) {}
  const kernel::Machine* m_;
};

struct EngineOptions {
  EngineKind kind = EngineKind::Interp;
  /// AOT artifact cache directory; content-addressed .cpp/.so pairs land
  /// here. Empty uses a per-user directory under the system temp dir.
  std::string cache_dir;
  /// Host C++ compiler for the AOT backend. Empty consults $PNP_AOT_CXX,
  /// then falls back to the compiler this library was built with / c++.
  std::string cxx;
  /// When true, a failure to produce the requested engine raises ModelError
  /// instead of falling back down the ladder (used when resuming a
  /// checkpoint with --engine aot: the user asked for a specific engine and
  /// silently reinterpreting would belie the request).
  bool strict = false;
  /// Compile-phase events and counters (CodegenCompiles / CodegenCacheHits /
  /// CodegenFallbacks) land here when set.
  obs::Observer* obs = nullptr;
};

/// Builds the requested engine over `m` (which must outlive the engine).
///
/// Fallback ladder: `aot` falls back to `bytecode` when no host toolchain
/// is available, compilation fails, or the machine uses a construct the
/// emitter does not specialize (dynamic channel-id expressions); `bytecode`
/// always succeeds. `interp` returns nullptr -- callers treat a null engine
/// as "call the machine directly", keeping the historical path untouched.
/// With opt.strict, any fallback raises ModelError instead. When `note` is
/// non-null it receives a one-line explanation of any fallback taken.
std::unique_ptr<Engine> make_engine(const kernel::Machine& m,
                                    const EngineOptions& opt,
                                    std::string* note = nullptr);

/// Content digest of everything that determines a machine's successor
/// semantics: layout, channel shapes, compiled transition tables (with
/// expressions serialized structurally), and per-process spawn arguments.
/// This -- not the RunConfig digest, which identifies a verification job
/// rather than a machine -- addresses the AOT artifact cache: two runs over
/// the same block library reuse one compiled .so regardless of budgets or
/// properties.
std::string machine_digest(const kernel::Machine& m);

}  // namespace pnp::codegen
