#include "codegen/fold.h"

namespace pnp::codegen {

using expr::Op;
using expr::Value;

std::optional<Value> fold_const(const expr::Pool& pool, expr::Ref r,
                                std::span<const Value> params,
                                Value self_pid) {
  if (r == expr::kNoExpr) return std::nullopt;
  const expr::Node& n = pool.at(r);
  auto rec = [&](expr::Ref x) { return fold_const(pool, x, params, self_pid); };
  switch (n.op) {
    case Op::Const:
      return n.imm;
    case Op::Global:
      return std::nullopt;
    case Op::Local: {
      const auto slot = static_cast<std::size_t>(n.imm);
      if (slot < params.size()) return params[slot];
      return std::nullopt;  // mutable local: state-dependent
    }
    case Op::SelfPid:
      return self_pid;
    case Op::Neg: {
      const auto a = rec(n.a);
      return a ? std::optional<Value>(-*a) : std::nullopt;
    }
    case Op::Not: {
      const auto a = rec(n.a);
      return a ? std::optional<Value>(*a == 0 ? 1 : 0) : std::nullopt;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Eq:
    case Op::Ne:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      const auto a = rec(n.a);
      if (!a) return std::nullopt;
      const auto b = rec(n.b);
      if (!b) return std::nullopt;
      switch (n.op) {
        case Op::Add: return *a + *b;
        case Op::Sub: return *a - *b;
        case Op::Mul: return *a * *b;
        case Op::Eq: return *a == *b ? 1 : 0;
        case Op::Ne: return *a != *b ? 1 : 0;
        case Op::Lt: return *a < *b ? 1 : 0;
        case Op::Le: return *a <= *b ? 1 : 0;
        case Op::Gt: return *a > *b ? 1 : 0;
        default: return *a >= *b ? 1 : 0;
      }
    }
    case Op::Div:
    case Op::Mod: {
      const auto d = rec(n.b);
      if (!d || *d == 0) return std::nullopt;  // zero keeps its runtime trap
      const auto a = rec(n.a);
      if (!a) return std::nullopt;
      return n.op == Op::Div ? *a / *d : *a % *d;
    }
    case Op::And: {
      const auto a = rec(n.a);
      if (!a) return std::nullopt;
      if (*a == 0) return 0;  // short-circuit: b never evaluated
      const auto b = rec(n.b);
      return b ? std::optional<Value>(*b != 0 ? 1 : 0) : std::nullopt;
    }
    case Op::Or: {
      const auto a = rec(n.a);
      if (!a) return std::nullopt;
      if (*a != 0) return 1;
      const auto b = rec(n.b);
      return b ? std::optional<Value>(*b != 0 ? 1 : 0) : std::nullopt;
    }
    case Op::ChanLen:
    case Op::ChanFull:
    case Op::ChanEmpty:
      return std::nullopt;
    case Op::Cond: {
      const auto a = rec(n.a);
      if (!a) return std::nullopt;
      return rec(*a != 0 ? n.b : n.c);
    }
  }
  return std::nullopt;
}

}  // namespace pnp::codegen
