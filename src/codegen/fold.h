// Constant folding over interned expressions with per-process bindings.
//
// A process instance's spawn arguments are immutable and live outside the
// state vector, and its pid is fixed -- so once an engine is specialized
// per pid, every expression over params/SelfPid alone is a compile-time
// constant. This is the lever that makes channel-id expressions (ports are
// wired by passing channel ids as parameters) fold to constants, which in
// turn makes channel base/capacity/arity/lossy static for the backends.
#pragma once

#include <optional>
#include <span>

#include "expr/expr.h"

namespace pnp::codegen {

/// Evaluates `r` to a constant when it depends only on constants, `params`,
/// and `self_pid`. Mirrors Pool::eval exactly: And/Or short-circuit, Cond
/// folds through the taken branch only, and Div/Mod fold only when the
/// divisor folds to a nonzero constant (a zero divisor must keep its
/// runtime ModelError). Channel queries never fold (state-dependent).
std::optional<expr::Value> fold_const(const expr::Pool& pool, expr::Ref r,
                                      std::span<const expr::Value> params,
                                      expr::Value self_pid);

}  // namespace pnp::codegen
