#include "compile/compiler.h"

#include "support/panic.h"
#include "support/string_util.h"

namespace pnp::compile {

namespace {

using model::Branch;
using model::Seq;
using model::Stmt;
using model::StmtKind;
using model::SystemSpec;

class ProcCompiler {
 public:
  ProcCompiler(const SystemSpec& sys, const model::ProcType& proc, int proctype)
      : sys_(sys) {
    out_.name = proc.name;
    out_.proctype = proctype;
    out_.n_params = static_cast<int>(proc.params.size());
    out_.frame_size = proc.frame_size();
    for (const model::VarDecl& v : proc.params) out_.frame_init.push_back(v.init);
    for (const model::VarDecl& v : proc.locals) out_.frame_init.push_back(v.init);

    out_.entry = new_pc(false);
    const int exit = compile_seq(proc.body, out_.entry, false);
    out_.valid_end[static_cast<std::size_t>(exit)] = true;
    build_adjacency();
    classify_transitions();
  }

  CompiledProc take() { return std::move(out_); }

 private:
  int new_pc(bool in_atomic) {
    out_.atomic_at.push_back(in_atomic);
    out_.valid_end.push_back(false);
    return out_.n_pcs++;
  }

  void add_trans(Transition t) { out_.trans.push_back(std::move(t)); }

  /// Compiles `s` so that control enters at `entry` and leaves at `exit`.
  void compile_stmt(const Stmt& s, int entry, int exit, bool in_atomic) {
    switch (s.kind) {
      case StmtKind::Skip: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Noop;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::Guard: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Guard;
        t.expr = s.expr;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::Assign: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Assign;
        t.expr = s.expr;
        t.lhs = s.lhs;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::Send: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Send;
        t.chan = s.chan;
        t.fields = s.fields;
        t.sorted = s.sorted;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::Recv: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Recv;
        t.chan = s.chan;
        t.args = s.args;
        t.random = s.random;
        t.copy = s.copy;
        t.unordered = s.unordered;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::Assert: {
        Transition t;
        t.src = entry;
        t.dst = exit;
        t.op = OpKind::Assert;
        t.expr = s.expr;
        t.label = s.label;
        add_trans(std::move(t));
        break;
      }
      case StmtKind::If: {
        for (const Branch& b : s.branches) {
          if (b.is_else) {
            const int mid = new_pc(in_atomic);
            Transition t;
            t.src = entry;
            t.dst = mid;
            t.op = OpKind::Else;
            t.label = "else";
            add_trans(std::move(t));
            const int end = compile_seq(b.body, mid, in_atomic);
            merge_to(end, exit);
          } else {
            const int end = compile_seq(b.body, entry, in_atomic);
            merge_to(end, exit);
          }
        }
        break;
      }
      case StmtKind::Do: {
        break_targets_.push_back(exit);
        for (const Branch& b : s.branches) {
          if (b.is_else) {
            const int mid = new_pc(in_atomic);
            Transition t;
            t.src = entry;
            t.dst = mid;
            t.op = OpKind::Else;
            t.label = "else";
            add_trans(std::move(t));
            const int end = compile_seq(b.body, mid, in_atomic);
            merge_to(end, entry);
          } else {
            const int end = compile_seq(b.body, entry, in_atomic);
            merge_to(end, entry);
          }
        }
        break_targets_.pop_back();
        break;
      }
      case StmtKind::Break: {
        PNP_CHECK(!break_targets_.empty(), "break outside do");
        Transition t;
        t.src = entry;
        t.dst = break_targets_.back();
        t.op = OpKind::Noop;
        t.label = "break";
        add_trans(std::move(t));
        (void)exit;  // control never reaches the sequential exit
        break;
      }
      case StmtKind::Atomic: {
        const int end = compile_seq(s.body, entry, true);
        // Atomicity is released once control reaches the end of the block.
        merge_to(end, exit);
        out_.atomic_at[static_cast<std::size_t>(exit)] = in_atomic;
        break;
      }
      case StmtKind::EndLabel:
        // handled by compile_seq
        raise_model_error("EndLabel reached compile_stmt");
    }
  }

  /// Compiles a sequence starting at `entry`; returns the pc where control
  /// ends up afterwards.
  int compile_seq(const Seq& seq, int entry, bool in_atomic) {
    int cur = entry;
    for (const model::StmtPtr& sp : seq) {
      if (sp->kind == StmtKind::EndLabel) {
        out_.valid_end[static_cast<std::size_t>(cur)] = true;
        continue;
      }
      const int next = new_pc(in_atomic);
      compile_stmt(*sp, cur, next, in_atomic);
      cur = next;
    }
    return cur;
  }

  /// Redirects every transition ending at `from` to end at `to` instead
  /// (used to converge branch exits onto a shared pc). `from` is always the
  /// most recently created pc with no outgoing edges, so this is safe.
  void merge_to(int from, int to) {
    if (from == to) return;
    for (Transition& t : out_.trans)
      if (t.dst == from) t.dst = to;
    if (out_.valid_end[static_cast<std::size_t>(from)])
      out_.valid_end[static_cast<std::size_t>(to)] = true;
    // `from` is now orphaned (nothing reaches it): clear its markers so
    // they do not confuse pc-based bookkeeping.
    out_.valid_end[static_cast<std::size_t>(from)] = false;
    out_.atomic_at[static_cast<std::size_t>(from)] = false;
  }

  void build_adjacency() {
    out_.out.assign(static_cast<std::size_t>(out_.n_pcs), {});
    for (std::size_t i = 0; i < out_.trans.size(); ++i)
      out_.out[static_cast<std::size_t>(out_.trans[i].src)].push_back(
          static_cast<int>(i));
  }

  void classify_transitions() {
    for (Transition& t : out_.trans) {
      switch (t.op) {
        case OpKind::Send:
        case OpKind::Recv:
          t.local_only = false;
          break;
        case OpKind::Else:
          // Else enabledness depends on siblings, which may touch channels.
          t.local_only = false;
          break;
        case OpKind::Noop:
          t.local_only = true;
          break;
        case OpKind::Guard:
        case OpKind::Assert:
          t.local_only = !sys_.exprs.reads_shared(t.expr);
          break;
        case OpKind::Assign:
          t.local_only = !sys_.exprs.reads_shared(t.expr) &&
                         t.lhs.kind == model::LhsKind::Local;
          break;
        case OpKind::Crash:
          // Only touches the crashing process's own frame, but treating a
          // crash as invisible to other processes would let ample sets hide
          // faults; keep it globally visible.
          t.local_only = false;
          break;
      }
    }
  }

  const SystemSpec& sys_;
  CompiledProc out_;
  std::vector<int> break_targets_;
};

}  // namespace

std::vector<CompiledProc> compile(const model::SystemSpec& sys) {
  sys.validate();
  std::vector<CompiledProc> out;
  out.reserve(sys.proctypes.size());
  for (std::size_t i = 0; i < sys.proctypes.size(); ++i) {
    ProcCompiler pc(sys, sys.proctypes[i], static_cast<int>(i));
    out.push_back(pc.take());
  }
  return out;
}

CompiledProc compile_proc(const model::SystemSpec& sys, int proctype) {
  PNP_CHECK(proctype >= 0 &&
                proctype < static_cast<int>(sys.proctypes.size()),
            "compile_proc: proctype out of range");
  ProcCompiler pc(sys, sys.proctypes[static_cast<std::size_t>(proctype)],
                  proctype);
  return pc.take();
}

std::string describe(const model::SystemSpec& sys, const CompiledProc& proc,
                     const Transition& t) {
  if (!t.label.empty()) return t.label;
  auto global_name = std::function<std::string(int)>([&sys](int slot) {
    return sys.globals[static_cast<std::size_t>(slot)].name;
  });
  auto local_name = std::function<std::string(int)>([&sys, &proc](int slot) {
    const model::ProcType& pt =
        sys.proctypes[static_cast<std::size_t>(proc.proctype)];
    const std::size_t nparams = pt.params.size();
    if (static_cast<std::size_t>(slot) < nparams)
      return pt.params[static_cast<std::size_t>(slot)].name;
    return pt.locals[static_cast<std::size_t>(slot) - nparams].name;
  });
  auto expr_str = [&](ExprRef e) {
    return sys.exprs.to_string(e, &global_name, &local_name);
  };
  auto chan_str = [&](ExprRef e) -> std::string {
    const expr::Node& n = sys.exprs.at(e);
    if (n.op == expr::Op::Const &&
        n.imm >= 0 && n.imm < static_cast<Value>(sys.channels.size()))
      return sys.channels[static_cast<std::size_t>(n.imm)].name;
    return expr_str(e);
  };

  switch (t.op) {
    case OpKind::Noop:
      return "skip";
    case OpKind::Guard:
      return expr_str(t.expr);
    case OpKind::Else:
      return "else";
    case OpKind::Assign: {
      const std::string lhs = t.lhs.kind == model::LhsKind::Global
                                  ? global_name(t.lhs.slot)
                                  : local_name(t.lhs.slot);
      return lhs + " = " + expr_str(t.expr);
    }
    case OpKind::Assert:
      return "assert(" + expr_str(t.expr) + ")";
    case OpKind::Send: {
      std::vector<std::string> fs;
      for (ExprRef f : t.fields) fs.push_back(expr_str(f));
      return chan_str(t.chan) + (t.sorted ? "!!" : "!") + join(fs, ",");
    }
    case OpKind::Recv: {
      std::vector<std::string> as;
      for (const model::RecvArg& a : t.args) {
        switch (a.kind) {
          case model::RecvArgKind::Bind:
            as.push_back(a.lhs.kind == model::LhsKind::Global
                             ? global_name(a.lhs.slot)
                             : local_name(a.lhs.slot));
            break;
          case model::RecvArgKind::Match:
            as.push_back("eval(" + expr_str(a.match) + ")");
            break;
          case model::RecvArgKind::Wildcard:
            as.push_back("_");
            break;
        }
      }
      std::string s = chan_str(t.chan) + (t.random ? "??" : "?");
      if (t.copy) return s + "<" + join(as, ",") + ">";
      return s + join(as, ",");
    }
    case OpKind::Crash:
      return "crash-restart";
  }
  return "?";
}

void inject_crash_restart(CompiledProc& proc, int budget_slot) {
  PNP_CHECK(budget_slot >= proc.n_params && budget_slot < proc.frame_size,
            "inject_crash_restart: budget slot must be a mutable local");
  const std::size_t n_before = proc.trans.size();
  for (int pc = 0; pc < proc.n_pcs; ++pc) {
    if (pc == proc.entry) continue;
    // Orphaned pcs (left behind by branch merging) have no outgoing edges
    // and are unreachable; a terminated process stays terminated.
    if (proc.out[static_cast<std::size_t>(pc)].empty()) continue;
    Transition t;
    t.src = pc;
    t.dst = proc.entry;
    t.op = OpKind::Crash;
    t.lhs = {model::LhsKind::Local, budget_slot};
    t.label = "crash-restart";
    t.local_only = false;
    proc.trans.push_back(std::move(t));
  }
  for (std::size_t i = n_before; i < proc.trans.size(); ++i)
    proc.out[static_cast<std::size_t>(proc.trans[i].src)].push_back(
        static_cast<int>(i));
}

}  // namespace pnp::compile
