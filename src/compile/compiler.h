// Compiler from the statement-tree IR to a flat guarded control-flow graph.
//
// Each basic statement becomes one Transition between program counters.
// Executability is decided per transition kind by the kernel:
//   Guard   executable iff expr != 0
//   Else    executable iff no sibling transition from the same pc is
//   Assign/Assert/Noop  always executable
//   Send    executable iff the channel can accept (or a rendezvous partner
//           is ready; lossy channels always accept)
//   Recv    executable iff a matching message is available
//
// `atomic_at[pc]` marks control points inside an atomic region: after a step
// that lands on such a pc, the process keeps exclusive control while it has
// an executable transition (Promela atomic semantics: atomicity is lost when
// the process blocks).
#pragma once

#include <string>
#include <vector>

#include "model/system.h"

namespace pnp::compile {

using model::ExprRef;
using model::Value;

enum class OpKind : std::uint8_t {
  Noop,    // skip / structural edge
  Guard,
  Else,
  Assign,
  Send,
  Recv,
  Assert,
  Crash,   // fault injection: reset frame + pc to entry while budget > 0
};

struct Transition {
  int src{-1};
  int dst{-1};
  OpKind op{OpKind::Noop};

  ExprRef expr{expr::kNoExpr};  // Guard / Assert / Assign rhs
  model::Lhs lhs{};             // Assign target

  ExprRef chan{expr::kNoExpr};
  std::vector<ExprRef> fields;  // Send payload
  bool sorted{false};
  std::vector<model::RecvArg> args;  // Recv pattern
  bool random{false};
  bool copy{false};
  bool unordered{false};  // one successor per matching message (bag order)

  std::string label;

  /// Precomputed: transition neither reads nor writes shared state
  /// (no globals, no channels). Used by partial-order reduction.
  bool local_only{false};
};

struct CompiledProc {
  std::string name;
  int proctype{-1};
  int n_params{0};
  int frame_size{0};
  std::vector<Value> frame_init;  // params overwritten at spawn time

  int entry{0};
  int n_pcs{0};
  std::vector<Transition> trans;
  std::vector<std::vector<int>> out;  // pc -> indices into trans
  std::vector<bool> atomic_at;        // pc -> inside atomic region
  std::vector<bool> valid_end;        // pc -> valid end state
};

/// Compiles every proctype of `sys`. Raises ModelError on malformed input
/// (runs SystemSpec::validate first).
std::vector<CompiledProc> compile(const model::SystemSpec& sys);

/// Compiles a single proctype (no whole-system validation; used by the
/// incremental model generator, which validates what it builds).
CompiledProc compile_proc(const model::SystemSpec& sys, int proctype);

/// Fault injection: adds a Crash transition from every reachable non-entry
/// pc back to `entry`. A crash is executable while the local at `budget_slot`
/// is positive; executing it decrements the budget and resets every mutable
/// local (slots >= n_params) to its declared initial value. Used by the
/// generator's crash-restart component wrapper.
void inject_crash_restart(CompiledProc& proc, int budget_slot);

/// Human-readable rendering of a transition (used in traces and debugging).
std::string describe(const model::SystemSpec& sys, const CompiledProc& proc,
                     const Transition& t);

}  // namespace pnp::compile
