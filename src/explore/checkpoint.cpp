#include "explore/checkpoint.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/hash.h"
#include "support/panic.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pnp::explore {

namespace {

constexpr char kMagic[] = "pnp.ckpt.v1\n";
constexpr std::size_t kMagicLen = 12;

constexpr std::uint8_t kSecVisited = 1;
constexpr std::uint8_t kSecFrontier = 2;
constexpr std::uint8_t kSecCounters = 3;
constexpr std::uint8_t kSecEnd = 0;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint64_t payload_hash(const std::string& payload) {
  return hash_bytes({reinterpret_cast<const std::uint8_t*>(payload.data()),
                     payload.size()});
}

/// Serializes one state record: state_size i32 slot values + i32 atomic_pid.
void put_state(std::string& out, const kernel::State& s) {
  for (const kernel::Value v : s.mem) put_i32(out, v);
  put_i32(out, s.atomic_pid);
}

void append_section(std::string& out, std::uint8_t id,
                    const std::string& payload) {
  out.push_back(static_cast<char>(id));
  put_u64(out, payload.size());
  put_u64(out, payload_hash(payload));
  out += payload;
}

/// Bounds-checked little-endian reader over the checkpoint bytes.
class ByteReader {
 public:
  ByteReader(const std::string& bytes, const std::string& path)
      : s_(bytes), path_(path) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(s_[at_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s_[at_ + i]))
           << (8 * i);
    at_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s_[at_ + i]))
           << (8 * i);
    at_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::string bytes(std::size_t n) {
    need(n);
    std::string out = s_.substr(at_, n);
    at_ += n;
    return out;
  }
  bool done() const { return at_ == s_.size(); }
  void need(std::size_t n) const {
    PNP_CHECK(at_ + n <= s_.size(),
              "checkpoint " + path_ + " is truncated or corrupt");
  }

 private:
  const std::string& s_;
  std::string path_;
  std::size_t at_ = 0;
};

kernel::State read_state(ByteReader& r, std::uint32_t state_size) {
  kernel::State s;
  s.mem.resize(state_size);
  for (std::uint32_t i = 0; i < state_size; ++i) s.mem[i] = r.i32();
  s.atomic_pid = r.i32();
  return s;
}

/// Writes `data` to `path` with an fsync before returning (POSIX); plain
/// buffered write elsewhere. Raises ModelError on any failure.
void write_file_synced(const std::string& path, const std::string& data) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  PNP_CHECK(fd >= 0, "checkpoint: cannot create " + path);
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      ::close(fd);
      ::unlink(path.c_str());
      raise_model_error("checkpoint: write failed for " + path +
                        " (disk full?)");
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    raise_model_error("checkpoint: fsync failed for " + path);
  }
  ::close(fd);
#else
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  PNP_CHECK(static_cast<bool>(out), "checkpoint: cannot create " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  out.close();
  PNP_CHECK(static_cast<bool>(out), "checkpoint: write failed for " + path);
#endif
}

void fsync_parent_dir(const std::string& path) {
#if !defined(_WIN32)
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

void write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      const std::function<void(const StateSink&)>& emit_visited,
                      const std::function<void(const StateSink&)>& emit_frontier) {
  std::string out;
  out.append(kMagic, kMagicLen);
  put_u32(out, meta.state_size);
  put_u32(out, static_cast<std::uint32_t>(meta.config_digest.size()));
  out += meta.config_digest;

  // VISITED: u64 count, then raw state records.
  {
    std::string payload;
    std::uint64_t count = 0;
    put_u64(payload, 0);  // patched below
    emit_visited([&](const kernel::State& s, std::uint32_t) {
      put_state(payload, s);
      ++count;
    });
    std::string fixed;
    put_u64(fixed, count);
    payload.replace(0, 8, fixed);
    append_section(out, kSecVisited, payload);
  }

  // FRONTIER: u64 count, then (u32 depth, state) records.
  {
    std::string payload;
    std::uint64_t count = 0;
    put_u64(payload, 0);
    emit_frontier([&](const kernel::State& s, std::uint32_t depth) {
      put_u32(payload, depth);
      put_state(payload, s);
      ++count;
    });
    std::string fixed;
    put_u64(fixed, count);
    payload.replace(0, 8, fixed);
    append_section(out, kSecFrontier, payload);
  }

  // COUNTERS: stat baselines + obs counter totals.
  {
    std::string payload;
    put_u64(payload, meta.states_matched);
    put_u64(payload, meta.transitions);
    put_u64(payload, meta.seq);
    put_u64(payload, meta.counters.size());
    for (const std::uint64_t c : meta.counters) put_u64(payload, c);
    append_section(out, kSecCounters, payload);
  }

  append_section(out, kSecEnd, std::string());

  const std::string tmp = path + ".tmp";
  write_file_synced(tmp, out);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    raise_model_error("checkpoint: cannot commit " + path + ": " +
                      ec.message());
  }
  fsync_parent_dir(path);
}

Checkpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PNP_CHECK(static_cast<bool>(in), "checkpoint: cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  PNP_CHECK(bytes.size() >= kMagicLen &&
                std::memcmp(bytes.data(), kMagic, kMagicLen) == 0,
            "checkpoint " + path +
                " is not a pnp.ckpt.v1 file (bad magic/version)");

  ByteReader r(bytes, path);
  r.bytes(kMagicLen);  // skip magic
  Checkpoint c;
  c.meta.state_size = r.u32();
  const std::uint32_t digest_len = r.u32();
  PNP_CHECK(digest_len <= 4096, "checkpoint " + path + ": absurd digest length");
  c.meta.config_digest = r.bytes(digest_len);

  bool saw_end = false;
  while (!saw_end) {
    const std::uint8_t id = r.u8();
    const std::uint64_t len = r.u64();
    const std::uint64_t sum = r.u64();
    const std::string payload = r.bytes(static_cast<std::size_t>(len));
    PNP_CHECK(payload_hash(payload) == sum,
              "checkpoint " + path + ": section checksum mismatch (corrupt)");
    ByteReader pr(payload, path);
    switch (id) {
      case kSecVisited: {
        const std::uint64_t count = pr.u64();
        c.visited.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i)
          c.visited.push_back(read_state(pr, c.meta.state_size));
        PNP_CHECK(pr.done(), "checkpoint " + path + ": trailing visited bytes");
        break;
      }
      case kSecFrontier: {
        const std::uint64_t count = pr.u64();
        c.frontier.reserve(static_cast<std::size_t>(count));
        for (std::uint64_t i = 0; i < count; ++i) {
          Checkpoint::Pending p;
          p.depth = pr.u32();
          p.state = read_state(pr, c.meta.state_size);
          c.frontier.push_back(std::move(p));
        }
        PNP_CHECK(pr.done(), "checkpoint " + path + ": trailing frontier bytes");
        break;
      }
      case kSecCounters: {
        c.meta.states_matched = pr.u64();
        c.meta.transitions = pr.u64();
        c.meta.seq = pr.u64();
        const std::uint64_t n = pr.u64();
        PNP_CHECK(n <= 4096, "checkpoint " + path + ": absurd counter count");
        c.meta.counters.resize(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
          c.meta.counters[static_cast<std::size_t>(i)] = pr.u64();
        PNP_CHECK(pr.done(), "checkpoint " + path + ": trailing counter bytes");
        break;
      }
      case kSecEnd:
        saw_end = true;
        break;
      default:
        raise_model_error("checkpoint " + path + ": unknown section id " +
                          std::to_string(static_cast<int>(id)));
    }
  }
  PNP_CHECK(r.done(), "checkpoint " + path + ": trailing bytes after END");
  return c;
}

}  // namespace pnp::explore
