// pnp.ckpt.v1: atomically-committed exploration checkpoints.
//
// A checkpoint is a consistent cut of an exact search: every state inserted
// into the visited set so far, plus the frontier -- the subset of visited
// states that may not have been fully expanded yet (DFS stack frames, the
// BFS queue tail, or the parallel workers' queues at a quiesce barrier).
// Re-seeding the visited set and re-expanding the frontier reaches exactly
// the states the uninterrupted run would have reached: re-expansion of a
// partially-expanded state is idempotent (its explored successors dedup
// against the visited set) and violations are detected at expansion time.
//
// States are serialized in raw value-array form (Layout slot values +
// atomic_pid), NOT in compressed-key form: the snapshot is therefore
// independent of the compressor's intern tables, the stripe count, the
// engine (DFS/BFS/parallel), and the thread count -- the tables and arenas
// are rebuilt deterministically when the states are re-inserted on resume.
//
// File layout (all integers little-endian):
//   "pnp.ckpt.v1\n"                       12-byte magic + version
//   u32 state_size                        Layout::size() of the machine
//   u32 digest_len, digest bytes          RunConfig digest (validated on
//                                         resume: a checkpoint never
//                                         continues under another config)
//   sections, each:
//     u8  id (1=VISITED 2=FRONTIER 3=COUNTERS 0=END)
//     u64 payload_len
//     u64 checksum  (support/hash.h hash_bytes over the payload)
//     payload bytes
//   END section (id 0, len 0, checksum 0) terminates the file.
//
// Commit protocol: write to <path>.tmp, fsync, rename over <path>, fsync
// the directory -- a crash mid-write leaves either the old checkpoint or
// none, never a torn one; a torn .tmp is ignored by readers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kernel/state.h"

namespace pnp::explore {

/// Header + counter baselines carried alongside the state sections.
struct CheckpointMeta {
  std::string config_digest;
  std::uint32_t state_size = 0;
  /// Stat baselines so a resumed run's totals continue from the snapshot.
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  /// How many checkpoints this run chain has committed (sequence number).
  std::uint64_t seq = 0;
  /// obs::Counter totals at snapshot time (forensics; kCount entries).
  std::vector<std::uint64_t> counters;
};

struct Checkpoint {
  CheckpointMeta meta;
  /// Every state inserted into the visited set, raw value-array form.
  std::vector<kernel::State> visited;
  struct Pending {
    kernel::State state;
    std::uint32_t depth = 0;
  };
  /// The not-fully-expanded subset of `visited`, with search depths.
  std::vector<Pending> frontier;
};

/// Record sink passed to the streaming emitters of write_checkpoint().
using StateSink = std::function<void(const kernel::State&, std::uint32_t)>;

/// Atomically commits a checkpoint. `emit_visited` / `emit_frontier` are
/// called once each and must invoke the sink per record (the depth argument
/// is ignored for visited records). Raises ModelError on any I/O failure;
/// the previous checkpoint at `path`, if any, survives a failed commit.
void write_checkpoint(const std::string& path, const CheckpointMeta& meta,
                      const std::function<void(const StateSink&)>& emit_visited,
                      const std::function<void(const StateSink&)>& emit_frontier);

/// Reads and fully validates a checkpoint: magic/version, section
/// checksums, record framing. Raises ModelError on corruption or
/// truncation -- a damaged checkpoint is rejected, never partially applied.
Checkpoint read_checkpoint(const std::string& path);

}  // namespace pnp::explore
