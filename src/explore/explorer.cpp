#include "explore/explorer.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>

#include "codegen/engine.h"
#include "explore/checkpoint.h"
#include "explore/por.h"
#include "explore/visited.h"
#include "kernel/compress.h"
#include "support/hash.h"
#include "support/panic.h"
#include "support/spill.h"

namespace pnp::explore {

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::AssertFailed: return "assertion violation";
    case ViolationKind::Deadlock: return "invalid end state (deadlock)";
    case ViolationKind::InvariantViolated: return "invariant violation";
    case ViolationKind::EndInvariantViolated:
      return "end-state invariant violation";
    case ViolationKind::AcceptanceCycle: return "acceptance cycle (liveness violation)";
  }
  return "?";
}

const char* truncation_reason_name(TruncationReason r) {
  switch (r) {
    case TruncationReason::None: return "none";
    case TruncationReason::MaxStates: return "max-states limit reached";
    case TruncationReason::MaxDepth: return "max-depth limit reached";
    case TruncationReason::Deadline: return "wall-clock deadline exceeded";
    case TruncationReason::MemoryBudget: return "memory budget exceeded";
    case TruncationReason::BitstateApprox:
      return "bitstate hashing (probabilistic coverage)";
    case TruncationReason::MemorySpilled:
      return "memory budget exceeded (stores spilled to disk)";
    case TruncationReason::Interrupted:
      return "interrupted (final checkpoint written)";
  }
  return "?";
}

namespace {

using kernel::Machine;
using kernel::State;
using kernel::Step;
using kernel::Succ;

constexpr std::uint64_t kBudgetCheckStride = 1024;

/// Visited-table pre-size hint: honor a caller-set max_states bound exactly,
/// but cap the speculative up-front allocation -- the flat tables double
/// cheaply past the cap.
std::uint64_t expected_states(const Options& opt) {
  return std::min<std::uint64_t>(opt.max_states, std::uint64_t{1} << 16);
}

std::optional<Violation> invariant_violation(const Machine& m,
                                             const Options& opt,
                                             const State& s) {
  if (opt.invariant != expr::kNoExpr && m.eval_global(opt.invariant, s) == 0) {
    Violation v;
    v.kind = ViolationKind::InvariantViolated;
    v.message = "invariant violated" +
                (opt.invariant_name.empty() ? std::string()
                                            : ": " + opt.invariant_name);
    return v;
  }
  return std::nullopt;
}

/// Checks that apply only to states with no successors (deadlock and the
/// end-state invariant), in the historical precedence order.
std::optional<Violation> terminal_violation(const Machine& m,
                                            const Options& opt,
                                            const State& s) {
  if (opt.check_deadlock && !m.is_valid_end(s)) {
    Violation v;
    v.kind = ViolationKind::Deadlock;
    v.message = "no executable transition and not all processes at a "
                "valid end state";
    return v;
  }
  if (opt.end_invariant != expr::kNoExpr &&
      m.eval_global(opt.end_invariant, s) == 0) {
    Violation v;
    v.kind = ViolationKind::EndInvariantViolated;
    v.message =
        "terminal state violates end invariant" +
        (opt.end_invariant_name.empty() ? std::string()
                                        : ": " + opt.end_invariant_name);
    return v;
  }
  return std::nullopt;
}

/// Deterministic per-state successor shuffle for swarm workers: seeded by
/// (worker seed, state key hash) so regenerating a DFS frame's successor
/// list reproduces the exact same order.
void permute_succs(std::vector<Succ>& succs, std::uint64_t perm_seed,
                   const std::string& key) {
  if (succs.size() < 2) return;
  std::uint64_t x = avalanche64(perm_seed ^ hash_bytes(byte_span(key)));
  for (std::size_t i = succs.size() - 1; i > 0; --i) {
    // xorshift64* step, then reduce; bias is irrelevant here
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const std::size_t j =
        static_cast<std::size_t>((x * 0x2545f4914f6cdd1dull) % (i + 1));
    std::swap(succs[i], succs[j]);
  }
}

/// The streaming sequential engine: COLLAPSE component compression, flat
/// visited store, and mutate-and-revert successor generation. Runs every
/// non-permuted single-threaded search (exact and bitstate). Discovery
/// order -- and therefore verdicts, stored-state counts, counterexample
/// trails, and the exact bit pattern of the bitstate filter -- is identical
/// to the historical copy-based engine (DESIGN.md section 11 has the
/// step-by-step argument).
class FlatRun {
 public:
  FlatRun(const Machine& m, const Options& opt, const std::atomic<bool>* stop)
      : m_(m),
        opt_(opt),
        visited_(opt.bitstate, opt.bitstate_bytes, /*seed=*/0,
                 opt.bitstate ? 0 : expected_states(opt)),
        compressor_(m.layout(), /*stripes=*/1),
        stop_(stop) {
    if (!opt.bitstate) {
      const std::size_t n = static_cast<std::size_t>(compressor_.n_regions());
      ids_tmp_.resize(n);
      dirty_.resize(n);
      if (opt.engine != nullptr && opt.engine->encode_support() && n <= 64) {
        enc_engine_ = opt.engine;
        region_hashes_.resize(n);
      }
    }
    if (opt.obs != nullptr) blk_ = opt.obs->recorder().open_block();
    if (!opt.checkpoint_path.empty() || opt.resume_from != nullptr) {
      PNP_CHECK(!opt.bitstate,
                "checkpointing requires exact mode (bitstate stores hashes, "
                "not states)");
      PNP_CHECK(!opt.por || opt.bfs,
                "checkpointing with partial-order reduction requires BFS or "
                "threads > 1 (the sequential-DFS ample proviso depends on "
                "the search stack, which a resumed run cannot reconstruct)");
    }
    if (opt.resume_from != nullptr) {
      PNP_CHECK(opt.resume_from->meta.state_size == m.layout().size(),
                "checkpoint state size does not match this machine");
    }
  }

  Result go() {
    start_ = std::chrono::steady_clock::now();
    Result r = opt_.bfs ? bfs() : dfs();
    // Final checkpoint: persist the cut whenever the search ended without a
    // verdict -- on truncation/interrupt it is the resume point, and for a
    // complete pass it is an empty-frontier snapshot a resume returns from
    // immediately.
    if (ckpt_enabled() && !r.violation.has_value()) commit_checkpoint();
    r.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    r.stats.states_stored = visited_.size();
    r.stats.states_matched = matched_;
    r.stats.transitions = transitions_;
    r.stats.max_depth_reached = max_depth_seen_;
    r.stats.complete = complete_ && !opt_.bitstate;
    r.stats.store_bytes = store_bytes();
    r.stats.approx_memory_bytes = r.stats.store_bytes + frontier_bytes_;
    r.stats.truncation = truncation_ != TruncationReason::None
                             ? truncation_
                             : (opt_.bitstate ? TruncationReason::BitstateApprox
                                              : TruncationReason::None);
    r.stats.spilled = spilled_;
    if (spilled_)
      r.stats.spill_bytes =
          visited_.spill_bytes() + compressor_.spill_bytes();
    r.stats.checkpoints_written = ckpt_written_;
    r.stats.resumed = opt_.resume_from != nullptr;
    if (blk_ != nullptr) {
      publish_counters();
      obs::Recorder& rec = opt_.obs->recorder();
      rec.max_gauge(obs::Gauge::StoreBytes, r.stats.store_bytes);
      rec.max_gauge(obs::Gauge::FrontierBytes, frontier_bytes_);
      rec.max_gauge(obs::Gauge::MaxDepthReached,
                    static_cast<std::uint64_t>(max_depth_seen_));
      if (!opt_.bitstate) {
        rec.max_gauge(obs::Gauge::InternedComponents,
                      compressor_.components());
        rec.max_gauge(obs::Gauge::CompressorBytes, compressor_.approx_bytes());
      }
      r.stats.approx_memory_bytes += opt_.obs->approx_bytes();
    }
    return r;
  }

 private:
  // DFS frames do NOT own their successor lists: candidates are streamed
  // from the generator and a pass stops at the first fresh child, so the
  // stack holds O(depth) states with no materialized successor vectors at
  // all. Returning to a frame re-streams its candidates; `next` skips the
  // ones already handled and `counted` keeps the transitions stat exact
  // across passes.
  struct Frame {
    State state;
    std::string raw_key;  // canonical encoding; filled only under POR (C3)
    // this state's per-region component ids (exact mode): successors reuse
    // them for every region their undo log left untouched
    std::vector<std::uint32_t> ids;
    Step in_step;  // step that produced this state (invalid at root)
    std::uint32_t next = 0;
    std::uint32_t counted = 0;
    // Engine resume token: where the previous pass's sweep stopped, letting
    // the next pass skip earlier processes' guard sweeps entirely.
    std::uint64_t resume = 0;
    bool checked = false;
    int por_choice = -1;  // recorded ample decision (see por_choose)
  };

  enum class Outcome : std::uint8_t { Exhausted, Child, Violation };

  /// One generation pass over the top frame: skips candidates handled by
  /// earlier passes, maintains the transitions high-water mark, and stops
  /// the pass at the first fresh child or violation.
  class DfsSink final : public kernel::SuccSink {
   public:
    DfsSink(FlatRun& run, Frame& f) : run_(run), f_(f) {}

    bool on_successor(const State& ns, const Step& step) override {
      const std::uint32_t i = idx_++;
      if (i >= f_.counted) {
        f_.counted = i + 1;
        ++run_.transitions_;
      }
      if (i < f_.next) return true;  // handled in an earlier pass
      if (defer_) return run_.dfs_deferred(ns, step, f_, *this);
      ++f_.next;
      return run_.dfs_candidate(ns, step, f_, *this);
    }

    Outcome outcome = Outcome::Exhausted;
    bool defer_ = false;  // engine path: pipeline the visited probes
    std::uint32_t idx_ = 0;
    State child;      // fresh child (Outcome::Child) or final state (Violation)
    Step child_step;  // its in-step / the violating extra step
    Violation violation;

   private:
    FlatRun& run_;
    Frame& f_;
  };

  /// Handles one not-yet-processed candidate; returns false to stop the
  /// generation pass (fresh child to push, or violation).
  bool dfs_candidate(const State& ns, const Step& step, Frame& f,
                     DfsSink& sink) {
    if (step.assert_failed) {
      sink.violation.kind = ViolationKind::AssertFailed;
      sink.violation.message = "assertion failed: " + m_.describe_step(step);
      sink.child = ns;
      sink.child_step = step;
      sink.outcome = Outcome::Violation;
      return false;
    }
    if (!visited_.insert(succ_key(ns, f.ids))) {
      ++matched_;
      return true;
    }
    if (visited_.size() >= opt_.max_states) {
      truncate(TruncationReason::MaxStates);
      // stored, but not expanded: remember it for the final checkpoint so a
      // resume with a higher limit picks up exactly where this run stopped
      if (ckpt_enabled())
        overflow_.push_back(
            {State(ns), static_cast<std::uint32_t>(stack_.size())});
      return true;
    }
    if (static_cast<int>(stack_.size()) > opt_.max_depth) {
      truncate(TruncationReason::MaxDepth);
      if (ckpt_enabled())
        overflow_.push_back(
            {State(ns), static_cast<std::uint32_t>(stack_.size())});
      return true;
    }
    sink.child = ns;  // the one copy a genuinely fresh state costs
    sink.child_step = step;
    sink.outcome = Outcome::Child;
    return false;
  }

  // A successor whose visited probe is in flight. The engine-path sink
  // defers each candidate's dup check across the next two emits: the probe
  // slot is prefetched when the candidate is compressed, the cluster walk
  // runs one emit later (slot line in cache, arena record of a fingerprint
  // match prefetched), and the arena confirm one emit after that. An exact
  // dup check is two DEPENDENT DRAM misses -- probe slot, then key bytes --
  // that dominate the compiled engines' wall time; pipelining overlays each
  // with the engine's revert/guard/mutate work for the following candidates
  // instead of stalling on them. The pending state is not copied: it is
  // reconstructed on demand from the frame's source state plus the step's
  // (slot, new value) writes.
  struct Pending {
    Step step;
    std::vector<std::uint8_t> key;   // compressed visited key
    std::vector<std::uint32_t> ids;  // successor's per-region component ids
    std::vector<std::pair<std::int32_t, std::int32_t>> writes;
    std::uint64_t hash = 0;
    std::uint32_t off = 0;   // fingerprint match to confirm (stage 2)
    int atomic_pid = -1;
    std::uint8_t stage = 0;  // 0 empty, 1 slot prefetched, 2 record prefetched
  };

  /// Engine-path candidate handling: stages this candidate's visited probe
  /// and advances the two in-flight ones. Candidates still resolve in
  /// stream order, so outcomes, `next` bookkeeping, and verdicts are
  /// identical to the immediate path -- the one observable difference is
  /// that a pass surfaces (and counts) up to two extra candidates before
  /// stopping, which the `counted` high-water mark already de-duplicates
  /// across passes.
  bool dfs_deferred(const State& ns, const Step& step, Frame& f,
                    DfsSink& sink) {
    if (step.assert_failed) {
      // Stream order: if an in-flight candidate is fresh it stops the pass
      // first, and this candidate re-surfaces (and fires) on a later pass.
      if (drain_pending(f, sink)) return false;
      ++f.next;
      sink.violation.kind = ViolationKind::AssertFailed;
      sink.violation.message = "assertion failed: " + m_.describe_step(step);
      sink.child = ns;
      sink.child_step = step;
      sink.outcome = Outcome::Violation;
      return false;
    }
    // Compress and hash now -- the undo log is only valid during this
    // callback -- but keep the result out of the store until later emits.
    const auto key = succ_key(ns, f.ids);
    const std::uint64_t h = visited_.stage(key);
    if (pend_[0].stage == 2 && confirm_front(f, sink)) return false;
    if (pend_[0].stage == 1 && walk_front(f, sink, /*defer=*/true))
      return false;
    // after confirm + walk the front is settled or awaiting its confirm, so
    // one of the two buffers is always free for this candidate
    Pending& p = pend_[pend_[0].stage == 0 ? 0 : 1];
    p.step = step;
    p.key.assign(key.begin(), key.end());
    p.ids.assign(ids_tmp_.begin(), ids_tmp_.end());
    p.writes.clear();
    for (const auto& [slot, old] : scratch_.undo)
      p.writes.emplace_back(slot, ns.mem[static_cast<std::size_t>(slot)]);
    p.hash = h;
    p.atomic_pid = ns.atomic_pid;
    p.stage = 1;
    return true;
  }

  /// Walks the front candidate's (prefetched) probe cluster. A definitely-
  /// fresh candidate inserts and resolves here; a fingerprint match defers
  /// the arena confirm one more emit (defer) or settles it immediately.
  /// Returns true when the pass must stop.
  bool walk_front(Frame& f, DfsSink& sink, bool defer) {
    Pending& p = pend_[0];
    const auto st = visited_.probe_staged(p.key, p.hash);
    if (st.fresh) return fresh_front(f, sink);
    p.off = st.off;
    p.stage = 2;
    if (defer) return false;
    return confirm_front(f, sink);
  }

  /// Settles the front candidate's prefetched arena confirm. Returns true
  /// when the pass must stop (fresh via fingerprint collision).
  bool confirm_front(Frame& f, DfsSink& sink) {
    Pending& p = pend_[0];
    if (!visited_.confirm_staged(p.key, p.hash, p.off)) {
      ++matched_;
      ++f.next;
      pop_front();
      return false;
    }
    return fresh_front(f, sink);
  }

  /// The front candidate proved fresh (already in the store). Truncation
  /// keeps the pass streaming; otherwise the pass stops with the child.
  bool fresh_front(Frame& f, DfsSink& sink) {
    Pending& p = pend_[0];
    ++f.next;
    if (visited_.size() >= opt_.max_states) {
      truncate(TruncationReason::MaxStates);
      if (ckpt_enabled())
        overflow_.push_back(
            {pending_state(f, p), static_cast<std::uint32_t>(stack_.size())});
      pop_front();
      return false;
    }
    if (static_cast<int>(stack_.size()) > opt_.max_depth) {
      truncate(TruncationReason::MaxDepth);
      if (ckpt_enabled())
        overflow_.push_back(
            {pending_state(f, p), static_cast<std::uint32_t>(stack_.size())});
      pop_front();
      return false;
    }
    sink.child = pending_state(f, p);
    sink.child_step = p.step;
    // the frame push reads the child's region ids out of ids_tmp_, which a
    // later candidate's compression has since overwritten
    ids_tmp_.assign(p.ids.begin(), p.ids.end());
    sink.outcome = Outcome::Child;
    // a younger in-flight candidate sits exactly at the new f.next, so it
    // re-surfaces on the next pass; drop it
    pend_[0].stage = 0;
    pend_[1].stage = 0;
    return true;
  }

  void pop_front() {
    std::swap(pend_[0], pend_[1]);  // recycles the settled buffers
    pend_[1].stage = 0;
  }

  /// Fully resolves every in-flight candidate in stream order (pass end, or
  /// a violation they outrank). Returns true when one was fresh.
  bool drain_pending(Frame& f, DfsSink& sink) {
    while (pend_[0].stage != 0) {
      if (pend_[0].stage == 1) {
        if (walk_front(f, sink, /*defer=*/false)) return true;
      } else if (confirm_front(f, sink)) {
        return true;
      }
    }
    return false;
  }

  /// An in-flight candidate's state: the frame's source state with the
  /// step's writes applied (write order is irrelevant -- every recorded
  /// value is the slot's final one).
  State pending_state(const Frame& f, const Pending& p) const {
    State s(f.state);
    for (const auto& [slot, val] : p.writes)
      s.mem[static_cast<std::size_t>(slot)] = val;
    s.atomic_pid = p.atomic_pid;
    return s;
  }

  Result dfs() {
    Result r;
    const OnStackFn on_stack_fn = [this](const State& st) {
      kernel::encode_key_into(st, probe_buf_);
      return on_stack_.contains(probe_buf_);
    };
    const OnStackFn* proviso = opt_.por ? &on_stack_fn : nullptr;

    if (opt_.resume_from != nullptr) {
      // Resumed search: the visited set is re-seeded from the snapshot and
      // the frontier states wait in seeds_; each becomes a stack root when
      // the previous one's subtree is exhausted. POR is rejected here (see
      // the constructor), so on_stack_ stays empty.
      seed_resume();
    } else {
      Frame root;
      root.state = m_.initial();
      visited_.insert(root_key(root.state));
      if (!opt_.bitstate) root.ids = ids_tmp_;
      if (opt_.por) {
        kernel::encode_key_into(root.state, root.raw_key);
        on_stack_.insert(root.raw_key);
      }
      stack_.push_back(std::move(root));
    }

    const std::uint64_t per_frame_bytes =
        sizeof(Frame) + 2 * state_bytes();  // state vector + raw key
    while (true) {
      if (stack_.empty() && !next_seed()) break;
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (interrupt_requested()) {
        truncate(TruncationReason::Interrupted);
        break;
      }
      if (over_budget(stack_.size() * per_frame_bytes)) break;
      observe(stack_.size() * per_frame_bytes);
      maybe_checkpoint();
      Frame& f = stack_.back();
      const bool first = !f.checked;
      if (first) {
        f.checked = true;
        if (opt_.por) {
          f.por_choice = por_choose(m_, f.state, proviso, scratch_,
                                    opt_.engine);
          if (f.por_choice >= 0) ++por_ample_;
        }
        max_depth_seen_ = std::max(max_depth_seen_,
                                   static_cast<int>(stack_.size()) - 1);
        // The invariant check moved ahead of successor generation
        // (generation has no side effects and the check reads only the
        // state), so the verdict and trace are unchanged.
        if (auto v = invariant_violation(m_, opt_, f.state)) {
          v->trace = stack_trace(nullptr, nullptr);
          r.violation = std::move(*v);
          return r;
        }
      }
      DfsSink sink(*this, f);
      if (opt_.por) {
        if (opt_.engine) {
          // Engine-backed POR: same native skip / resume-token / deferred-
          // probe pipeline as the plain engine path below, applied to the
          // recorded ample choice's stream (full sweep when choice < 0).
          sink.idx_ = f.next;
          sink.defer_ = !opt_.bitstate;
          por_visit(m_, f.state, f.por_choice, scratch_, sink, opt_.engine,
                    f.next, &f.resume);
          drain_pending(f, sink);
        } else {
          por_visit(m_, f.state, f.por_choice, scratch_, sink);
        }
      } else if (opt_.engine) {
        // Compiled engines suppress the already-handled candidates natively
        // (guard bookkeeping intact, no mutate/emit/revert): start the sink's
        // index where the engine resumes so candidate numbering is unchanged.
        sink.idx_ = f.next;
        sink.defer_ = !opt_.bitstate;
        opt_.engine->visit_successors(f.state, scratch_, sink, f.next,
                                      &f.resume);
        drain_pending(f, sink);  // in-flight candidates' probes, in order
      } else
        m_.visit_successors(f.state, scratch_, sink);
      switch (sink.outcome) {
        case Outcome::Violation:
          sink.violation.trace = stack_trace(&sink.child_step, &sink.child);
          r.violation = std::move(sink.violation);
          return r;
        case Outcome::Child: {
          Frame nf;
          nf.state = std::move(sink.child);
          // ids_tmp_ still holds the child's ids: the pass stopped at it
          if (!opt_.bitstate) nf.ids = ids_tmp_;
          nf.in_step = sink.child_step;
          if (opt_.por) {
            kernel::encode_key_into(nf.state, nf.raw_key);
            on_stack_.insert(nf.raw_key);
          }
          stack_.push_back(std::move(nf));
          break;
        }
        case Outcome::Exhausted:
          // A first pass that saw zero candidates means a terminal state.
          if (first && sink.idx_ == 0) {
            if (auto v = terminal_violation(m_, opt_, f.state)) {
              v->trace = stack_trace(nullptr, nullptr);
              r.violation = std::move(*v);
              return r;
            }
          }
          if (opt_.por) on_stack_.erase(stack_.back().raw_key);
          stack_.pop_back();
          break;
      }
    }
    return r;
  }

  struct BfsNode {
    State state;
    std::vector<std::uint32_t> ids;  // per-region component ids (exact mode)
    std::int64_t parent;
    Step in_step;
  };

  class BfsSink final : public kernel::SuccSink {
   public:
    BfsSink(FlatRun& run, std::int64_t head) : run_(run), head_(head) {}

    bool on_successor(const State& ns, const Step& step) override {
      ++count;
      return run_.bfs_candidate(ns, step, head_, *this);
    }

    std::uint32_t count = 0;
    bool violated = false;
    Violation violation;
    State vstate;
    Step vstep;

   private:
    FlatRun& run_;
    std::int64_t head_;
  };

  bool bfs_candidate(const State& ns, const Step& step, std::int64_t head,
                     BfsSink& sink) {
    ++transitions_;
    if (step.assert_failed) {
      sink.violation.kind = ViolationKind::AssertFailed;
      sink.violation.message = "assertion failed: " + m_.describe_step(step);
      sink.vstate = ns;
      sink.vstep = step;
      sink.violated = true;
      return false;
    }
    if (!visited_.insert(
            succ_key(ns, nodes_[static_cast<std::size_t>(head)].ids))) {
      ++matched_;
      return true;
    }
    if (visited_.size() >= opt_.max_states) {
      truncate(TruncationReason::MaxStates);
      if (ckpt_enabled()) overflow_.push_back({State(ns), 0});
      return true;
    }
    nodes_.push_back({State(ns),
                      opt_.bitstate ? std::vector<std::uint32_t>() : ids_tmp_,
                      head, step});
    return true;
  }

  Result bfs() {
    Result r;
    auto build_trace = [&](std::int64_t i, const Step* extra_step,
                           const State* extra_state) {
      trace::Trace t;
      if (!opt_.want_trace) return t;
      std::vector<trace::TraceStep> rev;
      for (std::int64_t j = i; j > 0;
           j = nodes_[static_cast<std::size_t>(j)].parent)
        rev.push_back({nodes_[static_cast<std::size_t>(j)].in_step,
                       m_.describe_step(
                           nodes_[static_cast<std::size_t>(j)].in_step)});
      t.steps.assign(rev.rbegin(), rev.rend());
      if (extra_step)
        t.steps.push_back({*extra_step, m_.describe_step(*extra_step)});
      t.final_state = m_.format_state(
          extra_state ? *extra_state
                      : nodes_[static_cast<std::size_t>(i)].state);
      return t;
    };

    if (opt_.resume_from != nullptr) {
      // Resumed search: frontier states re-enter the queue as parentless
      // roots, so a counterexample trail found after resume starts at a
      // checkpointed frontier state rather than the initial state.
      seed_resume();
      for (Checkpoint::Pending& p : seeds_) {
        BfsNode n{std::move(p.state), {}, -1, {}};
        compressor_.compress_full(n.state, key_buf_, ids_tmp_.data());
        ++compress_full_;
        n.ids = ids_tmp_;
        nodes_.push_back(std::move(n));
      }
      seeds_.clear();
    } else {
      BfsNode root{m_.initial(), {}, -1, {}};
      visited_.insert(root_key(root.state));
      if (!opt_.bitstate) root.ids = ids_tmp_;
      nodes_.push_back(std::move(root));
    }

    const std::uint64_t per_node_bytes = sizeof(BfsNode) + state_bytes();
    // bfs_head_ is a member so a checkpoint cut knows where the unexpanded
    // tail begins; on a clean exit it equals nodes_.size() (empty frontier).
    for (bfs_head_ = 0;
         bfs_head_ < static_cast<std::int64_t>(nodes_.size()); ++bfs_head_) {
      const std::int64_t head = bfs_head_;
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (interrupt_requested()) {
        truncate(TruncationReason::Interrupted);
        break;
      }
      if (over_budget(nodes_.size() * per_node_bytes)) break;
      observe(nodes_.size() * per_node_bytes);
      maybe_checkpoint();
      if (auto v = invariant_violation(
              m_, opt_, nodes_[static_cast<std::size_t>(head)].state)) {
        v->trace = build_trace(head, nullptr, nullptr);
        r.violation = std::move(*v);
        return r;
      }
      // Deque references survive push_back, so streaming new nodes into
      // nodes_ while expanding the head is safe.
      const State& hs = nodes_[static_cast<std::size_t>(head)].state;
      BfsSink sink(*this, head);
      if (opt_.por) {
        const int choice = por_choose(m_, hs, nullptr, scratch_, opt_.engine);
        if (choice >= 0) ++por_ample_;
        por_visit(m_, hs, choice, scratch_, sink, opt_.engine);
      } else if (opt_.engine)
        opt_.engine->visit_successors(hs, scratch_, sink);
      else
        m_.visit_successors(hs, scratch_, sink);
      if (sink.violated) {
        sink.violation.trace = build_trace(head, &sink.vstep, &sink.vstate);
        r.violation = std::move(sink.violation);
        return r;
      }
      if (sink.count == 0) {
        if (auto v = terminal_violation(
                m_, opt_, nodes_[static_cast<std::size_t>(head)].state)) {
          v->trace = build_trace(head, nullptr, nullptr);
          r.violation = std::move(*v);
          return r;
        }
      }
    }
    max_depth_seen_ = 0;  // depth tracking is a DFS notion
    return r;
  }

  /// Key of the root state (no parent to delta against). Exact mode uses
  /// the compressed component-id encoding (injective, so set membership is
  /// unchanged); bitstate mode keeps hashing the raw canonical encoding --
  /// the Bloom filter's verdict depends on the exact bytes its hash
  /// functions see. Exact mode leaves the state's per-region ids in
  /// ids_tmp_ for the caller to adopt.
  std::span<const std::uint8_t> root_key(const State& s) {
    if (opt_.bitstate) {
      kernel::encode_key_into(s, probe_buf_);
      return byte_span(probe_buf_);
    }
    compressor_.compress_full(s, key_buf_, ids_tmp_.data());
    ++compress_full_;
    return key_buf_;
  }

  /// Key of a successor just produced by the streaming generator, while its
  /// undo log still describes the mutation: exact mode re-interns only the
  /// touched regions and reuses `parent_ids` everywhere else (the COLLAPSE
  /// delta win -- most steps dirty one or two regions out of many).
  std::span<const std::uint8_t> succ_key(
      const State& s, const std::vector<std::uint32_t>& parent_ids) {
    if (opt_.bitstate) {
      kernel::encode_key_into(s, probe_buf_);
      return byte_span(probe_buf_);
    }
    if (enc_engine_ != nullptr) {
      // Engine store path: the undo log folds to a region bitmask through
      // the engine's constant slot->mask table, and each dirty region's
      // hash comes from its open-coded layout walk (bit-exact fast_hash64,
      // so ids and key bytes are unchanged -- see Engine::encode_support).
      const std::uint64_t dirty = enc_engine_->dirty_regions(
          scratch_.undo.data(), scratch_.undo.size());
      for (std::uint64_t rest = dirty; rest != 0; rest &= rest - 1) {
        const int k = std::countr_zero(rest);
        region_hashes_[static_cast<std::size_t>(k)] =
            enc_engine_->region_hash(s.mem.data(), k);
      }
      compressor_.compress_delta_masked(s, parent_ids.data(), dirty,
                                        region_hashes_.data(), key_buf_,
                                        ids_tmp_.data());
    } else {
      std::fill(dirty_.begin(), dirty_.end(), std::uint8_t{0});
      const std::vector<int>& reg = compressor_.region_of_slot();
      for (const auto& [slot, old] : scratch_.undo)
        dirty_[static_cast<std::size_t>(
            reg[static_cast<std::size_t>(slot)])] = 1;
      compressor_.compress_delta(s, parent_ids.data(), dirty_.data(), key_buf_,
                                 ids_tmp_.data());
    }
    ++compress_delta_;
    return key_buf_;
  }

  std::uint64_t store_bytes() const {
    return visited_.approx_bytes() +
           (opt_.bitstate ? 0 : compressor_.approx_bytes());
  }

  trace::Trace stack_trace(const Step* extra_step,
                           const State* extra_state) const {
    trace::Trace t;
    if (!opt_.want_trace) return t;
    // Descriptions are rendered only here, on the cold path: the DFS push
    // path must not pay for string construction.
    for (std::size_t i = 1; i < stack_.size(); ++i)
      t.steps.push_back(
          {stack_[i].in_step, m_.describe_step(stack_[i].in_step)});
    if (extra_step)
      t.steps.push_back({*extra_step, m_.describe_step(*extra_step)});
    t.final_state =
        m_.format_state(extra_state ? *extra_state : stack_.back().state);
    return t;
  }

  void truncate(TruncationReason why) {
    complete_ = false;
    if (truncation_ == TruncationReason::None) truncation_ = why;
  }

  /// Deadline / memory check, amortized: the clock and the footprint sum
  /// are only consulted every `kBudgetCheckStride` expansion passes.
  bool over_budget(std::uint64_t frontier_bytes) {
    if (opt_.deadline_seconds <= 0.0 && opt_.memory_budget_bytes == 0)
      return false;
    if (++budget_tick_ % kBudgetCheckStride != 0) return false;
    frontier_bytes_ = frontier_bytes;
    if (opt_.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (elapsed >= opt_.deadline_seconds) {
        truncate(TruncationReason::Deadline);
        return true;
      }
    }
    if (opt_.memory_budget_bytes > 0 && !spilled_) {
      const std::uint64_t used =
          store_bytes() + frontier_bytes + observer_bytes();
      // Spill ahead of exhaustion (at 80% of the budget) so the resident
      // probe arrays and pre-spill slabs stay under it; once spilled the
      // budget governs residency, not growth, and never truncates.
      if (!opt_.spill_dir.empty() && !opt_.bitstate &&
          used >= opt_.memory_budget_bytes - opt_.memory_budget_bytes / 5) {
        begin_spill(used);
        if (spilled_) return false;
      }
      if (used >= opt_.memory_budget_bytes) {
        truncate(TruncationReason::MemoryBudget);
        return true;
      }
    }
    return false;
  }

  /// Switches the visited-key arena and compressor intern pools to
  /// disk-backed storage. Failure (unusable spill dir, disk full) falls
  /// back to the in-RAM truncation path instead of aborting the search.
  void begin_spill(std::uint64_t used) {
    try {
      spill_ = std::make_unique<support::SpillPool>(opt_.spill_dir);
      visited_.attach_spill(spill_.get());
      compressor_.attach_spill(spill_.get());
      spilled_ = true;
      if (opt_.obs != nullptr)
        opt_.obs->budget_warning("memory-spill", used,
                                 opt_.memory_budget_bytes);
    } catch (const ModelError&) {
      spill_.reset();
    }
  }

  bool interrupt_requested() const {
    return opt_.interrupt != nullptr &&
           opt_.interrupt->load(std::memory_order_relaxed);
  }

  bool ckpt_enabled() const {
    return !opt_.checkpoint_path.empty() && !opt_.bitstate && !ckpt_failed_;
  }

  void maybe_checkpoint() {
    if (!ckpt_enabled() || opt_.checkpoint_every == 0) return;
    if (visited_.size() < last_ckpt_states_ + opt_.checkpoint_every) return;
    commit_checkpoint();
  }

  /// Commits a consistent cut: every visited state (decompressed back to
  /// value-array form) plus the unexpanded frontier -- the DFS stack / BFS
  /// queue tail, unconsumed resume seeds, and truncation overflow. I/O
  /// failure disables further checkpoints and keeps searching: losing
  /// durability beats aborting a verification mid-flight.
  void commit_checkpoint() {
    CheckpointMeta meta;
    meta.config_digest = opt_.config_digest;
    meta.state_size = static_cast<std::uint32_t>(m_.layout().size());
    meta.states_matched = matched_;
    meta.transitions = transitions_;
    meta.seq = ckpt_seq_ + 1;
    try {
      write_checkpoint(
          opt_.checkpoint_path, meta,
          [&](const StateSink& sink) {
            visited_.for_each_key([&](std::span<const std::uint8_t> key) {
              sink(compressor_.decompress(key), 0);
            });
          },
          [&](const StateSink& sink) {
            if (opt_.bfs) {
              for (std::int64_t j = bfs_head_;
                   j < static_cast<std::int64_t>(nodes_.size()); ++j)
                sink(nodes_[static_cast<std::size_t>(j)].state, 0);
            } else {
              for (std::size_t i = 0; i < stack_.size(); ++i)
                sink(stack_[i].state, static_cast<std::uint32_t>(i));
            }
            for (const Checkpoint::Pending& p : seeds_) sink(p.state, p.depth);
            for (const Checkpoint::Pending& p : overflow_)
              sink(p.state, p.depth);
          });
    } catch (const ModelError&) {
      ckpt_failed_ = true;
      if (opt_.obs != nullptr)
        opt_.obs->budget_warning("checkpoint-io", ckpt_seq_ + 1, 0);
      return;
    }
    ++ckpt_seq_;
    ++ckpt_written_;
    last_ckpt_states_ = visited_.size();
    if (opt_.obs != nullptr)
      opt_.obs->checkpointed(opt_.checkpoint_path, visited_.size(), ckpt_seq_);
  }

  /// Re-seeds the visited set and counters from opt_.resume_from. The
  /// compressor re-interns every state, rebuilding its tables and arenas
  /// deterministically; the frontier lands in seeds_.
  void seed_resume() {
    const Checkpoint& c = *opt_.resume_from;
    for (const State& s : c.visited) {
      compressor_.compress_full(s, key_buf_, ids_tmp_.data());
      ++compress_full_;
      visited_.insert(key_buf_);
    }
    matched_ = c.meta.states_matched;
    transitions_ = c.meta.transitions;
    ckpt_seq_ = c.meta.seq;
    last_ckpt_states_ = visited_.size();
    seeds_.assign(c.frontier.begin(), c.frontier.end());
    if (opt_.obs != nullptr)
      opt_.obs->resumed(opt_.checkpoint_path, visited_.size());
  }

  /// Pops the next resume seed onto the empty DFS stack. Seed frames sit at
  /// index 0 like the root, so stack_trace() naturally reports the trail
  /// from the checkpointed frontier state onward.
  bool next_seed() {
    if (seeds_.empty()) return false;
    Frame f;
    f.state = std::move(seeds_.back().state);
    seeds_.pop_back();
    compressor_.compress_full(f.state, key_buf_, ids_tmp_.data());
    ++compress_full_;
    f.ids = ids_tmp_;
    stack_.push_back(std::move(f));
    return true;
  }

  std::uint64_t observer_bytes() const {
    return opt_.obs != nullptr ? opt_.obs->approx_bytes() : 0;
  }

  /// Telemetry tick, amortized like over_budget(): every kBudgetCheckStride
  /// expansion passes, publish the local tallies into this run's counter
  /// block (absolute relaxed stores), offer a rate-limited heartbeat, and
  /// emit the one-shot 80% budget warnings.
  void observe(std::uint64_t frontier_bytes) {
    if (blk_ == nullptr) return;
    if (++obs_tick_ % kBudgetCheckStride != 0) return;
    publish_counters();
    const std::uint64_t stored = visited_.size();
    opt_.obs->progress(stored, opt_.max_states);
    if (!warned_states_ && opt_.max_states > 0 &&
        stored >= opt_.max_states - opt_.max_states / 5) {
      warned_states_ = true;
      opt_.obs->budget_warning("max-states", stored, opt_.max_states);
    }
    if (!warned_memory_ && opt_.memory_budget_bytes > 0) {
      const std::uint64_t used =
          store_bytes() + frontier_bytes + observer_bytes();
      if (used >= opt_.memory_budget_bytes - opt_.memory_budget_bytes / 5) {
        warned_memory_ = true;
        opt_.obs->budget_warning("memory", used, opt_.memory_budget_bytes);
      }
    }
  }

  void publish_counters() {
    blk_->set(obs::Counter::StatesStored, visited_.size());
    blk_->set(obs::Counter::StatesMatched, matched_);
    blk_->set(obs::Counter::Transitions, transitions_);
    blk_->set(obs::Counter::PorAmpleSets, por_ample_);
    blk_->set(obs::Counter::CompressFull, compress_full_);
    blk_->set(obs::Counter::CompressDelta, compress_delta_);
  }

  std::uint64_t state_bytes() const {
    return static_cast<std::uint64_t>(m_.layout().size()) *
           sizeof(kernel::Value);
  }

  bool stopped() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  const Machine& m_;
  const Options& opt_;
  VisitedSet visited_;
  kernel::StateCompressor compressor_;
  const std::atomic<bool>* stop_ = nullptr;

  kernel::SuccScratch scratch_;
  std::vector<Frame> stack_;
  std::deque<BfsNode> nodes_;
  std::unordered_set<std::string> on_stack_;
  std::vector<std::uint8_t> key_buf_;
  std::vector<std::uint32_t> ids_tmp_;  // last-compressed state's region ids
  Pending pend_[2];  // engine-path probe pipeline, oldest first (DFS only)
  std::vector<std::uint8_t> dirty_;     // per-region dirty flags (reused)
  // Engine-specialized store path (null = generic compressor walk): set
  // when the engine open-codes this layout's dirty-mask and region-hash.
  const codegen::Engine* enc_engine_ = nullptr;
  std::vector<std::uint64_t> region_hashes_;  // per-region, dirty bits only
  std::string probe_buf_;

  std::uint64_t matched_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t budget_tick_ = 0;
  std::uint64_t frontier_bytes_ = 0;
  int max_depth_seen_ = 0;
  bool complete_ = true;
  TruncationReason truncation_ = TruncationReason::None;
  std::chrono::steady_clock::time_point start_{};

  obs::CounterBlock* blk_ = nullptr;  // this run's telemetry slice
  std::uint64_t obs_tick_ = 0;
  std::uint64_t por_ample_ = 0;
  std::uint64_t compress_full_ = 0;
  std::uint64_t compress_delta_ = 0;
  bool warned_states_ = false;
  bool warned_memory_ = false;

  // -- durability state ------------------------------------------------------
  std::unique_ptr<support::SpillPool> spill_;
  bool spilled_ = false;
  bool ckpt_failed_ = false;
  std::uint64_t ckpt_seq_ = 0;        // last committed sequence number
  std::uint64_t ckpt_written_ = 0;    // checkpoints committed by THIS run
  std::uint64_t last_ckpt_states_ = 0;
  std::int64_t bfs_head_ = 0;         // first unexpanded BFS node
  std::vector<Checkpoint::Pending> seeds_;     // resume frontier, unconsumed
  std::vector<Checkpoint::Pending> overflow_;  // stored-not-expanded on limit
};

/// The legacy copy-based engine, retained exclusively for swarm workers
/// with a nonzero permutation seed: shuffling a state's successor order
/// requires the whole list materialized, so these searches keep building
/// successor vectors and raw keys. Worker 0 of a swarm (seed 0) runs the
/// streaming engine above instead.
class PermutedRun {
 public:
  PermutedRun(const Machine& m, const Options& opt, std::uint64_t perm_seed,
              std::uint64_t bitstate_seed, const std::atomic<bool>* stop)
      : m_(m),
        opt_(opt),
        visited_(opt.bitstate, opt.bitstate_bytes, bitstate_seed),
        perm_seed_(perm_seed),
        stop_(stop) {
    if (opt.obs != nullptr) blk_ = opt.obs->recorder().open_block();
  }

  Result go() {
    start_ = std::chrono::steady_clock::now();
    Result r = opt_.bfs ? bfs() : dfs();
    r.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    r.stats.states_stored = visited_.size();
    r.stats.states_matched = matched_;
    r.stats.transitions = transitions_;
    r.stats.max_depth_reached = max_depth_seen_;
    r.stats.complete = complete_ && !opt_.bitstate;
    r.stats.store_bytes = visited_.approx_bytes();
    r.stats.approx_memory_bytes = visited_.approx_bytes() + frontier_bytes_;
    // A hard truncation (deadline, limit) is the more actionable
    // explanation; bitstate approximation is only reported when nothing
    // else cut the search short.
    r.stats.truncation = truncation_ != TruncationReason::None
                             ? truncation_
                             : (opt_.bitstate ? TruncationReason::BitstateApprox
                                              : TruncationReason::None);
    if (blk_ != nullptr) {
      publish_counters();
      opt_.obs->recorder().max_gauge(
          obs::Gauge::MaxDepthReached,
          static_cast<std::uint64_t>(max_depth_seen_));
      r.stats.approx_memory_bytes += opt_.obs->approx_bytes();
    }
    return r;
  }

 private:
  // DFS frames do NOT own their successor lists: only the top-of-stack
  // frame's successors are materialized (in a shared scratch vector) and
  // they are regenerated when the search returns to a frame.
  struct Frame {
    State state;
    std::string key;
    Step in_step;  // step that produced this state (invalid at root)
    std::uint32_t next = 0;
    bool checked = false;
    int por_choice = -1;  // recorded ample decision (see por_choose)
  };

  void truncate(TruncationReason why) {
    complete_ = false;
    if (truncation_ == TruncationReason::None) truncation_ = why;
  }

  bool over_budget(std::uint64_t frontier_bytes) {
    if (opt_.deadline_seconds <= 0.0 && opt_.memory_budget_bytes == 0)
      return false;
    if (++budget_tick_ % kBudgetCheckStride != 0) return false;
    frontier_bytes_ = frontier_bytes;
    if (opt_.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (elapsed >= opt_.deadline_seconds) {
        truncate(TruncationReason::Deadline);
        return true;
      }
    }
    if (opt_.memory_budget_bytes > 0 &&
        visited_.approx_bytes() + frontier_bytes +
                (opt_.obs != nullptr ? opt_.obs->approx_bytes() : 0) >=
            opt_.memory_budget_bytes) {
      truncate(TruncationReason::MemoryBudget);
      return true;
    }
    return false;
  }

  /// Swarm workers publish their tallies every kBudgetCheckStride
  /// expansions; the seeded searches overlap, so their counters are a
  /// coverage-effort measure, not a deduplicated state count.
  void observe() {
    if (blk_ == nullptr) return;
    if (++obs_tick_ % kBudgetCheckStride != 0) return;
    publish_counters();
    opt_.obs->progress(visited_.size(), opt_.max_states);
  }

  void publish_counters() {
    blk_->set(obs::Counter::StatesStored, visited_.size());
    blk_->set(obs::Counter::StatesMatched, matched_);
    blk_->set(obs::Counter::Transitions, transitions_);
    blk_->set(obs::Counter::PorAmpleSets, por_ample_);
  }

  /// Per-state checks (invariant, deadlock). Returns a violation or nullopt.
  std::optional<Violation> check_state(const State& s, bool has_succ) {
    if (auto v = invariant_violation(m_, opt_, s)) return v;
    if (!has_succ) return terminal_violation(m_, opt_, s);
    return std::nullopt;
  }

  trace::Trace stack_trace(const std::vector<Frame>& stack,
                           const Succ* extra) const {
    trace::Trace t;
    if (!opt_.want_trace) return t;
    for (std::size_t i = 1; i < stack.size(); ++i)
      t.steps.push_back(
          {stack[i].in_step, m_.describe_step(stack[i].in_step)});
    if (extra)
      t.steps.push_back({extra->second, m_.describe_step(extra->second)});
    const State& final_state =
        extra ? extra->first : stack.back().state;
    t.final_state = m_.format_state(final_state);
    return t;
  }

  Result dfs() {
    Result r;
    std::vector<Frame> stack;
    std::unordered_set<std::string> on_stack;
    const OnStackFn on_stack_fn = [&on_stack](const State& s) {
      return on_stack.contains(kernel::encode_key(s));
    };
    const OnStackFn* proviso = opt_.por ? &on_stack_fn : nullptr;

    Frame root;
    root.state = m_.initial();
    root.key = kernel::encode_key(root.state);
    visited_.insert(byte_span(root.key));
    stack.push_back(std::move(root));
    if (opt_.por) on_stack.insert(stack.back().key);

    std::vector<Succ> succs;          // successors of the top frame only
    std::ptrdiff_t succs_for = -1;    // stack index the scratch belongs to

    const std::uint64_t per_frame_bytes =
        sizeof(Frame) + 2 * state_bytes();  // state vector + encoded key
    while (!stack.empty()) {
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (over_budget(stack.size() * per_frame_bytes)) break;
      observe();
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(stack.size()) - 1;
      Frame& f = stack[static_cast<std::size_t>(idx)];
      if (succs_for != idx) {
        succs.clear();
        if (!f.checked && opt_.por) {
          f.por_choice = por_choose(m_, f.state, proviso, opt_.engine);
          if (f.por_choice >= 0) ++por_ample_;
        }
        if (opt_.por)
          por_expand(m_, f.state, f.por_choice, succs, opt_.engine);
        else if (opt_.engine)
          opt_.engine->successors(f.state, succs);
        else
          m_.successors(f.state, succs);
        if (perm_seed_ != 0) permute_succs(succs, perm_seed_, f.key);
        succs_for = idx;
        if (!f.checked) {
          f.checked = true;
          transitions_ += succs.size();
          max_depth_seen_ = std::max(max_depth_seen_, static_cast<int>(idx));
          if (auto v = check_state(f.state, !succs.empty())) {
            v->trace = stack_trace(stack, nullptr);
            r.violation = std::move(*v);
            return r;
          }
        }
      }
      if (f.next >= succs.size()) {
        if (opt_.por) on_stack.erase(f.key);
        stack.pop_back();
        succs_for = -1;
        continue;
      }
      Succ& succ = succs[f.next++];
      if (succ.second.assert_failed) {
        Violation v;
        v.kind = ViolationKind::AssertFailed;
        v.message = "assertion failed: " + m_.describe_step(succ.second);
        v.trace = stack_trace(stack, &succ);
        r.violation = std::move(v);
        return r;
      }
      std::string key = kernel::encode_key(succ.first);
      if (!visited_.insert(byte_span(key))) {
        ++matched_;
        continue;
      }
      if (visited_.size() >= opt_.max_states) {
        truncate(TruncationReason::MaxStates);
        continue;
      }
      if (static_cast<int>(stack.size()) > opt_.max_depth) {
        truncate(TruncationReason::MaxDepth);
        continue;
      }
      Frame nf;
      nf.state = std::move(succ.first);
      nf.key = std::move(key);
      nf.in_step = succ.second;
      if (opt_.por) on_stack.insert(nf.key);
      stack.push_back(std::move(nf));
      succs_for = -1;  // the new top needs its own successor list
    }
    return r;
  }

  Result bfs() {
    Result r;
    struct Node {
      State state;
      std::int64_t parent;
      Step in_step;
    };
    std::deque<Node> nodes;

    auto build_trace = [&](std::int64_t i, const Succ* extra) {
      trace::Trace t;
      if (!opt_.want_trace) return t;
      std::vector<trace::TraceStep> rev;
      for (std::int64_t j = i; j > 0; j = nodes[static_cast<std::size_t>(j)].parent)
        rev.push_back({nodes[static_cast<std::size_t>(j)].in_step,
                       m_.describe_step(nodes[static_cast<std::size_t>(j)].in_step)});
      t.steps.assign(rev.rbegin(), rev.rend());
      if (extra)
        t.steps.push_back({extra->second, m_.describe_step(extra->second)});
      t.final_state = m_.format_state(
          extra ? extra->first : nodes[static_cast<std::size_t>(i)].state);
      return t;
    };

    {
      Node root{m_.initial(), -1, {}};
      const std::string key = kernel::encode_key(root.state);
      visited_.insert(byte_span(key));
      nodes.push_back(std::move(root));
    }

    const std::uint64_t per_node_bytes = sizeof(Node) + 2 * state_bytes();
    std::vector<Succ> succs;
    for (std::int64_t head = 0; head < static_cast<std::int64_t>(nodes.size());
         ++head) {
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (over_budget(nodes.size() * per_node_bytes)) break;
      observe();
      succs.clear();
      if (opt_.por)
        por_successors(m_, nodes[static_cast<std::size_t>(head)].state, succs,
                       nullptr, opt_.engine);
      else if (opt_.engine)
        opt_.engine->successors(nodes[static_cast<std::size_t>(head)].state,
                                succs);
      else
        m_.successors(nodes[static_cast<std::size_t>(head)].state, succs);
      if (perm_seed_ != 0)
        permute_succs(
            succs, perm_seed_,
            kernel::encode_key(nodes[static_cast<std::size_t>(head)].state));
      transitions_ += succs.size();
      if (auto v = check_state(nodes[static_cast<std::size_t>(head)].state,
                               !succs.empty())) {
        v->trace = build_trace(head, nullptr);
        r.violation = std::move(*v);
        return r;
      }
      for (Succ& succ : succs) {
        if (succ.second.assert_failed) {
          Violation v;
          v.kind = ViolationKind::AssertFailed;
          v.message = "assertion failed: " + m_.describe_step(succ.second);
          v.trace = build_trace(head, &succ);
          r.violation = std::move(v);
          return r;
        }
        std::string key = kernel::encode_key(succ.first);
        if (!visited_.insert(byte_span(key))) {
          ++matched_;
          continue;
        }
        if (visited_.size() >= opt_.max_states) {
          truncate(TruncationReason::MaxStates);
          continue;
        }
        nodes.push_back({std::move(succ.first), head, succ.second});
      }
    }
    max_depth_seen_ = 0;  // depth tracking is a DFS notion
    return r;
  }

  std::uint64_t state_bytes() const {
    return static_cast<std::uint64_t>(m_.layout().size()) *
           sizeof(kernel::Value);
  }

  bool stopped() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  const Machine& m_;
  const Options& opt_;
  VisitedSet visited_;
  std::uint64_t perm_seed_ = 0;
  const std::atomic<bool>* stop_ = nullptr;
  std::uint64_t matched_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t budget_tick_ = 0;
  std::uint64_t frontier_bytes_ = 0;
  int max_depth_seen_ = 0;
  bool complete_ = true;
  TruncationReason truncation_ = TruncationReason::None;
  std::chrono::steady_clock::time_point start_{};

  obs::CounterBlock* blk_ = nullptr;
  std::uint64_t obs_tick_ = 0;
  std::uint64_t por_ample_ = 0;
};

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

Result run_single(const kernel::Machine& m, const Options& opt,
                  std::uint64_t perm_seed, std::uint64_t bitstate_seed,
                  const std::atomic<bool>* stop) {
  if (perm_seed == 0) {
    FlatRun run(m, opt, stop);
    return run.go();
  }
  PermutedRun run(m, opt, perm_seed, bitstate_seed, stop);
  return run.go();
}

}  // namespace detail

Result explore(const kernel::Machine& m, const Options& opt) {
  const int threads = resolve_threads(opt.threads);
  if (threads <= 1) {
    FlatRun run(m, opt, nullptr);
    return run.go();
  }
  return opt.bitstate ? detail::run_swarm(m, opt, threads)
                      : detail::run_parallel(m, opt, threads);
}

}  // namespace pnp::explore
