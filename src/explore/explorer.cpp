#include "explore/explorer.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "explore/por.h"
#include "explore/visited.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp::explore {

const char* violation_kind_name(ViolationKind k) {
  switch (k) {
    case ViolationKind::AssertFailed: return "assertion violation";
    case ViolationKind::Deadlock: return "invalid end state (deadlock)";
    case ViolationKind::InvariantViolated: return "invariant violation";
    case ViolationKind::EndInvariantViolated:
      return "end-state invariant violation";
    case ViolationKind::AcceptanceCycle: return "acceptance cycle (liveness violation)";
  }
  return "?";
}

const char* truncation_reason_name(TruncationReason r) {
  switch (r) {
    case TruncationReason::None: return "none";
    case TruncationReason::MaxStates: return "max-states limit reached";
    case TruncationReason::MaxDepth: return "max-depth limit reached";
    case TruncationReason::Deadline: return "wall-clock deadline exceeded";
    case TruncationReason::MemoryBudget: return "memory budget exceeded";
    case TruncationReason::BitstateApprox:
      return "bitstate hashing (probabilistic coverage)";
  }
  return "?";
}

namespace {

using kernel::Machine;
using kernel::State;
using kernel::Step;
using kernel::Succ;

/// Deterministic per-state successor shuffle for swarm workers: seeded by
/// (worker seed, state key hash) so regenerating a DFS frame's successor
/// list reproduces the exact same order.
void permute_succs(std::vector<Succ>& succs, std::uint64_t perm_seed,
                   const std::string& key) {
  if (succs.size() < 2) return;
  std::uint64_t x = avalanche64(
      perm_seed ^ hash_bytes({reinterpret_cast<const std::uint8_t*>(key.data()),
                              key.size()}));
  for (std::size_t i = succs.size() - 1; i > 0; --i) {
    // xorshift64* step, then reduce; bias is irrelevant here
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    const std::size_t j =
        static_cast<std::size_t>((x * 0x2545f4914f6cdd1dull) % (i + 1));
    std::swap(succs[i], succs[j]);
  }
}

class Run {
 public:
  Run(const Machine& m, const Options& opt, std::uint64_t perm_seed = 0,
      std::uint64_t bitstate_seed = 0, const std::atomic<bool>* stop = nullptr)
      : m_(m),
        opt_(opt),
        visited_(opt.bitstate, opt.bitstate_bytes, bitstate_seed),
        perm_seed_(perm_seed),
        stop_(stop) {}

  Result go() {
    start_ = std::chrono::steady_clock::now();
    Result r = opt_.bfs ? bfs() : dfs();
    r.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    r.stats.states_stored = visited_.size();
    r.stats.states_matched = matched_;
    r.stats.transitions = transitions_;
    r.stats.max_depth_reached = max_depth_seen_;
    r.stats.complete = complete_ && !opt_.bitstate;
    r.stats.approx_memory_bytes = visited_.approx_bytes() + frontier_bytes_;
    // A hard truncation (deadline, limit) is the more actionable
    // explanation; bitstate approximation is only reported when nothing
    // else cut the search short.
    r.stats.truncation = truncation_ != TruncationReason::None
                             ? truncation_
                             : (opt_.bitstate ? TruncationReason::BitstateApprox
                                              : TruncationReason::None);
    return r;
  }

 private:
  // DFS frames do NOT own their successor lists: only the top-of-stack
  // frame's successors are materialized (in a shared scratch vector) and
  // they are regenerated when the search returns to a frame. This trades
  // roughly branching-factor extra successor-generation work for a stack
  // whose memory is O(depth * state size) instead of
  // O(depth * branching * state size) -- the difference between fitting in
  // RAM and not on deep searches.
  struct Frame {
    State state;
    std::string key;
    Step in_step;  // step that produced this state (invalid at root)
    std::uint32_t next = 0;
    bool checked = false;
    int por_choice = -1;  // recorded ample decision (see por_choose)
  };

  void truncate(TruncationReason why) {
    complete_ = false;
    if (truncation_ == TruncationReason::None) truncation_ = why;
  }

  /// Deadline / memory check, amortized: the clock and the footprint sum
  /// are only consulted every `kBudgetCheckStride` expansions.
  /// `frontier_bytes` is the caller's estimate of search-structure memory
  /// beyond the visited set (DFS stack or BFS queue).
  bool over_budget(std::uint64_t frontier_bytes) {
    if (opt_.deadline_seconds <= 0.0 && opt_.memory_budget_bytes == 0)
      return false;
    if (++budget_tick_ % kBudgetCheckStride != 0) return false;
    frontier_bytes_ = frontier_bytes;
    if (opt_.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (elapsed >= opt_.deadline_seconds) {
        truncate(TruncationReason::Deadline);
        return true;
      }
    }
    if (opt_.memory_budget_bytes > 0 &&
        visited_.approx_bytes() + frontier_bytes >= opt_.memory_budget_bytes) {
      truncate(TruncationReason::MemoryBudget);
      return true;
    }
    return false;
  }

  /// Per-state checks (invariant, deadlock). Returns a violation or nullopt.
  std::optional<Violation> check_state(const State& s, bool has_succ) {
    if (opt_.invariant != expr::kNoExpr &&
        m_.eval_global(opt_.invariant, s) == 0) {
      Violation v;
      v.kind = ViolationKind::InvariantViolated;
      v.message = "invariant violated" +
                  (opt_.invariant_name.empty() ? std::string()
                                               : ": " + opt_.invariant_name);
      return v;
    }
    if (opt_.check_deadlock && !has_succ && !m_.is_valid_end(s)) {
      Violation v;
      v.kind = ViolationKind::Deadlock;
      v.message = "no executable transition and not all processes at a "
                  "valid end state";
      return v;
    }
    if (opt_.end_invariant != expr::kNoExpr && !has_succ &&
        m_.eval_global(opt_.end_invariant, s) == 0) {
      Violation v;
      v.kind = ViolationKind::EndInvariantViolated;
      v.message =
          "terminal state violates end invariant" +
          (opt_.end_invariant_name.empty()
               ? std::string()
               : ": " + opt_.end_invariant_name);
      return v;
    }
    return std::nullopt;
  }

  trace::Trace stack_trace(const std::vector<Frame>& stack,
                           const Succ* extra) const {
    trace::Trace t;
    if (!opt_.want_trace) return t;
    // Descriptions are rendered only here, on the cold path: the DFS push
    // path must not pay for string construction.
    for (std::size_t i = 1; i < stack.size(); ++i)
      t.steps.push_back(
          {stack[i].in_step, m_.describe_step(stack[i].in_step)});
    if (extra)
      t.steps.push_back({extra->second, m_.describe_step(extra->second)});
    const State& final_state =
        extra ? extra->first : stack.back().state;
    t.final_state = m_.format_state(final_state);
    return t;
  }

  Result dfs() {
    Result r;
    std::vector<Frame> stack;
    std::unordered_set<std::string> on_stack;
    const OnStackFn on_stack_fn = [&on_stack](const State& s) {
      return on_stack.contains(kernel::encode_key(s));
    };
    const OnStackFn* proviso = opt_.por ? &on_stack_fn : nullptr;

    Frame root;
    root.state = m_.initial();
    root.key = kernel::encode_key(root.state);
    visited_.insert(root.key);
    stack.push_back(std::move(root));
    if (opt_.por) on_stack.insert(stack.back().key);

    std::vector<Succ> succs;          // successors of the top frame only
    std::ptrdiff_t succs_for = -1;    // stack index the scratch belongs to

    const std::uint64_t per_frame_bytes =
        sizeof(Frame) + 2 * state_bytes();  // state vector + encoded key
    while (!stack.empty()) {
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (over_budget(stack.size() * per_frame_bytes)) break;
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(stack.size()) - 1;
      Frame& f = stack[static_cast<std::size_t>(idx)];
      if (succs_for != idx) {
        succs.clear();
        if (!f.checked && opt_.por) f.por_choice = por_choose(m_, f.state, proviso);
        if (opt_.por)
          por_expand(m_, f.state, f.por_choice, succs);
        else
          m_.successors(f.state, succs);
        if (perm_seed_ != 0) permute_succs(succs, perm_seed_, f.key);
        succs_for = idx;
        if (!f.checked) {
          f.checked = true;
          transitions_ += succs.size();
          max_depth_seen_ = std::max(max_depth_seen_, static_cast<int>(idx));
          if (auto v = check_state(f.state, !succs.empty())) {
            v->trace = stack_trace(stack, nullptr);
            r.violation = std::move(*v);
            return r;
          }
        }
      }
      if (f.next >= succs.size()) {
        if (opt_.por) on_stack.erase(f.key);
        stack.pop_back();
        succs_for = -1;
        continue;
      }
      Succ& succ = succs[f.next++];
      if (succ.second.assert_failed) {
        Violation v;
        v.kind = ViolationKind::AssertFailed;
        v.message = "assertion failed: " + m_.describe_step(succ.second);
        v.trace = stack_trace(stack, &succ);
        r.violation = std::move(v);
        return r;
      }
      std::string key = kernel::encode_key(succ.first);
      if (!visited_.insert(key)) {
        ++matched_;
        continue;
      }
      if (visited_.size() >= opt_.max_states) {
        truncate(TruncationReason::MaxStates);
        continue;
      }
      if (static_cast<int>(stack.size()) > opt_.max_depth) {
        truncate(TruncationReason::MaxDepth);
        continue;
      }
      Frame nf;
      nf.state = std::move(succ.first);
      nf.key = std::move(key);
      nf.in_step = succ.second;
      if (opt_.por) on_stack.insert(nf.key);
      stack.push_back(std::move(nf));
      succs_for = -1;  // the new top needs its own successor list
    }
    return r;
  }

  Result bfs() {
    Result r;
    struct Node {
      State state;
      std::int64_t parent;
      Step in_step;
    };
    std::deque<Node> nodes;
    std::unordered_map<std::string, std::int64_t> index;

    auto build_trace = [&](std::int64_t i, const Succ* extra) {
      trace::Trace t;
      if (!opt_.want_trace) return t;
      std::vector<trace::TraceStep> rev;
      for (std::int64_t j = i; j > 0; j = nodes[static_cast<std::size_t>(j)].parent)
        rev.push_back({nodes[static_cast<std::size_t>(j)].in_step,
                       m_.describe_step(nodes[static_cast<std::size_t>(j)].in_step)});
      t.steps.assign(rev.rbegin(), rev.rend());
      if (extra)
        t.steps.push_back({extra->second, m_.describe_step(extra->second)});
      t.final_state = m_.format_state(
          extra ? extra->first : nodes[static_cast<std::size_t>(i)].state);
      return t;
    };

    {
      Node root{m_.initial(), -1, {}};
      const std::string key = kernel::encode_key(root.state);
      visited_.insert(key);
      index.emplace(key, 0);
      nodes.push_back(std::move(root));
    }

    const std::uint64_t per_node_bytes =
        sizeof(Node) + 2 * state_bytes() + 64;  // node + key in index map
    std::vector<Succ> succs;
    for (std::int64_t head = 0; head < static_cast<std::int64_t>(nodes.size());
         ++head) {
      if (stopped()) {
        complete_ = false;
        break;
      }
      if (over_budget(nodes.size() * per_node_bytes)) break;
      succs.clear();
      if (opt_.por)
        por_successors(m_, nodes[static_cast<std::size_t>(head)].state, succs,
                       nullptr);
      else
        m_.successors(nodes[static_cast<std::size_t>(head)].state, succs);
      if (perm_seed_ != 0)
        permute_succs(
            succs, perm_seed_,
            kernel::encode_key(nodes[static_cast<std::size_t>(head)].state));
      transitions_ += succs.size();
      if (auto v = check_state(nodes[static_cast<std::size_t>(head)].state,
                               !succs.empty())) {
        v->trace = build_trace(head, nullptr);
        r.violation = std::move(*v);
        return r;
      }
      for (Succ& succ : succs) {
        if (succ.second.assert_failed) {
          Violation v;
          v.kind = ViolationKind::AssertFailed;
          v.message = "assertion failed: " + m_.describe_step(succ.second);
          v.trace = build_trace(head, &succ);
          r.violation = std::move(v);
          return r;
        }
        std::string key = kernel::encode_key(succ.first);
        if (!visited_.insert(key)) {
          ++matched_;
          continue;
        }
        if (visited_.size() >= opt_.max_states) {
          truncate(TruncationReason::MaxStates);
          continue;
        }
        index.emplace(std::move(key),
                      static_cast<std::int64_t>(nodes.size()));
        nodes.push_back({std::move(succ.first), head, succ.second});
      }
    }
    max_depth_seen_ = 0;  // depth tracking is a DFS notion
    return r;
  }

  std::uint64_t state_bytes() const {
    return static_cast<std::uint64_t>(m_.layout().size()) *
           sizeof(kernel::Value);
  }

  static constexpr std::uint64_t kBudgetCheckStride = 1024;

  bool stopped() const {
    return stop_ != nullptr && stop_->load(std::memory_order_relaxed);
  }

  const Machine& m_;
  const Options& opt_;
  VisitedSet visited_;
  std::uint64_t perm_seed_ = 0;
  const std::atomic<bool>* stop_ = nullptr;
  std::uint64_t matched_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t budget_tick_ = 0;
  std::uint64_t frontier_bytes_ = 0;
  int max_depth_seen_ = 0;
  bool complete_ = true;
  TruncationReason truncation_ = TruncationReason::None;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

int resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

Result run_single(const kernel::Machine& m, const Options& opt,
                  std::uint64_t perm_seed, std::uint64_t bitstate_seed,
                  const std::atomic<bool>* stop) {
  Run run(m, opt, perm_seed, bitstate_seed, stop);
  return run.go();
}

}  // namespace detail

Result explore(const kernel::Machine& m, const Options& opt) {
  const int threads = resolve_threads(opt.threads);
  if (threads <= 1) {
    Run run(m, opt);
    return run.go();
  }
  return opt.bitstate ? detail::run_swarm(m, opt, threads)
                      : detail::run_parallel(m, opt, threads);
}

}  // namespace pnp::explore
