// Explicit-state reachability exploration with safety checking.
//
// Checks, in one pass over the reachable state space:
//   * assertion violations (assert statements in the model),
//   * invalid end states (deadlock: no successor and some process not at a
//     valid end-state control point),
//   * a global state invariant (a closed expression over globals/channels
//     that must hold in every reachable state).
//
// DFS is the default; BFS yields shortest counterexamples. Optional
// partial-order reduction (safe ample sets over purely-local transitions)
// and double-bit bitstate hashing for very large spaces.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/machine.h"
#include "obs/obs.h"
#include "trace/trace.h"

namespace pnp::codegen {
class Engine;
}

namespace pnp::explore {

struct Options {
  std::uint64_t max_states = 20'000'000;
  int max_depth = 1'000'000;
  bool check_deadlock = true;
  expr::Ref invariant = expr::kNoExpr;  // closed over globals/channels
  std::string invariant_name;
  /// Must hold in every TERMINAL state (state without successors). Useful
  /// for "when the system finishes, X has happened" claims that would need
  /// fairness as LTL liveness.
  expr::Ref end_invariant = expr::kNoExpr;
  std::string end_invariant_name;
  bool por = false;       // partial-order reduction
  bool bfs = false;       // breadth-first (shortest counterexamples)
  bool bitstate = false;  // Bloom-filter visited set (approximate)
  std::uint64_t bitstate_bytes = std::uint64_t{1} << 24;
  bool want_trace = true;
  /// Wall-clock budget for the search; 0 disables. When exceeded, the
  /// search stops early and returns a partial result with
  /// `Stats::truncation == TruncationReason::Deadline`.
  double deadline_seconds = 0.0;
  /// Approximate cap on search memory (visited set + frontier); 0 disables.
  std::uint64_t memory_budget_bytes = 0;
  /// Worker threads for the search. 1 (the default) runs the sequential
  /// engine, bit-for-bit identical to prior behavior; 0 means hardware
  /// concurrency. With more than one thread, exact mode uses a sharded
  /// (lock-striped) visited set with a work-stealing frontier -- verdicts
  /// and, for complete runs, reached-state counts are independent of the
  /// thread count (counterexample trails may differ). Bitstate mode becomes
  /// swarm search: N independently seeded bitstate searches run concurrently
  /// and their verdicts are merged.
  int threads = 1;
  /// Observability context: engines publish counters into per-run blocks
  /// (opened on obs->recorder()), emit rate-limited Progress heartbeats,
  /// an 80% BudgetWarning per budget, and set store/frontier gauges. Null
  /// (the default) disables all of it at the cost of one branch per
  /// budget-check stride. The recorder's own footprint is charged against
  /// memory_budget_bytes, keeping the budget honest.
  obs::Observer* obs = nullptr;

  /// Compiled successor engine (codegen::make_engine). Null runs the
  /// interpreted Machine::visit_successors -- the historical path. Engines
  /// are drop-in equivalent (same successors, same order, same verdicts)
  /// and serve every search mode, including the POR ample probe and chosen
  /// expansion; engines with encode_support() additionally serve the
  /// COLLAPSE delta store path. Not owned; must outlive the exploration.
  const codegen::Engine* engine = nullptr;

  // -- durability (see DESIGN.md section 13) -------------------------------

  /// Directory for mmap'd spill files. When set, an exact engine that
  /// reaches the memory budget attaches disk-backed storage to its
  /// visited-key arena and compressor intern pools and keeps exploring
  /// (complete, exact) instead of truncating with MemoryBudget. The budget
  /// then governs the resident set; spilled pages are clean-evictable.
  std::string spill_dir;
  /// pnp.ckpt.v1 snapshot file. When set, exact engines write an
  /// atomically-committed checkpoint every `checkpoint_every` stored states
  /// and a final one on interrupt/deadline/truncation. Requires exact mode
  /// (not bitstate) and, for DFS, no partial-order reduction (the sequential
  /// ample-set proviso depends on the search stack, which a resumed run
  /// cannot reconstruct; BFS and parallel POR are stack-free and fine).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;
  /// Stamped into checkpoint headers and validated on resume, so a
  /// checkpoint can never silently continue under a different config.
  std::string config_digest;
  /// Seed the search from a previously read checkpoint instead of the
  /// machine's initial state. Not owned; must outlive the call.
  const struct Checkpoint* resume_from = nullptr;
  /// Cooperative interrupt (SIGINT/SIGTERM): engines write a final
  /// checkpoint (if configured) and stop with TruncationReason::Interrupted.
  const std::atomic<bool>* interrupt = nullptr;
};

/// Why an exploration stopped before covering the full state space.
enum class TruncationReason : std::uint8_t {
  None,           // search ran to completion
  MaxStates,      // Options::max_states reached
  MaxDepth,       // Options::max_depth reached (DFS only)
  Deadline,       // Options::deadline_seconds exceeded
  MemoryBudget,   // Options::memory_budget_bytes exceeded
  BitstateApprox, // bitstate hashing: coverage is probabilistic
  MemorySpilled,  // informational: budget hit, stores spilled, search went on
  Interrupted,    // SIGINT/SIGTERM: stopped after a final checkpoint
};

const char* truncation_reason_name(TruncationReason r);

enum class ViolationKind : std::uint8_t {
  AssertFailed,
  Deadlock,
  InvariantViolated,
  EndInvariantViolated,
  AcceptanceCycle,  // produced by the LTL product search
};

struct Violation {
  ViolationKind kind{};
  std::string message;
  trace::Trace trace;
};

/// One worker's slice of the merged totals in `Stats` (parallel/swarm runs).
struct WorkerStats {
  std::uint64_t states_stored = 0;  // fresh states this worker inserted
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  int max_depth_reached = 0;
  double seconds = 0.0;
};

struct Stats {
  std::uint64_t states_stored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  int max_depth_reached = 0;
  double seconds = 0.0;
  /// False when a limit (max_states / max_depth / deadline / memory)
  /// truncated the search or bitstate hashing made it approximate.
  bool complete = true;
  /// Structured explanation for `complete == false`.
  TruncationReason truncation = TruncationReason::None;
  /// Rough bytes held by the visited set and frontier at the end of the run.
  std::uint64_t approx_memory_bytes = 0;
  /// Peak bytes held by the visited store alone: probe tables + key arenas +
  /// component intern tables in exact mode, the Bloom filter in bitstate
  /// mode. This is the denominator-quality number for bytes/state; the
  /// store only grows, so its final size is its peak.
  std::uint64_t store_bytes = 0;
  /// Worker threads the search actually used.
  int threads = 1;
  /// True when the memory budget was reached and the stores switched to
  /// disk-backed (mmap) storage instead of truncating. A spilled run can
  /// still be complete -- that is the point.
  bool spilled = false;
  /// Disk-backed store bytes at the end of a spilled run (excluded from
  /// store_bytes, which reports the resident footprint).
  std::uint64_t spill_bytes = 0;
  /// Checkpoints committed during this run (periodic + final).
  std::uint64_t checkpoints_written = 0;
  /// True when the search was seeded from a checkpoint. states_stored then
  /// includes the states restored from it.
  bool resumed = false;
  /// Per-worker breakdown; empty for single-threaded runs. The totals above
  /// are the merged view (states_stored is the deduplicated global count in
  /// exact mode and the per-filter sum in swarm mode).
  std::vector<WorkerStats> workers;

  /// Stored states per wall-clock second. Runs under 1ms report 0: the
  /// steady-clock quantum makes such quotients garbage (a 40-state toy
  /// "exploring" at 10^8 st/s), and 0 is an honest "too fast to time".
  double states_per_second() const {
    return seconds >= 1e-3 ? static_cast<double>(states_stored) / seconds
                           : 0.0;
  }
  /// Visited-store bytes per stored state.
  double store_bytes_per_state() const {
    return states_stored > 0
               ? static_cast<double>(store_bytes) /
                     static_cast<double>(states_stored)
               : 0.0;
  }
};

struct Result {
  std::optional<Violation> violation;
  Stats stats;

  bool ok() const { return !violation.has_value(); }
};

const char* violation_kind_name(ViolationKind k);

Result explore(const kernel::Machine& m, const Options& opt = {});

/// Resolves an `Options::threads`-style request: 0 = hardware concurrency,
/// anything else clamped to >= 1.
int resolve_threads(int requested);

namespace detail {

/// Single-threaded engine with swarm hooks: `perm_seed != 0` permutes every
/// state's successor order with a deterministic per-state shuffle,
/// `bitstate_seed` perturbs the Bloom hash functions, and a set `stop` flag
/// aborts the search cooperatively. explore() uses (0, 0, nullptr), which is
/// exactly the historical sequential search.
Result run_single(const kernel::Machine& m, const Options& opt,
                  std::uint64_t perm_seed, std::uint64_t bitstate_seed,
                  const std::atomic<bool>* stop);

/// Exact parallel reachability: sharded visited set + work-stealing frontier.
Result run_parallel(const kernel::Machine& m, const Options& opt, int threads);

/// Swarm mode: N independently seeded bitstate searches run concurrently;
/// a violation found by any worker stops the swarm, otherwise every filter
/// runs to completion and coverage is the union.
Result run_swarm(const kernel::Machine& m, const Options& opt, int threads);

}  // namespace detail

}  // namespace pnp::explore
