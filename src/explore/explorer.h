// Explicit-state reachability exploration with safety checking.
//
// Checks, in one pass over the reachable state space:
//   * assertion violations (assert statements in the model),
//   * invalid end states (deadlock: no successor and some process not at a
//     valid end-state control point),
//   * a global state invariant (a closed expression over globals/channels
//     that must hold in every reachable state).
//
// DFS is the default; BFS yields shortest counterexamples. Optional
// partial-order reduction (safe ample sets over purely-local transitions)
// and double-bit bitstate hashing for very large spaces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kernel/machine.h"
#include "trace/trace.h"

namespace pnp::explore {

struct Options {
  std::uint64_t max_states = 20'000'000;
  int max_depth = 1'000'000;
  bool check_deadlock = true;
  expr::Ref invariant = expr::kNoExpr;  // closed over globals/channels
  std::string invariant_name;
  /// Must hold in every TERMINAL state (state without successors). Useful
  /// for "when the system finishes, X has happened" claims that would need
  /// fairness as LTL liveness.
  expr::Ref end_invariant = expr::kNoExpr;
  std::string end_invariant_name;
  bool por = false;       // partial-order reduction
  bool bfs = false;       // breadth-first (shortest counterexamples)
  bool bitstate = false;  // Bloom-filter visited set (approximate)
  std::uint64_t bitstate_bytes = std::uint64_t{1} << 24;
  bool want_trace = true;
  /// Wall-clock budget for the search; 0 disables. When exceeded, the
  /// search stops early and returns a partial result with
  /// `Stats::truncation == TruncationReason::Deadline`.
  double deadline_seconds = 0.0;
  /// Approximate cap on search memory (visited set + frontier); 0 disables.
  std::uint64_t memory_budget_bytes = 0;
};

/// Why an exploration stopped before covering the full state space.
enum class TruncationReason : std::uint8_t {
  None,           // search ran to completion
  MaxStates,      // Options::max_states reached
  MaxDepth,       // Options::max_depth reached (DFS only)
  Deadline,       // Options::deadline_seconds exceeded
  MemoryBudget,   // Options::memory_budget_bytes exceeded
  BitstateApprox, // bitstate hashing: coverage is probabilistic
};

const char* truncation_reason_name(TruncationReason r);

enum class ViolationKind : std::uint8_t {
  AssertFailed,
  Deadlock,
  InvariantViolated,
  EndInvariantViolated,
  AcceptanceCycle,  // produced by the LTL product search
};

struct Violation {
  ViolationKind kind{};
  std::string message;
  trace::Trace trace;
};

struct Stats {
  std::uint64_t states_stored = 0;
  std::uint64_t states_matched = 0;
  std::uint64_t transitions = 0;
  int max_depth_reached = 0;
  double seconds = 0.0;
  /// False when a limit (max_states / max_depth / deadline / memory)
  /// truncated the search or bitstate hashing made it approximate.
  bool complete = true;
  /// Structured explanation for `complete == false`.
  TruncationReason truncation = TruncationReason::None;
  /// Rough bytes held by the visited set and frontier at the end of the run.
  std::uint64_t approx_memory_bytes = 0;
};

struct Result {
  std::optional<Violation> violation;
  Stats stats;

  bool ok() const { return !violation.has_value(); }
};

const char* violation_kind_name(ViolationKind k);

Result explore(const kernel::Machine& m, const Options& opt = {});

}  // namespace pnp::explore
