// Flat visited-key storage: an open-addressing fingerprint table plus an
// append-only slab arena for the key bytes.
//
// The previous stores kept one heap-allocated std::string per state inside
// a node-based std::unordered_set -- three pointer chases and ~64 bytes of
// overhead per state. Here a state costs one slot in two parallel flat
// arrays (8-byte fingerprint + 4-byte arena offset) plus its key bytes
// (length-prefixed) in a slab arena that never moves or frees, so inserts
// are a single probe sequence and a bump-pointer append.
//
// Durability: a SpillPool (support/spill.h) can be attached at any point;
// slabs allocated after that are mmap'd file-backed blocks whose pages are
// clean-evictable, so the arena keeps growing past the memory budget while
// only the pre-spill slabs and the probe arrays stay unconditionally
// resident. Offsets, spans, and equals() work identically on both kinds of
// slab -- callers cannot tell where a record landed.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "support/panic.h"
#include "support/spill.h"

namespace pnp::explore {

/// Append-only arena for length-prefixed key records. Records never span a
/// slab boundary and slabs never move, so a returned offset stays valid for
/// the arena's lifetime.
class KeyArena {
 public:
  /// Appends `key` (2-byte length prefix + bytes) and returns its offset.
  std::uint32_t append(std::span<const std::uint8_t> key) {
    const std::size_t need = key.size() + 2;
    PNP_CHECK(key.size() <= 0xffff, "visited key exceeds 64 KiB");
    if (kSlabBytes - used_ < need) new_slab();
    const std::uint32_t off = static_cast<std::uint32_t>(
        (slabs_.size() - 1) * kSlabBytes + used_);
    std::uint8_t* dst = slabs_.back() + used_;
    dst[0] = static_cast<std::uint8_t>(key.size() & 0xff);
    dst[1] = static_cast<std::uint8_t>(key.size() >> 8);
    std::memcpy(dst + 2, key.data(), key.size());
    used_ += need;
    return off;
  }

  std::span<const std::uint8_t> at(std::uint32_t off) const {
    const std::uint8_t* p = slabs_[off / kSlabBytes] + off % kSlabBytes;
    const std::size_t len =
        static_cast<std::size_t>(p[0]) | (static_cast<std::size_t>(p[1]) << 8);
    return {p + 2, len};
  }

  bool equals(std::uint32_t off, std::span<const std::uint8_t> key) const {
    const std::span<const std::uint8_t> rec = at(off);
    return rec.size() == key.size() &&
           std::memcmp(rec.data(), key.data(), key.size()) == 0;
  }

  /// Slabs allocated from now on come from `pool` (disk-backed) instead of
  /// the heap. Existing slabs are untouched. Pass nullptr to detach. The
  /// pool must outlive the arena's last access.
  void attach_spill(support::SpillPool* pool) { spill_ = pool; }
  bool spilling() const { return spill_ != nullptr; }

  /// Total arena footprint, resident or not.
  std::uint64_t bytes() const { return slabs_.size() * kSlabBytes; }
  /// Heap (unconditionally resident) share of bytes().
  std::uint64_t resident_bytes() const { return heap_.size() * kSlabBytes; }
  /// Disk-backed (page-cache evictable) share of bytes().
  std::uint64_t spill_bytes() const {
    return (slabs_.size() - heap_.size()) * kSlabBytes;
  }

 private:
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 18;  // 256 KiB
  static constexpr std::size_t kMaxSlabs = (std::uint64_t{1} << 32) / kSlabBytes;

  void new_slab() {
    PNP_CHECK(slabs_.size() < kMaxSlabs,
              "visited-key arena exceeds 4 GiB (raise the memory budget "
              "or switch to bitstate mode)");
    if (spill_) {
      slabs_.push_back(static_cast<std::uint8_t*>(spill_->alloc(kSlabBytes)));
    } else {
      heap_.push_back(std::make_unique<std::uint8_t[]>(kSlabBytes));
      slabs_.push_back(heap_.back().get());
    }
    used_ = 0;
  }

  std::vector<std::uint8_t*> slabs_;  // heap- and spill-backed alike
  std::vector<std::unique_ptr<std::uint8_t[]>> heap_;  // owns the heap slabs
  support::SpillPool* spill_ = nullptr;  // not owned; frees on destruction
  std::size_t used_ = kSlabBytes;  // forces the first slab on first append
};

/// Open-addressing set of byte keys, probed by a caller-supplied 64-bit
/// hash. Key bytes live in the arena; the table itself is two flat arrays.
class FlatKeySet {
 public:
  explicit FlatKeySet(std::uint64_t expected = 0) {
    rehash(cap_for(expected));
  }

  /// Returns true if `key` was not present before (and records it). `h`
  /// must be the same hash function for every insert into this set.
  bool insert(std::span<const std::uint8_t> key, std::uint64_t h) {
    if ((size_ + 1) * 10 >= fps_.size() * 7) grow();
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (offs_[i] != kEmpty) {
      if (fps_[i] == h && arena_.equals(offs_[i], key)) return false;
      i = (i + 1) & mask_;
    }
    fps_[i] = h;
    offs_[i] = arena_.append(key);
    ++size_;
    return true;
  }

  std::uint64_t size() const { return size_; }

  /// Pre-sizes the table for `n` keys (never shrinks).
  void reserve(std::uint64_t n) {
    const std::size_t cap = cap_for(n);
    if (cap > fps_.size()) rehash(cap);
  }

  /// Calls `f(std::span<const std::uint8_t>)` once per stored key, in
  /// table order. Used by checkpointing to enumerate the visited set.
  template <class F>
  void for_each_key(F&& f) const {
    for (std::size_t i = 0; i < offs_.size(); ++i) {
      if (offs_[i] != kEmpty) f(arena_.at(offs_[i]));
    }
  }

  /// New arena slabs spill to `pool` from now on (see KeyArena).
  void attach_spill(support::SpillPool* pool) { arena_.attach_spill(pool); }
  bool spilling() const { return arena_.spilling(); }

  /// Resident footprint: probe arrays + heap arena slabs. Spilled slabs are
  /// deliberately excluded -- their pages are clean-evictable, which is the
  /// whole point of spilling.
  std::uint64_t approx_bytes() const {
    return fps_.capacity() * sizeof(std::uint64_t) +
           offs_.capacity() * sizeof(std::uint32_t) + arena_.resident_bytes();
  }

  /// Disk-backed share of the arena.
  std::uint64_t spill_bytes() const { return arena_.spill_bytes(); }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  static std::size_t cap_for(std::uint64_t expected) {
    // smallest power of two holding `expected` at <= 0.7 load
    std::size_t cap = 64;
    while (cap * 7 < (expected + 1) * 10) cap <<= 1;
    return cap;
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> fps(cap, 0);
    std::vector<std::uint32_t> offs(cap, kEmpty);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < fps_.size(); ++i) {
      if (offs_[i] == kEmpty) continue;
      std::size_t j = static_cast<std::size_t>(fps_[i]) & mask;
      while (offs[j] != kEmpty) j = (j + 1) & mask;
      fps[j] = fps_[i];
      offs[j] = offs_[i];
    }
    fps_ = std::move(fps);
    offs_ = std::move(offs);
    mask_ = mask;
  }

  void grow() { rehash(fps_.size() * 2); }

  std::vector<std::uint64_t> fps_;
  std::vector<std::uint32_t> offs_;
  KeyArena arena_;
  std::uint64_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace pnp::explore
