// Flat visited-key storage: an open-addressing fingerprint table plus an
// append-only slab arena for the key bytes.
//
// The previous stores kept one heap-allocated std::string per state inside
// a node-based std::unordered_set -- three pointer chases and ~64 bytes of
// overhead per state. Here a state costs one 8-byte {offset, fingerprint}
// slot in a flat huge-page-backed table plus its key bytes (length-prefixed)
// in a slab arena that never moves or frees, so inserts are a single probe
// sequence and a bump-pointer append.
//
// Durability: a SpillPool (support/spill.h) can be attached at any point;
// slabs allocated after that are mmap'd file-backed blocks whose pages are
// clean-evictable, so the arena keeps growing past the memory budget while
// only the pre-spill slabs and the probe arrays stay unconditionally
// resident. Offsets, spans, and equals() work identically on both kinds of
// slab -- callers cannot tell where a record landed.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "support/hash.h"
#include "support/panic.h"
#include "support/spill.h"

namespace pnp::explore {

/// Anonymous mapping advised onto transparent huge pages. The visited
/// table is probed at a random slot per insert; at millions of states the
/// table spans hundreds of megabytes, so with 4 KiB pages nearly every
/// probe adds a dTLB miss on top of the unavoidable cache miss. 2 MiB
/// pages cover the whole table with a few dozen TLB entries. Falls back to
/// plain operator new when mmap is unavailable (non-Linux, or mmap
/// failure) -- callers only see zeroed memory either way.
class HugeZeroBuf {
 public:
  HugeZeroBuf() = default;
  explicit HugeZeroBuf(std::size_t bytes) { allocate(bytes); }
  ~HugeZeroBuf() { release(); }

  HugeZeroBuf(HugeZeroBuf&& o) noexcept { *this = std::move(o); }
  HugeZeroBuf& operator=(HugeZeroBuf&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      bytes_ = o.bytes_;
      mapped_ = o.mapped_;
      o.data_ = nullptr;
      o.bytes_ = 0;
      o.mapped_ = false;
    }
    return *this;
  }
  HugeZeroBuf(const HugeZeroBuf&) = delete;
  HugeZeroBuf& operator=(const HugeZeroBuf&) = delete;

  void* data() const { return data_; }
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr std::size_t kHuge = std::size_t{2} << 20;

  void allocate(std::size_t bytes) {
    bytes_ = bytes;
#if defined(__linux__)
    if (bytes >= kHuge) {
      const std::size_t len = (bytes + kHuge - 1) & ~(kHuge - 1);
      void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p != MAP_FAILED) {
        ::madvise(p, len, MADV_HUGEPAGE);
        data_ = p;
        bytes_ = len;
        mapped_ = true;
        return;
      }
    }
#endif
    data_ = ::operator new(bytes);
    std::memset(data_, 0, bytes);
  }

  void release() {
#if defined(__linux__)
    if (mapped_) {
      ::munmap(data_, bytes_);
      data_ = nullptr;
      mapped_ = false;
      return;
    }
#endif
    if (data_ != nullptr) ::operator delete(data_);
    data_ = nullptr;
  }

  void* data_ = nullptr;
  std::size_t bytes_ = 0;
  bool mapped_ = false;
};

/// Append-only arena for length-prefixed key records. Records never span a
/// slab boundary and slabs never move, so a returned offset stays valid for
/// the arena's lifetime.
class KeyArena {
 public:
  /// Appends `key` (2-byte length prefix + bytes) and returns its offset.
  std::uint32_t append(std::span<const std::uint8_t> key) {
    const std::size_t need = key.size() + 2;
    PNP_CHECK(key.size() <= 0xffff, "visited key exceeds 64 KiB");
    if (kSlabBytes - used_ < need) new_slab();
    const std::uint32_t off = static_cast<std::uint32_t>(
        (slabs_.size() - 1) * kSlabBytes + used_);
    std::uint8_t* dst = slabs_.back() + used_;
    dst[0] = static_cast<std::uint8_t>(key.size() & 0xff);
    dst[1] = static_cast<std::uint8_t>(key.size() >> 8);
    std::memcpy(dst + 2, key.data(), key.size());
    used_ += need;
    return off;
  }

  std::span<const std::uint8_t> at(std::uint32_t off) const {
    const std::uint8_t* p = slabs_[off / kSlabBytes] + off % kSlabBytes;
    const std::size_t len =
        static_cast<std::size_t>(p[0]) | (static_cast<std::size_t>(p[1]) << 8);
    return {p + 2, len};
  }

  bool equals(std::uint32_t off, std::span<const std::uint8_t> key) const {
    const std::span<const std::uint8_t> rec = at(off);
    return rec.size() == key.size() &&
           std::memcmp(rec.data(), key.data(), key.size()) == 0;
  }

  /// Hints the cache that the record at `off` is about to be read. Two
  /// lines: a typical key straddles a line boundary often enough that the
  /// second serial miss would eat most of the hint's win.
  void prefetch(std::uint32_t off) const {
    const std::uint8_t* p = slabs_[off / kSlabBytes] + off % kSlabBytes;
    __builtin_prefetch(p);
    __builtin_prefetch(p + 64);
  }

  /// Slabs allocated from now on come from `pool` (disk-backed) instead of
  /// the heap. Existing slabs are untouched, but the current slab is sealed
  /// so the very next append already lands on the new backing -- "after
  /// attach, keys go to disk" must not depend on how full the last heap
  /// slab happens to be (offsets are absolute, so sealing only wastes the
  /// slab's tail). Pass nullptr to detach. The pool must outlive the
  /// arena's last access.
  void attach_spill(support::SpillPool* pool) {
    if (pool != spill_) used_ = kSlabBytes;
    spill_ = pool;
  }
  bool spilling() const { return spill_ != nullptr; }

  /// Total arena footprint, resident or not.
  std::uint64_t bytes() const { return slabs_.size() * kSlabBytes; }
  /// Heap (unconditionally resident) share of bytes().
  std::uint64_t resident_bytes() const { return heap_.size() * kSlabBytes; }
  /// Disk-backed (page-cache evictable) share of bytes().
  std::uint64_t spill_bytes() const {
    return (slabs_.size() - heap_.size()) * kSlabBytes;
  }

 private:
  // 2 MiB slabs sit on one transparent huge page each: duplicate-candidate
  // confirms read the arena at random offsets, and the huge mapping spares
  // them the per-read dTLB miss the old 256 KiB heap slabs paid.
  static constexpr std::size_t kSlabBytes = std::size_t{2} << 20;
  static constexpr std::size_t kMaxSlabs = (std::uint64_t{1} << 32) / kSlabBytes;

  void new_slab() {
    PNP_CHECK(slabs_.size() < kMaxSlabs,
              "visited-key arena exceeds 4 GiB (raise the memory budget "
              "or switch to bitstate mode)");
    if (spill_) {
      slabs_.push_back(static_cast<std::uint8_t*>(spill_->alloc(kSlabBytes)));
    } else {
      heap_.emplace_back(kSlabBytes);
      slabs_.push_back(static_cast<std::uint8_t*>(heap_.back().data()));
    }
    used_ = 0;
  }

  std::vector<std::uint8_t*> slabs_;  // heap- and spill-backed alike
  std::vector<HugeZeroBuf> heap_;     // owns the heap slabs
  support::SpillPool* spill_ = nullptr;  // not owned; frees on destruction
  std::size_t used_ = kSlabBytes;  // forces the first slab on first append
};

/// Open-addressing set of byte keys, probed by a caller-supplied 64-bit
/// hash. Key bytes live in the arena; the table is ONE flat array of 8-byte
/// {offset, fingerprint} slots. Interleaving matters: the table is far
/// larger than cache on big runs, so a probe that touched parallel
/// fingerprint and offset arrays cost two DRAM misses where one slot read
/// costs one -- and insert() is the hottest call in exact-mode exploration
/// (~60% of a profiled bridge run). The stored fingerprint is the hash's
/// low 32 bits; a fingerprint match is confirmed against the arena bytes,
/// so truncation can cause a rare extra compare, never a wrong answer. The
/// probe index is also derived from the low hash bits, which is what lets
/// rehash() re-place slots without the full 64-bit hash. (A variant that
/// stored short keys inline in 32-byte slots was measured slower here:
/// linear-probe clusters span 4x the cache lines, and the 4x table defeats
/// the TLB on kernels without transparent huge pages.)
class FlatKeySet {
 public:
  explicit FlatKeySet(std::uint64_t expected = 0) {
    rehash(cap_for(expected));
  }

  /// Hints the cache that `h`'s first probe slot is about to be read. An
  /// insert that grows the table in between simply wastes the hint.
  void prefetch(std::uint64_t h) const {
    if (slots_ != nullptr)
      __builtin_prefetch(&slots_[static_cast<std::size_t>(h) & mask_]);
  }

  /// Returns true if `key` was not present before (and records it). `h`
  /// must be the same hash function for every insert into this set.
  bool insert(std::span<const std::uint8_t> key, std::uint64_t h) {
    if ((size_ + 1) * 10 >= cap_ * 7) grow();
    const std::uint32_t fp = static_cast<std::uint32_t>(h);
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (slots_[i].off1 != 0) {
      if (slots_[i].fp == fp && arena_.equals(slots_[i].off1 - 1, key))
        return false;
      i = (i + 1) & mask_;
    }
    slots_[i].fp = fp;
    slots_[i].off1 = arena_.append(key) + 1;
    ++size_;
    return true;
  }

  /// Result of probe_or_insert: `fresh` means the key was definitely absent
  /// and has been inserted; otherwise `off` is the arena offset of the
  /// first fingerprint match, to be settled by confirm_or_insert.
  struct Staged {
    bool fresh;
    std::uint32_t off;
  };

  /// First half of a split insert: walks `h`'s cluster and inserts the key
  /// outright when no stored fingerprint matches (the definitely-fresh
  /// case). On a fingerprint match it leaves the table unchanged,
  /// prefetches the matching record's bytes, and returns the offset for a
  /// later confirm_or_insert. An insert is two DEPENDENT memory reads --
  /// probe slot, then key bytes at the offset the slot holds -- and on big
  /// tables both are DRAM misses the out-of-order window cannot hide;
  /// splitting them across two calls lets a pipelined caller overlay each
  /// with real work (the explorer overlays successor generation).
  Staged probe_or_insert(std::span<const std::uint8_t> key, std::uint64_t h) {
    if ((size_ + 1) * 10 >= cap_ * 7) grow();
    const std::uint32_t fp = static_cast<std::uint32_t>(h);
    std::size_t i = static_cast<std::size_t>(h) & mask_;
    while (slots_[i].off1 != 0) {
      if (slots_[i].fp == fp) {
        const std::uint32_t off = slots_[i].off1 - 1;
        arena_.prefetch(off);
        return {false, off};
      }
      i = (i + 1) & mask_;
    }
    slots_[i].fp = fp;
    slots_[i].off1 = arena_.append(key) + 1;
    ++size_;
    return {true, 0};
  }

  /// Second half: settles a probe_or_insert fingerprint match. Returns
  /// false when the record equals `key` (a genuine duplicate -- the common
  /// case); a fingerprint collision falls back to a full insert, which
  /// steps past the colliding slot and probes on. Intervening inserts and
  /// grows are fine: arena offsets never move.
  bool confirm_or_insert(std::span<const std::uint8_t> key, std::uint64_t h,
                         std::uint32_t off) {
    if (arena_.equals(off, key)) return false;
    return insert(key, h);
  }

  std::uint64_t size() const { return size_; }

  /// Pre-sizes the table for `n` keys (never shrinks).
  void reserve(std::uint64_t n) {
    const std::size_t cap = cap_for(n);
    if (cap > cap_) rehash(cap);
  }

  /// Calls `f(std::span<const std::uint8_t>)` once per stored key, in
  /// table order. Used by checkpointing to enumerate the visited set.
  template <class F>
  void for_each_key(F&& f) const {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (slots_[i].off1 != 0) f(arena_.at(slots_[i].off1 - 1));
    }
  }

  /// New arena slabs spill to `pool` from now on (see KeyArena).
  void attach_spill(support::SpillPool* pool) { arena_.attach_spill(pool); }
  bool spilling() const { return arena_.spilling(); }

  /// Resident footprint: probe arrays + heap arena slabs. Spilled slabs are
  /// deliberately excluded -- their pages are clean-evictable, which is the
  /// whole point of spilling.
  std::uint64_t approx_bytes() const {
    return cap_ * sizeof(Slot) + arena_.resident_bytes();
  }

  /// Disk-backed share of the arena.
  std::uint64_t spill_bytes() const { return arena_.spill_bytes(); }

 private:
  static std::size_t cap_for(std::uint64_t expected) {
    // smallest power of two holding `expected` at <= 0.7 load
    std::size_t cap = 64;
    while (cap * 7 < (expected + 1) * 10) cap <<= 1;
    return cap;
  }

  // off1 is the arena offset + 1, so the all-zeroes slot a fresh mapping
  // starts with means "free" (kernel zero pages, no memset pass).
  struct Slot {
    std::uint32_t off1;  // arena offset + 1; 0 marks a free slot
    std::uint32_t fp;    // low 32 bits of the key hash
  };

  void rehash(std::size_t cap) {
    // The probe index comes from the stored 32-bit fingerprint, so the
    // table cannot outgrow 2^32 slots -- the 4 GiB arena overflows first.
    PNP_CHECK(cap <= (std::size_t{1} << 32),
              "visited table exceeds 2^32 slots");
    HugeZeroBuf buf(cap * sizeof(Slot));
    Slot* slots = static_cast<Slot*>(buf.data());
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < cap_; ++i) {
      const Slot& s = slots_[i];
      if (s.off1 == 0) continue;
      std::size_t j = static_cast<std::size_t>(s.fp) & mask;
      while (slots[j].off1 != 0) j = (j + 1) & mask;
      slots[j] = s;
    }
    buf_ = std::move(buf);
    slots_ = slots;
    cap_ = cap;
    mask_ = mask;
  }

  void grow() { rehash(cap_ * 2); }

  HugeZeroBuf buf_;
  Slot* slots_ = nullptr;
  std::size_t cap_ = 0;
  KeyArena arena_;
  std::uint64_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace pnp::explore
