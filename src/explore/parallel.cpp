// Multi-core exploration engines.
//
// Exact mode (run_parallel): every worker owns a deque of pending states
// and steals from its peers when it runs dry; the visited set is the
// lock-striped ShardedVisitedSet over flat probe tables, keyed by the
// COLLAPSE-compressed state encoding (a shared lock-striped
// StateCompressor interns the components), so the reached-state set -- and
// therefore the verdict and the stored-state count of a complete run -- is
// identical at every thread count. Successors are streamed from per-worker
// mutate-and-revert scratch; only genuinely fresh states are copied.
// Counterexamples are reconstructed from per-worker parent-edge arenas
// after the winning worker flags a violation, so trails stay exact (their
// shape may differ run to run; the verdict may not).
//
// Atomic regions and rendezvous handshakes never interleave across workers
// by construction: Machine::visit_successors() expands a whole state at a
// time -- an atomic region is carried IN the state (atomic_pid) and a
// handshake is a single composite step -- so one worker always computes the
// complete successor bundle of the state it popped.
//
// Swarm mode (run_swarm): N fully independent bitstate searches, each with
// its own Bloom filter seed and a deterministic per-state successor
// shuffle. A violation found by any worker stops the swarm; otherwise every
// filter runs to completion and coverage is the union of the filters.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "codegen/engine.h"
#include "explore/checkpoint.h"
#include "explore/explorer.h"
#include "explore/por.h"
#include "explore/visited.h"
#include "kernel/compress.h"
#include "support/hash.h"
#include "support/panic.h"
#include "support/spill.h"

namespace pnp::explore {
namespace detail {

namespace {

using kernel::Machine;
using kernel::State;
using kernel::Step;

constexpr std::uint64_t kNoGid = ~std::uint64_t{0};

/// Mirrors the sequential engine's visited-table pre-size policy.
std::uint64_t expected_states(const Options& opt) {
  return std::min<std::uint64_t>(opt.max_states, std::uint64_t{1} << 16);
}

class ParallelRun {
 public:
  ParallelRun(const Machine& m, const Options& opt, int threads)
      : m_(m),
        opt_(opt),
        n_(threads),
        workers_(static_cast<std::size_t>(threads)),
        visited_(expected_states(opt)),
        compressor_(m.layout(), /*stripes=*/16) {
    if (opt.obs != nullptr)
      for (Worker& w : workers_) w.blk = opt.obs->recorder().open_block();
    if (opt.resume_from != nullptr) {
      PNP_CHECK(opt.resume_from->meta.state_size == m.layout().size(),
                "checkpoint state size does not match this machine");
    }
  }

  Result go() {
    start_ = std::chrono::steady_clock::now();
    active_ = n_;
    if (opt_.resume_from != nullptr)
      seed_resume();
    else
      seed_root();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(n_));
    for (int w = 0; w < n_; ++w)
      threads.emplace_back([this, w] { work(w); });
    for (std::thread& t : threads) t.join();
    return finish();
  }

 private:
  /// A pending state. `gid` indexes the parent-edge arena entry recorded for
  /// it (kNoGid for the root, or always when traces are off); `depth` is the
  /// BFS/DFS depth for max_depth accounting.
  struct Item {
    State state;
    std::uint64_t gid = kNoGid;
    std::uint32_t depth = 0;
  };

  /// Parent edge for counterexample reconstruction. Owner-written during the
  /// search, read only after all workers joined.
  struct Node {
    std::uint64_t parent = kNoGid;
    Step in_step;
  };

  struct alignas(64) Worker {
    std::mutex mu;
    std::deque<Item> queue;
    std::deque<Node> nodes;  // stable addresses; grows only
    WorkerStats stats;
    std::uint64_t budget_tick = 0;
    kernel::SuccScratch scratch;         // mutate-and-revert workspace
    std::vector<std::uint8_t> key_buf;   // compressed-key scratch
    obs::CounterBlock* blk = nullptr;    // this worker's telemetry slice
    std::uint64_t obs_tick = 0;
    std::uint64_t por_ample = 0;
    // Stored-but-never-queued states (max_states/max_depth), kept so a
    // final checkpoint's frontier is exactly where this run stopped.
    std::vector<Checkpoint::Pending> overflow;
  };

  /// First violation wins; everything needed to rebuild the trail after the
  /// workers joined.
  struct Win {
    Violation violation;
    std::uint64_t gid = kNoGid;      // node of the state being expanded
    std::optional<Step> extra_step;  // assert step beyond that state, if any
    State final_state;
  };

  static std::uint64_t make_gid(int w, std::uint64_t index) {
    return (static_cast<std::uint64_t>(w) << 40) | index;
  }

  void seed_root() {
    Item root;
    root.state = m_.initial();
    Worker& w0 = workers_[0];
    compressor_.compress(root.state, w0.key_buf);
    visited_.insert(w0.key_buf, ShardedVisitedSet::hash_key(w0.key_buf));
    // The root insert is nobody's WorkerStats; charge it to the recorder's
    // base block so the merged StatesStored total matches visited_.size().
    if (opt_.obs != nullptr)
      opt_.obs->recorder().add(obs::Counter::StatesStored, 1);
    inflight_.store(1, std::memory_order_relaxed);
    w0.queue.push_back(std::move(root));
  }

  /// Re-seeds the shared store from a checkpoint and deals the frontier
  /// round-robin across the workers' queues. Frontier items are parentless
  /// (gid == kNoGid): a trail found after resume starts at a checkpointed
  /// frontier state.
  void seed_resume() {
    const Checkpoint& c = *opt_.resume_from;
    Worker& w0 = workers_[0];
    for (const State& s : c.visited) {
      compressor_.compress(s, w0.key_buf);
      visited_.insert(w0.key_buf, ShardedVisitedSet::hash_key(w0.key_buf));
    }
    base_matched_ = c.meta.states_matched;
    base_transitions_ = c.meta.transitions;
    ckpt_seq_ = c.meta.seq;
    last_ckpt_states_.store(visited_.size(), std::memory_order_relaxed);
    std::int64_t inflight = 0;
    for (std::size_t i = 0; i < c.frontier.size(); ++i) {
      Item it;
      it.state = c.frontier[i].state;
      it.depth = c.frontier[i].depth;
      workers_[i % static_cast<std::size_t>(n_)].queue.push_back(
          std::move(it));
      ++inflight;
    }
    inflight_.store(inflight, std::memory_order_relaxed);
    if (opt_.obs != nullptr) {
      // Restored states are nobody's WorkerStats; charge them to the base
      // block so the merged StatesStored total matches visited_.size().
      opt_.obs->recorder().add(obs::Counter::StatesStored, visited_.size());
      opt_.obs->resumed(opt_.checkpoint_path, visited_.size());
    }
  }

  /// Commits a consistent cut. Callers must have quiesced the workers (the
  /// barrier during the run, or joined threads afterwards). I/O failure
  /// disables further checkpoints rather than aborting the verification.
  void commit_checkpoint() {
    CheckpointMeta meta;
    meta.config_digest = opt_.config_digest;
    meta.state_size = static_cast<std::uint32_t>(m_.layout().size());
    meta.states_matched = base_matched_;
    meta.transitions = base_transitions_;
    for (Worker& w : workers_) {
      meta.states_matched += w.stats.states_matched;
      meta.transitions += w.stats.transitions;
    }
    meta.seq = ckpt_seq_ + 1;
    try {
      write_checkpoint(
          opt_.checkpoint_path, meta,
          [&](const StateSink& sink) {
            visited_.for_each_key([&](std::span<const std::uint8_t> key) {
              sink(compressor_.decompress(key), 0);
            });
          },
          [&](const StateSink& sink) {
            for (Worker& w : workers_) {
              std::lock_guard<std::mutex> lock(w.mu);
              for (const Item& it : w.queue) sink(it.state, it.depth);
              for (const Checkpoint::Pending& p : w.overflow)
                sink(p.state, p.depth);
            }
          });
    } catch (const ModelError&) {
      ckpt_failed_ = true;
      if (opt_.obs != nullptr)
        opt_.obs->budget_warning("checkpoint-io", ckpt_seq_ + 1, 0);
      return;
    }
    ++ckpt_seq_;
    ++ckpt_written_;
    last_ckpt_states_.store(visited_.size(), std::memory_order_relaxed);
    if (opt_.obs != nullptr)
      opt_.obs->checkpointed(opt_.checkpoint_path, visited_.size(),
                             ckpt_seq_);
  }

  bool pop_own(Worker& me, Item& out) {
    std::lock_guard<std::mutex> lock(me.mu);
    if (me.queue.empty()) return false;
    if (opt_.bfs) {
      out = std::move(me.queue.front());
      me.queue.pop_front();
    } else {
      out = std::move(me.queue.back());
      me.queue.pop_back();
    }
    return true;
  }

  bool steal(int w, Item& out) {
    for (int i = 1; i < n_; ++i) {
      Worker& victim = workers_[static_cast<std::size_t>((w + i) % n_)];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (victim.queue.empty()) continue;
      // steal the oldest item: closest to the root, largest subtree
      out = std::move(victim.queue.front());
      victim.queue.pop_front();
      return true;
    }
    return false;
  }

  void push(Worker& me, Item item) {
    inflight_.fetch_add(1, std::memory_order_release);
    std::lock_guard<std::mutex> lock(me.mu);
    me.queue.push_back(std::move(item));
  }

  void work(int w) {
    Worker& me = workers_[static_cast<std::size_t>(w)];
    const auto t0 = std::chrono::steady_clock::now();
    while (!stop_.load(std::memory_order_relaxed)) {
      ckpt_point(me);
      Item item;
      if (!pop_own(me, item) && !steal(w, item)) {
        if (inflight_.load(std::memory_order_acquire) == 0) break;
        std::this_thread::yield();
        continue;
      }
      expand(w, me, item);
      inflight_.fetch_sub(1, std::memory_order_release);
      observe(me);
    }
    // Retire from the checkpoint barrier so a coordinator never waits for a
    // worker that already exited.
    {
      std::lock_guard<std::mutex> lock(park_mu_);
      --active_;
    }
    park_cv_.notify_all();
    me.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  // -- checkpoint barrier ----------------------------------------------------
  //
  // Periodic checkpoints need a consistent cut of a mutating shared store.
  // The worker that notices the stride elapsed elects itself coordinator
  // (CAS on ckpt_request_); everyone else parks at the top of their work
  // loop. When parked_ == active_ the world is quiesced -- no in-flight
  // expansions, every queued item unexpanded -- and the coordinator commits
  // the snapshot single-threadedly, then releases the barrier. Interrupts
  // skip the barrier entirely: they stop the run and the final checkpoint is
  // written after the workers joined.

  bool interrupt_requested() const {
    return opt_.interrupt != nullptr &&
           opt_.interrupt->load(std::memory_order_relaxed);
  }

  bool ckpt_enabled() const {
    return !opt_.checkpoint_path.empty() && !ckpt_failed_;
  }

  void ckpt_point(Worker& me) {
    if (interrupt_requested()) {
      truncate(TruncationReason::Interrupted);  // stops every worker
      return;
    }
    if (ckpt_request_.load(std::memory_order_acquire)) {
      park(me);
      return;
    }
    if (!ckpt_enabled() || opt_.checkpoint_every == 0) return;
    if (visited_.size() <
        last_ckpt_states_.load(std::memory_order_relaxed) +
            opt_.checkpoint_every)
      return;
    bool expected = false;
    if (!ckpt_request_.compare_exchange_strong(expected, true))
      return;  // lost the election; next loop iteration parks
    coordinate();
  }

  void park(Worker&) {
    std::unique_lock<std::mutex> lock(park_mu_);
    ++parked_;
    park_cv_.notify_all();
    park_cv_.wait(lock, [&] {
      return !ckpt_request_.load(std::memory_order_acquire) ||
             stop_.load(std::memory_order_relaxed);
    });
    --parked_;
  }

  void coordinate() {
    {
      std::unique_lock<std::mutex> lock(park_mu_);
      ++parked_;  // count self
      park_cv_.wait(lock, [&] {
        return parked_ == active_ || stop_.load(std::memory_order_relaxed);
      });
      if (!stop_.load(std::memory_order_relaxed)) commit_checkpoint();
      --parked_;
      ckpt_request_.store(false, std::memory_order_release);
    }
    park_cv_.notify_all();
  }

  /// Deadline / memory check, amortized per worker.
  bool over_budget(Worker& me) {
    if (opt_.deadline_seconds <= 0.0 && opt_.memory_budget_bytes == 0)
      return false;
    if (++me.budget_tick % kBudgetCheckStride != 0) return false;
    if (opt_.deadline_seconds > 0.0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count();
      if (elapsed >= opt_.deadline_seconds) {
        truncate(TruncationReason::Deadline);
        return true;
      }
    }
    if (opt_.memory_budget_bytes > 0 &&
        !spilled_.load(std::memory_order_relaxed)) {
      const std::uint64_t used = approx_memory();
      // Spill ahead of exhaustion (80%) so the resident probe arrays and
      // pre-spill slabs stay under the budget; once spilled the budget
      // governs residency, not growth, and never truncates.
      if (!opt_.spill_dir.empty() &&
          used >= opt_.memory_budget_bytes - opt_.memory_budget_bytes / 5) {
        begin_spill(used);
        if (spilled_.load(std::memory_order_relaxed)) return false;
      }
      if (used >= opt_.memory_budget_bytes) {
        truncate(TruncationReason::MemoryBudget);
        return true;
      }
    }
    return false;
  }

  /// Switches the sharded visited set and compressor to disk-backed slab
  /// allocation; both attach under their own locks, so racing workers keep
  /// inserting throughout. Failure falls back to in-RAM truncation.
  void begin_spill(std::uint64_t used) {
    std::lock_guard<std::mutex> lock(spill_mu_);
    if (spilled_.load(std::memory_order_relaxed) || spill_failed_) return;
    try {
      spill_pool_ = std::make_unique<support::SpillPool>(opt_.spill_dir);
      visited_.attach_spill(spill_pool_.get());
      compressor_.attach_spill(spill_pool_.get());
      spilled_.store(true, std::memory_order_release);
      if (opt_.obs != nullptr)
        opt_.obs->budget_warning("memory-spill", used,
                                 opt_.memory_budget_bytes);
    } catch (const ModelError&) {
      spill_pool_.reset();
      spill_failed_ = true;
    }
  }

  /// Per-worker telemetry tick (amortized like over_budget): publish this
  /// worker's tallies into its own counter block, offer the shared
  /// rate-limited heartbeat, and raise the one-shot 80% budget warnings.
  void observe(Worker& me) {
    if (me.blk == nullptr) return;
    if (++me.obs_tick % kBudgetCheckStride != 0) return;
    publish_worker(me);
    const std::uint64_t stored = visited_.size();
    opt_.obs->progress(stored, opt_.max_states);
    if (opt_.max_states > 0 &&
        stored >= opt_.max_states - opt_.max_states / 5 &&
        !warned_states_.exchange(true, std::memory_order_relaxed))
      opt_.obs->budget_warning("max-states", stored, opt_.max_states);
    if (opt_.memory_budget_bytes > 0) {
      const std::uint64_t used = approx_memory();
      if (used >=
              opt_.memory_budget_bytes - opt_.memory_budget_bytes / 5 &&
          !warned_memory_.exchange(true, std::memory_order_relaxed))
        opt_.obs->budget_warning("memory", used, opt_.memory_budget_bytes);
    }
  }

  void publish_worker(Worker& me) {
    me.blk->set(obs::Counter::StatesStored, me.stats.states_stored);
    me.blk->set(obs::Counter::StatesMatched, me.stats.states_matched);
    me.blk->set(obs::Counter::Transitions, me.stats.transitions);
    me.blk->set(obs::Counter::PorAmpleSets, me.por_ample);
  }

  std::uint64_t store_bytes() const {
    return visited_.approx_bytes() + compressor_.approx_bytes();
  }

  std::uint64_t approx_memory() const {
    // Store + frontier + arenas, estimated from atomic counters only
    // (per-worker containers are not safely readable cross-thread): every
    // in-flight item carries a state, and every stored state has at most one
    // arena node.
    const std::uint64_t state_bytes =
        static_cast<std::uint64_t>(m_.layout().size()) * sizeof(kernel::Value);
    const auto inflight =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            0, inflight_.load(std::memory_order_relaxed)));
    std::uint64_t bytes = store_bytes() +
                          inflight * (sizeof(Item) + state_bytes);
    if (opt_.want_trace) bytes += visited_.size() * sizeof(Node);
    if (opt_.obs != nullptr) bytes += opt_.obs->approx_bytes();
    return bytes;
  }

  void truncate(TruncationReason why) {
    {
      std::lock_guard<std::mutex> lock(trunc_mu_);
      complete_ = false;
      if (truncation_ == TruncationReason::None) truncation_ = why;
      if (why == TruncationReason::Deadline ||
          why == TruncationReason::MemoryBudget ||
          why == TruncationReason::Interrupted)
        stop_.store(true, std::memory_order_relaxed);  // hard stop: all workers
    }
    // Wake anyone parked at the checkpoint barrier. Taking park_mu_ first
    // closes the pred-check/sleep race against the lock-free stop_ store.
    { std::lock_guard<std::mutex> lock(park_mu_); }
    park_cv_.notify_all();
  }

  std::optional<Violation> invariant_violation(const State& s) const {
    if (opt_.invariant != expr::kNoExpr &&
        m_.eval_global(opt_.invariant, s) == 0) {
      Violation v;
      v.kind = ViolationKind::InvariantViolated;
      v.message = "invariant violated" +
                  (opt_.invariant_name.empty() ? std::string()
                                               : ": " + opt_.invariant_name);
      return v;
    }
    return std::nullopt;
  }

  std::optional<Violation> terminal_violation(const State& s) const {
    if (opt_.check_deadlock && !m_.is_valid_end(s)) {
      Violation v;
      v.kind = ViolationKind::Deadlock;
      v.message = "no executable transition and not all processes at a "
                  "valid end state";
      return v;
    }
    if (opt_.end_invariant != expr::kNoExpr &&
        m_.eval_global(opt_.end_invariant, s) == 0) {
      Violation v;
      v.kind = ViolationKind::EndInvariantViolated;
      v.message =
          "terminal state violates end invariant" +
          (opt_.end_invariant_name.empty()
               ? std::string()
               : ": " + opt_.end_invariant_name);
      return v;
    }
    return std::nullopt;
  }

  void record_violation(Violation v, std::uint64_t gid,
                        const Step* extra_step, const State& final_state) {
    {
      std::lock_guard<std::mutex> lock(win_mu_);
      if (winner_) return;  // first worker wins; verdict is the same either way
      Win win;
      win.violation = std::move(v);
      win.gid = gid;
      if (extra_step) win.extra_step = *extra_step;
      win.final_state = final_state;
      winner_ = std::move(win);
    }
    stop_.store(true, std::memory_order_release);
  }

  /// Streams one popped item's successors: dedup against the shared store,
  /// push fresh states, flag violations. Aborts the pass on a violation or
  /// when the swarm-wide stop flag goes up.
  class ParSink final : public kernel::SuccSink {
   public:
    ParSink(ParallelRun& run, int w, Worker& me, const Item& item)
        : run_(run), w_(w), me_(me), item_(item) {}

    bool on_successor(const State& ns, const Step& step) override {
      if (run_.stop_.load(std::memory_order_relaxed)) {
        aborted = true;
        return false;
      }
      ++produced;
      ++me_.stats.transitions;
      return run_.par_candidate(ns, step, w_, me_, item_, *this);
    }

    std::uint32_t produced = 0;
    bool aborted = false;  // stopped early; successor count is partial

   private:
    ParallelRun& run_;
    const int w_;
    Worker& me_;
    const Item& item_;
  };

  bool par_candidate(const State& ns, const Step& step, int w, Worker& me,
                     const Item& item, ParSink& sink) {
    if (step.assert_failed) {
      Violation v;
      v.kind = ViolationKind::AssertFailed;
      v.message = "assertion failed: " + m_.describe_step(step);
      record_violation(std::move(v), item.gid, &step, ns);
      sink.aborted = true;
      return false;
    }
    compressor_.compress(ns, me.key_buf);
    if (!visited_.insert(me.key_buf,
                         ShardedVisitedSet::hash_key(me.key_buf))) {
      ++me.stats.states_matched;
      return true;
    }
    ++me.stats.states_stored;
    if (visited_.size() >= opt_.max_states) {
      truncate(TruncationReason::MaxStates);
      // stored, but not expanded: same as the sequential engine; remembered
      // so the final checkpoint's frontier is exactly where this run stopped
      if (ckpt_enabled()) me.overflow.push_back({State(ns), item.depth + 1});
      return true;
    }
    if (item.depth + 1 > static_cast<std::uint32_t>(opt_.max_depth)) {
      truncate(TruncationReason::MaxDepth);
      if (ckpt_enabled()) me.overflow.push_back({State(ns), item.depth + 1});
      return true;
    }
    Item next;
    next.state = ns;  // the one copy a genuinely fresh state costs
    next.depth = item.depth + 1;
    if (opt_.want_trace) {
      next.gid = make_gid(w, me.nodes.size());
      me.nodes.push_back({item.gid, step});
    }
    push(me, std::move(next));
    return true;
  }

  void expand(int w, Worker& me, Item& item) {
    if (over_budget(me)) {
      // The item was popped but not expanded; requeue it so a final
      // checkpoint's frontier still covers its subtree.
      if (ckpt_enabled()) push(me, std::move(item));
      return;
    }
    me.stats.max_depth_reached =
        std::max(me.stats.max_depth_reached, static_cast<int>(item.depth));
    // Invariant first: generation has no side effects and the check reads
    // only the state, so the verdict matches the materializing engine's.
    if (auto v = invariant_violation(item.state)) {
      record_violation(std::move(*v), item.gid, nullptr, item.state);
      return;
    }
    ParSink sink(*this, w, me, item);
    if (opt_.por) {
      // BFS-style ample choice (no cycle proviso): a pure function of the
      // state, so the reduced graph -- and the reached-state count -- does
      // not depend on thread count or interleaving.
      const int choice =
          por_choose(m_, item.state, nullptr, me.scratch, opt_.engine);
      if (choice >= 0) ++me.por_ample;
      por_visit(m_, item.state, choice, me.scratch, sink, opt_.engine);
    } else if (opt_.engine) {
      opt_.engine->visit_successors(item.state, me.scratch, sink);
    } else {
      m_.visit_successors(item.state, me.scratch, sink);
    }
    // Zero successors means a terminal state -- unless the pass was cut
    // short by a stop flag, in which case the count is not trustworthy.
    if (sink.produced == 0 && !sink.aborted) {
      if (auto v = terminal_violation(item.state))
        record_violation(std::move(*v), item.gid, nullptr, item.state);
    }
    // An aborted pass left successors ungenerated: requeue the item so the
    // final checkpoint re-expands it on resume (idempotent -- its explored
    // successors dedup against the visited set).
    if (sink.aborted && ckpt_enabled()) push(me, std::move(item));
  }

  trace::Trace rebuild_trace(const Win& win) const {
    trace::Trace t;
    if (!opt_.want_trace) return t;
    std::vector<const Step*> rev;
    for (std::uint64_t gid = win.gid; gid != kNoGid;) {
      const Worker& owner = workers_[static_cast<std::size_t>(gid >> 40)];
      const Node& node =
          owner.nodes[static_cast<std::size_t>(gid & ((std::uint64_t{1} << 40) - 1))];
      rev.push_back(&node.in_step);
      gid = node.parent;
    }
    for (auto it = rev.rbegin(); it != rev.rend(); ++it)
      t.steps.push_back({**it, m_.describe_step(**it)});
    if (win.extra_step)
      t.steps.push_back({*win.extra_step, m_.describe_step(*win.extra_step)});
    t.final_state = m_.format_state(win.final_state);
    return t;
  }

  Result finish() {
    // Final checkpoint: all workers joined, so the queues + overflow lists
    // are the exact unexpanded frontier of wherever the run stopped.
    if (ckpt_enabled() && !winner_) commit_checkpoint();
    Result r;
    Stats& st = r.stats;
    st.threads = n_;
    st.states_stored = visited_.size();
    st.states_matched = base_matched_;
    st.transitions = base_transitions_;
    std::uint64_t nodes_total = 0;
    std::uint64_t queued = 0;
    for (Worker& w : workers_) {
      st.states_matched += w.stats.states_matched;
      st.transitions += w.stats.transitions;
      st.max_depth_reached =
          std::max(st.max_depth_reached, w.stats.max_depth_reached);
      st.workers.push_back(w.stats);
      nodes_total += w.nodes.size();
      queued += w.queue.size();
    }
    const std::uint64_t state_bytes =
        static_cast<std::uint64_t>(m_.layout().size()) * sizeof(kernel::Value);
    st.store_bytes = store_bytes();
    st.approx_memory_bytes = st.store_bytes +
                             nodes_total * sizeof(Node) +
                             queued * (sizeof(Item) + state_bytes);
    st.complete = complete_;
    st.truncation = truncation_;
    st.spilled = spilled_.load(std::memory_order_relaxed);
    if (st.spilled)
      st.spill_bytes = visited_.spill_bytes() + compressor_.spill_bytes();
    st.checkpoints_written = ckpt_written_;
    st.resumed = opt_.resume_from != nullptr;
    if (opt_.obs != nullptr) {
      for (Worker& w : workers_)
        if (w.blk != nullptr) publish_worker(w);
      obs::Recorder& rec = opt_.obs->recorder();
      rec.max_gauge(obs::Gauge::StoreBytes, st.store_bytes);
      rec.max_gauge(obs::Gauge::FrontierBytes,
                    queued * (sizeof(Item) + state_bytes));
      rec.max_gauge(obs::Gauge::InternedComponents, compressor_.components());
      rec.max_gauge(obs::Gauge::CompressorBytes, compressor_.approx_bytes());
      rec.max_gauge(obs::Gauge::MaxDepthReached,
                    static_cast<std::uint64_t>(st.max_depth_reached));
      st.approx_memory_bytes += opt_.obs->approx_bytes();
    }
    if (winner_) {
      r.violation = std::move(winner_->violation);
      r.violation->trace = rebuild_trace(*winner_);
    }
    st.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    return r;
  }

  static constexpr std::uint64_t kBudgetCheckStride = 1024;

  const Machine& m_;
  const Options& opt_;
  const int n_;
  std::deque<Worker> workers_;

  ShardedVisitedSet visited_;
  kernel::StateCompressor compressor_;
  std::atomic<bool> stop_{false};
  std::atomic<std::int64_t> inflight_{0};

  std::mutex trunc_mu_;
  bool complete_ = true;
  TruncationReason truncation_ = TruncationReason::None;

  std::atomic<bool> warned_states_{false};
  std::atomic<bool> warned_memory_{false};

  std::mutex win_mu_;
  std::optional<Win> winner_;

  // -- durability state ------------------------------------------------------
  std::mutex spill_mu_;
  std::unique_ptr<support::SpillPool> spill_pool_;
  std::atomic<bool> spilled_{false};
  bool spill_failed_ = false;  // guarded by spill_mu_

  std::atomic<bool> ckpt_request_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  int parked_ = 0;   // guarded by park_mu_
  int active_ = 0;   // guarded by park_mu_; workers retire on exit
  bool ckpt_failed_ = false;             // coordinator/finish only
  std::uint64_t ckpt_seq_ = 0;           // coordinator/finish only
  std::uint64_t ckpt_written_ = 0;       // coordinator/finish only
  std::atomic<std::uint64_t> last_ckpt_states_{0};
  std::uint64_t base_matched_ = 0;       // resume baselines
  std::uint64_t base_transitions_ = 0;

  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

Result run_parallel(const kernel::Machine& m, const Options& opt,
                    int threads) {
  ParallelRun run(m, opt, threads);
  return run.go();
}

Result run_swarm(const kernel::Machine& m, const Options& opt, int threads) {
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::vector<Result> results(static_cast<std::size_t>(threads));
  {
    std::vector<std::thread> ts;
    ts.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      ts.emplace_back([&, w] {
        Options o = opt;
        o.threads = 1;
        // Worker 0 keeps the canonical order and hash functions, so the
        // sequential bitstate verdict is always among the merged ones.
        const std::uint64_t seed =
            w == 0 ? 0 : avalanche64(0x5eed5eed5eedull + static_cast<std::uint64_t>(w));
        Result r = run_single(m, o, seed, seed, &stop);
        if (r.violation) stop.store(true, std::memory_order_release);
        results[static_cast<std::size_t>(w)] = std::move(r);
      });
    }
    for (std::thread& t : ts) t.join();
  }

  // Merge: a violation found by any worker is a real counterexample (the
  // first one encountered wins); otherwise the verdict is the union of N
  // probabilistic passes.
  Result merged;
  Stats& st = merged.stats;
  st.threads = threads;
  for (Result& r : results) {
    if (r.violation && !merged.violation)
      merged.violation = std::move(r.violation);
    st.states_stored += r.stats.states_stored;
    st.states_matched += r.stats.states_matched;
    st.transitions += r.stats.transitions;
    st.max_depth_reached =
        std::max(st.max_depth_reached, r.stats.max_depth_reached);
    st.approx_memory_bytes += r.stats.approx_memory_bytes;
    st.store_bytes += r.stats.store_bytes;
    st.workers.push_back({r.stats.states_stored, r.stats.states_matched,
                          r.stats.transitions, r.stats.max_depth_reached,
                          r.stats.seconds});
    // A hard truncation in any worker outranks the ambient bitstate
    // approximation, mirroring the sequential precedence.
    if (r.stats.truncation != TruncationReason::None &&
        r.stats.truncation != TruncationReason::BitstateApprox &&
        st.truncation == TruncationReason::None)
      st.truncation = r.stats.truncation;
  }
  st.complete = false;
  if (st.truncation == TruncationReason::None)
    st.truncation = TruncationReason::BitstateApprox;
  st.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return merged;
}

}  // namespace detail
}  // namespace pnp::explore
