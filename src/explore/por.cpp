#include "explore/por.h"

namespace pnp::explore {

namespace {

bool all_local(const kernel::Machine& m, int pid,
               const std::vector<kernel::Succ>& succs) {
  const compile::CompiledProc& cp = m.proc_of(pid);
  for (const kernel::Succ& s : succs) {
    const kernel::Step& step = s.second;
    if (step.partner_pid >= 0) return false;
    if (!cp.trans[static_cast<std::size_t>(step.trans)].local_only) return false;
  }
  return true;
}

}  // namespace

int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack) {
  // Atomic regions already restrict interleaving; let the machine handle them.
  if (s.atomic_pid >= 0) return -1;
  std::vector<kernel::Succ> tmp;
  for (int pid = 0; pid < m.n_processes(); ++pid) {
    tmp.clear();
    if (!m.successors_of(s, pid, tmp)) continue;
    if (!all_local(m, pid, tmp)) continue;
    if (on_stack) {
      bool cycles_back = false;
      for (const kernel::Succ& succ : tmp) {
        if ((*on_stack)(succ.first)) {
          cycles_back = true;
          break;
        }
      }
      if (cycles_back) continue;  // C3: would close a cycle on the stack
    }
    return pid;
  }
  return -1;
}

void por_expand(const kernel::Machine& m, const kernel::State& s, int choice,
                std::vector<kernel::Succ>& out) {
  if (choice < 0) {
    m.successors(s, out);
    return;
  }
  m.successors_of(s, choice, out);
}

void por_successors(const kernel::Machine& m, const kernel::State& s,
                    std::vector<kernel::Succ>& out, const OnStackFn* on_stack) {
  por_expand(m, s, por_choose(m, s, on_stack), out);
}

}  // namespace pnp::explore
