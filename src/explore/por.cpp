#include "explore/por.h"

namespace pnp::explore {

namespace {

/// Streams one process's successors and decides whether it qualifies as an
/// ample candidate: every successor must be a purely-local step, and (when
/// the C3 proviso applies) none may land back on the DFS stack. Aborts the
/// generation pass at the first disqualifying successor -- the decision is
/// a conjunction over all successors, so early exit cannot change it.
class AmpleProbe final : public kernel::SuccSink {
 public:
  AmpleProbe(const kernel::Machine& m, int pid, const OnStackFn* on_stack)
      : cp_(m.proc_of(pid)), on_stack_(on_stack) {}

  bool on_successor(const kernel::State& ns,
                    const kernel::Step& step) override {
    produced_ = true;
    if (step.partner_pid >= 0 ||
        !cp_.trans[static_cast<std::size_t>(step.trans)].local_only) {
      ok_ = false;
      return false;
    }
    if (on_stack_ && (*on_stack_)(ns)) {
      ok_ = false;  // C3: would close a cycle on the stack
      return false;
    }
    return true;
  }

  bool candidate() const { return produced_ && ok_; }

 private:
  const compile::CompiledProc& cp_;
  const OnStackFn* on_stack_;
  bool produced_ = false;
  bool ok_ = true;
};

}  // namespace

int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack, kernel::SuccScratch& scratch) {
  // Atomic regions already restrict interleaving; let the machine handle them.
  if (s.atomic_pid >= 0) return -1;
  for (int pid = 0; pid < m.n_processes(); ++pid) {
    AmpleProbe probe(m, pid, on_stack);
    m.visit_successors_of(s, pid, scratch, probe);
    if (probe.candidate()) return pid;
  }
  return -1;
}

int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack) {
  kernel::SuccScratch scratch;
  return por_choose(m, s, on_stack, scratch);
}

void por_expand(const kernel::Machine& m, const kernel::State& s, int choice,
                std::vector<kernel::Succ>& out) {
  if (choice < 0) {
    m.successors(s, out);
    return;
  }
  m.successors_of(s, choice, out);
}

void por_visit(const kernel::Machine& m, const kernel::State& s, int choice,
               kernel::SuccScratch& scratch, kernel::SuccSink& sink) {
  if (choice < 0) {
    m.visit_successors(s, scratch, sink);
    return;
  }
  m.visit_successors_of(s, choice, scratch, sink);
}

void por_successors(const kernel::Machine& m, const kernel::State& s,
                    std::vector<kernel::Succ>& out, const OnStackFn* on_stack) {
  por_expand(m, s, por_choose(m, s, on_stack), out);
}

}  // namespace pnp::explore
