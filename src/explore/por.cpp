#include "explore/por.h"

#include "codegen/engine.h"

namespace pnp::explore {

namespace {

/// Streams one process's successors and decides whether it qualifies as an
/// ample candidate: every successor must be a purely-local step, and (when
/// the C3 proviso applies) none may land back on the DFS stack. Aborts the
/// generation pass at the first disqualifying successor -- the decision is
/// a conjunction over all successors, so early exit cannot change it.
class AmpleProbe final : public kernel::SuccSink {
 public:
  AmpleProbe(const kernel::Machine& m, int pid, const OnStackFn* on_stack)
      : cp_(m.proc_of(pid)), on_stack_(on_stack) {}

  bool on_successor(const kernel::State& ns,
                    const kernel::Step& step) override {
    produced_ = true;
    if (step.partner_pid >= 0 ||
        !cp_.trans[static_cast<std::size_t>(step.trans)].local_only) {
      ok_ = false;
      return false;
    }
    if (on_stack_ && (*on_stack_)(ns)) {
      ok_ = false;  // C3: would close a cycle on the stack
      return false;
    }
    return true;
  }

  bool candidate() const { return produced_ && ok_; }

 private:
  const compile::CompiledProc& cp_;
  const OnStackFn* on_stack_;
  bool produced_ = false;
  bool ok_ = true;
};

/// Adapter implementing the vector-building API on the streaming one.
class CollectSink final : public kernel::SuccSink {
 public:
  explicit CollectSink(std::vector<kernel::Succ>& out) : out_(out) {}
  bool on_successor(const kernel::State& ns,
                    const kernel::Step& step) override {
    out_.emplace_back(ns, step);
    return true;
  }

 private:
  std::vector<kernel::Succ>& out_;
};

}  // namespace

int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack, kernel::SuccScratch& scratch,
               const codegen::Engine* engine) {
  // Atomic regions already restrict interleaving; let the machine handle them.
  if (s.atomic_pid >= 0) return -1;
  for (int pid = 0; pid < m.n_processes(); ++pid) {
    AmpleProbe probe(m, pid, on_stack);
    if (engine)
      engine->visit_successors_of(s, pid, scratch, probe);
    else
      m.visit_successors_of(s, pid, scratch, probe);
    if (probe.candidate()) return pid;
  }
  return -1;
}

int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack, const codegen::Engine* engine) {
  kernel::SuccScratch scratch;
  return por_choose(m, s, on_stack, scratch, engine);
}

void por_expand(const kernel::Machine& m, const kernel::State& s, int choice,
                std::vector<kernel::Succ>& out,
                const codegen::Engine* engine) {
  if (engine) {
    if (choice < 0) {
      engine->successors(s, out);
    } else {
      kernel::SuccScratch scratch;
      CollectSink collect(out);
      engine->visit_successors_of(s, choice, scratch, collect);
    }
    return;
  }
  if (choice < 0) {
    m.successors(s, out);
    return;
  }
  m.successors_of(s, choice, out);
}

void por_visit(const kernel::Machine& m, const kernel::State& s, int choice,
               kernel::SuccScratch& scratch, kernel::SuccSink& sink,
               const codegen::Engine* engine, std::uint32_t skip,
               std::uint64_t* resume) {
  if (engine) {
    if (choice < 0)
      engine->visit_successors(s, scratch, sink, skip, resume);
    else
      engine->visit_successors_of(s, choice, scratch, sink, skip);
    return;
  }
  if (choice < 0) {
    m.visit_successors(s, scratch, sink);
    return;
  }
  m.visit_successors_of(s, choice, scratch, sink);
}

void por_successors(const kernel::Machine& m, const kernel::State& s,
                    std::vector<kernel::Succ>& out, const OnStackFn* on_stack,
                    const codegen::Engine* engine) {
  por_expand(m, s, por_choose(m, s, on_stack, engine), out, engine);
}

}  // namespace pnp::explore
