// Partial-order reduction: conservative ample-set computation.
//
// A process is an ample candidate in a state when every transition it can
// take there is `local_only` (touches neither globals nor channels, so it
// is both invisible to properties and independent of every other process's
// transitions). The cycle proviso (C3) is enforced by rejecting candidates
// with a successor already on the DFS stack.
#pragma once

#include <functional>
#include <vector>

#include "kernel/machine.h"

namespace pnp::explore {

using OnStackFn = std::function<bool(const kernel::State&)>;

/// Decides the ample set for `s`: the pid of an ample process, or -1 for
/// full expansion. `on_stack` implements the cycle proviso (C3); pass
/// nullptr to skip it (BFS, where C3 is not needed for safety-only checking
/// of our invisible-transition ample sets). The decision is a function of
/// (state, stack) and must be recorded by the caller so that regenerating a
/// frame's successors reproduces the exact same list. The overload taking a
/// SuccScratch probes candidates by mutate-and-revert (no state copies);
/// the two-argument form allocates its own scratch.
int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack, kernel::SuccScratch& scratch);
int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack);

/// Appends the successors of `s` per a recorded choice (-1 = all processes,
/// otherwise only that pid's).
void por_expand(const kernel::Machine& m, const kernel::State& s, int choice,
                std::vector<kernel::Succ>& out);

/// Streaming por_expand: successors per the recorded choice are handed to
/// `sink` one at a time (see Machine::visit_successors).
void por_visit(const kernel::Machine& m, const kernel::State& s, int choice,
               kernel::SuccScratch& scratch, kernel::SuccSink& sink);

/// choose + expand in one call (used by BFS, which never revisits a frame).
void por_successors(const kernel::Machine& m, const kernel::State& s,
                    std::vector<kernel::Succ>& out, const OnStackFn* on_stack);

}  // namespace pnp::explore
