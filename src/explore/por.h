// Partial-order reduction: conservative ample-set computation.
//
// A process is an ample candidate in a state when every transition it can
// take there is `local_only` (touches neither globals nor channels, so it
// is both invisible to properties and independent of every other process's
// transitions). The cycle proviso (C3) is enforced by rejecting candidates
// with a successor already on the DFS stack.
//
// Every entry point optionally takes a codegen::Engine: when non-null, both
// the per-pid ample probe and the chosen expansion run the compiled backend
// instead of the interpreter. The engine equivalence contract (byte-identical
// successor streams and Step fields, engine.h) makes the ample decision a
// pure function of the state either way -- the probe is a conjunction over
// the streamed successors, so identical streams give identical ample sets.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "kernel/machine.h"

namespace pnp::codegen {
class Engine;
}

namespace pnp::explore {

using OnStackFn = std::function<bool(const kernel::State&)>;

/// Decides the ample set for `s`: the pid of an ample process, or -1 for
/// full expansion. `on_stack` implements the cycle proviso (C3); pass
/// nullptr to skip it (BFS, where C3 is not needed for safety-only checking
/// of our invisible-transition ample sets). The decision is a function of
/// (state, stack) and must be recorded by the caller so that regenerating a
/// frame's successors reproduces the exact same list. The overload taking a
/// SuccScratch probes candidates by mutate-and-revert (no state copies);
/// the two-argument form allocates its own scratch.
int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack, kernel::SuccScratch& scratch,
               const codegen::Engine* engine = nullptr);
int por_choose(const kernel::Machine& m, const kernel::State& s,
               const OnStackFn* on_stack,
               const codegen::Engine* engine = nullptr);

/// Appends the successors of `s` per a recorded choice (-1 = all processes,
/// otherwise only that pid's).
void por_expand(const kernel::Machine& m, const kernel::State& s, int choice,
                std::vector<kernel::Succ>& out,
                const codegen::Engine* engine = nullptr);

/// Streaming por_expand: successors per the recorded choice are handed to
/// `sink` one at a time (see Machine::visit_successors). With an engine,
/// `skip` and `resume` carry the pass-based DFS's native candidate
/// suppression and fast-forward token through to the backend (engine.h);
/// the interpreter path ignores both and keeps the historical sink-side
/// skip, so interpreter callers must pass 0 / nullptr.
void por_visit(const kernel::Machine& m, const kernel::State& s, int choice,
               kernel::SuccScratch& scratch, kernel::SuccSink& sink,
               const codegen::Engine* engine = nullptr, std::uint32_t skip = 0,
               std::uint64_t* resume = nullptr);

/// choose + expand in one call (used by BFS, which never revisits a frame).
void por_successors(const kernel::Machine& m, const kernel::State& s,
                    std::vector<kernel::Succ>& out, const OnStackFn* on_stack,
                    const codegen::Engine* engine = nullptr);

}  // namespace pnp::explore
