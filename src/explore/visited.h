// Visited-state stores for the exploration engines.
//
// Two families:
//   * VisitedSet        -- the single-threaded store (exact flat key set or
//                          double-bit Bloom filter in bitstate mode), with an
//                          optional hash seed so swarm workers can run
//                          independently seeded bitstate searches;
//   * ShardedVisitedSet -- the concurrent exact store used by the parallel
//                          engine: lock-striped over the 64-bit state hash so
//                          workers contend only when they land on the same
//                          shard. Insertion is linearizable per key, and the
//                          global count is an atomic, so max-states checks
//                          stay cheap.
//
// Exact storage is the flat open-addressing table + slab arena from
// flat_store.h (no per-key heap nodes); approx_bytes() reports the real
// table + arena footprint, which is what the memory-budget ladder consumes.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "explore/flat_store.h"
#include "support/hash.h"

namespace pnp::explore {

/// Single-threaded visited-state store: exact flat key set, or double-bit
/// Bloom filter in bitstate (supertrace) mode. `seed` perturbs the bitstate
/// hash functions; seed 0 reproduces the historical single-search behavior.
/// `expected` pre-sizes the exact table (ignored in bitstate mode).
class VisitedSet {
 public:
  VisitedSet(bool bitstate, std::uint64_t bytes, std::uint64_t seed = 0,
             std::uint64_t expected = 0)
      : bitstate_(bitstate), seed_(seed), set_(bitstate ? 0 : expected) {
    if (bitstate_) bits_.assign(bytes, 0);
  }

  /// Two-phase insert for callers that can overlap the probe's cache misses
  /// with other work (exact mode only): stage() hashes the key and prefetches
  /// its first probe slot; insert_staged() completes the probe, usually with
  /// the slot line already in cache. Any number of stage() calls may be in
  /// flight; each insert_staged() must pass the hash its stage() returned.
  std::uint64_t stage(std::span<const std::uint8_t> key) const {
    const std::uint64_t h = fast_hash64(key);
    set_.prefetch(h);
    return h;
  }

  bool insert_staged(std::span<const std::uint8_t> key, std::uint64_t h) {
    return set_.insert(key, h);
  }

  /// Deeper pipelining over the same staged hash: probe_staged() walks the
  /// (prefetched) cluster, inserting definitely-fresh keys and prefetching
  /// the arena record of a fingerprint match; confirm_staged() settles that
  /// match later. See FlatKeySet::probe_or_insert.
  FlatKeySet::Staged probe_staged(std::span<const std::uint8_t> key,
                                  std::uint64_t h) {
    return set_.probe_or_insert(key, h);
  }

  bool confirm_staged(std::span<const std::uint8_t> key, std::uint64_t h,
                      std::uint32_t off) {
    return set_.confirm_or_insert(key, h, off);
  }

  /// Returns true if `key` was not present before (and records it).
  bool insert(std::span<const std::uint8_t> key) {
    if (!bitstate_) return set_.insert(key, fast_hash64(key));
    const std::uint64_t nbits = bits_.size() * 8;
    const std::uint64_t b1 = (hash_bytes(key) ^ avalanche64(seed_)) % nbits;
    const std::uint64_t b2 = (hash_bytes2(key) + seed_ * kFnvPrime) % nbits;
    const bool seen = get_bit(b1) && get_bit(b2);
    set_bit(b1);
    set_bit(b2);
    if (!seen) ++approx_count_;
    return !seen;
  }

  std::uint64_t size() const {
    return bitstate_ ? approx_count_ : set_.size();
  }

  /// Memory footprint: the bit array in bitstate mode; probe arrays plus
  /// resident key-arena slabs for the exact set.
  std::uint64_t approx_bytes() const {
    if (bitstate_) return bits_.size();
    return set_.approx_bytes();
  }

  /// New key-arena slabs spill to `pool`; no-op in bitstate mode (the bit
  /// array is fixed-size, there is nothing to spill).
  void attach_spill(support::SpillPool* pool) {
    if (!bitstate_) set_.attach_spill(pool);
  }

  std::uint64_t spill_bytes() const {
    return bitstate_ ? 0 : set_.spill_bytes();
  }

  /// Enumerates every stored key; exact mode only (bitstate stores hashes,
  /// not keys, which is why bitstate runs cannot be checkpointed).
  template <class F>
  void for_each_key(F&& f) const {
    PNP_CHECK(!bitstate_, "bitstate visited set cannot enumerate keys");
    set_.for_each_key(f);
  }

 private:
  bool get_bit(std::uint64_t i) const {
    return (bits_[i >> 3] >> (i & 7)) & 1;
  }
  void set_bit(std::uint64_t i) { bits_[i >> 3] |= std::uint8_t(1u << (i & 7)); }

  bool bitstate_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> bits_;
  FlatKeySet set_;
  std::uint64_t approx_count_ = 0;
};

/// Concurrent exact visited set, lock-striped into 64 shards selected by the
/// top bits of the state-key hash (the bottom bits probe the shard-local
/// flat table, so the two uses stay independent). `expected` pre-sizes every
/// shard for expected/64 keys.
class ShardedVisitedSet {
 public:
  explicit ShardedVisitedSet(std::uint64_t expected = 0) : shards_(kShards) {
    if (expected > 0)
      for (Shard& sh : shards_) sh.set.reserve(expected / kShards + 1);
    refresh_bytes();
  }

  static std::uint64_t hash_key(std::span<const std::uint8_t> key) {
    return fast_hash64(key);
  }

  /// Returns true if `key` was not present (and records it). `h` must be
  /// hash_key(key); callers always have it already for sharding.
  bool insert(std::span<const std::uint8_t> key, std::uint64_t h) {
    Shard& sh = shards_[shard_of(h)];
    bool fresh;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      fresh = sh.set.insert(key, h);
      if (fresh)
        // Published under the shard lock but read without it: approx_bytes()
        // may see a slightly stale footprint, never a torn one.
        sh.bytes.store(sh.set.approx_bytes(), std::memory_order_relaxed);
    }
    if (fresh) count_.fetch_add(1, std::memory_order_relaxed);
    return fresh;
  }

  std::uint64_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Footprint across all shards, readable without taking any shard lock.
  std::uint64_t approx_bytes() const {
    std::uint64_t bytes = 0;
    for (const Shard& sh : shards_)
      bytes += sh.bytes.load(std::memory_order_relaxed);
    return bytes;
  }

  /// New key-arena slabs in every shard spill to `pool`. Safe to call while
  /// workers are inserting: the switch is taken under each shard lock and
  /// only affects future slab allocations.
  void attach_spill(support::SpillPool* pool) {
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.set.attach_spill(pool);
      sh.bytes.store(sh.set.approx_bytes(), std::memory_order_relaxed);
    }
  }

  std::uint64_t spill_bytes() const {
    std::uint64_t bytes = 0;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      bytes += sh.set.spill_bytes();
    }
    return bytes;
  }

  /// Enumerates every stored key across all shards, taking each shard lock
  /// in turn. Callers needing a consistent snapshot must quiesce inserts
  /// first (the parallel engine's checkpoint barrier does).
  template <class F>
  void for_each_key(F&& f) const {
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh.mu);
      sh.set.for_each_key(f);
    }
  }

 private:
  static constexpr std::size_t kShards = 64;

  static std::size_t shard_of(std::uint64_t h) {
    return static_cast<std::size_t>(h >> 58);  // top 6 bits
  }

  void refresh_bytes() {
    for (Shard& sh : shards_)
      sh.bytes.store(sh.set.approx_bytes(), std::memory_order_relaxed);
  }

  // Cache-line aligned so neighboring shard locks don't false-share.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    FlatKeySet set;
    std::atomic<std::uint64_t> bytes{0};
  };

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace pnp::explore
