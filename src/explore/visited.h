// Visited-state stores for the exploration engines.
//
// Two families:
//   * VisitedSet        -- the single-threaded store (exact hash set or
//                          double-bit Bloom filter in bitstate mode), with an
//                          optional hash seed so swarm workers can run
//                          independently seeded bitstate searches;
//   * ShardedVisitedSet -- the concurrent exact store used by the parallel
//                          engine: lock-striped over the 64-bit state hash so
//                          workers contend only when they land on the same
//                          shard. Insertion is linearizable per key, and the
//                          global count is an atomic, so max-states checks
//                          stay cheap.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/hash.h"

namespace pnp::explore {

/// Single-threaded visited-state store: exact hash set, or double-bit Bloom
/// filter in bitstate (supertrace) mode. `seed` perturbs the bitstate hash
/// functions; seed 0 reproduces the historical single-search behavior.
class VisitedSet {
 public:
  VisitedSet(bool bitstate, std::uint64_t bytes, std::uint64_t seed = 0)
      : bitstate_(bitstate), seed_(seed) {
    if (bitstate_) bits_.assign(bytes, 0);
  }

  /// Returns true if `key` was not present before (and records it).
  bool insert(const std::string& key) {
    if (!bitstate_) {
      const bool fresh = set_.insert(key).second;
      if (fresh) key_bytes_ += key.size();
      return fresh;
    }
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(key.data()), key.size());
    const std::uint64_t nbits = bits_.size() * 8;
    const std::uint64_t b1 =
        (hash_bytes(bytes) ^ avalanche64(seed_)) % nbits;
    const std::uint64_t b2 =
        (hash_bytes2(bytes) + seed_ * kFnvPrime) % nbits;
    const bool seen = get_bit(b1) && get_bit(b2);
    set_bit(b1);
    set_bit(b2);
    if (!seen) ++approx_count_;
    return !seen;
  }

  std::uint64_t size() const {
    return bitstate_ ? approx_count_ : set_.size();
  }

  /// Rough memory footprint: the bit array in bitstate mode; key bytes plus
  /// an estimated per-entry node/bucket overhead for the exact set.
  std::uint64_t approx_bytes() const {
    if (bitstate_) return bits_.size();
    return key_bytes_ + set_.size() * kEntryOverhead;
  }

 private:
  // unordered_set node: hash, next pointer, std::string header, bucket
  // share. 64 bytes is a deliberate slight overestimate so memory-budget
  // truncation errs on the safe side.
  static constexpr std::uint64_t kEntryOverhead = 64;

  bool get_bit(std::uint64_t i) const {
    return (bits_[i >> 3] >> (i & 7)) & 1;
  }
  void set_bit(std::uint64_t i) { bits_[i >> 3] |= std::uint8_t(1u << (i & 7)); }

  bool bitstate_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> bits_;
  std::unordered_set<std::string> set_;
  std::uint64_t approx_count_ = 0;
  std::uint64_t key_bytes_ = 0;
};

/// Concurrent exact visited set, lock-striped into 64 shards selected by the
/// top bits of the state-key hash (the bottom bits feed the shard-local
/// unordered_set, so the two uses stay independent).
class ShardedVisitedSet {
 public:
  ShardedVisitedSet() : shards_(kShards) {}

  static std::uint64_t hash_key(const std::string& key) {
    return hash_bytes(
        {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()});
  }

  /// Returns true if `key` was not present (and records it). `h` must be
  /// hash_key(key); callers always have it already for sharding.
  bool insert(const std::string& key, std::uint64_t h) {
    Shard& sh = shards_[shard_of(h)];
    bool fresh;
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      fresh = sh.set.insert(key).second;
    }
    if (fresh) {
      // Atomic (not under the shard lock) so approx_bytes() can read the
      // counters without taking every lock.
      sh.key_bytes.fetch_add(key.size(), std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
    }
    return fresh;
  }

  std::uint64_t size() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Rough footprint across all shards. Taken without locks: the per-shard
  /// byte counters are only ever increased, so a racy read can only
  /// under-estimate by the entries being inserted right now.
  std::uint64_t approx_bytes() const {
    std::uint64_t bytes = 0;
    for (const Shard& sh : shards_)
      bytes += sh.key_bytes.load(std::memory_order_relaxed);
    return bytes + size() * kEntryOverhead;
  }

 private:
  static constexpr std::size_t kShards = 64;
  static constexpr std::uint64_t kEntryOverhead = 64;

  static std::size_t shard_of(std::uint64_t h) {
    return static_cast<std::size_t>(h >> 58);  // top 6 bits
  }

  // Cache-line aligned so neighboring shard locks don't false-share.
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_set<std::string> set;
    std::atomic<std::uint64_t> key_bytes{0};
  };

  std::vector<Shard> shards_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace pnp::explore
