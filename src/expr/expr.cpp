#include "expr/expr.h"

#include "support/hash.h"
#include "support/panic.h"

namespace pnp::expr {

std::size_t Pool::NodeHash::operator()(const Node& n) const {
  std::uint64_t h = kFnvOffset;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  mix(static_cast<std::uint64_t>(n.op));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.imm)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.a)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.b)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.c)));
  return static_cast<std::size_t>(avalanche64(h));
}

Ref Pool::intern(const Node& n) {
  auto it = interned_.find(n);
  if (it != interned_.end()) return it->second;
  const Ref r = static_cast<Ref>(nodes_.size());
  nodes_.push_back(n);
  interned_.emplace(n, r);
  return r;
}

Value Pool::eval(Ref r, const EvalEnv& env) const {
  PNP_CHECK(r != kNoExpr, "eval of null expression");
  const Node& n = at(r);
  switch (n.op) {
    case Op::Const:
      return n.imm;
    case Op::Global:
      PNP_CHECK(static_cast<std::size_t>(n.imm) < env.globals.size(),
                "global slot out of range");
      return env.globals[static_cast<std::size_t>(n.imm)];
    case Op::Local: {
      const auto slot = static_cast<std::size_t>(n.imm);
      if (slot < env.params.size()) return env.params[slot];
      PNP_CHECK(slot - env.params.size() < env.locals.size(),
                "local slot out of range");
      return env.locals[slot - env.params.size()];
    }
    case Op::SelfPid:
      return env.self_pid;
    case Op::Neg:
      return -eval(n.a, env);
    case Op::Not:
      return eval(n.a, env) == 0 ? 1 : 0;
    case Op::Add:
      return eval(n.a, env) + eval(n.b, env);
    case Op::Sub:
      return eval(n.a, env) - eval(n.b, env);
    case Op::Mul:
      return eval(n.a, env) * eval(n.b, env);
    case Op::Div: {
      const Value d = eval(n.b, env);
      PNP_CHECK(d != 0, "division by zero in model expression");
      return eval(n.a, env) / d;
    }
    case Op::Mod: {
      const Value d = eval(n.b, env);
      PNP_CHECK(d != 0, "modulo by zero in model expression");
      return eval(n.a, env) % d;
    }
    case Op::And:
      return (eval(n.a, env) != 0 && eval(n.b, env) != 0) ? 1 : 0;
    case Op::Or:
      return (eval(n.a, env) != 0 || eval(n.b, env) != 0) ? 1 : 0;
    case Op::Eq:
      return eval(n.a, env) == eval(n.b, env) ? 1 : 0;
    case Op::Ne:
      return eval(n.a, env) != eval(n.b, env) ? 1 : 0;
    case Op::Lt:
      return eval(n.a, env) < eval(n.b, env) ? 1 : 0;
    case Op::Le:
      return eval(n.a, env) <= eval(n.b, env) ? 1 : 0;
    case Op::Gt:
      return eval(n.a, env) > eval(n.b, env) ? 1 : 0;
    case Op::Ge:
      return eval(n.a, env) >= eval(n.b, env) ? 1 : 0;
    case Op::ChanLen:
    case Op::ChanFull:
    case Op::ChanEmpty: {
      PNP_CHECK(env.chans != nullptr, "channel query without channel view");
      const int chan = static_cast<int>(eval(n.a, env));
      const int len = env.chans->chan_len(chan);
      if (n.op == Op::ChanLen) return len;
      const int cap = env.chans->chan_capacity(chan);
      if (n.op == Op::ChanFull) return len >= cap ? 1 : 0;
      return len == 0 ? 1 : 0;
    }
    case Op::Cond:
      return eval(n.a, env) != 0 ? eval(n.b, env) : eval(n.c, env);
  }
  raise_model_error("unknown expression op");
}

bool Pool::reads_shared(Ref r) const {
  if (r == kNoExpr) return false;
  const Node& n = at(r);
  switch (n.op) {
    case Op::Global:
    case Op::ChanLen:
    case Op::ChanFull:
    case Op::ChanEmpty:
      return true;
    default:
      return reads_shared(n.a) || reads_shared(n.b) || reads_shared(n.c);
  }
}

namespace {

const char* op_symbol(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Div: return "/";
    case Op::Mod: return "%";
    case Op::And: return "&&";
    case Op::Or: return "||";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    default: return "?";
  }
}

}  // namespace

std::string Pool::to_string(Ref r,
                            const std::function<std::string(int)>* global_name,
                            const std::function<std::string(int)>* local_name) const {
  if (r == kNoExpr) return "<none>";
  const Node& n = at(r);
  auto rec = [&](Ref x) { return to_string(x, global_name, local_name); };
  switch (n.op) {
    case Op::Const:
      return std::to_string(n.imm);
    case Op::Global:
      return global_name ? (*global_name)(n.imm) : "g" + std::to_string(n.imm);
    case Op::Local:
      return local_name ? (*local_name)(n.imm) : "l" + std::to_string(n.imm);
    case Op::SelfPid:
      return "_pid";
    case Op::Neg:
      return "-(" + rec(n.a) + ")";
    case Op::Not:
      return "!(" + rec(n.a) + ")";
    case Op::ChanLen:
      return "len(" + rec(n.a) + ")";
    case Op::ChanFull:
      return "full(" + rec(n.a) + ")";
    case Op::ChanEmpty:
      return "empty(" + rec(n.a) + ")";
    case Op::Cond:
      return "(" + rec(n.a) + " ? " + rec(n.b) + " : " + rec(n.c) + ")";
    default:
      return "(" + rec(n.a) + " " + op_symbol(n.op) + " " + rec(n.b) + ")";
  }
}

namespace {

Ex bin(Op op, Ex a, Ex b) {
  PNP_CHECK(a.pool != nullptr && a.pool == b.pool, "Ex operands from different pools");
  return Ex{a.pool, a.pool->binary(op, a.ref, b.ref)};
}

}  // namespace

Ex operator+(Ex a, Ex b) { return bin(Op::Add, a, b); }
Ex operator-(Ex a, Ex b) { return bin(Op::Sub, a, b); }
Ex operator*(Ex a, Ex b) { return bin(Op::Mul, a, b); }
Ex operator/(Ex a, Ex b) { return bin(Op::Div, a, b); }
Ex operator%(Ex a, Ex b) { return bin(Op::Mod, a, b); }
Ex operator-(Ex a) { return Ex{a.pool, a.pool->unary(Op::Neg, a.ref)}; }
Ex operator!(Ex a) { return Ex{a.pool, a.pool->unary(Op::Not, a.ref)}; }
Ex operator&&(Ex a, Ex b) { return bin(Op::And, a, b); }
Ex operator||(Ex a, Ex b) { return bin(Op::Or, a, b); }
Ex operator==(Ex a, Ex b) { return bin(Op::Eq, a, b); }
Ex operator!=(Ex a, Ex b) { return bin(Op::Ne, a, b); }
Ex operator<(Ex a, Ex b) { return bin(Op::Lt, a, b); }
Ex operator<=(Ex a, Ex b) { return bin(Op::Le, a, b); }
Ex operator>(Ex a, Ex b) { return bin(Op::Gt, a, b); }
Ex operator>=(Ex a, Ex b) { return bin(Op::Ge, a, b); }

}  // namespace pnp::expr
