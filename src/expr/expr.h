// Expression layer: values, hash-consed expression trees, and evaluation.
//
// Every guard, assignment right-hand side, message field, and property
// proposition in the modeling IR is an expression over
//   * global variables (shared state),
//   * local variables (the evaluating process's frame),
//   * channel status queries (len / full / empty),
//   * the evaluating process's pid (`_pid` in Promela terms).
//
// Expressions are interned in a Pool and referenced by integer Ref, which
// keeps the IR compact and makes structural equality trivial.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace pnp::expr {

/// All model values are 32-bit signed integers (Promela byte/int/bool/mtype
/// all embed into this range; channel ids are also values, which is what
/// lets channels be passed as process parameters).
using Value = std::int32_t;

using Ref = std::int32_t;
constexpr Ref kNoExpr = -1;

enum class Op : std::uint8_t {
  Const,     // imm
  Global,    // imm = global slot
  Local,     // imm = local slot in evaluating process frame
  SelfPid,   // pid of the evaluating process
  Neg,       // -a
  Not,       // !a
  Add, Sub, Mul, Div, Mod,
  And, Or,   // logical, short-circuit semantics not needed (no side effects)
  Eq, Ne, Lt, Le, Gt, Ge,
  ChanLen,    // a = channel-id expression
  ChanFull,
  ChanEmpty,
  Cond,       // a ? b : c
};

struct Node {
  Op op{Op::Const};
  Value imm{0};
  Ref a{kNoExpr};
  Ref b{kNoExpr};
  Ref c{kNoExpr};

  friend bool operator==(const Node&, const Node&) = default;
};

/// Read-only view of channel occupancy, implemented by the kernel state.
class ChannelView {
 public:
  virtual ~ChannelView() = default;
  virtual int chan_len(int chan) const = 0;
  virtual int chan_capacity(int chan) const = 0;
};

/// Everything an expression may read during evaluation.
///
/// A process frame is split into immutable `params` (spawn arguments, e.g.
/// the channel ids a port was wired with -- kept out of the state vector)
/// followed by mutable `locals`; Local slot i resolves to params[i] when
/// i < params.size(), else locals[i - params.size()].
struct EvalEnv {
  std::span<const Value> globals;
  std::span<const Value> locals;
  std::span<const Value> params;
  const ChannelView* chans = nullptr;
  Value self_pid = -1;
};

/// Interning arena for expression nodes.
class Pool {
 public:
  Ref intern(const Node& n);

  const Node& at(Ref r) const { return nodes_[static_cast<std::size_t>(r)]; }
  std::size_t size() const { return nodes_.size(); }

  // -- convenience constructors -------------------------------------------
  Ref konst(Value v) { return intern({Op::Const, v, kNoExpr, kNoExpr, kNoExpr}); }
  Ref global(int slot) { return intern({Op::Global, slot, kNoExpr, kNoExpr, kNoExpr}); }
  Ref local(int slot) { return intern({Op::Local, slot, kNoExpr, kNoExpr, kNoExpr}); }
  Ref self_pid() { return intern({Op::SelfPid, 0, kNoExpr, kNoExpr, kNoExpr}); }
  Ref unary(Op op, Ref a) { return intern({op, 0, a, kNoExpr, kNoExpr}); }
  Ref binary(Op op, Ref a, Ref b) { return intern({op, 0, a, b, kNoExpr}); }
  Ref cond(Ref c, Ref t, Ref f) { return intern({Op::Cond, 0, c, t, f}); }
  Ref chan_query(Op op, Ref chan) { return intern({op, 0, chan, kNoExpr, kNoExpr}); }

  /// Evaluates `r` under `env`. Division/modulo by zero raises ModelError.
  Value eval(Ref r, const EvalEnv& env) const;

  /// True if evaluating `r` reads any global variable or channel status
  /// (used by the partial-order reduction to classify transitions).
  bool reads_shared(Ref r) const;

  /// Renders the expression; `global_name`/`local_name` may be null, in
  /// which case slots print as g3 / l2.
  std::string to_string(Ref r,
                        const std::function<std::string(int)>* global_name = nullptr,
                        const std::function<std::string(int)>* local_name = nullptr) const;

 private:
  struct NodeHash {
    std::size_t operator()(const Node& n) const;
  };
  std::vector<Node> nodes_;
  std::unordered_map<Node, Ref, NodeHash> interned_;
};

/// Operator-overloaded wrapper so model-building code reads like the
/// Promela it mirrors: `len(q) < k(5) && g(turn) == k(BLUE)`.
struct Ex {
  Pool* pool = nullptr;
  Ref ref = kNoExpr;
};

inline Ex wrap(Pool& p, Ref r) { return Ex{&p, r}; }

Ex operator+(Ex a, Ex b);
Ex operator-(Ex a, Ex b);
Ex operator*(Ex a, Ex b);
Ex operator/(Ex a, Ex b);
Ex operator%(Ex a, Ex b);
Ex operator-(Ex a);
Ex operator!(Ex a);
Ex operator&&(Ex a, Ex b);
Ex operator||(Ex a, Ex b);
Ex operator==(Ex a, Ex b);
Ex operator!=(Ex a, Ex b);
Ex operator<(Ex a, Ex b);
Ex operator<=(Ex a, Ex b);
Ex operator>(Ex a, Ex b);
Ex operator>=(Ex a, Ex b);

}  // namespace pnp::expr
