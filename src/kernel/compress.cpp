#include "kernel/compress.h"

#include <cstring>

#include "support/hash.h"
#include "support/panic.h"

namespace pnp::kernel {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t c = 64;
  while (c < n) c <<= 1;
  return c;
}

// Compressed keys are built tens of millions of times per run; writing
// through a raw pointer into a pre-sized buffer avoids the per-byte
// push_back size/capacity dance that showed up in exploration profiles.
inline std::uint8_t* write_varint(std::uint8_t* p, std::uint32_t v) {
  while (v >= 0x80) {
    *p++ = static_cast<std::uint8_t>(v | 0x80);
    v >>= 7;
  }
  *p++ = static_cast<std::uint8_t>(v);
  return p;
}

// Worst-case encoded size: 5 varint bytes per region plus the pid byte.
inline std::size_t key_bound(std::size_t n_regions) { return n_regions * 5 + 1; }

std::uint32_t read_varint(std::span<const std::uint8_t> key, std::size_t& at) {
  std::uint32_t v = 0;
  int shift = 0;
  for (;;) {
    PNP_CHECK(at < key.size(), "truncated compressed state key");
    const std::uint8_t b = key[at++];
    v |= static_cast<std::uint32_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    PNP_CHECK(shift < 32, "overlong varint in compressed state key");
  }
}

}  // namespace

StateCompressor::StateCompressor(const Layout& lay, int stripes,
                                 std::size_t expected_components)
    : n_stripes_(stripes < 1 ? 1 : stripes),
      concurrent_(stripes > 1),
      state_size_(lay.size()) {
  const auto regions = lay.regions();
  regions_.reserve(regions.size());
  const std::size_t per_stripe = pow2_at_least(
      (expected_components / static_cast<std::size_t>(n_stripes_) + 1) * 2);
  for (const auto& [begin, width] : regions) {
    Region r;
    r.begin = begin;
    r.width = width;
    r.stripes = std::make_unique<Stripe[]>(static_cast<std::size_t>(n_stripes_));
    for (int i = 0; i < n_stripes_; ++i) {
      Stripe& st = r.stripes[static_cast<std::size_t>(i)];
      st.slots.assign(per_stripe, Slot{});
      st.store.init(width);
      st.bytes.store(st.slots.capacity() * sizeof(Slot) +
                         st.store.resident_bytes(),
                     std::memory_order_relaxed);
    }
    regions_.push_back(std::move(r));
  }
  region_of_slot_.assign(static_cast<std::size_t>(state_size_), -1);
  for (std::size_t k = 0; k < regions_.size(); ++k)
    for (int i = 0; i < regions_[k].width; ++i)
      region_of_slot_[static_cast<std::size_t>(regions_[k].begin + i)] =
          static_cast<int>(k);
}

void StateCompressor::grow(Stripe& st) {
  const std::size_t cap = st.slots.size() * 2;
  PNP_CHECK(cap <= (std::size_t{1} << 32),
            "component intern table exceeds 2^32 slots");
  std::vector<Slot> slots(cap);
  const std::size_t mask = cap - 1;
  for (const Slot& s : st.slots) {
    if (s.id == kEmptySlot) continue;
    std::size_t j = static_cast<std::size_t>(s.fp) & mask;
    while (slots[j].id != kEmptySlot) j = (j + 1) & mask;
    slots[j] = s;
  }
  st.slots = std::move(slots);
}

std::uint32_t StateCompressor::intern(Region& r, const Value* vals) {
  const std::size_t width = static_cast<std::size_t>(r.width);
  const std::uint64_t h = fast_hash64(
      {reinterpret_cast<const std::uint8_t*>(vals), width * sizeof(Value)});
  return intern_hashed(r, vals, h);
}

std::uint32_t StateCompressor::intern_hashed(Region& r, const Value* vals,
                                             std::uint64_t h) {
  const std::size_t width = static_cast<std::size_t>(r.width);
  // High bits pick the stripe, low bits probe the stripe-local table, so the
  // two uses stay independent.
  const int si = static_cast<int>((h >> 48) % static_cast<std::uint64_t>(n_stripes_));
  const std::uint32_t fp = static_cast<std::uint32_t>(h);
  Stripe& st = r.stripes[static_cast<std::size_t>(si)];
  std::unique_lock<std::mutex> lock(st.mu, std::defer_lock);
  if (concurrent_) lock.lock();

  const std::size_t mask = st.slots.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (st.slots[i].id != kEmptySlot) {
    if (st.slots[i].fp == fp &&
        std::memcmp(st.store.at(st.slots[i].id), vals,
                    width * sizeof(Value)) == 0)
      return st.slots[i].id * static_cast<std::uint32_t>(n_stripes_) +
             static_cast<std::uint32_t>(si);
    i = (i + 1) & mask;
  }
  // fresh component: append values, claim the probe slot
  const std::uint32_t local = st.count++;
  st.store.append(vals);
  st.slots[i].fp = fp;
  st.slots[i].id = local;
  if ((static_cast<std::size_t>(st.count) + 1) * 10 >= st.slots.size() * 7)
    grow(st);
  st.bytes.store(st.slots.capacity() * sizeof(Slot) +
                     st.store.resident_bytes(),
                 std::memory_order_relaxed);
  st.spill_bytes.store(st.store.spill_bytes(), std::memory_order_relaxed);
  return local * static_cast<std::uint32_t>(n_stripes_) +
         static_cast<std::uint32_t>(si);
}

void StateCompressor::compress(const State& s, std::vector<std::uint8_t>& out) {
  PNP_CHECK(static_cast<int>(s.mem.size()) == state_size_,
            "compress: state size does not match layout");
  out.resize(key_bound(regions_.size()));
  std::uint8_t* p = out.data();
  for (Region& r : regions_)
    p = write_varint(p, intern(r, s.mem.data() + r.begin));
  PNP_CHECK(s.atomic_pid < 255, "compress: atomic pid out of byte range");
  *p++ = static_cast<std::uint8_t>(s.atomic_pid & 0xff);
  out.resize(static_cast<std::size_t>(p - out.data()));
}

void StateCompressor::compress_full(const State& s,
                                    std::vector<std::uint8_t>& out,
                                    std::uint32_t* ids) {
  PNP_CHECK(static_cast<int>(s.mem.size()) == state_size_,
            "compress: state size does not match layout");
  out.resize(key_bound(regions_.size()));
  std::uint8_t* p = out.data();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    ids[k] = intern(regions_[k], s.mem.data() + regions_[k].begin);
    p = write_varint(p, ids[k]);
  }
  PNP_CHECK(s.atomic_pid < 255, "compress: atomic pid out of byte range");
  *p++ = static_cast<std::uint8_t>(s.atomic_pid & 0xff);
  out.resize(static_cast<std::size_t>(p - out.data()));
}

void StateCompressor::compress_delta(const State& s,
                                     const std::uint32_t* prev_ids,
                                     const std::uint8_t* dirty,
                                     std::vector<std::uint8_t>& out,
                                     std::uint32_t* ids) {
  PNP_CHECK(static_cast<int>(s.mem.size()) == state_size_,
            "compress: state size does not match layout");
  out.resize(key_bound(regions_.size()));
  std::uint8_t* p = out.data();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    ids[k] = dirty[k] ? intern(regions_[k], s.mem.data() + regions_[k].begin)
                      : prev_ids[k];
    p = write_varint(p, ids[k]);
  }
  PNP_CHECK(s.atomic_pid < 255, "compress: atomic pid out of byte range");
  *p++ = static_cast<std::uint8_t>(s.atomic_pid & 0xff);
  out.resize(static_cast<std::size_t>(p - out.data()));
}

void StateCompressor::compress_delta_masked(const State& s,
                                            const std::uint32_t* prev_ids,
                                            std::uint64_t dirty,
                                            const std::uint64_t* hashes,
                                            std::vector<std::uint8_t>& out,
                                            std::uint32_t* ids) {
  PNP_CHECK(static_cast<int>(s.mem.size()) == state_size_,
            "compress: state size does not match layout");
  PNP_CHECK(regions_.size() <= 64,
            "compress_delta_masked: layout exceeds 64 regions");
  out.resize(key_bound(regions_.size()));
  std::uint8_t* p = out.data();
  for (std::size_t k = 0; k < regions_.size(); ++k) {
    ids[k] = (dirty >> k) & 1u
                 ? intern_hashed(regions_[k], s.mem.data() + regions_[k].begin,
                                 hashes[k])
                 : prev_ids[k];
    p = write_varint(p, ids[k]);
  }
  PNP_CHECK(s.atomic_pid < 255, "compress: atomic pid out of byte range");
  *p++ = static_cast<std::uint8_t>(s.atomic_pid & 0xff);
  out.resize(static_cast<std::size_t>(p - out.data()));
}

State StateCompressor::decompress(std::span<const std::uint8_t> key) const {
  State s;
  s.mem.assign(static_cast<std::size_t>(state_size_), 0);
  std::size_t at = 0;
  for (const Region& r : regions_) {
    const std::uint32_t id = read_varint(key, at);
    const std::uint32_t local = id / static_cast<std::uint32_t>(n_stripes_);
    const std::uint32_t si = id % static_cast<std::uint32_t>(n_stripes_);
    const Stripe& st = r.stripes[si];
    PNP_CHECK(local < st.count, "decompress: component id out of range");
    const std::size_t width = static_cast<std::size_t>(r.width);
    std::memcpy(s.mem.data() + r.begin, st.store.at(local),
                width * sizeof(Value));
  }
  PNP_CHECK(at + 1 == key.size(), "decompress: trailing bytes in key");
  const std::uint8_t pid = key[at];
  s.atomic_pid = pid == 0xff ? -1 : static_cast<int>(pid);
  return s;
}

std::uint64_t StateCompressor::components() const {
  std::uint64_t n = 0;
  for (const Region& r : regions_)
    for (int i = 0; i < n_stripes_; ++i)
      n += r.stripes[static_cast<std::size_t>(i)].count;
  return n;
}

std::vector<std::uint64_t> StateCompressor::region_component_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(regions_.size());
  for (const Region& r : regions_) {
    std::uint64_t n = 0;
    for (int i = 0; i < n_stripes_; ++i)
      n += r.stripes[static_cast<std::size_t>(i)].count;
    out.push_back(n);
  }
  return out;
}

std::uint64_t StateCompressor::approx_bytes() const {
  std::uint64_t bytes = 0;
  for (const Region& r : regions_)
    for (int i = 0; i < n_stripes_; ++i)
      bytes += r.stripes[static_cast<std::size_t>(i)].bytes.load(
          std::memory_order_relaxed);
  return bytes;
}

void StateCompressor::attach_spill(support::SpillPool* pool) {
  for (Region& r : regions_) {
    for (int i = 0; i < n_stripes_; ++i) {
      Stripe& st = r.stripes[static_cast<std::size_t>(i)];
      std::unique_lock<std::mutex> lock(st.mu, std::defer_lock);
      if (concurrent_) lock.lock();
      st.store.attach_spill(pool);
    }
  }
}

std::uint64_t StateCompressor::spill_bytes() const {
  std::uint64_t bytes = 0;
  for (const Region& r : regions_)
    for (int i = 0; i < n_stripes_; ++i)
      bytes += r.stripes[static_cast<std::size_t>(i)].spill_bytes.load(
          std::memory_order_relaxed);
  return bytes;
}

}  // namespace pnp::kernel
