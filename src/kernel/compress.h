// COLLAPSE-style state compression (after SPIN's COLLAPSE mode, Holzmann).
//
// The state vector is split along Layout::regions() boundaries -- globals,
// one region per process frame, one region per buffered channel -- and each
// region's slot values are interned once in a per-region component table.
// A compressed state is then just one varint component id per region plus
// the atomic-holder pid: a successor that only moved one process re-encodes
// as a handful of bytes instead of the whole vector, and the full slot data
// for each distinct component is stored exactly once, in the table.
//
// Ids are dense and injective per region, so equal compressed keys imply
// equal states (the property the visited set relies on), and decompress()
// is exact -- the tables retain every component ever interned.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "kernel/state.h"
#include "support/spill.h"

namespace pnp::kernel {

/// Chunked append-only arena of fixed-width component value records -- the
/// intern pool behind each compressor stripe. Chunks never move (so value
/// pointers stay stable across appends) and, once a SpillPool is attached,
/// new chunks are disk-backed: the pool's pages are clean-evictable, which
/// lets the intern tables grow past the memory budget. Record `local` lives
/// at chunk local/per_chunk_, slot local%per_chunk_ -- O(1) either way.
class ValueArena {
 public:
  void init(int width) {
    width_ = width < 0 ? 0 : static_cast<std::size_t>(width);
    per_chunk_ = kChunkValues / (width_ == 0 ? 1 : width_);
    if (per_chunk_ == 0) per_chunk_ = 1;
    used_ = per_chunk_;  // forces a chunk on first append
  }

  const Value* at(std::uint32_t local) const {
    // A width-0 region has one empty component; hand back a stable dummy
    // so memcmp(at(..), vals, 0) sees a valid pointer.
    if (width_ == 0) return &kZeroWidth;
    return chunks_[local / per_chunk_] + (local % per_chunk_) * width_;
  }

  /// Appends one record (width values); records are addressed by append
  /// order, matching the caller's dense local ids.
  void append(const Value* vals) {
    if (width_ == 0) return;
    if (used_ == per_chunk_) new_chunk();
    std::memcpy(chunks_.back() + used_ * width_, vals, width_ * sizeof(Value));
    ++used_;
  }

  void attach_spill(support::SpillPool* pool) { spill_ = pool; }

  std::uint64_t resident_bytes() const {
    return heap_.size() * chunk_bytes();
  }
  std::uint64_t spill_bytes() const {
    return (chunks_.size() - heap_.size()) * chunk_bytes();
  }

 private:
  static constexpr std::size_t kChunkValues = 1024;  // ~4 KiB per chunk

  std::size_t chunk_bytes() const {
    return per_chunk_ * width_ * sizeof(Value);
  }

  void new_chunk() {
    if (spill_) {
      chunks_.push_back(static_cast<Value*>(spill_->alloc(chunk_bytes())));
    } else {
      heap_.push_back(std::make_unique<Value[]>(per_chunk_ * width_));
      chunks_.push_back(heap_.back().get());
    }
    used_ = 0;
  }

  static constexpr Value kZeroWidth{};

  std::size_t width_ = 1;
  std::size_t per_chunk_ = kChunkValues;
  std::size_t used_ = kChunkValues;  // forces a chunk on first append
  std::vector<Value*> chunks_;
  std::vector<std::unique_ptr<Value[]>> heap_;  // owns the heap chunks
  support::SpillPool* spill_ = nullptr;         // not owned
};

class StateCompressor {
 public:
  /// `stripes` > 1 lock-stripes every component table so compress() may be
  /// called concurrently from that many (or more) workers; 1 elides all
  /// locking for single-threaded searches. `expected_components` pre-sizes
  /// each region's table (components are shared across states, so even
  /// million-state runs typically intern a few thousand per region).
  explicit StateCompressor(const Layout& lay, int stripes = 1,
                           std::size_t expected_components = 1024);

  StateCompressor(const StateCompressor&) = delete;
  StateCompressor& operator=(const StateCompressor&) = delete;

  /// Replaces `out` with the compressed encoding of `s` (reusing capacity):
  /// LEB128 varint component ids in region order, then `atomic_pid & 0xff`.
  void compress(const State& s, std::vector<std::uint8_t>& out);

  /// compress() that also reports each region's component id into `ids`
  /// (n_regions() entries), enabling compress_delta() on successors.
  void compress_full(const State& s, std::vector<std::uint8_t>& out,
                     std::uint32_t* ids);

  /// Delta compression -- the core COLLAPSE win. `s` differs from a
  /// previously compressed state only in the regions flagged in `dirty`
  /// (n_regions() entries): clean regions reuse `prev_ids` without touching
  /// their slots, dirty ones are re-interned. Produces exactly the bytes
  /// compress() would; `ids` receives s's per-region ids. Callers derive
  /// `dirty` from the successor generator's undo log via region_of_slot().
  void compress_delta(const State& s, const std::uint32_t* prev_ids,
                      const std::uint8_t* dirty,
                      std::vector<std::uint8_t>& out, std::uint32_t* ids);

  /// compress_delta() fed by a codegen engine's specialized store path: the
  /// dirty set arrives as a region bitmask (so layouts are capped at 64
  /// regions for this entry) and each dirty region's hash is precomputed by
  /// the engine's open-coded layout walk instead of the generic
  /// fast_hash64 loop here. `hashes[k]` must be bit-exact fast_hash64 of
  /// region k's value span whenever bit k of `dirty` is set -- ids, stripe
  /// placement, and the output bytes are derived from it and must match
  /// what compress() would produce.
  void compress_delta_masked(const State& s, const std::uint32_t* prev_ids,
                             std::uint64_t dirty, const std::uint64_t* hashes,
                             std::vector<std::uint8_t>& out,
                             std::uint32_t* ids);

  /// Region index covering each state slot (regions partition the slots).
  const std::vector<int>& region_of_slot() const { return region_of_slot_; }

  /// Exact inverse of compress() for keys produced by this compressor.
  State decompress(std::span<const std::uint8_t> key) const;

  int n_regions() const { return static_cast<int>(regions_.size()); }

  /// Total distinct components interned across all regions.
  std::uint64_t components() const;

  /// Distinct components per region, in region order -- the intern-table
  /// size profile surfaced by the observability layer (a region whose count
  /// approaches the visited-set size is not compressing).
  std::vector<std::uint64_t> region_component_counts() const;

  /// Resident footprint of the intern tables: open-addressing slot arrays
  /// plus the heap-resident component value chunks. Feeds memory-budget
  /// accounting; spilled chunks are excluded (see attach_spill).
  std::uint64_t approx_bytes() const;

  /// New component-value chunks in every stripe spill to `pool` from now
  /// on. Safe to call while workers are interning (the switch is taken
  /// under each stripe lock in concurrent mode).
  void attach_spill(support::SpillPool* pool);

  /// Disk-backed share of the intern pools.
  std::uint64_t spill_bytes() const;

 private:
  // One lock stripe of a region's intern table: open addressing over one
  // flat array of {local id, 32-bit fingerprint} slots (a probe touches one
  // cache line, and the arena confirms every fingerprint match, so the
  // truncation to 32 bits can cost a rare extra compare but never a wrong
  // id), with the component values appended to a width-strided arena. A
  // component's global id is local_index * n_stripes + stripe, which keeps
  // ids dense and injective without cross-stripe coordination.
  struct Slot {
    std::uint32_t id = kEmptySlot;  // local index; kEmptySlot = free
    std::uint32_t fp = 0;           // low 32 bits of the component hash
  };
  struct Stripe {
    std::mutex mu;
    std::vector<Slot> slots;
    ValueArena store;
    std::uint32_t count = 0;
    std::atomic<std::uint64_t> bytes{0};        // resident footprint
    std::atomic<std::uint64_t> spill_bytes{0};  // disk-backed footprint
  };
  struct Region {
    int begin = 0;
    int width = 0;
    std::unique_ptr<Stripe[]> stripes;
  };

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  std::uint32_t intern(Region& r, const Value* vals);
  std::uint32_t intern_hashed(Region& r, const Value* vals, std::uint64_t h);
  static void grow(Stripe& st);

  std::vector<Region> regions_;
  std::vector<int> region_of_slot_;
  int n_stripes_;
  bool concurrent_;
  int state_size_;
};

}  // namespace pnp::kernel
