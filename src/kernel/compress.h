// COLLAPSE-style state compression (after SPIN's COLLAPSE mode, Holzmann).
//
// The state vector is split along Layout::regions() boundaries -- globals,
// one region per process frame, one region per buffered channel -- and each
// region's slot values are interned once in a per-region component table.
// A compressed state is then just one varint component id per region plus
// the atomic-holder pid: a successor that only moved one process re-encodes
// as a handful of bytes instead of the whole vector, and the full slot data
// for each distinct component is stored exactly once, in the table.
//
// Ids are dense and injective per region, so equal compressed keys imply
// equal states (the property the visited set relies on), and decompress()
// is exact -- the tables retain every component ever interned.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "kernel/state.h"

namespace pnp::kernel {

class StateCompressor {
 public:
  /// `stripes` > 1 lock-stripes every component table so compress() may be
  /// called concurrently from that many (or more) workers; 1 elides all
  /// locking for single-threaded searches. `expected_components` pre-sizes
  /// each region's table (components are shared across states, so even
  /// million-state runs typically intern a few thousand per region).
  explicit StateCompressor(const Layout& lay, int stripes = 1,
                           std::size_t expected_components = 1024);

  StateCompressor(const StateCompressor&) = delete;
  StateCompressor& operator=(const StateCompressor&) = delete;

  /// Replaces `out` with the compressed encoding of `s` (reusing capacity):
  /// LEB128 varint component ids in region order, then `atomic_pid & 0xff`.
  void compress(const State& s, std::vector<std::uint8_t>& out);

  /// compress() that also reports each region's component id into `ids`
  /// (n_regions() entries), enabling compress_delta() on successors.
  void compress_full(const State& s, std::vector<std::uint8_t>& out,
                     std::uint32_t* ids);

  /// Delta compression -- the core COLLAPSE win. `s` differs from a
  /// previously compressed state only in the regions flagged in `dirty`
  /// (n_regions() entries): clean regions reuse `prev_ids` without touching
  /// their slots, dirty ones are re-interned. Produces exactly the bytes
  /// compress() would; `ids` receives s's per-region ids. Callers derive
  /// `dirty` from the successor generator's undo log via region_of_slot().
  void compress_delta(const State& s, const std::uint32_t* prev_ids,
                      const std::uint8_t* dirty,
                      std::vector<std::uint8_t>& out, std::uint32_t* ids);

  /// Region index covering each state slot (regions partition the slots).
  const std::vector<int>& region_of_slot() const { return region_of_slot_; }

  /// Exact inverse of compress() for keys produced by this compressor.
  State decompress(std::span<const std::uint8_t> key) const;

  int n_regions() const { return static_cast<int>(regions_.size()); }

  /// Total distinct components interned across all regions.
  std::uint64_t components() const;

  /// Distinct components per region, in region order -- the intern-table
  /// size profile surfaced by the observability layer (a region whose count
  /// approaches the visited-set size is not compressing).
  std::vector<std::uint64_t> region_component_counts() const;

  /// Real footprint of the intern tables: open-addressing slot arrays plus
  /// the component value arenas. Feeds memory-budget accounting.
  std::uint64_t approx_bytes() const;

 private:
  // One lock stripe of a region's intern table: open addressing over the
  // component fingerprint (parallel fps/ids arrays), with the component
  // values appended to a width-strided arena. A component's global id is
  // local_index * n_stripes + stripe, which keeps ids dense and injective
  // without cross-stripe coordination.
  struct Stripe {
    std::mutex mu;
    std::vector<std::uint64_t> fps;
    std::vector<std::uint32_t> ids;  // local indices; kEmptySlot = free
    std::vector<Value> store;
    std::uint32_t count = 0;
    std::atomic<std::uint64_t> bytes{0};
  };
  struct Region {
    int begin = 0;
    int width = 0;
    std::unique_ptr<Stripe[]> stripes;
  };

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  std::uint32_t intern(Region& r, const Value* vals);
  static void grow(Stripe& st);

  std::vector<Region> regions_;
  std::vector<int> region_of_slot_;
  int n_stripes_;
  bool concurrent_;
  int state_size_;
};

}  // namespace pnp::kernel
