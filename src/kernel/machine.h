// Machine: a compiled system ready for execution -- owns the compiled
// proctypes and produces initial states and successors with full Promela
// interleaving semantics (rendezvous handshakes, buffered channels, `else`,
// atomic regions, sorted sends, random/copy receives).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "compile/compiler.h"
#include "kernel/state.h"
#include "model/system.h"

namespace pnp::kernel {

/// What a single interleaving step did, for traces and MSC rendering.
struct StepEvent {
  enum class Kind : std::uint8_t { Local, Send, Recv, Handshake };
  Kind kind{Kind::Local};
  int chan{-1};
  std::vector<Value> msg;  // message moved by this step, if any
};

struct Step {
  int pid{-1};
  int trans{-1};           // index into the executing proc's transition list
  int partner_pid{-1};     // rendezvous receiver, if any
  int partner_trans{-1};
  StepEvent event;
  bool assert_failed{false};
};

using Succ = std::pair<State, Step>;

/// Receives successors one at a time during streaming generation. `ns` and
/// `step` live in the caller's SuccScratch and are valid only for the
/// duration of the call -- copy them to keep them. Return false to abort
/// generation early (remaining candidates are skipped).
class SuccSink {
 public:
  virtual bool on_successor(const State& ns, const Step& step) = 0;

 protected:
  ~SuccSink() = default;
};

/// Per-caller scratch for mutate-and-revert successor generation: one State
/// buffer plus an undo log, so producing a successor costs only the slots
/// the step touches instead of a full state-vector copy. Reuse one instance
/// across visit_successors() calls to keep buffer capacity warm. The fields
/// are internal to the kernel successor generator.
struct SuccScratch {
  State state;
  std::vector<std::pair<int, Value>> undo;  // (slot, previous value)
  Step step;  // reused so event.msg keeps its capacity
};

class Machine {
 public:
  /// Compiles `sys`; the spec must outlive the machine.
  explicit Machine(const model::SystemSpec& sys);

  /// Uses `precompiled` proctypes (index-aligned with sys.proctypes)
  /// instead of recompiling; used by the incremental model generator.
  Machine(const model::SystemSpec& sys,
          std::vector<compile::CompiledProc> precompiled);

  /// Drop-in proctype substitution: a machine over the same spec (and the
  /// same processes, channels, and globals) whose control flow comes from
  /// `procs` instead of this machine's CFGs. Validates the substitution
  /// contract -- identical frame layout and parameter count per proctype,
  /// entry/transition pcs in range, adjacency consistent -- so a malformed
  /// replacement (e.g. a buggy minimizer) fails loudly here instead of
  /// corrupting the search. Used by reduce::ReducedMachine to re-inject
  /// bisimulation-quotient automata.
  Machine substitute(std::vector<compile::CompiledProc> procs) const;

  const model::SystemSpec& spec() const { return *sys_; }
  const Layout& layout() const { return layout_; }
  const std::vector<compile::CompiledProc>& compiled() const { return procs_; }
  int n_processes() const { return static_cast<int>(sys_->processes.size()); }
  const compile::CompiledProc& proc_of(int pid) const;
  const std::string& proc_name(int pid) const;

  State initial() const;

  /// Appends all successors of `s` to `out`. A successor whose Step has
  /// `assert_failed` set represents an assertion violation discovered while
  /// executing that step.
  void successors(const State& s, std::vector<Succ>& out) const;

  /// Successors produced by process `pid` only (used by POR and the atomic
  /// rule). Returns true if at least one was produced.
  bool successors_of(const State& s, int pid, std::vector<Succ>& out) const;

  /// Streaming variants: each successor is materialized in `scratch` by
  /// mutate-and-revert and handed to `sink` in exactly the order the
  /// vector-building overloads would append it. The sink may abort early by
  /// returning false. `s` must not alias `scratch.state`.
  void visit_successors(const State& s, SuccScratch& scratch,
                        SuccSink& sink) const;

  /// Streaming successors_of(); returns true if at least one successor was
  /// produced (even if the sink then aborted).
  bool visit_successors_of(const State& s, int pid, SuccScratch& scratch,
                           SuccSink& sink) const;

  /// True if every process sits at a valid end-state pc (and, per Promela's
  /// strict -q interpretation, which we adopt, all buffered channels are
  /// empty is NOT required).
  bool is_valid_end(const State& s) const;

  /// Evaluates a closed expression (globals + channels only) on `s`.
  Value eval_global(expr::Ref e, const State& s) const;

  std::string describe_step(const Step& step) const;
  std::string format_state(const State& s) const;

 private:
  friend class SuccGen;
  const model::SystemSpec* sys_;
  std::vector<compile::CompiledProc> procs_;
  Layout layout_;
};

}  // namespace pnp::kernel
