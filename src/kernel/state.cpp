#include "kernel/state.h"

#include <cstring>

#include "support/panic.h"

namespace pnp::kernel {

Layout::Layout(const model::SystemSpec& sys) {
  n_globals_ = static_cast<int>(sys.globals.size());
  int at = n_globals_;
  procs_.reserve(sys.processes.size());
  for (const model::ProcessInst& inst : sys.processes) {
    const model::ProcType& pt =
        sys.proctypes[static_cast<std::size_t>(inst.proctype)];
    ProcSlot p;
    p.base = at;
    p.n_params = static_cast<int>(pt.params.size());
    p.n_locals = static_cast<int>(pt.locals.size());
    at += 1 + p.n_locals;  // pc + mutable locals (params stay out of state)
    procs_.push_back(p);
  }
  chans_.reserve(sys.channels.size());
  for (const model::ChannelDecl& cd : sys.channels) {
    ChanSlot c;
    c.capacity = cd.capacity;
    c.arity = cd.arity;
    c.lossy = cd.lossy;
    if (cd.capacity > 0) {
      c.base = at;
      at += 1 + cd.capacity * cd.arity;  // len + slots
    }
    chans_.push_back(c);
  }
  total_ = at;
}

std::vector<std::pair<int, int>> Layout::regions() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(1 + procs_.size() + chans_.size());
  if (n_globals_ > 0) out.emplace_back(0, n_globals_);
  for (const ProcSlot& p : procs_) out.emplace_back(p.base, 1 + p.n_locals);
  for (const ChanSlot& c : chans_)
    if (c.base >= 0) out.emplace_back(c.base, 1 + c.capacity * c.arity);
  return out;
}

void Layout::chan_push(State& s, int c, const Value* fields) const {
  const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
  PNP_CHECK(ch.base >= 0, "push on rendezvous channel");
  Value& len = s.mem[static_cast<std::size_t>(ch.base)];
  PNP_CHECK(len < ch.capacity, "push on full channel");
  const std::size_t arity = static_cast<std::size_t>(ch.arity);
  Value* dst = s.mem.data() + static_cast<std::size_t>(ch.base) + 1 +
               static_cast<std::size_t>(len) * arity;
  std::memcpy(dst, fields, sizeof(Value) * arity);
  ++len;
}

void Layout::chan_push_sorted(State& s, int c, const Value* fields) const {
  const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
  PNP_CHECK(ch.base >= 0, "push on rendezvous channel");
  Value& len = s.mem[static_cast<std::size_t>(ch.base)];
  PNP_CHECK(len < ch.capacity, "push on full channel");
  const std::size_t arity = static_cast<std::size_t>(ch.arity);
  Value* base = s.mem.data() + static_cast<std::size_t>(ch.base) + 1;
  // find first message lexicographically greater than `fields`; all index
  // math in std::size_t so `pos * arity` can never wrap through int
  std::size_t pos = 0;
  const std::size_t n = static_cast<std::size_t>(len);
  while (pos < n) {
    const Value* m = base + pos * arity;
    bool greater = false;
    for (std::size_t f = 0; f < arity; ++f) {
      if (m[f] != fields[f]) {
        greater = m[f] > fields[f];
        break;
      }
    }
    if (greater) break;
    ++pos;
  }
  // shift tail back one slot
  std::memmove(base + (pos + 1) * arity, base + pos * arity,
               sizeof(Value) * ((n - pos) * arity));
  std::memcpy(base + pos * arity, fields, sizeof(Value) * arity);
  ++len;
}

void Layout::chan_erase(State& s, int c, int i) const {
  const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
  PNP_CHECK(ch.base >= 0, "erase on rendezvous channel");
  Value& len = s.mem[static_cast<std::size_t>(ch.base)];
  PNP_CHECK(i >= 0 && i < len, "erase out of range");
  const std::size_t arity = static_cast<std::size_t>(ch.arity);
  const std::size_t at = static_cast<std::size_t>(i);
  const std::size_t n = static_cast<std::size_t>(len);
  Value* base = s.mem.data() + static_cast<std::size_t>(ch.base) + 1;
  std::memmove(base + at * arity, base + (at + 1) * arity,
               sizeof(Value) * ((n - at - 1) * arity));
  // zero the freed slot so equal queue contents encode identically
  std::memset(base + (n - 1) * arity, 0, sizeof(Value) * arity);
  --len;
}

State Layout::initial(const model::SystemSpec& sys,
                      const std::vector<int>&) const {
  State s;
  s.mem.assign(static_cast<std::size_t>(total_), 0);
  for (std::size_t g = 0; g < sys.globals.size(); ++g)
    s.mem[g] = sys.globals[g].init;
  // pcs and frames are filled by the Machine (it knows compiled entries)
  return s;
}

std::string encode_key(const State& s) {
  std::string key;
  encode_key_into(s, key);
  return key;
}

void encode_key_into(const State& s, std::string& key) {
  // Byte-compressed canonical encoding: almost every slot holds a tiny
  // value (pc, signal, pid, counter), so values in [-126, 127] take one
  // byte; 0xFE escapes to a full 4-byte little-endian word. The mapping is
  // injective per position, so equal keys imply equal states.
  key.clear();
  key.reserve(s.mem.size() + 8);
  for (Value v : s.mem) {
    if (v >= -126 && v <= 127) {
      key.push_back(static_cast<char>(static_cast<unsigned char>(v + 126)));
    } else {
      key.push_back(static_cast<char>(0xFE));
      const auto u = static_cast<std::uint32_t>(v);
      key.push_back(static_cast<char>(u & 0xff));
      key.push_back(static_cast<char>((u >> 8) & 0xff));
      key.push_back(static_cast<char>((u >> 16) & 0xff));
      key.push_back(static_cast<char>((u >> 24) & 0xff));
    }
  }
  key.push_back(static_cast<char>(s.atomic_pid & 0xff));
}

}  // namespace pnp::kernel
