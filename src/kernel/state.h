// Kernel state: the global state vector of a compiled system.
//
// A state is ONE flat vector<Value> (plus the atomic-holder pid). The
// Layout, computed once per system, assigns every variable a fixed slot:
//
//   [ globals | proc0: pc, frame... | proc1: ... | chan0: len, slots... | ... ]
//
// Rendezvous channels (capacity 0) never store messages and get no slots.
// Buffered channels get 1 + capacity*arity slots. This makes copying a
// state a single allocation and makes the vector itself the canonical
// encoding used for hashing/deduplication.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"
#include "model/system.h"
#include "support/panic.h"

namespace pnp::kernel {

using expr::Value;

struct State {
  std::vector<Value> mem;
  /// Process currently holding atomic execution rights, or -1.
  int atomic_pid{-1};

  friend bool operator==(const State&, const State&) = default;
};

/// Slot assignment for a specific system (spec + process instances).
class Layout {
 public:
  Layout() = default;
  explicit Layout(const model::SystemSpec& sys);

  int size() const { return total_; }
  int n_globals() const { return n_globals_; }

  /// COLLAPSE compression regions: {begin, count} slot ranges covering every
  /// state slot exactly once, split along the natural component boundaries
  /// (globals | one range per process frame | one range per buffered
  /// channel). Empty ranges (no globals, rendezvous channels) are omitted.
  std::vector<std::pair<int, int>> regions() const;

  // -- accessors ---------------------------------------------------------------
  Value global(const State& s, int slot) const {
    return s.mem[static_cast<std::size_t>(slot)];
  }
  void set_global(State& s, int slot, Value v) const {
    s.mem[static_cast<std::size_t>(slot)] = v;
  }
  int pc(const State& s, int pid) const {
    return s.mem[static_cast<std::size_t>(procs_[static_cast<std::size_t>(pid)].base)];
  }
  void set_pc(State& s, int pid, int pc) const {
    s.mem[static_cast<std::size_t>(procs_[static_cast<std::size_t>(pid)].base)] =
        pc;
  }
  /// Mutable locals only; spawn parameters live in the instance table.
  std::span<const Value> locals(const State& s, int pid) const {
    const ProcSlot& p = procs_[static_cast<std::size_t>(pid)];
    return {s.mem.data() + p.base + 1, static_cast<std::size_t>(p.n_locals)};
  }
  int n_params(int pid) const {
    return procs_[static_cast<std::size_t>(pid)].n_params;
  }
  /// `slot` is a frame slot (params + locals); writing a parameter slot is
  /// a model error (parameters are immutable).
  void set_frame_slot(State& s, int pid, int slot, Value v) const {
    s.mem[static_cast<std::size_t>(frame_slot(pid, slot))] = v;
  }
  std::span<const Value> globals(const State& s) const {
    return {s.mem.data(), static_cast<std::size_t>(n_globals_)};
  }

  // -- raw slot indices (undo-log successor generation) ------------------------
  /// Slot index of process `pid`'s program counter.
  int pc_slot(int pid) const {
    return procs_[static_cast<std::size_t>(pid)].base;
  }
  /// Slot index of frame slot `slot` (params + locals); writing a parameter
  /// slot is a model error (parameters are immutable).
  int frame_slot(int pid, int slot) const {
    const ProcSlot& p = procs_[static_cast<std::size_t>(pid)];
    PNP_CHECK(slot >= p.n_params, "write to immutable parameter slot");
    return p.base + 1 + slot - p.n_params;
  }
  /// {begin, count} of channel `c`'s slots (len + message buffer);
  /// {-1, 0} for rendezvous channels, which have no storage.
  std::pair<int, int> chan_region(int c) const {
    const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
    if (ch.base < 0) return {-1, 0};
    return {ch.base, 1 + ch.capacity * ch.arity};
  }

  // -- channels ----------------------------------------------------------------
  int chan_capacity(int c) const {
    return chans_[static_cast<std::size_t>(c)].capacity;
  }
  int chan_arity(int c) const {
    return chans_[static_cast<std::size_t>(c)].arity;
  }
  bool chan_lossy(int c) const {
    return chans_[static_cast<std::size_t>(c)].lossy;
  }
  int chan_len(const State& s, int c) const {
    const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
    return ch.base < 0 ? 0 : s.mem[static_cast<std::size_t>(ch.base)];
  }
  /// Pointer to message i's fields (valid for i < len).
  const Value* chan_msg(const State& s, int c, int i) const {
    const ChanSlot& ch = chans_[static_cast<std::size_t>(c)];
    return s.mem.data() + ch.base + 1 + i * ch.arity;
  }
  /// Appends a message (fields has arity values). Precondition: not full.
  void chan_push(State& s, int c, const Value* fields) const;
  /// Inserts in sorted (lexicographic) position. Precondition: not full.
  void chan_push_sorted(State& s, int c, const Value* fields) const;
  /// Removes message i, shifting later messages forward.
  void chan_erase(State& s, int c, int i) const;

  /// Initial state (globals/frames initialized, channels empty).
  State initial(const model::SystemSpec& sys,
                const std::vector<int>& frame_bases_hint = {}) const;

 private:
  struct ProcSlot {
    int base{0};
    int n_params{0};
    int n_locals{0};
  };
  struct ChanSlot {
    int base{-1};  // -1 for rendezvous channels (no storage)
    int capacity{0};
    int arity{1};
    bool lossy{false};
  };
  int n_globals_{0};
  std::vector<ProcSlot> procs_;
  std::vector<ChanSlot> chans_;
  int total_{0};
};

/// Canonical byte string of `s` for hash containers.
std::string encode_key(const State& s);

/// Allocation-free variant for hot paths: replaces `out` with the canonical
/// encoding, reusing its capacity.
void encode_key_into(const State& s, std::string& out);

}  // namespace pnp::kernel
