#include <algorithm>
#include <sstream>

#include "kernel/machine.h"
#include "support/panic.h"

namespace pnp::kernel {

namespace {

using compile::CompiledProc;
using compile::OpKind;
using compile::Transition;
using model::RecvArg;
using model::RecvArgKind;

class ChanView final : public expr::ChannelView {
 public:
  ChanView(const Layout& lay, const State& s) : lay_(lay), s_(s) {}

  int chan_len(int chan) const override { return lay_.chan_len(s_, chan); }
  int chan_capacity(int chan) const override {
    return lay_.chan_capacity(chan);
  }

 private:
  const Layout& lay_;
  const State& s_;
};

}  // namespace

Machine::Machine(const model::SystemSpec& sys)
    : sys_(&sys), procs_(compile::compile(sys)), layout_(sys) {}

Machine::Machine(const model::SystemSpec& sys,
                 std::vector<compile::CompiledProc> precompiled)
    : sys_(&sys), procs_(std::move(precompiled)), layout_(sys) {
  PNP_CHECK(procs_.size() == sys.proctypes.size(),
            "precompiled proctype count mismatch");
}

Machine Machine::substitute(std::vector<compile::CompiledProc> procs) const {
  PNP_CHECK(procs.size() == procs_.size(),
            "substitute: proctype count mismatch");
  for (std::size_t i = 0; i < procs.size(); ++i) {
    const CompiledProc& orig = procs_[i];
    const CompiledProc& sub = procs[i];
    // The state layout is sized from the ORIGINAL compilation: a
    // substitute may only reshape control flow, never the frame.
    PNP_CHECK(sub.n_params == orig.n_params &&
                  sub.frame_size == orig.frame_size &&
                  sub.frame_init == orig.frame_init,
              "substitute: frame layout changed for proctype " + orig.name);
    PNP_CHECK(sub.entry >= 0 && sub.entry < sub.n_pcs,
              "substitute: entry pc out of range for proctype " + orig.name);
    const std::size_t n_pcs = static_cast<std::size_t>(sub.n_pcs);
    PNP_CHECK(sub.atomic_at.size() == n_pcs && sub.valid_end.size() == n_pcs &&
                  sub.out.size() == n_pcs,
              "substitute: per-pc tables mis-sized for proctype " + orig.name);
    for (const compile::Transition& t : sub.trans)
      PNP_CHECK(t.src >= 0 && t.src < sub.n_pcs && t.dst >= 0 &&
                    t.dst < sub.n_pcs,
                "substitute: transition pc out of range for proctype " +
                    orig.name);
    for (std::size_t pc = 0; pc < n_pcs; ++pc)
      for (int ti : sub.out[pc])
        PNP_CHECK(ti >= 0 && ti < static_cast<int>(sub.trans.size()) &&
                      sub.trans[static_cast<std::size_t>(ti)].src ==
                          static_cast<int>(pc),
                  "substitute: adjacency inconsistent for proctype " +
                      orig.name);
  }
  return Machine(*sys_, std::move(procs));
}

const CompiledProc& Machine::proc_of(int pid) const {
  const model::ProcessInst& inst =
      sys_->processes[static_cast<std::size_t>(pid)];
  return procs_[static_cast<std::size_t>(inst.proctype)];
}

const std::string& Machine::proc_name(int pid) const {
  return sys_->processes[static_cast<std::size_t>(pid)].name;
}

State Machine::initial() const {
  State s = layout_.initial(*sys_);
  for (int pid = 0; pid < n_processes(); ++pid) {
    const CompiledProc& cp = proc_of(pid);
    layout_.set_pc(s, pid, cp.entry);
    // parameters are immutable and live in the instance table; only the
    // mutable locals occupy state slots
    for (std::size_t i = static_cast<std::size_t>(cp.n_params);
         i < cp.frame_init.size(); ++i)
      layout_.set_frame_slot(s, pid, static_cast<int>(i), cp.frame_init[i]);
  }
  return s;
}

namespace {

/// One successor-generation pass over a single state.
///
/// Successors are produced by mutate-and-revert: every candidate step is
/// applied to the shared scratch state while an undo log records each
/// (slot, previous value) pair it touches; after the sink has seen the
/// successor the log is replayed in reverse. A step touches a handful of
/// slots, so this replaces the historical full state-vector copy per
/// candidate with work proportional to the step itself. All guard and
/// field evaluation reads the ORIGINAL state `s_` (never the scratch), so
/// the emitted successors are byte-identical to the copy-based ones, in
/// the same order.
class SuccGen {
 public:
  SuccGen(const Machine& m, const State& s, SuccScratch& scratch,
          SuccSink& sink)
      : m_(m),
        sys_(m.spec()),
        lay_(m.layout()),
        s_(s),
        view_(lay_, s),
        scratch_(scratch),
        sink_(sink) {
    scratch_.state.mem.assign(s.mem.begin(), s.mem.end());
    scratch_.state.atomic_pid = s.atomic_pid;
    scratch_.undo.clear();
  }

  /// Expands one process; returns true if it produced any successor.
  bool expand(int pid) {
    const CompiledProc& cp = m_.proc_of(pid);
    const int pc = lay_.pc(s_, pid);
    const std::vector<int>& cands = cp.out[static_cast<std::size_t>(pc)];
    bool any = false;
    // Else suppression must ignore injected crash transitions: a crash is a
    // fault the modeled program cannot observe, so it must not change which
    // program branches are enabled.
    bool any_program = false;
    int else_ti = -1;
    for (int ti : cands) {
      if (stopped_) return any;
      const Transition& t = cp.trans[static_cast<std::size_t>(ti)];
      if (t.op == OpKind::Else) {
        else_ti = ti;
        continue;
      }
      if (try_exec(pid, ti, t)) {
        any = true;
        if (t.op != OpKind::Crash) any_program = true;
      }
    }
    if (!stopped_ && !any_program && else_ti >= 0) {
      emit_local(pid, else_ti, cp.trans[static_cast<std::size_t>(else_ti)]);
      any = true;
    }
    return any;
  }

  /// True once the sink aborted; remaining candidates are skipped.
  bool stopped() const { return stopped_; }

 private:
  expr::EvalEnv env(int pid) const {
    const std::vector<Value>& args =
        sys_.processes[static_cast<std::size_t>(pid)].args;
    return expr::EvalEnv{lay_.globals(s_), lay_.locals(s_, pid),
                         {args.data(), args.size()},
                         &view_,
                         static_cast<Value>(pid)};
  }

  int next_atomic(int pid, int dst, int partner_pid = -1,
                  int partner_dst = -1) const {
    if (m_.proc_of(pid).atomic_at[static_cast<std::size_t>(dst)]) return pid;
    if (partner_pid >= 0 &&
        m_.proc_of(partner_pid).atomic_at[static_cast<std::size_t>(partner_dst)])
      return partner_pid;
    return -1;
  }

  // -- scratch mutation with undo logging ------------------------------------
  State& ns() { return scratch_.state; }

  void save(int idx) {
    scratch_.undo.emplace_back(idx, ns().mem[static_cast<std::size_t>(idx)]);
  }
  void mut_slot(int idx, Value v) {
    save(idx);
    ns().mem[static_cast<std::size_t>(idx)] = v;
  }
  void mut_pc(int pid, int pc) { mut_slot(lay_.pc_slot(pid), pc); }
  void mut_frame(int pid, int slot, Value v) {
    mut_slot(lay_.frame_slot(pid, slot), v);
  }
  void mut_global(int slot, Value v) { mut_slot(slot, v); }
  /// Snapshots channel `c`'s whole region before a push/erase mutates it;
  /// capacities are small, so this stays cheap and covers every shift
  /// pattern (sorted insert, erase compaction) without per-case analysis.
  void save_chan(int c) {
    const auto [begin, count] = lay_.chan_region(c);
    for (int i = 0; i < count; ++i) save(begin + i);
  }

  void finish_mut(int pid, const Transition& t) {
    mut_pc(pid, t.dst);
    ns().atomic_pid = next_atomic(pid, t.dst);
  }

  void revert() {
    for (std::size_t i = scratch_.undo.size(); i-- > 0;)
      ns().mem[static_cast<std::size_t>(scratch_.undo[i].first)] =
          scratch_.undo[i].second;
    scratch_.undo.clear();
    ns().atomic_pid = s_.atomic_pid;
#ifndef NDEBUG
    // A missed undo entry would silently corrupt every later successor of
    // this state; the whole test suite runs with this net in place.
    PNP_CHECK(ns().mem == s_.mem, "successor scratch revert mismatch");
#endif
  }

  /// Hands the mutated scratch to the sink as one successor, then reverts.
  /// Returns false when the sink aborted generation.
  bool emit(int pid, int ti, bool assert_failed = false,
            StepEvent::Kind kind = StepEvent::Kind::Local, int chan = -1,
            const Value* fields = nullptr, int arity = 0, int partner_pid = -1,
            int partner_trans = -1) {
    Step& st = scratch_.step;
    st.pid = pid;
    st.trans = ti;
    st.partner_pid = partner_pid;
    st.partner_trans = partner_trans;
    st.assert_failed = assert_failed;
    st.event.kind = kind;
    st.event.chan = chan;
    if (fields)
      st.event.msg.assign(fields, fields + arity);
    else
      st.event.msg.clear();
    const bool keep_going = sink_.on_successor(ns(), st);
    revert();
    if (!keep_going) stopped_ = true;
    return keep_going;
  }

  bool emit_local(int pid, int ti, const Transition& t,
                  const model::Lhs* assign_to = nullptr, Value assign_val = 0,
                  bool assert_failed = false) {
    if (assign_to) {
      if (assign_to->kind == model::LhsKind::Local)
        mut_frame(pid, assign_to->slot, assign_val);
      else
        mut_global(assign_to->slot, assign_val);
    }
    finish_mut(pid, t);
    return emit(pid, ti, assert_failed);
  }

  bool match_pattern(const std::vector<RecvArg>& args, const Value* fields,
                     const expr::EvalEnv& receiver_env) const {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].kind == RecvArgKind::Match &&
          sys_.exprs.eval(args[i].match, receiver_env) !=
              fields[i])
        return false;
    }
    return true;
  }

  void bind_pattern(int pid, const std::vector<RecvArg>& args,
                    const Value* fields) {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].kind != RecvArgKind::Bind) continue;
      const model::Lhs& lhs = args[i].lhs;
      if (lhs.kind == model::LhsKind::Local)
        mut_frame(pid, lhs.slot, fields[i]);
      else
        mut_global(lhs.slot, fields[i]);
    }
  }

  int resolve_chan(expr::Ref chan_expr, const expr::EvalEnv& e) const {
    const Value id = sys_.exprs.eval(chan_expr, e);
    PNP_CHECK(id >= 0 && id < static_cast<Value>(sys_.channels.size()),
              "send/recv on invalid channel id " + std::to_string(id));
    return static_cast<int>(id);
  }

  bool try_exec(int pid, int ti, const Transition& t) {
    const expr::EvalEnv e = env(pid);
    switch (t.op) {
      case OpKind::Noop:
        emit_local(pid, ti, t);
        return true;
      case OpKind::Guard: {
        if (sys_.exprs.eval(t.expr, e) == 0) return false;
        emit_local(pid, ti, t);
        return true;
      }
      case OpKind::Assign: {
        const Value v = sys_.exprs.eval(t.expr, e);
        emit_local(pid, ti, t, &t.lhs, v);
        return true;
      }
      case OpKind::Assert: {
        const bool ok = sys_.exprs.eval(t.expr, e) != 0;
        emit_local(pid, ti, t, nullptr, 0, /*assert_failed=*/!ok);
        return true;
      }
      case OpKind::Send:
        return exec_send(pid, ti, t, e);
      case OpKind::Recv:
        return exec_recv(pid, ti, t, e);
      case OpKind::Crash:
        return exec_crash(pid, ti, t);
      case OpKind::Else:
        return false;  // handled by caller
    }
    return false;
  }

  /// Crash-restart fault: while the budget local is positive, the process
  /// may lose its control point and volatile locals and resume from entry.
  /// The budget itself survives the crash (it counts injected faults, it is
  /// not program state).
  bool exec_crash(int pid, int ti, const Transition& t) {
    const CompiledProc& cp = m_.proc_of(pid);
    const int np = cp.n_params;
    const Value budget =
        lay_.locals(s_, pid)[static_cast<std::size_t>(t.lhs.slot - np)];
    if (budget <= 0) return false;
    for (std::size_t i = static_cast<std::size_t>(np); i < cp.frame_init.size();
         ++i)
      mut_frame(pid, static_cast<int>(i), cp.frame_init[i]);
    mut_frame(pid, t.lhs.slot, budget - 1);
    finish_mut(pid, t);
    emit(pid, ti);
    return true;
  }

  bool exec_send(int pid, int ti, const Transition& t,
                 const expr::EvalEnv& e) {
    const int chan = resolve_chan(t.chan, e);
    const int arity = lay_.chan_arity(chan);
    PNP_CHECK(static_cast<int>(t.fields.size()) == arity,
              "send arity mismatch on channel " +
                  sys_.channels[static_cast<std::size_t>(chan)].name);
    Value fields[16];
    PNP_CHECK(arity <= 16, "channel arity > 16 unsupported");
    for (int i = 0; i < arity; ++i)
      fields[i] =
          sys_.exprs.eval(t.fields[static_cast<std::size_t>(i)], e);

    if (lay_.chan_capacity(chan) == 0)
      return exec_rendezvous(pid, ti, t, chan, fields, arity);

    const bool full = lay_.chan_len(s_, chan) >= lay_.chan_capacity(chan);
    if (full && !lay_.chan_lossy(chan)) return false;

    if (!full) {
      save_chan(chan);
      if (t.sorted)
        lay_.chan_push_sorted(ns(), chan, fields);
      else
        lay_.chan_push(ns(), chan, fields);
    }
    // else: lossy channel drops the message silently.
    finish_mut(pid, t);
    emit(pid, ti, false, StepEvent::Kind::Send, chan, fields, arity);
    return true;
  }

  bool exec_rendezvous(int pid, int ti, const Transition& t, int chan,
                       const Value* fields, int arity) {
    bool any = false;
    for (int pid2 = 0; pid2 < m_.n_processes(); ++pid2) {
      if (pid2 == pid) continue;
      const CompiledProc& cp2 = m_.proc_of(pid2);
      const int pc2 = lay_.pc(s_, pid2);
      const expr::EvalEnv e2 = env(pid2);
      for (int ti2 : cp2.out[static_cast<std::size_t>(pc2)]) {
        const Transition& t2 = cp2.trans[static_cast<std::size_t>(ti2)];
        if (t2.op != OpKind::Recv) continue;
        if (resolve_chan(t2.chan, e2) != chan) continue;
        PNP_CHECK(static_cast<int>(t2.args.size()) == arity,
                  "rendezvous pattern arity mismatch");
        if (!match_pattern(t2.args, fields, e2)) continue;

        bind_pattern(pid2, t2.args, fields);
        mut_pc(pid, t.dst);
        mut_pc(pid2, t2.dst);
        ns().atomic_pid = next_atomic(pid, t.dst, pid2, t2.dst);
        any = true;
        if (!emit(pid, ti, false, StepEvent::Kind::Handshake, chan, fields,
                  arity, pid2, ti2))
          return any;
      }
    }
    return any;
  }

  bool exec_recv(int pid, int ti, const Transition& t,
                 const expr::EvalEnv& e) {
    const int chan = resolve_chan(t.chan, e);
    if (lay_.chan_capacity(chan) == 0) return false;  // rendezvous: passive
    const int arity = lay_.chan_arity(chan);
    PNP_CHECK(static_cast<int>(t.args.size()) == arity,
              "recv arity mismatch on channel " +
                  sys_.channels[static_cast<std::size_t>(chan)].name);

    const int len = lay_.chan_len(s_, chan);
    if (len == 0) return false;

    if (t.unordered) return exec_recv_unordered(pid, ti, t, e, chan, arity, len);

    int idx = -1;
    if (t.random) {
      for (int i = 0; i < len; ++i) {
        if (match_pattern(t.args, lay_.chan_msg(s_, chan, i), e)) {
          idx = i;
          break;
        }
      }
    } else if (match_pattern(t.args, lay_.chan_msg(s_, chan, 0), e)) {
      idx = 0;
    }
    if (idx < 0) return false;

    Value fields[16];
    std::copy_n(lay_.chan_msg(s_, chan, idx), arity, fields);
    bind_pattern(pid, t.args, fields);
    if (!t.copy) {
      save_chan(chan);
      lay_.chan_erase(ns(), chan, idx);
    }
    finish_mut(pid, t);
    emit(pid, ti, false, StepEvent::Kind::Recv, chan, fields, arity);
    return true;
  }

  /// Bag-semantics receive: one successor per matching buffer index, so the
  /// dequeue order is nondeterministic (models reordering connectors).
  bool exec_recv_unordered(int pid, int ti, const Transition& t,
                           const expr::EvalEnv& e, int chan, int arity,
                           int len) {
    bool any = false;
    for (int i = 0; i < len; ++i) {
      const Value* msg = lay_.chan_msg(s_, chan, i);
      if (!match_pattern(t.args, msg, e)) continue;
      // Removing either of two equal adjacent messages yields the same
      // queue; skip the duplicate successor.
      if (i > 0 && std::equal(msg, msg + arity, lay_.chan_msg(s_, chan, i - 1)))
        continue;
      Value fields[16];
      std::copy_n(msg, arity, fields);
      bind_pattern(pid, t.args, fields);
      if (!t.copy) {
        save_chan(chan);
        lay_.chan_erase(ns(), chan, i);
      }
      finish_mut(pid, t);
      any = true;
      if (!emit(pid, ti, false, StepEvent::Kind::Recv, chan, fields, arity))
        return any;
    }
    return any;
  }

  const Machine& m_;
  const model::SystemSpec& sys_;
  const Layout& lay_;
  const State& s_;
  ChanView view_;
  SuccScratch& scratch_;
  SuccSink& sink_;
  bool stopped_ = false;
};

/// Adapter implementing the vector-building API on the streaming one.
class CollectSink final : public SuccSink {
 public:
  explicit CollectSink(std::vector<Succ>& out) : out_(out) {}
  bool on_successor(const State& ns, const Step& step) override {
    out_.emplace_back(ns, step);
    return true;
  }

 private:
  std::vector<Succ>& out_;
};

}  // namespace

bool Machine::visit_successors_of(const State& s, int pid,
                                  SuccScratch& scratch, SuccSink& sink) const {
  SuccGen gen(*this, s, scratch, sink);
  return gen.expand(pid);
}

void Machine::visit_successors(const State& s, SuccScratch& scratch,
                               SuccSink& sink) const {
  if (s.atomic_pid >= 0) {
    // The atomic holder keeps exclusive control while it can move;
    // atomicity is lost (full interleaving resumes) when it blocks.
    SuccGen gen(*this, s, scratch, sink);
    if (gen.expand(s.atomic_pid)) return;
  }
  SuccGen gen(*this, s, scratch, sink);
  for (int pid = 0; pid < n_processes(); ++pid) {
    gen.expand(pid);
    if (gen.stopped()) return;
  }
}

bool Machine::successors_of(const State& s, int pid,
                            std::vector<Succ>& out) const {
  CollectSink sink(out);
  SuccScratch scratch;
  return visit_successors_of(s, pid, scratch, sink);
}

void Machine::successors(const State& s, std::vector<Succ>& out) const {
  CollectSink sink(out);
  SuccScratch scratch;
  visit_successors(s, scratch, sink);
}

bool Machine::is_valid_end(const State& s) const {
  for (int pid = 0; pid < n_processes(); ++pid) {
    const compile::CompiledProc& cp = proc_of(pid);
    if (!cp.valid_end[static_cast<std::size_t>(layout_.pc(s, pid))])
      return false;
  }
  return true;
}

Value Machine::eval_global(expr::Ref e, const State& s) const {
  ChanView view(layout_, s);
  expr::EvalEnv env{layout_.globals(s), {}, {}, &view, -1};
  return sys_->exprs.eval(e, env);
}

std::string Machine::describe_step(const Step& step) const {
  if (step.pid < 0) return "<none>";
  const compile::CompiledProc& cp = proc_of(step.pid);
  std::string out = proc_name(step.pid) + ": " +
                    compile::describe(*sys_, cp,
                                      cp.trans[static_cast<std::size_t>(step.trans)]);
  if (step.partner_pid >= 0) {
    const compile::CompiledProc& cp2 = proc_of(step.partner_pid);
    out += "  <handshake> " + proc_name(step.partner_pid) + ": " +
           compile::describe(
               *sys_, cp2,
               cp2.trans[static_cast<std::size_t>(step.partner_trans)]);
  }
  if (step.assert_failed) out += "  [ASSERTION FAILED]";
  return out;
}

std::string Machine::format_state(const State& s) const {
  std::ostringstream os;
  os << "globals:";
  for (std::size_t i = 0; i < sys_->globals.size(); ++i)
    os << " " << sys_->globals[i].name << "="
       << layout_.global(s, static_cast<int>(i));
  os << "\nprocs:";
  for (int pid = 0; pid < n_processes(); ++pid)
    os << " " << proc_name(pid) << "@" << layout_.pc(s, pid);
  os << "\nchans:";
  for (std::size_t c = 0; c < sys_->channels.size(); ++c) {
    const int ci = static_cast<int>(c);
    if (layout_.chan_capacity(ci) == 0) continue;  // rendezvous: never holds
    os << " " << sys_->channels[c].name << "=[";
    const int len = layout_.chan_len(s, ci);
    for (int i = 0; i < len; ++i) {
      if (i) os << " ";
      os << "(";
      const Value* msg = layout_.chan_msg(s, ci, i);
      for (int f = 0; f < layout_.chan_arity(ci); ++f) {
        if (f) os << ",";
        os << msg[f];
      }
      os << ")";
    }
    os << "]";
  }
  if (s.atomic_pid >= 0) os << "\natomic: " << proc_name(s.atomic_pid);
  return os.str();
}

}  // namespace pnp::kernel
