#include "ltl/buchi.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "support/panic.h"

namespace pnp::ltl {

namespace {

/// Tableau node of the GPVW construction.
struct GNode {
  int id{0};
  std::set<int> incoming;
  std::set<FRef> new_obl;  // "New": obligations still to process
  std::set<FRef> old;      // processed obligations (hold now)
  std::set<FRef> next;     // obligations for the next position
};

class Gpvw {
 public:
  explicit Gpvw(FormulaPool& pool) : pool_(pool) {}

  std::vector<GNode> run(FRef formula) {
    GNode init;
    init.id = next_id_++;
    init.incoming.insert(0);  // 0 = virtual initial node
    init.new_obl.insert(formula);
    expand(std::move(init));
    return std::move(done_);
  }

 private:
  void expand(GNode q) {
    if (q.new_obl.empty()) {
      for (GNode& r : done_) {
        if (r.old == q.old && r.next == q.next) {
          r.incoming.insert(q.incoming.begin(), q.incoming.end());
          return;
        }
      }
      GNode succ;
      succ.id = next_id_++;
      succ.incoming.insert(q.id);
      succ.new_obl = q.next;
      done_.push_back(std::move(q));
      expand(std::move(succ));
      return;
    }
    const FRef f = *q.new_obl.begin();
    q.new_obl.erase(q.new_obl.begin());
    const FNode& n = pool_.at(f);
    switch (n.kind) {
      case FKind::False:
        return;  // contradiction: drop this node
      case FKind::True:
        expand(std::move(q));
        return;
      case FKind::Prop: {
        // contradiction if the dual literal is already required
        const FRef dual = pool_.prop(n.prop, !n.negated);
        if (q.old.contains(dual)) return;
        q.old.insert(f);
        expand(std::move(q));
        return;
      }
      case FKind::And: {
        if (!q.old.contains(n.a)) q.new_obl.insert(n.a);
        if (!q.old.contains(n.b)) q.new_obl.insert(n.b);
        q.old.insert(f);
        expand(std::move(q));
        return;
      }
      case FKind::Or: {
        GNode q1 = q;
        q1.id = next_id_++;
        if (!q1.old.contains(n.a)) q1.new_obl.insert(n.a);
        q1.old.insert(f);
        GNode q2 = std::move(q);
        q2.id = next_id_++;
        if (!q2.old.contains(n.b)) q2.new_obl.insert(n.b);
        q2.old.insert(f);
        expand(std::move(q1));
        expand(std::move(q2));
        return;
      }
      case FKind::Until: {
        // a U b  =  b  ||  (a && X(a U b))
        GNode q1 = q;
        q1.id = next_id_++;
        if (!q1.old.contains(n.a)) q1.new_obl.insert(n.a);
        q1.next.insert(f);
        q1.old.insert(f);
        GNode q2 = std::move(q);
        q2.id = next_id_++;
        if (!q2.old.contains(n.b)) q2.new_obl.insert(n.b);
        q2.old.insert(f);
        expand(std::move(q1));
        expand(std::move(q2));
        return;
      }
      case FKind::Release: {
        // a R b  =  (a && b)  ||  (b && X(a R b))
        GNode q1 = q;
        q1.id = next_id_++;
        if (!q1.old.contains(n.b)) q1.new_obl.insert(n.b);
        q1.next.insert(f);
        q1.old.insert(f);
        GNode q2 = std::move(q);
        q2.id = next_id_++;
        if (!q2.old.contains(n.a)) q2.new_obl.insert(n.a);
        if (!q2.old.contains(n.b)) q2.new_obl.insert(n.b);
        q2.old.insert(f);
        expand(std::move(q1));
        expand(std::move(q2));
        return;
      }
      case FKind::Next: {
        q.old.insert(f);
        q.next.insert(n.a);
        expand(std::move(q));
        return;
      }
    }
  }

  FormulaPool& pool_;
  std::vector<GNode> done_;
  int next_id_ = 1;  // 0 is the virtual initial node
};

}  // namespace

BuchiAutomaton build_buchi(FormulaPool& pool, FRef formula,
                           const PropertyContext* ctx) {
  Gpvw gpvw(pool);
  const std::vector<GNode> nodes = gpvw.run(formula);

  // Generalized acceptance sets: one per Until subformula g = a U b,
  //   F_g = { q : g not in old(q), or b in old(q) }.
  const std::vector<FRef> untils = pool.until_subformulas(formula);
  const int k = static_cast<int>(untils.size());

  auto in_set = [&](const GNode& q, int set_idx) {
    const FRef g = untils[static_cast<std::size_t>(set_idx)];
    if (!q.old.contains(g)) return true;
    const FNode& gn = pool.at(g);
    return q.old.contains(gn.b);
  };

  // Map GPVW node id -> dense index.
  std::map<int, int> dense;
  for (std::size_t i = 0; i < nodes.size(); ++i) dense[nodes[i].id] = static_cast<int>(i);

  auto label_of = [&](const GNode& q) {
    std::vector<Literal> lits;
    for (FRef f : q.old) {
      const FNode& n = pool.at(f);
      if (n.kind == FKind::Prop) lits.push_back({n.prop, n.negated});
    }
    return lits;
  };

  // GBA adjacency (dense indices): edge p -> q iff p in incoming(q).
  const int nq = static_cast<int>(nodes.size());
  std::vector<std::vector<int>> gba_out(static_cast<std::size_t>(nq));
  std::vector<bool> gba_init(static_cast<std::size_t>(nq), false);
  for (int qi = 0; qi < nq; ++qi) {
    for (int src : nodes[static_cast<std::size_t>(qi)].incoming) {
      if (src == 0) {
        gba_init[static_cast<std::size_t>(qi)] = true;
      } else {
        gba_out[static_cast<std::size_t>(dense.at(src))].push_back(qi);
      }
    }
  }

  BuchiAutomaton ba;
  ba.n_acceptance_sets = k;
  ba.formula_text = pool.to_string(formula, ctx);

  if (k == 0) {
    // No Until subformulas: every infinite run is accepting.
    ba.states.resize(static_cast<std::size_t>(nq));
    for (int qi = 0; qi < nq; ++qi) {
      BuchiState& s = ba.states[static_cast<std::size_t>(qi)];
      s.label = label_of(nodes[static_cast<std::size_t>(qi)]);
      s.out = gba_out[static_cast<std::size_t>(qi)];
      s.accepting = true;
      s.initial = gba_init[static_cast<std::size_t>(qi)];
    }
    return ba;
  }

  // Counter degeneralization: layers 0..k; layer k is accepting and acts
  // like layer 0 for outgoing edges. advance(i, q) skips through every
  // acceptance set that q belongs to, starting at i.
  auto advance = [&](int layer, int qi) {
    int j = layer;
    while (j < k && in_set(nodes[static_cast<std::size_t>(qi)], j)) ++j;
    return j;
  };
  const int layers = k + 1;
  auto state_id = [&](int qi, int layer) { return qi * layers + layer; };

  ba.states.resize(static_cast<std::size_t>(nq * layers));
  for (int qi = 0; qi < nq; ++qi) {
    for (int layer = 0; layer <= k; ++layer) {
      BuchiState& s = ba.states[static_cast<std::size_t>(state_id(qi, layer))];
      s.label = label_of(nodes[static_cast<std::size_t>(qi)]);
      s.accepting = (layer == k);
      const int base = (layer == k) ? 0 : layer;
      for (int succ : gba_out[static_cast<std::size_t>(qi)])
        s.out.push_back(state_id(succ, advance(base, succ)));
    }
    if (gba_init[static_cast<std::size_t>(qi)])
      ba.states[static_cast<std::size_t>(state_id(qi, advance(0, qi)))].initial =
          true;
  }
  return ba;
}

std::string to_string(const BuchiAutomaton& ba, const PropertyContext* ctx) {
  std::ostringstream os;
  os << "Buchi automaton for: " << ba.formula_text << "\n";
  os << "states: " << ba.states.size()
     << ", acceptance sets: " << ba.n_acceptance_sets << "\n";
  for (std::size_t i = 0; i < ba.states.size(); ++i) {
    const BuchiState& s = ba.states[i];
    os << "  q" << i << (s.initial ? " [init]" : "")
       << (s.accepting ? " [accept]" : "") << "  label: ";
    if (s.label.empty()) os << "true";
    for (std::size_t j = 0; j < s.label.size(); ++j) {
      if (j) os << " && ";
      if (s.label[j].negated) os << "!";
      os << (ctx ? ctx->name(s.label[j].prop)
                 : "p" + std::to_string(s.label[j].prop));
    }
    os << "  ->";
    for (int t : s.out) os << " q" << t;
    os << "\n";
  }
  return os.str();
}

}  // namespace pnp::ltl
