// LTL -> Büchi automaton translation (Gerth/Peled/Vardi/Wolper tableau,
// followed by counter degeneralization of the generalized acceptance sets).
#pragma once

#include <string>
#include <vector>

#include "ltl/formula.h"

namespace pnp::ltl {

struct Literal {
  int prop{-1};
  bool negated{false};
};

struct BuchiState {
  /// Conjunction of literals that must hold in a system state for the
  /// automaton to *enter* this state. Empty = true.
  std::vector<Literal> label;
  std::vector<int> out;
  bool accepting{false};
  bool initial{false};
};

struct BuchiAutomaton {
  std::vector<BuchiState> states;
  int n_acceptance_sets{0};
  std::string formula_text;  // for reports
};

/// Translates `formula` (already in NNF; every FormulaPool formula is).
/// Note: to check that a system satisfies phi, build the automaton of
/// NEGATED phi and search the product for an accepting cycle.
BuchiAutomaton build_buchi(FormulaPool& pool, FRef formula,
                           const PropertyContext* ctx = nullptr);

std::string to_string(const BuchiAutomaton& ba,
                      const PropertyContext* ctx = nullptr);

}  // namespace pnp::ltl
