#include "ltl/formula.h"

#include <functional>

#include "support/hash.h"

namespace pnp::ltl {

int PropertyContext::add(std::string name, expr::Ref e) {
  PNP_CHECK(!index_.contains(name), "duplicate proposition: " + name);
  const int id = static_cast<int>(names_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  exprs_.push_back(e);
  return id;
}

int PropertyContext::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::size_t FormulaPool::NodeHash::operator()(const FNode& n) const {
  std::uint64_t h = kFnvOffset;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= kFnvPrime;
  };
  mix(static_cast<std::uint64_t>(n.kind));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.prop)));
  mix(n.negated ? 1u : 0u);
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.a)));
  mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(n.b)));
  return static_cast<std::size_t>(avalanche64(h));
}

FRef FormulaPool::intern(FNode n) {
  auto it = interned_.find(n);
  if (it != interned_.end()) return it->second;
  const FRef r = static_cast<FRef>(nodes_.size());
  nodes_.push_back(n);
  interned_.emplace(n, r);
  return r;
}

FRef FormulaPool::tru() { return intern({FKind::True, -1, false, kNoFormula, kNoFormula}); }
FRef FormulaPool::fls() { return intern({FKind::False, -1, false, kNoFormula, kNoFormula}); }

FRef FormulaPool::prop(int id, bool negated) {
  return intern({FKind::Prop, id, negated, kNoFormula, kNoFormula});
}

FRef FormulaPool::and_(FRef a, FRef b) {
  if (at(a).kind == FKind::True) return b;
  if (at(b).kind == FKind::True) return a;
  if (at(a).kind == FKind::False || at(b).kind == FKind::False) return fls();
  if (a == b) return a;
  return intern({FKind::And, -1, false, a, b});
}

FRef FormulaPool::or_(FRef a, FRef b) {
  if (at(a).kind == FKind::False) return b;
  if (at(b).kind == FKind::False) return a;
  if (at(a).kind == FKind::True || at(b).kind == FKind::True) return tru();
  if (a == b) return a;
  return intern({FKind::Or, -1, false, a, b});
}

FRef FormulaPool::next(FRef a) { return intern({FKind::Next, -1, false, a, kNoFormula}); }

FRef FormulaPool::until(FRef a, FRef b) {
  if (at(b).kind == FKind::True || at(b).kind == FKind::False) return b;
  return intern({FKind::Until, -1, false, a, b});
}

FRef FormulaPool::release(FRef a, FRef b) {
  if (at(b).kind == FKind::True || at(b).kind == FKind::False) return b;
  return intern({FKind::Release, -1, false, a, b});
}

FRef FormulaPool::negate(FRef f) {
  const FNode n = at(f);
  switch (n.kind) {
    case FKind::True: return fls();
    case FKind::False: return tru();
    case FKind::Prop: return prop(n.prop, !n.negated);
    case FKind::And: return or_(negate(n.a), negate(n.b));
    case FKind::Or: return and_(negate(n.a), negate(n.b));
    case FKind::Next: return next(negate(n.a));
    case FKind::Until: return release(negate(n.a), negate(n.b));
    case FKind::Release: return until(negate(n.a), negate(n.b));
  }
  raise_model_error("bad formula kind");
}

std::string FormulaPool::to_string(FRef f, const PropertyContext* ctx) const {
  const FNode& n = at(f);
  auto pname = [&](int id) {
    return ctx ? ctx->name(id) : "p" + std::to_string(id);
  };
  switch (n.kind) {
    case FKind::True: return "true";
    case FKind::False: return "false";
    case FKind::Prop:
      return (n.negated ? "!" : "") + pname(n.prop);
    case FKind::And:
      return "(" + to_string(n.a, ctx) + " && " + to_string(n.b, ctx) + ")";
    case FKind::Or:
      return "(" + to_string(n.a, ctx) + " || " + to_string(n.b, ctx) + ")";
    case FKind::Next:
      return "X(" + to_string(n.a, ctx) + ")";
    case FKind::Until:
      if (at(n.a).kind == FKind::True) return "F(" + to_string(n.b, ctx) + ")";
      return "(" + to_string(n.a, ctx) + " U " + to_string(n.b, ctx) + ")";
    case FKind::Release:
      if (at(n.a).kind == FKind::False) return "G(" + to_string(n.b, ctx) + ")";
      return "(" + to_string(n.a, ctx) + " R " + to_string(n.b, ctx) + ")";
  }
  return "?";
}

std::vector<FRef> FormulaPool::until_subformulas(FRef f) const {
  std::vector<FRef> out;
  std::vector<FRef> work{f};
  std::vector<bool> seen(nodes_.size(), false);
  while (!work.empty()) {
    const FRef cur = work.back();
    work.pop_back();
    if (seen[static_cast<std::size_t>(cur)]) continue;
    seen[static_cast<std::size_t>(cur)] = true;
    const FNode& n = at(cur);
    if (n.kind == FKind::Until) out.push_back(cur);
    if (n.a != kNoFormula) work.push_back(n.a);
    if (n.b != kNoFormula) work.push_back(n.b);
  }
  return out;
}

}  // namespace pnp::ltl
