// LTL formulas: hash-consed AST, negation-normal form, and the proposition
// context binding proposition names to state expressions.
//
// Grammar (SPIN-compatible sugar):
//   f := true | false | ident | !f | f && f | f || f | f -> f | f <-> f
//      | X f | F f | G f | <> f | [] f | f U f | f R f | f V f | f W f
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"
#include "support/panic.h"

namespace pnp::ltl {

using FRef = std::int32_t;
constexpr FRef kNoFormula = -1;

enum class FKind : std::uint8_t {
  True,
  False,
  Prop,     // prop id, optionally negated (negations are pushed to leaves)
  And,
  Or,
  Next,
  Until,
  Release,
};

struct FNode {
  FKind kind{FKind::True};
  int prop{-1};
  bool negated{false};  // only meaningful for Prop
  FRef a{kNoFormula};
  FRef b{kNoFormula};

  friend bool operator==(const FNode&, const FNode&) = default;
};

/// Names atomic propositions and binds each to a closed expression over
/// globals/channels, evaluated by the product explorer on every state.
class PropertyContext {
 public:
  int add(std::string name, expr::Ref e);
  int find(const std::string& name) const;  // -1 if unknown
  const std::string& name(int id) const { return names_[static_cast<std::size_t>(id)]; }
  expr::Ref expr_of(int id) const { return exprs_[static_cast<std::size_t>(id)]; }
  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::vector<expr::Ref> exprs_;
  std::unordered_map<std::string, int> index_;
};

/// Hash-consed formula arena. All constructors return formulas already in
/// negation-normal form when built through the public helpers plus `negate`.
class FormulaPool {
 public:
  FRef tru();
  FRef fls();
  FRef prop(int id, bool negated = false);
  FRef and_(FRef a, FRef b);
  FRef or_(FRef a, FRef b);
  FRef next(FRef a);
  FRef until(FRef a, FRef b);
  FRef release(FRef a, FRef b);

  // sugar (already NNF because args are NNF)
  FRef finally_(FRef a) { return until(tru(), a); }
  FRef globally(FRef a) { return release(fls(), a); }
  FRef implies(FRef a, FRef b) { return or_(negate(a), b); }
  FRef iff(FRef a, FRef b) {
    return and_(implies(a, b), implies(b, a));
  }
  FRef weak_until(FRef a, FRef b) {
    // a W b  ==  b R (b || a)
    return release(b, or_(b, a));
  }

  /// NNF negation: dualizes operators, flips literal polarity.
  FRef negate(FRef f);

  const FNode& at(FRef f) const { return nodes_[static_cast<std::size_t>(f)]; }
  std::string to_string(FRef f, const PropertyContext* ctx = nullptr) const;

  /// Collects all Until subformulas reachable from `f` (the generalized
  /// Büchi acceptance sets of the GPVW construction, one per Until).
  std::vector<FRef> until_subformulas(FRef f) const;

 private:
  FRef intern(FNode n);

  struct NodeHash {
    std::size_t operator()(const FNode& n) const;
  };
  std::vector<FNode> nodes_;
  std::unordered_map<FNode, FRef, NodeHash> interned_;
};

/// Parses an LTL formula; proposition identifiers must already exist in
/// `ctx`. Raises ModelError with position info on syntax errors.
FRef parse_ltl(FormulaPool& pool, const PropertyContext& ctx,
               const std::string& text);

}  // namespace pnp::ltl
