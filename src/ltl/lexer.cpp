#include "ltl/lexer.h"

#include <cctype>

#include "support/panic.h"

namespace pnp::ltl {

std::vector<Token> lex_ltl(const std::string& text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();
  auto push = [&out](Tok k, std::string t, std::size_t p) {
    out.push_back({k, std::move(t), p});
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (c == '(') { push(Tok::LParen, "(", start); ++i; continue; }
    if (c == ')') { push(Tok::RParen, ")", start); ++i; continue; }
    if (c == '!') { push(Tok::Not, "!", start); ++i; continue; }
    if (c == '&') {
      i += (i + 1 < n && text[i + 1] == '&') ? 2 : 1;
      push(Tok::And, "&&", start);
      continue;
    }
    if (c == '|') {
      i += (i + 1 < n && text[i + 1] == '|') ? 2 : 1;
      push(Tok::Or, "||", start);
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      push(Tok::Implies, "->", start);
      i += 2;
      continue;
    }
    if (c == '<') {
      if (i + 2 < n && text[i + 1] == '-' && text[i + 2] == '>') {
        push(Tok::Iff, "<->", start);
        i += 3;
        continue;
      }
      if (i + 1 < n && text[i + 1] == '>') {
        push(Tok::Finally, "<>", start);
        i += 2;
        continue;
      }
      raise_model_error("LTL lex error at position " + std::to_string(start));
    }
    if (c == '[') {
      PNP_CHECK(i + 1 < n && text[i + 1] == ']',
                "LTL lex error: expected ']' at position " + std::to_string(start));
      push(Tok::Globally, "[]", start);
      i += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_'))
        ++j;
      const std::string word = text.substr(i, j - i);
      i = j;
      if (word == "true") push(Tok::True, word, start);
      else if (word == "false") push(Tok::False, word, start);
      else if (word == "X") push(Tok::Next, word, start);
      else if (word == "F") push(Tok::Finally, word, start);
      else if (word == "G") push(Tok::Globally, word, start);
      else if (word == "U") push(Tok::Until, word, start);
      else if (word == "R" || word == "V") push(Tok::Release, word, start);
      else if (word == "W") push(Tok::WeakUntil, word, start);
      else push(Tok::Ident, word, start);
      continue;
    }
    raise_model_error("LTL lex error: unexpected character '" +
                      std::string(1, c) + "' at position " +
                      std::to_string(start));
  }
  push(Tok::End, "", n);
  return out;
}

}  // namespace pnp::ltl
