// Tokenizer for the LTL surface syntax (internal to the ltl module).
#pragma once

#include <string>
#include <vector>

namespace pnp::ltl {

enum class Tok : std::uint8_t {
  End,
  Ident,   // proposition name
  True,
  False,
  LParen,
  RParen,
  Not,     // !
  And,     // && or &
  Or,      // || or |
  Implies, // ->
  Iff,     // <->
  Next,    // X
  Finally, // F or <>
  Globally,// G or []
  Until,   // U
  Release, // R or V
  WeakUntil, // W
};

struct Token {
  Tok kind{Tok::End};
  std::string text;
  std::size_t pos{0};
};

/// Raises ModelError on unknown characters.
std::vector<Token> lex_ltl(const std::string& text);

}  // namespace pnp::ltl
