#include "ltl/formula.h"
#include "ltl/lexer.h"
#include "support/panic.h"

namespace pnp::ltl {

namespace {

// Recursive-descent parser. Precedence, loosest to tightest:
//   <->   ->   ||   &&   U/R/W (right-assoc)   unary (! X F G)   atom
class Parser {
 public:
  Parser(FormulaPool& pool, const PropertyContext& ctx, std::vector<Token> toks)
      : pool_(pool), ctx_(ctx), toks_(std::move(toks)) {}

  FRef parse() {
    const FRef f = parse_iff();
    expect(Tok::End, "end of formula");
    return f;
  }

 private:
  const Token& peek() const { return toks_[pos_]; }
  Token take() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (peek().kind != k) return false;
    ++pos_;
    return true;
  }
  void expect(Tok k, const std::string& what) {
    PNP_CHECK(peek().kind == k, "LTL parse error: expected " + what +
                                    " at position " +
                                    std::to_string(peek().pos));
    ++pos_;
  }

  FRef parse_iff() {
    FRef a = parse_implies();
    while (accept(Tok::Iff)) a = pool_.iff(a, parse_implies());
    return a;
  }

  FRef parse_implies() {
    FRef a = parse_or();
    if (accept(Tok::Implies)) return pool_.implies(a, parse_implies());
    return a;
  }

  FRef parse_or() {
    FRef a = parse_and();
    while (accept(Tok::Or)) a = pool_.or_(a, parse_and());
    return a;
  }

  FRef parse_and() {
    FRef a = parse_until();
    while (accept(Tok::And)) a = pool_.and_(a, parse_until());
    return a;
  }

  FRef parse_until() {
    FRef a = parse_unary();
    if (accept(Tok::Until)) return pool_.until(a, parse_until());
    if (accept(Tok::Release)) return pool_.release(a, parse_until());
    if (accept(Tok::WeakUntil)) return pool_.weak_until(a, parse_until());
    return a;
  }

  FRef parse_unary() {
    if (accept(Tok::Not)) return pool_.negate(parse_unary());
    if (accept(Tok::Next)) return pool_.next(parse_unary());
    if (accept(Tok::Finally)) return pool_.finally_(parse_unary());
    if (accept(Tok::Globally)) return pool_.globally(parse_unary());
    return parse_atom();
  }

  FRef parse_atom() {
    if (accept(Tok::True)) return pool_.tru();
    if (accept(Tok::False)) return pool_.fls();
    if (peek().kind == Tok::Ident) {
      const Token t = take();
      const int id = ctx_.find(t.text);
      PNP_CHECK(id >= 0, "LTL parse error: unknown proposition '" + t.text +
                             "' at position " + std::to_string(t.pos));
      return pool_.prop(id);
    }
    if (accept(Tok::LParen)) {
      const FRef f = parse_iff();
      expect(Tok::RParen, "')'");
      return f;
    }
    raise_model_error("LTL parse error: unexpected token at position " +
                      std::to_string(peek().pos));
  }

  FormulaPool& pool_;
  const PropertyContext& ctx_;
  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

FRef parse_ltl(FormulaPool& pool, const PropertyContext& ctx,
               const std::string& text) {
  Parser p(pool, ctx, lex_ltl(text));
  return p.parse();
}

}  // namespace pnp::ltl
