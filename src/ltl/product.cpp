#include "ltl/product.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/hash.h"
#include "support/panic.h"

namespace pnp::ltl {

namespace {

using kernel::Machine;
using kernel::State;
using kernel::Step;

struct ProdSucc {
  State state;
  int q;
  int copy;
  Step step;
  bool stutter{false};
};

/// Deterministic Fisher-Yates driven by xorshift64*: racing workers diversify
/// their DFS order without giving up reproducibility (the same (state, seed)
/// always yields the same order, so regenerating a frame's successor list on
/// stack resume sees identical indices).
void shuffle_succs(std::vector<ProdSucc>& v, std::uint64_t seed) {
  std::uint64_t x = seed ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&x]() {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    return x * 0x2545F4914F6CDD1Dull;
  };
  for (std::size_t i = v.size(); i > 1; --i)
    std::swap(v[i - 1], v[next() % i]);
}

// The product automaton of system x Buchi automaton, optionally unfolded
// into #processes + 2 copies for weak fairness (Choueka construction,
// as in SPIN's -f):
//   copy 0:       edges from a state whose Buchi component is accepting
//                 lead to copy 1, others stay in copy 0;
//   copy i (1..N): edges lead to copy i+1 when process i-1 just moved or is
//                 disabled in the source state, else stay in copy i;
//   copy N+1:     edges lead back to copy 0; these states are the accepting
//                 set -- a cycle through copy N+1 is exactly a fair
//                 accepting cycle.
class ProductSearch {
 public:
  ProductSearch(const Machine& m, const PropertyContext& ctx,
                const BuchiAutomaton& ba, const CheckOptions& opt,
                const codegen::Engine* engine = nullptr,
                std::uint64_t perm_seed = 0,
                const std::atomic<bool>* stop = nullptr)
      : m_(m), ctx_(ctx), ba_(ba), opt_(opt), engine_(engine),
        perm_seed_(perm_seed), stop_(stop) {
    PNP_CHECK(ctx.size() <= 64, "at most 64 propositions supported");
    PNP_CHECK(!opt.weak_fairness || m.n_processes() <= 62,
              "weak fairness supports at most 62 processes");
    n_copies_ = opt.weak_fairness ? m.n_processes() + 2 : 1;
    if (opt.obs != nullptr) blk_ = opt.obs->recorder().open_block();
  }

  /// True when the run was cancelled by the shared stop flag (a sibling
  /// worker finished first); the result is then meaningless.
  bool aborted() const { return aborted_; }

  LtlResult run() {
    const auto t0 = std::chrono::steady_clock::now();
    LtlResult r;
    r.buchi_states = ba_.states.size();
    r.formula_text = ba_.formula_text;

    const State s0 = m_.initial();
    const std::uint64_t mask0 = props_mask(s0);
    bool found = false;
    for (std::size_t q = 0; q < ba_.states.size() && !found; ++q) {
      if (!ba_.states[q].initial) continue;
      if (!label_sat(ba_.states[q], mask0)) continue;
      found = dfs1(s0, static_cast<int>(q), r);
    }
    r.holds = !found;
    r.stats.states_stored = visited1_.size();
    r.stats.transitions = transitions_;
    r.stats.complete = complete_;
    if (!complete_) r.stats.truncation = explore::TruncationReason::MaxStates;
    r.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return r;
  }

  /// Publishes this search's tallies into its counter block. Called by
  /// check_ltl for the authoritative search only, so racing losers never
  /// inflate the merged totals.
  void publish_counters() {
    if (blk_ == nullptr) return;
    blk_->set(obs::Counter::StatesStored, visited1_.size() + visited2_.size());
    blk_->set(obs::Counter::Transitions, transitions_);
  }

 private:
  /// Allocation-free variant for the probe-per-transition hot path: `out`
  /// is replaced (capacity reused), so steady-state probes touch the
  /// allocator only when a state is actually new and copied into the set.
  void prod_key_into(std::string& out, const State& s, int q, int copy) const {
    kernel::encode_key_into(s, out);
    out.push_back(static_cast<char>(q & 0xff));
    out.push_back(static_cast<char>((q >> 8) & 0xff));
    out.push_back(static_cast<char>((q >> 16) & 0xff));
    out.push_back(static_cast<char>(copy & 0xff));
  }

  std::string prod_key(const State& s, int q, int copy) const {
    std::string key;
    prod_key_into(key, s, q, copy);
    return key;
  }

  std::uint64_t props_mask(const State& s) const {
    std::uint64_t mask = 0;
    for (int i = 0; i < ctx_.size(); ++i)
      if (m_.eval_global(ctx_.expr_of(i), s) != 0)
        mask |= std::uint64_t{1} << i;
    return mask;
  }

  static bool label_sat(const BuchiState& q, std::uint64_t mask) {
    for (const Literal& lit : q.label) {
      const bool v = (mask >> lit.prop) & 1;
      if (v == lit.negated) return false;
    }
    return true;
  }

  bool accepting(int q, int copy) const {
    if (!opt_.weak_fairness)
      return ba_.states[static_cast<std::size_t>(q)].accepting;
    return copy == n_copies_ - 1;  // copy N+1
  }

  /// Destination copy for a step executed by `moved_pid` (or a stutter /
  /// fully-blocked step when moved_pid < 0) out of (q, copy).
  int next_copy(int q, int copy, int moved_pid, int moved_partner,
                std::uint64_t enabled_pids) const {
    if (!opt_.weak_fairness) return 0;
    const int n = m_.n_processes();
    if (copy == 0)
      return ba_.states[static_cast<std::size_t>(q)].accepting ? 1 : 0;
    if (copy == n + 1) return 0;
    const int watched = copy - 1;  // process this copy waits on
    const bool moved = moved_pid == watched || moved_partner == watched;
    const bool disabled = ((enabled_pids >> watched) & 1) == 0;
    return (moved || disabled) ? copy + 1 : copy;
  }

  void prod_successors(const State& s, int q, int copy,
                       std::vector<ProdSucc>& out) {
    sys_succs_.clear();
    // System-side expansion is the hot inner loop of the product search; the
    // engine streams byte-identical successors in the same order, so the
    // product (keys, DFS order, trails) is unchanged.
    if (engine_ != nullptr)
      engine_->successors(s, sys_succs_);
    else
      m_.successors(s, sys_succs_);
    const BuchiState& bq = ba_.states[static_cast<std::size_t>(q)];

    std::uint64_t enabled_pids = 0;
    if (opt_.weak_fairness) {
      for (const kernel::Succ& succ : sys_succs_) {
        if (succ.second.pid >= 0 && succ.second.pid < 64)
          enabled_pids |= std::uint64_t{1} << succ.second.pid;
        if (succ.second.partner_pid >= 0 && succ.second.partner_pid < 64)
          enabled_pids |= std::uint64_t{1} << succ.second.partner_pid;
      }
    }

    if (sys_succs_.empty()) {
      // stutter extension: terminal system states loop on themselves
      const std::uint64_t mask = props_mask(s);
      const int c2 = next_copy(q, copy, -1, -1, 0);
      for (int q2 : bq.out)
        if (label_sat(ba_.states[static_cast<std::size_t>(q2)], mask))
          out.push_back({s, q2, c2, Step{}, true});
      permute(s, q, copy, out);
      return;
    }
    for (kernel::Succ& succ : sys_succs_) {
      const std::uint64_t mask = props_mask(succ.first);
      const int c2 = next_copy(q, copy, succ.second.pid,
                               succ.second.partner_pid, enabled_pids);
      // Copy the system state for all but the last satisfiable Buchi edge,
      // then move it into the final ProdSucc: sys_succs_ is scratch that is
      // cleared on the next expansion, and push order (ascending q2) is
      // preserved, so the DFS is byte-identical to the copying version.
      int pending = -1;
      for (int q2 : bq.out) {
        if (!label_sat(ba_.states[static_cast<std::size_t>(q2)], mask))
          continue;
        if (pending >= 0)
          out.push_back({succ.first, pending, c2, succ.second, false});
        pending = q2;
      }
      if (pending >= 0)
        out.push_back({std::move(succ.first), pending, c2, succ.second, false});
    }
    permute(s, q, copy, out);
  }

  /// Per-state permutation for racing workers: seeded by the worker seed
  /// mixed with the product state's own hash, so the order is a pure
  /// function of (state, seed) and survives frame regeneration.
  void permute(const State& s, int q, int copy, std::vector<ProdSucc>& out) {
    if (perm_seed_ == 0 || out.size() < 2) return;
    const std::string key = prod_key(s, q, copy);
    const std::uint64_t h = hash_bytes(
        {reinterpret_cast<const std::uint8_t*>(key.data()), key.size()});
    shuffle_succs(out, avalanche64(perm_seed_ ^ h));
  }

  bool stop_requested() {
    if (stop_ && stop_->load(std::memory_order_relaxed)) {
      aborted_ = true;
      complete_ = false;
      return true;
    }
    return false;
  }

  // As in the safety explorer, frames do not own successor lists: only the
  // top frame's successors are materialized, regenerated on resume
  // (prod_successors is deterministic, so indices stay valid).
  struct Frame {
    State state;
    int q;
    int copy;
    std::string key;
    Step in_step;
    bool in_stutter{false};
    std::uint32_t next = 0;
  };

  bool dfs1(const State& s0, int q0, LtlResult& r) {
    std::vector<Frame> stack;
    std::unordered_set<std::string> on_stack;

    Frame root;
    root.state = s0;
    root.q = q0;
    root.copy = 0;
    root.key = prod_key(s0, q0, 0);
    if (!visited1_.insert(root.key).second) return false;
    on_stack.insert(root.key);
    stack.push_back(std::move(root));

    std::vector<ProdSucc> succs;
    std::ptrdiff_t succs_for = -1;

    while (!stack.empty()) {
      if (stop_requested()) return false;
      observe();
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(stack.size()) - 1;
      Frame& f = stack[static_cast<std::size_t>(idx)];
      if (succs_for != idx) {
        succs.clear();
        prod_successors(f.state, f.q, f.copy, succs);
        if (f.next == 0) transitions_ += succs.size();  // first expansion
        succs_for = idx;
      }
      if (f.next < succs.size()) {
        ProdSucc& succ = succs[f.next++];
        // Probe with the reusable scratch key; the string is only copied
        // into the set (and the frame) when the state is genuinely new.
        prod_key_into(key_scratch_, succ.state, succ.q, succ.copy);
        if (visited1_.contains(key_scratch_)) continue;
        visited1_.insert(key_scratch_);
        if (visited1_.size() >= opt_.max_states) {
          complete_ = false;
          continue;
        }
        Frame nf;
        nf.state = std::move(succ.state);
        nf.q = succ.q;
        nf.copy = succ.copy;
        nf.key = key_scratch_;
        nf.in_step = succ.step;
        nf.in_stutter = succ.stutter;
        on_stack.insert(nf.key);
        stack.push_back(std::move(nf));
        succs_for = -1;
        continue;
      }
      // post-order: seed the inner search from accepting states
      if (accepting(f.q, f.copy)) {
        std::vector<std::pair<Step, bool>> cycle;
        if (dfs2(f.state, f.q, f.copy, on_stack, cycle)) {
          build_violation(stack, cycle, r);
          return true;
        }
        succs_for = -1;  // dfs2 clobbered nothing, but be conservative
      }
      on_stack.erase(f.key);
      stack.pop_back();
      succs_for = -1;
    }
    return false;
  }

  /// Inner DFS: from an accepting state, search for any state on the outer
  /// stack. Returns the cycle steps on success.
  bool dfs2(const State& seed, int q_seed, int copy_seed,
            const std::unordered_set<std::string>& on_stack1,
            std::vector<std::pair<Step, bool>>& cycle_out) {
    struct F2 {
      State state;
      int q;
      int copy;
      Step in_step;
      bool in_stutter{false};
      std::uint32_t next = 0;
    };
    std::vector<F2> stack;
    stack.push_back({seed, q_seed, copy_seed, Step{}, false, 0});
    if (!visited2_.insert(prod_key(seed, q_seed, copy_seed)).second)
      return false;

    std::vector<ProdSucc> succs;
    std::ptrdiff_t succs_for = -1;

    while (!stack.empty()) {
      if (stop_requested()) return false;
      const std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(stack.size()) - 1;
      F2& f = stack[static_cast<std::size_t>(idx)];
      if (succs_for != idx) {
        succs.clear();
        prod_successors(f.state, f.q, f.copy, succs);
        if (f.next == 0) transitions_ += succs.size();  // first expansion
        succs_for = idx;
      }
      if (f.next >= succs.size()) {
        stack.pop_back();
        succs_for = -1;
        continue;
      }
      ProdSucc& succ = succs[f.next++];
      prod_key_into(key_scratch_, succ.state, succ.q, succ.copy);
      if (on_stack1.contains(key_scratch_)) {
        // cycle closes through the outer stack
        for (std::size_t i = 1; i < stack.size(); ++i)
          cycle_out.push_back({stack[i].in_step, stack[i].in_stutter});
        cycle_out.push_back({succ.step, succ.stutter});
        return true;
      }
      if (visited2_.contains(key_scratch_)) continue;
      visited2_.insert(key_scratch_);
      if (visited2_.size() >= opt_.max_states) {
        complete_ = false;
        continue;
      }
      stack.push_back({std::move(succ.state), succ.q, succ.copy, succ.step,
                       succ.stutter, 0});
      succs_for = -1;
    }
    return false;
  }

  void build_violation(const std::vector<Frame>& stack,
                       const std::vector<std::pair<Step, bool>>& cycle,
                       LtlResult& r) {
    explore::Violation v;
    v.kind = explore::ViolationKind::AcceptanceCycle;
    v.message = "acceptance cycle: an execution violates " + ba_.formula_text;
    if (opt_.weak_fairness) v.message += " (weak fairness enforced)";
    if (opt_.want_trace) {
      auto add = [&](const Step& st, bool stutter) {
        trace::TraceStep ts;
        ts.step = st;
        ts.description = stutter ? "(stutter: system terminated, state repeats)"
                                 : m_.describe_step(st);
        v.trace.steps.push_back(std::move(ts));
      };
      for (std::size_t i = 1; i < stack.size(); ++i)
        add(stack[i].in_step, stack[i].in_stutter);
      trace::TraceStep marker;
      marker.step = Step{};
      marker.description = "=== start of accepting cycle ===";
      v.trace.steps.push_back(std::move(marker));
      for (const auto& [st, stutter] : cycle) add(st, stutter);
      v.trace.final_state = m_.format_state(stack.back().state);
    }
    r.violation = std::move(v);
  }

  const Machine& m_;
  const PropertyContext& ctx_;
  const BuchiAutomaton& ba_;
  const CheckOptions& opt_;
  const codegen::Engine* engine_{nullptr};
  std::uint64_t perm_seed_{0};
  const std::atomic<bool>* stop_{nullptr};
  int n_copies_{1};

  /// Amortized telemetry every kObsStride outer-DFS iterations: a
  /// rate-limited heartbeat always; counter publication only when this is
  /// the lone search (racing workers overlap, so their intermediate tallies
  /// would inflate the merged totals -- the winner publishes once at the
  /// end instead, via check_ltl).
  void observe() {
    if (blk_ == nullptr) return;
    if (++obs_tick_ % kObsStride != 0) return;
    if (stop_ == nullptr) publish_counters();
    opt_.obs->progress(visited1_.size() + visited2_.size(), opt_.max_states);
  }

  static constexpr std::uint64_t kObsStride = 1024;

  std::unordered_set<std::string> visited1_;
  std::unordered_set<std::string> visited2_;
  std::vector<kernel::Succ> sys_succs_;
  std::string key_scratch_;
  std::uint64_t transitions_ = 0;
  bool complete_ = true;
  bool aborted_ = false;
  obs::CounterBlock* blk_ = nullptr;
  std::uint64_t obs_tick_ = 0;
};

}  // namespace

LtlResult check_ltl(const kernel::Machine& m, FormulaPool& pool,
                    const PropertyContext& ctx, FRef phi,
                    const CheckOptions& opt) {
  const FRef neg = pool.negate(phi);
  const BuchiAutomaton ba = build_buchi(pool, neg, &ctx);
  const int threads = explore::resolve_threads(opt.threads);

  // One engine serves every worker: engines are immutable after construction
  // and all mutable search state (scratch, visited sets) is per-worker.
  // Non-strict: an unavailable AOT toolchain degrades to bytecode with the
  // reason captured in `engine_note` rather than failing the check.
  std::unique_ptr<codegen::Engine> engine;
  std::string engine_note;
  if (opt.engine != codegen::EngineKind::Interp) {
    codegen::EngineOptions ecfg;
    ecfg.kind = opt.engine;
    ecfg.cache_dir = opt.engine_cache_dir;
    ecfg.strict = false;
    ecfg.obs = opt.obs;
    engine = codegen::make_engine(m, ecfg, &engine_note);
  }

  std::size_t phase = 0;
  if (opt.obs != nullptr)
    phase = opt.obs->begin_phase(
        threads <= 1 ? "ltl-product" : "ltl-product-racing", opt.max_states);
  LtlResult r;
  if (threads <= 1) {
    ProductSearch search(m, ctx, ba, opt, engine.get());
    r = search.run();
    search.publish_counters();
  } else {
    // Racing workers over the shared read-only (machine, automaton): worker
    // 0 runs the canonical order, the rest follow independently permuted
    // DFS orders. The first to finish posts its result and cancels the
    // rest -- sound because every worker's search is exact.
    std::atomic<bool> stop{false};
    std::atomic<int> winner{-1};
    std::vector<std::optional<LtlResult>> results(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> crew;
    crew.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      crew.emplace_back([&, w] {
        const std::uint64_t seed =
            w == 0 ? 0
                   : avalanche64(0x17e1'0ba5'e11eull +
                                 static_cast<std::uint64_t>(w));
        ProductSearch search(m, ctx, ba, opt, engine.get(), seed, &stop);
        LtlResult wr = search.run();
        if (search.aborted()) return;
        int expected = -1;
        if (winner.compare_exchange_strong(expected, w)) {
          search.publish_counters();  // only the authoritative search counts
          results[static_cast<std::size_t>(w)] = std::move(wr);
          stop.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : crew) t.join();
    const int w = winner.load();
    PNP_CHECK(w >= 0, "check_ltl: no racing worker finished");
    r = std::move(*results[static_cast<std::size_t>(w)]);
    r.stats.threads = threads;
  }
  r.formula_text = pool.to_string(phi, &ctx);
  r.engine_requested = opt.engine;
  r.engine_actual = engine ? engine->kind() : codegen::EngineKind::Interp;
  r.engine_note = std::move(engine_note);
  if (opt.obs != nullptr) {
    opt.obs->end_phase(phase, r.stats.states_stored, r.stats.seconds,
                       r.stats.complete ? std::string()
                                        : explore::truncation_reason_name(
                                              r.stats.truncation));
    if (!r.holds && r.violation)
      opt.obs->counterexample(r.formula_text, "acceptance cycle");
  }
  return r;
}

LtlResult check_ltl(const kernel::Machine& m, const PropertyContext& ctx,
                    const std::string& formula, const CheckOptions& opt) {
  FormulaPool pool;
  const FRef phi = parse_ltl(pool, ctx, formula);
  return check_ltl(m, pool, ctx, phi, opt);
}

}  // namespace pnp::ltl
