// LTL model checking: product of the system with the Büchi automaton of the
// negated formula, searched for accepting cycles with the CVWY nested DFS.
#pragma once

#include <optional>
#include <string>

#include "explore/explorer.h"
#include "kernel/machine.h"
#include "ltl/buchi.h"

namespace pnp::ltl {

struct CheckOptions {
  std::uint64_t max_states = 20'000'000;
  bool want_trace = true;
  /// Racing nested-DFS workers: each explores the same product with an
  /// independently permuted successor order and an exact private visited
  /// set, so any worker that finishes is authoritative (a violation is a
  /// real lasso; a complete violation-free search proves the property).
  /// The first worker to finish wins and cancels the rest. 1 = the
  /// historical sequential search, 0 = hardware concurrency.
  int threads = 1;
  /// Enforce weak process fairness (SPIN's -f): only consider executions
  /// where every continuously-enabled process eventually moves. Implemented
  /// with the Choueka copy construction, multiplying the product by
  /// (#processes + 2) -- use on small systems or be patient.
  bool weak_fairness = false;
};

struct LtlResult {
  bool holds{false};  // true = property verified on all executions
  explore::Stats stats;
  /// Present when !holds: the lasso-shaped counterexample (prefix followed
  /// by a marked accepting cycle).
  std::optional<explore::Violation> violation;
  std::size_t buchi_states{0};
  std::string formula_text;
};

/// Checks that `m` satisfies `phi` (passed positively; negation, automaton
/// construction, and the product search happen inside). Finite executions
/// are stutter-extended: a state without successors behaves as if it looped
/// on itself, so properties like `G p` are correctly falsified at
/// terminal states.
LtlResult check_ltl(const kernel::Machine& m, FormulaPool& pool,
                    const PropertyContext& ctx, FRef phi,
                    const CheckOptions& opt = {});

/// Convenience overload: parses `formula` against `ctx`.
LtlResult check_ltl(const kernel::Machine& m, const PropertyContext& ctx,
                    const std::string& formula, const CheckOptions& opt = {});

}  // namespace pnp::ltl
