// LTL model checking: product of the system with the Büchi automaton of the
// negated formula, searched for accepting cycles with the CVWY nested DFS.
#pragma once

#include <optional>
#include <string>

#include "codegen/engine.h"
#include "explore/explorer.h"
#include "kernel/machine.h"
#include "ltl/buchi.h"
#include "obs/obs.h"
#include "pnp/exec_budget.h"

namespace pnp::ltl {

/// Budgets (max_states, deadline_seconds, memory_budget_bytes, threads)
/// come from the shared pnp::ExecBudget base; the old field spellings
/// remain valid as the inherited members. threads enables racing nested-DFS
/// workers: each explores the same product with an independently permuted
/// successor order and an exact private visited set, so any worker that
/// finishes is authoritative (a violation is a real lasso; a complete
/// violation-free search proves the property). The first worker to finish
/// wins and cancels the rest. 1 = the historical sequential search, 0 =
/// hardware concurrency.
struct CheckOptions : ExecBudget {
  bool want_trace = true;
  /// Enforce weak process fairness (SPIN's -f): only consider executions
  /// where every continuously-enabled process eventually moves. Implemented
  /// with the Choueka copy construction, multiplying the product by
  /// (#processes + 2) -- use on small systems or be patient.
  bool weak_fairness = false;
  /// Observability context; null = no telemetry.
  obs::Observer* obs = nullptr;
  /// Compiled successor backend for the system side of the product search;
  /// Buchi stepping and proposition evaluation stay interpreted (they are
  /// cold). The engine is built once per check and shared by all racing
  /// workers (engines are immutable after construction and thread-safe
  /// through caller-owned scratch). `aot` falls back to `bytecode` when no
  /// toolchain is available; the resolution is recorded in LtlResult.
  codegen::EngineKind engine = codegen::EngineKind::Interp;
  /// Artifact cache directory for AOT engines (codegen::EngineOptions).
  std::string engine_cache_dir;
};

/// Designated initializers cannot reach into the ExecBudget base, so these
/// replace the historical `{.weak_fairness = true}` / `{.max_states = N}`
/// spellings at call sites.
inline CheckOptions fair() {
  CheckOptions c;
  c.weak_fairness = true;
  return c;
}
inline CheckOptions bounded(std::uint64_t max_states) {
  CheckOptions c;
  c.max_states = max_states;
  return c;
}

struct LtlResult {
  bool holds{false};  // true = property verified on all executions
  explore::Stats stats;
  /// Present when !holds: the lasso-shaped counterexample (prefix followed
  /// by a marked accepting cycle).
  std::optional<explore::Violation> violation;
  std::size_t buchi_states{0};
  std::string formula_text;
  /// Requested vs. resolved successor backend for the system side, plus the
  /// fallback explanation when they differ (e.g. "aot unavailable (no
  /// toolchain); using bytecode"). Engines never affect verdicts or trails.
  codegen::EngineKind engine_requested{codegen::EngineKind::Interp};
  codegen::EngineKind engine_actual{codegen::EngineKind::Interp};
  std::string engine_note;
};

/// Checks that `m` satisfies `phi` (passed positively; negation, automaton
/// construction, and the product search happen inside). Finite executions
/// are stutter-extended: a state without successors behaves as if it looped
/// on itself, so properties like `G p` are correctly falsified at
/// terminal states.
LtlResult check_ltl(const kernel::Machine& m, FormulaPool& pool,
                    const PropertyContext& ctx, FRef phi,
                    const CheckOptions& opt = {});

/// Convenience overload: parses `formula` against `ctx`.
LtlResult check_ltl(const kernel::Machine& m, const PropertyContext& ctx,
                    const std::string& formula, const CheckOptions& opt = {});

}  // namespace pnp::ltl
