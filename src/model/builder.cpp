#include "model/builder.h"

#include "support/panic.h"

namespace pnp::model {

ProcBuilder::ProcBuilder(SystemSpec& sys, std::string name) : sys_(&sys) {
  proc_.name = std::move(name);
}

LVar ProcBuilder::param(std::string name) {
  PNP_CHECK(proc_.locals.empty(), "params must be declared before locals");
  proc_.params.push_back({std::move(name), 0});
  return LVar{static_cast<int>(proc_.params.size()) - 1};
}

LVar ProcBuilder::local(std::string name, Value init) {
  proc_.locals.push_back({std::move(name), init});
  return LVar{static_cast<int>(proc_.params.size() + proc_.locals.size()) - 1};
}

expr::Ex ProcBuilder::l(LVar v) {
  PNP_CHECK(v.slot >= 0, "use of undeclared local");
  return expr::wrap(sys_->exprs, sys_->exprs.local(v.slot));
}

expr::Ex ProcBuilder::g(GVar v) {
  PNP_CHECK(v.slot >= 0, "use of undeclared global");
  return expr::wrap(sys_->exprs, sys_->exprs.global(v.slot));
}

expr::Ex ProcBuilder::g(const std::string& name) {
  auto slot = sys_->find_global(name);
  PNP_CHECK(slot.has_value(), "unknown global: " + name);
  return expr::wrap(sys_->exprs, sys_->exprs.global(*slot));
}

expr::Ex ProcBuilder::k(Value v) {
  return expr::wrap(sys_->exprs, sys_->exprs.konst(v));
}

expr::Ex ProcBuilder::c(Chan ch) {
  PNP_CHECK(ch.id >= 0, "use of undeclared channel");
  return k(static_cast<Value>(ch.id));
}

expr::Ex ProcBuilder::self() {
  return expr::wrap(sys_->exprs, sys_->exprs.self_pid());
}

expr::Ex ProcBuilder::len(expr::Ex chan) {
  return expr::wrap(sys_->exprs,
                    sys_->exprs.chan_query(expr::Op::ChanLen, chan.ref));
}

expr::Ex ProcBuilder::full(expr::Ex chan) {
  return expr::wrap(sys_->exprs,
                    sys_->exprs.chan_query(expr::Op::ChanFull, chan.ref));
}

expr::Ex ProcBuilder::empty(expr::Ex chan) {
  return expr::wrap(sys_->exprs,
                    sys_->exprs.chan_query(expr::Op::ChanEmpty, chan.ref));
}

expr::Ex ProcBuilder::cond(expr::Ex c, expr::Ex t, expr::Ex f) {
  return expr::wrap(sys_->exprs, sys_->exprs.cond(c.ref, t.ref, f.ref));
}

int ProcBuilder::finish(Seq body) {
  PNP_CHECK(!finished_, "ProcBuilder::finish called twice");
  finished_ = true;
  proc_.body = std::move(body);
  return sys_->add_proctype(std::move(proc_));
}

StmtPtr skip() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Skip;
  return s;
}

StmtPtr guard(expr::Ex e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Guard;
  s->expr = e.ref;
  return s;
}

namespace {
StmtPtr make_assign(Lhs lhs, expr::Ex e) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->lhs = lhs;
  s->expr = e.ref;
  return s;
}
}  // namespace

StmtPtr assign(LVar v, expr::Ex e) {
  return make_assign({LhsKind::Local, v.slot}, e);
}

StmtPtr assign(GVar v, expr::Ex e) {
  return make_assign({LhsKind::Global, v.slot}, e);
}

StmtPtr incr(GVar v, SystemSpec& sys) {
  expr::Ex cur = expr::wrap(sys.exprs, sys.exprs.global(v.slot));
  expr::Ex one = expr::wrap(sys.exprs, sys.exprs.konst(1));
  return assign(v, cur + one);
}

StmtPtr decr(GVar v, SystemSpec& sys) {
  expr::Ex cur = expr::wrap(sys.exprs, sys.exprs.global(v.slot));
  expr::Ex one = expr::wrap(sys.exprs, sys.exprs.konst(1));
  return assign(v, cur - one);
}

StmtPtr send(expr::Ex chan, std::vector<expr::Ex> fields, std::string label,
             SendOpts opts) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Send;
  s->chan = chan.ref;
  for (const expr::Ex& f : fields) s->fields.push_back(f.ref);
  s->sorted = opts.sorted;
  s->label = std::move(label);
  return s;
}

RecvArg bind(LVar v) { return {RecvArgKind::Bind, {LhsKind::Local, v.slot}, expr::kNoExpr}; }
RecvArg bind(GVar v) { return {RecvArgKind::Bind, {LhsKind::Global, v.slot}, expr::kNoExpr}; }
RecvArg match(expr::Ex e) { return {RecvArgKind::Match, {}, e.ref}; }
RecvArg any() { return {RecvArgKind::Wildcard, {}, expr::kNoExpr}; }

StmtPtr recv(expr::Ex chan, std::vector<RecvArg> args, std::string label,
             RecvOpts opts) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Recv;
  s->chan = chan.ref;
  s->args = std::move(args);
  s->random = opts.random;
  s->copy = opts.copy;
  s->unordered = opts.unordered;
  s->label = std::move(label);
  return s;
}

Branch alt(Seq body) {
  Branch b;
  b.body = std::move(body);
  return b;
}

Branch alt_else(Seq body) {
  Branch b;
  b.body = std::move(body);
  b.is_else = true;
  return b;
}

StmtPtr break_() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Break;
  return s;
}

StmtPtr atomic(Seq body) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Atomic;
  s->body = std::move(body);
  return s;
}

StmtPtr assert_(expr::Ex e, std::string label) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assert;
  s->expr = e.ref;
  s->label = std::move(label);
  return s;
}

StmtPtr end_label() {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::EndLabel;
  return s;
}

StmtPtr labeled(StmtPtr s, std::string label) {
  s->label = std::move(label);
  return s;
}

Seq concat(Seq head, Seq tail) {
  for (StmtPtr& s : tail) head.push_back(std::move(s));
  return head;
}

}  // namespace pnp::model
