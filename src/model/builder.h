// Fluent construction API for the modeling IR.
//
// A process model is written as a statement tree using the free factory
// functions below, with `ProcBuilder` managing the process frame (params and
// locals) and giving access to expression sugar. The resulting code reads
// close to the Promela models in the paper, e.g. the synchronous blocking
// send port (paper Fig. 6) becomes:
//
//   ProcBuilder b(sys, "SynBlSendPort");
//   auto comp_sig = b.param("componentSig"); ... etc
//   b.finish(seq(
//     do_(alt(seq(
//       recv(b.l(comp_data), {bind_msg(m)}),
//       assign(m_sender, b.self()),
//       do_(alt(seq(send(b.l(chan_data), {...}), ...)))...
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "model/system.h"

namespace pnp::model {

/// Typed handles so locals and globals cannot be mixed up.
struct LVar {
  int slot{-1};
};
struct GVar {
  int slot{-1};
};
/// A statically declared channel instance.
struct Chan {
  int id{-1};
};

class ProcBuilder {
 public:
  ProcBuilder(SystemSpec& sys, std::string name);

  LVar param(std::string name);
  LVar local(std::string name, Value init = 0);

  // -- expression sugar -----------------------------------------------------
  expr::Ex l(LVar v);                 // read a local
  expr::Ex g(GVar v);                 // read a global
  expr::Ex g(const std::string& name);  // read a global by name
  expr::Ex k(Value v);                // constant
  expr::Ex c(Chan ch);                // channel-id constant
  expr::Ex self();                    // _pid
  expr::Ex len(expr::Ex chan);
  expr::Ex full(expr::Ex chan);
  expr::Ex empty(expr::Ex chan);
  expr::Ex cond(expr::Ex c, expr::Ex t, expr::Ex f);

  /// Registers the proctype with the system and returns its index.
  int finish(Seq body);

  SystemSpec& sys() { return *sys_; }
  const std::string& name() const { return proc_.name; }

 private:
  SystemSpec* sys_;
  ProcType proc_;
  bool finished_{false};
};

// -- statement factories ------------------------------------------------------

namespace detail {
inline void push_all(Seq&) {}
template <typename... Rest>
void push_all(Seq& out, StmtPtr first, Rest&&... rest);
// Sequences may be spliced into seq() directly.
template <typename... Rest>
void push_all(Seq& out, Seq first, Rest&&... rest);

template <typename... Rest>
void push_all(Seq& out, StmtPtr first, Rest&&... rest) {
  out.push_back(std::move(first));
  push_all(out, std::forward<Rest>(rest)...);
}
template <typename... Rest>
void push_all(Seq& out, Seq first, Rest&&... rest) {
  for (StmtPtr& s : first) out.push_back(std::move(s));
  push_all(out, std::forward<Rest>(rest)...);
}
inline void push_branches(std::vector<Branch>&) {}
template <typename... Rest>
void push_branches(std::vector<Branch>& out, Branch first, Rest&&... rest) {
  out.push_back(std::move(first));
  push_branches(out, std::forward<Rest>(rest)...);
}
}  // namespace detail

template <typename... S>
Seq seq(S&&... stmts) {
  Seq out;
  detail::push_all(out, std::forward<S>(stmts)...);
  return out;
}

StmtPtr skip();
StmtPtr guard(expr::Ex e);
StmtPtr assign(LVar v, expr::Ex e);
StmtPtr assign(GVar v, expr::Ex e);
StmtPtr incr(GVar v, SystemSpec& sys);  // v = v + 1
StmtPtr decr(GVar v, SystemSpec& sys);  // v = v - 1

struct SendOpts {
  bool sorted{false};  // `!!` ordered insert
};
StmtPtr send(expr::Ex chan, std::vector<expr::Ex> fields, std::string label = "",
             SendOpts opts = {});

RecvArg bind(LVar v);
RecvArg bind(GVar v);
RecvArg match(expr::Ex e);
RecvArg any();

struct RecvOpts {
  bool random{false};     // `??` first matching message anywhere in the buffer
  bool copy{false};       // peek without removing
  bool unordered{false};  // bag semantics: one successor per matching message
};
StmtPtr recv(expr::Ex chan, std::vector<RecvArg> args, std::string label = "",
             RecvOpts opts = {});

Branch alt(Seq body);
Branch alt_else(Seq body);

template <typename... B>
StmtPtr if_(B&&... branches) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  detail::push_branches(s->branches, std::forward<B>(branches)...);
  return s;
}

template <typename... B>
StmtPtr do_(B&&... branches) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Do;
  detail::push_branches(s->branches, std::forward<B>(branches)...);
  return s;
}

StmtPtr break_();
StmtPtr atomic(Seq body);
StmtPtr assert_(expr::Ex e, std::string label = "");
StmtPtr end_label();

/// Attaches a trace label to a statement and returns it.
StmtPtr labeled(StmtPtr s, std::string label);

/// Appends `tail`'s statements to `head`.
Seq concat(Seq head, Seq tail);

}  // namespace pnp::model
