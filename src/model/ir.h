// Modeling IR: a Promela-like guarded-command language as a C++ data
// structure.
//
// Processes are trees of statements with Promela executability semantics:
// a basic statement is *executable* in a state or it *blocks*; selection
// (if/do) nondeterministically picks among branches whose first statement
// is executable; `else` branches fire only when no sibling can.
//
// Channels follow Promela too: capacity 0 means rendezvous (a send
// synchronizes with a matching receive in another process), capacity N > 0
// means an N-slot buffer. Receives may match constants against message
// fields (`ch?IN_OK,eval(_pid)`), bind fields to variables, use
// first-match-anywhere semantics (`??`), or peek without removing (`<...>`).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace pnp::model {

using expr::Value;
using ExprRef = expr::Ref;

/// Assignment / bind target: a slot in the process frame or a global.
enum class LhsKind : std::uint8_t { Local, Global };

struct Lhs {
  LhsKind kind{LhsKind::Local};
  int slot{-1};
};

/// One position in a receive pattern.
enum class RecvArgKind : std::uint8_t {
  Bind,      // store the field into `lhs`
  Match,     // executable only if field == eval(match)
  Wildcard,  // matches anything, value discarded
};

struct RecvArg {
  RecvArgKind kind{RecvArgKind::Wildcard};
  Lhs lhs{};
  ExprRef match{expr::kNoExpr};
};

enum class StmtKind : std::uint8_t {
  Skip,      // always executable, no effect
  Guard,     // executable iff expr != 0, no effect
  Assign,    // always executable
  Send,      // ch!e1,...,en  (or sorted send ch!!...)
  Recv,      // ch?p1,...,pn  (variants: random ??, copy <>)
  If,        // if :: ... fi
  Do,        // do :: ... od
  Break,     // leave innermost do
  Atomic,    // atomic { ... }
  Assert,    // assert(expr)
  EndLabel,  // marks the current control point as a valid end state
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;
using Seq = std::vector<StmtPtr>;

struct Branch {
  Seq body;
  bool is_else{false};
};

struct Stmt {
  StmtKind kind{StmtKind::Skip};

  // Guard / Assert
  ExprRef expr{expr::kNoExpr};

  // Assign target
  Lhs lhs{};

  // Send / Recv: the channel operand is an expression evaluating to a
  // channel id, so channels can be process parameters.
  ExprRef chan{expr::kNoExpr};
  std::vector<ExprRef> fields;   // send payload (one expr per field)
  bool sorted{false};            // `!!` ordered insert (priority queues)
  std::vector<RecvArg> args;     // receive pattern
  bool random{false};            // `??` first matching message anywhere
  bool copy{false};              // peek: do not remove the message
  bool unordered{false};         // one successor per matching message (bag
                                 // semantics; models reordering connectors)

  // If / Do
  std::vector<Branch> branches;

  // Atomic
  Seq body;

  // Optional human-readable label used in counterexample traces.
  std::string label;
};

/// Deep copy (statement trees are otherwise move-only).
StmtPtr clone(const Stmt& s);
Seq clone(const Seq& s);

}  // namespace pnp::model
