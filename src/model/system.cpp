#include "model/system.h"

#include "support/panic.h"

namespace pnp::model {

StmtPtr clone(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->expr = s.expr;
  out->lhs = s.lhs;
  out->chan = s.chan;
  out->fields = s.fields;
  out->sorted = s.sorted;
  out->args = s.args;
  out->random = s.random;
  out->copy = s.copy;
  out->unordered = s.unordered;
  out->label = s.label;
  for (const Branch& b : s.branches) {
    Branch nb;
    nb.is_else = b.is_else;
    nb.body = clone(b.body);
    out->branches.push_back(std::move(nb));
  }
  out->body = clone(s.body);
  return out;
}

Seq clone(const Seq& s) {
  Seq out;
  out.reserve(s.size());
  for (const StmtPtr& p : s) out.push_back(clone(*p));
  return out;
}

int SystemSpec::add_global(std::string name, Value init) {
  globals.push_back({std::move(name), init});
  return static_cast<int>(globals.size()) - 1;
}

int SystemSpec::add_channel(std::string name, int capacity, int arity, bool lossy) {
  PNP_CHECK(capacity >= 0, "channel capacity must be >= 0");
  PNP_CHECK(arity >= 1, "channel arity must be >= 1");
  PNP_CHECK(!(lossy && capacity == 0), "rendezvous channels cannot be lossy");
  channels.push_back({std::move(name), capacity, arity, lossy});
  return static_cast<int>(channels.size()) - 1;
}

Value SystemSpec::add_mtype(std::string name) {
  mtypes.push_back(std::move(name));
  return static_cast<Value>(mtypes.size());  // values start at 1
}

int SystemSpec::add_proctype(ProcType p) {
  proctypes.push_back(std::move(p));
  return static_cast<int>(proctypes.size()) - 1;
}

int SystemSpec::spawn(std::string name, int proctype, std::vector<Value> args) {
  PNP_CHECK(proctype >= 0 && proctype < static_cast<int>(proctypes.size()),
            "spawn of unknown proctype");
  PNP_CHECK(args.size() == proctypes[static_cast<std::size_t>(proctype)].params.size(),
            "spawn argument count mismatch for " +
                proctypes[static_cast<std::size_t>(proctype)].name);
  processes.push_back({std::move(name), proctype, std::move(args)});
  return static_cast<int>(processes.size()) - 1;
}

std::optional<int> SystemSpec::find_global(const std::string& name) const {
  for (std::size_t i = 0; i < globals.size(); ++i)
    if (globals[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::optional<int> SystemSpec::find_channel(const std::string& name) const {
  for (std::size_t i = 0; i < channels.size(); ++i)
    if (channels[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::optional<int> SystemSpec::find_proctype(const std::string& name) const {
  for (std::size_t i = 0; i < proctypes.size(); ++i)
    if (proctypes[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::string SystemSpec::mtype_name(Value v) const {
  if (v >= 1 && static_cast<std::size_t>(v) <= mtypes.size())
    return mtypes[static_cast<std::size_t>(v - 1)];
  return std::to_string(v);
}

namespace {

struct Validator {
  const SystemSpec& sys;
  const ProcType* proc = nullptr;
  int do_depth = 0;

  void check_lhs(const Lhs& l) const {
    if (l.kind == LhsKind::Local) {
      PNP_CHECK(l.slot >= 0 && l.slot < proc->frame_size(),
                "local slot out of range in " + proc->name);
    } else {
      PNP_CHECK(l.slot >= 0 && l.slot < static_cast<int>(sys.globals.size()),
                "global slot out of range in " + proc->name);
    }
  }

  void check_chan_arity(ExprRef chan, std::size_t nfields) const {
    // Only statically known channel operands can be arity-checked here;
    // channel parameters are checked at runtime by the kernel.
    const expr::Node& n = sys.exprs.at(chan);
    if (n.op != expr::Op::Const) return;
    PNP_CHECK(n.imm >= 0 && n.imm < static_cast<Value>(sys.channels.size()),
              "send/recv on unknown channel in " + proc->name);
    PNP_CHECK(sys.channels[static_cast<std::size_t>(n.imm)].arity ==
                  static_cast<int>(nfields),
              "message arity mismatch on channel " +
                  sys.channels[static_cast<std::size_t>(n.imm)].name);
  }

  void visit(const Seq& seq) {
    for (const StmtPtr& s : seq) visit(*s);
  }

  void visit(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::Skip:
      case StmtKind::EndLabel:
        break;
      case StmtKind::Guard:
      case StmtKind::Assert:
        PNP_CHECK(s.expr != expr::kNoExpr, "guard/assert without expression");
        break;
      case StmtKind::Assign:
        PNP_CHECK(s.expr != expr::kNoExpr, "assign without rhs");
        check_lhs(s.lhs);
        break;
      case StmtKind::Send:
        PNP_CHECK(s.chan != expr::kNoExpr, "send without channel");
        PNP_CHECK(!s.fields.empty(), "send without fields");
        check_chan_arity(s.chan, s.fields.size());
        break;
      case StmtKind::Recv:
        PNP_CHECK(s.chan != expr::kNoExpr, "recv without channel");
        PNP_CHECK(!s.args.empty(), "recv without pattern");
        check_chan_arity(s.chan, s.args.size());
        for (const RecvArg& a : s.args) {
          if (a.kind == RecvArgKind::Bind) check_lhs(a.lhs);
          if (a.kind == RecvArgKind::Match)
            PNP_CHECK(a.match != expr::kNoExpr, "match arg without expression");
        }
        break;
      case StmtKind::If:
      case StmtKind::Do: {
        PNP_CHECK(!s.branches.empty(), "selection with no branches");
        int n_else = 0;
        for (const Branch& b : s.branches) {
          PNP_CHECK(!b.body.empty(), "empty selection branch");
          if (b.is_else) ++n_else;
        }
        PNP_CHECK(n_else <= 1, "selection with multiple else branches");
        if (s.kind == StmtKind::Do) ++do_depth;
        for (const Branch& b : s.branches) visit(b.body);
        if (s.kind == StmtKind::Do) --do_depth;
        break;
      }
      case StmtKind::Break:
        PNP_CHECK(do_depth > 0, "break outside of do loop in " + proc->name);
        break;
      case StmtKind::Atomic:
        PNP_CHECK(!s.body.empty(), "empty atomic block");
        visit(s.body);
        break;
    }
  }
};

}  // namespace

void SystemSpec::validate() const {
  PNP_CHECK(!processes.empty(), "system has no processes");
  Validator v{*this};
  for (const ProcType& p : proctypes) {
    v.proc = &p;
    v.do_depth = 0;
    v.visit(p.body);
  }
  for (const ProcessInst& inst : processes) {
    PNP_CHECK(inst.proctype >= 0 &&
                  inst.proctype < static_cast<int>(proctypes.size()),
              "process instance with unknown proctype: " + inst.name);
  }
}

SystemSpec SystemSpec::snapshot() const {
  SystemSpec out;
  out.exprs = exprs;
  out.globals = globals;
  out.channels = channels;
  out.proctypes.reserve(proctypes.size());
  for (const ProcType& pt : proctypes) {
    ProcType c;
    c.name = pt.name;
    c.params = pt.params;
    c.locals = pt.locals;
    c.body = clone(pt.body);
    out.proctypes.push_back(std::move(c));
  }
  out.processes = processes;
  out.mtypes = mtypes;
  return out;
}

}  // namespace pnp::model
