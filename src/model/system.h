// System specification: global declarations, channels, process types, and
// process instances -- the unit handed to the compiler and kernel.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/ir.h"

namespace pnp::model {

struct VarDecl {
  std::string name;
  Value init{0};
};

struct ChannelDecl {
  std::string name;
  int capacity{0};  // 0 = rendezvous
  int arity{1};     // fields per message
  bool lossy{false};  // if true, a send to a full channel succeeds and the
                      // message is silently dropped (the paper's "third kind
                      // of channel" in section 3.3)
};

struct ProcType {
  std::string name;
  std::vector<VarDecl> params;  // bound from spawn arguments
  std::vector<VarDecl> locals;
  Seq body;

  int frame_size() const {
    return static_cast<int>(params.size() + locals.size());
  }
};

struct ProcessInst {
  std::string name;       // instance name (e.g. "BlueCar0"), used in traces
  int proctype{-1};       // index into SystemSpec::proctypes
  std::vector<Value> args;
};

class SystemSpec {
 public:
  expr::Pool exprs;

  std::vector<VarDecl> globals;
  std::vector<ChannelDecl> channels;
  std::vector<ProcType> proctypes;
  std::vector<ProcessInst> processes;

  /// Symbolic message-tag names (Promela mtype). Values start at 1 so that
  /// 0 stays distinguishable as "no tag".
  std::vector<std::string> mtypes;

  // -- declaration helpers --------------------------------------------------
  int add_global(std::string name, Value init = 0);
  int add_channel(std::string name, int capacity, int arity, bool lossy = false);
  Value add_mtype(std::string name);
  int add_proctype(ProcType p);
  int spawn(std::string name, int proctype, std::vector<Value> args);

  // -- lookups ---------------------------------------------------------------
  std::optional<int> find_global(const std::string& name) const;
  std::optional<int> find_channel(const std::string& name) const;
  std::optional<int> find_proctype(const std::string& name) const;
  std::string mtype_name(Value v) const;

  /// Validates arities, slot ranges, and spawn argument counts; raises
  /// ModelError on the first problem found.
  void validate() const;

  /// Deep copy. Proctype bodies are move-only statement trees, so the
  /// implicit copy constructor is deleted; this clones them explicitly.
  /// Expression Refs are pool indices and stay valid in the copy.
  SystemSpec snapshot() const;
};

}  // namespace pnp::model
