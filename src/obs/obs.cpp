#include "obs/obs.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/json.h"
#include "support/panic.h"
#include "support/string_util.h"

#if defined(_WIN32)
#include <io.h>
#define PNP_ISATTY _isatty
#define PNP_FILENO _fileno
#else
#include <fcntl.h>
#include <unistd.h>
#define PNP_ISATTY isatty
#define PNP_FILENO fileno
#endif

namespace pnp::obs {

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::StatesStored: return "states_stored";
    case Counter::StatesMatched: return "states_matched";
    case Counter::Transitions: return "transitions";
    case Counter::PorAmpleSets: return "por_ample_sets";
    case Counter::CompressFull: return "compress_full";
    case Counter::CompressDelta: return "compress_delta";
    case Counter::CacheHits: return "cache_hits";
    case Counter::CacheMisses: return "cache_misses";
    case Counter::ObligationsVerified: return "obligations_verified";
    case Counter::ObligationsFromCache: return "obligations_from_cache";
    case Counter::CodegenCompiles: return "codegen_compiles";
    case Counter::CodegenCacheHits: return "codegen_cache_hits";
    case Counter::CodegenFallbacks: return "codegen_fallbacks";
    case Counter::kCount: break;
  }
  return "?";
}

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::StoreBytes: return "store_bytes";
    case Gauge::FrontierBytes: return "frontier_bytes";
    case Gauge::InternedComponents: return "interned_components";
    case Gauge::CompressorBytes: return "compressor_bytes";
    case Gauge::MaxDepthReached: return "max_depth";
    case Gauge::MinimizeStatesBefore: return "minimize_states_before";
    case Gauge::MinimizeStatesAfter: return "minimize_states_after";
    case Gauge::kCount: break;
  }
  return "?";
}

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::RunStarted: return "run_started";
    case EventKind::PhaseStarted: return "phase_started";
    case EventKind::Progress: return "progress";
    case EventKind::BudgetWarning: return "budget_warning";
    case EventKind::Truncated: return "truncated";
    case EventKind::CounterexampleFound: return "counterexample_found";
    case EventKind::ObligationFinished: return "obligation_finished";
    case EventKind::PhaseFinished: return "phase_finished";
    case EventKind::RunFinished: return "run_finished";
    case EventKind::Checkpointed: return "checkpointed";
    case EventKind::Resumed: return "resumed";
  }
  return "?";
}

// -- Recorder -----------------------------------------------------------------

CounterBlock* Recorder::open_block() {
  std::lock_guard<std::mutex> lock(mu_);
  blocks_.push_back(std::make_unique<CounterBlock>());
  return blocks_.back().get();
}

std::uint64_t Recorder::total(Counter c) const {
  std::uint64_t sum = base_.get(c);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : blocks_) sum += b->get(c);
  return sum;
}

void Recorder::max_gauge(Gauge g, std::uint64_t v) {
  auto& cell = gauges_[static_cast<std::size_t>(g)];
  std::uint64_t cur = cell.load(std::memory_order_relaxed);
  while (v > cur &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::size_t Recorder::phase_begin(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseRec rec;
  rec.timing.name = name;
  rec.start = std::chrono::steady_clock::now();
  phases_.push_back(std::move(rec));
  return phases_.size() - 1;
}

void Recorder::phase_end(std::size_t token, std::uint64_t states,
                         const std::string& truncation) {
  auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  if (token >= phases_.size() || !phases_[token].open) return;
  PhaseRec& rec = phases_[token];
  rec.open = false;
  rec.timing.seconds =
      std::chrono::duration<double>(now - rec.start).count();
  rec.timing.states = states;
  rec.timing.truncation = truncation;
}

std::vector<Recorder::PhaseTiming> Recorder::phases() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PhaseTiming> out;
  out.reserve(phases_.size());
  for (const auto& rec : phases_) out.push_back(rec.timing);
  return out;
}

std::uint64_t Recorder::approx_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t bytes = sizeof(Recorder);
  bytes += blocks_.size() * (sizeof(CounterBlock) + sizeof(void*));
  bytes += phases_.capacity() * sizeof(PhaseRec);
  for (const auto& rec : phases_) bytes += rec.timing.name.capacity();
  return bytes;
}

// -- Observer -----------------------------------------------------------------

void Observer::add_sink(std::shared_ptr<EventSink> sink) {
  if (!sink) return;
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(std::move(sink));
}

void Observer::emit(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sinks_) s->on_event(e);
}

void Observer::set_heartbeat_interval(double seconds) {
  if (seconds <= 0.0) seconds = 1.0;
  interval_ns_.store(static_cast<std::int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
}

std::size_t Observer::begin_phase(const std::string& name,
                                  std::uint64_t target) {
  std::size_t token = rec_.phase_begin(name);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_phase_ = name;
    phase_start_ = std::chrono::steady_clock::now();
  }
  Event e;
  e.kind = EventKind::PhaseStarted;
  e.label = name;
  e.target = target;
  emit(e);
  return token;
}

void Observer::end_phase(std::size_t token, std::uint64_t states,
                         double seconds, const std::string& truncation) {
  rec_.phase_end(token, states, truncation);
  Event e;
  e.kind = EventKind::PhaseFinished;
  e.states = states;
  e.seconds = seconds;
  e.detail = truncation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.label = current_phase_;
  }
  // Prefer the recorder's own measured wall time when the caller has none.
  if (e.seconds <= 0.0) {
    for (const auto& p : rec_.phases())
      if (p.name == e.label) e.seconds = p.seconds;
  }
  emit(e);
}

void Observer::progress(std::uint64_t states, std::uint64_t target) {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  std::int64_t next = next_progress_ns_.load(std::memory_order_relaxed);
  if (now_ns < next) return;
  // One winner per interval; losers (and stale racers) return immediately.
  if (!next_progress_ns_.compare_exchange_strong(
          next, now_ns + interval_ns_.load(std::memory_order_relaxed),
          std::memory_order_relaxed))
    return;
  Event e;
  e.kind = EventKind::Progress;
  e.states = states;
  e.target = target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.label = current_phase_;
    e.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      phase_start_)
            .count();
  }
  if (e.seconds > 1e-3) e.rate = static_cast<double>(states) / e.seconds;
  emit(e);
}

void Observer::budget_warning(const std::string& which, std::uint64_t used,
                              std::uint64_t cap) {
  Event e;
  e.kind = EventKind::BudgetWarning;
  e.detail = which;
  e.states = used;
  e.target = cap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.label = current_phase_;
  }
  emit(e);
}

void Observer::truncated(const std::string& reason) {
  Event e;
  e.kind = EventKind::Truncated;
  e.detail = reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    e.label = current_phase_;
  }
  emit(e);
}

void Observer::checkpointed(const std::string& path, std::uint64_t states,
                            std::uint64_t seq) {
  Event e;
  e.kind = EventKind::Checkpointed;
  e.label = path;
  e.states = states;
  e.target = seq;
  emit(e);
}

void Observer::resumed(const std::string& path, std::uint64_t states) {
  Event e;
  e.kind = EventKind::Resumed;
  e.label = path;
  e.states = states;
  emit(e);
}

void Observer::counterexample(const std::string& property,
                              const std::string& kind) {
  Event e;
  e.kind = EventKind::CounterexampleFound;
  e.label = property;
  e.detail = kind;
  e.passed = false;
  emit(e);
}

void Observer::run_started(
    const std::string& subject, const std::string& digest,
    std::vector<std::pair<std::string, std::string>> attrs) {
  run_start_ = std::chrono::steady_clock::now();
  Event e;
  e.kind = EventKind::RunStarted;
  e.label = subject;
  e.detail = digest;
  e.attrs = std::move(attrs);
  emit(e);
}

void Observer::run_finished(
    bool passed, double seconds,
    std::vector<std::pair<std::string, std::string>> attrs) {
  Event e;
  e.kind = EventKind::RunFinished;
  e.passed = passed;
  e.seconds = seconds;
  if (e.seconds <= 0.0)
    e.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - run_start_)
                    .count();
  e.states = rec_.total(Counter::StatesStored);
  e.attrs = std::move(attrs);
  char buf[32];
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    auto c = static_cast<Counter>(i);
    std::uint64_t v = rec_.total(c);
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    e.attrs.emplace_back(std::string("counter.") + counter_name(c), buf);
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    auto g = static_cast<Gauge>(i);
    std::uint64_t v = rec_.gauge(g);
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    e.attrs.emplace_back(std::string("gauge.") + gauge_name(g), buf);
  }
  emit(e);
}

std::uint64_t Observer::approx_bytes() const {
  return rec_.approx_bytes() + sizeof(Observer);
}

// -- HeartbeatSink ------------------------------------------------------------

HeartbeatSink::HeartbeatSink(std::FILE* out, bool force)
    : out_(out),
      active_(force || (out && PNP_ISATTY(PNP_FILENO(out)) != 0)) {}

void HeartbeatSink::clear_line() {
  if (line_pending_) {
    std::fputs("\r\033[K", out_);
    line_pending_ = false;
  }
}

void HeartbeatSink::on_event(const Event& e) {
  if (!active_) return;
  switch (e.kind) {
    case EventKind::Progress: {
      char line[256];
      int n = std::snprintf(line, sizeof(line), "\r[%s] %" PRIu64 " states",
                            e.label.empty() ? "run" : e.label.c_str(),
                            e.states);
      if (e.rate > 0.0 && n > 0 && n < static_cast<int>(sizeof(line)))
        n += std::snprintf(line + n, sizeof(line) - n, "  %.0f st/s", e.rate);
      if (e.target > 0 && e.rate > 0.0 && e.states < e.target && n > 0 &&
          n < static_cast<int>(sizeof(line))) {
        double pct = 100.0 * static_cast<double>(e.states) /
                     static_cast<double>(e.target);
        double eta = static_cast<double>(e.target - e.states) / e.rate;
        n += std::snprintf(line + n, sizeof(line) - n,
                           "  %.1f%% of bound  eta %.0fs", pct, eta);
      }
      if (n > 0) {
        std::fputs(line, out_);
        std::fputs("\033[K", out_);
        std::fflush(out_);
        line_pending_ = true;
      }
      break;
    }
    case EventKind::PhaseStarted:
      clear_line();
      break;
    case EventKind::BudgetWarning:
      clear_line();
      std::fprintf(out_,
                   "[obs] %s budget at %.0f%% (%" PRIu64 " of %" PRIu64 ")\n",
                   e.detail.c_str(),
                   e.target > 0 ? 100.0 * static_cast<double>(e.states) /
                                      static_cast<double>(e.target)
                                : 0.0,
                   e.states, e.target);
      break;
    case EventKind::Truncated:
      clear_line();
      std::fprintf(out_, "[obs] truncated: %s\n", e.detail.c_str());
      break;
    case EventKind::CounterexampleFound:
      clear_line();
      std::fprintf(out_, "[obs] counterexample: %s (%s)\n", e.label.c_str(),
                   e.detail.c_str());
      break;
    case EventKind::PhaseFinished:
      clear_line();
      break;
    case EventKind::RunFinished:
      clear_line();
      std::fflush(out_);
      break;
    default:
      break;
  }
}

// -- LedgerSink ---------------------------------------------------------------

namespace {

// Record serialization goes through the shared JSON writers (support/json.h)
// so ledger lines and the pnpd event stream stay byte-compatible.
using json::append_string;

const std::string* find_attr(const Event& e, const char* key) {
  for (const auto& kv : e.attrs)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

/// Appends one record to the ledger in a single write() call (O_APPEND, so
/// concurrent writers interleave at record granularity, not byte
/// granularity) and fsyncs when the record carries incident evidence --
/// losing a routine pass record to a crash is acceptable, losing the record
/// that explains a failure is not.
void append_record_durably(const std::string& path, const std::string& rec,
                           bool sync) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
  if (fd < 0) raise_model_error("--ledger: cannot open '" + path + "'");
  std::size_t done = 0;
  while (done < rec.size()) {
    const ssize_t n = ::write(fd, rec.data() + done, rec.size() - done);
    if (n < 0) {
      ::close(fd);
      raise_model_error("--ledger: write failed for '" + path + "'");
    }
    done += static_cast<std::size_t>(n);
  }
  if (sync) ::fsync(fd);
  ::close(fd);
#else
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) raise_model_error("--ledger: cannot open '" + path + "'");
  out << rec;
  (void)sync;
#endif
}

}  // namespace

LedgerSink::LedgerSink(const std::string& dir, bool recover_torn)
    : dir_(dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    raise_model_error("--ledger: cannot create directory '" + dir_ +
                      "': " + ec.message());
  path_ = (std::filesystem::path(dir_) / "ledger.jsonl").string();
  if (recover_torn) recover_torn_tail();
}

/// Crash recovery on reopen: a process killed mid-append can leave a torn
/// final line (no trailing newline). Truncate the file back to its last
/// complete record so every surviving line stays valid JSONL, and flag the
/// repair for front-ends via recovered_torn_line().
void LedgerSink::recover_torn_tail() {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec || size == 0) return;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  if (bytes.empty() || bytes.back() == '\n') return;
  const std::size_t last_nl = bytes.find_last_of('\n');
  const std::uintmax_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
  std::filesystem::resize_file(path_, keep, ec);
  if (!ec) recovered_torn_ = true;
}

void LedgerSink::on_event(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (e.kind) {
    case EventKind::RunStarted:
      subject_ = e.label;
      config_ = e.detail;
      phases_.clear();
      obligations_.clear();
      incidents_.clear();
      break;
    case EventKind::PhaseFinished:
      phases_.push_back(e);
      break;
    case EventKind::ObligationFinished:
      obligations_.push_back(e);
      break;
    case EventKind::BudgetWarning:
    case EventKind::Truncated:
    case EventKind::CounterexampleFound:
    case EventKind::Checkpointed:
    case EventKind::Resumed:
      incidents_.push_back(e);
      break;
    case EventKind::RunFinished:
      write_record(e);
      break;
    default:
      break;
  }
}

void LedgerSink::write_record(const Event& finish) {
  std::string rec;
  rec.reserve(1024);
  rec += "{\"schema\":\"";
  rec += kSchema;
  rec += "\",\"subject\":";
  append_string(rec, subject_);
  rec += ",\"config\":";
  append_string(rec, config_);
  rec += ",\"verdict\":";
  rec += finish.passed ? "\"pass\"" : "\"fail\"";
  rec += ",\"seconds\":";
  json::append_double(rec, finish.seconds);
  rec += ",\"states\":";
  json::append_u64(rec, finish.states);

  rec += ",\"phases\":[";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const Event& p = phases_[i];
    if (i) rec += ',';
    rec += "{\"name\":";
    append_string(rec, p.label);
    rec += ",\"seconds\":";
    json::append_double(rec, p.seconds);
    rec += ",\"states\":";
    json::append_u64(rec, p.states);
    if (!p.detail.empty()) {
      rec += ",\"truncated\":";
      append_string(rec, p.detail);
    }
    rec += '}';
  }
  rec += ']';

  rec += ",\"checks\":[";
  for (std::size_t i = 0; i < obligations_.size(); ++i) {
    const Event& o = obligations_[i];
    if (i) rec += ',';
    rec += "{\"kind\":";
    const std::string* kind = find_attr(o, "kind");
    append_string(rec, kind ? *kind : "obligation");
    rec += ",\"label\":";
    append_string(rec, o.label);
    rec += ",\"passed\":";
    rec += o.passed ? "true" : "false";
    rec += ",\"seconds\":";
    json::append_double(rec, o.seconds);
    if (const std::string* stage = find_attr(o, "stage")) {
      rec += ",\"stage\":";
      append_string(rec, *stage);
    }
    if (const std::string* cache = find_attr(o, "cache")) {
      rec += ",\"cache\":";
      append_string(rec, *cache);
    }
    rec += '}';
  }
  rec += ']';

  rec += ",\"incidents\":[";
  for (std::size_t i = 0; i < incidents_.size(); ++i) {
    const Event& inc = incidents_[i];
    if (i) rec += ',';
    rec += "{\"kind\":";
    append_string(rec, event_kind_name(inc.kind));
    rec += ",\"detail\":";
    append_string(rec, inc.detail.empty() ? inc.label : inc.detail);
    rec += '}';
  }
  rec += ']';

  rec += ",\"counters\":{";
  bool first = true;
  for (const auto& kv : finish.attrs) {
    if (kv.first.rfind("counter.", 0) != 0) continue;
    if (!first) rec += ',';
    first = false;
    append_string(rec, kv.first.substr(8));
    rec += ':';
    rec += kv.second;  // decimal digits by construction (run_finished)
  }
  rec += '}';

  rec += ",\"gauges\":{";
  first = true;
  for (const auto& kv : finish.attrs) {
    if (kv.first.rfind("gauge.", 0) != 0) continue;
    if (!first) rec += ',';
    first = false;
    append_string(rec, kv.first.substr(6));
    rec += ':';
    rec += kv.second;
  }
  rec += '}';

  if (const std::string* mode = find_attr(finish, "mode")) {
    rec += ",\"mode\":";
    append_string(rec, *mode);
  }
  // Resolved successor engine: requested vs. actual backend plus the
  // fallback reason when they differ (e.g. aot degrading to bytecode on a
  // toolchain-less host). Informational -- engines cannot change verdicts.
  if (const std::string* ereq = find_attr(finish, "engine.requested")) {
    rec += ",\"engine\":{\"requested\":";
    append_string(rec, *ereq);
    const std::string* eact = find_attr(finish, "engine.actual");
    rec += ",\"actual\":";
    append_string(rec, eact != nullptr ? *eact : *ereq);
    if (const std::string* enote = find_attr(finish, "engine.note")) {
      rec += ",\"note\":";
      append_string(rec, *enote);
    }
    rec += '}';
  }
  // Cooperative-stop stamp: lets ledger consumers tell "stopped on
  // purpose, partial verdict" from a run that ran to its natural end.
  if (find_attr(finish, "interrupted") != nullptr)
    rec += ",\"interrupted\":true";
  if (const std::string* trail = find_attr(finish, "trail")) {
    rec += ",\"trail\":";
    append_string(rec, *trail);
  }
  rec += "}\n";

  // Incident-bearing or failing records are fsynced: they are exactly the
  // lines a post-crash investigation needs to still be on disk.
  append_record_durably(path_, rec, !incidents_.empty() || !finish.passed);
}

// -- JsonlStreamSink ----------------------------------------------------------

std::string JsonlStreamSink::render(const Event& e) {
  std::string line;
  line.reserve(160);
  line += "{\"kind\":\"";
  line += event_kind_name(e.kind);
  line += '"';
  if (!e.label.empty()) {
    line += ",\"label\":";
    append_string(line, e.label);
  }
  if (!e.detail.empty()) {
    line += ",\"detail\":";
    append_string(line, e.detail);
  }
  if (e.states != 0) {
    line += ",\"states\":";
    json::append_u64(line, e.states);
  }
  if (e.target != 0) {
    line += ",\"target\":";
    json::append_u64(line, e.target);
  }
  if (e.seconds != 0.0) {
    line += ",\"seconds\":";
    json::append_double(line, e.seconds);
  }
  if (e.rate != 0.0) {
    line += ",\"rate\":";
    json::append_double(line, e.rate);
  }
  // `passed` only means anything on the events that carry a verdict.
  if (e.kind == EventKind::ObligationFinished ||
      e.kind == EventKind::RunFinished)
    line += e.passed ? ",\"passed\":true" : ",\"passed\":false";
  // Structured extras verbatim, except the counter/gauge dump RunFinished
  // carries -- that firehose belongs in the ledger record, not on the wire.
  bool attrs_open = false;
  for (const auto& kv : e.attrs) {
    if (starts_with(kv.first, "counter.") || starts_with(kv.first, "gauge."))
      continue;
    line += attrs_open ? "," : ",\"attrs\":{";
    attrs_open = true;
    append_string(line, kv.first);
    line += ':';
    append_string(line, kv.second);
  }
  if (attrs_open) line += '}';
  line += '}';
  return line;
}

void JsonlStreamSink::on_event(const Event& e) {
  if (emit_) emit_(render(e));
}

// -- schema validator ----------------------------------------------------------
//
// Parses one ledger line with the shared JSON reader (support/json.h) and
// checks the pnp.run.v1 shape. Kept here (not in tests) so external tooling
// gets the same contract.

namespace {

bool require(bool cond, const std::string& what, std::string* err) {
  if (!cond && err && err->empty()) *err = what;
  return cond;
}

}  // namespace

bool validate_ledger_record(const std::string& line, std::string* err) {
  std::string scratch;
  if (!err) err = &scratch;
  err->clear();

  json::Value root;
  if (!json::parse(line, root, err)) return false;
  using T = json::Value::Type;
  if (!require(root.type == T::Object, "record is not an object", err))
    return false;

  auto str_field = [&](const char* key) -> const json::Value* {
    const json::Value* v = root.get(key);
    if (!require(v != nullptr, std::string("missing '") + key + "'", err))
      return nullptr;
    if (!require(v->type == T::String, std::string("'") + key +
                                           "' is not a string", err))
      return nullptr;
    return v;
  };
  const json::Value* schema = str_field("schema");
  if (!schema) return false;
  if (!require(schema->str == LedgerSink::kSchema,
               "unknown schema '" + schema->str + "'", err))
    return false;
  if (!str_field("subject")) return false;
  if (!str_field("config")) return false;
  const json::Value* verdict = str_field("verdict");
  if (!verdict) return false;
  if (!require(verdict->str == "pass" || verdict->str == "fail",
               "verdict must be 'pass' or 'fail'", err))
    return false;

  auto num_field = [&](const json::Value& o, const char* key,
                       const char* where) {
    const json::Value* v = o.get(key);
    return require(v && v->type == T::Number,
                   std::string(where) + " missing number '" + key + "'", err);
  };
  if (!num_field(root, "seconds", "record")) return false;
  if (!num_field(root, "states", "record")) return false;

  const json::Value* phases = root.get("phases");
  if (!require(phases && phases->type == T::Array,
               "missing 'phases' array", err))
    return false;
  for (const json::Value& p : phases->arr) {
    if (!require(p.type == T::Object, "phase is not an object", err))
      return false;
    const json::Value* name = p.get("name");
    if (!require(name && name->type == T::String,
                 "phase missing string 'name'", err))
      return false;
    if (!num_field(p, "seconds", "phase")) return false;
    if (!num_field(p, "states", "phase")) return false;
  }

  const json::Value* checks = root.get("checks");
  if (!require(checks && checks->type == T::Array,
               "missing 'checks' array", err))
    return false;
  for (const json::Value& c : checks->arr) {
    if (!require(c.type == T::Object, "check is not an object", err))
      return false;
    const json::Value* kind = c.get("kind");
    if (!require(kind && kind->type == T::String,
                 "check missing string 'kind'", err))
      return false;
    const json::Value* label = c.get("label");
    if (!require(label && label->type == T::String,
                 "check missing string 'label'", err))
      return false;
    const json::Value* passed = c.get("passed");
    if (!require(passed && passed->type == T::Bool,
                 "check missing bool 'passed'", err))
      return false;
  }

  const json::Value* counters = root.get("counters");
  if (!require(counters && counters->type == T::Object,
               "missing 'counters' object", err))
    return false;
  for (const auto& kv : counters->obj)
    if (!require(kv.second.type == T::Number,
                 "counter '" + kv.first + "' is not a number", err))
      return false;

  const json::Value* gauges = root.get("gauges");
  if (gauges) {
    if (!require(gauges->type == T::Object, "'gauges' is not an object", err))
      return false;
    for (const auto& kv : gauges->obj)
      if (!require(kv.second.type == T::Number,
                   "gauge '" + kv.first + "' is not a number", err))
        return false;
  }
  const json::Value* trail = root.get("trail");
  if (trail &&
      !require(trail->type == T::String, "'trail' is not a string", err))
    return false;
  const json::Value* engine = root.get("engine");
  if (engine) {
    if (!require(engine->type == T::Object, "'engine' is not an object", err))
      return false;
    const json::Value* req = engine->get("requested");
    if (!require(req && req->type == T::String,
                 "engine missing string 'requested'", err))
      return false;
    const json::Value* act = engine->get("actual");
    if (!require(act && act->type == T::String,
                 "engine missing string 'actual'", err))
      return false;
    const json::Value* note = engine->get("note");
    if (note && !require(note->type == T::String,
                         "'engine.note' is not a string", err))
      return false;
  }
  return true;
}

}  // namespace pnp::obs
