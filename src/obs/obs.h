// Verification observability: low-overhead counters/timers plus structured
// lifecycle events, threaded through the whole verification stack
// (explore, kernel::compress, reduce, pnp::verifier) and surfaced by the
// pnp::Session facade.
//
// Two independent mechanisms, one handle (Observer):
//
//  * Recorder -- quantitative telemetry. Hot loops open a per-thread
//    CounterBlock (cache-line aligned, written with relaxed atomics by its
//    one owner, merged on read) and publish their local tallies every few
//    hundred expansions, so the instrumented fast path costs one branch and
//    an amortized handful of relaxed stores. Gauges (absolute values:
//    store bytes, intern-table sizes) and named phase timers (ladder rungs,
//    minimize, LTL product search) live on the Recorder directly -- they
//    are cold-path only.
//
//  * EventSink -- qualitative lifecycle events (run started, phase entered,
//    progress heartbeat, budget warning at 80%, truncation, counterexample
//    found, run finished). Observer fans each event out to every attached
//    sink under a mutex; events are rare (phase boundaries plus one
//    rate-limited progress event per heartbeat interval), so the lock never
//    sees contention that matters.
//
// Shipped sinks:
//  * HeartbeatSink -- a one-line TTY progress ticker (rate + ETA vs
//    max_states), automatically suppressed when the stream is not a
//    terminal so piped/CI output stays clean.
//  * LedgerSink -- appends one JSONL record per run (schema "pnp.run.v1":
//    config digest, per-phase metrics, merged counters, verdict, trail
//    pointer) so scripts/bench.sh and CI can diff runs instead of
//    re-parsing stdout. The record format is validated by
//    validate_ledger_record(), which tests/test_obs.cpp pins.
//
// A null Observer pointer disables everything at zero cost; the acceptance
// bar (enforced by scripts/bench.sh) is <= 3% throughput overhead with the
// Recorder attached on the fig13 full-space benchmark.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pnp::obs {

// -- counters (monotonic tallies, summed across blocks on read) ---------------

enum class Counter : std::uint8_t {
  StatesStored,    // fresh states inserted into a visited store
  StatesMatched,   // successors that were already visited
  Transitions,     // successor edges generated
  PorAmpleSets,    // states expanded through a POR ample set (not fully)
  CompressFull,    // COLLAPSE full re-interns (root states / fallback)
  CompressDelta,   // COLLAPSE delta re-interns (dirty regions only)
  CacheHits,       // verification-cache verdicts answered from disk
  CacheMisses,     // verification-cache lookups that had to recompute
  ObligationsVerified,   // obligations model-checked this run
  ObligationsFromCache,  // obligations answered by the verdict cache
  CodegenCompiles,       // AOT modules compiled from emitted source
  CodegenCacheHits,      // AOT modules loaded from the artifact cache
  CodegenFallbacks,      // aot requests that degraded to bytecode
  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

const char* counter_name(Counter c);

// -- gauges (absolute values, set by the owning stage) ------------------------

enum class Gauge : std::uint8_t {
  StoreBytes,            // visited store footprint (tables + arenas)
  FrontierBytes,         // search frontier footprint estimate
  InternedComponents,    // distinct COLLAPSE components across all regions
  CompressorBytes,       // intern-table footprint
  MaxDepthReached,       // deepest DFS frame seen (monotonic max)
  MinimizeStatesBefore,  // control locations before bisimulation quotient
  MinimizeStatesAfter,   // control locations after
  kCount
};

inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

const char* gauge_name(Gauge g);

/// One thread's slice of the merged counter totals. Exactly one thread
/// writes a block (relaxed stores/adds); any thread may read concurrently.
/// Engines publish their local tallies as absolute values with set() every
/// few hundred expansions, so a block converges to that engine run's final
/// numbers and Recorder::total() sums runs/workers.
struct alignas(64) CounterBlock {
  std::array<std::atomic<std::uint64_t>, kCounterCount> v{};

  void add(Counter c, std::uint64_t n) {
    v[static_cast<std::size_t>(c)].fetch_add(n, std::memory_order_relaxed);
  }
  void set(Counter c, std::uint64_t n) {
    v[static_cast<std::size_t>(c)].store(n, std::memory_order_relaxed);
  }
  std::uint64_t get(Counter c) const {
    return v[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
};

/// Merged-on-read telemetry store. Block allocation and phase bookkeeping
/// take a mutex (cold path); everything a hot loop touches is lock-free.
class Recorder {
 public:
  struct PhaseTiming {
    std::string name;
    double seconds{0.0};
    std::uint64_t states{0};
    std::string truncation;  // empty = ran to completion
  };

  Recorder() = default;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Allocates a fresh per-thread block; the pointer stays valid for the
  /// recorder's lifetime. Thread-safe.
  CounterBlock* open_block();

  /// Convenience for cold-path increments (verifier, cache bookkeeping):
  /// adds onto the recorder's own base block.
  void add(Counter c, std::uint64_t n) { base_.add(c, n); }

  /// Sum of `c` across the base block and every opened block.
  std::uint64_t total(Counter c) const;

  void set_gauge(Gauge g, std::uint64_t v) {
    gauges_[static_cast<std::size_t>(g)].store(v, std::memory_order_relaxed);
  }
  /// Monotonic-max gauge update (e.g. deepest stack seen by any worker).
  void max_gauge(Gauge g, std::uint64_t v);
  std::uint64_t gauge(Gauge g) const {
    return gauges_[static_cast<std::size_t>(g)].load(
        std::memory_order_relaxed);
  }

  /// Opens a named phase timer and returns its token. Phases may overlap
  /// (parallel resilience variants), so the ledger keeps a flat list.
  std::size_t phase_begin(const std::string& name);
  void phase_end(std::size_t token, std::uint64_t states,
                 const std::string& truncation = {});
  std::vector<PhaseTiming> phases() const;

  /// Memory the recorder itself holds (counter blocks + phase list) --
  /// included in the explorers' memory-budget accounting so an instrumented
  /// run cannot silently exceed its budget through its own telemetry.
  std::uint64_t approx_bytes() const;

 private:
  struct PhaseRec {
    PhaseTiming timing;
    std::chrono::steady_clock::time_point start;
    bool open{true};
  };

  CounterBlock base_;
  std::array<std::atomic<std::uint64_t>, kGaugeCount> gauges_{};
  mutable std::mutex mu_;  // guards blocks_ growth and phases_
  std::vector<std::unique_ptr<CounterBlock>> blocks_;
  std::vector<PhaseRec> phases_;
};

// -- lifecycle events ----------------------------------------------------------

enum class EventKind : std::uint8_t {
  RunStarted,           // label=subject, detail=config digest (hex)
  PhaseStarted,         // label=phase name, target=max_states bound
  Progress,             // rate-limited heartbeat: states, rate, target
  BudgetWarning,        // detail=which budget, states/target=consumed/cap
  Truncated,            // detail=truncation reason
  CounterexampleFound,  // label=property, detail=violation kind
  ObligationFinished,   // label=obligation, passed, attrs[kind/stage/cache]
  PhaseFinished,        // label=phase name, states, seconds, detail=truncation
  RunFinished,          // passed=verdict, attrs carry counters/gauges/trail
  Checkpointed,         // label=checkpoint path, states, target=sequence no.
  Resumed,              // label=checkpoint path, states restored from it
};

const char* event_kind_name(EventKind k);

struct Event {
  EventKind kind{};
  std::string label;
  std::string detail;
  std::uint64_t states{0};
  std::uint64_t target{0};  // max_states / budget cap (0 = unbounded)
  double seconds{0.0};
  double rate{0.0};  // states per second (Progress)
  bool passed{true};
  /// Structured extras; LedgerSink folds "counter.*" / "gauge.*" keys into
  /// the record's counters/gauges objects and known keys (mode, config,
  /// trail) into top-level fields.
  std::vector<std::pair<std::string, std::string>> attrs;
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& e) = 0;
};

// -- the handle engines carry --------------------------------------------------

/// One verification run's observability context: a Recorder plus a fan-out
/// list of sinks. Engines receive a (possibly null) Observer* and publish
/// counters / emit events through it; pnp::Session owns one per session.
class Observer {
 public:
  Observer() : run_start_(std::chrono::steady_clock::now()) {}
  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  Recorder& recorder() { return rec_; }
  const Recorder& recorder() const { return rec_; }

  void add_sink(std::shared_ptr<EventSink> sink);
  /// Fans `e` out to every sink. Thread-safe; events are cold-path.
  void emit(const Event& e);

  /// Seconds between progress heartbeats (default 1.0).
  void set_heartbeat_interval(double seconds);

  /// Combined phase bookkeeping: recorder timer + PhaseStarted event.
  /// Returns the token to pass to end_phase().
  std::size_t begin_phase(const std::string& name, std::uint64_t target);
  void end_phase(std::size_t token, std::uint64_t states, double seconds,
                 const std::string& truncation = {});

  /// Rate-limited heartbeat from hot loops: returns immediately (one
  /// relaxed load) unless the heartbeat interval elapsed, in which case one
  /// winning caller emits a Progress event. Thread-safe.
  void progress(std::uint64_t states, std::uint64_t target);

  void budget_warning(const std::string& which, std::uint64_t used,
                      std::uint64_t cap);
  void truncated(const std::string& reason);
  /// Checkpoint `seq` committed at `path` with `states` stored states.
  void checkpointed(const std::string& path, std::uint64_t states,
                    std::uint64_t seq);
  /// Search seeded from the checkpoint at `path` (`states` restored).
  void resumed(const std::string& path, std::uint64_t states);
  void counterexample(const std::string& property, const std::string& kind);
  void run_started(const std::string& subject, const std::string& digest,
                   std::vector<std::pair<std::string, std::string>> attrs = {});
  /// Emits RunFinished with a snapshot of every nonzero counter/gauge
  /// appended to `attrs` as "counter.<name>" / "gauge.<name>" pairs.
  void run_finished(bool passed, double seconds,
                    std::vector<std::pair<std::string, std::string>> attrs = {});

  /// Recorder footprint + sink list; see Recorder::approx_bytes().
  std::uint64_t approx_bytes() const;

 private:
  Recorder rec_;
  std::mutex mu_;  // sinks_, phase label
  std::vector<std::shared_ptr<EventSink>> sinks_;
  std::string current_phase_;  // last-begun phase, for progress labeling
  std::chrono::steady_clock::time_point run_start_;
  std::chrono::steady_clock::time_point phase_start_;
  std::atomic<std::int64_t> next_progress_ns_{0};
  std::atomic<std::int64_t> interval_ns_{1'000'000'000};
};

// -- shipped sinks -------------------------------------------------------------

/// Periodic one-line status on a terminal: phase, states, rate, percent of
/// the max_states bound and the ETA to it. Suppressed (active() == false)
/// when `out` is not a TTY unless `force` is set, so redirected output and
/// CI logs never see control characters.
class HeartbeatSink : public EventSink {
 public:
  explicit HeartbeatSink(std::FILE* out = stderr, bool force = false);

  bool active() const { return active_; }
  void on_event(const Event& e) override;

 private:
  void clear_line();

  std::FILE* out_;
  bool active_;
  bool line_pending_ = false;  // a \r status line is on screen
};

/// JSONL run ledger: one record per run appended to <dir>/ledger.jsonl.
/// Crash-safe: each record is appended in a single O_APPEND write and
/// fsynced when it carries incidents or a failing verdict; on reopen a torn
/// final line (crash mid-append) is truncated back to the last complete
/// record and flagged via recovered_torn_line().
class LedgerSink : public EventSink {
 public:
  static constexpr const char* kSchema = "pnp.run.v1";

  /// Creates `dir` if needed; raises ModelError when it cannot be created.
  /// `recover_torn` runs the torn-tail repair described above; pass false
  /// for secondary sinks sharing a ledger file that other writers are
  /// appending to concurrently (pnpd workers: the daemon repairs the file
  /// once at startup, before any worker opens it, so a later truncation
  /// could only ever race a live in-flight append).
  explicit LedgerSink(const std::string& dir, bool recover_torn = true);

  const std::string& path() const { return path_; }
  const std::string& dir() const { return dir_; }

  /// True when the constructor found and repaired a torn final line left by
  /// a crash mid-append (the damaged partial record was truncated away).
  bool recovered_torn_line() const { return recovered_torn_; }

  void on_event(const Event& e) override;

 private:
  void write_record(const Event& finish);
  void recover_torn_tail();

  bool recovered_torn_ = false;
  std::string dir_;
  std::string path_;
  std::mutex mu_;
  // accumulated over the current run, reset at RunStarted
  std::string subject_;
  std::string config_;
  std::vector<Event> phases_;       // PhaseFinished events, in order
  std::vector<Event> obligations_;  // ObligationFinished events, in order
  std::vector<Event> incidents_;    // warnings / truncations / counterexamples
};

/// Serializes every event as one single-line JSON object and hands it to
/// `emit` (no trailing newline -- the consumer owns framing). This is the
/// wire format pnpd streams back to clients while a job runs: Progress
/// heartbeats, budget warnings, phase/obligation lifecycle, truncations and
/// checkpoints, each as {"kind":"progress","states":...,...}. The sink
/// itself is transport-agnostic, so tests can capture lines in a vector and
/// the server can prefix a job id and write to a socket.
///
/// `emit` is called under the Observer's fan-out lock, from whichever
/// thread produced the event -- keep it cheap and thread-safe.
class JsonlStreamSink : public EventSink {
 public:
  using EmitFn = std::function<void(const std::string& line)>;

  explicit JsonlStreamSink(EmitFn emit) : emit_(std::move(emit)) {}

  void on_event(const Event& e) override;

  /// The single-line JSON rendering on_event() emits, exposed for reuse by
  /// protocol code that needs to wrap it (pnpd adds job framing fields).
  static std::string render(const Event& e);

 private:
  EmitFn emit_;
};

/// Validates one ledger line against the documented "pnp.run.v1" schema:
/// well-formed JSON, required keys with the right JSON types (schema,
/// subject, config, verdict, seconds, states, phases[] with name/seconds/
/// states, checks[] with kind/label/passed, counters{}). Returns false and
/// fills `err` on the first violation. This is the contract
/// tests/test_obs.cpp and external tooling pin.
bool validate_ledger_record(const std::string& line, std::string* err);

}  // namespace pnp::obs
