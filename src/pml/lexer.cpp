#include "pml/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/panic.h"

namespace pnp::pml {

namespace {

const std::unordered_map<std::string, Tok>& keywords() {
  static const std::unordered_map<std::string, Tok> kw = {
      {"mtype", Tok::KwMtype},   {"chan", Tok::KwChan},
      {"of", Tok::KwOf},         {"int", Tok::KwInt},
      {"byte", Tok::KwByte},     {"bool", Tok::KwBool},
      {"bit", Tok::KwBit},       {"short", Tok::KwShort},
      {"proctype", Tok::KwProctype}, {"active", Tok::KwActive},
      {"init", Tok::KwInit},     {"run", Tok::KwRun},
      {"if", Tok::KwIf},         {"fi", Tok::KwFi},
      {"do", Tok::KwDo},         {"od", Tok::KwOd},
      {"else", Tok::KwElse},     {"break", Tok::KwBreak},
      {"skip", Tok::KwSkip},     {"goto", Tok::KwGoto},
      {"atomic", Tok::KwAtomic}, {"d_step", Tok::KwDStep},
      {"assert", Tok::KwAssert}, {"eval", Tok::KwEval},
      {"true", Tok::KwTrue},     {"false", Tok::KwFalse},
      {"len", Tok::KwLen},       {"full", Tok::KwFull},
      {"empty", Tok::KwEmpty},   {"nfull", Tok::KwNFull},
      {"nempty", Tok::KwNEmpty}, {"_pid", Tok::KwPid},
  };
  return kw;
}

}  // namespace

std::vector<Token> lex(const std::string& src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  int col = 1;
  const std::size_t n = src.size();

  auto advance = [&](std::size_t k) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i < n && src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto push = [&](Tok k, std::string text, long value = 0) {
    out.push_back({k, std::move(text), value, line, col});
  };
  auto err = [&](const std::string& what) {
    raise_model_error("PML lex error at " + std::to_string(line) + ":" +
                      std::to_string(col) + ": " + what);
  };
  auto peek2 = [&](char a, char b) {
    return i + 1 < n && src[i] == a && src[i + 1] == b;
  };

  while (i < n) {
    const char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (peek2('/', '/')) {
      while (i < n && src[i] != '\n') advance(1);
      continue;
    }
    if (peek2('/', '*')) {
      advance(2);
      while (i < n && !peek2('*', '/')) advance(1);
      if (i >= n) err("unterminated comment");
      advance(2);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      long v = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) {
        v = v * 10 + (src[j] - '0');
        ++j;
      }
      push(Tok::Number, src.substr(i, j - i), v);
      advance(j - i);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_'))
        ++j;
      const std::string word = src.substr(i, j - i);
      if (word == "_") {
        push(Tok::Underscore, word);
      } else {
        auto it = keywords().find(word);
        push(it != keywords().end() ? it->second : Tok::Ident, word);
      }
      advance(j - i);
      continue;
    }
    switch (c) {
      case '{': push(Tok::LBrace, "{"); advance(1); continue;
      case '}': push(Tok::RBrace, "}"); advance(1); continue;
      case '(': push(Tok::LParen, "("); advance(1); continue;
      case ')': push(Tok::RParen, ")"); advance(1); continue;
      case '[': push(Tok::LBracket, "["); advance(1); continue;
      case ']': push(Tok::RBracket, "]"); advance(1); continue;
      case ';': push(Tok::Semi, ";"); advance(1); continue;
      case ',': push(Tok::Comma, ","); advance(1); continue;
      case '+': push(Tok::Plus, "+"); advance(1); continue;
      case '*': push(Tok::Star, "*"); advance(1); continue;
      case '/': push(Tok::Slash, "/"); advance(1); continue;
      case '%': push(Tok::Percent, "%"); advance(1); continue;
      case ':':
        if (peek2(':', ':')) {
          push(Tok::DoubleColon, "::");
          advance(2);
        } else {
          push(Tok::Colon, ":");
          advance(1);
        }
        continue;
      case '-':
        if (peek2('-', '>')) {
          push(Tok::Arrow, "->");
          advance(2);
        } else {
          push(Tok::Minus, "-");
          advance(1);
        }
        continue;
      case '=':
        if (peek2('=', '=')) {
          push(Tok::EqEq, "==");
          advance(2);
        } else {
          push(Tok::Assign, "=");
          advance(1);
        }
        continue;
      case '!':
        if (peek2('!', '=')) {
          push(Tok::NotEq, "!=");
          advance(2);
        } else if (peek2('!', '!')) {
          push(Tok::DoubleBang, "!!");
          advance(2);
        } else {
          push(Tok::Bang, "!");
          advance(1);
        }
        continue;
      case '?':
        if (peek2('?', '?')) {
          push(Tok::DoubleQuery, "??");
          advance(2);
        } else if (peek2('?', '<')) {
          push(Tok::QueryLess, "?<");
          advance(2);
        } else {
          push(Tok::Query, "?");
          advance(1);
        }
        continue;
      case '<':
        if (peek2('<', '=')) {
          push(Tok::LessEq, "<=");
          advance(2);
        } else {
          push(Tok::Less, "<");
          advance(1);
        }
        continue;
      case '>':
        if (peek2('>', '=')) {
          push(Tok::GreaterEq, ">=");
          advance(2);
        } else {
          push(Tok::Greater, ">");
          advance(1);
        }
        continue;
      case '&':
        if (peek2('&', '&')) {
          push(Tok::AndAnd, "&&");
          advance(2);
          continue;
        }
        err("single '&' is not supported");
        continue;
      case '|':
        if (peek2('|', '|')) {
          push(Tok::OrOr, "||");
          advance(2);
          continue;
        }
        err("single '|' is not supported");
        continue;
      default:
        err(std::string("unexpected character '") + c + "'");
    }
  }
  push(Tok::End, "");
  return out;
}

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "end of input";
    case Tok::Ident: return "identifier";
    case Tok::Number: return "number";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Comma: return "','";
    case Tok::Colon: return "':'";
    case Tok::DoubleColon: return "'::'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "'='";
    case Tok::Bang: return "'!'";
    case Tok::DoubleBang: return "'!!'";
    case Tok::Query: return "'?'";
    case Tok::DoubleQuery: return "question-question";
    case Tok::QueryLess: return "'?<'";
    case Tok::Greater: return "'>'";
    case Tok::Underscore: return "'_'";
    default: return "token";
  }
}

}  // namespace pnp::pml
