// Tokenizer for the PML (Promela-subset) textual model language.
//
// The supported language is the subset the paper's models use: mtype
// declarations, global scalars and channels, (active) proctypes with
// parameters and local declarations, if/do selections with else branches,
// atomic blocks, assertions, all four channel-operation flavours
// (! !! ? ??, plus ?< > copy receives), eval() match arguments, end labels,
// and an init block of run statements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pnp::pml {

enum class Tok : std::uint8_t {
  End,
  Ident,
  Number,
  // punctuation
  LBrace, RBrace, LParen, RParen, LBracket, RBracket,
  Semi, Comma, Colon, DoubleColon, Arrow,           // ; , : :: ->
  Assign,                                            // =
  Bang, DoubleBang, Query, DoubleQuery, QueryLess,   // ! !! ? ?? ?<
  Greater,                                           // > (closes ?<...>)
  Underscore,                                        // _
  // operators
  Plus, Minus, Star, Slash, Percent,
  EqEq, NotEq, Less, LessEq, GreaterEq,
  AndAnd, OrOr, Not,
  // keywords
  KwMtype, KwChan, KwOf, KwInt, KwByte, KwBool, KwBit, KwShort,
  KwProctype, KwActive, KwInit, KwRun,
  KwIf, KwFi, KwDo, KwOd, KwElse, KwBreak, KwSkip, KwGoto,
  KwAtomic, KwDStep, KwAssert, KwEval, KwTrue, KwFalse,
  KwLen, KwFull, KwEmpty, KwNFull, KwNEmpty, KwPid,
};

struct Token {
  Tok kind{Tok::End};
  std::string text;
  long value{0};  // for Number
  int line{1};
  int col{1};
};

/// Tokenizes PML source; raises ModelError (with line/column) on bad input.
/// Handles // and /* */ comments.
std::vector<Token> lex(const std::string& source);

/// Token name for diagnostics.
const char* tok_name(Tok t);

}  // namespace pnp::pml
