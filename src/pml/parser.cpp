#include "pml/parser.h"

#include <optional>
#include <unordered_map>

#include "model/builder.h"
#include "pml/lexer.h"
#include "support/panic.h"

namespace pnp::pml {

namespace {

using namespace model;
using expr::Ex;

bool is_type_tok(Tok t) {
  return t == Tok::KwInt || t == Tok::KwByte || t == Tok::KwBool ||
         t == Tok::KwBit || t == Tok::KwShort || t == Tok::KwMtype;
}

class Parser {
 public:
  explicit Parser(const std::string& source)
      : toks_(lex(source)), sys_(&owned_) {}
  Parser(const std::string& source, SystemSpec& external)
      : toks_(lex(source)), sys_(&external) {}

  /// Behavior mode: parse a statement sequence into an existing builder.
  Parser(const std::string& source, ProcBuilder& b,
         const BehaviorSymbols& symbols)
      : toks_(lex(source)), sys_(&b.sys()) {
    scope_.b = &b;
    for (const auto& [name, id] : symbols.channels) chans_[name] = id;
    for (const auto& [name, slot] : symbols.globals) globals_[name] = slot;
    for (std::size_t i = 0; i < symbols.mtypes.size(); ++i)
      mtypes_[symbols.mtypes[i]] = static_cast<Value>(i + 1);
  }

  Seq parse_behavior_body() {
    Seq body = parse_seq({Tok::End});
    expect(Tok::End, "end of behavior");
    return body;
  }

  SystemSpec take() {
    parse_program();
    sys_->validate();
    return std::move(owned_);
  }

  /// Expression-only entry point (globals scope of the external spec).
  expr::Ref parse_expression_only() {
    index_system_symbols();
    const Ex e = parse_expr();
    expect(Tok::End, "end of expression");
    return e.ref;
  }

 private:
  // -- token helpers -----------------------------------------------------------
  const Token& peek(int ahead = 0) const {
    const std::size_t p = pos_ + static_cast<std::size_t>(ahead);
    return p < toks_.size() ? toks_[p] : toks_.back();
  }
  Token take_tok() { return toks_[pos_++]; }
  bool accept(Tok k) {
    if (peek().kind != k) return false;
    ++pos_;
    return true;
  }
  Token expect(Tok k, const std::string& what) {
    PNP_CHECK(peek().kind == k, err_at(peek(), "expected " + what + ", found " +
                                                   tok_name(peek().kind)));
    return take_tok();
  }
  static std::string err_at(const Token& t, const std::string& msg) {
    return "PML parse error at " + std::to_string(t.line) + ":" +
           std::to_string(t.col) + ": " + msg;
  }
  [[noreturn]] void fail(const std::string& msg) {
    raise_model_error(err_at(peek(), msg));
  }

  // -- symbols -----------------------------------------------------------------
  struct ProcScope {
    ProcBuilder* b{nullptr};
    std::unordered_map<std::string, LVar> locals;
  };

  void index_system_symbols() {
    for (std::size_t i = 0; i < sys_->mtypes.size(); ++i)
      mtypes_[sys_->mtypes[i]] = static_cast<Value>(i + 1);
    for (std::size_t i = 0; i < sys_->globals.size(); ++i)
      globals_[sys_->globals[i].name] = static_cast<int>(i);
    for (std::size_t i = 0; i < sys_->channels.size(); ++i)
      chans_[sys_->channels[i].name] = static_cast<int>(i);
  }

  Ex k(Value v) { return expr::wrap(sys_->exprs, sys_->exprs.konst(v)); }
  Ex gref(int slot) { return expr::wrap(sys_->exprs, sys_->exprs.global(slot)); }
  Ex lref(int slot) { return expr::wrap(sys_->exprs, sys_->exprs.local(slot)); }

  /// Resolves an identifier to an expression (locals > globals > mtypes >
  /// channels, mirroring Promela scoping).
  Ex resolve(const Token& id) {
    if (scope_.b) {
      auto it = scope_.locals.find(id.text);
      if (it != scope_.locals.end()) return lref(it->second.slot);
    }
    auto g = globals_.find(id.text);
    if (g != globals_.end()) return gref(g->second);
    auto m = mtypes_.find(id.text);
    if (m != mtypes_.end()) return k(m->second);
    auto c = chans_.find(id.text);
    if (c != chans_.end()) return k(static_cast<Value>(c->second));
    raise_model_error(err_at(id, "unknown identifier '" + id.text + "'"));
  }

  /// Is `name` a variable (bindable in a receive pattern)?
  bool is_variable(const std::string& name) const {
    if (scope_.b && scope_.locals.contains(name)) return true;
    return globals_.contains(name);
  }

  std::optional<Lhs> lhs_of(const std::string& name) const {
    if (scope_.b) {
      auto it = scope_.locals.find(name);
      if (it != scope_.locals.end()) return Lhs{LhsKind::Local, it->second.slot};
    }
    auto g = globals_.find(name);
    if (g != globals_.end()) return Lhs{LhsKind::Global, g->second};
    return std::nullopt;
  }

  // -- top level ----------------------------------------------------------------
  void parse_program() {
    while (peek().kind != Tok::End) {
      switch (peek().kind) {
        case Tok::KwMtype:
          if (peek(1).kind == Tok::Assign) {
            parse_mtype_decl();
          } else {
            parse_global_scalars();  // "mtype x;" global of type mtype
          }
          break;
        case Tok::KwChan:
          parse_chan_decl();
          break;
        case Tok::KwInt:
        case Tok::KwByte:
        case Tok::KwBool:
        case Tok::KwBit:
        case Tok::KwShort:
          parse_global_scalars();
          break;
        case Tok::KwActive:
        case Tok::KwProctype:
          parse_proctype();
          break;
        case Tok::KwInit:
          parse_init();
          break;
        case Tok::Semi:
          take_tok();
          break;
        default:
          fail("expected a declaration");
      }
    }
    // active proctypes already spawned; nothing else to do
  }

  void parse_mtype_decl() {
    expect(Tok::KwMtype, "'mtype'");
    expect(Tok::Assign, "'='");
    expect(Tok::LBrace, "'{'");
    do {
      const Token id = expect(Tok::Ident, "mtype name");
      PNP_CHECK(!mtypes_.contains(id.text),
                err_at(id, "duplicate mtype '" + id.text + "'"));
      mtypes_[id.text] = sys_->add_mtype(id.text);
    } while (accept(Tok::Comma));
    expect(Tok::RBrace, "'}'");
    accept(Tok::Semi);
  }

  void parse_chan_decl() {
    expect(Tok::KwChan, "'chan'");
    const Token id = expect(Tok::Ident, "channel name");
    expect(Tok::Assign, "'='");
    expect(Tok::LBracket, "'['");
    const Token cap = expect(Tok::Number, "capacity");
    expect(Tok::RBracket, "']'");
    expect(Tok::KwOf, "'of'");
    expect(Tok::LBrace, "'{'");
    int arity = 0;
    do {
      if (!is_type_tok(peek().kind) && peek().kind != Tok::KwChan)
        fail("expected a field type");
      take_tok();
      ++arity;
    } while (accept(Tok::Comma));
    expect(Tok::RBrace, "'}'");
    accept(Tok::Semi);
    PNP_CHECK(!chans_.contains(id.text),
              err_at(id, "duplicate channel '" + id.text + "'"));
    chans_[id.text] =
        sys_->add_channel(id.text, static_cast<int>(cap.value), arity);
  }

  Value parse_const_initializer() {
    // constant expressions only: number, mtype, true/false, unary minus
    bool neg = false;
    while (accept(Tok::Minus)) neg = !neg;
    const Token t = take_tok();
    Value v = 0;
    switch (t.kind) {
      case Tok::Number: v = static_cast<Value>(t.value); break;
      case Tok::KwTrue: v = 1; break;
      case Tok::KwFalse: v = 0; break;
      case Tok::Ident: {
        auto m = mtypes_.find(t.text);
        PNP_CHECK(m != mtypes_.end(),
                  err_at(t, "initializer must be a constant"));
        v = m->second;
        break;
      }
      default:
        raise_model_error(err_at(t, "initializer must be a constant"));
    }
    return neg ? -v : v;
  }

  void parse_global_scalars() {
    take_tok();  // type keyword
    do {
      const Token id = expect(Tok::Ident, "variable name");
      Value init = 0;
      if (accept(Tok::Assign)) init = parse_const_initializer();
      PNP_CHECK(!globals_.contains(id.text),
                err_at(id, "duplicate global '" + id.text + "'"));
      globals_[id.text] = sys_->add_global(id.text, init);
    } while (accept(Tok::Comma));
    expect(Tok::Semi, "';'");
  }

  void parse_proctype() {
    int active_count = 0;
    if (accept(Tok::KwActive)) {
      active_count = 1;
      if (accept(Tok::LBracket)) {
        active_count = static_cast<int>(expect(Tok::Number, "count").value);
        expect(Tok::RBracket, "']'");
      }
    }
    expect(Tok::KwProctype, "'proctype'");
    const Token name = expect(Tok::Ident, "proctype name");
    expect(Tok::LParen, "'('");

    ProcBuilder b(*sys_, name.text);
    scope_ = ProcScope{&b, {}};
    int n_params = 0;
    if (peek().kind != Tok::RParen) {
      do {
        if (!is_type_tok(peek().kind) && peek().kind != Tok::KwChan)
          fail("expected a parameter type");
        take_tok();
        const Token pid = expect(Tok::Ident, "parameter name");
        scope_.locals[pid.text] = b.param(pid.text);
        ++n_params;
        // Promela separates parameter groups by ';' and same-type names by ','
      } while (accept(Tok::Semi) || accept(Tok::Comma));
    }
    expect(Tok::RParen, "')'");
    PNP_CHECK(active_count == 0 || n_params == 0,
              err_at(name, "active proctypes cannot take parameters"));
    expect(Tok::LBrace, "'{'");
    Seq body = parse_seq({Tok::RBrace});
    expect(Tok::RBrace, "'}'");
    const int pt = b.finish(std::move(body));
    proctypes_[name.text] = pt;
    scope_ = ProcScope{};
    for (int a = 0; a < active_count; ++a)
      sys_->spawn(active_count == 1 ? name.text
                                   : name.text + std::to_string(a),
                 pt, {});
  }

  void parse_init() {
    expect(Tok::KwInit, "'init'");
    expect(Tok::LBrace, "'{'");
    std::unordered_map<std::string, int> run_counts;
    while (peek().kind != Tok::RBrace) {
      if (accept(Tok::Semi)) continue;
      if (accept(Tok::KwAtomic)) {  // common idiom: init { atomic { run...; } }
        expect(Tok::LBrace, "'{'");
        continue;  // contents handled by the loop; closing brace below
      }
      if (peek().kind == Tok::RBrace) break;
      if (accept(Tok::KwRun)) {
        const Token pname = expect(Tok::Ident, "proctype name");
        auto it = proctypes_.find(pname.text);
        PNP_CHECK(it != proctypes_.end(),
                  err_at(pname, "unknown proctype '" + pname.text + "'"));
        std::vector<Value> args;
        expect(Tok::LParen, "'('");
        if (peek().kind != Tok::RParen) {
          do {
            args.push_back(parse_run_arg());
          } while (accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        const int count = run_counts[pname.text]++;
        sys_->spawn(count == 0 ? pname.text
                              : pname.text + std::to_string(count),
                   it->second, std::move(args));
        continue;
      }
      fail("init may only contain run statements");
    }
    expect(Tok::RBrace, "'}'");
    // tolerate the closing brace of an atomic wrapper
    accept(Tok::RBrace);
  }

  Value parse_run_arg() {
    // constants, mtype names, or channel names
    if (peek().kind == Tok::Ident) {
      const Token id = take_tok();
      auto m = mtypes_.find(id.text);
      if (m != mtypes_.end()) return m->second;
      auto c = chans_.find(id.text);
      if (c != chans_.end()) return static_cast<Value>(c->second);
      raise_model_error(err_at(id, "run argument must be a constant, mtype, "
                                   "or channel"));
    }
    return parse_const_initializer();
  }

  // -- statements ---------------------------------------------------------------
  bool at_seq_end(const std::vector<Tok>& terminators) const {
    for (Tok t : terminators)
      if (peek().kind == t) return true;
    return peek().kind == Tok::DoubleColon || peek().kind == Tok::End;
  }

  Seq parse_seq(const std::vector<Tok>& terminators) {
    Seq out;
    while (true) {
      while (accept(Tok::Semi) || accept(Tok::Arrow)) {
      }
      if (at_seq_end(terminators)) break;
      parse_statement_into(out);
      if (!accept(Tok::Semi) && !accept(Tok::Arrow)) {
        if (at_seq_end(terminators)) break;
        fail("expected ';' or '->' between statements");
      }
    }
    return out;
  }

  void parse_statement_into(Seq& out) {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::KwSkip:
        take_tok();
        out.push_back(skip());
        return;
      case Tok::KwBreak:
        take_tok();
        out.push_back(break_());
        return;
      case Tok::KwGoto:
        fail("goto is not supported (use structured control flow)");
      case Tok::KwAssert: {
        take_tok();
        expect(Tok::LParen, "'('");
        const Ex e = parse_expr();
        expect(Tok::RParen, "')'");
        out.push_back(assert_(e));
        return;
      }
      case Tok::KwAtomic:
      case Tok::KwDStep: {
        take_tok();
        expect(Tok::LBrace, "'{'");
        Seq body = parse_seq({Tok::RBrace});
        expect(Tok::RBrace, "'}'");
        out.push_back(atomic(std::move(body)));
        return;
      }
      case Tok::KwIf:
      case Tok::KwDo: {
        const bool is_do = t.kind == Tok::KwDo;
        take_tok();
        auto sel = std::make_unique<Stmt>();
        sel->kind = is_do ? StmtKind::Do : StmtKind::If;
        const Tok closer = is_do ? Tok::KwOd : Tok::KwFi;
        while (accept(Tok::DoubleColon)) {
          Branch br;
          if (peek().kind == Tok::KwElse) {
            take_tok();
            br.is_else = true;
            accept(Tok::Arrow);
            accept(Tok::Semi);
            if (peek().kind == Tok::DoubleColon || peek().kind == closer) {
              br.body = seq(skip());
            } else {
              br.body = parse_seq({closer});
            }
          } else {
            br.body = parse_seq({closer});
          }
          PNP_CHECK(!br.body.empty(), err_at(peek(), "empty branch"));
          sel->branches.push_back(std::move(br));
        }
        expect(closer, is_do ? "'od'" : "'fi'");
        out.push_back(std::move(sel));
        return;
      }
      case Tok::KwInt:
      case Tok::KwByte:
      case Tok::KwBool:
      case Tok::KwBit:
      case Tok::KwShort:
      case Tok::KwMtype: {
        // local declaration(s)
        PNP_CHECK(scope_.b != nullptr, err_at(t, "declaration outside proctype"));
        take_tok();
        do {
          const Token id = expect(Tok::Ident, "variable name");
          Value init = 0;
          if (accept(Tok::Assign)) init = parse_const_initializer();
          PNP_CHECK(!scope_.locals.contains(id.text),
                    err_at(id, "duplicate local '" + id.text + "'"));
          scope_.locals[id.text] = scope_.b->local(id.text, init);
        } while (accept(Tok::Comma));
        return;  // declarations produce no statement
      }
      case Tok::Ident: {
        // label? ident ':' stmt   (only end* labels carry meaning)
        if (peek(1).kind == Tok::Colon) {
          const Token label = take_tok();
          take_tok();  // ':'
          if (label.text.rfind("end", 0) == 0) {
            out.push_back(end_label());
          }
          // progress*/accept* labels are accepted but have no effect here
          parse_statement_into(out);
          return;
        }
        parse_ident_statement(out);
        return;
      }
      default: {
        // expression statement (guard)
        const Ex e = parse_expr();
        out.push_back(guard(e));
        return;
      }
    }
  }

  /// Statements starting with an identifier: assignment, ++/--, or a
  /// channel operation.
  void parse_ident_statement(Seq& out) {
    const Token id = take_tok();
    switch (peek().kind) {
      case Tok::Assign: {
        take_tok();
        auto lhs = lhs_of(id.text);
        PNP_CHECK(lhs.has_value(), err_at(id, "cannot assign to '" + id.text + "'"));
        const Ex e = parse_expr();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Assign;
        s->lhs = *lhs;
        s->expr = e.ref;
        out.push_back(std::move(s));
        return;
      }
      case Tok::Plus:
      case Tok::Minus: {
        // x++ / x--
        const Tok op = peek().kind;
        if (peek(1).kind != op) {
          // not ++/--: it's an expression guard starting with the ident
          --pos_;  // un-take id
          out.push_back(guard(parse_expr()));
          return;
        }
        take_tok();
        take_tok();
        auto lhs = lhs_of(id.text);
        PNP_CHECK(lhs.has_value(), err_at(id, "cannot modify '" + id.text + "'"));
        const Ex cur = lhs->kind == LhsKind::Local ? lref(lhs->slot)
                                                   : gref(lhs->slot);
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::Assign;
        s->lhs = *lhs;
        s->expr = (op == Tok::Plus ? (cur + k(1)) : (cur - k(1))).ref;
        out.push_back(std::move(s));
        return;
      }
      case Tok::Bang:
      case Tok::DoubleBang: {
        const bool sorted = take_tok().kind == Tok::DoubleBang;
        std::vector<Ex> fields;
        do {
          fields.push_back(parse_expr());
        } while (accept(Tok::Comma));
        SendOpts so;
        so.sorted = sorted;
        out.push_back(send(resolve(id), std::move(fields), "", so));
        return;
      }
      case Tok::Query:
      case Tok::DoubleQuery:
      case Tok::QueryLess: {
        const Tok op = take_tok().kind;
        RecvOpts ro;
        ro.random = op == Tok::DoubleQuery;
        ro.copy = op == Tok::QueryLess;
        std::vector<RecvArg> args;
        do {
          args.push_back(parse_recv_arg());
        } while (accept(Tok::Comma));
        if (op == Tok::QueryLess) expect(Tok::Greater, "'>'");
        out.push_back(recv(resolve(id), std::move(args), "", ro));
        return;
      }
      default: {
        // expression guard starting with the identifier
        --pos_;  // un-take id
        out.push_back(guard(parse_expr()));
        return;
      }
    }
  }

  RecvArg parse_recv_arg() {
    if (accept(Tok::Underscore)) return any();
    if (accept(Tok::KwEval)) {
      expect(Tok::LParen, "'('");
      const Ex e = parse_expr();
      expect(Tok::RParen, "')'");
      return match(e);
    }
    if (peek().kind == Tok::Ident) {
      const Token id = peek();
      if (is_variable(id.text)) {
        take_tok();
        const auto lhs = lhs_of(id.text);
        RecvArg a;
        a.kind = RecvArgKind::Bind;
        a.lhs = *lhs;
        return a;
      }
      // mtype or channel name: constant match
      take_tok();
      return match(resolve(id));
    }
    // constant expression match (numbers, true/false, negation)
    return match(parse_unary());
  }

  // -- expressions ----------------------------------------------------------------
  Ex parse_expr() { return parse_or(); }

  Ex parse_or() {
    Ex a = parse_and();
    while (accept(Tok::OrOr)) a = a || parse_and();
    return a;
  }
  Ex parse_and() {
    Ex a = parse_eq();
    while (accept(Tok::AndAnd)) a = a && parse_eq();
    return a;
  }
  Ex parse_eq() {
    Ex a = parse_rel();
    while (true) {
      if (accept(Tok::EqEq)) a = a == parse_rel();
      else if (accept(Tok::NotEq)) a = a != parse_rel();
      else return a;
    }
  }
  Ex parse_rel() {
    Ex a = parse_add();
    while (true) {
      if (accept(Tok::Less)) a = a < parse_add();
      else if (accept(Tok::LessEq)) a = a <= parse_add();
      else if (accept(Tok::Greater)) a = a > parse_add();
      else if (accept(Tok::GreaterEq)) a = a >= parse_add();
      else return a;
    }
  }
  Ex parse_add() {
    Ex a = parse_mul();
    while (true) {
      if (accept(Tok::Plus)) a = a + parse_mul();
      else if (accept(Tok::Minus)) a = a - parse_mul();
      else return a;
    }
  }
  Ex parse_mul() {
    Ex a = parse_unary();
    while (true) {
      if (accept(Tok::Star)) a = a * parse_unary();
      else if (accept(Tok::Slash)) a = a / parse_unary();
      else if (accept(Tok::Percent)) a = a % parse_unary();
      else return a;
    }
  }
  Ex parse_unary() {
    if (accept(Tok::Not)) return !parse_unary();
    if (accept(Tok::Bang)) return !parse_unary();  // '!' doubles as logical not
    if (accept(Tok::Minus)) return -parse_unary();
    return parse_primary();
  }

  Ex chan_query(expr::Op op) {
    expect(Tok::LParen, "'('");
    const Token id = expect(Tok::Ident, "channel name");
    const Ex ch = resolve(id);
    expect(Tok::RParen, "')'");
    return expr::wrap(sys_->exprs, sys_->exprs.chan_query(op, ch.ref));
  }

  Ex parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::Number:
        take_tok();
        return k(static_cast<Value>(t.value));
      case Tok::KwTrue:
        take_tok();
        return k(1);
      case Tok::KwFalse:
        take_tok();
        return k(0);
      case Tok::KwPid:
        take_tok();
        return expr::wrap(sys_->exprs, sys_->exprs.self_pid());
      case Tok::KwLen:
        take_tok();
        return chan_query(expr::Op::ChanLen);
      case Tok::KwFull:
        take_tok();
        return chan_query(expr::Op::ChanFull);
      case Tok::KwEmpty:
        take_tok();
        return chan_query(expr::Op::ChanEmpty);
      case Tok::KwNFull:
        take_tok();
        return !chan_query(expr::Op::ChanFull);
      case Tok::KwNEmpty:
        take_tok();
        return !chan_query(expr::Op::ChanEmpty);
      case Tok::LParen: {
        take_tok();
        const Ex e = parse_expr();
        expect(Tok::RParen, "')'");
        return e;
      }
      case Tok::Ident: {
        const Token id = take_tok();
        return resolve(id);
      }
      default:
        fail("expected an expression");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_{0};
  SystemSpec owned_;
  SystemSpec* sys_;
  ProcScope scope_;
  std::unordered_map<std::string, Value> mtypes_;
  std::unordered_map<std::string, int> globals_;
  std::unordered_map<std::string, int> chans_;
  std::unordered_map<std::string, int> proctypes_;
};

}  // namespace

SystemSpec parse(const std::string& source) {
  Parser p(source);
  return p.take();
}

expr::Ref parse_global_expr(SystemSpec& sys, const std::string& text) {
  Parser p(text, sys);
  return p.parse_expression_only();
}

model::Seq parse_behavior(model::ProcBuilder& b, const std::string& source,
                          const BehaviorSymbols& symbols) {
  Parser p(source, b, symbols);
  return p.parse_behavior_body();
}

}  // namespace pnp::pml
