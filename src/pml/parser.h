// PML parser: Promela-subset text -> model::SystemSpec.
//
// Supported subset (what the paper's models need, and a bit more):
//   mtype = { A, B, ... }
//   chan q = [N] of { mtype, byte, ... };          (N == 0: rendezvous)
//   int/byte/bool/bit/short globals with constant initializers
//   (active [N]) proctype P(chan c; byte x) { ... }
//   init { run P(q, 3); ... }
//   statements: skip, break, assert(e), x = e, x++, x--,
//     c!e1,...  c!!...  c?a1,...  c??...  c?<...>   (args: _, eval(e),
//     constants match, variables bind), if/do with :: branches and else,
//     atomic { } and d_step { } (both map to atomic), expression guards,
//     local declarations anywhere, `end*:` labels (valid end states).
// Not supported: goto, unless, typedefs/structs, arrays, printf, timeout.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "model/builder.h"
#include "model/system.h"

namespace pnp::pml {

/// Parses `source` into a validated SystemSpec. Raises ModelError with
/// line:column positions on any lexical, syntactic, or semantic error.
model::SystemSpec parse(const std::string& source);

/// Parses an expression over the globals / mtypes / channels of `sys`
/// (used by the CLI for --invariant / --prop). Local variables are not in
/// scope. Returns a ref into sys.exprs.
expr::Ref parse_global_expr(model::SystemSpec& sys, const std::string& text);

/// Names visible to a textually defined process body (see parse_behavior).
struct BehaviorSymbols {
  std::unordered_map<std::string, int> channels;  // name -> channel id
  std::unordered_map<std::string, int> globals;   // name -> global slot
  std::vector<std::string> mtypes;                // value(name) = index + 1
};

/// Parses a PML statement sequence as the body of a process under
/// construction in `b` (local declarations allowed; the symbols give the
/// channel/global/mtype names in scope). Used by the textual architecture
/// front-end to express component behaviours exactly like the paper's
/// Fig. 9/10 component listings.
model::Seq parse_behavior(model::ProcBuilder& b, const std::string& source,
                          const BehaviorSymbols& symbols);

}  // namespace pnp::pml
