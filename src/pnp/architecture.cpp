#include "pnp/architecture.h"

#include <sstream>

#include "support/panic.h"

namespace pnp {

int Architecture::add_global(std::string name, model::Value init) {
  globals_.push_back({std::move(name), init});
  ++version_;
  return static_cast<int>(globals_.size()) - 1;
}

int Architecture::add_component(std::string name, ComponentModelFn fn) {
  PNP_CHECK(fn != nullptr, "component model callback must not be null");
  components_.push_back({std::move(name), std::move(fn)});
  ++version_;
  return static_cast<int>(components_.size()) - 1;
}

int Architecture::add_connector(std::string name, ChannelSpec spec) {
  PNP_CHECK(spec.capacity >= 1 || spec.kind == ChannelKind::SingleSlot,
            "buffered channel capacity must be >= 1");
  connectors_.push_back({std::move(name), spec});
  ++version_;
  return static_cast<int>(connectors_.size()) - 1;
}

void Architecture::attach_sender(int component, std::string port_name,
                                 int connector, SendPortKind kind) {
  Attachment a;
  a.component = component;
  a.port_name = std::move(port_name);
  a.connector = connector;
  a.is_sender = true;
  a.send_kind = kind;
  attachments_.push_back(std::move(a));
  ++version_;
}

void Architecture::attach_receiver(int component, std::string port_name,
                                   int connector, RecvPortKind kind,
                                   RecvPortOpts opts) {
  Attachment a;
  a.component = component;
  a.port_name = std::move(port_name);
  a.connector = connector;
  a.is_sender = false;
  a.recv_kind = kind;
  a.recv_opts = opts;
  attachments_.push_back(std::move(a));
  ++version_;
}

Attachment& Architecture::attachment_at(int component,
                                        const std::string& port_name) {
  for (Attachment& a : attachments_)
    if (a.component == component && a.port_name == port_name) return a;
  raise_model_error("no attachment named '" + port_name + "' on component " +
                    std::to_string(component));
}

void Architecture::set_send_port(int component, const std::string& port_name,
                                 SendPortKind kind) {
  Attachment& a = attachment_at(component, port_name);
  PNP_CHECK(a.is_sender, "set_send_port on a receiver attachment");
  a.send_kind = kind;
  ++version_;
}

void Architecture::set_send_port(int component, const std::string& port_name,
                                 SendPortKind kind, int retries) {
  PNP_CHECK(retries >= 0, "set_send_port: retries must be >= 0");
  Attachment& a = attachment_at(component, port_name);
  PNP_CHECK(a.is_sender, "set_send_port on a receiver attachment");
  a.send_kind = kind;
  a.send_retries = retries;
  ++version_;
}

void Architecture::set_crash_restart(int component, int max_crashes) {
  PNP_CHECK(component >= 0 && component < static_cast<int>(components_.size()),
            "set_crash_restart: unknown component");
  PNP_CHECK(max_crashes >= 0, "set_crash_restart: max_crashes must be >= 0");
  components_[static_cast<std::size_t>(component)].max_crashes = max_crashes;
  ++version_;
}

void Architecture::set_behavior_fingerprint(int component,
                                            std::string fingerprint) {
  PNP_CHECK(component >= 0 && component < static_cast<int>(components_.size()),
            "set_behavior_fingerprint: unknown component");
  components_[static_cast<std::size_t>(component)].behavior_fingerprint =
      std::move(fingerprint);
  // no version bump: the fingerprint describes the behaviour, it does not
  // change the generated model
}

void Architecture::set_recv_port(int component, const std::string& port_name,
                                 RecvPortKind kind, RecvPortOpts opts) {
  Attachment& a = attachment_at(component, port_name);
  PNP_CHECK(!a.is_sender, "set_recv_port on a sender attachment");
  a.recv_kind = kind;
  a.recv_opts = opts;
  ++version_;
}

void Architecture::set_channel(int connector, ChannelSpec spec) {
  PNP_CHECK(connector >= 0 && connector < static_cast<int>(connectors_.size()),
            "set_channel: unknown connector");
  connectors_[static_cast<std::size_t>(connector)].channel = spec;
  ++version_;
}

void Architecture::reattach(int component, const std::string& port_name,
                            int connector) {
  PNP_CHECK(connector >= 0 && connector < static_cast<int>(connectors_.size()),
            "reattach: unknown connector");
  attachment_at(component, port_name).connector = connector;
  ++version_;
}

int Architecture::find_component(const std::string& name) const {
  for (std::size_t i = 0; i < components_.size(); ++i)
    if (components_[i].name == name) return static_cast<int>(i);
  return -1;
}

int Architecture::find_connector(const std::string& name) const {
  for (std::size_t i = 0; i < connectors_.size(); ++i)
    if (connectors_[i].name == name) return static_cast<int>(i);
  return -1;
}

std::vector<const Attachment*> Architecture::attachments_of(
    int connector) const {
  std::vector<const Attachment*> out;
  for (const Attachment& a : attachments_)
    if (a.connector == connector && a.is_sender) out.push_back(&a);
  for (const Attachment& a : attachments_)
    if (a.connector == connector && !a.is_sender) out.push_back(&a);
  return out;
}

void Architecture::validate() const {
  for (const Attachment& a : attachments_) {
    PNP_CHECK(a.component >= 0 &&
                  a.component < static_cast<int>(components_.size()),
              "attachment references unknown component");
    PNP_CHECK(a.connector >= 0 &&
                  a.connector < static_cast<int>(connectors_.size()),
              "attachment references unknown connector");
  }
  // unique (component, port) pairs
  for (std::size_t i = 0; i < attachments_.size(); ++i)
    for (std::size_t j = i + 1; j < attachments_.size(); ++j)
      PNP_CHECK(!(attachments_[i].component == attachments_[j].component &&
                  attachments_[i].port_name == attachments_[j].port_name),
                "duplicate port name '" + attachments_[i].port_name +
                    "' on a component");
  for (std::size_t c = 0; c < connectors_.size(); ++c) {
    int senders = 0;
    int receivers = 0;
    for (const Attachment& a : attachments_) {
      if (a.connector != static_cast<int>(c)) continue;
      if (a.is_sender) {
        ++senders;
        if (connectors_[c].channel.kind == ChannelKind::EventPool)
          PNP_CHECK(a.send_kind == SendPortKind::AsynNonblocking ||
                        a.send_kind == SendPortKind::AsynBlocking ||
                        a.send_kind == SendPortKind::AsynChecking,
                    "publish/subscribe connector '" + connectors_[c].name +
                        "' requires asynchronous send ports (the event pool "
                        "never emits delivery notifications)");
      } else {
        ++receivers;
      }
    }
    PNP_CHECK(senders >= 1, "connector '" + connectors_[c].name +
                                "' has no sender attachment");
    PNP_CHECK(receivers >= 1, "connector '" + connectors_[c].name +
                                  "' has no receiver attachment");
  }
}

std::string Architecture::describe() const {
  std::ostringstream os;
  os << "architecture " << name_ << "\n";
  for (const GlobalDecl& g : globals_)
    os << "  global " << g.name << " = " << g.init << "\n";
  for (const ComponentDecl& c : components_) {
    os << "  component " << c.name;
    if (c.max_crashes > 0) os << " [crashes <= " << c.max_crashes << "]";
    os << "\n";
  }
  for (std::size_t i = 0; i < connectors_.size(); ++i) {
    os << "  connector " << connectors_[i].name << " : "
       << to_string(connectors_[i].channel) << "\n";
    for (const Attachment* a : attachments_of(static_cast<int>(i))) {
      os << "    " << (a->is_sender ? "sender  " : "receiver") << " "
         << components_[static_cast<std::size_t>(a->component)].name << "."
         << a->port_name << " via ";
      if (a->is_sender) {
        os << to_string(a->send_kind);
        if (a->send_kind == SendPortKind::TimeoutRetry)
          os << "(" << a->send_retries << ")";
      } else {
        os << to_string(a->recv_kind, a->recv_opts);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string Architecture::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";
  for (const ComponentDecl& c : components_)
    os << "  \"" << c.name << "\" [shape=box, style=filled, fillcolor=lightblue];\n";
  for (const ConnectorDecl& c : connectors_)
    os << "  \"" << c.name << "\" [shape=ellipse, label=\"" << c.name << "\\n"
       << to_string(c.channel) << "\"];\n";
  for (const Attachment& a : attachments_) {
    const std::string& comp =
        components_[static_cast<std::size_t>(a.component)].name;
    const std::string& conn =
        connectors_[static_cast<std::size_t>(a.connector)].name;
    if (a.is_sender)
      os << "  \"" << comp << "\" -> \"" << conn << "\" [label=\""
         << a.port_name << "\\n" << to_string(a.send_kind) << "\"];\n";
    else
      os << "  \"" << conn << "\" -> \"" << comp << "\" [label=\""
         << a.port_name << "\\n" << to_string(a.recv_kind, a.recv_opts)
         << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pnp
