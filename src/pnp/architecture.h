// Design-level architecture entities: components, connectors, and the
// plug-and-play edit operations (paper section 2).
//
// A Connector is a channel building block plus the send/receive ports of
// the attachments wired to it. Components provide their computation model
// through a callback that speaks only the standard interfaces of
// pnp/interfaces.h, which is why the edit operations (swap a port kind,
// swap the channel) never touch component code.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "pnp/blocks.h"

namespace pnp {

class ComponentContext;

/// Builds the component's process body. Called (once, then cached) by the
/// model generator; use ctx to declare locals, fetch port endpoints and
/// globals, and emit the standard-interface protocol.
using ComponentModelFn = std::function<model::Seq(ComponentContext&)>;

struct GlobalDecl {
  std::string name;
  model::Value init{0};
};

struct ComponentDecl {
  std::string name;
  ComponentModelFn fn;
  /// Fault injection: > 0 lets the component's process nondeterministically
  /// crash and restart from its initial control point (losing its locals)
  /// up to this many times. 0 = no crash faults (the default).
  int max_crashes{0};
  /// Stable digest of the component's behaviour source, when one exists
  /// (the ADL front end fingerprints the embedded PML text). Used by the
  /// content-addressed verification cache; empty means the cache trusts
  /// the component NAME as the behaviour identity (C++-defined models).
  std::string behavior_fingerprint;
};

struct ConnectorDecl {
  std::string name;
  ChannelSpec channel;
};

struct Attachment {
  int component{-1};
  std::string port_name;
  int connector{-1};
  bool is_sender{true};
  SendPortKind send_kind{SendPortKind::AsynBlocking};
  RecvPortKind recv_kind{RecvPortKind::Blocking};
  RecvPortOpts recv_opts{};
  /// TimeoutRetry send ports: how many times a rejected message is retried
  /// before the port reports SEND_FAIL. Ignored by every other kind.
  int send_retries{2};
};

class Architecture {
 public:
  explicit Architecture(std::string name) : name_(std::move(name)) {}

  // -- construction -----------------------------------------------------------
  int add_global(std::string name, model::Value init = 0);
  int add_component(std::string name, ComponentModelFn fn);
  int add_connector(std::string name, ChannelSpec spec);
  void attach_sender(int component, std::string port_name, int connector,
                     SendPortKind kind);
  void attach_receiver(int component, std::string port_name, int connector,
                       RecvPortKind kind, RecvPortOpts opts = {});

  // -- plug-and-play edits (connector side only; components stay intact) ------
  void set_send_port(int component, const std::string& port_name,
                     SendPortKind kind);
  /// Overload for TimeoutRetry: also sets the retry bound.
  void set_send_port(int component, const std::string& port_name,
                     SendPortKind kind, int retries);
  void set_recv_port(int component, const std::string& port_name,
                     RecvPortKind kind, RecvPortOpts opts = {});
  void set_channel(int connector, ChannelSpec spec);
  /// Fault injection: allow component's process to crash-restart up to
  /// `max_crashes` times (0 disables).
  void set_crash_restart(int component, int max_crashes);
  /// Records a stable digest of the component's behaviour source (see
  /// ComponentDecl::behavior_fingerprint). The ADL front end calls this;
  /// hand-built C++ architectures may too if their behaviour has a textual
  /// source of truth.
  void set_behavior_fingerprint(int component, std::string fingerprint);
  /// Rewires an existing attachment to a different connector.
  void reattach(int component, const std::string& port_name, int connector);

  // -- queries -----------------------------------------------------------------
  const std::string& name() const { return name_; }
  int find_component(const std::string& name) const;
  int find_connector(const std::string& name) const;
  const std::vector<GlobalDecl>& globals() const { return globals_; }
  const std::vector<ComponentDecl>& components() const { return components_; }
  const std::vector<ConnectorDecl>& connectors() const { return connectors_; }
  const std::vector<Attachment>& attachments() const { return attachments_; }
  /// Attachments of one connector, senders first (defines the subscriber
  /// order of event pools).
  std::vector<const Attachment*> attachments_of(int connector) const;

  /// Structural checks: every attachment resolves, every connector has at
  /// least one sender and one receiver, and publish/subscribe connectors
  /// only use asynchronous send ports. Raises ModelError.
  void validate() const;

  /// Monotonically increasing edit counter (used to invalidate generated
  /// models).
  std::uint64_t version() const { return version_; }

  /// One-line-per-entity rendering of the current design.
  std::string describe() const;

  /// Graphviz dot rendering: components as boxes, connectors as ellipses,
  /// attachments as labeled edges (sender -> connector -> receiver).
  std::string to_dot() const;

 private:
  Attachment& attachment_at(int component, const std::string& port_name);

  std::string name_;
  std::vector<GlobalDecl> globals_;
  std::vector<ComponentDecl> components_;
  std::vector<ConnectorDecl> connectors_;
  std::vector<Attachment> attachments_;
  std::uint64_t version_{0};
};

}  // namespace pnp
