#include "pnp/blocks.h"

#include "support/panic.h"

namespace pnp {

const char* to_string(SendPortKind k) {
  switch (k) {
    case SendPortKind::AsynNonblocking: return "AsynNbSend";
    case SendPortKind::AsynBlocking: return "AsynBlSend";
    case SendPortKind::AsynChecking: return "AsynChkSend";
    case SendPortKind::SynBlocking: return "SynBlSend";
    case SendPortKind::SynChecking: return "SynChkSend";
    case SendPortKind::TimeoutRetry: return "TimeoutRetrySend";
  }
  return "?";
}

const char* to_string(RecvPortKind k) {
  switch (k) {
    case RecvPortKind::Blocking: return "BlRecv";
    case RecvPortKind::Nonblocking: return "NbRecv";
  }
  return "?";
}

const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::SingleSlot: return "SingleSlot";
    case ChannelKind::Fifo: return "Fifo";
    case ChannelKind::Priority: return "Priority";
    case ChannelKind::LossyFifo: return "LossyFifo";
    case ChannelKind::EventPool: return "EventPool";
    case ChannelKind::DuplicatingFifo: return "DuplicatingFifo";
    case ChannelKind::ReorderingFifo: return "ReorderingFifo";
    case ChannelKind::DroppingFifo: return "DroppingFifo";
  }
  return "?";
}

bool is_fault_channel(ChannelKind k) {
  return k == ChannelKind::DuplicatingFifo ||
         k == ChannelKind::ReorderingFifo || k == ChannelKind::DroppingFifo;
}

std::string to_string(const ChannelSpec& c) {
  std::string out = to_string(c.kind);
  if (c.kind != ChannelKind::SingleSlot)
    out += "(" + std::to_string(c.capacity) + ")";
  return out;
}

std::string to_string(RecvPortKind k, const RecvPortOpts& o) {
  std::string out = to_string(k);
  if (!o.remove) out += "/copy";
  if (o.selective) out += "/selective";
  return out;
}

namespace blocks {

using namespace model;
using expr::Ex;

namespace {

/// Locals holding one data message.
struct MsgVars {
  LVar data, snd, sel, seld, rem, prio;
};

MsgVars declare_msg(ProcBuilder& b, const std::string& prefix) {
  return {b.local(prefix + "_data"), b.local(prefix + "_snd"),
          b.local(prefix + "_sel"),  b.local(prefix + "_seld"),
          b.local(prefix + "_rem"),  b.local(prefix + "_prio")};
}

std::vector<RecvArg> bind_msg(const MsgVars& m) {
  return {bind(m.data), bind(m.snd), bind(m.sel),
          bind(m.seld), bind(m.rem), bind(m.prio)};
}

/// Field list forwarding a received message, stamping this port's pid as
/// the sender id (paper: m.sender_id = _pid).
std::vector<Ex> forward_fields(ProcBuilder& b, const MsgVars& m) {
  return {b.l(m.data), b.self(),    b.l(m.sel),
          b.l(m.seld), b.l(m.rem),  b.l(m.prio)};
}

std::vector<Ex> msg_fields(ProcBuilder& b, const MsgVars& m) {
  return {b.l(m.data), b.l(m.snd),  b.l(m.sel),
          b.l(m.seld), b.l(m.rem),  b.l(m.prio)};
}

/// chanSig receive matching (signal, this port's pid).
StmtPtr sig_from_chan(ProcBuilder& b, LVar chan_sig, Signal s,
                      std::string label) {
  return recv(b.l(chan_sig), {match(b.k(s)), match(b.self())},
              std::move(label));
}

/// Drain alternative: consume a stray delivery notification.
Branch drain_recv_ok(ProcBuilder& b, LVar chan_sig) {
  return alt(seq(
      sig_from_chan(b, chan_sig, RECV_OK, "port: drain delivery notification")));
}

Branch drain_any_signal(ProcBuilder& b, LVar chan_sig) {
  return alt(seq(recv(b.l(chan_sig), {any(), match(b.self())},
                      "port: drain stray signal")));
}

StmtPtr send_status(ProcBuilder& b, LVar comp_sig, Signal s) {
  return send(b.l(comp_sig), {b.k(s), b.k(-1)},
              std::string("port: SendStatus ") + signal_name(s));
}

}  // namespace

int build_send_port(SystemSpec& sys, SendPortKind kind,
                    const std::string& name) {
  ProcBuilder b(sys, name);
  const LVar comp_sig = b.param("compSig");
  const LVar comp_data = b.param("compData");
  const LVar chan_sig = b.param("chanSig");
  const LVar chan_data = b.param("chanData");
  // The retry bound is a spawn argument so one proctype serves every bound.
  LVar retry_bound{};
  if (kind == SendPortKind::TimeoutRetry) retry_bound = b.param("retryBound");
  const MsgVars m = declare_msg(b, "m");
  LVar tries{};
  if (kind == SendPortKind::TimeoutRetry) tries = b.local("tries");

  auto accept_from_component = [&]() {
    return recv(b.l(comp_data), bind_msg(m), "port: accept message from component");
  };
  auto forward_to_channel = [&]() {
    return send(b.l(chan_data), forward_fields(b, m),
                "port: forward message to channel");
  };

  switch (kind) {
    case SendPortKind::SynBlocking: {
      // Paper Fig. 6: retry until stored, then await delivery, then confirm.
      return b.finish(seq(end_label(), do_(alt(seq(
          accept_from_component(),
          do_(alt(seq(
              forward_to_channel(),
              if_(alt(seq(sig_from_chan(b, chan_sig, IN_OK, "port: IN_OK"),
                          break_())),
                  alt(seq(sig_from_chan(b, chan_sig, IN_FAIL,
                                        "port: IN_FAIL (buffer full, retry)"))))))),
          sig_from_chan(b, chan_sig, RECV_OK, "port: RECV_OK (delivered)"),
          send_status(b, comp_sig, SEND_SUCC))))));
    }
    case SendPortKind::SynChecking: {
      // Forward once; IN_FAIL -> SEND_FAIL, IN_OK -> await delivery.
      return b.finish(seq(end_label(), do_(alt(seq(
          accept_from_component(),
          forward_to_channel(),
          if_(alt(seq(sig_from_chan(b, chan_sig, IN_OK, "port: IN_OK"),
                      sig_from_chan(b, chan_sig, RECV_OK,
                                    "port: RECV_OK (delivered)"),
                      send_status(b, comp_sig, SEND_SUCC))),
              alt(seq(sig_from_chan(b, chan_sig, IN_FAIL, "port: IN_FAIL"),
                      send_status(b, comp_sig, SEND_FAIL)))))))));
    }
    case SendPortKind::AsynBlocking: {
      // Confirm once stored; delivery notifications are drained later.
      return b.finish(seq(end_label(), do_(
          drain_recv_ok(b, chan_sig),
          alt(seq(
              accept_from_component(),
              do_(alt(seq(forward_to_channel(),
                          if_(alt(seq(sig_from_chan(b, chan_sig, IN_OK,
                                                    "port: IN_OK"),
                                      break_())),
                              alt(seq(sig_from_chan(
                                  b, chan_sig, IN_FAIL,
                                  "port: IN_FAIL (buffer full, retry)")))))),
                  drain_recv_ok(b, chan_sig)),
              send_status(b, comp_sig, SEND_SUCC))))));
    }
    case SendPortKind::AsynChecking: {
      return b.finish(seq(end_label(), do_(
          drain_recv_ok(b, chan_sig),
          alt(seq(
              accept_from_component(),
              do_(alt(seq(forward_to_channel(), break_())),
                  drain_recv_ok(b, chan_sig)),
              if_(alt(seq(sig_from_chan(b, chan_sig, IN_OK, "port: IN_OK"),
                          send_status(b, comp_sig, SEND_SUCC))),
                  alt(seq(sig_from_chan(b, chan_sig, IN_FAIL, "port: IN_FAIL"),
                          send_status(b, comp_sig, SEND_FAIL)))))))));
    }
    case SendPortKind::AsynNonblocking: {
      // Paper Fig. 7: confirm before forwarding; drain every later signal.
      return b.finish(seq(end_label(), do_(
          drain_any_signal(b, chan_sig),
          alt(seq(accept_from_component(),
                  send_status(b, comp_sig, SEND_SUCC),
                  do_(alt(seq(forward_to_channel(), break_())),
                      drain_any_signal(b, chan_sig)))))));
    }
    case SendPortKind::TimeoutRetry: {
      // Fault-tolerance wrapper: like AsynChecking, but retries a rejected
      // message up to `retryBound` times before giving up with SEND_FAIL.
      // Delivery notifications are drained like any asynchronous port.
      return b.finish(seq(end_label(), do_(
          drain_recv_ok(b, chan_sig),
          alt(seq(
              accept_from_component(),
              assign(tries, b.k(0)),
              do_(alt(seq(
                      forward_to_channel(),
                      if_(alt(seq(sig_from_chan(b, chan_sig, IN_OK,
                                                "port: IN_OK"),
                                  send_status(b, comp_sig, SEND_SUCC),
                                  break_())),
                          alt(seq(sig_from_chan(b, chan_sig, IN_FAIL,
                                                "port: IN_FAIL"),
                                  if_(alt(seq(guard(b.l(tries) <
                                                    b.l(retry_bound)),
                                              assign(tries,
                                                     b.l(tries) + b.k(1)))),
                                      alt_else(seq(
                                          send_status(b, comp_sig, SEND_FAIL),
                                          break_())))))))),
                  drain_recv_ok(b, chan_sig)))))));
    }
  }
  raise_model_error("unknown send port kind");
}

int build_recv_port(SystemSpec& sys, RecvPortKind kind,
                    const RecvPortOpts& opts, const std::string& name) {
  ProcBuilder b(sys, name);
  const LVar comp_sig = b.param("compSig");
  const LVar comp_data = b.param("compData");
  const LVar chan_sig = b.param("chanSig");
  const LVar chan_data = b.param("chanData");
  const LVar rq_seld = b.local("rq_seld");
  const MsgVars m = declare_msg(b, "m");

  auto accept_request = [&]() {
    return recv(b.l(comp_data),
                {any(), any(), any(), bind(rq_seld), any(), any()},
                "port: accept receive request from component");
  };
  // The port stamps its kind's flags onto the forwarded request.
  auto forward_request = [&]() {
    return send(b.l(chan_data),
                {b.k(0), b.self(), b.k(opts.selective ? 1 : 0), b.l(rq_seld),
                 b.k(opts.remove ? 1 : 0), b.k(0)},
                "port: forward receive request to channel");
  };
  auto take_out_ok = [&]() {
    return recv(b.l(chan_sig), {match(b.k(OUT_OK)), any()}, "port: OUT_OK");
  };
  auto take_out_fail = [&]() {
    return recv(b.l(chan_sig), {match(b.k(OUT_FAIL)), any()}, "port: OUT_FAIL");
  };
  auto take_message = [&]() {
    return recv(b.l(chan_data), bind_msg(m), "port: receive message from channel");
  };
  auto deliver = [&](Signal status) {
    return seq(send(b.l(comp_sig), {b.k(status), b.k(-1)},
                    std::string("port: RecvStatus ") + signal_name(status)),
               send(b.l(comp_data),
                    status == RECV_SUCC
                        ? msg_fields(b, m)
                        : std::vector<Ex>{b.k(0), b.k(0), b.k(0), b.k(0),
                                          b.k(0), b.k(0)},
                    status == RECV_SUCC ? "port: deliver message to component"
                                        : "port: deliver stub message"));
  };

  switch (kind) {
    case RecvPortKind::Blocking: {
      // Paper Fig. 8: retry against the channel until a message arrives.
      return b.finish(seq(end_label(), do_(alt(model::concat(
          seq(accept_request(),
              do_(alt(seq(forward_request(),
                          if_(alt(seq(take_out_ok(), take_message(), break_())),
                              alt(seq(take_out_fail()))))))),
          deliver(RECV_SUCC))))));
    }
    case RecvPortKind::Nonblocking: {
      return b.finish(seq(end_label(), do_(alt(seq(
          accept_request(), forward_request(),
          if_(alt(model::concat(seq(take_out_ok(), take_message()),
                                deliver(RECV_SUCC))),
              alt(model::concat(seq(take_out_fail()), deliver(RECV_FAIL)))))))));
    }
  }
  raise_model_error("unknown recv port kind");
}

namespace {

/// Request-handling locals shared by the channel builders.
struct ReqVars {
  LVar sel, seld, rem;
};

ReqVars declare_req(ProcBuilder& b) {
  return {b.local("rq_sel"), b.local("rq_seld"), b.local("rq_rem")};
}

StmtPtr accept_request(ProcBuilder& b, LVar recv_data, const ReqVars& rq) {
  return recv(b.l(recv_data),
              {any(), any(), bind(rq.sel), bind(rq.seld), bind(rq.rem), any()},
              "channel: accept receive request");
}

}  // namespace

int build_single_slot(SystemSpec& sys, const std::string& name) {
  ProcBuilder b(sys, name);
  const LVar send_sig = b.param("sendSig");
  const LVar send_data = b.param("sendData");
  const LVar recv_sig = b.param("recvSig");
  const LVar recv_data = b.param("recvData");
  const ReqVars rq = declare_req(b);
  const MsgVars m = declare_msg(b, "m");
  const LVar buf_data = b.local("buf_data");
  const LVar buf_snd = b.local("buf_snd");
  const LVar buf_seld = b.local("buf_seld");
  const LVar buf_prio = b.local("buf_prio");
  const LVar buffer_empty = b.local("buffer_empty", 1);

  // Deliverable: buffer occupied and (non-selective request, or tag match).
  const Ex can_deliver =
      (b.l(buffer_empty) == b.k(0)) &&
      ((b.l(rq.sel) == b.k(0)) || (b.l(buf_seld) == b.l(rq.seld)));

  return b.finish(seq(end_label(), do_(
      // -- receive-request side (paper Fig. 11, first branch) ------------
      alt(seq(
          accept_request(b, recv_data, rq),
          if_(alt(seq(guard(can_deliver),
                      send(b.l(recv_sig), {b.k(OUT_OK), b.k(-1)},
                           "channel: OUT_OK"),
                      send(b.l(recv_data),
                           {b.l(buf_data), b.l(buf_snd), b.k(0), b.l(buf_seld),
                            b.k(0), b.l(buf_prio)},
                           "channel: deliver buffered message"),
                      send(b.l(send_sig), {b.k(RECV_OK), b.l(buf_snd)},
                           "channel: RECV_OK to send port"),
                      if_(alt(seq(guard(b.l(rq.rem) == b.k(1)),
                                  assign(buffer_empty, b.k(1)))),
                          alt_else(seq(skip()))))),
              alt_else(seq(send(b.l(recv_sig), {b.k(OUT_FAIL), b.k(-1)},
                                "channel: OUT_FAIL")))))),
      // -- send side (paper Fig. 11, second branch) -----------------------
      alt(seq(
          recv(b.l(send_data), bind_msg(m), "channel: accept message"),
          if_(alt(seq(guard(b.l(buffer_empty) == b.k(1)),
                      send(b.l(send_sig), {b.k(IN_OK), b.l(m.snd)},
                           "channel: IN_OK"),
                      assign(buf_data, b.l(m.data)),
                      assign(buf_snd, b.l(m.snd)),
                      assign(buf_seld, b.l(m.seld)),
                      assign(buf_prio, b.l(m.prio)),
                      assign(buffer_empty, b.k(0)))),
              alt_else(seq(send(b.l(send_sig), {b.k(IN_FAIL), b.l(m.snd)},
                                "channel: IN_FAIL (buffer occupied)")))))))));
}

namespace {

/// Internal-queue field layouts. Priority queues store the priority first
/// so the kernel's lexicographic sorted-send orders by it.
struct QueueLayout {
  // position of each logical field within the internal-queue message
  int data, snd, sel, seld, rem, prio;
};

constexpr QueueLayout kFifoLayout{0, 1, 2, 3, 4, 5};
constexpr QueueLayout kPrioLayout{1, 2, 3, 4, 5, 0};

std::vector<Ex> to_layout(ProcBuilder& b, const MsgVars& m,
                          const QueueLayout& lay) {
  std::vector<Ex> out(6, b.k(0));
  out[static_cast<std::size_t>(lay.data)] = b.l(m.data);
  out[static_cast<std::size_t>(lay.snd)] = b.l(m.snd);
  out[static_cast<std::size_t>(lay.sel)] = b.l(m.sel);
  out[static_cast<std::size_t>(lay.seld)] = b.l(m.seld);
  out[static_cast<std::size_t>(lay.rem)] = b.l(m.rem);
  out[static_cast<std::size_t>(lay.prio)] = b.l(m.prio);
  return out;
}

std::vector<RecvArg> bind_layout(const MsgVars& m, const QueueLayout& lay,
                                 const RecvArg* seld_match) {
  std::vector<RecvArg> out(6, any());
  out[static_cast<std::size_t>(lay.data)] = bind(m.data);
  out[static_cast<std::size_t>(lay.snd)] = bind(m.snd);
  out[static_cast<std::size_t>(lay.sel)] = bind(m.sel);
  out[static_cast<std::size_t>(lay.seld)] =
      seld_match ? *seld_match : bind(m.seld);
  out[static_cast<std::size_t>(lay.rem)] = bind(m.rem);
  out[static_cast<std::size_t>(lay.prio)] = bind(m.prio);
  return out;
}

/// Whether a delivery sends RECV_OK back to the originating send port.
enum class NotifyMode {
  Always,           // buffered channels: every delivery notifies the sender
  Never,            // event pool: publishers are acked at publish time
  UnlessDupMarked,  // DuplicatingFifo: injected duplicate copies carry a
                    // marker in the (otherwise unused) rem field and must
                    // not produce a second RECV_OK, which would wedge
                    // synchronous send ports awaiting exactly one
};

/// The request-handling selection shared by buffered channels and the event
/// pool: four (selective x remove) combinations, each trying to retrieve a
/// matching message from `queue` and falling back to OUT_FAIL. `unordered`
/// fetches with bag semantics (any matching message, not the oldest).
StmtPtr handle_request(ProcBuilder& b, const ReqVars& rq, const MsgVars& m,
                       Ex queue, LVar send_sig, LVar recv_sig, LVar recv_data,
                       const QueueLayout& lay, NotifyMode notify,
                       bool unordered = false) {
  auto deliver = [&]() {
    // Duplicate-marked copies are delivered with rem scrubbed back to 0 so
    // a duplicate is observably identical to its original.
    std::vector<Ex> fields = msg_fields(b, m);
    if (notify == NotifyMode::UnlessDupMarked) fields[4] = b.k(0);
    Seq s = seq(
        send(b.l(recv_sig), {b.k(OUT_OK), b.k(-1)}, "channel: OUT_OK"),
        send(b.l(recv_data), std::move(fields), "channel: deliver message"));
    switch (notify) {
      case NotifyMode::Always:
        s.push_back(send(b.l(send_sig), {b.k(RECV_OK), b.l(m.snd)},
                         "channel: RECV_OK to send port"));
        break;
      case NotifyMode::Never:
        break;
      case NotifyMode::UnlessDupMarked:
        s.push_back(if_(
            alt(seq(guard(b.l(m.rem) == b.k(0)),
                    send(b.l(send_sig), {b.k(RECV_OK), b.l(m.snd)},
                         "channel: RECV_OK to send port"))),
            alt_else(seq(skip()))));
        break;
    }
    return s;
  };
  auto out_fail = [&]() {
    return seq(send(b.l(recv_sig), {b.k(OUT_FAIL), b.k(-1)},
                    "channel: OUT_FAIL"));
  };
  auto fetch_case = [&](bool selective, bool remove) {
    const Ex cond = (b.l(rq.sel) == b.k(selective ? 1 : 0)) &&
                    (b.l(rq.rem) == b.k(remove ? 1 : 0));
    RecvArg seld_arg = match(b.l(rq.seld));
    RecvOpts ropts;
    ropts.random = selective;  // `??`: first matching anywhere
    ropts.copy = !remove;
    ropts.unordered = unordered;
    StmtPtr fetch =
        recv(queue, bind_layout(m, lay, selective ? &seld_arg : nullptr),
             "channel: fetch from queue", ropts);
    return alt(seq(
        guard(cond),
        if_(alt(model::concat(seq(std::move(fetch)), deliver())),
            alt_else(out_fail()))));
  };
  return if_(fetch_case(false, true), fetch_case(false, false),
             fetch_case(true, true), fetch_case(true, false));
}

}  // namespace

int build_buffered_channel(SystemSpec& sys, ChannelKind kind,
                           const std::string& name) {
  PNP_CHECK(kind == ChannelKind::Fifo || kind == ChannelKind::Priority ||
                kind == ChannelKind::LossyFifo ||
                is_fault_channel(kind),
            "build_buffered_channel: wrong kind");
  ProcBuilder b(sys, name);
  const LVar send_sig = b.param("sendSig");
  const LVar send_data = b.param("sendData");
  const LVar recv_sig = b.param("recvSig");
  const LVar recv_data = b.param("recvData");
  const LVar queue = b.param("queue");  // per-instance internal channel id
  const ReqVars rq = declare_req(b);
  const MsgVars m = declare_msg(b, "m");

  const QueueLayout& lay =
      kind == ChannelKind::Priority ? kPrioLayout : kFifoLayout;
  const Ex q = b.l(queue);

  // -- send side --------------------------------------------------------------
  Seq send_side = seq(recv(b.l(send_data), bind_msg(m), "channel: accept message"));
  if (kind == ChannelKind::LossyFifo) {
    // Always acknowledge; the internal channel is lossy, so a full queue
    // silently drops (paper section 3.3's third kind of channel).
    send_side = model::concat(
        std::move(send_side),
        seq(send(b.l(send_sig), {b.k(IN_OK), b.l(m.snd)}, "channel: IN_OK"),
            send(q, to_layout(b, m, lay), "channel: store (may drop)")));
  } else if (kind == ChannelKind::DroppingFifo) {
    // Fault injection: accept and acknowledge every message, then
    // nondeterministically drop it -- ANY message, not just on overflow.
    // (A full queue can only drop, like LossyFifo.)
    send_side = model::concat(
        std::move(send_side),
        seq(send(b.l(send_sig), {b.k(IN_OK), b.l(m.snd)}, "channel: IN_OK"),
            if_(alt(seq(guard(!b.full(q)),
                        send(q, to_layout(b, m, lay), "channel: store"))),
                alt(seq(skip())))));
  } else if (kind == ChannelKind::DuplicatingFifo) {
    // Fault injection: store normally, then nondeterministically store a
    // second copy tagged in the rem field (components always send rem=0,
    // so the field is free). The tag suppresses the duplicate's RECV_OK
    // (see NotifyMode::UnlessDupMarked) and is scrubbed on delivery.
    std::vector<Ex> dup = to_layout(b, m, lay);
    dup[static_cast<std::size_t>(lay.rem)] = b.k(1);
    send_side = model::concat(
        std::move(send_side),
        seq(if_(alt(seq(guard(!b.full(q)),
                        send(b.l(send_sig), {b.k(IN_OK), b.l(m.snd)},
                             "channel: IN_OK"),
                        send(q, to_layout(b, m, lay), "channel: store"),
                        if_(alt(seq(guard(!b.full(q)),
                                    send(q, std::move(dup),
                                         "channel: store duplicate"))),
                            alt(seq(skip()))))),
                alt_else(seq(send(b.l(send_sig), {b.k(IN_FAIL), b.l(m.snd)},
                                  "channel: IN_FAIL (queue full)"))))));
  } else {
    SendOpts sopts;
    sopts.sorted = (kind == ChannelKind::Priority);
    send_side = model::concat(
        std::move(send_side),
        seq(if_(alt(seq(guard(!b.full(q)),
                        send(b.l(send_sig), {b.k(IN_OK), b.l(m.snd)},
                             "channel: IN_OK"),
                        send(q, to_layout(b, m, lay), "channel: store", sopts))),
                alt_else(seq(send(b.l(send_sig), {b.k(IN_FAIL), b.l(m.snd)},
                                  "channel: IN_FAIL (queue full)"))))));
  }

  const NotifyMode notify = kind == ChannelKind::DuplicatingFifo
                                ? NotifyMode::UnlessDupMarked
                                : NotifyMode::Always;
  return b.finish(seq(end_label(), do_(
      alt(seq(accept_request(b, recv_data, rq),
              handle_request(b, rq, m, q, send_sig, recv_sig, recv_data, lay,
                             notify,
                             /*unordered=*/kind == ChannelKind::ReorderingFifo))),
      alt(std::move(send_side)))));
}

int build_opt_send_port(SystemSpec& sys, SendPortKind kind,
                        bool priority_layout, const std::string& name) {
  PNP_CHECK(kind == SendPortKind::SynBlocking ||
                kind == SendPortKind::AsynBlocking,
            "optimized send ports exist only for blocking kinds");
  ProcBuilder b(sys, name);
  const LVar comp_sig = b.param("compSig");
  const LVar comp_data = b.param("compData");
  const LVar notify_sig = b.param("notifySig");
  const LVar queue = b.param("queue");
  const MsgVars m = declare_msg(b, "m");
  const QueueLayout& lay = priority_layout ? kPrioLayout : kFifoLayout;

  auto accept = [&]() {
    return recv(b.l(comp_data), bind_msg(m),
                "port: accept message from component");
  };
  // stamp our pid as sender id, then push straight into the native queue
  // (blocks exactly when the faithful port would spin on IN_FAIL)
  auto push = [&]() {
    std::vector<Ex> fields(6, b.k(0));
    fields[static_cast<std::size_t>(lay.data)] = b.l(m.data);
    fields[static_cast<std::size_t>(lay.snd)] = b.self();
    fields[static_cast<std::size_t>(lay.sel)] = b.l(m.sel);
    fields[static_cast<std::size_t>(lay.seld)] = b.l(m.seld);
    fields[static_cast<std::size_t>(lay.rem)] = b.l(m.rem);
    fields[static_cast<std::size_t>(lay.prio)] = b.l(m.prio);
    SendOpts so;
    so.sorted = priority_layout;
    return send(b.l(queue), std::move(fields),
                "port: store message in connector queue", so);
  };

  if (kind == SendPortKind::SynBlocking) {
    return b.finish(seq(end_label(), do_(alt(seq(
        accept(), push(),
        sig_from_chan(b, notify_sig, RECV_OK, "port: RECV_OK (delivered)"),
        send_status(b, comp_sig, SEND_SUCC))))));
  }
  // AsynBlocking: stored == confirmed; drain later delivery notifications.
  return b.finish(seq(end_label(), do_(
      drain_recv_ok(b, notify_sig),
      alt(seq(accept(),
              do_(alt(seq(push(), break_())),
                  drain_recv_ok(b, notify_sig)),
              send_status(b, comp_sig, SEND_SUCC))))));
}

int build_opt_recv_port(SystemSpec& sys, bool priority_layout,
                        const std::string& name) {
  ProcBuilder b(sys, name);
  const LVar comp_sig = b.param("compSig");
  const LVar comp_data = b.param("compData");
  const LVar notify_sig = b.param("notifySig");
  const LVar queue = b.param("queue");
  const MsgVars m = declare_msg(b, "m");
  const QueueLayout& lay = priority_layout ? kPrioLayout : kFifoLayout;

  return b.finish(seq(end_label(), do_(alt(seq(
      recv(b.l(comp_data), {any(), any(), any(), any(), any(), any()},
           "port: accept receive request from component"),
      // pull from the native queue: blocks exactly where the faithful port
      // would spin on OUT_FAIL
      recv(b.l(queue), bind_layout(m, lay, nullptr),
           "port: take message from connector queue"),
      send(b.l(comp_sig), {b.k(RECV_SUCC), b.k(-1)},
           "port: RecvStatus RECV_SUCC"),
      send(b.l(comp_data), msg_fields(b, m),
           "port: deliver message to component"),
      // notify the originating send port of the delivery (synchronous
      // senders block on this; asynchronous ones drain it)
      send(b.l(notify_sig), {b.k(RECV_OK), b.l(m.snd)},
           "port: RECV_OK to send port"))))));
}

int build_event_pool(SystemSpec& sys, int n_subscribers,
                     const std::string& name) {
  PNP_CHECK(n_subscribers >= 1, "event pool needs at least one subscriber");
  ProcBuilder b(sys, name);
  const LVar pub_sig = b.param("pubSig");
  const LVar pub_data = b.param("pubData");
  std::vector<LVar> sub_sig, sub_data, queues;
  for (int i = 0; i < n_subscribers; ++i) {
    sub_sig.push_back(b.param("subSig" + std::to_string(i)));
    sub_data.push_back(b.param("subData" + std::to_string(i)));
    queues.push_back(b.param("queue" + std::to_string(i)));
  }
  const ReqVars rq = declare_req(b);
  const MsgVars m = declare_msg(b, "m");

  // publish branch: ack, then fan out to every subscriber queue (queues are
  // lossy, so a full queue drops the event for that subscriber only).
  Seq publish = seq(
      recv(b.l(pub_data), bind_msg(m), "pool: accept published event"),
      send(b.l(pub_sig), {b.k(IN_OK), b.l(m.snd)}, "pool: IN_OK to publisher"));
  for (int i = 0; i < n_subscribers; ++i)
    publish.push_back(send(b.l(queues[static_cast<std::size_t>(i)]),
                           to_layout(b, m, kFifoLayout),
                           "pool: fan out to subscriber " + std::to_string(i)));

  auto loop = do_(alt(std::move(publish)));
  for (int i = 0; i < n_subscribers; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    loop->branches.push_back(alt(seq(
        accept_request(b, sub_data[ui], rq),
        handle_request(b, rq, m, b.l(queues[ui]), pub_sig, sub_sig[ui],
                       sub_data[ui], kFifoLayout, NotifyMode::Never))));
  }
  return b.finish(seq(end_label(), std::move(loop)));
}

}  // namespace blocks
}  // namespace pnp
