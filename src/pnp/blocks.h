// The building-block library (paper Fig. 1): send ports, receive ports, and
// channels, each available as a pre-defined, reusable formal model
// (a proctype parameterized by the rendezvous channels that wire it up).
//
// Port proctypes take four parameters:
//   (component_sig, component_data, channel_sig, channel_data)
// Channel proctypes take
//   (sender_sig, sender_data, receiver_sig, receiver_data [, internal...])
// so one proctype serves every instance of the same block configuration --
// the generator only spawns it with different channel ids. This is what
// makes the models reusable across systems and design iterations.
//
// Protocol notes (deviations from the paper's listings are deliberate and
// documented in DESIGN.md):
//  * IN_OK / IN_FAIL / RECV_OK are tagged with the originating send port's
//    pid; OUT_OK / OUT_FAIL are untagged (-1), because at most one receive
//    port can be awaiting them at a time.
//  * Asynchronous ports carry "drain" alternatives that consume delivery
//    notifications (RECV_OK) which arrive after the port has already
//    reported SEND_SUCC -- without them the paper's Figs. 7+11 composition
//    can deadlock in an interleaving where the channel offers RECV_OK while
//    the port offers the next message.
#pragma once

#include <string>

#include "model/builder.h"
#include "pnp/interfaces.h"

namespace pnp {

/// Send-port kinds (paper Fig. 1, left column, plus the fault-injection
/// TimeoutRetry wrapper).
enum class SendPortKind : std::uint8_t {
  AsynNonblocking,  // confirm immediately; message may be lost
  AsynBlocking,     // confirm once the channel stored the message
  AsynChecking,     // confirm or report failure based on channel acceptance
  SynBlocking,      // confirm once a receiver got the message (retry on full)
  SynChecking,      // like checking, but confirm only after delivery
  TimeoutRetry,     // retry on IN_FAIL up to a bound, then report SEND_FAIL
};

/// Receive-port kinds (paper Fig. 1, middle column).
enum class RecvPortKind : std::uint8_t {
  Blocking,     // wait until a message can be retrieved
  Nonblocking,  // report RECV_FAIL (with a stub message) when none is ready
};

/// Copy/remove and selective variants of receive ports.
struct RecvPortOpts {
  bool remove{true};     // false = copy receive (message stays buffered)
  bool selective{false}; // match only messages tagged with the request's tag

  friend bool operator==(const RecvPortOpts&, const RecvPortOpts&) = default;
};

/// Channel kinds (paper Fig. 1 plus the section 3.3 lossy variant, the
/// section 2.2/6 publish-subscribe extension, and fault-injection variants
/// for resilience checking).
enum class ChannelKind : std::uint8_t {
  SingleSlot,       // 1-message buffer, IN_FAIL when occupied
  Fifo,             // N-slot FIFO queue
  Priority,         // N-slot priority queue (lower priority value first)
  LossyFifo,        // N-slot FIFO that silently drops when full (always IN_OK)
  EventPool,        // pub/sub event pool: fan-out to per-subscriber queues
  // -- fault-injection variants (see DESIGN.md) ------------------------------
  DuplicatingFifo,  // FIFO that may deliver any message twice
  ReorderingFifo,   // FIFO with nondeterministic dequeue order
  DroppingFifo,     // FIFO that may drop ANY message (not just on overflow)
};

/// True for the fault-injection channel kinds used by resilience checking.
bool is_fault_channel(ChannelKind k);

struct ChannelSpec {
  ChannelKind kind{ChannelKind::SingleSlot};
  int capacity{1};  // per-queue capacity for the buffered kinds

  friend bool operator==(const ChannelSpec&, const ChannelSpec&) = default;
};

const char* to_string(SendPortKind k);
const char* to_string(RecvPortKind k);
const char* to_string(ChannelKind k);
std::string to_string(const ChannelSpec& c);
std::string to_string(RecvPortKind k, const RecvPortOpts& o);

namespace blocks {

/// Builds the proctype for a send port of the given kind; returns its index.
int build_send_port(model::SystemSpec& sys, SendPortKind kind,
                    const std::string& name);

/// Builds the proctype for a receive port; returns its index.
int build_recv_port(model::SystemSpec& sys, RecvPortKind kind,
                    const RecvPortOpts& opts, const std::string& name);

/// Builds the single-slot buffer channel proctype (paper Fig. 11).
int build_single_slot(model::SystemSpec& sys, const std::string& name);

/// Builds a buffered channel proctype (Fifo / Priority / LossyFifo). The
/// proctype takes a fifth parameter: the id of a per-instance internal
/// buffered model channel that realizes the store (see DESIGN.md E9 for the
/// native-buffer discussion mirroring the paper's section 6 remark).
int build_buffered_channel(model::SystemSpec& sys, ChannelKind kind,
                           const std::string& name);

// -- optimized connector models (paper section 6) -----------------------------
// The faithful port/channel models busy-poll: a blocking receive port keeps
// re-sending its request until the channel answers OUT_OK, and a blocking
// send port retries on IN_FAIL. That is what the paper's Figs. 6/8 do, and
// it is also why section 6 warns that composed connectors "exacerbate the
// state explosion" and suggests substituting "specially optimized models"
// for recognized connector configurations.
//
// These optimized variants implement that substitution: the connector's
// channel PROCESS disappears -- ports push to and pull from the native
// internal queue directly (a native buffered send blocks exactly when the
// faithful model would spin on IN_FAIL), and the receive port notifies
// synchronous senders with RECV_OK itself. Observable behaviour at the
// standard component interfaces is unchanged for configurations without
// failure reporting:
//   senders   in { SynBlocking, AsynBlocking }
//   receivers =  Blocking + remove + non-selective
//   channels  in { SingleSlot, Fifo, Priority }
// The generator performs this substitution when asked (GenOptions).
//
// Optimized port parameters: (comp_sig, comp_data, notify_sig, queue) where
// notify_sig is the connector-wide RECV_OK wire and queue the internal
// buffered channel (capacity = the channel spec's; priority connectors
// store priority-first so the native sorted send orders correctly).

/// Optimized send port (kind must be SynBlocking or AsynBlocking).
int build_opt_send_port(model::SystemSpec& sys, SendPortKind kind,
                        bool priority_layout, const std::string& name);

/// Optimized blocking receive port (remove, non-selective).
int build_opt_recv_port(model::SystemSpec& sys, bool priority_layout,
                        const std::string& name);

/// Builds an event-pool proctype for exactly `n_subscribers` subscribers.
/// Parameters: (pub_sig, pub_data, then per subscriber: sub_sig, sub_data,
/// queue). Publishing fans out to every subscriber queue (lossy: events are
/// dropped for subscribers whose queue is full) and acknowledges the
/// publisher immediately -- publish/subscribe connectors therefore require
/// asynchronous send ports.
int build_event_pool(model::SystemSpec& sys, int n_subscribers,
                     const std::string& name);

}  // namespace blocks
}  // namespace pnp
