// The one definition of execution budgets. VerifyOptions, SuiteOptions (via
// its embedded VerifyOptions), ResilienceOptions, ltl::CheckOptions and
// Session's RunConfig all consume these fields from here instead of each
// re-declaring threads/max_states/deadline/memory; the option structs
// inherit ExecBudget, so the historical field names (`opt.threads`,
// `opt.max_states`, ...) keep working unchanged -- they are now the
// deprecated spellings of `opt` *as* an ExecBudget.
#pragma once

#include <cstdint>

namespace pnp {

struct ExecBudget {
  /// Stored-state cap per exploration stage.
  std::uint64_t max_states = 20'000'000;
  /// Wall-clock budget per exploration stage; 0 = unlimited.
  double deadline_seconds = 0.0;
  /// Approximate memory cap per exploration stage; 0 = unlimited.
  std::uint64_t memory_budget_bytes = 0;
  /// Worker threads: 1 = sequential, 0 = hardware concurrency.
  int threads = 1;
};

}  // namespace pnp
