// The one definition of execution budgets. VerifyOptions, SuiteOptions (via
// its embedded VerifyOptions), ResilienceOptions, ltl::CheckOptions and
// Session's RunConfig all consume these fields from here instead of each
// re-declaring threads/max_states/deadline/memory; the option structs
// inherit ExecBudget, so the historical field names (`opt.threads`,
// `opt.max_states`, ...) keep working unchanged -- they are now the
// deprecated spellings of `opt` *as* an ExecBudget.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pnp {

struct ExecBudget {
  /// Stored-state cap per exploration stage.
  std::uint64_t max_states = 20'000'000;
  /// Wall-clock budget per exploration stage; 0 = unlimited.
  double deadline_seconds = 0.0;
  /// Approximate memory cap per exploration stage; 0 = unlimited.
  std::uint64_t memory_budget_bytes = 0;
  /// Worker threads: 1 = sequential, 0 = hardware concurrency.
  int threads = 1;

  // -- durability (none of these can change a verdict, so none of them
  //    participate in config digests or cache keys) ------------------------

  /// Directory for mmap'd spill files. When set, an exact search that hits
  /// the memory budget moves its visited-key slabs and compressor intern
  /// chunks to disk-backed storage and keeps going ("exact-spill") instead
  /// of truncating and degrading to bitstate. Empty = never spill.
  std::string spill_dir;
  /// Directory for pnp.ckpt.v1 checkpoint snapshots. Empty = no
  /// checkpointing.
  std::string checkpoint_dir;
  /// Stored-state stride between periodic checkpoints; 0 with a
  /// checkpoint_dir set still writes a final checkpoint on interrupt,
  /// deadline, or truncation.
  std::uint64_t checkpoint_every = 0;
  /// Cooperative interrupt flag (SIGINT/SIGTERM in pnpv): when it becomes
  /// true the engines write a final checkpoint (if configured), stop, and
  /// report TruncationReason::Interrupted. Not owned; may be null.
  const std::atomic<bool>* interrupt = nullptr;
  /// Resume from the matching pnp.ckpt.v1 snapshot in checkpoint_dir when
  /// one exists (checksums and configuration digest are validated; a
  /// mismatch is a ModelError, never a silent fresh start). When no
  /// snapshot exists yet the run simply starts from scratch, so retry
  /// loops can pass --resume unconditionally.
  bool resume = false;
};

}  // namespace pnp
