#include "pnp/generator.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "pml/parser.h"
#include "support/panic.h"

namespace pnp {

std::string GenStats::summary() const {
  std::ostringstream os;
  os << "component models: " << component_models_built << " built, "
     << component_models_reused << " reused; block models: "
     << block_models_built << " built, " << block_models_reused
     << " reused; channels: " << channels_declared << " declared, "
     << channels_reused << " reused; proctypes compiled: "
     << proctypes_compiled;
  if (connectors_optimized > 0)
    os << "; connectors optimized: " << connectors_optimized;
  os << "; " << seconds * 1e3 << " ms";
  return os.str();
}

PortEndpoint ComponentContext::port(const std::string& port_name) const {
  auto it = endpoints_.find(port_name);
  PNP_CHECK(it != endpoints_.end(),
            "component has no attachment named '" + port_name + "'");
  return it->second;
}

model::GVar ComponentContext::global(const std::string& name) const {
  return model::GVar{gen_->global_slot(name)};
}

expr::Ex ComponentContext::g(const std::string& name) const {
  return b_->g(model::GVar{gen_->global_slot(name)});
}

std::unordered_map<std::string, int> ComponentContext::global_slots() const {
  return gen_->global_cache_;
}

int ModelGenerator::ensure_chan(const std::string& key, const std::string& name,
                                int capacity, int arity, bool lossy) {
  auto it = chan_cache_.find(key);
  if (it != chan_cache_.end()) {
    ++last_.channels_reused;
    return it->second;
  }
  const int id = sys_.add_channel(name, capacity, arity, lossy);
  chan_cache_.emplace(key, id);
  ++last_.channels_declared;
  return id;
}

template <typename BuildFn>
int ModelGenerator::ensure_proctype(const std::string& key, BuildFn&& build) {
  auto it = proctype_cache_.find(key);
  if (it != proctype_cache_.end()) {
    ++last_.block_models_reused;
    return it->second;
  }
  const int idx = build();
  proctype_cache_.emplace(key, idx);
  ++last_.block_models_built;
  return idx;
}

int ModelGenerator::ensure_global(const GlobalDecl& g) {
  auto it = global_cache_.find(g.name);
  if (it != global_cache_.end()) return it->second;
  const int slot = sys_.add_global(g.name, g.init);
  global_cache_.emplace(g.name, slot);
  return slot;
}

int ModelGenerator::global_slot(const std::string& name) const {
  auto it = global_cache_.find(name);
  PNP_CHECK(it != global_cache_.end(), "unknown architecture global: " + name);
  return it->second;
}

expr::Ex ModelGenerator::gx(const std::string& global_name) {
  return expr::wrap(sys_.exprs, sys_.exprs.global(global_slot(global_name)));
}

expr::Ex ModelGenerator::kx(model::Value v) {
  return expr::wrap(sys_.exprs, sys_.exprs.konst(v));
}

int ModelGenerator::add_prop(const std::string& name, expr::Ex e) {
  return props_.add(name, e.ref);
}

expr::Ex ModelGenerator::parse_expr_text(const std::string& text) {
  return expr::wrap(sys_.exprs, pml::parse_global_expr(sys_, text));
}

kernel::Machine ModelGenerator::generate(const Architecture& arch,
                                         GenOptions opts) {
  arch.validate();
  const auto t0 = std::chrono::steady_clock::now();
  last_ = GenStats{};

  // Which connectors qualify for the optimized (section 6) substitution?
  auto optimizable = [&](int ci) {
    if (!opts.optimize_connectors) return false;
    const ChannelSpec& spec =
        arch.connectors()[static_cast<std::size_t>(ci)].channel;
    if (spec.kind != ChannelKind::SingleSlot &&
        spec.kind != ChannelKind::Fifo && spec.kind != ChannelKind::Priority)
      return false;
    for (const Attachment& a : arch.attachments()) {
      if (a.connector != ci) continue;
      if (a.is_sender) {
        if (a.send_kind != SendPortKind::SynBlocking &&
            a.send_kind != SendPortKind::AsynBlocking)
          return false;
      } else {
        if (a.recv_kind != RecvPortKind::Blocking || !a.recv_opts.remove ||
            a.recv_opts.selective)
          return false;
      }
    }
    return true;
  };
  std::vector<bool> opt_conn(arch.connectors().size(), false);
  for (std::size_t ci = 0; ci < arch.connectors().size(); ++ci) {
    opt_conn[ci] = optimizable(static_cast<int>(ci));
    if (opt_conn[ci]) ++last_.connectors_optimized;
  }

  register_signals(sys_);
  sys_.processes.clear();

  for (const GlobalDecl& g : arch.globals()) ensure_global(g);

  struct Spawn {
    std::string name;
    int proctype;
    std::vector<model::Value> args;
  };
  std::vector<Spawn> component_spawns, port_spawns, channel_spawns;

  // -- connectors: channel declarations + channel process ---------------------
  struct ConnWiring {
    int send_sig{-1}, send_data{-1};
    // one pair for ordinary channels; one per subscriber for event pools
    std::vector<std::pair<int, int>> recv_pairs;
    bool per_subscriber{false};
    // optimized (section 6) connectors: no channel process, ports use the
    // native queue directly and send_sig doubles as the RECV_OK wire
    bool optimized{false};
    int queue{-1};
    bool priority{false};
  };
  std::vector<ConnWiring> wiring(arch.connectors().size());

  for (std::size_t ci = 0; ci < arch.connectors().size(); ++ci) {
    const ConnectorDecl& conn = arch.connectors()[ci];
    const ChannelSpec& spec = conn.channel;
    ConnWiring& w = wiring[ci];
    const std::string base = "conn:" + conn.name;
    w.send_sig = ensure_chan(base + ":sSig", conn.name + ".sSig", 0,
                             kSignalArity, false);
    w.send_data = ensure_chan(base + ":sData", conn.name + ".sData", 0,
                              kDataArity, false);

    if (spec.kind == ChannelKind::EventPool) {
      w.per_subscriber = true;
      int n_subs = 0;
      for (const Attachment* a : arch.attachments_of(static_cast<int>(ci)))
        if (!a->is_sender) ++n_subs;
      std::vector<model::Value> args = {w.send_sig, w.send_data};
      for (int i = 0; i < n_subs; ++i) {
        const std::string si = std::to_string(i);
        const int rs = ensure_chan(base + ":rSig" + si,
                                   conn.name + ".rSig" + si, 0, kSignalArity,
                                   false);
        const int rd = ensure_chan(base + ":rData" + si,
                                   conn.name + ".rData" + si, 0, kDataArity,
                                   false);
        const int q = ensure_chan(
            base + ":q" + si + ":cap" + std::to_string(spec.capacity),
            conn.name + ".q" + si, spec.capacity, kDataArity, /*lossy=*/true);
        w.recv_pairs.emplace_back(rs, rd);
        args.push_back(rs);
        args.push_back(rd);
        args.push_back(q);
      }
      const int pt = ensure_proctype(
          "block:EventPool:" + std::to_string(n_subs), [&] {
            return blocks::build_event_pool(
                sys_, n_subs, "EventPool" + std::to_string(n_subs));
          });
      channel_spawns.push_back({conn.name + ".pool", pt, std::move(args)});
      continue;
    }

    const int rs = ensure_chan(base + ":rSig", conn.name + ".rSig", 0,
                               kSignalArity, false);
    const int rd = ensure_chan(base + ":rData", conn.name + ".rData", 0,
                               kDataArity, false);
    w.recv_pairs.emplace_back(rs, rd);

    if (opt_conn[ci]) {
      // section 6 substitution: the connector keeps only a native queue and
      // the RECV_OK notification wire; ports are wired straight to them
      w.optimized = true;
      w.priority = spec.kind == ChannelKind::Priority;
      const int cap = spec.kind == ChannelKind::SingleSlot ? 1 : spec.capacity;
      w.queue = ensure_chan(
          base + ":optq:" + to_string(spec.kind) + ":cap" + std::to_string(cap),
          conn.name + ".queue", cap, kDataArity, /*lossy=*/false);
      continue;
    }
    if (spec.kind == ChannelKind::SingleSlot) {
      const int pt = ensure_proctype("block:SingleSlot", [&] {
        return blocks::build_single_slot(sys_, "SingleSlotBuffer");
      });
      channel_spawns.push_back(
          {conn.name + ".channel", pt,
           {w.send_sig, w.send_data, rs, rd}});
    } else {
      const bool lossy = spec.kind == ChannelKind::LossyFifo;
      const int q = ensure_chan(
          base + ":q:" + to_string(spec.kind) + ":cap" +
              std::to_string(spec.capacity),
          conn.name + ".q", spec.capacity, kDataArity, lossy);
      const int pt = ensure_proctype(
          std::string("block:chan:") + to_string(spec.kind), [&] {
            return blocks::build_buffered_channel(
                sys_, spec.kind,
                std::string(to_string(spec.kind)) + "Channel");
          });
      channel_spawns.push_back(
          {conn.name + ".channel", pt, {w.send_sig, w.send_data, rs, rd, q}});
    }
  }

  // -- attachments: ports + component-side endpoints ---------------------------
  // Components keep their endpoints across connector edits: the endpoint
  // channels are cached by (component, port name).
  std::vector<std::unordered_map<std::string, PortEndpoint>> endpoints(
      arch.components().size());
  std::vector<int> next_subscriber(arch.connectors().size(), 0);

  for (const Attachment& a : arch.attachments()) {
    const std::string& comp_name =
        arch.components()[static_cast<std::size_t>(a.component)].name;
    const std::string att = comp_name + "." + a.port_name;
    const int comp_sig =
        ensure_chan("att:" + att + ":sig", att + ".sig", 0, kSignalArity, false);
    const int comp_data =
        ensure_chan("att:" + att + ":data", att + ".data", 0, kDataArity, false);
    endpoints[static_cast<std::size_t>(a.component)][a.port_name] = {
        model::Chan{comp_sig}, model::Chan{comp_data}};

    const ConnWiring& w = wiring[static_cast<std::size_t>(a.connector)];
    int chan_sig, chan_data;
    if (a.is_sender) {
      chan_sig = w.send_sig;
      chan_data = w.send_data;
    } else if (w.per_subscriber) {
      const int idx = next_subscriber[static_cast<std::size_t>(a.connector)]++;
      chan_sig = w.recv_pairs[static_cast<std::size_t>(idx)].first;
      chan_data = w.recv_pairs[static_cast<std::size_t>(idx)].second;
    } else {
      chan_sig = w.recv_pairs[0].first;
      chan_data = w.recv_pairs[0].second;
    }

    int pt;
    const ConnWiring& cw = wiring[static_cast<std::size_t>(a.connector)];
    if (cw.optimized) {
      const std::string suffix = cw.priority ? ":prio" : ":fifo";
      if (a.is_sender) {
        pt = ensure_proctype(
            std::string("blockopt:send:") + to_string(a.send_kind) + suffix,
            [&] {
              return blocks::build_opt_send_port(
                  sys_, a.send_kind, cw.priority,
                  std::string("Opt") + to_string(a.send_kind) +
                      (cw.priority ? "Prio" : ""));
            });
      } else {
        pt = ensure_proctype(std::string("blockopt:recv:Bl") + suffix, [&] {
          return blocks::build_opt_recv_port(
              sys_, cw.priority,
              std::string("OptBlRecv") + (cw.priority ? "Prio" : ""));
        });
      }
      port_spawns.push_back(
          {att + ".port", pt, {comp_sig, comp_data, cw.send_sig, cw.queue}});
      continue;
    }
    if (a.is_sender) {
      pt = ensure_proctype(std::string("block:send:") + to_string(a.send_kind),
                           [&] {
                             return blocks::build_send_port(
                                 sys_, a.send_kind, to_string(a.send_kind));
                           });
    } else {
      pt = ensure_proctype(
          "block:recv:" + to_string(a.recv_kind, a.recv_opts), [&] {
            return blocks::build_recv_port(sys_, a.recv_kind, a.recv_opts,
                                           to_string(a.recv_kind, a.recv_opts));
          });
    }
    std::vector<model::Value> pargs = {comp_sig, comp_data, chan_sig,
                                       chan_data};
    // the retry bound is a spawn argument, so one TimeoutRetry proctype
    // serves every bound used in the architecture
    if (a.is_sender && a.send_kind == SendPortKind::TimeoutRetry)
      pargs.push_back(a.send_retries);
    port_spawns.push_back({att + ".port", pt, std::move(pargs)});
  }

  // -- components ---------------------------------------------------------------
  for (std::size_t k = 0; k < arch.components().size(); ++k) {
    const ComponentDecl& comp = arch.components()[k];
    std::string key = "comp:" + comp.name + ":";
    {
      // endpoint ids are part of the identity: a reattachment that changes
      // them requires regenerating the component model
      std::vector<std::string> parts;
      for (const auto& [pname, ep] : endpoints[k])
        parts.push_back(pname + "@" + std::to_string(ep.sig.id) + "," +
                        std::to_string(ep.data.id));
      std::sort(parts.begin(), parts.end());
      for (const std::string& p : parts) key += p + ";";
    }
    // a crash-restart wrapper changes the compiled CFG, so crashing and
    // fault-free variants are distinct cached models
    if (comp.max_crashes > 0)
      key += ":crash" + std::to_string(comp.max_crashes);
    int pt;
    auto it = component_cache_.find(key);
    if (it != component_cache_.end()) {
      pt = it->second;
      ++last_.component_models_reused;
    } else {
      model::ProcBuilder b(sys_, "C_" + comp.name);
      ComponentContext ctx;
      ctx.b_ = &b;
      ctx.gen_ = this;
      ctx.endpoints_ = endpoints[k];
      model::Seq body = comp.fn(ctx);
      if (comp.max_crashes > 0) {
        // The crash budget must be a declared local (frame layout is sized
        // from the ProcType); the Crash transitions themselves are injected
        // after compilation.
        const model::LVar budget =
            b.local("_crash_budget", comp.max_crashes);
        pt = b.finish(std::move(body));
        crash_budget_slots_.emplace(pt, budget.slot);
      } else {
        pt = b.finish(std::move(body));
      }
      component_cache_.emplace(key, pt);
      ++last_.component_models_built;
    }
    component_spawns.push_back({comp.name, pt, {}});
  }

  // -- spawn (components first: lowest pids, nicest MSC columns) ---------------
  for (auto* list : {&component_spawns, &port_spawns, &channel_spawns})
    for (Spawn& s : *list)
      sys_.spawn(std::move(s.name), s.proctype, std::move(s.args));

  // -- compile only what is new -------------------------------------------------
  sys_.validate();
  while (compiled_.size() < sys_.proctypes.size()) {
    const int pti = static_cast<int>(compiled_.size());
    compiled_.push_back(compile::compile_proc(sys_, pti));
    auto cit = crash_budget_slots_.find(pti);
    if (cit != crash_budget_slots_.end())
      compile::inject_crash_restart(compiled_.back(), cit->second);
    ++last_.proctypes_compiled;
  }

  last_.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  total_.component_models_built += last_.component_models_built;
  total_.component_models_reused += last_.component_models_reused;
  total_.block_models_built += last_.block_models_built;
  total_.block_models_reused += last_.block_models_reused;
  total_.channels_declared += last_.channels_declared;
  total_.channels_reused += last_.channels_reused;
  total_.proctypes_compiled += last_.proctypes_compiled;
  total_.seconds += last_.seconds;

  return kernel::Machine(sys_, compiled_);
}

std::string connector_slice_text(const Architecture& arch, int connector) {
  PNP_CHECK(connector >= 0 &&
                connector < static_cast<int>(arch.connectors().size()),
            "connector_slice_text: unknown connector");
  const ConnectorDecl& conn =
      arch.connectors()[static_cast<std::size_t>(connector)];
  std::ostringstream os;
  os << "connector " << conn.name << " kind=" << to_string(conn.channel.kind)
     << " cap=" << conn.channel.capacity << "\n";
  // attachments_of is senders-first in attachment declaration order -- the
  // same order the generator wires subscribers, so it is part of the slice
  for (const Attachment* a : arch.attachments_of(connector)) {
    const std::string& comp =
        arch.components()[static_cast<std::size_t>(a->component)].name;
    if (a->is_sender) {
      os << "  send " << comp << "." << a->port_name
         << " kind=" << to_string(a->send_kind);
      if (a->send_kind == SendPortKind::TimeoutRetry)
        os << " retries=" << a->send_retries;
    } else {
      os << "  recv " << comp << "." << a->port_name
         << " kind=" << to_string(a->recv_kind, a->recv_opts);
    }
    os << "\n";
  }
  return os.str();
}

std::string architecture_slice_text(const Architecture& arch) {
  std::ostringstream os;
  os << "architecture " << arch.name() << "\n";
  for (const GlobalDecl& g : arch.globals())
    os << "global " << g.name << "=" << g.init << "\n";
  for (const ComponentDecl& c : arch.components()) {
    os << "component " << c.name << " crashes=" << c.max_crashes;
    // Behaviour identity: the source fingerprint when one exists (ADL
    // designs), else the component name -- C++-defined behaviours have no
    // hashable source, so their cache entries trust the name.
    os << " behavior="
       << (c.behavior_fingerprint.empty() ? c.name : c.behavior_fingerprint)
       << "\n";
  }
  for (int ci = 0; ci < static_cast<int>(arch.connectors().size()); ++ci)
    os << connector_slice_text(arch, ci);
  return os.str();
}

ModelGenerator::OwnedModel ModelGenerator::generate_owned(
    const Architecture& arch, const std::string& invariant_text,
    GenOptions opts) {
  generate(arch, opts);  // build/reuse into sys_; discard the borrowed view
  OwnedModel out;
  // Parse before snapshotting so the invariant's pool indices exist in the
  // copy (expr::Ref is an index, preserved verbatim by the SystemSpec copy).
  if (!invariant_text.empty())
    out.invariant = parse_expr_text(invariant_text).ref;
  out.sys = std::make_unique<model::SystemSpec>(sys_.snapshot());
  out.machine = std::make_unique<kernel::Machine>(*out.sys, compiled_);
  return out;
}

}  // namespace pnp
