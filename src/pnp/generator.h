// Model generator: turns an Architecture into a verifiable kernel::Machine,
// reusing pre-defined building-block models and previously built component
// models across design iterations (the paper's central verification-cost
// claim, section 3).
//
// The generator owns a persistent SystemSpec that grows append-only:
//  * each building-block configuration (send-port kind, receive-port kind +
//    options, channel kind) is built and compiled at most once;
//  * each component model is built once and reused as long as its port list
//    (and therefore its endpoints) is unchanged -- exactly the paper's
//    observation that connector changes do not dirty component models;
//  * internal channels are cached by logical role, so a port swap reuses
//    the existing wiring.
// GenStats exposes the build-vs-reuse counts that experiment E8 reports.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "kernel/machine.h"
#include "ltl/formula.h"
#include "pnp/architecture.h"

namespace pnp {

struct GenStats {
  int component_models_built{0};
  int component_models_reused{0};
  int block_models_built{0};   // port + channel proctypes
  int block_models_reused{0};
  int channels_declared{0};
  int channels_reused{0};
  int proctypes_compiled{0};
  int connectors_optimized{0};
  double seconds{0.0};

  std::string summary() const;
};

/// Generation options.
struct GenOptions {
  /// Substitute optimized connector models (paper section 6) wherever the
  /// configuration allows it: senders all SynBlocking/AsynBlocking,
  /// receivers all Blocking+remove+non-selective, channel SingleSlot/Fifo/
  /// Priority. The optimized blocks exchange busy-polling (IN_FAIL /
  /// OUT_FAIL retry loops) for guard-based blocking, shrinking the state
  /// space by orders of magnitude with unchanged observable behaviour.
  bool optimize_connectors{false};
};

class ModelGenerator;

/// Handle given to a component's model callback; see ComponentModelFn.
class ComponentContext {
 public:
  model::ProcBuilder& builder() { return *b_; }

  /// Endpoint of the attachment named `port_name` on this component.
  PortEndpoint port(const std::string& port_name) const;
  /// Architecture-level shared variable.
  model::GVar global(const std::string& name) const;

  // expression sugar forwarding to the builder
  expr::Ex g(const std::string& name) const;
  expr::Ex k(model::Value v) const { return b_->k(v); }

  /// All endpoints of this component (port name -> channel pair).
  const std::unordered_map<std::string, PortEndpoint>& endpoints() const {
    return endpoints_;
  }
  /// All architecture globals by name (for textual behaviours).
  std::unordered_map<std::string, int> global_slots() const;

 private:
  friend class ModelGenerator;
  model::ProcBuilder* b_{nullptr};
  const ModelGenerator* gen_{nullptr};
  std::unordered_map<std::string, PortEndpoint> endpoints_;
};

class ModelGenerator {
 public:
  ModelGenerator() = default;

  /// (Re)generates the model for `arch`. The returned Machine borrows this
  /// generator's SystemSpec: it is invalidated by the next generate() call.
  kernel::Machine generate(const Architecture& arch, GenOptions opts = {});

  /// Self-contained model snapshot: the Machine references the bundled
  /// SystemSpec copy instead of the generator's live one, so it survives
  /// later generate() calls and can be verified on another thread.
  struct OwnedModel {
    std::unique_ptr<model::SystemSpec> sys;
    std::unique_ptr<kernel::Machine> machine;
    /// Parsed `invariant_text`, interned in `sys->exprs` (kNoExpr if the
    /// text was empty).
    expr::Ref invariant{expr::kNoExpr};
  };

  /// Like generate(), but returns an owned snapshot. Generation still goes
  /// through this generator's caches (so block/component reuse works across
  /// snapshots); only the cheap final copy is per-snapshot. Not itself
  /// thread-safe -- generate sequentially, then verify the snapshots
  /// concurrently.
  OwnedModel generate_owned(const Architecture& arch,
                            const std::string& invariant_text = {},
                            GenOptions opts = {});

  const model::SystemSpec& spec() const { return sys_; }
  const GenStats& last_stats() const { return last_; }
  const GenStats& total_stats() const { return total_; }

  // -- property construction on the generator's pool ---------------------------
  expr::Ex gx(const std::string& global_name);
  expr::Ex kx(model::Value v);

  /// Parses a PML expression over the architecture's globals and channels
  /// (used by the pnpv CLI for --invariant / --prop on .arch files).
  expr::Ex parse_expr_text(const std::string& text);

  /// Named propositions for LTL formulas and invariants.
  ltl::PropertyContext& props() { return props_; }
  int add_prop(const std::string& name, expr::Ex e);

 private:
  friend class ComponentContext;

  int ensure_chan(const std::string& key, const std::string& name,
                  int capacity, int arity, bool lossy);
  template <typename BuildFn>
  int ensure_proctype(const std::string& key, BuildFn&& build);
  int ensure_global(const GlobalDecl& g);
  int global_slot(const std::string& name) const;

  model::SystemSpec sys_;
  std::vector<compile::CompiledProc> compiled_;
  std::unordered_map<std::string, int> chan_cache_;
  std::unordered_map<std::string, int> proctype_cache_;
  std::unordered_map<std::string, int> component_cache_;
  /// proctype index -> _crash_budget frame slot, for crash-restart
  /// components (transitions are injected right after compilation).
  std::unordered_map<int, int> crash_budget_slots_;
  std::unordered_map<std::string, int> global_cache_;
  ltl::PropertyContext props_;
  GenStats last_;
  GenStats total_;
};

// -- canonical slice texts (content-addressed verification cache) -------------
// Both renderings are pure functions of the design (no pointers, no pool
// indices, no map iteration order), so their stable_hash64 digests identify
// an architecture slice across processes and machines.

/// The slice of `arch` that a local connector obligation depends on: the
/// connector's channel spec plus the ordered port configuration of every
/// attachment wired to it (senders first). Unaffected by edits elsewhere in
/// the design -- that independence is what lets a plug-and-play swap leave
/// other connectors' cached verdicts clean.
std::string connector_slice_text(const Architecture& arch, int connector);

/// The whole design, canonically: globals, components (crash budget +
/// behaviour fingerprint), and every connector slice. Global obligations
/// (deadlock, invariants, LTL) hash this.
std::string architecture_slice_text(const Architecture& arch);

}  // namespace pnp
