#include "pnp/interfaces.h"

#include "support/panic.h"

namespace pnp {

void register_signals(model::SystemSpec& sys) {
  if (!sys.mtypes.empty()) {
    PNP_CHECK(sys.mtypes.size() >= 9 && sys.mtypes[0] == "SEND_SUCC",
              "signal mtypes already registered inconsistently");
    return;
  }
  const char* names[] = {"SEND_SUCC", "SEND_FAIL", "IN_OK",     "IN_FAIL",
                         "OUT_OK",    "OUT_FAIL",  "RECV_OK",   "RECV_SUCC",
                         "RECV_FAIL"};
  model::Value v = 1;
  for (const char* n : names) {
    const model::Value got = sys.add_mtype(n);
    PNP_CHECK(got == v, "signal mtype numbering drifted");
    ++v;
  }
}

const char* signal_name(model::Value v) {
  switch (v) {
    case SEND_SUCC: return "SEND_SUCC";
    case SEND_FAIL: return "SEND_FAIL";
    case IN_OK: return "IN_OK";
    case IN_FAIL: return "IN_FAIL";
    case OUT_OK: return "OUT_OK";
    case OUT_FAIL: return "OUT_FAIL";
    case RECV_OK: return "RECV_OK";
    case RECV_SUCC: return "RECV_SUCC";
    case RECV_FAIL: return "RECV_FAIL";
    default: return "?";
  }
}

namespace iface {

using namespace model;

Seq send_msg(ProcBuilder& b, const PortEndpoint& ep, expr::Ex data,
             const SendMeta& meta) {
  std::vector<expr::Ex> fields = {
      data,                 // data
      b.k(0),               // sender_id (filled in by the port)
      b.k(0),               // selective (receive-request flag; unused here)
      b.k(meta.tag),        // selectiveData
      b.k(0),               // remove (receive-request flag; unused here)
      b.k(meta.priority),   // priority
  };
  RecvArg status =
      meta.status_out ? bind(*meta.status_out) : any();
  return seq(
      send(b.c(ep.data), std::move(fields), "component->port: send message"),
      recv(b.c(ep.sig), {std::move(status), any()},
           "component: await SendStatus"));
}

Seq recv_msg(ProcBuilder& b, const PortEndpoint& ep, LVar data_out,
             const RecvMeta& meta) {
  // A receive request is an ordinary data message; the port fills in the
  // selective/remove flags that its kind dictates before forwarding.
  std::vector<expr::Ex> req = {
      b.k(0), b.k(0), b.k(0), b.k(meta.tag), b.k(0), b.k(0),
  };
  RecvArg status =
      meta.status_out ? bind(*meta.status_out) : any();
  return seq(
      send(b.c(ep.data), std::move(req), "component->port: receive request"),
      recv(b.c(ep.sig), {std::move(status), any()},
           "component: await RecvStatus"),
      recv(b.c(ep.data),
           {bind(data_out), any(), any(), any(), any(), any()},
           "component: receive message (or stub)"));
}

}  // namespace iface
}  // namespace pnp
