// Standard component interfaces (paper section 2.2, Figs. 3, 9, 10) and the
// internal wire protocol shared by all building blocks.
//
// Components talk to ports over a pair of rendezvous channels (the paper's
// `SynChan`): a *signal* channel carrying (status, port_pid) pairs and a
// *data* channel carrying application messages. Because every send port
// speaks the same component-side protocol (send message, await SendStatus)
// and every receive port speaks the same receive protocol (send request,
// await RecvStatus, receive message-or-stub), connectors can be swapped
// without touching component models -- the core plug-and-play property.
#pragma once

#include "model/builder.h"

namespace pnp {

/// Wire-protocol status signals (paper Figs. 5/6). Values are the Promela
/// mtype encoding: 1-based, in declaration order.
enum Signal : model::Value {
  SEND_SUCC = 1,
  SEND_FAIL = 2,
  IN_OK = 3,
  IN_FAIL = 4,
  OUT_OK = 5,
  OUT_FAIL = 6,
  RECV_OK = 7,
  RECV_SUCC = 8,
  RECV_FAIL = 9,
};

/// Registers the signal mtypes on `sys` in enum order. Idempotent per spec.
void register_signals(model::SystemSpec& sys);

/// Human-readable signal name.
const char* signal_name(model::Value v);

// -- data-message layout -------------------------------------------------------
// Every data channel carries 6-field messages (paper's DataMsg plus the
// bookkeeping fields used by Fig. 11):
//   [ data, sender_id, selective, selectiveData, remove, priority ]
inline constexpr int kFData = 0;
inline constexpr int kFSender = 1;
inline constexpr int kFSelective = 2;
inline constexpr int kFSelData = 3;
inline constexpr int kFRemove = 4;
inline constexpr int kFPriority = 5;
inline constexpr int kDataArity = 6;

/// Signal channels carry [ signal, port_pid ].
inline constexpr int kSignalArity = 2;

/// The pair of rendezvous channels linking a component to one of its ports
/// (or a port to a connector channel).
struct PortEndpoint {
  model::Chan sig;
  model::Chan data;
};

namespace iface {

/// Options for the sending interface.
struct SendMeta {
  /// Tag stored in the message's selectiveData field (used by selective
  /// receive and as the pub/sub topic).
  model::Value tag{0};
  /// Priority (lower = delivered earlier by priority-queue channels).
  model::Value priority{0};
  /// If set, the SendStatus signal (SEND_SUCC/SEND_FAIL) is bound here;
  /// otherwise it is consumed with a wildcard.
  const model::LVar* status_out{nullptr};
};

/// Emits the paper's Fig. 9 protocol: send a message carrying `data`
/// through `ep`, then block for the SendStatus signal. Identical for every
/// send-port kind -- which port answers, and when, is the connector's
/// business.
model::Seq send_msg(model::ProcBuilder& b, const PortEndpoint& ep,
                    expr::Ex data, const SendMeta& meta = {});

/// Options for the receiving interface.
struct RecvMeta {
  /// For selective receive ports: only messages whose selectiveData equals
  /// this value are retrieved.
  model::Value tag{0};
  /// If set, RECV_SUCC/RECV_FAIL is bound here (needed with nonblocking
  /// receive ports to distinguish a real message from the stub).
  const model::LVar* status_out{nullptr};
};

/// Emits the paper's Fig. 10 protocol: send a receive request through `ep`,
/// await the RecvStatus signal, then receive the message (a stub when the
/// status is RECV_FAIL). `data_out` receives the message's data field.
model::Seq recv_msg(model::ProcBuilder& b, const PortEndpoint& ep,
                    model::LVar data_out, const RecvMeta& meta = {});

}  // namespace iface
}  // namespace pnp
