#include "pnp/patterns.h"

namespace pnp::patterns {

int point_to_point(Architecture& arch, int sender, const std::string& send_port,
                   int receiver, const std::string& recv_port,
                   const std::string& name, SendPortKind send_kind,
                   RecvPortKind recv_kind, ChannelSpec channel,
                   RecvPortOpts recv_opts) {
  const int conn = arch.add_connector(name, channel);
  arch.attach_sender(sender, send_port, conn, send_kind);
  arch.attach_receiver(receiver, recv_port, conn, recv_kind, recv_opts);
  return conn;
}

int publish_subscribe(Architecture& arch, const std::string& name,
                      int queue_capacity, const std::vector<PubEnd>& pubs,
                      const std::vector<SubEnd>& subs) {
  const int conn =
      arch.add_connector(name, {ChannelKind::EventPool, queue_capacity});
  for (const PubEnd& p : pubs)
    arch.attach_sender(p.component, p.port_name, conn, p.kind);
  for (const SubEnd& s : subs)
    arch.attach_receiver(s.component, s.port_name, conn, s.kind, s.opts);
  return conn;
}

RpcConnector rpc(Architecture& arch, const std::string& name, int client,
                 const std::string& client_call_port,
                 const std::string& client_reply_port, int server,
                 const std::string& server_recv_port,
                 const std::string& server_reply_port) {
  RpcConnector out;
  // The call blocks the client until the server has *received* the request
  // (synchronous blocking send); the reply travels back asynchronously and
  // the client blocks on its reply port -- together, classic RPC.
  out.request = point_to_point(arch, client, client_call_port, server,
                               server_recv_port, name + ".request",
                               SendPortKind::SynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::SingleSlot, 1});
  out.reply = point_to_point(arch, server, server_reply_port, client,
                             client_reply_port, name + ".reply",
                             SendPortKind::AsynBlocking,
                             RecvPortKind::Blocking,
                             {ChannelKind::SingleSlot, 1});
  return out;
}

}  // namespace pnp::patterns
