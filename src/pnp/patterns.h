// Higher-level composition patterns assembled from the building blocks:
// point-to-point message passing, publish/subscribe, and RPC (paper
// section 2.2: the standard interfaces generalize beyond message passing).
#pragma once

#include "pnp/architecture.h"

namespace pnp::patterns {

/// One sender, one receiver, one channel. Returns the connector id.
int point_to_point(Architecture& arch, int sender, const std::string& send_port,
                   int receiver, const std::string& recv_port,
                   const std::string& name, SendPortKind send_kind,
                   RecvPortKind recv_kind, ChannelSpec channel,
                   RecvPortOpts recv_opts = {});

struct PubEnd {
  int component{-1};
  std::string port_name;
  SendPortKind kind{SendPortKind::AsynBlocking};
};
struct SubEnd {
  int component{-1};
  std::string port_name;
  RecvPortKind kind{RecvPortKind::Blocking};
  RecvPortOpts opts{};
};

/// Event-pool connector with any number of publishers and subscribers.
/// Subscribers typically use selective receive: the request tag acts as the
/// topic filter. Returns the connector id.
int publish_subscribe(Architecture& arch, const std::string& name,
                      int queue_capacity, const std::vector<PubEnd>& pubs,
                      const std::vector<SubEnd>& subs);

struct RpcConnector {
  int request{-1};
  int reply{-1};
};

/// Remote procedure call: a synchronous request connector (client blocks
/// until the server picked up the call) plus a reply connector back. The
/// client component performs iface::send_msg on `client_call_port` followed
/// by iface::recv_msg on `client_reply_port`; the server mirrors this.
RpcConnector rpc(Architecture& arch, const std::string& name, int client,
                 const std::string& client_call_port,
                 const std::string& client_reply_port, int server,
                 const std::string& server_recv_port,
                 const std::string& server_reply_port);

}  // namespace pnp::patterns
