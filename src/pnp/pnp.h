// Umbrella header: the full public API of the Plug-and-Play design and
// verification library.
//
//   Architecture  -- components, connectors, plug-and-play edits
//   ModelGenerator -- architecture -> verifiable model, with block/component
//                     model reuse across design iterations
//   check_safety / check_invariant / check_ltl_formula -- design-time
//                     verification with counterexample traces
//   patterns::*   -- point-to-point, publish/subscribe, RPC composition
//   iface::*      -- the standard component interfaces
#pragma once

#include "pnp/architecture.h"
#include "pnp/blocks.h"
#include "pnp/generator.h"
#include "pnp/interfaces.h"
#include "pnp/patterns.h"
#include "pnp/session.h"
#include "pnp/verifier.h"
#include "sim/simulator.h"
#include "trace/msc.h"
