#include "pnp/session.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adl/adl.h"
#include "pml/parser.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

RunCheck to_check(const char* kind, std::string label,
                  const SafetyOutcome& o) {
  RunCheck c;
  c.kind = kind;
  c.label = std::move(label);
  c.passed = o.passed();
  c.stage = o.stages.empty() ? std::string() : o.stages.back().name;
  c.states_stored = o.result.stats.states_stored;
  c.seconds = o.result.stats.seconds;
  c.detail = o.report();
  c.engine = codegen::engine_kind_name(o.engine_actual);
  c.engine_note = o.engine_note;
  return c;
}

/// Records a check the verifier did not already announce (resilience and
/// raw-machine runs; verify_obligations emits its own ObligationFinished
/// events). The ledger's checks[] array is built from these.
void note_check(obs::Observer& ob, const RunCheck& c) {
  ob.recorder().add(obs::Counter::ObligationsVerified, 1);
  obs::Event e;
  e.kind = obs::EventKind::ObligationFinished;
  e.label = c.label;
  e.passed = c.passed;
  e.states = c.states_stored;
  e.seconds = c.seconds;
  e.attrs.emplace_back("kind", c.kind);
  e.attrs.emplace_back("stage", c.stage);
  ob.emit(e);
}

}  // namespace

// -- RunConfig views ----------------------------------------------------------

VerifyOptions RunConfig::verify_options() const {
  VerifyOptions v;
  static_cast<ExecBudget&>(v) = *this;
  v.check_deadlock = check_deadlock;
  v.por = por;
  v.bfs = bfs;
  v.degrade = degrade;
  v.bitstate_bytes = bitstate_bytes;
  v.minimize = minimize;
  v.engine = engine;
  // Compiled AOT artifacts live next to the verdict cache: both are
  // content-addressed, so one --cache-dir serves both stores.
  v.engine_cache_dir = cache_dir;
  // Checkpoints written through a Session are addressed by the RunConfig
  // digest, so resume() can reject a snapshot from an edited config.
  v.config_digest = digest();
  return v;
}

SuiteOptions RunConfig::suite_options() const {
  SuiteOptions s;
  s.verify = verify_options();
  s.gen = gen;
  s.invariant_text = invariant_text;
  s.end_invariant_text = end_invariant_text;
  s.props = props;
  s.ltl = ltl;
  s.ltl_weak_fairness = ltl_weak_fairness;
  s.connector_protocols = connector_protocols;
  s.cache_dir = cache_dir;
  s.cache = shared_cache;
  return s;
}

ResilienceOptions RunConfig::resilience_options() const {
  ResilienceOptions r;
  r.verify = verify_options();
  r.verify.threads = 1;  // parallelism goes to the variant axis instead
  r.jobs = threads;
  r.invariant_text = invariant_text;
  r.gen = gen;
  return r;
}

ltl::CheckOptions RunConfig::ltl_options() const {
  ltl::CheckOptions c;
  static_cast<ExecBudget&>(c) = *this;
  c.weak_fairness = ltl_weak_fairness;
  c.engine = engine;
  c.engine_cache_dir = cache_dir;
  return c;
}

std::string RunConfig::digest() const {
  // Canonical text of the verdict-relevant fields, in a fixed order.
  // threads, the successor engine and the observability fields are
  // deliberately excluded: they cannot change a verdict (see options_text
  // in verifier.cpp). Keeping `engine` out is what makes checkpoints
  // portable across engines -- an interp snapshot resumes under bytecode
  // and vice versa, which test_codegen asserts.
  std::ostringstream os;
  os << "max_states=" << max_states << ";deadline=" << deadline_seconds
     << ";mem=" << memory_budget_bytes << ";deadlock=" << check_deadlock
     << ";por=" << por << ";bfs=" << bfs << ";degrade=" << degrade
     << ";bitstate=" << bitstate_bytes << ";minimize=" << to_string(minimize)
     << ";optimize=" << gen.optimize_connectors
     << ";inv=" << invariant_text << ";endinv=" << end_invariant_text
     << ";fair=" << ltl_weak_fairness << ";protocols=" << connector_protocols;
  for (const auto& [name, text] : props) os << ";prop:" << name << "=" << text;
  for (const std::string& f : ltl) os << ";ltl:" << f;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, stable_hash64(os.str()));
  return buf;
}

// -- RunReport ----------------------------------------------------------------

int RunReport::cache_hits() const {
  int n = 0;
  for (const RunCheck& c : checks) n += c.from_cache ? 1 : 0;
  return n;
}

int RunReport::recomputed() const {
  return static_cast<int>(checks.size()) - cache_hits();
}

std::string RunReport::report() const {
  std::ostringstream os;
  os << "== " << subject << " [" << mode << "] config " << config_digest
     << " ==\n";
  if (reduction) os << reduction->summary() << "\n";
  int failed = 0;
  for (const RunCheck& c : checks) {
    os << "[" << (c.passed ? "PASS" : "FAIL") << "] " << c.kind << ": "
       << c.label << "  (";
    if (!c.stage.empty()) os << "stage " << c.stage << ", ";
    os << c.states_stored << " states, " << c.seconds * 1e3 << " ms";
    if (c.from_cache) os << ", cached";
    os << ")\n";
    if (!c.passed) {
      ++failed;
      if (!c.detail.empty()) os << c.detail;
    }
  }
  os << "generation: " << gen_stats.summary() << "\n";
  os << "verdict: " << (passed ? "PASS" : "FAIL") << " -- " << checks.size()
     << " checks, " << cache_hits() << " from cache, " << failed
     << " failed, " << seconds << " s\n";
  if (!ledger_path.empty()) os << "ledger: " << ledger_path << "\n";
  if (!trail_path.empty()) os << "trail: " << trail_path << "\n";
  return os.str();
}

// -- Session ------------------------------------------------------------------

Session::Session(RunConfig cfg) : cfg_(std::move(cfg)) {}

void Session::ensure_sinks() {
  if (sinks_ready_) return;
  sinks_ready_ = true;
  obs_.set_heartbeat_interval(cfg_.heartbeat_seconds);
  if (cfg_.heartbeat || cfg_.heartbeat_force)
    obs_.add_sink(
        std::make_shared<obs::HeartbeatSink>(stderr, cfg_.heartbeat_force));
  if (!cfg_.ledger_dir.empty() && ledger_sink_ == nullptr) {
    auto ledger = std::make_shared<obs::LedgerSink>(cfg_.ledger_dir);
    ledger_path_ = ledger->path();
    ledger_sink_ = ledger;
    obs_.add_sink(std::move(ledger));
  }
}

void Session::attach_ledger(std::shared_ptr<obs::LedgerSink> sink) {
  PNP_CHECK(sink != nullptr, "Session::attach_ledger: null sink");
  PNP_CHECK(ledger_sink_ == nullptr,
            "Session::attach_ledger: a ledger sink is already attached");
  ledger_path_ = sink->path();
  ledger_sink_ = sink;
  // Trail files for failed checks land next to the ledger (finish_run
  // consults cfg_.ledger_dir), wherever the sink was pointed.
  cfg_.ledger_dir = sink->dir();
  obs_.add_sink(std::move(sink));
}

RunReport Session::begin_run(const std::string& subject, const char* mode) {
  ++runs_;
  RunReport rep;
  rep.subject = subject;
  rep.mode = mode;
  rep.config_digest = cfg_.digest();
  obs_.run_started(subject, rep.config_digest, {{"mode", mode}});
  return rep;
}

void Session::finish_run(RunReport& rep, Clock::time_point started) {
  rep.passed = true;
  for (const RunCheck& c : rep.checks) rep.passed = rep.passed && c.passed;
  rep.seconds = seconds_since(started);
  rep.ledger_path = ledger_path_;
  // Counterexamples outlive the terminal scrollback: every failed check's
  // full report lands in a trail file next to the ledger, and the first
  // one becomes the record's "trail" pointer.
  if (!cfg_.ledger_dir.empty()) {
    int k = 0;
    for (const RunCheck& c : rep.checks) {
      if (c.passed || c.detail.empty()) continue;
      const std::string name =
          "trail-" + std::to_string(runs_) + "-" + std::to_string(k++) + ".txt";
      const std::string path =
          (std::filesystem::path(cfg_.ledger_dir) / name).string();
      std::ofstream out(path);
      if (!out) continue;  // a full disk must not turn a verdict into a crash
      out << rep.subject << ": " << c.kind << ": " << c.label << "\n"
          << c.detail;
      if (rep.trail_path.empty()) rep.trail_path = path;
    }
  }
  std::vector<std::pair<std::string, std::string>> attrs;
  attrs.emplace_back("mode", rep.mode);
  if (!rep.trail_path.empty()) attrs.emplace_back("trail", rep.trail_path);
  // Resolved successor engine for the whole run: the request comes from the
  // config, the resolution from the first check that actually ran a search
  // (engines resolve identically within a run -- one toolchain, one cache).
  // A cache-hit-only run resolves nothing and honestly reports the request.
  {
    attrs.emplace_back("engine.requested",
                       codegen::engine_kind_name(cfg_.engine));
    std::string actual = codegen::engine_kind_name(cfg_.engine);
    std::string note;
    for (const RunCheck& c : rep.checks)
      if (!c.engine.empty()) {
        actual = c.engine;
        note = c.engine_note;
        break;
      }
    attrs.emplace_back("engine.actual", actual);
    if (!note.empty()) attrs.emplace_back("engine.note", note);
  }
  // A SIGINT/SIGTERM stop still lands a clean RunFinished record, marked
  // so ledger consumers can tell "stopped on purpose" from "verdict".
  if (cfg_.interrupt != nullptr &&
      cfg_.interrupt->load(std::memory_order_relaxed))
    attrs.emplace_back("interrupted", "true");
  obs_.run_finished(rep.passed, rep.seconds, std::move(attrs));
}

RunReport Session::verify(const Architecture& arch) {
  ensure_sinks();
  const Clock::time_point t0 = Clock::now();
  RunReport rep = begin_run(arch.name(), "suite");
  SuiteOptions sopt = cfg_.suite_options();
  sopt.verify.obs = &obs_;
  const SuiteReport s = verify_obligations(arch, sopt, &gen_);
  rep.gen_stats = s.gen_stats;
  rep.reduction = s.reduction;
  rep.checks.reserve(s.obligations.size());
  for (const ObligationResult& o : s.obligations)
    rep.checks.push_back(RunCheck{o.kind, o.label, o.passed, o.from_cache,
                                  o.stage, o.states_stored, o.seconds,
                                  o.detail, o.engine, o.engine_note});
  finish_run(rep, t0);
  return rep;
}

RunReport Session::verify_resilience(const Architecture& arch,
                                     std::vector<FaultSpec> faults) {
  ensure_sinks();
  const Clock::time_point t0 = Clock::now();
  RunReport rep = begin_run(arch.name(), "resilience");
  if (faults.empty()) faults = default_fault_suite(arch);
  ResilienceOptions ropt = cfg_.resilience_options();
  ropt.verify.obs = &obs_;
  const ResilienceReport r = check_resilience(arch, faults, ropt, &gen_);
  rep.gen_stats = r.gen_stats;
  if (r.baseline)
    rep.checks.push_back(to_check("baseline", "fault-free", *r.baseline));
  for (const FaultOutcome& f : r.faults)
    rep.checks.push_back(to_check("fault", f.description, f.outcome));
  for (const RunCheck& c : rep.checks) note_check(obs_, c);
  finish_run(rep, t0);
  return rep;
}

namespace {

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

RunReport Session::verify_source(std::string subject, const std::string& text,
                                 SourceKind kind, bool resilience) {
  if (kind == SourceKind::Auto) {
    if (ends_with(subject, ".arch")) {
      kind = SourceKind::Arch;
    } else if (ends_with(subject, ".pml")) {
      kind = SourceKind::Pml;
    } else {
      // First keyword wins: ADL sources open with "architecture NAME {",
      // PML sources declare proctypes. Ambiguous text parses as PML.
      const std::size_t a = text.find("architecture");
      const std::size_t p = text.find("proctype");
      kind = a != std::string::npos && (p == std::string::npos || a < p)
                 ? SourceKind::Arch
                 : SourceKind::Pml;
    }
  }
  if (kind == SourceKind::Arch) {
    const Architecture arch = adl::parse_architecture(text);
    return resilience ? verify_resilience(arch) : verify(arch);
  }
  PNP_CHECK(!resilience, "verify_source: resilience applies to ADL "
                         "architectures only (subject '" + subject + "')");
  model::SystemSpec sys = pml::parse(text);
  const kernel::Machine m(sys);
  return verify_machine(m, std::move(subject), [&sys](const std::string& t) {
    return pml::parse_global_expr(sys, t);
  });
}

RunReport Session::resume(const Architecture& arch) {
  PNP_CHECK(!cfg_.checkpoint_dir.empty(),
            "Session::resume: config().checkpoint_dir is not set");
  cfg_.resume = true;
  RunReport rep = verify(arch);
  cfg_.resume = false;
  return rep;
}

RunReport Session::resume_machine(const kernel::Machine& m,
                                  std::string subject,
                                  const ExprParser& parse_expr) {
  PNP_CHECK(!cfg_.checkpoint_dir.empty(),
            "Session::resume_machine: config().checkpoint_dir is not set");
  cfg_.resume = true;
  RunReport rep = verify_machine(m, std::move(subject), parse_expr);
  cfg_.resume = false;
  return rep;
}

RunReport Session::verify_machine(const kernel::Machine& m,
                                  std::string subject,
                                  const ExprParser& parse_expr) {
  ensure_sinks();
  const Clock::time_point t0 = Clock::now();
  RunReport rep = begin_run(subject, "machine");

  VerifyOptions vopt = cfg_.verify_options();
  vopt.obs = &obs_;
  SafetyProps sp;
  if (!cfg_.invariant_text.empty()) {
    sp.invariant = parse_expr(cfg_.invariant_text);
    sp.invariant_name = cfg_.invariant_text;
  }
  if (!cfg_.end_invariant_text.empty()) {
    sp.end_invariant = parse_expr(cfg_.end_invariant_text);
    sp.end_invariant_name = cfg_.end_invariant_text;
  }
  const SafetyOutcome safety = check_machine(m, sp, vopt);
  rep.reduction = safety.reduction;
  {
    RunCheck c = to_check("safety", safety.property_name, safety);
    note_check(obs_, c);
    rep.checks.push_back(std::move(c));
  }

  if (!cfg_.ltl.empty()) {
    // LTL always uses the strong quotient (weak tau-contraction is not
    // stutter-sound); the quotient shares m's SystemSpec, so the property
    // refs parsed below carry over unchanged.
    const kernel::Machine* lm = &m;
    std::optional<reduce::ReducedMachine> red;
    if (cfg_.minimize != MinimizeMode::Off) {
      red.emplace(m, reduce::Equivalence::Strong);
      lm = &red->machine();
    }
    ltl::PropertyContext props;
    for (const auto& [name, text] : cfg_.props) props.add(name, parse_expr(text));
    ltl::CheckOptions copt = cfg_.ltl_options();
    copt.obs = &obs_;
    for (const std::string& formula : cfg_.ltl) {
      const LtlOutcome lo = check_ltl_formula(*lm, props, formula, copt);
      RunCheck c;
      c.kind = "ltl";
      c.label = formula;
      c.passed = lo.passed();
      c.stage = "ltl-product";
      c.states_stored = lo.result.stats.states_stored;
      c.seconds = lo.result.stats.seconds;
      c.detail = lo.report();
      c.engine = codegen::engine_kind_name(lo.result.engine_actual);
      c.engine_note = lo.result.engine_note;
      note_check(obs_, c);
      rep.checks.push_back(std::move(c));
    }
  }
  finish_run(rep, t0);
  return rep;
}

}  // namespace pnp
