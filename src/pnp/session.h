// pnp::Session -- the unified run facade over the verification stack.
//
// Historically every entry point grew its own option struct (VerifyOptions,
// SuiteOptions, ResilienceOptions, ltl::CheckOptions) and its own report
// type, and every frontend (pnpv, the examples) re-plumbed budgets,
// generator reuse and property texts by hand. A Session owns the three
// things a design-iterate-verify loop actually shares across runs:
//
//   * one RunConfig  -- the single source of truth for budgets, search
//     shape, properties and observability destinations. The old option
//     structs remain the engine-facing ABI but are now derived views
//     (RunConfig::verify_options() etc.), so a flag lands in exactly one
//     place.
//   * one ModelGenerator -- component/block models survive plug-and-play
//     edits between runs, exactly as the paper's iteration loop assumes.
//   * one obs::Observer -- counters, phase timers, the TTY heartbeat and
//     the JSONL run ledger (see obs/obs.h) are attached once and every
//     run on the session is recorded through them.
//
// Each verify* call returns a RunReport: a flat list of RunChecks that
// subsumes the SafetyOutcome / SuiteReport / ResilienceReport stats
// duplication -- one shape to render, whatever kind of run produced it.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "pnp/exec_budget.h"
#include "pnp/generator.h"
#include "pnp/verifier.h"

namespace pnp {

/// Everything one verification run needs, in one struct. Budget fields
/// (max_states, deadline_seconds, memory_budget_bytes, threads) are
/// inherited from ExecBudget -- the same definition VerifyOptions and
/// ltl::CheckOptions consume.
struct RunConfig : ExecBudget {
  // -- search shape (see VerifyOptions for the fine print) --
  bool check_deadlock = true;
  bool por = false;
  bool bfs = false;
  bool degrade = true;
  std::uint64_t bitstate_bytes = std::uint64_t{1} << 26;
  MinimizeMode minimize = MinimizeMode::Off;
  GenOptions gen{};
  /// Successor-generation engine: interp (historical), bytecode (threaded
  /// interpreter, always available), or aot (per-model compiled .so, cached
  /// under cache_dir, falling back to bytecode without a host toolchain).
  /// Deliberately excluded from digest(): engines are verdict- and
  /// state-count-equivalent by construction, so checkpoints and cached
  /// verdicts written under one engine stay valid under another.
  codegen::EngineKind engine = codegen::EngineKind::Interp;

  // -- properties (texts; each frontend resolves them in its own scope) --
  std::string invariant_text;
  std::string end_invariant_text;
  std::vector<std::pair<std::string, std::string>> props;
  std::vector<std::string> ltl;
  bool ltl_weak_fairness = false;
  bool connector_protocols = true;

  // -- persistence + observability --
  std::string cache_dir;   // verdict cache; empty = recompute everything
  /// Caller-owned verdict cache taking precedence over cache_dir (see
  /// SuiteOptions::cache): pnpd points every worker's session here so the
  /// whole pool shares one store. Not owned; excluded from digest() like
  /// cache_dir -- where a verdict is remembered cannot change it.
  reduce::VerificationCache* shared_cache = nullptr;
  std::string ledger_dir;  // JSONL run ledger + trail files; empty = off
  bool heartbeat = true;   // TTY progress ticker (auto-suppressed when
                           // stderr is not a terminal)
  bool heartbeat_force = false;  // emit the ticker even when not a TTY
  double heartbeat_seconds = 1.0;

  /// Thin engine-facing views. The returned structs carry no Observer --
  /// Session fills that in; standalone callers may too.
  VerifyOptions verify_options() const;
  SuiteOptions suite_options() const;
  /// Resilience fans threads out across fault variants (jobs = threads,
  /// each variant's own search sequential): the variants are many and
  /// small, so variant-level parallelism is the useful axis.
  ResilienceOptions resilience_options() const;
  ltl::CheckOptions ltl_options() const;

  /// Stable hex digest of every field that can change a verdict or its
  /// confidence (budgets, search shape, property texts; NOT threads or the
  /// observability destinations). This is the "config" field of the run
  /// ledger, so runs can be grouped/diffed by effective configuration.
  std::string digest() const;
};

/// One check inside a run: a connector-protocol obligation, a global
/// safety/invariant/LTL property, a fault variant, or the fault-free
/// baseline. The flat shape every former report type maps onto.
struct RunCheck {
  std::string kind;   // "connector-protocol"|"safety"|"invariant"|
                      // "end-invariant"|"ltl"|"baseline"|"fault"
  std::string label;  // connector / property text / fault description
  bool passed = false;
  bool from_cache = false;
  std::string stage;  // ladder stage that produced the verdict
  std::uint64_t states_stored = 0;
  double seconds = 0.0;
  /// Full sub-report (stats, degradation stages, counterexample trace).
  /// Empty for cache hits -- the cache stores verdicts, not traces.
  std::string detail;
  /// Resolved successor backend ("interp"/"bytecode"/"aot"; empty for
  /// cache hits, where no search ran) and the fallback note when the
  /// resolution differs from the request.
  std::string engine;
  std::string engine_note;
};

struct RunReport {
  std::string subject;        // architecture or model name
  std::string mode;           // "suite" | "resilience" | "machine"
  std::string config_digest;  // RunConfig::digest() at run time
  bool passed = true;
  double seconds = 0.0;  // wall time of the whole run
  std::vector<RunCheck> checks;
  GenStats gen_stats;  // generation cost attributable to this run
  std::optional<reduce::ReductionStats> reduction;
  std::string ledger_path;  // set when the session writes a ledger
  std::string trail_path;   // first counterexample trail file written

  int cache_hits() const;
  int recomputed() const;
  /// Human-readable rendering: one verdict line per check, failure details
  /// inline, generation + cache summary at the bottom.
  std::string report() const;
};

class Session {
 public:
  /// Sinks (heartbeat, ledger) are attached lazily on the first run, from
  /// the config as it stands then; budgets and properties may be edited
  /// between runs via config().
  explicit Session(RunConfig cfg = {});

  RunConfig& config() { return cfg_; }
  const RunConfig& config() const { return cfg_; }

  /// The session-owned generator: share it to keep component/block model
  /// reuse across plug-and-play edits (every verify* call on this session
  /// already does).
  ModelGenerator& generator() { return gen_; }
  obs::Observer& observer() { return obs_; }

  /// Path of the JSONL ledger, once a run has been recorded to one.
  const std::string& ledger_path() const { return ledger_path_; }

  /// Record runs through a caller-constructed ledger sink instead of
  /// opening one from config().ledger_dir. pnpd uses this to point every
  /// worker session at the daemon's shared ledger file (each worker gets
  /// its own sink instance -- record assembly is per-run state -- opened
  /// with torn-tail recovery disabled; the daemon repairs the file once at
  /// startup). Must be called before the first verify* call.
  void attach_ledger(std::shared_ptr<obs::LedgerSink> sink);

  /// Cancellation hook: `flag` (not owned, may be null) is polled by the
  /// engines; when it becomes true the current run parks exactly like a
  /// pnpv SIGINT -- final checkpoint if configured, clean ledger record
  /// stamped "interrupted", partial RunReport returned. pnpd points this at
  /// the per-job cancel flag so a client disconnect aborts the job.
  void set_interrupt(const std::atomic<bool>* flag) { cfg_.interrupt = flag; }

  /// True when opening the ledger truncated a torn (crash-partial) final
  /// line left by a process that died mid-append -- surfaced so frontends
  /// can tell the user the previous run's record was lost.
  bool ledger_recovered_torn() const {
    return ledger_sink_ != nullptr && ledger_sink_->recovered_torn_line();
  }

  /// Verify `arch` as an obligation suite: per-connector protocol
  /// obligations plus the global properties from the config, consulting
  /// the verdict cache when cache_dir is set.
  RunReport verify(const Architecture& arch);

  /// What a source text is: an ADL architecture or a PML model. Auto sniffs
  /// from the subject's file suffix (.arch/.pml), falling back to the first
  /// keyword in the text ("architecture" before "proctype" reads as ADL).
  enum class SourceKind : std::uint8_t { Auto, Arch, Pml };

  /// Job-granular entry point: parse `text` (ADL or PML per `kind`) and
  /// verify it under this session's config -- one call from source to
  /// RunReport, the unit of work a pnpd job maps onto. ADL sources run the
  /// obligation suite (or the resilience suite when `resilience` is set);
  /// PML sources run the combined machine check, resolving the config's
  /// property texts in the model's scope. Parse errors raise ModelError.
  RunReport verify_source(std::string subject, const std::string& text,
                          SourceKind kind = SourceKind::Auto,
                          bool resilience = false);

  /// Verify `arch` under injected faults (empty = default_fault_suite),
  /// plus the fault-free baseline.
  RunReport verify_resilience(const Architecture& arch,
                              std::vector<FaultSpec> faults = {});

  /// Resolves invariant/proposition texts from the config into expression
  /// refs in the subject machine's scope (pml::parse_global_expr for .pml
  /// models, ModelGenerator::parse_expr_text for generated ones).
  using ExprParser = std::function<expr::Ref(const std::string&)>;

  /// Verify a raw machine (the .pml frontend): one combined safety ladder
  /// (assertions, deadlock, invariant, end-invariant in a single pass)
  /// plus each LTL formula from the config.
  RunReport verify_machine(const kernel::Machine& m, std::string subject,
                           const ExprParser& parse_expr);

  /// verify() / verify_machine(), but re-entering an interrupted run: each
  /// exact search loads its pnp.ckpt.v1 snapshot from cfg_.checkpoint_dir
  /// (per-section checksums and the RunConfig digest are validated; a
  /// corrupted snapshot or an edited config is a ModelError, never a
  /// silent fresh start) and continues from the saved frontier. When no
  /// snapshot exists yet this is exactly a fresh verify, so supervisors
  /// can call resume() unconditionally. Requires cfg_.checkpoint_dir.
  RunReport resume(const Architecture& arch);
  RunReport resume_machine(const kernel::Machine& m, std::string subject,
                           const ExprParser& parse_expr);

 private:
  void ensure_sinks();
  RunReport begin_run(const std::string& subject, const char* mode);
  /// Seals the report (verdict, wall time), writes trail files for failed
  /// checks, and emits RunFinished (which flushes the ledger record).
  void finish_run(RunReport& rep,
                  std::chrono::steady_clock::time_point started);

  RunConfig cfg_;
  ModelGenerator gen_;
  obs::Observer obs_;
  bool sinks_ready_ = false;
  std::string ledger_path_;
  std::shared_ptr<obs::LedgerSink> ledger_sink_;
  int runs_ = 0;  // per-session run ordinal, names trail files
};

}  // namespace pnp
