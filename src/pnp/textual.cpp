#include "pnp/textual.h"

#include "pml/parser.h"
#include "pnp/generator.h"
#include "pnp/interfaces.h"

namespace pnp {

ComponentModelFn pml_component(std::string behavior) {
  return [behavior = std::move(behavior)](ComponentContext& ctx) {
    pml::BehaviorSymbols symbols;
    for (const auto& [port, ep] : ctx.endpoints()) {
      symbols.channels[port + "_sig"] = ep.sig.id;
      symbols.channels[port + "_data"] = ep.data.id;
    }
    symbols.globals = ctx.global_slots();
    symbols.mtypes = {"SEND_SUCC", "SEND_FAIL", "IN_OK",     "IN_FAIL",
                      "OUT_OK",    "OUT_FAIL",  "RECV_OK",   "RECV_SUCC",
                      "RECV_FAIL"};
    return pml::parse_behavior(ctx.builder(), behavior, symbols);
  };
}

}  // namespace pnp
