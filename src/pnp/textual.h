// Textually defined component behaviours: wrap a PML statement sequence as
// a ComponentModelFn. Inside the behaviour text,
//   * each attachment "p" of the component exposes the rendezvous channels
//     `p_sig` and `p_data` (the flattened SynChan pair of the paper),
//   * every architecture global is in scope by name,
//   * the protocol signal names (SEND_SUCC, ..., RECV_FAIL) are mtype
//     constants,
// so a component is written exactly like the paper's Fig. 9/10 listings:
//
//   pml_component(R"(
//     byte i = 1;
//     do
//     :: i <= 3 -> out_data!i,0,0,0,0,0; out_sig?SEND_SUCC,_; i++
//     :: i > 3 -> break
//     od
//   )")
#pragma once

#include <string>

#include "pnp/architecture.h"

namespace pnp {

/// Builds a component model from PML behaviour text (parsed lazily at
/// generation time, once, then cached like any component model).
ComponentModelFn pml_component(std::string behavior);

}  // namespace pnp
