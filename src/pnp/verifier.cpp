#include "pnp/verifier.h"

#include <sstream>

namespace pnp {

namespace {

void append_stats(std::ostringstream& os, const explore::Stats& st) {
  os << "  states stored: " << st.states_stored
     << ", matched: " << st.states_matched
     << ", transitions: " << st.transitions << ", " << st.seconds * 1e3
     << " ms" << (st.complete ? "" : "  [search truncated]") << "\n";
}

}  // namespace

std::string SafetyOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] " << property_name << "\n";
  append_stats(os, result.stats);
  if (result.violation) {
    os << "  violation: "
       << explore::violation_kind_name(result.violation->kind) << " -- "
       << result.violation->message << "\n";
    os << "  counterexample (" << result.violation->trace.size()
       << " steps):\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt) {
  explore::Options eopt;
  eopt.max_states = opt.max_states;
  eopt.check_deadlock = opt.check_deadlock;
  eopt.por = opt.por;
  eopt.bfs = opt.bfs;
  SafetyOutcome out;
  out.property_name = "safety (assertions + no invalid end states)";
  out.result = explore::explore(m, eopt);
  return out;
}

SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt) {
  explore::Options eopt;
  eopt.max_states = opt.max_states;
  eopt.check_deadlock = opt.check_deadlock;
  eopt.por = opt.por;
  eopt.bfs = opt.bfs;
  eopt.invariant = invariant.ref;
  eopt.invariant_name = name;
  SafetyOutcome out;
  out.property_name = "invariant: " + name;
  out.result = explore::explore(m, eopt);
  return out;
}

std::string LtlOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] LTL: " << result.formula_text
     << "  (Buchi states: " << result.buchi_states << ")\n";
  append_stats(os, result.stats);
  if (result.violation) {
    os << "  " << result.violation->message << "\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt) {
  explore::Options eopt;
  eopt.max_states = opt.max_states;
  eopt.check_deadlock = opt.check_deadlock;
  eopt.por = opt.por;
  eopt.bfs = opt.bfs;
  eopt.end_invariant = inv.ref;
  eopt.end_invariant_name = name;
  SafetyOutcome out;
  out.property_name = "end invariant: " + name;
  out.result = explore::explore(m, eopt);
  return out;
}

LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt) {
  LtlOutcome out;
  out.result = ltl::check_ltl(m, props, formula, opt);
  return out;
}

}  // namespace pnp
