#include "pnp/verifier.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "support/panic.h"

namespace pnp {

namespace {

void append_stats(std::ostringstream& os, const explore::Stats& st) {
  os << "  states stored: " << st.states_stored
     << ", matched: " << st.states_matched
     << ", transitions: " << st.transitions << ", " << st.seconds * 1e3
     << " ms";
  if (!st.complete)
    os << "  [truncated: " << explore::truncation_reason_name(st.truncation)
       << "]";
  os << "\n";
}

explore::Options to_explore_options(const VerifyOptions& opt) {
  explore::Options eopt;
  eopt.max_states = opt.max_states;
  eopt.check_deadlock = opt.check_deadlock;
  eopt.por = opt.por;
  eopt.bfs = opt.bfs;
  eopt.deadline_seconds = opt.deadline_seconds;
  eopt.memory_budget_bytes = opt.memory_budget_bytes;
  eopt.threads = opt.threads;
  return eopt;
}

/// The degradation ladder. Stage 1 is the exact search. When it is
/// truncated (max_states / deadline / memory budget) without reaching a
/// verdict, stage 2 reruns with bitstate hashing and a widened filter: the
/// per-state cost collapses to two Bloom-filter bits, so the same budget
/// covers orders of magnitude more states. A violation found by either
/// stage is a real counterexample; only "pass" verdicts lose certainty
/// going down the ladder, and the recorded stages say exactly what ran.
void run_ladder(const kernel::Machine& m, explore::Options eopt,
                const VerifyOptions& opt, SafetyOutcome& out) {
  const bool parallel = explore::resolve_threads(opt.threads) > 1;
  out.result = explore::explore(m, eopt);
  out.stages.push_back({parallel ? "exact-parallel" : "exact",
                        out.result.stats});
  if (opt.degrade && !out.result.stats.complete && !out.result.violation) {
    eopt.bitstate = true;
    eopt.bitstate_bytes = opt.bitstate_bytes;
    out.result = explore::explore(m, eopt);
    out.stages.push_back({parallel ? "swarm-bitstate" : "bitstate",
                          out.result.stats});
  }
}

}  // namespace

std::string SafetyOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] " << property_name << "\n";
  append_stats(os, result.stats);
  if (degraded()) {
    os << "  degradation ladder:\n";
    for (const VerifyStage& st : stages) {
      os << "    stage " << st.name << ":";
      os << " stored " << st.stats.states_stored << ", "
         << st.stats.seconds * 1e3 << " ms";
      if (!st.stats.complete)
        os << " [truncated: "
           << explore::truncation_reason_name(st.stats.truncation) << "]";
      os << "\n";
    }
  }
  if (result.violation) {
    os << "  violation: "
       << explore::violation_kind_name(result.violation->kind) << " -- "
       << result.violation->message << "\n";
    os << "  counterexample (" << result.violation->trace.size()
       << " steps):\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt) {
  SafetyOutcome out;
  out.property_name = "safety (assertions + no invalid end states)";
  run_ladder(m, to_explore_options(opt), opt, out);
  return out;
}

SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt) {
  explore::Options eopt = to_explore_options(opt);
  eopt.invariant = invariant.ref;
  eopt.invariant_name = name;
  SafetyOutcome out;
  out.property_name = "invariant: " + name;
  run_ladder(m, eopt, opt, out);
  return out;
}

std::string LtlOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] LTL: " << result.formula_text
     << "  (Buchi states: " << result.buchi_states << ")\n";
  append_stats(os, result.stats);
  if (result.violation) {
    os << "  " << result.violation->message << "\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt) {
  explore::Options eopt = to_explore_options(opt);
  eopt.end_invariant = inv.ref;
  eopt.end_invariant_name = name;
  SafetyOutcome out;
  out.property_name = "end invariant: " + name;
  run_ladder(m, eopt, opt, out);
  return out;
}

LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt) {
  LtlOutcome out;
  out.result = ltl::check_ltl(m, props, formula, opt);
  return out;
}

// -- resilience checking -------------------------------------------------------

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::MessageLoss: return "message-loss";
    case FaultKind::MessageDuplication: return "message-duplication";
    case FaultKind::MessageReorder: return "message-reorder";
    case FaultKind::SendTimeout: return "send-timeout";
    case FaultKind::CrashRestart: return "crash-restart";
  }
  return "?";
}

namespace {

ChannelKind fault_channel_kind(FaultKind k) {
  switch (k) {
    case FaultKind::MessageLoss: return ChannelKind::DroppingFifo;
    case FaultKind::MessageDuplication: return ChannelKind::DuplicatingFifo;
    case FaultKind::MessageReorder: return ChannelKind::ReorderingFifo;
    default: raise_model_error("fault_channel_kind: not a channel fault");
  }
}

/// Applies one fault as a plug-and-play connector/component edit on a copy
/// of the design; returns the human-readable description for the report.
std::string apply_fault(Architecture& arch, const FaultSpec& f) {
  std::ostringstream os;
  switch (f.kind) {
    case FaultKind::MessageLoss:
    case FaultKind::MessageDuplication:
    case FaultKind::MessageReorder: {
      const int c = arch.find_connector(f.target);
      PNP_CHECK(c >= 0,
                "check_resilience: unknown connector '" + f.target + "'");
      ChannelSpec spec = arch.connectors()[static_cast<std::size_t>(c)].channel;
      PNP_CHECK(spec.kind != ChannelKind::EventPool,
                "check_resilience: channel faults do not apply to event-pool "
                "connector '" + f.target + "'");
      spec.kind = fault_channel_kind(f.kind);
      if (spec.capacity < 1) spec.capacity = 1;
      // A capacity-1 duplicating channel never has room for the duplicate;
      // widen so the fault is actually exercisable.
      if (f.kind == FaultKind::MessageDuplication && spec.capacity < 2)
        spec.capacity = 2;
      arch.set_channel(c, spec);
      os << to_string(f.kind) << " on connector '" << f.target << "'";
      break;
    }
    case FaultKind::SendTimeout: {
      const std::size_t dot = f.target.find('.');
      PNP_CHECK(dot != std::string::npos,
                "check_resilience: SendTimeout target must be "
                "'component.port', got '" + f.target + "'");
      const int comp = arch.find_component(f.target.substr(0, dot));
      PNP_CHECK(comp >= 0, "check_resilience: unknown component in '" +
                               f.target + "'");
      const int retries = f.budget > 0 ? f.budget : 2;
      arch.set_send_port(comp, f.target.substr(dot + 1),
                         SendPortKind::TimeoutRetry, retries);
      os << "send-timeout (" << retries << " retries) on '" << f.target
         << "'";
      break;
    }
    case FaultKind::CrashRestart: {
      const int comp = arch.find_component(f.target);
      PNP_CHECK(comp >= 0,
                "check_resilience: unknown component '" + f.target + "'");
      const int crashes = f.budget > 0 ? f.budget : 1;
      arch.set_crash_restart(comp, crashes);
      os << "crash-restart (<= " << crashes << ") of component '" << f.target
         << "'";
      break;
    }
  }
  return os.str();
}

SafetyOutcome verify_variant(ModelGenerator& gen, const Architecture& arch,
                             const ResilienceOptions& opts,
                             const std::string& label) {
  kernel::Machine m = gen.generate(arch, opts.gen);
  SafetyOutcome out;
  if (!opts.invariant_text.empty()) {
    expr::Ex inv = gen.parse_expr_text(opts.invariant_text);
    out = check_invariant(m, inv, opts.invariant_text, opts.verify);
  } else {
    out = check_safety(m, opts.verify);
  }
  out.property_name += "  [" + label + "]";
  return out;
}

/// verify_variant on an owned snapshot (parallel resilience path): the
/// invariant was parsed at snapshot time, so no generator access happens
/// here and the call is safe on a worker thread.
SafetyOutcome verify_owned(ModelGenerator::OwnedModel& model,
                           const ResilienceOptions& opts,
                           const std::string& label) {
  SafetyOutcome out;
  if (model.invariant != expr::kNoExpr) {
    out = check_invariant(*model.machine,
                          expr::wrap(model.sys->exprs, model.invariant),
                          opts.invariant_text, opts.verify);
  } else {
    out = check_safety(*model.machine, opts.verify);
  }
  out.property_name += "  [" + label + "]";
  return out;
}

}  // namespace

bool ResilienceReport::all_tolerated() const {
  for (const FaultOutcome& f : faults)
    if (!f.tolerated()) return false;
  return true;
}

std::string ResilienceReport::report() const {
  std::ostringstream os;
  os << "resilience report for architecture '" << architecture << "'\n";
  if (baseline) {
    os << "  baseline (no faults): " << (baseline->passed() ? "PASS" : "FAIL");
    if (baseline->degraded()) os << "  (degraded to bitstate)";
    os << "\n";
    if (!baseline->passed())
      os << "  note: fault verdicts below are not meaningful while the "
            "baseline fails\n";
  }
  for (const FaultOutcome& f : faults) {
    os << "  " << (f.tolerated() ? "tolerated " : "VULNERABLE") << "  "
       << f.description;
    if (f.outcome.degraded()) os << "  (degraded to bitstate)";
    if (!f.tolerated() && f.outcome.result.violation)
      os << "  -- "
         << explore::violation_kind_name(f.outcome.result.violation->kind);
    os << "\n";
  }
  os << "  verdict: "
     << (all_tolerated() ? "all injected faults tolerated"
                         : "architecture is fault-intolerant")
     << "\n";
  os << "  model generation (all variants): " << gen_stats.summary() << "\n";
  return os.str();
}

std::vector<FaultSpec> default_fault_suite(const Architecture& arch) {
  std::vector<FaultSpec> out;
  for (const ConnectorDecl& c : arch.connectors()) {
    if (c.channel.kind == ChannelKind::EventPool) continue;
    out.push_back({FaultKind::MessageLoss, c.name, 0});
    out.push_back({FaultKind::MessageDuplication, c.name, 0});
    out.push_back({FaultKind::MessageReorder, c.name, 0});
  }
  for (const Attachment& a : arch.attachments()) {
    if (!a.is_sender) continue;
    // Event pools only accept asynchronous send ports (validate() enforces
    // it), so the TimeoutRetry wrapper cannot be injected there.
    if (arch.connectors()[static_cast<std::size_t>(a.connector)].channel.kind ==
        ChannelKind::EventPool)
      continue;
    out.push_back(
        {FaultKind::SendTimeout,
         arch.components()[static_cast<std::size_t>(a.component)].name + "." +
             a.port_name,
         2});
  }
  for (const ComponentDecl& c : arch.components())
    out.push_back({FaultKind::CrashRestart, c.name, 1});
  return out;
}

ResilienceReport check_resilience(const Architecture& arch,
                                  const std::vector<FaultSpec>& faults,
                                  ResilienceOptions opts) {
  ResilienceReport rep;
  rep.architecture = arch.name();
  // One generator across baseline + every fault variant: component models
  // and unchanged blocks are built once and reused, exactly the paper's
  // design-iteration loop applied to fault injection.
  ModelGenerator gen;
  const int jobs = explore::resolve_threads(opts.jobs);
  if (jobs <= 1) {
    if (opts.include_baseline)
      rep.baseline = verify_variant(gen, arch, opts, "baseline: no faults");
    for (const FaultSpec& f : faults) {
      Architecture variant = arch;  // the caller's design stays untouched
      FaultOutcome fo;
      fo.fault = f;
      fo.description = apply_fault(variant, f);
      fo.outcome = verify_variant(gen, variant, opts, fo.description);
      rep.faults.push_back(std::move(fo));
    }
    rep.gen_stats = gen.total_stats();
    return rep;
  }

  // Parallel path. Phase 1, sequential: generate every variant through the
  // shared generator (keeping the build-once/reuse accounting exact) and
  // snapshot each into an owned model. Phase 2, concurrent: verify the
  // snapshots -- the expensive part -- on `jobs` workers. Per-variant
  // verdicts are independent, so the report is bit-identical to the
  // sequential one regardless of scheduling.
  struct Variant {
    std::string label;
    ModelGenerator::OwnedModel model;
    SafetyOutcome outcome;
  };
  std::vector<Variant> variants;
  variants.reserve(faults.size() + 1);
  if (opts.include_baseline)
    variants.push_back({"baseline: no faults",
                        gen.generate_owned(arch, opts.invariant_text, opts.gen),
                        {}});
  for (const FaultSpec& f : faults) {
    Architecture variant = arch;
    std::string desc = apply_fault(variant, f);
    variants.push_back(
        {std::move(desc),
         gen.generate_owned(variant, opts.invariant_text, opts.gen), {}});
  }
  rep.gen_stats = gen.total_stats();

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= variants.size()) return;
      variants[i].outcome = verify_owned(variants[i].model, opts,
                                         variants[i].label);
    }
  };
  std::vector<std::thread> crew;
  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(jobs), variants.size());
  crew.reserve(n_workers);
  for (std::size_t t = 0; t < n_workers; ++t) crew.emplace_back(drain);
  for (std::thread& t : crew) t.join();

  std::size_t idx = 0;
  if (opts.include_baseline)
    rep.baseline = std::move(variants[idx++].outcome);
  for (const FaultSpec& f : faults) {
    FaultOutcome fo;
    fo.fault = f;
    fo.description = std::move(variants[idx].label);
    fo.outcome = std::move(variants[idx].outcome);
    rep.faults.push_back(std::move(fo));
    ++idx;
  }
  return rep;
}

}  // namespace pnp
