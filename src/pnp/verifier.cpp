#include "pnp/verifier.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include "explore/checkpoint.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

void append_stats(std::ostringstream& os, const explore::Stats& st) {
  os << "  states stored: " << st.states_stored
     << ", matched: " << st.states_matched
     << ", transitions: " << st.transitions << ", " << st.seconds * 1e3
     << " ms";
  if (!st.complete)
    os << "  [truncated: " << explore::truncation_reason_name(st.truncation)
       << "]";
  os << "\n";
  if (st.states_per_second() > 0.0 || st.store_bytes > 0) {
    os << "  throughput: "
       << static_cast<std::uint64_t>(st.states_per_second()) << " states/s, "
       << st.store_bytes_per_state() << " B/state ("
       << st.store_bytes / 1024.0 / 1024.0 << " MiB store)\n";
  }
}

explore::Options to_explore_options(const VerifyOptions& opt) {
  explore::Options eopt;
  eopt.max_states = opt.max_states;
  eopt.check_deadlock = opt.check_deadlock;
  eopt.por = opt.por;
  eopt.bfs = opt.bfs;
  eopt.deadline_seconds = opt.deadline_seconds;
  eopt.memory_budget_bytes = opt.memory_budget_bytes;
  eopt.threads = opt.threads;
  eopt.obs = opt.obs;
  eopt.spill_dir = opt.spill_dir;
  eopt.interrupt = opt.interrupt;
  return eopt;
}

/// The degradation ladder. Stage 1 is the exact search. When it is
/// truncated (max_states / deadline / memory budget) without reaching a
/// verdict, stage 2 reruns with bitstate hashing and a widened filter: the
/// per-state cost collapses to two Bloom-filter bits, so the same budget
/// covers orders of magnitude more states. A violation found by either
/// stage is a real counterexample; only "pass" verdicts lose certainty
/// going down the ladder, and the recorded stages say exactly what ran.
void run_ladder(const kernel::Machine& m, explore::Options eopt,
                const VerifyOptions& opt, SafetyOutcome& out) {
  const bool parallel = explore::resolve_threads(opt.threads) > 1;
  obs::Observer* ob = opt.obs;
  // Minimized rungs: quotient every proctype, then explore the product of
  // the quotients. The reduced machine shares m's SystemSpec, so invariant
  // expression refs and trace rendering carry over unchanged.
  const kernel::Machine* target = &m;
  std::optional<reduce::ReducedMachine> reduced;
  std::string prefix;
  if (opt.minimize != MinimizeMode::Off) {
    std::size_t ph = 0;
    if (ob != nullptr) ph = ob->begin_phase("minimize", 0);
    reduced.emplace(m, opt.minimize == MinimizeMode::Weak
                           ? reduce::Equivalence::Weak
                           : reduce::Equivalence::Strong);
    out.reduction = reduced->stats();
    target = &reduced->machine();
    prefix = "minimized-";
    if (ob != nullptr) {
      obs::Recorder& rec = ob->recorder();
      rec.max_gauge(obs::Gauge::MinimizeStatesBefore,
                    static_cast<std::uint64_t>(
                        out.reduction->total_states_before()));
      rec.max_gauge(obs::Gauge::MinimizeStatesAfter,
                    static_cast<std::uint64_t>(
                        out.reduction->total_states_after()));
      ob->end_phase(ph, 0, 0.0);
    }
  }
  // Successor engine over the (possibly minimized) target machine, built
  // once and shared by both rungs. AOT artifacts are content-addressed by
  // the machine digest, so repeated runs over an unchanged machine reuse
  // the cached .so. On an AOT resume the bytecode fallback is disabled
  // (strict): silently continuing a resumed search under a different
  // engine than requested is exactly the configuration drift that resume
  // exists to reject loudly.
  std::unique_ptr<codegen::Engine> engine;
  out.engine_requested = opt.engine;
  if (opt.engine != codegen::EngineKind::Interp) {
    codegen::EngineOptions ecfg;
    ecfg.kind = opt.engine;
    ecfg.cache_dir = opt.engine_cache_dir;
    ecfg.strict = opt.resume && opt.engine == codegen::EngineKind::Aot;
    ecfg.obs = ob;
    engine = codegen::make_engine(*target, ecfg, &out.engine_note);
    eopt.engine = engine.get();
  }
  out.engine_actual =
      engine != nullptr ? engine->kind() : codegen::EngineKind::Interp;
  // Durable-run identity: one checkpoint file per property, addressed by
  // the property name; the configuration digest travels INSIDE the file
  // (pnp.ckpt.v1 header), so resuming under an edited configuration finds
  // the same path but a mismatched digest and is rejected -- never a
  // silent splice of incompatible state spaces.
  std::optional<explore::Checkpoint> resume_ckpt;
  if (!opt.checkpoint_dir.empty()) {
    std::string cfg = opt.config_digest;
    if (cfg.empty()) {
      std::ostringstream ds;
      ds << "max_states=" << opt.max_states << ";deadlock="
         << opt.check_deadlock << ";por=" << opt.por << ";bfs=" << opt.bfs
         << ";deadline=" << opt.deadline_seconds
         << ";mem=" << opt.memory_budget_bytes
         << ";minimize=" << to_string(opt.minimize);
      cfg = hex64(stable_hash64(ds.str()));
    }
    eopt.config_digest = cfg + ":" + hex64(stable_hash64(out.property_name));
    eopt.checkpoint_every = opt.checkpoint_every;
    std::error_code ec;
    std::filesystem::create_directories(opt.checkpoint_dir, ec);
    eopt.checkpoint_path =
        (std::filesystem::path(opt.checkpoint_dir) /
         ("ckpt-" + hex64(stable_hash64(out.property_name)) + ".pnp.ckpt"))
            .string();
    if (opt.resume && std::filesystem::exists(eopt.checkpoint_path, ec)) {
      resume_ckpt = explore::read_checkpoint(eopt.checkpoint_path);
      PNP_CHECK(resume_ckpt->meta.config_digest == eopt.config_digest,
                "checkpoint " + eopt.checkpoint_path +
                    " was written under a different configuration "
                    "(digest mismatch); refusing to resume");
      eopt.resume_from = &*resume_ckpt;
    }
  }
  /// One ladder rung with its phase bracket and incident events.
  auto run_rung = [&](const std::string& name) {
    std::size_t ph = 0;
    if (ob != nullptr) ph = ob->begin_phase(name, eopt.max_states);
    out.result = explore::explore(*target, eopt);
    const explore::Stats& st = out.result.stats;
    // A rung that outgrew its memory budget but finished exactly on
    // disk-backed stores is its own ladder stage: still an exact verdict,
    // but the stage name records that durability did the saving.
    out.stages.push_back({st.spilled ? name + "-spill" : name, st});
    if (ob == nullptr) return;
    const std::string trunc =
        st.complete ? std::string()
                    : explore::truncation_reason_name(st.truncation);
    ob->end_phase(ph, st.states_stored, st.seconds, trunc);
    if (!st.complete && st.truncation != explore::TruncationReason::None &&
        st.truncation != explore::TruncationReason::BitstateApprox &&
        !out.result.violation)
      ob->truncated(trunc);
    if (out.result.violation)
      ob->counterexample(out.property_name,
                         explore::violation_kind_name(
                             out.result.violation->kind));
  };
  run_rung(prefix + (parallel ? "exact-parallel" : "exact"));
  if (opt.degrade && !out.result.stats.complete && !out.result.violation &&
      out.result.stats.truncation != explore::TruncationReason::Interrupted) {
    // The bitstate rung stores hashes, not states: nothing to checkpoint,
    // and the exact rung's snapshot must not leak into it. (An interrupted
    // exact rung skips the ladder entirely -- the user asked to stop, and
    // the final checkpoint is the artifact they want.)
    eopt.checkpoint_path.clear();
    eopt.config_digest.clear();
    eopt.resume_from = nullptr;
    eopt.bitstate = true;
    eopt.bitstate_bytes = opt.bitstate_bytes;
    run_rung(prefix + (parallel ? "swarm-bitstate" : "bitstate"));
  }
}

}  // namespace

const char* to_string(MinimizeMode m) {
  switch (m) {
    case MinimizeMode::Off: return "off";
    case MinimizeMode::Strong: return "strong";
    case MinimizeMode::Weak: return "weak";
  }
  return "?";
}

std::string SafetyOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] " << property_name << "\n";
  append_stats(os, result.stats);
  if (engine_requested != codegen::EngineKind::Interp) {
    os << "  engine: " << codegen::engine_kind_name(engine_actual);
    if (engine_actual != engine_requested)
      os << " (requested " << codegen::engine_kind_name(engine_requested)
         << "; " << engine_note << ")";
    os << "\n";
  }
  if (reduction) os << "  " << reduction->summary() << "\n";
  if (degraded()) {
    os << "  degradation ladder:\n";
    for (const VerifyStage& st : stages) {
      os << "    stage " << st.name << ":";
      os << " stored " << st.stats.states_stored << ", "
         << st.stats.seconds * 1e3 << " ms";
      if (!st.stats.complete)
        os << " [truncated: "
           << explore::truncation_reason_name(st.stats.truncation) << "]";
      os << "\n";
    }
  }
  if (result.violation) {
    os << "  violation: "
       << explore::violation_kind_name(result.violation->kind) << " -- "
       << result.violation->message << "\n";
    os << "  counterexample (" << result.violation->trace.size()
       << " steps):\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt) {
  SafetyOutcome out;
  out.property_name = "safety (assertions + no invalid end states)";
  run_ladder(m, to_explore_options(opt), opt, out);
  return out;
}

SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt) {
  explore::Options eopt = to_explore_options(opt);
  eopt.invariant = invariant.ref;
  eopt.invariant_name = name;
  SafetyOutcome out;
  out.property_name = "invariant: " + name;
  run_ladder(m, eopt, opt, out);
  return out;
}

std::string LtlOutcome::report() const {
  std::ostringstream os;
  os << "[" << (passed() ? "PASS" : "FAIL") << "] LTL: " << result.formula_text
     << "  (Buchi states: " << result.buchi_states << ")\n";
  append_stats(os, result.stats);
  if (result.engine_requested != codegen::EngineKind::Interp) {
    os << "  engine: " << codegen::engine_kind_name(result.engine_actual);
    if (result.engine_actual != result.engine_requested)
      os << " (requested "
         << codegen::engine_kind_name(result.engine_requested) << "; "
         << result.engine_note << ")";
    os << "\n";
  }
  if (result.violation) {
    os << "  " << result.violation->message << "\n";
    os << trace::to_string(result.violation->trace);
  }
  return os.str();
}

SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt) {
  explore::Options eopt = to_explore_options(opt);
  eopt.end_invariant = inv.ref;
  eopt.end_invariant_name = name;
  SafetyOutcome out;
  out.property_name = "end invariant: " + name;
  run_ladder(m, eopt, opt, out);
  return out;
}

SafetyOutcome check_machine(const kernel::Machine& m, const SafetyProps& props,
                            VerifyOptions opt) {
  explore::Options eopt = to_explore_options(opt);
  std::string name = "safety (assertions + no invalid end states";
  if (props.invariant != expr::kNoExpr) {
    eopt.invariant = props.invariant;
    eopt.invariant_name = props.invariant_name;
    name += " + invariant: " + props.invariant_name;
  }
  if (props.end_invariant != expr::kNoExpr) {
    eopt.end_invariant = props.end_invariant;
    eopt.end_invariant_name = props.end_invariant_name;
    name += " + end invariant: " + props.end_invariant_name;
  }
  name += ")";
  SafetyOutcome out;
  out.property_name = std::move(name);
  run_ladder(m, eopt, opt, out);
  return out;
}

LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt) {
  LtlOutcome out;
  out.result = ltl::check_ltl(m, props, formula, opt);
  return out;
}

// -- cached obligation-suite verification --------------------------------------

namespace {

/// Canonical text of every option that can change an obligation's verdict
/// or its confidence. `threads` is deliberately excluded: the parallel
/// engines are verdict-equivalent to the sequential ones by construction,
/// so a cache written with -j1 stays valid with -j8 (and vice versa). The
/// durability fields (spill/checkpoint/resume, see ExecBudget) are
/// excluded for the same reason: a spilled or resumed run reaches the
/// verdict the uninterrupted in-RAM run would have. The successor engine
/// (interp/bytecode/aot) is excluded too -- engines are successor-set
/// equivalent, so a verdict cached under one answers for all three.
std::string options_text(const VerifyOptions& v, const GenOptions& g) {
  std::ostringstream os;
  os << "max_states=" << v.max_states << ";deadlock=" << v.check_deadlock
     << ";por=" << v.por << ";bfs=" << v.bfs
     << ";deadline=" << v.deadline_seconds << ";mem=" << v.memory_budget_bytes
     << ";degrade=" << v.degrade << ";bitstate=" << v.bitstate_bytes
     << ";minimize=" << to_string(v.minimize)
     << ";optimize=" << g.optimize_connectors;
  return os.str();
}

/// Sender driver for the port-protocol harness: pumps `n` tagged messages
/// and terminates at a valid end state. Tolerant of SEND_FAIL (the status
/// is consumed with a wildcard), so it composes with every send-port kind.
ComponentModelFn protocol_sender(int n) {
  return [n](ComponentContext& ctx) {
    using namespace model;
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    const LVar i = b.local("i", 1);
    iface::SendMeta meta;
    meta.tag = 1;  // satisfies selective receivers on the same connector
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(n)),
                           iface::send_msg(b, out, b.l(i), meta),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(n)), break_()))),
               end_label());
  };
}

/// Receiver driver: consumes forever from a valid-end loop head. RECV_FAIL
/// stubs from nonblocking ports are simply absorbed by the next iteration.
ComponentModelFn protocol_receiver(bool selective) {
  return [selective](ComponentContext& ctx) {
    using namespace model;
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar v = b.local("v");
    iface::RecvMeta meta;
    if (selective) meta.tag = 1;
    return seq(do_(alt(seq(end_label(), iface::recv_msg(b, in, v, meta)))));
  };
}

/// The isolation harness for one connector: the connector verbatim, with
/// every real attachment replaced by a canonical driver in the same port
/// configuration. Its state space depends only on the connector slice, so
/// the verdict can be cached under the slice digest alone.
Architecture make_protocol_harness(const Architecture& arch, int ci) {
  const ConnectorDecl& conn =
      arch.connectors()[static_cast<std::size_t>(ci)];
  Architecture h("protocol:" + conn.name);
  const int hc = h.add_connector(conn.name, conn.channel);
  for (const Attachment* a : arch.attachments_of(ci)) {
    // driver names mirror the real attachment so reports read naturally
    const std::string dname =
        arch.components()[static_cast<std::size_t>(a->component)].name + "." +
        a->port_name;
    if (a->is_sender) {
      const int d = h.add_component(dname, protocol_sender(2));
      h.attach_sender(d, "out", hc, a->send_kind);
      if (a->send_kind == SendPortKind::TimeoutRetry)
        h.set_send_port(d, "out", a->send_kind, a->send_retries);
    } else {
      const int d =
          h.add_component(dname, protocol_receiver(a->recv_opts.selective));
      h.attach_receiver(d, "in", hc, a->recv_kind, a->recv_opts);
    }
  }
  return h;
}

ObligationResult from_cache_hit(const reduce::ObligationKey& key,
                                const reduce::CacheEntry& e) {
  ObligationResult r;
  r.kind = key.kind;
  r.label = key.label;
  r.digest = key.digest();
  r.passed = e.passed;
  r.from_cache = true;
  r.stage = e.stage;
  r.states_stored = e.states_stored;
  r.seconds = e.seconds;
  return r;
}

ObligationResult from_safety(const reduce::ObligationKey& key,
                             const SafetyOutcome& so,
                             reduce::VerificationCache& cache) {
  ObligationResult r;
  r.kind = key.kind;
  r.label = key.label;
  r.digest = key.digest();
  r.passed = so.passed();
  r.stage = so.stages.empty() ? "exact" : so.stages.back().name;
  r.states_stored = so.result.stats.states_stored;
  r.seconds = so.result.stats.seconds;
  r.detail = so.report();
  r.engine = codegen::engine_kind_name(so.engine_actual);
  r.engine_note = so.engine_note;
  cache.record(key, {"", key.kind, key.label, r.passed, r.stage,
                     r.states_stored, r.seconds});
  return r;
}

}  // namespace

int SuiteReport::cache_hits() const {
  int n = 0;
  for (const ObligationResult& o : obligations) n += o.from_cache ? 1 : 0;
  return n;
}

int SuiteReport::recomputed() const {
  return static_cast<int>(obligations.size()) - cache_hits();
}

bool SuiteReport::all_passed() const {
  for (const ObligationResult& o : obligations)
    if (!o.passed) return false;
  return true;
}

std::string SuiteReport::report() const {
  std::ostringstream os;
  os << "obligation suite for architecture '" << architecture << "'\n";
  for (const ObligationResult& o : obligations) {
    os << "  [" << (o.passed ? "PASS" : "FAIL") << "] " << o.kind << " '"
       << o.label << "'";
    if (o.from_cache)
      os << "  (cached: " << o.stage << ", " << o.states_stored
         << " states, " << o.seconds * 1e3 << " ms when verified)";
    else
      os << "  (" << o.stage << ", " << o.states_stored << " states, "
         << o.seconds * 1e3 << " ms)";
    os << "\n";
  }
  os << "  obligations: " << obligations.size() << " total, " << cache_hits()
     << " from cache, " << recomputed() << " verified this run\n";
  {
    std::uint64_t states = 0;
    double secs = 0.0;
    for (const ObligationResult& o : obligations)
      if (!o.from_cache) {
        states += o.states_stored;
        secs += o.seconds;
      }
    if (secs > 0.0)
      os << "  throughput: "
         << static_cast<std::uint64_t>(static_cast<double>(states) / secs)
         << " states/s over " << states << " states verified this run\n";
  }
  if (reduction) os << "  " << reduction->summary() << "\n";
  os << "  verdict: " << (all_passed() ? "all obligations hold"
                                       : "OBLIGATIONS FAILED")
     << "\n";
  os << "  model generation: " << gen_stats.summary() << "\n";
  return os.str();
}

namespace {

/// Per-invocation generation stats when the ModelGenerator is shared across
/// suites (pnp::Session): the generator's totals are cumulative, so one
/// suite's share is the difference against the entry snapshot.
GenStats stats_since(const GenStats& total, const GenStats& before) {
  GenStats d = total;
  d.component_models_built -= before.component_models_built;
  d.component_models_reused -= before.component_models_reused;
  d.block_models_built -= before.block_models_built;
  d.block_models_reused -= before.block_models_reused;
  d.channels_declared -= before.channels_declared;
  d.channels_reused -= before.channels_reused;
  d.proctypes_compiled -= before.proctypes_compiled;
  d.connectors_optimized -= before.connectors_optimized;
  d.seconds -= before.seconds;
  return d;
}

/// Cold-path telemetry for one settled obligation: the per-obligation
/// counters plus an ObligationFinished event with kind/stage/cache attrs.
void note_obligation(obs::Observer* ob, const ObligationResult& r) {
  if (ob == nullptr) return;
  obs::Recorder& rec = ob->recorder();
  rec.add(r.from_cache ? obs::Counter::ObligationsFromCache
                       : obs::Counter::ObligationsVerified,
          1);
  rec.add(r.from_cache ? obs::Counter::CacheHits : obs::Counter::CacheMisses,
          1);
  obs::Event e;
  e.kind = obs::EventKind::ObligationFinished;
  e.label = r.label;
  e.passed = r.passed;
  e.states = r.states_stored;
  e.seconds = r.seconds;
  e.attrs.emplace_back("kind", r.kind);
  e.attrs.emplace_back("stage", r.stage);
  e.attrs.emplace_back("cache", r.from_cache ? "hit" : "miss");
  ob->emit(e);
}

}  // namespace

SuiteReport verify_obligations(const Architecture& arch,
                               const SuiteOptions& opts, ModelGenerator* gen_in) {
  arch.validate();
  SuiteReport rep;
  rep.architecture = arch.name();
  obs::Observer* ob = opts.verify.obs;
  reduce::VerificationCache local_cache =
      opts.cache == nullptr && !opts.cache_dir.empty()
          ? reduce::VerificationCache(opts.cache_dir)
          : reduce::VerificationCache();
  reduce::VerificationCache& cache =
      opts.cache != nullptr ? *opts.cache : local_cache;
  ModelGenerator own_gen;
  ModelGenerator& gen = gen_in != nullptr ? *gen_in : own_gen;
  const GenStats gen_before = gen.total_stats();

  // Local obligations first: every harness generate() invalidates the
  // previous borrowed Machine, so the main model must be generated last.
  if (opts.connector_protocols) {
    VerifyOptions popt = opts.verify;
    popt.check_deadlock = true;  // the obligation IS deadlock freedom
    // No durability for the harnesses: every protocol obligation shares
    // one property name, so a single checkpoint identity would alias
    // across connectors -- and the driver state spaces are tiny anyway.
    popt.checkpoint_dir.clear();
    popt.resume = false;
    const std::uint64_t popt_hash =
        stable_hash64(options_text(popt, GenOptions{}));
    for (int ci = 0; ci < static_cast<int>(arch.connectors().size()); ++ci) {
      reduce::ObligationKey key;
      key.kind = "connector-protocol";
      key.label = arch.connectors()[static_cast<std::size_t>(ci)].name;
      key.slice_hash = stable_hash64(connector_slice_text(arch, ci));
      key.property_hash = stable_hash64("port-protocol deadlock freedom v1");
      key.options_hash = popt_hash;
      if (auto hit = cache.lookup(key)) {
        rep.obligations.push_back(from_cache_hit(key, *hit));
        continue;
      }
      // Faithful building blocks on purpose: the optimized (section 6)
      // receive ports block on empty queues, which would quiesce the
      // harness mid-protocol and read as a spurious deadlock.
      kernel::Machine hm = gen.generate(make_protocol_harness(arch, ci));
      rep.obligations.push_back(
          from_safety(key, check_safety(hm, popt), cache));
    }
  }

  // Global obligations, all keyed by the whole-design slice.
  kernel::Machine m = gen.generate(arch, opts.gen);
  const std::uint64_t slice = stable_hash64(architecture_slice_text(arch));
  const std::uint64_t ohash =
      stable_hash64(options_text(opts.verify, opts.gen));
  auto global_key = [&](const std::string& kind, const std::string& label,
                        const std::string& property) {
    reduce::ObligationKey key;
    key.kind = kind;
    key.label = label;
    key.slice_hash = slice;
    key.property_hash = stable_hash64(property);
    key.options_hash = ohash;
    return key;
  };

  {
    const reduce::ObligationKey key = global_key(
        "safety", "assertions + deadlock", "assertions+invalid-end v1");
    if (auto hit = cache.lookup(key)) {
      rep.obligations.push_back(from_cache_hit(key, *hit));
    } else {
      SafetyOutcome so = check_safety(m, opts.verify);
      if (so.reduction) rep.reduction = so.reduction;
      rep.obligations.push_back(from_safety(key, so, cache));
    }
  }
  if (!opts.invariant_text.empty()) {
    const reduce::ObligationKey key = global_key(
        "invariant", opts.invariant_text, "invariant:" + opts.invariant_text);
    if (auto hit = cache.lookup(key)) {
      rep.obligations.push_back(from_cache_hit(key, *hit));
    } else {
      SafetyOutcome so =
          check_invariant(m, gen.parse_expr_text(opts.invariant_text),
                          opts.invariant_text, opts.verify);
      rep.obligations.push_back(from_safety(key, so, cache));
    }
  }
  if (!opts.end_invariant_text.empty()) {
    const reduce::ObligationKey key =
        global_key("end-invariant", opts.end_invariant_text,
                   "end-invariant:" + opts.end_invariant_text);
    if (auto hit = cache.lookup(key)) {
      rep.obligations.push_back(from_cache_hit(key, *hit));
    } else {
      SafetyOutcome so = check_end_invariant(
          m, gen.parse_expr_text(opts.end_invariant_text),
          opts.end_invariant_text, opts.verify);
      rep.obligations.push_back(from_safety(key, so, cache));
    }
  }

  if (!opts.ltl.empty()) {
    // The proposition definitions are part of every formula's property
    // text: renaming or re-pointing a prop must miss the cache.
    std::string prop_defs;
    for (const auto& [name, text] : opts.props) {
      gen.add_prop(name, gen.parse_expr_text(text));
      prop_defs += name + "=" + text + ";";
    }
    // Weak tau-contraction is stutter-unsound; LTL always quotients by
    // strong bisimulation when minimization is requested.
    std::optional<reduce::ReducedMachine> strong;
    const kernel::Machine* lm = &m;
    std::string stage = "ltl-nested-dfs";
    if (opts.verify.minimize != MinimizeMode::Off) {
      strong.emplace(m, reduce::Equivalence::Strong);
      lm = &strong->machine();
      stage = "minimized-ltl-nested-dfs";
    }
    ltl::CheckOptions copt;
    static_cast<ExecBudget&>(copt) = static_cast<const ExecBudget&>(opts.verify);
    copt.weak_fairness = opts.ltl_weak_fairness;
    copt.obs = ob;
    copt.engine = opts.verify.engine;
    copt.engine_cache_dir = opts.verify.engine_cache_dir;
    for (const std::string& formula : opts.ltl) {
      const reduce::ObligationKey key = global_key(
          "ltl", formula,
          "ltl:" + formula + "|props:" + prop_defs +
              "|fair=" + (opts.ltl_weak_fairness ? "1" : "0"));
      if (auto hit = cache.lookup(key)) {
        rep.obligations.push_back(from_cache_hit(key, *hit));
        continue;
      }
      LtlOutcome lo = check_ltl_formula(*lm, gen.props(), formula, copt);
      ObligationResult r;
      r.kind = key.kind;
      r.label = key.label;
      r.digest = key.digest();
      r.passed = lo.passed();
      r.stage = stage;
      r.states_stored = lo.result.stats.states_stored;
      r.seconds = lo.result.stats.seconds;
      r.detail = lo.report();
      r.engine = codegen::engine_kind_name(lo.result.engine_actual);
      r.engine_note = lo.result.engine_note;
      cache.record(key, {"", key.kind, key.label, r.passed, r.stage,
                         r.states_stored, r.seconds});
      rep.obligations.push_back(std::move(r));
    }
  }

  if (!cache.flush() && ob != nullptr)
    // Degraded to uncached (disk full / short write, retries exhausted):
    // this run's verdicts stand but will be recomputed next time. The
    // warning lands in the ledger's incident list.
    ob->budget_warning("verdict-cache-io", cache.size(), 0);
  rep.gen_stats = stats_since(gen.total_stats(), gen_before);
  if (ob != nullptr)
    for (const ObligationResult& o : rep.obligations) note_obligation(ob, o);
  return rep;
}

// -- resilience checking -------------------------------------------------------

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::MessageLoss: return "message-loss";
    case FaultKind::MessageDuplication: return "message-duplication";
    case FaultKind::MessageReorder: return "message-reorder";
    case FaultKind::SendTimeout: return "send-timeout";
    case FaultKind::CrashRestart: return "crash-restart";
  }
  return "?";
}

namespace {

ChannelKind fault_channel_kind(FaultKind k) {
  switch (k) {
    case FaultKind::MessageLoss: return ChannelKind::DroppingFifo;
    case FaultKind::MessageDuplication: return ChannelKind::DuplicatingFifo;
    case FaultKind::MessageReorder: return ChannelKind::ReorderingFifo;
    default: raise_model_error("fault_channel_kind: not a channel fault");
  }
}

/// Applies one fault as a plug-and-play connector/component edit on a copy
/// of the design; returns the human-readable description for the report.
std::string apply_fault(Architecture& arch, const FaultSpec& f) {
  std::ostringstream os;
  switch (f.kind) {
    case FaultKind::MessageLoss:
    case FaultKind::MessageDuplication:
    case FaultKind::MessageReorder: {
      const int c = arch.find_connector(f.target);
      PNP_CHECK(c >= 0,
                "check_resilience: unknown connector '" + f.target + "'");
      ChannelSpec spec = arch.connectors()[static_cast<std::size_t>(c)].channel;
      PNP_CHECK(spec.kind != ChannelKind::EventPool,
                "check_resilience: channel faults do not apply to event-pool "
                "connector '" + f.target + "'");
      spec.kind = fault_channel_kind(f.kind);
      if (spec.capacity < 1) spec.capacity = 1;
      // A capacity-1 duplicating channel never has room for the duplicate;
      // widen so the fault is actually exercisable.
      if (f.kind == FaultKind::MessageDuplication && spec.capacity < 2)
        spec.capacity = 2;
      arch.set_channel(c, spec);
      os << to_string(f.kind) << " on connector '" << f.target << "'";
      break;
    }
    case FaultKind::SendTimeout: {
      const std::size_t dot = f.target.find('.');
      PNP_CHECK(dot != std::string::npos,
                "check_resilience: SendTimeout target must be "
                "'component.port', got '" + f.target + "'");
      const int comp = arch.find_component(f.target.substr(0, dot));
      PNP_CHECK(comp >= 0, "check_resilience: unknown component in '" +
                               f.target + "'");
      const int retries = f.budget > 0 ? f.budget : 2;
      arch.set_send_port(comp, f.target.substr(dot + 1),
                         SendPortKind::TimeoutRetry, retries);
      os << "send-timeout (" << retries << " retries) on '" << f.target
         << "'";
      break;
    }
    case FaultKind::CrashRestart: {
      const int comp = arch.find_component(f.target);
      PNP_CHECK(comp >= 0,
                "check_resilience: unknown component '" + f.target + "'");
      const int crashes = f.budget > 0 ? f.budget : 1;
      arch.set_crash_restart(comp, crashes);
      os << "crash-restart (<= " << crashes << ") of component '" << f.target
         << "'";
      break;
    }
  }
  return os.str();
}

SafetyOutcome verify_variant(ModelGenerator& gen, const Architecture& arch,
                             const ResilienceOptions& opts,
                             const std::string& label) {
  kernel::Machine m = gen.generate(arch, opts.gen);
  SafetyOutcome out;
  if (!opts.invariant_text.empty()) {
    expr::Ex inv = gen.parse_expr_text(opts.invariant_text);
    out = check_invariant(m, inv, opts.invariant_text, opts.verify);
  } else {
    out = check_safety(m, opts.verify);
  }
  out.property_name += "  [" + label + "]";
  return out;
}

/// verify_variant on an owned snapshot (parallel resilience path): the
/// invariant was parsed at snapshot time, so no generator access happens
/// here and the call is safe on a worker thread.
SafetyOutcome verify_owned(ModelGenerator::OwnedModel& model,
                           const ResilienceOptions& opts,
                           const std::string& label) {
  SafetyOutcome out;
  if (model.invariant != expr::kNoExpr) {
    out = check_invariant(*model.machine,
                          expr::wrap(model.sys->exprs, model.invariant),
                          opts.invariant_text, opts.verify);
  } else {
    out = check_safety(*model.machine, opts.verify);
  }
  out.property_name += "  [" + label + "]";
  return out;
}

}  // namespace

bool ResilienceReport::all_tolerated() const {
  for (const FaultOutcome& f : faults)
    if (!f.tolerated()) return false;
  return true;
}

std::string ResilienceReport::report() const {
  std::ostringstream os;
  os << "resilience report for architecture '" << architecture << "'\n";
  if (baseline) {
    os << "  baseline (no faults): " << (baseline->passed() ? "PASS" : "FAIL");
    if (baseline->degraded()) os << "  (degraded to bitstate)";
    os << "\n";
    if (!baseline->passed())
      os << "  note: fault verdicts below are not meaningful while the "
            "baseline fails\n";
  }
  for (const FaultOutcome& f : faults) {
    os << "  " << (f.tolerated() ? "tolerated " : "VULNERABLE") << "  "
       << f.description;
    if (f.outcome.degraded()) os << "  (degraded to bitstate)";
    if (!f.tolerated() && f.outcome.result.violation)
      os << "  -- "
         << explore::violation_kind_name(f.outcome.result.violation->kind);
    os << "\n";
  }
  os << "  verdict: "
     << (all_tolerated() ? "all injected faults tolerated"
                         : "architecture is fault-intolerant")
     << "\n";
  os << "  model generation (all variants): " << gen_stats.summary() << "\n";
  return os.str();
}

std::vector<FaultSpec> default_fault_suite(const Architecture& arch) {
  std::vector<FaultSpec> out;
  for (const ConnectorDecl& c : arch.connectors()) {
    if (c.channel.kind == ChannelKind::EventPool) continue;
    out.push_back({FaultKind::MessageLoss, c.name, 0});
    out.push_back({FaultKind::MessageDuplication, c.name, 0});
    out.push_back({FaultKind::MessageReorder, c.name, 0});
  }
  for (const Attachment& a : arch.attachments()) {
    if (!a.is_sender) continue;
    // Event pools only accept asynchronous send ports (validate() enforces
    // it), so the TimeoutRetry wrapper cannot be injected there.
    if (arch.connectors()[static_cast<std::size_t>(a.connector)].channel.kind ==
        ChannelKind::EventPool)
      continue;
    out.push_back(
        {FaultKind::SendTimeout,
         arch.components()[static_cast<std::size_t>(a.component)].name + "." +
             a.port_name,
         2});
  }
  for (const ComponentDecl& c : arch.components())
    out.push_back({FaultKind::CrashRestart, c.name, 1});
  return out;
}

ResilienceReport check_resilience(const Architecture& arch,
                                  const std::vector<FaultSpec>& faults,
                                  ResilienceOptions opts,
                                  ModelGenerator* gen_in) {
  ResilienceReport rep;
  rep.architecture = arch.name();
  // Fault variants share property names, so one checkpoint identity would
  // alias across variants (and concurrently, on the parallel path).
  // Durability is for long single searches, not fault sweeps.
  opts.verify.checkpoint_dir.clear();
  opts.verify.resume = false;
  // One generator across baseline + every fault variant: component models
  // and unchanged blocks are built once and reused, exactly the paper's
  // design-iteration loop applied to fault injection. A caller-owned
  // generator (pnp::Session) extends that reuse across whole suites.
  ModelGenerator own_gen;
  ModelGenerator& gen = gen_in != nullptr ? *gen_in : own_gen;
  const GenStats gen_before = gen.total_stats();
  const int jobs = explore::resolve_threads(opts.jobs);
  if (jobs <= 1) {
    if (opts.include_baseline)
      rep.baseline = verify_variant(gen, arch, opts, "baseline: no faults");
    for (const FaultSpec& f : faults) {
      Architecture variant = arch;  // the caller's design stays untouched
      FaultOutcome fo;
      fo.fault = f;
      fo.description = apply_fault(variant, f);
      fo.outcome = verify_variant(gen, variant, opts, fo.description);
      rep.faults.push_back(std::move(fo));
    }
    rep.gen_stats = stats_since(gen.total_stats(), gen_before);
    return rep;
  }

  // Parallel path. Phase 1, sequential: generate every variant through the
  // shared generator (keeping the build-once/reuse accounting exact) and
  // snapshot each into an owned model. Phase 2, concurrent: verify the
  // snapshots -- the expensive part -- on `jobs` workers. Per-variant
  // verdicts are independent, so the report is bit-identical to the
  // sequential one regardless of scheduling.
  struct Variant {
    std::string label;
    ModelGenerator::OwnedModel model;
    SafetyOutcome outcome;
  };
  std::vector<Variant> variants;
  variants.reserve(faults.size() + 1);
  if (opts.include_baseline)
    variants.push_back({"baseline: no faults",
                        gen.generate_owned(arch, opts.invariant_text, opts.gen),
                        {}});
  for (const FaultSpec& f : faults) {
    Architecture variant = arch;
    std::string desc = apply_fault(variant, f);
    variants.push_back(
        {std::move(desc),
         gen.generate_owned(variant, opts.invariant_text, opts.gen), {}});
  }
  rep.gen_stats = stats_since(gen.total_stats(), gen_before);

  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= variants.size()) return;
      variants[i].outcome = verify_owned(variants[i].model, opts,
                                         variants[i].label);
    }
  };
  std::vector<std::thread> crew;
  const std::size_t n_workers =
      std::min(static_cast<std::size_t>(jobs), variants.size());
  crew.reserve(n_workers);
  for (std::size_t t = 0; t < n_workers; ++t) crew.emplace_back(drain);
  for (std::thread& t : crew) t.join();

  std::size_t idx = 0;
  if (opts.include_baseline)
    rep.baseline = std::move(variants[idx++].outcome);
  for (const FaultSpec& f : faults) {
    FaultOutcome fo;
    fo.fault = f;
    fo.description = std::move(variants[idx].label);
    fo.outcome = std::move(variants[idx].outcome);
    rep.faults.push_back(std::move(fo));
    ++idx;
  }
  return rep;
}

}  // namespace pnp
