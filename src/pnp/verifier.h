// Design-time verification facade: safety (assertions, deadlock, state
// invariants) and LTL checking over a generated model, with human-readable
// reports for the design-iterate-verify loop of the paper's section 4.
#pragma once

#include <string>

#include "explore/explorer.h"
#include "ltl/product.h"
#include "pnp/generator.h"

namespace pnp {

struct VerifyOptions {
  std::uint64_t max_states = 20'000'000;
  bool check_deadlock = true;
  bool por = false;
  bool bfs = false;  // shortest counterexamples
};

struct SafetyOutcome {
  std::string property_name;
  explore::Result result;

  bool passed() const { return result.ok(); }
  /// Multi-line report: verdict, state counts, and the counterexample trace
  /// when the property failed.
  std::string report() const;
};

/// Checks assertions + absence of invalid end states.
SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt = {});

/// Additionally checks that `invariant` holds in every reachable state.
SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt = {});

/// Checks that every TERMINAL state satisfies `inv` ("when the system
/// finishes, X has happened") -- the fairness-free way to state many
/// progress claims.
SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt = {});

struct LtlOutcome {
  ltl::LtlResult result;

  bool passed() const { return result.holds; }
  std::string report() const;
};

/// Checks the LTL formula text (propositions from `props`) on `m`.
/// Set `opt.weak_fairness` for liveness properties that only hold under
/// fair scheduling.
LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt = {});

}  // namespace pnp
