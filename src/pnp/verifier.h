// Design-time verification facade: safety (assertions, deadlock, state
// invariants) and LTL checking over a generated model, with human-readable
// reports for the design-iterate-verify loop of the paper's section 4.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "explore/explorer.h"
#include "ltl/product.h"
#include "pnp/generator.h"

namespace pnp {

struct VerifyOptions {
  std::uint64_t max_states = 20'000'000;
  bool check_deadlock = true;
  bool por = false;
  bool bfs = false;  // shortest counterexamples
  /// Wall-clock budget per exploration stage; 0 = unlimited.
  double deadline_seconds = 0.0;
  /// Approximate memory cap per exploration stage; 0 = unlimited.
  std::uint64_t memory_budget_bytes = 0;
  /// Degradation ladder: when the exact search is truncated (by max_states,
  /// the deadline, or the memory budget) without finding a violation, retry
  /// with bitstate hashing and a widened filter so the caller still gets
  /// high-coverage approximate answers instead of a silent partial result.
  bool degrade = true;
  /// Bloom-filter size for the bitstate fallback stage.
  std::uint64_t bitstate_bytes = std::uint64_t{1} << 26;
  /// Exploration threads per stage: 1 = the historical sequential search,
  /// 0 = hardware concurrency. With threads > 1 the exact rung uses the
  /// sharded-visited-set parallel engine and the bitstate rung becomes a
  /// swarm of independently seeded searches (stage names change to
  /// "exact-parallel" / "swarm-bitstate" accordingly).
  int threads = 1;
};

/// One rung of the verification degradation ladder.
struct VerifyStage {
  std::string name;  // "exact"/"exact-parallel" or "bitstate"/"swarm-bitstate"
  explore::Stats stats;
};

struct SafetyOutcome {
  std::string property_name;
  /// Result of the final stage that ran (the authoritative verdict: a
  /// violation found by any stage is real; bitstate can only miss states).
  explore::Result result;
  /// Every stage that ran, in order (one entry unless the ladder fired).
  std::vector<VerifyStage> stages;

  bool passed() const { return result.ok(); }
  /// True when the exact search was truncated and the bitstate rung ran.
  bool degraded() const { return stages.size() > 1; }
  /// Multi-line report: verdict, state counts, degradation stages, and the
  /// counterexample trace when the property failed.
  std::string report() const;
};

/// Checks assertions + absence of invalid end states.
SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt = {});

/// Additionally checks that `invariant` holds in every reachable state.
SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt = {});

/// Checks that every TERMINAL state satisfies `inv` ("when the system
/// finishes, X has happened") -- the fairness-free way to state many
/// progress claims.
SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt = {});

struct LtlOutcome {
  ltl::LtlResult result;

  bool passed() const { return result.holds; }
  std::string report() const;
};

/// Checks the LTL formula text (propositions from `props`) on `m`.
/// Set `opt.weak_fairness` for liveness properties that only hold under
/// fair scheduling.
LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt = {});

// -- resilience checking -------------------------------------------------------
// Verifies an architecture under injected connector/component faults (the
// fault-injection building blocks of blocks.h) and reports which faults the
// design tolerates. The faults are plug-and-play edits: component models
// are never touched, exactly like the paper's design-iteration loop.

enum class FaultKind : std::uint8_t {
  MessageLoss,         // channel may drop any message (DroppingFifo)
  MessageDuplication,  // channel may deliver a message twice (DuplicatingFifo)
  MessageReorder,      // channel dequeues in any order (ReorderingFifo)
  SendTimeout,         // send port gives up after bounded retries (TimeoutRetry)
  CrashRestart,        // component process may crash and restart from scratch
};

const char* to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind{FaultKind::MessageLoss};
  /// Connector name for the channel faults, component name for
  /// CrashRestart, "component.port" for SendTimeout.
  std::string target;
  /// CrashRestart: max crashes (default 1). SendTimeout: retry bound
  /// (default 2). Ignored by the channel faults.
  int budget{0};
};

struct ResilienceOptions {
  VerifyOptions verify{};
  /// Optional state invariant (a PML expression over the architecture's
  /// globals and channels) checked under every fault model; empty =
  /// assertions + deadlock only.
  std::string invariant_text;
  /// Also verify the fault-free architecture (recommended: a fault outcome
  /// is only meaningful if the baseline passes).
  bool include_baseline{true};
  GenOptions gen{};
  /// Fault variants verified concurrently: 1 = sequential, 0 = hardware
  /// concurrency. Generation stays sequential on the shared ModelGenerator
  /// (preserving the build-once/reuse accounting); each variant is then
  /// verified on its own snapshot, so verdicts are identical to a
  /// sequential run at any job count.
  int jobs{1};
};

struct FaultOutcome {
  FaultSpec fault;
  std::string description;  // human-readable, e.g. "message loss on 'Link'"
  SafetyOutcome outcome;

  bool tolerated() const { return outcome.passed(); }
};

struct ResilienceReport {
  std::string architecture;
  std::optional<SafetyOutcome> baseline;
  std::vector<FaultOutcome> faults;
  /// Aggregate generation stats across all fault variants -- shows the
  /// plug-and-play reuse (component models are generated once).
  GenStats gen_stats;

  bool baseline_passed() const { return !baseline || baseline->passed(); }
  bool all_tolerated() const;
  std::string report() const;
};

/// The standard fault suite: loss + duplication + reorder per connector,
/// a SendTimeout per sender attachment, and a single-crash fault per
/// component. Event-pool connectors are skipped (their per-subscriber
/// queues are inherently lossy, and the pool never rejects a publish).
std::vector<FaultSpec> default_fault_suite(const Architecture& arch);

/// Verifies `arch` under each fault model in `faults`, plus the fault-free
/// baseline. All variants share one ModelGenerator, so unchanged component
/// and block models are built exactly once across the whole suite.
ResilienceReport check_resilience(const Architecture& arch,
                                  const std::vector<FaultSpec>& faults,
                                  ResilienceOptions opts = {});

}  // namespace pnp
