// Design-time verification facade: safety (assertions, deadlock, state
// invariants) and LTL checking over a generated model, with human-readable
// reports for the design-iterate-verify loop of the paper's section 4.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "codegen/engine.h"
#include "explore/explorer.h"
#include "ltl/product.h"
#include "obs/obs.h"
#include "pnp/exec_budget.h"
#include "pnp/generator.h"
#include "reduce/cache.h"
#include "reduce/reduce.h"

namespace pnp {

/// Per-process minimization applied before exploration (src/reduce). Off =
/// the historical search. Strong = strong-bisimulation quotient, sound for
/// every obligation including LTL. Weak = strong quotient plus contraction
/// of deterministic internal skip steps -- a coarser (or equal) quotient
/// that preserves assertions, deadlock, state/end invariants and crash
/// reachability, but NOT stutter-sensitive LTL; LTL checks therefore always
/// use Strong, whichever mode was requested (see DESIGN.md section 10).
enum class MinimizeMode : std::uint8_t { Off, Strong, Weak };

const char* to_string(MinimizeMode m);

/// Budget fields (max_states, deadline_seconds, memory_budget_bytes,
/// threads) are inherited from ExecBudget -- the single definition shared
/// with ltl::CheckOptions and Session's RunConfig. The historical spellings
/// (`opt.max_states`, `opt.threads`, ...) still work; they are now the
/// deprecated aliases for the inherited members. With threads > 1 the exact
/// rung uses the sharded-visited-set parallel engine and the bitstate rung
/// becomes a swarm of independently seeded searches (stage names change to
/// "exact-parallel" / "swarm-bitstate" accordingly).
struct VerifyOptions : ExecBudget {
  bool check_deadlock = true;
  bool por = false;
  bool bfs = false;  // shortest counterexamples
  /// Degradation ladder: when the exact search is truncated (by max_states,
  /// the deadline, or the memory budget) without finding a violation, retry
  /// with bitstate hashing and a widened filter so the caller still gets
  /// high-coverage approximate answers instead of a silent partial result.
  bool degrade = true;
  /// Bloom-filter size for the bitstate fallback stage.
  std::uint64_t bitstate_bytes = std::uint64_t{1} << 26;
  /// Minimize every proctype (ladder stage names gain a "minimized-"
  /// prefix, e.g. "minimized-exact"). The composed machine then explores
  /// the product of the quotient automata; verdicts are unchanged (see
  /// MinimizeMode for the soundness fine print).
  MinimizeMode minimize = MinimizeMode::Off;
  /// Observability context (counters, phase events, heartbeat/ledger
  /// sinks); null = no telemetry, zero overhead. Not part of the verdict
  /// cache key (see ObligationKey): telemetry cannot change a verdict.
  obs::Observer* obs = nullptr;
  /// Precomputed configuration digest used to address checkpoints
  /// (pnp::Session passes RunConfig::digest()); empty = the ladder derives
  /// one from the verdict-relevant budget fields. Either way the property
  /// name is folded in, so two obligations never share a checkpoint.
  std::string config_digest;
  /// Successor-generation engine for the ladder's searches (see
  /// src/codegen/engine.h). Engines are verdict-, state-count- and
  /// successor-order-equivalent to the interpreter by construction (the
  /// equivalence suite enforces it), so this is NOT part of any verdict
  /// cache key, config digest, or checkpoint identity: a checkpoint written
  /// under one engine resumes under another. Aot silently falls back to
  /// Bytecode when no host toolchain is available -- except on resume,
  /// where the fallback is an error (see run_ladder): a resumed search must
  /// never be silently reinterpreted under a different engine than asked.
  codegen::EngineKind engine = codegen::EngineKind::Interp;
  /// Directory for compiled AOT artifacts (content-addressed .cpp/.so
  /// pairs, keyed by the machine digest); empty = a shared directory under
  /// the system temp dir. pnp::Session points this at RunConfig::cache_dir,
  /// so verdicts and artifacts share one `--cache-dir`.
  std::string engine_cache_dir;
};

/// Convenience for the common "just bound the search" call sites:
/// designated initializers cannot reach into the ExecBudget base, so
/// `check_safety(m, bounded(5'000'000))` replaces the historical
/// `{.max_states = 5'000'000}` spelling.
inline VerifyOptions bounded(std::uint64_t max_states) {
  VerifyOptions v;
  v.max_states = max_states;
  return v;
}

/// One rung of the verification degradation ladder.
struct VerifyStage {
  std::string name;  // "exact"/"exact-parallel" or "bitstate"/"swarm-bitstate"
  explore::Stats stats;
};

struct SafetyOutcome {
  std::string property_name;
  /// Result of the final stage that ran (the authoritative verdict: a
  /// violation found by any stage is real; bitstate can only miss states).
  explore::Result result;
  /// Every stage that ran, in order (one entry unless the ladder fired).
  std::vector<VerifyStage> stages;
  /// Per-process reduction statistics when a minimized rung ran.
  std::optional<reduce::ReductionStats> reduction;
  /// Requested vs. resolved successor backend plus the fallback reason when
  /// they differ (e.g. "aot unavailable (no toolchain); using bytecode").
  /// Purely informational -- engines never change verdicts -- which is why
  /// this lives in the outcome and NOT in any cache key or digest.
  codegen::EngineKind engine_requested{codegen::EngineKind::Interp};
  codegen::EngineKind engine_actual{codegen::EngineKind::Interp};
  std::string engine_note;

  bool passed() const { return result.ok(); }
  /// True when the exact search was truncated and the bitstate rung ran.
  bool degraded() const { return stages.size() > 1; }
  /// Multi-line report: verdict, state counts, degradation stages, and the
  /// counterexample trace when the property failed.
  std::string report() const;
};

/// Checks assertions + absence of invalid end states.
SafetyOutcome check_safety(const kernel::Machine& m, VerifyOptions opt = {});

/// Additionally checks that `invariant` holds in every reachable state.
SafetyOutcome check_invariant(const kernel::Machine& m, expr::Ex invariant,
                              std::string name, VerifyOptions opt = {});

/// Checks that every TERMINAL state satisfies `inv` ("when the system
/// finishes, X has happened") -- the fairness-free way to state many
/// progress claims.
SafetyOutcome check_end_invariant(const kernel::Machine& m, expr::Ex inv,
                                  std::string name, VerifyOptions opt = {});

/// Optional invariants for check_machine(); kNoExpr skips either one.
struct SafetyProps {
  expr::Ref invariant = expr::kNoExpr;  // over globals/channels
  std::string invariant_name;
  expr::Ref end_invariant = expr::kNoExpr;  // over terminal states only
  std::string end_invariant_name;
};

/// Combined single-pass check used by pnp::Session and pnpv for raw
/// machines: assertions, invalid-end-state detection (per
/// opt.check_deadlock), and the optional invariants of `props`, all in ONE
/// ladder run -- one exploration instead of three. With no invariants this
/// is exactly check_safety().
SafetyOutcome check_machine(const kernel::Machine& m,
                            const SafetyProps& props = {},
                            VerifyOptions opt = {});

struct LtlOutcome {
  ltl::LtlResult result;

  bool passed() const { return result.holds; }
  std::string report() const;
};

/// Checks the LTL formula text (propositions from `props`) on `m`.
/// Set `opt.weak_fairness` for liveness properties that only hold under
/// fair scheduling.
LtlOutcome check_ltl_formula(const kernel::Machine& m,
                             const ltl::PropertyContext& props,
                             const std::string& formula,
                             ltl::CheckOptions opt = {});

// -- cached obligation-suite verification --------------------------------------
// Decomposes "verify this design" into content-addressed obligations (see
// reduce/cache.h): one local port-protocol obligation per connector, whose
// cache key covers only that connector's slice of the design, plus the
// global obligations (safety, invariants, LTL), keyed by the whole design.
// With a cache directory set, a re-run of an unchanged design answers every
// obligation from the cache, and a plug-and-play connector swap re-verifies
// only the swapped connector's protocol obligation and the globals.

struct SuiteOptions {
  VerifyOptions verify{};
  GenOptions gen{};
  /// State invariant over the architecture's globals/channels (PML
  /// expression text); empty = skip.
  std::string invariant_text;
  /// Invariant required only of terminal states; empty = skip.
  std::string end_invariant_text;
  /// Named propositions (name, PML expression) for the LTL formulas.
  std::vector<std::pair<std::string, std::string>> props;
  /// LTL formulas over `props`. Checked with Strong minimization whenever
  /// `verify.minimize` is not Off (Weak is unsound for LTL).
  std::vector<std::string> ltl;
  bool ltl_weak_fairness{false};
  /// Verify each connector's port protocol in isolation on a small driver
  /// harness (these are the obligations that survive unrelated edits).
  bool connector_protocols{true};
  /// Verdict cache directory; empty = verify everything, cache nothing.
  std::string cache_dir;
  /// Caller-owned cache instance, taking precedence over cache_dir. This is
  /// how pnpd shares ONE persistent VerificationCache across its whole
  /// worker pool (the instance is thread-safe, see reduce/cache.h): every
  /// job's suite consults and fills the same store, so two clients
  /// submitting the same design pay for its obligations once. Not owned.
  reduce::VerificationCache* cache = nullptr;
};

struct ObligationResult {
  std::string kind;    // "connector-protocol"|"safety"|"invariant"|...
  std::string label;   // connector name / property text
  std::string digest;  // content address (reduce::ObligationKey::digest)
  bool passed{false};
  bool from_cache{false};
  std::string stage;  // ladder stage that produced the verdict
  std::uint64_t states_stored{0};
  double seconds{0.0};  // original verification cost (even on a hit)
  /// Full per-obligation report; only populated when verified this run
  /// (the cache stores verdicts, not counterexamples).
  std::string detail;
  /// Resolved successor backend name ("interp"/"bytecode"/"aot") and the
  /// fallback note when it differs from the request. Empty on cache hits
  /// (the cache stores verdicts; the engine cannot change them).
  std::string engine;
  std::string engine_note;
};

struct SuiteReport {
  std::string architecture;
  std::vector<ObligationResult> obligations;
  GenStats gen_stats;
  /// Reduction achieved on the global safety obligation, when a minimized
  /// rung actually ran this invocation.
  std::optional<reduce::ReductionStats> reduction;

  int cache_hits() const;
  int recomputed() const;
  bool all_passed() const;
  std::string report() const;
};

/// Verifies every obligation of `arch`, consulting/filling the verdict
/// cache when `opts.cache_dir` is set. Pass `gen` to reuse a caller-owned
/// ModelGenerator across suites (pnp::Session does; component and block
/// models survive plug-and-play swaps); null uses a private one.
SuiteReport verify_obligations(const Architecture& arch,
                               const SuiteOptions& opts = {},
                               ModelGenerator* gen = nullptr);

// -- resilience checking -------------------------------------------------------
// Verifies an architecture under injected connector/component faults (the
// fault-injection building blocks of blocks.h) and reports which faults the
// design tolerates. The faults are plug-and-play edits: component models
// are never touched, exactly like the paper's design-iteration loop.

enum class FaultKind : std::uint8_t {
  MessageLoss,         // channel may drop any message (DroppingFifo)
  MessageDuplication,  // channel may deliver a message twice (DuplicatingFifo)
  MessageReorder,      // channel dequeues in any order (ReorderingFifo)
  SendTimeout,         // send port gives up after bounded retries (TimeoutRetry)
  CrashRestart,        // component process may crash and restart from scratch
};

const char* to_string(FaultKind k);

struct FaultSpec {
  FaultKind kind{FaultKind::MessageLoss};
  /// Connector name for the channel faults, component name for
  /// CrashRestart, "component.port" for SendTimeout.
  std::string target;
  /// CrashRestart: max crashes (default 1). SendTimeout: retry bound
  /// (default 2). Ignored by the channel faults.
  int budget{0};
};

struct ResilienceOptions {
  VerifyOptions verify{};
  /// Optional state invariant (a PML expression over the architecture's
  /// globals and channels) checked under every fault model; empty =
  /// assertions + deadlock only.
  std::string invariant_text;
  /// Also verify the fault-free architecture (recommended: a fault outcome
  /// is only meaningful if the baseline passes).
  bool include_baseline{true};
  GenOptions gen{};
  /// Fault variants verified concurrently: 1 = sequential, 0 = hardware
  /// concurrency. Generation stays sequential on the shared ModelGenerator
  /// (preserving the build-once/reuse accounting); each variant is then
  /// verified on its own snapshot, so verdicts are identical to a
  /// sequential run at any job count.
  int jobs{1};
};

struct FaultOutcome {
  FaultSpec fault;
  std::string description;  // human-readable, e.g. "message loss on 'Link'"
  SafetyOutcome outcome;

  bool tolerated() const { return outcome.passed(); }
};

struct ResilienceReport {
  std::string architecture;
  std::optional<SafetyOutcome> baseline;
  std::vector<FaultOutcome> faults;
  /// Aggregate generation stats across all fault variants -- shows the
  /// plug-and-play reuse (component models are generated once).
  GenStats gen_stats;

  bool baseline_passed() const { return !baseline || baseline->passed(); }
  bool all_tolerated() const;
  std::string report() const;
};

/// The standard fault suite: loss + duplication + reorder per connector,
/// a SendTimeout per sender attachment, and a single-crash fault per
/// component. Event-pool connectors are skipped (their per-subscriber
/// queues are inherently lossy, and the pool never rejects a publish).
std::vector<FaultSpec> default_fault_suite(const Architecture& arch);

/// Verifies `arch` under each fault model in `faults`, plus the fault-free
/// baseline. All variants share one ModelGenerator, so unchanged component
/// and block models are built exactly once across the whole suite. Pass
/// `gen` to share a caller-owned generator (pnp::Session); null uses a
/// private one.
ResilienceReport check_resilience(const Architecture& arch,
                                  const std::vector<FaultSpec>& faults,
                                  ResilienceOptions opts = {},
                                  ModelGenerator* gen = nullptr);

}  // namespace pnp
