#include "reduce/cache.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/panic.h"

namespace pnp::reduce {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Minimal parser for the subset this module writes: an object holding a
/// version and an array of flat objects with string/number/bool values.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }
  bool eat(char c) {
    skip_ws();
    if (i_ < s_.size() && s_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    PNP_CHECK(eat(c), "verification cache: malformed JSON (expected '" +
                          std::string(1, c) + "')");
  }
  std::string string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_++];
      if (c == '\\' && i_ < s_.size()) {
        const char e = s_[i_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            PNP_CHECK(i_ + 4 <= s_.size(),
                      "verification cache: malformed \\u escape");
            out += static_cast<char>(
                std::stoi(s_.substr(i_ + 2, 2), nullptr, 16));
            i_ += 4;
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }
  /// Number / true / false as a raw token.
  std::string scalar() {
    skip_ws();
    std::size_t start = i_;
    while (i_ < s_.size() && (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == '-' || s_[i_] == '+' ||
                              s_[i_] == 'e' || s_[i_] == 'E'))
      ++i_;
    PNP_CHECK(i_ > start, "verification cache: malformed JSON scalar");
    return s_.substr(start, i_ - start);
  }
  bool peek(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }

 private:
  const std::string& s_;
  std::size_t i_{0};
};

}  // namespace

std::string ObligationKey::digest() const {
  return kind + ":" + hex16(slice_hash) + "-" + hex16(property_hash) + "-" +
         hex16(options_hash);
}

VerificationCache::VerificationCache(const std::string& dir) {
  PNP_CHECK(!dir.empty(), "VerificationCache: empty cache directory");
  std::filesystem::create_directories(dir);
  file_ = (std::filesystem::path(dir) / "obligations.json").string();
  std::ifstream in(file_);
  if (!in) return;  // fresh cache
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  if (text.empty()) return;

  JsonReader r(text);
  r.expect('{');
  int version = -1;
  for (;;) {
    const std::string key = r.string();
    r.expect(':');
    if (key == "version") {
      version = std::stoi(r.scalar());
      if (version != kCacheFormatVersion) return;  // stale format: ignore
    } else if (key == "obligations") {
      r.expect('[');
      if (!r.eat(']')) {
        entries_.reserve(64);  // typical suite: a few dozen obligations
        do {
          r.expect('{');
          CacheEntry e;
          do {
            const std::string field = r.string();
            r.expect(':');
            if (field == "id") e.digest = r.string();
            else if (field == "kind") e.kind = r.string();
            else if (field == "label") e.label = r.string();
            else if (field == "passed") e.passed = r.scalar() == "true";
            else if (field == "stage") e.stage = r.string();
            else if (field == "states") e.states_stored = std::stoull(r.scalar());
            else if (field == "seconds") e.seconds = std::stod(r.scalar());
            else if (r.peek('"')) r.string();  // unknown field: skip value
            else r.scalar();
          } while (r.eat(','));
          r.expect('}');
          if (!e.digest.empty()) entries_[e.digest] = std::move(e);
        } while (r.eat(','));
        r.expect(']');
      }
    } else if (r.peek('"')) {
      r.string();
    } else {
      r.scalar();
    }
    if (!r.eat(',')) break;
  }
  r.expect('}');
}

std::optional<CacheEntry> VerificationCache::lookup(const ObligationKey& key) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key.digest());
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void VerificationCache::record(const ObligationKey& key, CacheEntry entry) {
  if (!enabled()) return;
  entry.digest = key.digest();
  if (entry.kind.empty()) entry.kind = key.kind;
  if (entry.label.empty()) entry.label = key.label;
  std::lock_guard<std::mutex> lock(mu_);
  entries_[entry.digest] = std::move(entry);
}

bool VerificationCache::flush() const {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (persist_failed_) return false;  // already degraded to uncached
  std::ostringstream os;
  os << "{\"version\": " << kCacheFormatVersion << ",\n\"obligations\": [";
  bool first = true;
  for (const auto& [digest, e] : entries_) {
    os << (first ? "\n" : ",\n") << "{\"id\": ";
    write_json_string(os, digest);
    os << ", \"kind\": ";
    write_json_string(os, e.kind);
    os << ", \"label\": ";
    write_json_string(os, e.label);
    os << ", \"passed\": " << (e.passed ? "true" : "false");
    os << ", \"stage\": ";
    write_json_string(os, e.stage);
    os << ", \"states\": " << e.states_stored;
    os << ", \"seconds\": " << e.seconds << "}";
    first = false;
  }
  os << "\n]}\n";
  const std::string text = os.str();
  // Atomic commit with bounded retries: truncating the live file and then
  // failing the write (disk full) would destroy verdicts that were valid a
  // moment ago, so the file is only ever replaced whole via rename.
  const std::string tmp = file_ + ".tmp";
  constexpr int kFlushAttempts = 3;
  for (int attempt = 0; attempt < kFlushAttempts; ++attempt) {
    std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
    if (out) {
      out.write(text.data(), static_cast<std::streamsize>(text.size()));
      out.close();
      if (out) {
        std::error_code ec;
        std::filesystem::rename(tmp, file_, ec);
        if (!ec) return true;
      }
    }
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
  }
  persist_failed_ = true;
  return false;
}

}  // namespace pnp::reduce
