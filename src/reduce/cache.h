// Content-addressed verification cache.
//
// Every verification obligation is keyed by three stable 64-bit digests:
//   slice_hash    -- the canonical text of the architecture slice the
//                    verdict depends on (the whole design for global
//                    obligations; one connector's configuration for local
//                    port-protocol obligations),
//   property_hash -- the obligation kind + property text,
//   options_hash  -- every option that can change the verdict or its
//                    confidence (search bounds, minimization mode, ...).
// Verdicts are persisted as JSON under --cache-dir, so a re-run of an
// unchanged design answers every obligation from the cache, and a
// plug-and-play connector swap re-verifies only the obligations whose
// slice digest changed (the paper's section 4 iterate loop, applied to
// verification results instead of component models).
//
// Digests come from support/hash.h stable_hash64 exclusively: byte-at-a-
// time FNV-1a with pinned constants, so caches are valid across machines,
// compilers, and endiannesses (digests are pinned by tests/test_reduce).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pnp::reduce {

/// Bump when the key scheme or entry layout changes; persisted files with
/// another version are ignored (re-verified, then overwritten).
inline constexpr int kCacheFormatVersion = 1;

struct ObligationKey {
  std::string kind;   // "safety" | "invariant" | "end-invariant" | "ltl" |
                      // "connector-protocol"
  std::string label;  // human-readable (property text / connector name)
  std::uint64_t slice_hash{0};
  std::uint64_t property_hash{0};
  std::uint64_t options_hash{0};

  /// Content address: kind + the three digests, hex. Stable across
  /// machines (see header comment).
  std::string digest() const;
};

struct CacheEntry {
  std::string digest;
  std::string kind;
  std::string label;
  bool passed{false};
  std::string stage;  // verification stage that produced the verdict
  std::uint64_t states_stored{0};
  double seconds{0.0};  // what the original verification cost
};

/// JSON-backed obligation store. A default-constructed cache is disabled:
/// lookups miss, records are dropped, flush is a no-op -- callers need no
/// special casing when no --cache-dir was given.
///
/// Thread-safe: lookup/record/flush and the statistics accessors serialize
/// on an internal mutex, so one instance can back every worker of a pnpd
/// daemon (SuiteOptions::cache) -- the whole point of the shared cache is
/// that a connector swap submitted by any client re-verifies only the
/// dirtied slices, whichever worker got the job.
class VerificationCache {
 public:
  VerificationCache() = default;
  /// Opens (creating the directory if needed) `dir`/obligations.json and
  /// loads any existing entries. Raises ModelError if the file exists but
  /// cannot be parsed.
  explicit VerificationCache(const std::string& dir);

  bool enabled() const { return !file_.empty(); }
  const std::string& path() const { return file_; }

  /// Returns the stored verdict for `key`, if any, and counts a hit or a
  /// miss (the hit-rate statistics the bench and reports surface).
  std::optional<CacheEntry> lookup(const ObligationKey& key);
  /// Stores (or overwrites) the verdict for `key`.
  void record(const ObligationKey& key, CacheEntry entry);
  /// Persists all entries atomically (write-to-temp + rename), so a crash
  /// mid-flush leaves the previous cache file intact. A short write or
  /// rename failure (disk full, permissions) is retried a bounded number
  /// of times, then the cache degrades to uncached for the rest of the
  /// process: in-memory entries keep serving lookups, later flushes are
  /// skipped, and false is returned so the caller can surface an incident.
  /// No-op (true) when disabled.
  bool flush() const;
  /// True once a flush has permanently failed (see flush()).
  bool persist_failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return persist_failed_;
  }

  int hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  int misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  /// Guards entries_ and the statistics; file_ is immutable after
  /// construction. Mutable so flush() and the accessors stay const.
  mutable std::mutex mu_;
  std::string file_;
  std::unordered_map<std::string, CacheEntry> entries_;
  int hits_{0};
  int misses_{0};
  /// Set by flush() on unrecoverable I/O failure; mutable because losing
  /// persistence does not change the cache's logical (const) contents.
  mutable bool persist_failed_{false};
};

}  // namespace pnp::reduce
