#include "reduce/lts.h"

#include <unordered_map>

#include "support/panic.h"

namespace pnp::reduce {

namespace {

using compile::OpKind;
using compile::Transition;

void append_int(std::string& out, long long v) { out += std::to_string(v); }

}  // namespace

int Lts::n_visible_actions() const {
  int n = 0;
  for (bool v : action_visible)
    if (v) ++n;
  return n;
}

std::string canonical_expr(const expr::Pool& pool, expr::Ref r) {
  if (r == expr::kNoExpr) return "~";
  const expr::Node& n = pool.at(r);
  std::string out;
  out += '(';
  append_int(out, static_cast<int>(n.op));
  out += ' ';
  append_int(out, n.imm);
  for (expr::Ref child : {n.a, n.b, n.c}) {
    if (child == expr::kNoExpr) continue;
    out += ' ';
    out += canonical_expr(pool, child);
  }
  out += ')';
  return out;
}

std::string canonical_action(const model::SystemSpec& sys,
                             const Transition& t) {
  const expr::Pool& pool = sys.exprs;
  std::string out;
  append_int(out, static_cast<int>(t.op));
  out += '|';
  out += canonical_expr(pool, t.expr);
  out += '|';
  append_int(out, static_cast<int>(t.lhs.kind));
  out += ':';
  append_int(out, t.lhs.slot);
  out += '|';
  out += canonical_expr(pool, t.chan);
  out += '|';
  for (expr::Ref f : t.fields) {
    out += canonical_expr(pool, f);
    out += ',';
  }
  out += '|';
  for (const model::RecvArg& a : t.args) {
    append_int(out, static_cast<int>(a.kind));
    out += ':';
    append_int(out, static_cast<int>(a.lhs.kind));
    out += ':';
    append_int(out, a.lhs.slot);
    out += ':';
    out += canonical_expr(pool, a.match);
    out += ',';
  }
  out += '|';
  out += t.sorted ? '1' : '0';
  out += t.random ? '1' : '0';
  out += t.copy ? '1' : '0';
  out += t.unordered ? '1' : '0';
  out += '|';
  out += t.label;  // keep trace labels distinct so reports stay readable
  return out;
}

bool is_internal(const Transition& t) {
  // `local_only` already means "no shared reads or writes" (the POR
  // classification); on top of that, asserts are observable verdicts and
  // crash events must stay visible to fault analyses.
  return t.local_only && t.op != OpKind::Assert && t.op != OpKind::Crash;
}

Lts extract_lts(const model::SystemSpec& sys,
                const compile::CompiledProc& proc) {
  // Reachable control locations (DFS over the CFG).
  std::vector<int> order;
  std::vector<int> state_of(static_cast<std::size_t>(proc.n_pcs), -1);
  std::vector<int> stack{proc.entry};
  state_of[static_cast<std::size_t>(proc.entry)] = 0;
  order.push_back(proc.entry);
  while (!stack.empty()) {
    const int pc = stack.back();
    stack.pop_back();
    for (int ti : proc.out[static_cast<std::size_t>(pc)]) {
      const int dst = proc.trans[static_cast<std::size_t>(ti)].dst;
      if (state_of[static_cast<std::size_t>(dst)] >= 0) continue;
      state_of[static_cast<std::size_t>(dst)] =
          static_cast<int>(order.size());
      order.push_back(dst);
      stack.push_back(dst);
    }
  }

  Lts lts;
  lts.name = proc.name;
  lts.proctype = proc.proctype;
  lts.init = 0;
  lts.n_states = static_cast<int>(order.size());
  lts.flags.resize(order.size(), 0);
  lts.out.resize(order.size());
  for (std::size_t s = 0; s < order.size(); ++s) {
    const std::size_t pc = static_cast<std::size_t>(order[s]);
    if (proc.atomic_at[pc]) lts.flags[s] |= kFlagAtomic;
    if (proc.valid_end[pc]) lts.flags[s] |= kFlagValidEnd;
  }

  std::unordered_map<std::string, int> action_ids;
  action_ids.reserve(proc.trans.size());  // at most one action per transition
  for (std::size_t ti = 0; ti < proc.trans.size(); ++ti) {
    const Transition& t = proc.trans[ti];
    const int src = state_of[static_cast<std::size_t>(t.src)];
    if (src < 0) continue;  // unreachable
    std::string text = canonical_action(sys, t);
    auto [it, fresh] =
        action_ids.emplace(std::move(text), static_cast<int>(lts.actions.size()));
    if (fresh) {
      lts.actions.push_back(it->first);
      lts.action_visible.push_back(!is_internal(t));
      lts.action_skip.push_back(t.op == OpKind::Noop);
    }
    LtsTransition lt;
    lt.src = src;
    lt.dst = state_of[static_cast<std::size_t>(t.dst)];
    lt.action = it->second;
    lt.cfg_trans = static_cast<int>(ti);
    PNP_CHECK(lt.dst >= 0, "extract_lts: edge into unreachable pc");
    lts.out[static_cast<std::size_t>(src)].push_back(
        static_cast<int>(lts.trans.size()));
    lts.trans.push_back(lt);
  }
  return lts;
}

}  // namespace pnp::reduce
