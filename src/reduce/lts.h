// Per-process labeled transition systems extracted from compiled proctypes.
//
// The compiler's CFG is already an LTS in disguise: control locations are
// states and guarded operations are actions. This module makes that view
// explicit and classifies every action as *port-visible* (it reads or
// writes state another process can observe: channels, globals, asserts,
// crash events) or *internal* (a tau step over the process's own frame).
// The classification is what makes per-process reduction sound: internal
// steps can be collapsed without changing anything the composition sees
// (arXiv:1010.5565, arXiv:1908.11345 develop the compositional argument
// for exactly this interaction structure).
//
// Action identity is canonical: two CFG transitions carry the same action
// id iff they have the same operation, the same expression trees, the same
// channel/field/pattern structure, and the same trace label. Expressions
// are serialized by tree walk (not by pool Ref), so identity is stable
// across pools and across platforms.
#pragma once

#include <string>
#include <vector>

#include "compile/compiler.h"
#include "model/system.h"

namespace pnp::reduce {

/// State attribute bits that any sound reduction must respect.
enum StateFlag : std::uint8_t {
  kFlagAtomic = 1,    // control point inside an atomic region
  kFlagValidEnd = 2,  // valid end state (no deadlock when paused here)
};

struct LtsTransition {
  int src{-1};
  int dst{-1};
  int action{-1};     // index into Lts::actions
  int cfg_trans{-1};  // index into the source CompiledProc::trans
};

struct Lts {
  std::string name;   // proctype name
  int proctype{-1};
  int init{0};
  int n_states{0};    // reachable control locations only
  std::vector<LtsTransition> trans;
  std::vector<std::vector<int>> out;  // state -> indices into trans
  std::vector<std::uint8_t> flags;    // state -> StateFlag bits

  /// Canonical action texts; index = action id.
  std::vector<std::string> actions;
  /// Per-action: does the composition observe it? (channel/global access,
  /// assert, crash). Internal actions are the tau steps of weak reduction.
  std::vector<bool> action_visible;
  /// Per-action: a pure no-effect always-executable step (OpKind::Noop) --
  /// the only actions the weak mode may contract away.
  std::vector<bool> action_skip;

  int n_visible_actions() const;
};

/// Canonical, platform-stable serialization of an expression tree.
std::string canonical_expr(const expr::Pool& pool, expr::Ref r);

/// Canonical serialization of a CFG transition as an LTS action label.
std::string canonical_action(const model::SystemSpec& sys,
                             const compile::Transition& t);

/// True if the composition cannot observe `t` (no shared reads/writes, not
/// an assert, not a crash event).
bool is_internal(const compile::Transition& t);

/// Extracts the LTS of `proc`, restricted to control locations reachable
/// from the entry point (branch merging leaves orphaned pcs behind; they
/// never occur in any run and must not pollute the partition).
Lts extract_lts(const model::SystemSpec& sys,
                const compile::CompiledProc& proc);

}  // namespace pnp::reduce
