#include "reduce/minimize.h"

#include <algorithm>
#include <map>

#include "support/panic.h"

namespace pnp::reduce {

const char* to_string(Equivalence eq) {
  switch (eq) {
    case Equivalence::Strong: return "strong";
    case Equivalence::Weak: return "weak";
  }
  return "?";
}

namespace {

/// A state is tau-contractible when its only move is a no-effect,
/// always-executable skip to a different state with identical flags:
/// pausing there is indistinguishable (to the composition and to the
/// deadlock/end-state rules) from having already moved on.
bool contractible(const Lts& lts, int s) {
  const auto& edges = lts.out[static_cast<std::size_t>(s)];
  if (edges.size() != 1) return false;
  const LtsTransition& t = lts.trans[static_cast<std::size_t>(edges[0])];
  if (!lts.action_skip[static_cast<std::size_t>(t.action)]) return false;
  if (t.dst == s) return false;
  return lts.flags[static_cast<std::size_t>(t.dst)] ==
         lts.flags[static_cast<std::size_t>(s)];
}

/// Resolves tau chains to their representatives. A pure skip cycle keeps
/// its states (contracting a divergence would fabricate a deadlock).
std::vector<int> tau_representatives(const Lts& lts) {
  enum : std::uint8_t { kUnseen, kOnPath, kDone };
  std::vector<std::uint8_t> mark(static_cast<std::size_t>(lts.n_states),
                                 kUnseen);
  std::vector<int> rep(static_cast<std::size_t>(lts.n_states), -1);
  for (int s0 = 0; s0 < lts.n_states; ++s0) {
    if (mark[static_cast<std::size_t>(s0)] == kDone) continue;
    std::vector<int> path;
    int s = s0;
    // Walk the chain of deterministic skips until it stops or loops.
    while (mark[static_cast<std::size_t>(s)] == kUnseen &&
           contractible(lts, s)) {
      mark[static_cast<std::size_t>(s)] = kOnPath;
      path.push_back(s);
      s = lts.trans[static_cast<std::size_t>(
                        lts.out[static_cast<std::size_t>(s)][0])]
              .dst;
    }
    int target;
    if (mark[static_cast<std::size_t>(s)] == kOnPath) {
      // Skip cycle: every state on the cycle keeps itself.
      target = -1;
    } else {
      target = mark[static_cast<std::size_t>(s)] == kDone
                   ? rep[static_cast<std::size_t>(s)]
                   : s;
      if (mark[static_cast<std::size_t>(s)] == kUnseen) {
        rep[static_cast<std::size_t>(s)] = s;
        mark[static_cast<std::size_t>(s)] = kDone;
      }
    }
    while (!path.empty()) {
      const int p = path.back();
      path.pop_back();
      rep[static_cast<std::size_t>(p)] = target < 0 ? p : target;
      mark[static_cast<std::size_t>(p)] = kDone;
      // States on the detected cycle keep themselves; once we pop past the
      // cycle entry the suffix resolves normally to the entry's rep.
      if (target < 0 && p == s) target = rep[static_cast<std::size_t>(p)];
    }
  }
  for (int s = 0; s < lts.n_states; ++s)
    if (rep[static_cast<std::size_t>(s)] < 0)
      rep[static_cast<std::size_t>(s)] = s;
  return rep;
}

/// Signature-based strong-bisimulation refinement over a state subset
/// selected by `alive` (dead states are tau-contracted ones; their edges
/// are viewed through `redirect`).
Partition refine(const Lts& lts, const std::vector<int>& rep) {
  const std::size_t n = static_cast<std::size_t>(lts.n_states);
  std::vector<int> block(n, -1);

  // Initial partition: state flags (respecting atomic/valid-end is what
  // keeps the quotient a drop-in proctype).
  {
    std::map<std::uint8_t, int> by_flags;
    for (std::size_t s = 0; s < n; ++s) {
      if (rep[s] != static_cast<int>(s)) continue;
      auto [it, fresh] =
          by_flags.emplace(lts.flags[s], static_cast<int>(by_flags.size()));
      block[s] = it->second;
      (void)fresh;
    }
  }

  using Sig = std::pair<int, std::vector<std::pair<int, int>>>;
  int n_blocks = 0;
  for (std::size_t s = 0; s < n; ++s)
    if (rep[s] == static_cast<int>(s)) n_blocks = std::max(n_blocks, block[s] + 1);

  for (int round = 0; round < lts.n_states + 1; ++round) {
    std::map<Sig, int> sig_ids;
    std::vector<int> next(n, -1);
    for (std::size_t s = 0; s < n; ++s) {
      if (rep[s] != static_cast<int>(s)) continue;
      Sig sig;
      sig.first = block[s];
      for (int ti : lts.out[s]) {
        const LtsTransition& t = lts.trans[static_cast<std::size_t>(ti)];
        // A contracted state never keeps outgoing edges (its single skip is
        // the one being removed), so src == rep here by construction.
        const int dst_rep = rep[static_cast<std::size_t>(t.dst)];
        sig.second.emplace_back(t.action,
                                block[static_cast<std::size_t>(dst_rep)]);
      }
      std::sort(sig.second.begin(), sig.second.end());
      sig.second.erase(std::unique(sig.second.begin(), sig.second.end()),
                       sig.second.end());
      auto [it, fresh] =
          sig_ids.emplace(std::move(sig), static_cast<int>(sig_ids.size()));
      (void)fresh;
      next[s] = it->second;
    }
    const int n_next = static_cast<int>(sig_ids.size());
    // The old block id is part of the signature, so each round refines the
    // previous partition; an unchanged count means a fixed point.
    const bool stable = n_next == n_blocks;
    block.swap(next);
    n_blocks = n_next;
    if (stable) break;
  }

  Partition p;
  p.block_of.assign(n, -1);
  // Renumber blocks densely in order of first occurrence (deterministic),
  // then project contracted states onto their representative's block. The
  // first representative seen in each block becomes its leader.
  std::vector<int> renumber(static_cast<std::size_t>(n_blocks), -1);
  int next_id = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (rep[s] != static_cast<int>(s)) continue;
    int& r = renumber[static_cast<std::size_t>(block[s])];
    if (r < 0) {
      r = next_id++;
      p.leader_of.push_back(static_cast<int>(s));
    }
    p.block_of[s] = r;
  }
  for (std::size_t s = 0; s < n; ++s)
    if (rep[s] != static_cast<int>(s))
      p.block_of[s] = p.block_of[static_cast<std::size_t>(rep[s])];
  p.n_blocks = next_id;
  return p;
}

}  // namespace

Partition minimize(const Lts& lts, Equivalence eq) {
  PNP_CHECK(lts.n_states > 0, "minimize: empty LTS");
  std::vector<int> rep(static_cast<std::size_t>(lts.n_states));
  if (eq == Equivalence::Weak) {
    rep = tau_representatives(lts);
  } else {
    for (int s = 0; s < lts.n_states; ++s)
      rep[static_cast<std::size_t>(s)] = s;
  }
  return refine(lts, rep);
}

}  // namespace pnp::reduce
