// Partition-refinement minimization of per-process LTSs.
//
// Strong mode computes the coarsest strong bisimulation respecting action
// labels and state flags (atomic / valid-end): two control locations are
// merged only when every action one can take, the other can take with an
// equivalent target. The quotient is therefore a drop-in replacement for
// any obligation class -- deadlock, invariants, assertions, and LTL --
// because the composition cannot tell merged locations apart even
// step-for-step.
//
// Weak mode first contracts *deterministic tau steps* (a location whose
// only move is a no-effect, always-executable Noop collapses into its
// successor when both share flags) and then applies the strong refinement.
// The contraction only removes stutter steps of the composed system, so it
// preserves deadlock, state invariants, end invariants, and assertions
// exactly; step-counting (LTL with implicit next-step granularity) may
// observe the missing stutter, so LTL obligations use strong mode.
//
// The refinement itself is signature-based partition refinement (Blom &
// Orzan style): each round re-buckets every state by its (flags, current
// block, sorted set of (action, successor block)) signature until a fixed
// point. That computes the same coarsest partition as Paige-Tarjan's
// splitter algorithm; at CFG sizes (tens to a few hundred locations per
// proctype) the simpler round-based form is preferable to the
// O(m log n) machinery.
#pragma once

#include <vector>

#include "reduce/lts.h"

namespace pnp::reduce {

enum class Equivalence : std::uint8_t {
  Strong,  // coarsest strong bisimulation (safe for every obligation)
  Weak,    // deterministic-tau contraction + strong (safe for deadlock,
           // invariant, end-invariant, and assertion obligations)
};

const char* to_string(Equivalence eq);

struct Partition {
  int n_blocks{0};
  std::vector<int> block_of;  // LTS state -> block id (0-based, dense)
  /// One state per block whose outgoing edges define the quotient's
  /// transitions. Never a tau-contracted state (a contracted state's only
  /// edge is the skip being removed; emitting from it would erase the
  /// block's real behaviour).
  std::vector<int> leader_of;
};

/// Computes the quotient partition of `lts` under `eq`. Deterministic:
/// block ids are assigned in order of first state occurrence.
Partition minimize(const Lts& lts, Equivalence eq);

}  // namespace pnp::reduce
