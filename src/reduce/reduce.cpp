#include "reduce/reduce.h"

#include <map>
#include <sstream>

#include "support/panic.h"

namespace pnp::reduce {

int ReductionStats::total_states_before() const {
  int n = 0;
  for (const ProcReduction& p : procs) n += p.states_before;
  return n;
}

int ReductionStats::total_states_after() const {
  int n = 0;
  for (const ProcReduction& p : procs) n += p.states_after;
  return n;
}

double ReductionStats::product_bound(const model::SystemSpec& sys) const {
  double bound = 1.0;
  for (const model::ProcessInst& inst : sys.processes) {
    const ProcReduction& p =
        procs[static_cast<std::size_t>(inst.proctype)];
    bound *= p.ratio();
  }
  return bound;
}

std::string ReductionStats::summary() const {
  std::ostringstream os;
  os << to_string(eq) << " minimization: control locations "
     << total_states_before() << " -> " << total_states_after() << " (";
  bool first = true;
  for (const ProcReduction& p : procs) {
    if (p.states_before == p.states_after) continue;
    if (!first) os << ", ";
    os << p.name << " " << p.states_before << "->" << p.states_after;
    first = false;
  }
  if (first) os << "no proctype shrank";
  os << ")";
  return os.str();
}

compile::CompiledProc reduce_proc(const model::SystemSpec& sys,
                                  const compile::CompiledProc& proc,
                                  Equivalence eq, ProcReduction* stats) {
  const Lts lts = extract_lts(sys, proc);
  const Partition part = minimize(lts, eq);

  compile::CompiledProc q;
  q.name = proc.name;
  q.proctype = proc.proctype;
  q.n_params = proc.n_params;
  q.frame_size = proc.frame_size;
  q.frame_init = proc.frame_init;
  q.entry = part.block_of[static_cast<std::size_t>(lts.init)];
  q.n_pcs = part.n_blocks;
  q.atomic_at.assign(static_cast<std::size_t>(part.n_blocks), false);
  q.valid_end.assign(static_cast<std::size_t>(part.n_blocks), false);

  // The block leader supplies flags and transitions. Every non-contracted
  // member of a block has the same flags and the same (action,
  // target-block) signature, so the choice among them does not matter;
  // tau-contracted states are never leaders (their only edge is the skip
  // being removed).
  for (int b = 0; b < part.n_blocks; ++b) {
    const int s = part.leader_of[static_cast<std::size_t>(b)];
    PNP_CHECK(s >= 0, "reduce_proc: empty block");
    const std::uint8_t flags = lts.flags[static_cast<std::size_t>(s)];
    q.atomic_at[static_cast<std::size_t>(b)] = (flags & kFlagAtomic) != 0;
    q.valid_end[static_cast<std::size_t>(b)] = (flags & kFlagValidEnd) != 0;

    // Emit the leader's edges, deduplicating identical actions to the same
    // target block (identical guard + identical effect: a nondeterministic
    // choice between copies is one choice).
    std::map<std::pair<int, int>, bool> emitted;
    for (int ti : lts.out[static_cast<std::size_t>(s)]) {
      const LtsTransition& lt = lts.trans[static_cast<std::size_t>(ti)];
      const int dst_block =
          part.block_of[static_cast<std::size_t>(lt.dst)];
      if (!emitted.emplace(std::make_pair(lt.action, dst_block), true)
               .second)
        continue;
      compile::Transition t =
          proc.trans[static_cast<std::size_t>(lt.cfg_trans)];
      t.src = b;
      t.dst = dst_block;
      q.trans.push_back(std::move(t));
    }
  }

  q.out.assign(static_cast<std::size_t>(q.n_pcs), {});
  for (std::size_t i = 0; i < q.trans.size(); ++i)
    q.out[static_cast<std::size_t>(q.trans[i].src)].push_back(
        static_cast<int>(i));

  if (stats) {
    stats->name = proc.name;
    stats->states_before = lts.n_states;
    stats->states_after = part.n_blocks;
    stats->trans_before = static_cast<int>(lts.trans.size());
    stats->trans_after = static_cast<int>(q.trans.size());
  }
  return q;
}

ReducedMachine::ReducedMachine(const kernel::Machine& m, Equivalence eq)
    : machine_([&] {
        stats_.eq = eq;
        stats_.procs.resize(m.compiled().size());
        std::vector<compile::CompiledProc> procs;
        procs.reserve(m.compiled().size());
        for (std::size_t i = 0; i < m.compiled().size(); ++i)
          procs.push_back(reduce_proc(m.spec(), m.compiled()[i], eq,
                                      &stats_.procs[i]));
        // substitute() validates the quotients against the original frame
        // layout before the search ever runs on them
        return m.substitute(std::move(procs));
      }()) {}

}  // namespace pnp::reduce
