// Compositional reduction: minimize every proctype's LTS and re-inject the
// quotients as drop-in compiled proctypes, so the composed machine explores
// the reduced product instead of the full-detail one.
//
// Soundness contract (see DESIGN.md section 10):
//   * Equivalence::Strong preserves every obligation class this repo
//     checks: assertions, deadlock, state invariants, end invariants, LTL.
//   * Equivalence::Weak additionally contracts deterministic tau steps and
//     preserves assertions, deadlock, state invariants, and end invariants
//     exactly; LTL callers must use Strong.
// Counterexample traces found on a reduced machine are genuine traces of
// the reduced product; under Weak they may omit stutter steps of the
// original.
#pragma once

#include <string>
#include <vector>

#include "kernel/machine.h"
#include "reduce/minimize.h"

namespace pnp::reduce {

/// Per-proctype reduction accounting.
struct ProcReduction {
  std::string name;
  int states_before{0};  // reachable control locations
  int states_after{0};
  int trans_before{0};
  int trans_after{0};

  double ratio() const {
    return states_after > 0
               ? static_cast<double>(states_before) / states_after
               : 1.0;
  }
};

struct ReductionStats {
  Equivalence eq{Equivalence::Strong};
  std::vector<ProcReduction> procs;

  int total_states_before() const;
  int total_states_after() const;
  /// Upper bound on the product-space shrink factor: the product of the
  /// per-proctype location ratios, each raised to the number of running
  /// instances. The measured global ratio (explored states full vs
  /// reduced) is reported by callers that run both searches.
  double product_bound(const model::SystemSpec& sys) const;
  std::string summary() const;
};

/// Minimizes one compiled proctype: extract LTS -> partition -> quotient.
/// The result is a drop-in CompiledProc over the same frame layout.
compile::CompiledProc reduce_proc(const model::SystemSpec& sys,
                                  const compile::CompiledProc& proc,
                                  Equivalence eq, ProcReduction* stats);

/// A machine over the same SystemSpec whose proctypes have been replaced
/// by their minimized quotients. The spec referenced by `m` must outlive
/// this object (same lifetime rule as kernel::Machine itself).
class ReducedMachine {
 public:
  ReducedMachine(const kernel::Machine& m, Equivalence eq);

  const kernel::Machine& machine() const { return machine_; }
  const ReductionStats& stats() const { return stats_; }

 private:
  ReductionStats stats_;
  kernel::Machine machine_;
};

}  // namespace pnp::reduce
