#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pnp::serve {

namespace {

bool fail(std::string* err, const std::string& why) {
  if (err != nullptr) *err = why;
  return false;
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool Client::connect_unix(const std::string& path, std::string* err) {
  close();
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path))
    return fail(err, "socket path too long: " + path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail(err, std::string("socket: ") + std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string why = "connect " + path + ": " + std::strerror(errno);
    close();
    return fail(err, why);
  }
  return true;
}

bool Client::connect_tcp(int port, std::string* err) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return fail(err, std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const std::string why =
        "connect 127.0.0.1:" + std::to_string(port) + ": " +
        std::strerror(errno);
    close();
    return fail(err, why);
  }
  return true;
}

bool Client::send_line(const std::string& frame, std::string* err) {
  if (fd_ < 0) return fail(err, "not connected");
  std::string wire = frame;
  wire += '\n';
  const char* p = wire.data();
  std::size_t left = wire.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return fail(err, std::string("send: ") + std::strerror(errno));
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recv_line(std::string* frame, std::string* err) {
  if (fd_ < 0) return fail(err, "not connected");
  for (;;) {
    const std::size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      *frame = rbuf_.substr(0, nl);
      rbuf_.erase(0, nl + 1);
      if (!frame->empty() && frame->back() == '\r') frame->pop_back();
      return true;
    }
    char chunk[65536];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return fail(err, "connection closed");
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail(err, std::string("recv: ") + std::strerror(errno));
    }
    rbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool Client::submit_and_wait(
    const JobRequest& req, Outcome* out, std::string* err,
    const std::function<void(const json::Value& event)>& on_event) {
  *out = Outcome{};
  if (!send_line(render_submit(req), err)) return false;
  for (;;) {
    std::string frame;
    if (!recv_line(&frame, err)) return false;
    json::Value msg;
    if (!json::parse(frame, msg, err)) return false;
    const std::string verb = msg.str_or(kSchema);
    const std::string id = msg.str_or("id");
    if (id != req.id && verb != "error") continue;  // another job's frame
    if (verb == "accepted") {
      out->accepted = true;
    } else if (verb == "rejected") {
      out->reject_reason = msg.str_or("reason", "(no reason)");
      return true;
    } else if (verb == "error") {
      out->error = msg.str_or("reason", "(no reason)");
      return true;
    } else if (verb == "event") {
      ++out->events;
      if (on_event) {
        if (const json::Value* ev = msg.get("event")) on_event(*ev);
      }
    } else if (verb == "report") {
      out->passed = msg.bool_or("passed");
      out->interrupted = msg.bool_or("interrupted");
      out->seconds = msg.num_or("seconds");
      out->cache_hits = static_cast<int>(msg.num_or("cache_hits"));
      out->recomputed = static_cast<int>(msg.num_or("recomputed"));
      out->report = std::move(msg);
      return true;
    } else if (verb.empty()) {
      return fail(err, "frame without a verb: " + frame);
    }
    // unknown verbs are skipped: newer servers may stream more kinds
  }
}

bool Client::ping(std::string* err) {
  if (!send_line(render_ping(), err)) return false;
  for (;;) {
    std::string frame;
    if (!recv_line(&frame, err)) return false;
    json::Value msg;
    if (!json::parse(frame, msg, err)) return false;
    if (msg.str_or(kSchema) == "pong") return true;
  }
}

}  // namespace pnp::serve
