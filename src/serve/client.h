// Blocking pnp.job.v1 client: what `pnpv --submit`, the serve tests and
// the serve_rtt benchmark speak to a running pnpd. One connection, frames
// written and read synchronously; submit_and_wait() is the whole
// round-trip (submit -> accepted/rejected -> events -> report) in one
// call, demuxing on the echoed job id.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/proto.h"
#include "support/json.h"

namespace pnp::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), rbuf_(std::move(other.rbuf_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      rbuf_ = std::move(other.rbuf_);
      other.fd_ = -1;
    }
    return *this;
  }

  bool connect_unix(const std::string& path, std::string* err);
  bool connect_tcp(int port, std::string* err);  // 127.0.0.1 only
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one frame (newline appended). False + reason on a broken pipe.
  bool send_line(const std::string& frame, std::string* err);
  /// Blocks for the next newline-terminated frame (newline stripped).
  /// False on EOF or error; EOF sets `*err` to "connection closed".
  bool recv_line(std::string* frame, std::string* err);

  /// Everything one job round-trip produced.
  struct Outcome {
    bool accepted = false;
    bool passed = false;
    bool interrupted = false;
    std::string reject_reason;  // set when the submit was rejected
    std::string error;          // set when the server sent an error frame
    double seconds = 0.0;
    int cache_hits = 0;
    int recomputed = 0;
    std::size_t events = 0;  // streamed event frames seen for this job
    json::Value report;      // the raw final report object (when accepted)
  };

  /// Submits `req` and reads frames until this job's terminal frame
  /// (report, rejected, or error), invoking `on_event` for each streamed
  /// event. Returns false only on transport or protocol failure -- a
  /// rejected submit or a failed verdict is a successful round-trip with
  /// the outcome recorded in `out`.
  bool submit_and_wait(
      const JobRequest& req, Outcome* out, std::string* err,
      const std::function<void(const json::Value& event)>& on_event = {});

  /// Liveness probe: ping, wait for the pong.
  bool ping(std::string* err);

 private:
  int fd_ = -1;
  std::string rbuf_;  // bytes received past the last returned frame
};

}  // namespace pnp::serve
