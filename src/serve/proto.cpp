#include "serve/proto.h"

#include <cstdint>
#include <utility>

#include "codegen/engine.h"

namespace pnp::serve {

namespace {

using json::append_string;

void append_key(std::string& out, const char* key) {
  append_string(out, key);
  out += ':';
}

std::string frame_head(const char* verb, const std::string& id) {
  std::string out = "{";
  append_key(out, kSchema);
  append_string(out, verb);
  if (!id.empty()) {
    out += ',';
    append_key(out, "id");
    append_string(out, id);
  }
  return out;
}

bool fail(std::string* err, const std::string& why) {
  if (err != nullptr) *err = why;
  return false;
}

}  // namespace

bool parse_request(const std::string& line, JobRequest& out, std::string* err) {
  json::Value root;
  if (!json::parse(line, root, err)) return false;
  if (!root.is_object()) return fail(err, "frame is not a JSON object");

  const std::string verb = root.str_or(kSchema);
  if (verb.empty())
    return fail(err, std::string("missing \"") + kSchema + "\" verb");

  out = JobRequest{};
  out.id = root.str_or("id");
  if (verb == "ping") {
    out.verb = Verb::Ping;
    return true;
  }
  if (verb == "cancel") {
    out.verb = Verb::Cancel;
    if (out.id.empty()) return fail(err, "cancel requires an id");
    return true;
  }
  if (verb != "submit") return fail(err, "unknown verb \"" + verb + "\"");

  out.verb = Verb::Submit;
  if (out.id.empty()) return fail(err, "submit requires an id");
  out.model_text = root.str_or("model");
  out.model_path = root.str_or("path");
  if (out.model_text.empty() && out.model_path.empty())
    return fail(err, "submit requires \"model\" text or a \"path\"");

  const std::string kind = root.str_or("kind", "auto");
  if (kind == "auto") {
    out.kind = Session::SourceKind::Auto;
  } else if (kind == "arch") {
    out.kind = Session::SourceKind::Arch;
  } else if (kind == "pml") {
    out.kind = Session::SourceKind::Pml;
  } else {
    return fail(err, "unknown kind \"" + kind + "\"");
  }
  out.resilience = root.bool_or("resilience");
  out.checkpoint = root.bool_or("checkpoint");

  RunConfig& cfg = out.config;
  // An unknown engine is a request error, not a protocol error: the caller
  // answers with an error frame and the connection keeps serving.
  if (const json::Value* v = root.get("engine")) {
    if (!v->is_string() || !codegen::parse_engine_kind(v->str, &cfg.engine))
      return fail(err, "unknown engine \"" + (v->is_string() ? v->str : "") +
                           "\" (expected \"interp\", \"bytecode\" or "
                           "\"aot\")");
  }
  if (const json::Value* v = root.get("max_states"); v && v->is_number())
    cfg.max_states = static_cast<std::uint64_t>(v->num);
  if (const json::Value* v = root.get("deadline_seconds"); v && v->is_number())
    cfg.deadline_seconds = v->num;
  if (const json::Value* v = root.get("memory_budget_bytes");
      v && v->is_number()) {
    cfg.memory_budget_bytes = static_cast<std::uint64_t>(v->num);
    out.explicit_memory = true;
  }
  if (const json::Value* v = root.get("threads"); v && v->is_number())
    cfg.threads = static_cast<int>(v->num);
  cfg.check_deadlock = root.bool_or("check_deadlock", cfg.check_deadlock);
  cfg.por = root.bool_or("por", cfg.por);
  cfg.bfs = root.bool_or("bfs", cfg.bfs);
  cfg.degrade = root.bool_or("degrade", cfg.degrade);
  cfg.connector_protocols =
      root.bool_or("connector_protocols", cfg.connector_protocols);
  cfg.ltl_weak_fairness =
      root.bool_or("ltl_weak_fairness", cfg.ltl_weak_fairness);
  cfg.invariant_text = root.str_or("invariant");
  cfg.end_invariant_text = root.str_or("end_invariant");
  if (const json::Value* v = root.get("ltl")) {
    if (!v->is_array()) return fail(err, "\"ltl\" must be an array of strings");
    for (const json::Value& f : v->arr) {
      if (!f.is_string()) return fail(err, "\"ltl\" entries must be strings");
      cfg.ltl.push_back(f.str);
    }
  }
  if (const json::Value* v = root.get("props")) {
    if (!v->is_array())
      return fail(err, "\"props\" must be an array of [name, text] pairs");
    for (const json::Value& p : v->arr) {
      if (!p.is_array() || p.arr.size() != 2 || !p.arr[0].is_string() ||
          !p.arr[1].is_string())
        return fail(err, "\"props\" entries must be [name, text] pairs");
      cfg.props.emplace_back(p.arr[0].str, p.arr[1].str);
    }
  }
  return true;
}

std::string render_submit(const JobRequest& req) {
  std::string out = frame_head("submit", req.id);
  if (!req.model_text.empty()) {
    out += ',';
    append_key(out, "model");
    append_string(out, req.model_text);
  } else if (!req.model_path.empty()) {
    out += ',';
    append_key(out, "path");
    append_string(out, req.model_path);
  }
  if (req.kind != Session::SourceKind::Auto) {
    out += ',';
    append_key(out, "kind");
    append_string(out, req.kind == Session::SourceKind::Arch ? "arch" : "pml");
  }
  if (req.resilience) out += ",\"resilience\":true";
  if (req.checkpoint) out += ",\"checkpoint\":true";

  const RunConfig def{};
  const RunConfig& cfg = req.config;
  if (cfg.max_states != def.max_states) {
    out += ',';
    append_key(out, "max_states");
    json::append_u64(out, cfg.max_states);
  }
  if (cfg.deadline_seconds != def.deadline_seconds) {
    out += ',';
    append_key(out, "deadline_seconds");
    json::append_double(out, cfg.deadline_seconds);
  }
  if (req.explicit_memory) {
    out += ',';
    append_key(out, "memory_budget_bytes");
    json::append_u64(out, cfg.memory_budget_bytes);
  }
  if (cfg.threads != def.threads) {
    out += ',';
    append_key(out, "threads");
    json::append_u64(out, static_cast<std::uint64_t>(cfg.threads));
  }
  if (cfg.engine != def.engine) {
    out += ',';
    append_key(out, "engine");
    append_string(out, codegen::engine_kind_name(cfg.engine));
  }
  if (cfg.check_deadlock != def.check_deadlock)
    out += ",\"check_deadlock\":false";
  if (cfg.por != def.por) out += ",\"por\":true";
  if (cfg.bfs != def.bfs) out += ",\"bfs\":true";
  if (cfg.degrade != def.degrade) out += ",\"degrade\":false";
  if (cfg.connector_protocols != def.connector_protocols)
    out += ",\"connector_protocols\":false";
  if (cfg.ltl_weak_fairness) out += ",\"ltl_weak_fairness\":true";
  if (!cfg.invariant_text.empty()) {
    out += ',';
    append_key(out, "invariant");
    append_string(out, cfg.invariant_text);
  }
  if (!cfg.end_invariant_text.empty()) {
    out += ',';
    append_key(out, "end_invariant");
    append_string(out, cfg.end_invariant_text);
  }
  if (!cfg.ltl.empty()) {
    out += ',';
    append_key(out, "ltl");
    out += '[';
    for (std::size_t i = 0; i < cfg.ltl.size(); ++i) {
      if (i != 0) out += ',';
      append_string(out, cfg.ltl[i]);
    }
    out += ']';
  }
  if (!cfg.props.empty()) {
    out += ',';
    append_key(out, "props");
    out += '[';
    for (std::size_t i = 0; i < cfg.props.size(); ++i) {
      if (i != 0) out += ',';
      out += '[';
      append_string(out, cfg.props[i].first);
      out += ',';
      append_string(out, cfg.props[i].second);
      out += ']';
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string render_cancel(const std::string& id) {
  return frame_head("cancel", id) + "}";
}

std::string render_ping() { return frame_head("ping", {}) + "}"; }

std::string render_pong() { return frame_head("pong", {}) + "}"; }

std::string render_accepted(const std::string& id, std::size_t queue_depth) {
  std::string out = frame_head("accepted", id);
  out += ',';
  append_key(out, "queue_depth");
  json::append_u64(out, queue_depth);
  out += '}';
  return out;
}

std::string render_rejected(const std::string& id, const std::string& reason) {
  std::string out = frame_head("rejected", id);
  out += ',';
  append_key(out, "reason");
  append_string(out, reason);
  out += '}';
  return out;
}

std::string render_error(const std::string& id, const std::string& reason) {
  std::string out = frame_head("error", id);
  out += ',';
  append_key(out, "reason");
  append_string(out, reason);
  out += '}';
  return out;
}

std::string render_event(const std::string& id,
                         const std::string& event_json) {
  std::string out = frame_head("event", id);
  out += ',';
  append_key(out, "event");
  out += event_json;  // already a complete single-line JSON object
  out += '}';
  return out;
}

std::string render_report(const std::string& id, const RunReport& rep,
                          bool interrupted) {
  std::string out = frame_head("report", id);
  out += ',';
  append_key(out, "subject");
  append_string(out, rep.subject);
  out += ',';
  append_key(out, "mode");
  append_string(out, rep.mode);
  out += ',';
  append_key(out, "config");
  append_string(out, rep.config_digest);
  out += rep.passed ? ",\"passed\":true" : ",\"passed\":false";
  if (interrupted) out += ",\"interrupted\":true";
  out += ',';
  append_key(out, "seconds");
  json::append_double(out, rep.seconds);
  out += ',';
  append_key(out, "cache_hits");
  json::append_u64(out, static_cast<std::uint64_t>(rep.cache_hits()));
  out += ',';
  append_key(out, "recomputed");
  json::append_u64(out, static_cast<std::uint64_t>(rep.recomputed()));
  if (!rep.ledger_path.empty()) {
    out += ',';
    append_key(out, "ledger");
    append_string(out, rep.ledger_path);
  }
  if (!rep.trail_path.empty()) {
    out += ',';
    append_key(out, "trail");
    append_string(out, rep.trail_path);
  }
  out += ',';
  append_key(out, "checks");
  out += '[';
  for (std::size_t i = 0; i < rep.checks.size(); ++i) {
    const RunCheck& c = rep.checks[i];
    if (i != 0) out += ',';
    out += '{';
    append_key(out, "kind");
    append_string(out, c.kind);
    out += ',';
    append_key(out, "label");
    append_string(out, c.label);
    out += c.passed ? ",\"passed\":true" : ",\"passed\":false";
    if (c.from_cache) out += ",\"from_cache\":true";
    if (!c.stage.empty()) {
      out += ',';
      append_key(out, "stage");
      append_string(out, c.stage);
    }
    if (c.states_stored != 0) {
      out += ',';
      append_key(out, "states");
      json::append_u64(out, c.states_stored);
    }
    if (c.seconds > 0.0) {
      out += ',';
      append_key(out, "seconds");
      json::append_double(out, c.seconds);
    }
    out += '}';
  }
  out += ']';
  out += '}';
  return out;
}

}  // namespace pnp::serve
