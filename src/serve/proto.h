// The pnpd job protocol: "pnp.job.v1", one JSON object per line in both
// directions (JSONL framing, exactly like the run ledger).
//
// A client submits a verification job as a single frame carrying the model
// (inline text or a server-side path) plus the RunConfig fields that can
// change a verdict. The server answers with an `accepted` or `rejected`
// frame, streams `event` frames while the job runs (Progress heartbeats,
// budget warnings, phase/obligation lifecycle -- the JsonlStreamSink
// rendering wrapped with the job id), and finishes with exactly one
// `report` frame carrying the flattened RunReport. Protocol violations get
// an `error` frame.
//
// Every response frame echoes the client-chosen job id, so one connection
// can keep several jobs in flight and demux by id. The schema tag doubles
// as the verb key: {"pnp.job.v1": "submit", ...}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "pnp/session.h"
#include "support/json.h"

namespace pnp::serve {

inline constexpr const char* kSchema = "pnp.job.v1";

/// Longest frame the server will buffer while looking for the newline;
/// generous enough for large inline models, small enough that a stream of
/// garbage cannot balloon a connection. Exceeding it is a protocol error
/// and closes the connection (the framing cannot be trusted afterwards).
inline constexpr std::size_t kMaxFrameBytes = std::size_t{8} << 20;

enum class Verb : std::uint8_t {
  Submit,  // run a verification job
  Cancel,  // cancel a previously submitted job by id
  Ping,    // liveness probe; answered with a pong frame
};

/// One parsed client frame. For Submit, `config` carries the budget and
/// property fields lifted from the frame; everything the frame leaves out
/// keeps the RunConfig default, exactly like an unset pnpv flag.
struct JobRequest {
  Verb verb = Verb::Submit;
  std::string id;          // client-chosen, echoed on every response frame
  std::string model_text;  // inline source; takes precedence over path
  std::string model_path;  // server-side file to load instead
  Session::SourceKind kind = Session::SourceKind::Auto;
  bool resilience = false;
  /// Checkpoint instead of discarding when the server drains this job
  /// (SIGTERM): the worker assigns a per-job checkpoint directory under the
  /// server state dir, so a resubmit after restart resumes the search.
  bool checkpoint = false;
  /// True when the frame carried an explicit memory_budget_bytes; jobs
  /// without one are charged (and capped at) the server's default per-job
  /// memory, so the admission charge always matches the enforced budget.
  bool explicit_memory = false;
  RunConfig config;
};

/// Parses one request line. Returns false and fills `*err` (when non-null)
/// on malformed JSON, a missing/unknown verb, or a submit without a model.
bool parse_request(const std::string& line, JobRequest& out, std::string* err);

/// The client-side serialization parse_request() round-trips.
std::string render_submit(const JobRequest& req);
std::string render_cancel(const std::string& id);
std::string render_ping();

// -- server response frames (no trailing newline; the writer owns framing) ---

std::string render_accepted(const std::string& id, std::size_t queue_depth);
std::string render_rejected(const std::string& id, const std::string& reason);
std::string render_error(const std::string& id, const std::string& reason);
std::string render_pong();
/// Wraps one JsonlStreamSink-rendered event (a complete JSON object) with
/// the job framing: {"pnp.job.v1":"event","id":...,"event":{...}}.
std::string render_event(const std::string& id, const std::string& event_json);
/// The final frame of a job: verdict, wall time, per-check breakdown and
/// cache totals. `interrupted` marks a drain/cancel partial result.
std::string render_report(const std::string& id, const RunReport& rep,
                          bool interrupted);

}  // namespace pnp::serve
