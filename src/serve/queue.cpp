#include "serve/queue.h"

#include "support/panic.h"

namespace pnp::serve {

JobQueue::JobQueue(std::uint64_t memory_budget, std::uint64_t default_charge,
                   double aging_seconds)
    : memory_budget_(memory_budget),
      default_charge_(default_charge),
      aging_(std::chrono::nanoseconds(
          static_cast<std::int64_t>(aging_seconds * 1e9))) {
  PNP_CHECK(default_charge_ > 0, "default job charge must be positive");
}

bool JobQueue::submit(Job job, std::string* reason) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    if (reason != nullptr) *reason = "server is draining";
    return false;
  }
  job.charge = job.req.explicit_memory && job.req.config.memory_budget_bytes > 0
                   ? job.req.config.memory_budget_bytes
                   : default_charge_;
  const bool idle = charged_ == 0;
  if (!idle && memory_budget_ > 0 &&
      charged_ + job.charge > memory_budget_) {
    if (reason != nullptr) {
      *reason = "memory budget exceeded: job charge ";
      json::append_u64(*reason, job.charge);
      *reason += " over ";
      json::append_u64(*reason,
                       charged_ >= memory_budget_ ? 0
                                                  : memory_budget_ - charged_);
      *reason += " available of ";
      json::append_u64(*reason, memory_budget_);
      *reason += " total";
    }
    return false;
  }
  job.seq = next_seq_++;
  job.enqueued = std::chrono::steady_clock::now();
  if (job.cancel == nullptr)
    job.cancel = std::make_shared<std::atomic<bool>>(false);
  charged_ += job.charge;
  fifos_[job.client].push_back(std::move(job));
  ++queued_;
  cv_.notify_one();
  return true;
}

Job JobQueue::take_locked() {
  // Aging first: the globally oldest queued job (smallest seq, which is
  // also the earliest enqueue) jumps the round-robin when it has waited
  // past the threshold.
  auto* oldest_fifo = static_cast<std::deque<Job>*>(nullptr);
  for (auto& [client, fifo] : fifos_) {
    if (fifo.empty()) continue;
    if (oldest_fifo == nullptr || fifo.front().seq < oldest_fifo->front().seq)
      oldest_fifo = &fifo;
  }
  const auto now = std::chrono::steady_clock::now();
  std::deque<Job>* pick = nullptr;
  if (oldest_fifo != nullptr && now - oldest_fifo->front().enqueued >= aging_) {
    pick = oldest_fifo;
  } else {
    // Round-robin: the first non-empty FIFO strictly after the cursor,
    // wrapping to the beginning.
    auto it = fifos_.upper_bound(last_client_);
    for (std::size_t step = 0; step <= fifos_.size(); ++step, ++it) {
      if (it == fifos_.end()) it = fifos_.begin();
      if (!it->second.empty()) {
        pick = &it->second;
        last_client_ = it->first;
        break;
      }
    }
  }
  PNP_CHECK(pick != nullptr && !pick->empty(), "pop on an empty queue");
  Job job = std::move(pick->front());
  pick->pop_front();
  --queued_;
  running_[job.seq] =
      Running{job.client, job.charge, job.req.id, job.cancel};
  return job;
}

std::optional<Job> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return queued_ > 0 || closed_; });
  if (queued_ == 0) return std::nullopt;
  return take_locked();
}

std::size_t JobQueue::cancel_client(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t dropped = 0;
  auto it = fifos_.find(client);
  if (it != fifos_.end()) {
    for (Job& job : it->second) {
      job.cancel->store(true, std::memory_order_relaxed);
      charged_ -= job.charge;
      --queued_;
      ++dropped;
    }
    fifos_.erase(it);
  }
  for (auto& [seq, run] : running_) {
    if (run.client == client)
      run.cancel->store(true, std::memory_order_relaxed);
  }
  return dropped;
}

bool JobQueue::cancel_job(std::uint64_t client, const std::string& id,
                          Job* dropped) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fifos_.find(client);
  if (it != fifos_.end()) {
    for (auto jit = it->second.begin(); jit != it->second.end(); ++jit) {
      if (jit->req.id != id) continue;
      jit->cancel->store(true, std::memory_order_relaxed);
      charged_ -= jit->charge;
      --queued_;
      if (dropped != nullptr) *dropped = std::move(*jit);
      it->second.erase(jit);
      return true;
    }
  }
  for (auto& [seq, run] : running_) {
    if (run.client == client && run.id == id) {
      run.cancel->store(true, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::size_t JobQueue::interrupt_running() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [seq, run] : running_)
    run.cancel->store(true, std::memory_order_relaxed);
  return running_.size();
}

void JobQueue::release(std::uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = running_.find(seq);
  PNP_CHECK(it != running_.end(), "release of a job that is not running");
  charged_ -= it->second.charge;
  running_.erase(it);
}

std::vector<Job> JobQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  std::vector<Job> pending;
  for (auto& [client, fifo] : fifos_) {
    for (Job& job : fifo) {
      charged_ -= job.charge;
      --queued_;
      pending.push_back(std::move(job));
    }
  }
  fifos_.clear();
  cv_.notify_all();
  return pending;
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

std::size_t JobQueue::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_.size();
}

std::uint64_t JobQueue::charged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return charged_;
}

}  // namespace pnp::serve
