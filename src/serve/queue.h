// The pnpd job queue: memory admission control at the door, FIFO-with-aging
// fair scheduling inside.
//
// Admission: every job is charged a memory amount -- its explicit
// memory_budget_bytes when the frame carried one, otherwise the server's
// per-job default (which the worker also installs as the job's enforced
// engine budget, so the charge is never fiction). A submit is rejected with
// a reason when the aggregate charge of queued + running jobs would exceed
// the server budget; the one exception is an idle server, which always
// admits a single job even when that job alone is over budget, so a big job
// can still run alone instead of being unschedulable forever.
//
// Scheduling: one FIFO per client connection, served round-robin, so a
// client that dumps 200 jobs cannot starve a client that submits one.
// Aging bounds the other direction: when the oldest queued job anywhere has
// waited longer than the aging threshold it is picked next regardless of
// whose turn it is, so round-robin unfairness is capped at the threshold.
//
// Cancellation rides on the per-job cancel flag (a shared_ptr the engines
// poll through ExecBudget::interrupt): cancel_client() flags and drops a
// disconnected client's queued jobs and flags its running ones;
// interrupt_running() flags every running job for SIGTERM drain.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/proto.h"

namespace pnp::serve {

struct Job {
  std::uint64_t seq = 0;     // global arrival order (aging, release handle)
  std::uint64_t client = 0;  // connection id (fairness + cancellation)
  JobRequest req;
  std::uint64_t charge = 0;  // admission charge, released on completion
  std::chrono::steady_clock::time_point enqueued{};
  std::shared_ptr<std::atomic<bool>> cancel;
};

class JobQueue {
 public:
  JobQueue(std::uint64_t memory_budget, std::uint64_t default_charge,
           double aging_seconds = 5.0);

  /// Admits or rejects `job` (see file comment). On admission the job's
  /// seq/charge/enqueued fields are filled in and a cancel flag is attached
  /// when the caller did not provide one. Rejects after close().
  bool submit(Job job, std::string* reason);

  /// Blocks until a job is schedulable or the queue is closed; nullopt only
  /// after close() with nothing left. The popped job counts as running
  /// until the caller release()s its seq.
  std::optional<Job> pop();

  /// Client disconnected: drop its queued jobs (charges released, flags
  /// set) and flag its running jobs cancelled. Returns how many were
  /// dropped from the queue.
  std::size_t cancel_client(std::uint64_t client);

  /// Cancel one job by client-chosen id. Queued: dropped, with the job
  /// moved into `*dropped` (when non-null) so the server can tell the
  /// owner. Running: flagged. False when no such job exists.
  bool cancel_job(std::uint64_t client, const std::string& id, Job* dropped);

  /// SIGTERM drain: flag every running job's cancel flag so the engines
  /// park (checkpoint if configured) at their next poll. Returns how many
  /// were flagged.
  std::size_t interrupt_running();

  /// Job `seq` finished (or was abandoned): return its charge to the pool.
  void release(std::uint64_t seq);

  /// Stop accepting and wake every pop()er; returns the still-queued jobs
  /// so the server can send each owner a rejection frame.
  std::vector<Job> close();

  std::size_t depth() const;
  std::size_t running() const;
  std::uint64_t charged() const;

 private:
  struct Running {
    std::uint64_t client = 0;
    std::uint64_t charge = 0;
    std::string id;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  /// Picks the next job under mu_: the globally oldest one when it has aged
  /// past the threshold, otherwise round-robin across client FIFOs.
  Job take_locked();

  const std::uint64_t memory_budget_;
  const std::uint64_t default_charge_;
  const std::chrono::nanoseconds aging_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t charged_ = 0;  // queued + running admission charges
  std::size_t queued_ = 0;
  std::uint64_t last_client_ = 0;  // round-robin cursor
  std::map<std::uint64_t, std::deque<Job>> fifos_;  // per-client, by id
  std::map<std::uint64_t, Running> running_;        // by seq
};

}  // namespace pnp::serve
