#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/obs.h"
#include "pnp/session.h"
#include "support/panic.h"

namespace pnp::serve {

namespace {

/// Checkpoint directories are keyed by the client-chosen job id (stable
/// across reconnects, unlike the connection id), mangled into a safe
/// filesystem component.
std::string sanitize_id(const std::string& id) {
  std::string out;
  for (char c : id) {
    const unsigned char u = static_cast<unsigned char>(c);
    out += std::isalnum(u) != 0 || c == '-' || c == '.' ? c : '_';
  }
  if (out.empty()) out = "job";
  return out;
}

std::string cache_dir_of(const ServerOptions& opts) {
  PNP_CHECK(!opts.state_dir.empty(), "pnpd requires a state directory");
  return opts.state_dir + "/cache";
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      queue_(opts_.memory_budget, opts_.default_job_memory,
             opts_.aging_seconds),
      cache_(cache_dir_of(opts_)) {}

Server::~Server() {
  if (started_) drain();
  const int fd = wake_wr_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

int Server::listen_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // a previous daemon's stale socket
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 128) < 0) {
    if (err != nullptr)
      *err = "bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int Server::listen_tcp(int port, int* bound_port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    if (err != nullptr) *err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  socklen_t len = sizeof addr;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 128) < 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    if (err != nullptr)
      *err = "bind 127.0.0.1:" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return -1;
  }
  *bound_port = static_cast<int>(ntohs(addr.sin_port));
  return fd;
}

bool Server::start(std::string* err) {
  PNP_CHECK(!started_, "pnpd started twice");
  PNP_CHECK(!opts_.socket_path.empty(), "pnpd requires a socket path");

  // Repair a torn ledger tail exactly once, before any worker opens the
  // file with recovery disabled (see obs::LedgerSink).
  {
    obs::LedgerSink master(opts_.state_dir, /*recover_torn=*/true);
    ledger_path_ = master.path();
    ledger_recovered_torn_ = master.recovered_torn_line();
  }

  unix_fd_ = listen_unix(opts_.socket_path, err);
  if (unix_fd_ < 0) return false;
  if (opts_.tcp_port >= 0) {
    tcp_fd_ = listen_tcp(opts_.tcp_port, &bound_tcp_port_, err);
    if (tcp_fd_ < 0) {
      ::close(unix_fd_);
      unix_fd_ = -1;
      ::unlink(opts_.socket_path.c_str());
      return false;
    }
  }
  int wake_pipe[2] = {-1, -1};
  if (::pipe2(wake_pipe, O_CLOEXEC) < 0) {
    if (err != nullptr) *err = std::string("pipe: ") + std::strerror(errno);
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
    if (tcp_fd_ >= 0) {
      ::close(tcp_fd_);
      tcp_fd_ = -1;
    }
    return false;
  }
  wake_rd_ = wake_pipe[0];
  wake_wr_.store(wake_pipe[1], std::memory_order_release);

  started_ = true;
  const int workers = opts_.workers > 0 ? opts_.workers : 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back(&Server::worker_loop, this);
  return true;
}

void Server::run() {
  PNP_CHECK(started_, "run() before start()");
  for (;;) {
    pollfd pfds[3];
    int n = 0;
    pfds[n++] = pollfd{unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) pfds[n++] = pollfd{tcp_fd_, POLLIN, 0};
    pfds[n++] = pollfd{wake_rd_, POLLIN, 0};
    const int r = ::poll(pfds, static_cast<nfds_t>(n), -1);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pfds[n - 1].revents != 0) break;  // request_stop() woke us
    for (int i = 0; i < n - 1; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept4(pfds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) continue;
      auto conn = std::make_shared<Conn>();
      conn->fd = cfd;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        conn->id = next_conn_id_++;
        conns_[conn->id] = conn;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.connections;
      }
      conn->reader = std::thread(&Server::reader_loop, this, conn);
    }
  }
  drain();
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const char byte = 's';
  const int fd = wake_wr_.load(std::memory_order_acquire);
  if (fd >= 0) (void)!::write(fd, &byte, 1);  // async-signal-safe wake-up
}

void Server::drain() {
  if (!started_) return;
  started_ = false;
  stopping_.store(true, std::memory_order_relaxed);

  // 1. Stop accepting.
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }

  // 2. Reject everything still queued, with a reason the client can act on.
  std::vector<Job> pending = queue_.close();
  for (Job& job : pending) {
    if (const std::shared_ptr<Conn> conn = conn_for(job.client))
      send_frame(*conn, render_rejected(job.req.id, "server is draining"));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.rejected;
  }

  // 3. Interrupt running jobs; the engines park like a pnpv SIGINT (final
  //    checkpoint when configured, ledger stamped "interrupted") and the
  //    workers stream the partial reports before pop() returns nullopt.
  queue_.interrupt_running();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();

  // 4. Hang up on clients only after every report went out.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, conn] : conns_) conns.push_back(conn);
    conns_.clear();
  }
  for (const std::shared_ptr<Conn>& conn : conns) {
    conn->alive.store(false, std::memory_order_relaxed);
    ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (const std::shared_ptr<Conn>& conn : conns)
    if (conn->reader.joinable()) conn->reader.join();
  for (const std::shared_ptr<Conn>& conn : conns) {
    ::close(conn->fd);
    conn->fd = -1;
  }

  cache_.flush();
  ::unlink(opts_.socket_path.c_str());
  if (wake_rd_ >= 0) {
    ::close(wake_rd_);
    wake_rd_ = -1;
  }
  // The write end stays open for late request_stop() calls (a second
  // SIGTERM racing the drain); the destructor reaps it.
}

void Server::reader_loop(const std::shared_ptr<Conn>& conn) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl; (nl = buf.find('\n', start)) != std::string::npos;
         start = nl + 1) {
      std::string line = buf.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(conn, line);
      if (!conn->alive.load(std::memory_order_relaxed)) break;
    }
    buf.erase(0, start);
    if (buf.size() > kMaxFrameBytes) {
      // The framing cannot be trusted past this point: error out and hang
      // up instead of buffering unboundedly.
      send_frame(*conn, render_error({}, "frame exceeds 8 MiB limit"));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
      break;
    }
    if (!conn->alive.load(std::memory_order_relaxed)) break;
  }
  // Client gone (or we gave up on the stream): whatever it still had
  // queued or running is cancelled -- nobody is listening for the results.
  conn->alive.store(false, std::memory_order_relaxed);
  queue_.cancel_client(conn->id);
  ::shutdown(conn->fd, SHUT_RDWR);
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  JobRequest req;
  std::string err;
  if (!parse_request(line, req, &err)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    // JSONL framing survives a bad frame, so answer and keep reading.
    send_frame(*conn, render_error(req.id, err));
    return;
  }
  switch (req.verb) {
    case Verb::Ping:
      send_frame(*conn, render_pong());
      return;
    case Verb::Cancel: {
      Job dropped;
      if (!queue_.cancel_job(conn->id, req.id, &dropped)) {
        send_frame(*conn, render_error(req.id, "no such job"));
      } else if (dropped.seq != 0) {
        // Dropped while still queued: the worker will never report it, so
        // the cancellation acknowledgement has to come from here.
        send_frame(*conn, render_rejected(req.id, "cancelled"));
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.interrupted;
      }
      return;
    }
    case Verb::Submit:
      break;
  }
  const std::string id = req.id;
  Job job;
  job.client = conn->id;
  job.req = std::move(req);
  std::string reason;
  // The ack is written while holding the connection's write mutex across
  // the submit itself: a worker can pop the job the instant submit()
  // returns, and its frames must not overtake the accepted frame.
  std::lock_guard<std::mutex> wlock(conn->write_mu);
  if (!queue_.submit(std::move(job), &reason)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    send_frame_locked(*conn, render_rejected(id, reason));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
  send_frame_locked(*conn, render_accepted(id, queue_.depth()));
}

void Server::worker_loop() {
  while (std::optional<Job> job = queue_.pop()) {
    run_job(*job);
    queue_.release(job->seq);
  }
}

void Server::run_job(Job& job) {
  const std::shared_ptr<Conn> conn = conn_for(job.client);
  JobRequest& req = job.req;
  if (job.cancel->load(std::memory_order_relaxed)) {
    // Cancelled while queued; the owner has hung up, nothing to report.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.interrupted;
    return;
  }

  std::string text = req.model_text;
  const std::string subject = req.model_path.empty() ? req.id : req.model_path;
  if (text.empty()) {
    std::ifstream in(req.model_path, std::ios::binary);
    if (!in) {
      if (conn != nullptr)
        send_frame(*conn,
                   render_error(req.id, "cannot read " + req.model_path));
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.completed;
      return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  RunConfig cfg = req.config;
  cfg.shared_cache = &cache_;
  cfg.heartbeat = false;  // no TTY on a daemon; events stream instead
  // Compiled AOT artifacts land in the daemon's cache directory: they are
  // content-addressed by the machine digest, so every worker shares one
  // store and a resubmitted model reuses its .so across jobs.
  if (cfg.engine != codegen::EngineKind::Interp && cfg.cache_dir.empty())
    cfg.cache_dir = cache_dir_of(opts_);
  if (!req.explicit_memory || cfg.memory_budget_bytes == 0)
    cfg.memory_budget_bytes = opts_.default_job_memory;
  if (req.checkpoint && cfg.checkpoint_dir.empty()) {
    cfg.checkpoint_dir = opts_.state_dir + "/ckpt/" + sanitize_id(req.id);
    cfg.resume = true;  // a resubmit after a drain continues the search
  }

  Session session(cfg);
  session.set_interrupt(job.cancel.get());
  session.attach_ledger(std::make_shared<obs::LedgerSink>(
      opts_.state_dir, /*recover_torn=*/false));
  if (conn != nullptr) {
    session.observer().add_sink(std::make_shared<obs::JsonlStreamSink>(
        [this, wconn = std::weak_ptr<Conn>(conn),
         id = req.id](const std::string& event_json) {
          if (const std::shared_ptr<Conn> c = wconn.lock())
            send_frame(*c, render_event(id, event_json));
        }));
  }

  try {
    RunReport rep =
        session.verify_source(subject, text, req.kind, req.resilience);
    const bool interrupted = job.cancel->load(std::memory_order_relaxed);
    if (conn != nullptr)
      send_frame(*conn, render_report(req.id, rep, interrupted));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      interrupted ? ++stats_.interrupted : ++stats_.completed;
    }
  } catch (const ModelError& e) {
    // A bad model is the client's problem, not the daemon's: report and
    // keep serving.
    if (conn != nullptr) send_frame(*conn, render_error(req.id, e.what()));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.completed;
  }
  cache_.flush();  // survive even an unclean daemon death with warm verdicts
}

void Server::send_frame(Conn& conn, const std::string& frame) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  send_frame_locked(conn, frame);
}

void Server::send_frame_locked(Conn& conn, const std::string& frame) {
  if (!conn.alive.load(std::memory_order_relaxed)) return;
  std::string wire = frame;
  wire += '\n';
  const char* p = wire.data();
  std::size_t left = wire.size();
  while (left > 0) {
    const ssize_t n = ::send(conn.fd, p, left, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      conn.alive.store(false, std::memory_order_relaxed);
      return;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

std::shared_ptr<Server::Conn> Server::conn_for(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  const auto it = conns_.find(id);
  return it != conns_.end() ? it->second : nullptr;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace pnp::serve
