// pnpd: verification as a long-running service.
//
// The server listens on a Unix domain socket (and optionally a loopback TCP
// port), speaks the pnp.job.v1 JSONL protocol (serve/proto.h), and runs
// admitted jobs on a fixed pool of worker threads. What makes the daemon
// more than N pnpv processes behind a socket is what the workers share:
//
//  * one VerificationCache -- every worker consults and feeds the same
//    content-addressed verdict store (reduce/cache.h is internally
//    synchronized for exactly this), so a client resubmitting a model the
//    daemon has seen -- from any connection -- gets cache hits instead of
//    recomputation. This is the paper's plug-and-play iteration loop as a
//    service: edit one connector, resubmit, pay only for the changed slice.
//  * one run ledger -- every job appends its pnp.run.v1 record to the same
//    <state_dir>/ledger.jsonl. LedgerSink appends are record-atomic
//    (single O_APPEND write), so concurrent workers interleave cleanly;
//    each job gets its own sink instance (record assembly is per-run
//    state) opened with torn-tail recovery off, because the daemon repairs
//    the file once at startup before any worker touches it.
//
// Threading: the caller's thread runs the poll()-based accept loop (woken
// by a self-pipe for shutdown); each connection gets a reader thread that
// parses frames and feeds the JobQueue; `workers` threads pop jobs and run
// them through a per-job pnp::Session. Responses are written under a
// per-connection mutex with MSG_NOSIGNAL, so a worker streaming events and
// a reader acking a submit never interleave bytes mid-frame.
//
// Shutdown (SIGTERM -> request_stop(), async-signal-safe): stop accepting,
// reject every queued job with "draining", flag every running job's
// interrupt -- the engines park exactly like a pnpv SIGINT (final
// checkpoint when the job asked for one, ledger record stamped
// "interrupted", partial report streamed to the client) -- then join
// workers and readers and unlink the socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "reduce/cache.h"
#include "serve/queue.h"

namespace pnp::serve {

struct ServerOptions {
  std::string socket_path;  // Unix domain socket (required)
  int tcp_port = -1;        // also listen on 127.0.0.1; 0 = ephemeral,
                            // -1 = no TCP listener
  int workers = 2;
  /// Aggregate admission budget across queued + running jobs; 0 = no cap.
  std::uint64_t memory_budget = std::uint64_t{4} << 30;
  /// Charge (and enforced engine budget) for jobs without an explicit one.
  std::uint64_t default_job_memory = std::uint64_t{256} << 20;
  double aging_seconds = 5.0;
  /// Ledger, verdict cache and drain checkpoints live here (required).
  std::string state_dir;
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;   // report sent, job ran to a verdict
  std::uint64_t interrupted = 0; // drain/cancel ended the job early
  std::uint64_t protocol_errors = 0;
  std::uint64_t connections = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners, repairs the ledger tail, loads the verdict cache
  /// and spawns the worker pool. Returns false with a reason on bind
  /// failures. Call once, before run().
  bool start(std::string* err);

  /// Runs the accept loop on the calling thread until request_stop(), then
  /// performs the graceful drain described above. Returns when the last
  /// worker and reader have been joined.
  void run();

  /// Initiates shutdown. Async-signal-safe (one write() to the self-pipe);
  /// this is what pnpv's SIGTERM/SIGINT handler calls.
  void request_stop();

  /// Actual TCP port after start() (resolves tcp_port == 0).
  int tcp_port() const { return bound_tcp_port_; }
  const std::string& ledger_path() const { return ledger_path_; }
  /// True when startup repaired a torn ledger tail from a crashed run.
  bool ledger_recovered_torn() const { return ledger_recovered_torn_; }
  ServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::atomic<bool> alive{true};
    std::mutex write_mu;
    std::thread reader;
  };

  void reader_loop(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void run_job(Job& job);
  /// Whole-frame write (appends the newline) under the connection's write
  /// mutex; marks the connection dead on failure instead of raising.
  void send_frame(Conn& conn, const std::string& frame);
  /// send_frame() with write_mu already held -- the submit path holds it
  /// across queue admission so a worker's frames cannot overtake the ack.
  void send_frame_locked(Conn& conn, const std::string& frame);
  std::shared_ptr<Conn> conn_for(std::uint64_t id);
  void drain();
  static int listen_unix(const std::string& path, std::string* err);
  static int listen_tcp(int port, int* bound_port, std::string* err);

  ServerOptions opts_;
  JobQueue queue_;
  reduce::VerificationCache cache_;
  std::string ledger_path_;
  bool ledger_recovered_torn_ = false;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  /// Self-pipe read end, owned by the run() thread. The write end is an
  /// atomic closed only by the destructor: request_stop() may fire from a
  /// signal handler or another thread at any point, including mid-drain.
  int wake_rd_ = -1;
  std::atomic<int> wake_wr_{-1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex conns_mu_;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace pnp::serve
